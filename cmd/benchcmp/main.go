// Command benchcmp compares two go-test-JSON benchmark records (the
// BENCH_*.json files written by `make bench`) and fails when the new
// run regresses the old by more than a threshold. It exists because
// this repository tracks benchmark baselines in-tree and gates merges
// on them (`make bench-compare`) without external tooling.
//
// Usage:
//
//	benchcmp [-threshold 10] [-gate-allocs] [-gate-speedup] [-speedup-floor F] old.json new.json
//	benchcmp -loss bench.json
//
// The second form prints the loss-factor table recorded by
// BenchmarkPreteApply (per worker count: throughput, paper-§6 speedup
// numbers, and the share of the processor budget each loss component
// eats) from a single benchmark record — CI prints it on PRs that touch
// the parallel matcher.
//
//	benchcmp -stream bench.json
//
// The third form prints the streaming-ingest table recorded by
// BenchmarkStreamThroughput (per workload: event throughput, expiries
// per run, and the final stream-lag gauge, which must be zero) — CI
// prints it on PRs alongside the loss table.
//
// Regressions are judged per benchmark, per metric:
//
//   - ns/op: higher is worse
//   - metrics ending in "/s" (e.g. wme-changes/s): lower is worse
//   - B/op and allocs/op are printed for visibility but only gate when
//     -gate-allocs is set (allocation counts are deterministic in Go,
//     but byte sizes can shift with map growth thresholds).
//   - true-speedup (the paper-§6 serial-estimate / apply-wall ratio
//     recorded by BenchmarkPreteApply) gates when -gate-speedup is set,
//     and -speedup-floor additionally fails the run when any new
//     true-speedup value sits below an absolute floor — the guard
//     against the parallel matcher quietly falling behind the serial
//     matcher it is supposed to beat.
//
// Exit status: 0 when no gated metric regresses beyond the threshold,
// 1 on regression, 2 on usage or parse errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the go test -json event stream we need.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// resultLine matches one benchmark result after stream reassembly:
// name, iteration count, then tab-separated "value unit" metric pairs.
var resultLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// metricPair matches one "value unit" cell.
var metricPair = regexp.MustCompile(`^([0-9.eE+-]+)\s+(\S+)$`)

// parseFile reassembles benchmark result lines from a go-test-JSON file
// and returns benchmark -> metric unit -> value. Benchmark names are
// normalized by stripping the -N GOMAXPROCS suffix so records from
// machines with different core counts still compare.
func parseFile(path string) (map[string]map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	// Result lines may be split across multiple output events
	// ("BenchmarkFoo \t" in one, the numbers in the next), so
	// concatenate all output first and split on real newlines.
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	out := map[string]map[string]float64{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := trimProcSuffix(m[1])
		metrics := map[string]float64{}
		for _, cell := range strings.Split(m[3], "\t") {
			pm := metricPair.FindStringSubmatch(strings.TrimSpace(cell))
			if pm == nil {
				continue
			}
			v, err := strconv.ParseFloat(pm[1], 64)
			if err != nil {
				continue
			}
			metrics[pm[2]] = v
		}
		if len(metrics) > 0 {
			out[name] = metrics
		}
	}
	return out, nil
}

// trimProcSuffix drops a trailing -N GOMAXPROCS suffix (Benchmark-8)
// from top-level benchmark names. Sub-benchmark names keep theirs: a
// trailing number there can be part of the case name (workers-16), and
// single-CPU runs emit no suffix at all, so stripping would collide
// distinct cases.
func trimProcSuffix(name string) string {
	if strings.ContainsRune(name, '/') {
		return name
	}
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// lowerIsBetter reports the regression direction for a metric unit.
// The second return is whether the metric gates the comparison at all.
func lowerIsBetter(unit string, gateAllocs, gateSpeedup bool) (lower, gated bool) {
	switch {
	case unit == "ns/op":
		return true, true
	case strings.HasSuffix(unit, "/s"):
		return false, true
	case unit == "allocs/op" || unit == "B/op":
		return true, gateAllocs
	case unit == "true-speedup":
		// The paper-§6 headline number: gated only when asked
		// (-gate-speedup), because it is meaningful to gate solely for
		// the parallel matcher benchmark.
		return false, gateSpeedup
	default:
		// Paper-model metrics (concurrency, loss shares, ...) are
		// recorded for the EXPERIMENTS tables, not gated here.
		return false, false
	}
}

// lossColumns are the per-benchmark metrics of the -loss table, in
// print order (recorded by BenchmarkPreteApply via b.ReportMetric).
var lossColumns = []string{
	"wme-changes/s", "loss-factor", "true-speedup", "nominal-conc",
	"match-frac", "lockwait-frac", "sched-frac", "idle-frac", "spawn-frac",
}

// printLossTable renders the loss-factor metrics of one benchmark
// record as a fixed-width table, one row per benchmark that carries a
// loss-factor metric, sorted by name.
func printLossTable(path string) error {
	rec, err := parseFile(path)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(rec))
	for name, metrics := range rec {
		if _, ok := metrics["loss-factor"]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("%s: no loss-factor metrics found", path)
	}
	sort.Strings(names)
	fmt.Printf("%-40s", "benchmark")
	for _, c := range lossColumns {
		fmt.Printf(" %13s", c)
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("%-40s", name)
		for _, c := range lossColumns {
			if v, ok := rec[name][c]; ok {
				fmt.Printf(" %13.4g", v)
			} else {
				fmt.Printf(" %13s", "-")
			}
		}
		fmt.Println()
	}
	return nil
}

// streamColumns are the per-benchmark metrics of the -stream table, in
// print order (recorded by BenchmarkStreamThroughput).
var streamColumns = []string{"events/s", "expired/op", "stream-lag", "ns/op", "allocs/op"}

// printStreamTable renders the streaming-ingest metrics of one
// benchmark record, one row per benchmark that carries an events/s
// metric, sorted by name.
func printStreamTable(path string) error {
	rec, err := parseFile(path)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(rec))
	for name, metrics := range rec {
		if _, ok := metrics["events/s"]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("%s: no events/s metrics found", path)
	}
	sort.Strings(names)
	fmt.Printf("%-40s", "benchmark")
	for _, c := range streamColumns {
		fmt.Printf(" %13s", c)
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("%-40s", name)
		for _, c := range streamColumns {
			if v, ok := rec[name][c]; ok {
				fmt.Printf(" %13.4g", v)
			} else {
				fmt.Printf(" %13s", "-")
			}
		}
		fmt.Println()
	}
	return nil
}

func main() {
	threshold := flag.Float64("threshold", 10, "allowed regression in percent")
	gateAllocs := flag.Bool("gate-allocs", false, "also fail on allocs/op and B/op regressions")
	gateSpeedup := flag.Bool("gate-speedup", false, "also fail on true-speedup regressions beyond -threshold")
	speedupFloor := flag.Float64("speedup-floor", 0, "fail when any true-speedup in the new record is below this absolute floor (0 disables; 1.0 = never slower than serial)")
	loss := flag.Bool("loss", false, "print the loss-factor table from a single record instead of comparing two")
	stream := flag.Bool("stream", false, "print the streaming-ingest table from a single record instead of comparing two")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchcmp [-threshold pct] [-gate-allocs] [-gate-speedup] [-speedup-floor F] old.json new.json\n"+
			"       benchcmp -loss bench.json\n"+
			"       benchcmp -stream bench.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *loss || *stream {
		if flag.NArg() != 1 || (*loss && *stream) {
			flag.Usage()
			os.Exit(2)
		}
		print := printLossTable
		if *stream {
			print = printStreamTable
		}
		if err := print(flag.Arg(0)); err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	failed := false
	compared := 0
	for name, oldMetrics := range old {
		curMetrics, ok := cur[name]
		if !ok {
			fmt.Printf("%-40s missing from new run\n", name)
			failed = true
			continue
		}
		for unit, ov := range oldMetrics {
			nv, ok := curMetrics[unit]
			if !ok || ov == 0 {
				continue
			}
			compared++
			lower, gated := lowerIsBetter(unit, *gateAllocs, *gateSpeedup)
			deltaPct := (nv - ov) / ov * 100
			worse := deltaPct
			if !lower {
				worse = -deltaPct
			}
			status := "ok"
			if gated && worse > *threshold {
				status = "REGRESSION"
				failed = true
			} else if !gated {
				status = "info"
			}
			fmt.Printf("%-40s %-16s %14.4g -> %14.4g  %+7.2f%%  %s\n",
				name, unit, ov, nv, deltaPct, status)
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no comparable benchmark metrics found")
		os.Exit(2)
	}
	// The absolute floor is judged on the new record alone: a baseline
	// captured on different hardware cannot excuse the parallel matcher
	// running slower than the floor here and now.
	if *speedupFloor > 0 {
		names := make([]string, 0, len(cur))
		for name := range cur {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			v, ok := cur[name]["true-speedup"]
			if !ok {
				continue
			}
			if v < *speedupFloor {
				fmt.Printf("%-40s %-16s %14.4g below floor %g  REGRESSION\n",
					name, "true-speedup", v, *speedupFloor)
				failed = true
			}
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchcmp: regression beyond %.0f%% threshold\n", *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchcmp: %d metrics within %.0f%% threshold\n", compared, *threshold)
}
