package main

import (
	"os"
	"path/filepath"
	"testing"
)

// sample mimics a go-test-JSON stream whose benchmark result line is
// split across two output events, as `go test -json` actually emits.
const sample = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkMissManners","Output":"BenchmarkMissManners \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkMissManners","Output":"     558\t   2342632 ns/op\t 1822215 B/op\t   11896 allocs/op\n"}
{"Action":"output","Package":"repro","Test":"BenchmarkServerThroughput","Output":"BenchmarkServerThroughput-8 \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkServerThroughput","Output":"     415\t   2577392 ns/op\t     55878 wme-changes/s\t  891811 B/op\t   13115 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseFile(t *testing.T) {
	got, err := parseFile(writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	manners, ok := got["BenchmarkMissManners"]
	if !ok {
		t.Fatalf("BenchmarkMissManners missing from %v", got)
	}
	if manners["ns/op"] != 2342632 || manners["allocs/op"] != 11896 {
		t.Errorf("manners metrics = %v", manners)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	srv, ok := got["BenchmarkServerThroughput"]
	if !ok {
		t.Fatalf("BenchmarkServerThroughput missing from %v", got)
	}
	if srv["wme-changes/s"] != 55878 {
		t.Errorf("server metrics = %v", srv)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo":              "BenchmarkFoo",
		"BenchmarkFoo-8":            "BenchmarkFoo",
		"BenchmarkFoo/workers-16":   "BenchmarkFoo/workers-16",
		"BenchmarkFoo/workers-16-8": "BenchmarkFoo/workers-16-8",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

// streamSample mimics a BenchmarkStreamThroughput record.
const streamSample = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Test":"BenchmarkStreamThroughput/fraud","Output":"BenchmarkStreamThroughput/fraud-8 \t"}
{"Action":"output","Package":"repro","Test":"BenchmarkStreamThroughput/fraud","Output":"      26\t  42000000 ns/op\t     47000 events/s\t      2140 expired/op\t         0 stream-lag\t10500000 B/op\t  121000 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
`

func TestPrintStreamTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.json")
	if err := os.WriteFile(path, []byte(streamSample), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := printStreamTable(path); err != nil {
		t.Fatal(err)
	}
	// A record with no events/s metrics must be rejected, so CI cannot
	// silently print an empty table.
	if err := printStreamTable(writeSample(t)); err == nil {
		t.Error("printStreamTable accepted a record without stream metrics")
	}
}

func TestLowerIsBetter(t *testing.T) {
	cases := []struct {
		unit                    string
		gateAllocs, gateSpeedup bool
		lower, gated            bool
	}{
		{"ns/op", false, false, true, true},
		{"wme-changes/s", false, false, false, true},
		{"allocs/op", false, false, true, false},
		{"allocs/op", true, false, true, true},
		{"true-speedup", false, false, false, false},
		{"true-speedup", false, true, false, true},
		{"loss-factor", false, true, false, false},
	}
	for _, c := range cases {
		lower, gated := lowerIsBetter(c.unit, c.gateAllocs, c.gateSpeedup)
		if lower != c.lower || gated != c.gated {
			t.Errorf("lowerIsBetter(%q, %v, %v) = (%v, %v), want (%v, %v)",
				c.unit, c.gateAllocs, c.gateSpeedup, lower, gated, c.lower, c.gated)
		}
	}
}
