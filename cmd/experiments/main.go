// Command experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers).
//
// Usage:
//
//	experiments [-exp all|e1|e2|fig6-1|fig6-2|e5|...|e13] [-cycles N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, or one of the ids listed by -list)")
	cycles := flag.Int("cycles", 120, "recognize-act cycles per synthetic workload")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Name)
		}
		return
	}
	ran := 0
	for _, e := range experiments.All() {
		if *exp != "all" && *exp != e.ID {
			continue
		}
		fmt.Printf("==== %s ====\n\n", e.Name)
		if err := e.Run(os.Stdout, *cycles); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
