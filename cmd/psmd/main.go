// Command psmd serves the rule-engine as a long-lived daemon: many
// independent OPS5 sessions behind one HTTP JSON API, sharded across
// engine goroutines by session ID (see internal/server).
//
// Usage examples:
//
//	psmd -addr :8080
//	psmd -addr :8080 -shards 8 -queue 256 -timeout 10s
//	psmd -addr :8080 -max-wmes 100000 -max-cycles 10000
//
// Endpoints (see internal/server/http.go for the wire formats):
//
//	POST   /sessions                create a session (program in body)
//	GET    /sessions                list sessions
//	GET    /sessions/{id}           session stats
//	DELETE /sessions/{id}           delete a session
//	POST   /sessions/{id}/changes   batched assert/retract changes
//	POST   /sessions/{id}/run       run N recognize-act cycles
//	GET    /sessions/{id}/conflicts conflict set (LEX order)
//	GET    /sessions/{id}/wm        working memory (?class= filters)
//	GET    /metrics                 serving metrics, text exposition
//	GET    /statusz                 human-readable session table
//	GET    /healthz                 liveness
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "per-shard mailbox depth before 429 backpressure")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff suggested on 429 responses")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = default, negative = none)")
	maxWMEs := flag.Int("max-wmes", 0, "default per-session working-memory quota (0 = unlimited)")
	maxCycles := flag.Int("max-cycles", 0, "default per-session cycles-per-run quota (0 = unlimited)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "psmd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		RetryAfter: *retryAfter,
		DefaultQuota: server.Quota{
			MaxWMEs:             *maxWMEs,
			MaxCyclesPerRequest: *maxCycles,
		},
	})
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.HandlerWith(server.HandlerConfig{RequestTimeout: *timeout}),
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "psmd: listening on %s\n", *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure before shutdown.
		fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
		srv.Close()
		os.Exit(1)
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "psmd: %v, draining (up to %s)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "psmd: shutdown: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		srv.Close()
	}
}
