// Command psmd serves the rule-engine as a long-lived daemon: many
// independent OPS5 sessions behind one HTTP JSON API, sharded across
// engine goroutines by session ID (see internal/server).
//
// Usage examples:
//
//	psmd -addr :8080
//	psmd -addr :8080 -shards 8 -queue 256 -timeout 10s
//	psmd -addr :8080 -max-wmes 100000 -max-cycles 10000
//	psmd -addr :8080 -log-format json -slow-cycle 50ms
//	psmd -addr :8080 -data-dir /var/lib/psmd -fsync interval
//
// With -data-dir set, every session keeps a write-ahead log and
// periodic snapshots on disk; a crash or restart recovers all sessions
// with identical working memory and conflict sets (see
// internal/durable). SIGTERM drains in-flight requests, takes a final
// snapshot of every session, and exits.
//
// Endpoints (see internal/server/http.go for the wire formats):
//
//	POST   /sessions                create a session (program in body)
//	GET    /sessions                list sessions
//	GET    /sessions/{id}           session stats
//	DELETE /sessions/{id}           delete a session
//	POST   /sessions/{id}/changes   batched assert/retract changes
//	POST   /sessions/{id}/run       run N recognize-act cycles
//	GET    /sessions/{id}/conflicts conflict set (LEX order)
//	GET    /sessions/{id}/wm        working memory (?class= filters)
//	GET    /sessions/{id}/trace     recent cycle spans (survives deletion)
//	GET    /sessions/{id}/profile   hot-node profile (?top= truncates)
//	GET    /metrics                 serving metrics, text exposition
//	GET    /statusz                 human-readable session table
//	GET    /healthz                 liveness
//	GET    /readyz                  readiness (503 while recovering or draining)
//	GET    /v1/cluster/status       membership, sessions, replication lag (cluster mode)
//	GET    /debug/pprof/...         runtime profiles (disable with -no-pprof)
//
// Every request carries a trace ID (X-Request-Id header, generated when
// absent) that is echoed in the response, logged on the request line,
// and attached to the recognize-act cycle spans the request drives.
//
// Cluster mode (see internal/cluster): give every node an identity and
// the full static peer list, and sessions place themselves across the
// fleet by consistent hashing, replicate their WALs to followers, and
// fail over when a node dies:
//
//	psmd -addr :8080 -data-dir /var/lib/psmd \
//	     -node a -peers a=http://10.0.0.1:8080,b=http://10.0.0.2:8080,c=http://10.0.0.3:8080 \
//	     -replicas 2 -forward
//
// SIGTERM on a cluster node drains: it stops accepting new work
// (/readyz turns 503), hands every live session to its ring successor
// with a final snapshot, and exits without dropping state.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/server"
)

// version identifies the build on -version, /metrics (psmd_build_info)
// and /v1/cluster/status. Overridable at link time:
//
//	go build -ldflags "-X main.version=1.2.3" ./cmd/psmd
var version = "0.6.0-dev"

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "per-shard mailbox depth before 429 backpressure")
	retryAfter := flag.Duration("retry-after", time.Second, "backoff suggested on 429 responses")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = default, negative = none)")
	maxWMEs := flag.Int("max-wmes", 0, "default per-session working-memory quota (0 = unlimited)")
	maxCycles := flag.Int("max-cycles", 0, "default per-session cycles-per-run quota (0 = unlimited)")
	workers := flag.Int("workers", 0, "default parallel-matcher workers per session (0 = GOMAXPROCS)")
	steal := flag.Bool("steal", true, "enable work stealing in parallel-matcher schedulers")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	logFormat := flag.String("log-format", "text", "structured log format (text|json)")
	logLevel := flag.String("log-level", "info", "minimum log level (debug|info|warn|error)")
	slowCycle := flag.Duration("slow-cycle", 0, "log any recognize-act cycle slower than this (0 = disabled)")
	traceDepth := flag.Int("trace-depth", 0, "cycle spans retained per session (0 = default)")
	noPprof := flag.Bool("no-pprof", false, "do not mount /debug/pprof")
	dataDir := flag.String("data-dir", "", "make sessions durable (WAL + snapshots) under this directory; recover them at startup")
	fsyncMode := flag.String("fsync", "always", "WAL sync policy: always|interval|never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background sync period under -fsync=interval")
	snapshotEvery := flag.Int("snapshot-every", 1024, "checkpoint a session after this many WAL records (<0 = never automatically)")
	nodeID := flag.String("node", "", "this node's ID in the cluster (requires -peers)")
	peersFlag := flag.String("peers", "", "static cluster membership: comma-separated id=url pairs including this node")
	replicas := flag.Int("replicas", 2, "copies of each session (owner + followers) in cluster mode")
	forward := flag.Bool("forward", false, "proxy misrouted requests to the owner instead of answering 307")
	heartbeat := flag.Duration("heartbeat", time.Second, "cluster heartbeat interval")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		fmt.Printf("psmd %s %s\n", version, cluster.GoVersion())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "psmd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
		os.Exit(2)
	}
	fsync, err := durable.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
		os.Exit(2)
	}

	// Cluster mode: the node is built first so the server can announce
	// session lifecycle to it (the Replicator hooks), and started after
	// the server exists to heartbeat and ship over it.
	var node *cluster.Node
	if *peersFlag != "" || *nodeID != "" {
		peers, err := cluster.ParsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
			os.Exit(2)
		}
		if *nodeID == "" || len(peers) == 0 {
			fmt.Fprintln(os.Stderr, "psmd: cluster mode needs both -node and -peers")
			os.Exit(2)
		}
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "psmd: cluster mode needs -data-dir (replicas are durable state)")
			os.Exit(2)
		}
		node, err = cluster.New(cluster.Config{
			Self:      *nodeID,
			Peers:     peers,
			Replicas:  *replicas,
			Forward:   *forward,
			Heartbeat: *heartbeat,
			Logger:    logger,
			Version:   version,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
			os.Exit(2)
		}
	}

	cfg := server.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		RetryAfter: *retryAfter,
		DefaultQuota: server.Quota{
			MaxWMEs:             *maxWMEs,
			MaxCyclesPerRequest: *maxCycles,
		},
		DefaultWorkers: *workers,
		NoSteal:        !*steal,
		Logger:         logger,
		TraceDepth:     *traceDepth,
		SlowCycle:      *slowCycle,
		DataDir:        *dataDir,
		Fsync:          fsync,
		FsyncInterval:  *fsyncInterval,
		SnapshotEvery:  *snapshotEvery,
	}
	if node != nil {
		cfg.Replicator = node
	}
	srv := server.New(cfg)
	srv.Registry().Gauge(fmt.Sprintf("psmd_build_info{version=%q,go=%q,node=%q}",
		version, cluster.GoVersion(), *nodeID),
		"build identity; constant 1").Set(1)
	if node != nil {
		if err := node.Start(srv); err != nil {
			fmt.Fprintf(os.Stderr, "psmd: %v\n", err)
			os.Exit(1)
		}
	}
	handler := srv.HandlerWith(server.HandlerConfig{
		RequestTimeout: *timeout,
		DisablePprof:   *noPprof,
	})
	if node != nil {
		handler = node.Handler(handler)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "pprof", !*noPprof,
		"slow_cycle", *slowCycle, "log_format", *logFormat,
		"data_dir", *dataDir, "fsync", fsync.String(),
		"version", version, "node", *nodeID)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// ListenAndServe only returns on failure before shutdown.
		logger.Error("serve failed", "err", err)
		srv.Close()
		os.Exit(1)
	case sig := <-sigCh:
		logger.Info("draining", "signal", sig.String(), "budget", *drain)
		// Readiness flips first so load balancers stop sending work,
		// then in-flight requests finish, then (cluster mode) every
		// live session is pushed to its ring successor, and only then
		// does the server close — a clean exit loses nothing.
		srv.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown failed", "err", err)
			srv.Close()
			os.Exit(1)
		}
		if node != nil {
			node.Drain(ctx)
			node.Stop()
		}
		srv.Close()
	}
}
