// Command psmsim runs an activation trace through the Production
// System Machine simulator with the machine parameters as flags.
//
// Traces come from three sources:
//
//	-workload <name>   a synthetic paper workload (vt, ilog, mud, daa,
//	                   ep-soar, r1-soar, and their parallel-firings
//	                   variants; see -list)
//	-program <file>    an OPS5 program executed with the instrumented
//	                   matcher (a genuine trace)
//	-trace <file>      a JSON trace captured earlier (see -dump)
//
// Usage examples:
//
//	psmsim -workload r1-soar -procs 32
//	psmsim -workload "r1-soar (parallel firings)" -procs 64 -scheduler software
//	psmsim -program examples/testdata/puzzle.ops -procs 32 -dump trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/psm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "synthetic workload name (see -list)")
	program := flag.String("program", "", "OPS5 program file to trace")
	traceFile := flag.String("trace", "", "JSON trace file to simulate")
	dump := flag.String("dump", "", "write the trace as JSON to this file")
	list := flag.Bool("list", false, "list synthetic workloads and exit")
	analyze := flag.Bool("analyze", false, "print trace structure statistics before simulating")
	procs := flag.Int("procs", 32, "number of processors")
	mips := flag.Float64("mips", 2.0, "MIPS per processor")
	scheduler := flag.String("scheduler", "hardware", "task scheduler: hardware or software")
	cacheHit := flag.Float64("cache-hit", 0.90, "cache hit ratio for shared references")
	busCycle := flag.Float64("bus-ns", 100, "bus cycle time in nanoseconds")
	nodeExcl := flag.Bool("node-exclusive", false, "serialise activations of the same node (§4's simple implementation)")
	prodLevel := flag.Bool("production-level", false, "restrict to production-level parallelism")
	cycles := flag.Int("cycles", 120, "cycles for synthetic workloads")
	maxCycles := flag.Int("max-cycles", 300, "cycle bound for -program runs")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "psmsim: unexpected argument %q (inputs are flags: -workload, -program, -trace)\n", flag.Arg(0))
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *list {
		for _, p := range workload.Systems() {
			fmt.Println(p.Name)
		}
		return
	}

	tr, err := loadTrace(*wl, *program, *traceFile, *cycles, *maxCycles)
	if err != nil {
		fatal(err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := tr.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *analyze {
		fmt.Println("trace analysis:")
		fmt.Print(trace.Analyze(tr).String())
		fmt.Println()
	}

	cfg := psm.DefaultConfig(*procs)
	cfg.MIPS = *mips * 1e6
	cfg.CacheHitRatio = *cacheHit
	cfg.BusCycle = *busCycle * 1e-9
	cfg.NodeExclusive = *nodeExcl
	cfg.ProductionLevel = *prodLevel
	switch *scheduler {
	case "hardware":
		cfg.Scheduler = psm.HardwareScheduler
	case "software":
		cfg.Scheduler = psm.SoftwareScheduler
	default:
		fatal(fmt.Errorf("unknown scheduler %q (hardware|software)", *scheduler))
	}

	r := psm.Simulate(tr, cfg)
	fmt.Printf("trace:            %s (%d tasks, %d changes, %d cycles)\n",
		tr.Name, len(tr.Tasks), tr.Changes, tr.Batches)
	fmt.Printf("machine:          %d procs x %.1f MIPS, %s scheduler\n",
		cfg.Processors, cfg.MIPS/1e6, cfg.Scheduler)
	fmt.Printf("makespan:         %.3f ms\n", r.Makespan*1e3)
	fmt.Printf("concurrency:      %.2f\n", r.Concurrency)
	fmt.Printf("true speed-up:    %.2f\n", r.TrueSpeedup)
	fmt.Printf("lost factor:      %.2f\n", r.LostFactor)
	fmt.Printf("wme-changes/sec:  %.0f\n", r.WMChangesPerSec)
	if r.FiringsPerSec > 0 {
		fmt.Printf("firings/sec:      %.0f\n", r.FiringsPerSec)
	}
	fmt.Printf("bus wait:         %.3f ms\n", r.BusWaitSec*1e3)
	fmt.Printf("scheduler wait:   %.3f ms\n", r.SchedWaitSec*1e3)
}

func loadTrace(wl, program, traceFile string, cycles, maxCycles int) (*trace.Trace, error) {
	sources := 0
	for _, s := range []string{wl, program, traceFile} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -workload, -program, -trace is required")
	}
	switch {
	case wl != "":
		p, ok := workload.SystemByName(wl)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q (use -list)", wl)
		}
		p.Cycles = cycles
		return workload.Generate(p), nil
	case program != "":
		src, err := os.ReadFile(program)
		if err != nil {
			return nil, err
		}
		rec, _, err := workload.Capture(program, string(src), nil,
			workload.RunConfig{MaxCycles: maxCycles})
		if err != nil {
			return nil, err
		}
		return &rec.Trace, nil
	default:
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psmsim:", err)
	os.Exit(1)
}
