// Command ops5run executes an OPS5 program file through the
// recognize-act engine with a selectable matcher and strategy.
//
// Usage:
//
//	ops5run [-matcher rete|parallel-rete|treat|full-state|naive] [-strategy lex|mea]
//	        [-cycles N] [-firings N] [-workers N] [-stats] [-loss] program.ops
//
// The program file contains (p ...) productions and optional top-level
// (make ...) forms for the initial working memory.
//
// With -matcher parallel-rete, -loss prints the paper-§6 loss-factor
// table after the run. Example (Miss Manners, 16 guests, 4 workers on
// a single-CPU host; the spawn row is the resident pool's wake
// latency — the gap between Apply's epoch broadcast and the first
// lane entering its batch loop — so it is near zero, where the old
// per-batch goroutine-startup model charged most of the budget here):
//
//	loss-factor accounting (paper §6):
//	  workers:             4
//	  batches:             167
//	  apply wall:          0.013127s (seed 0.000075s, active 0.011210s, merge 0.001842s)
//	  serial estimate:     0.011081s
//	  true speedup:        0.84
//	  nominal concurrency: 0.99
//	  loss factor:         1.18 (paper: 1.93 at 32 processors)
//	  decomposition of the 4x apply budget:
//	    useful_match       0.009164s   17.5%
//	    memory_contention  0.000862s    1.6%
//	    scheduling         0.001111s    2.1%
//	    idle               0.033690s   64.2%
//	    spawn              0.000011s    0.0%
//	    serial_seed_merge  0.007668s   14.6%
//	    other              0.000000s    0.0%
//
// Batches below the scheduler's profitability threshold run inline on
// the caller and appear as pure match time; on a multi-core host the
// idle share shrinks with real parallel lanes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/engine"
)

func main() {
	matcherName := flag.String("matcher", "rete", "match algorithm: rete, parallel-rete, treat, full-state, naive")
	strategyName := flag.String("strategy", "lex", "conflict resolution: lex or mea")
	cycles := flag.Int("cycles", 0, "maximum recognize-act cycles (0 = unbounded)")
	firings := flag.Int("firings", 1, "parallel firings per cycle")
	workers := flag.Int("workers", 0, "parallel matcher workers (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print run statistics")
	loss := flag.Bool("loss", false, "print loss-factor accounting (parallel matcher only)")
	network := flag.Bool("network", false, "dump the compiled Rete network and exit (serial matcher only)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ops5run [flags] program.ops")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	kind, err := core.ParseMatcherKind(*matcherName)
	if err != nil {
		fatal(err)
	}
	strategy, err := conflict.ParseStrategy(*strategyName)
	if err != nil {
		fatal(err)
	}

	sys, err := core.NewSystem(string(src), core.Options{
		Matcher:         kind,
		Strategy:        strategy,
		Workers:         *workers,
		Output:          os.Stdout,
		MaxCycles:       *cycles,
		ParallelFirings: *firings,
	})
	if err != nil {
		fatal(err)
	}
	defer sys.Close()
	if *network {
		net := sys.Network()
		if net == nil {
			fatal(fmt.Errorf("-network requires the serial rete matcher"))
		}
		net.Dump(os.Stdout)
		return
	}
	start := time.Now()
	ran, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if *stats {
		fmt.Fprintf(os.Stderr, "matcher:    %s\n", sys.MatcherKind())
		fmt.Fprintf(os.Stderr, "cycles:     %d\n", ran)
		fmt.Fprintf(os.Stderr, "firings:    %d\n", sys.Fired)
		fmt.Fprintf(os.Stderr, "wm changes: %d\n", sys.TotalChanges)
		fmt.Fprintf(os.Stderr, "wm size:    %d\n", sys.WM.Size())
		fmt.Fprintf(os.Stderr, "halted:     %v\n", sys.Halted)
		fmt.Fprintf(os.Stderr, "elapsed:    %s\n", elapsed)
		if elapsed > 0 && sys.TotalChanges > 0 {
			fmt.Fprintf(os.Stderr, "throughput: %.0f wme-changes/sec\n",
				float64(sys.TotalChanges)/elapsed.Seconds())
		}
		// Matcher-specific detail comes through the optional capability
		// interfaces, not matcher internals.
		caps := sys.Capabilities()
		if p := caps.Stats; p != nil {
			st := p.MatchStats()
			fmt.Fprintf(os.Stderr, "match comparisons:     %d\n", st.Comparisons)
			fmt.Fprintf(os.Stderr, "conflict ins/rem:      %d/%d\n", st.ConflictInserts, st.ConflictRemoves)
		}
		if p := caps.Index; p != nil {
			ix := p.Indexed()
			fmt.Fprintf(os.Stderr, "indexed joins:         %d (%d fallback)\n", ix.IndexedNodes, ix.FallbackNodes)
			fmt.Fprintf(os.Stderr, "hash buckets:          %d (max depth %d)\n", ix.Buckets, ix.MaxBucket)
		}
		if net := sys.Network(); net != nil {
			fmt.Fprintf(os.Stderr, "affected productions/change: %.1f\n", net.Stats.AvgAffected())
			fmt.Fprintf(os.Stderr, "node activations:            %d\n", net.Stats.TotalActivations())
		}
		if pm := sys.ParallelMatcher(); pm != nil {
			st := pm.Stats()
			fmt.Fprintf(os.Stderr, "parallel tasks:         %d\n", st.Tasks)
			fmt.Fprintf(os.Stderr, "parallel cancellations: %d\n", st.Cancellations)
		}
	}
	if *loss {
		p := sys.Capabilities().Loss
		if p == nil {
			fatal(fmt.Errorf("-loss requires a matcher with loss accounting (parallel-rete)"))
		}
		printLoss(os.Stderr, p.LossReport())
	}
}

// printLoss renders a loss report as the paper-§6 style table: speedup
// numbers first, then the phase and decomposition breakdowns.
func printLoss(w io.Writer, l engine.LossReport) {
	fmt.Fprintf(w, "loss-factor accounting (paper §6):\n")
	fmt.Fprintf(w, "  workers:             %d\n", l.Workers)
	fmt.Fprintf(w, "  batches:             %d\n", l.Batches)
	fmt.Fprintf(w, "  apply wall:          %.6fs (seed %.6fs, active %.6fs, merge %.6fs)\n",
		l.ApplySeconds, l.SeedSeconds, l.ActiveSeconds, l.MergeSeconds)
	fmt.Fprintf(w, "  serial estimate:     %.6fs\n", l.SerialEstimateSeconds)
	fmt.Fprintf(w, "  true speedup:        %.2f\n", l.TrueSpeedup)
	fmt.Fprintf(w, "  nominal concurrency: %.2f\n", l.NominalConcurrency)
	fmt.Fprintf(w, "  loss factor:         %.2f (paper: 1.93 at 32 processors)\n", l.LossFactor)
	fmt.Fprintf(w, "  phases (worker-seconds over all lanes):\n")
	for _, p := range l.Phases {
		fmt.Fprintf(w, "    %-11s %.6f\n", p.Phase, p.Seconds)
	}
	fmt.Fprintf(w, "  decomposition of the %dx apply budget:\n", l.Workers)
	for _, c := range l.Decomposition {
		fmt.Fprintf(w, "    %-18s %.6fs  %5.1f%%\n", c.Name, c.Seconds, 100*c.Share)
	}
	fmt.Fprintf(w, "  task sizes (activations by execution time):\n")
	prev := int64(0)
	for _, b := range l.TaskSizes {
		if b.UpToNanos > 0 {
			fmt.Fprintf(w, "    <=%-8dns %d\n", b.UpToNanos, b.Count)
			prev = b.UpToNanos
		} else {
			fmt.Fprintf(w, "    >%-9dns %d\n", prev, b.Count)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ops5run:", err)
	os.Exit(1)
}
