// Command ops5run executes an OPS5 program file through the
// recognize-act engine with a selectable matcher and strategy.
//
// Usage:
//
//	ops5run [-matcher rete|parallel-rete|treat|full-state|naive] [-strategy lex|mea]
//	        [-cycles N] [-firings N] [-workers N] [-stats] program.ops
//
// The program file contains (p ...) productions and optional top-level
// (make ...) forms for the initial working memory.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
)

func main() {
	matcherName := flag.String("matcher", "rete", "match algorithm: rete, parallel-rete, treat, full-state, naive")
	strategyName := flag.String("strategy", "lex", "conflict resolution: lex or mea")
	cycles := flag.Int("cycles", 0, "maximum recognize-act cycles (0 = unbounded)")
	firings := flag.Int("firings", 1, "parallel firings per cycle")
	workers := flag.Int("workers", 0, "parallel matcher workers (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print run statistics")
	network := flag.Bool("network", false, "dump the compiled Rete network and exit (serial matcher only)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ops5run [flags] program.ops")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	kind, err := core.ParseMatcherKind(*matcherName)
	if err != nil {
		fatal(err)
	}
	strategy, err := conflict.ParseStrategy(*strategyName)
	if err != nil {
		fatal(err)
	}

	sys, err := core.NewSystem(string(src), core.Options{
		Matcher:         kind,
		Strategy:        strategy,
		Workers:         *workers,
		Output:          os.Stdout,
		MaxCycles:       *cycles,
		ParallelFirings: *firings,
	})
	if err != nil {
		fatal(err)
	}
	if *network {
		net := sys.Network()
		if net == nil {
			fatal(fmt.Errorf("-network requires the serial rete matcher"))
		}
		net.Dump(os.Stdout)
		return
	}
	start := time.Now()
	ran, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if *stats {
		fmt.Fprintf(os.Stderr, "matcher:    %s\n", sys.MatcherKind())
		fmt.Fprintf(os.Stderr, "cycles:     %d\n", ran)
		fmt.Fprintf(os.Stderr, "firings:    %d\n", sys.Fired)
		fmt.Fprintf(os.Stderr, "wm changes: %d\n", sys.TotalChanges)
		fmt.Fprintf(os.Stderr, "wm size:    %d\n", sys.WM.Size())
		fmt.Fprintf(os.Stderr, "halted:     %v\n", sys.Halted)
		fmt.Fprintf(os.Stderr, "elapsed:    %s\n", elapsed)
		if elapsed > 0 && sys.TotalChanges > 0 {
			fmt.Fprintf(os.Stderr, "throughput: %.0f wme-changes/sec\n",
				float64(sys.TotalChanges)/elapsed.Seconds())
		}
		// Matcher-specific detail comes through the optional capability
		// interfaces, not matcher internals.
		caps := sys.Capabilities()
		if p := caps.Stats; p != nil {
			st := p.MatchStats()
			fmt.Fprintf(os.Stderr, "match comparisons:     %d\n", st.Comparisons)
			fmt.Fprintf(os.Stderr, "conflict ins/rem:      %d/%d\n", st.ConflictInserts, st.ConflictRemoves)
		}
		if p := caps.Index; p != nil {
			ix := p.Indexed()
			fmt.Fprintf(os.Stderr, "indexed joins:         %d (%d fallback)\n", ix.IndexedNodes, ix.FallbackNodes)
			fmt.Fprintf(os.Stderr, "hash buckets:          %d (max depth %d)\n", ix.Buckets, ix.MaxBucket)
		}
		if net := sys.Network(); net != nil {
			fmt.Fprintf(os.Stderr, "affected productions/change: %.1f\n", net.Stats.AvgAffected())
			fmt.Fprintf(os.Stderr, "node activations:            %d\n", net.Stats.TotalActivations())
		}
		if pm := sys.ParallelMatcher(); pm != nil {
			st := pm.Stats()
			fmt.Fprintf(os.Stderr, "parallel tasks:         %d\n", st.Tasks)
			fmt.Fprintf(os.Stderr, "parallel cancellations: %d\n", st.Cancellations)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ops5run:", err)
	os.Exit(1)
}
