// Command client is a load generator for the psmd rule-engine service.
// It replays the Miss Manners workload (internal/workload) over the
// HTTP JSON API: one session per concurrent worker, guest list posted
// in batches, then recognize-act cycles run in chunks until the program
// halts. It reports end-to-end working-memory changes per second — the
// paper's throughput metric, measured through the full service stack —
// plus p50/p95/p99 request latency, and echoes the daemon's own psmd_*
// counters afterwards.
//
// Usage examples:
//
//	client                                  # in-process server, defaults
//	client -addr localhost:8080             # against a running psmd
//	client -sessions 8 -guests 16 -matcher parallel-rete
//	client -json bench.json                 # machine-readable summary
//	client -obs -pprof cpu.pprof            # observability walkthrough
//
// With -obs the run finishes with an observability walkthrough: a probe
// session is traced (GET /trace), its hot nodes ranked (GET /profile),
// and its trace fetched again after deletion to show archive fallback;
// with an in-process server the request log (JSON, with trace IDs) goes
// to stderr. -pprof FILE captures a short CPU profile from
// /debug/pprof/profile.
//
// With -durable-demo the run finishes with a crash/restart
// walkthrough: an in-process durable server (WAL + snapshots under
// -data-dir, or a temp dir) runs part of a workload, is abandoned
// without shutdown, and a second server recovers the session with
// identical state before resuming it to completion.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/ops5"
	"repro/internal/server"
	"repro/internal/sym"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "psmd address (host:port); empty starts an in-process server")
	sessions := flag.Int("sessions", 4, "concurrent sessions")
	guests := flag.Int("guests", 8, "manners guests per session (even)")
	batch := flag.Int("batch", 8, "working-memory changes per POST")
	chunk := flag.Int("chunk", 64, "recognize-act cycles per run request")
	matcher := flag.String("matcher", "", "matcher per session (rete, parallel-rete, treat, ...)")
	workers := flag.Int("workers", 0, "parallel-matcher workers per session (0 = server default)")
	jsonOut := flag.String("json", "", "write a machine-readable result summary to this file")
	obsDemo := flag.Bool("obs", false, "finish with an observability walkthrough (trace, profile, archive)")
	pprofOut := flag.String("pprof", "", "capture a 1s CPU profile from /debug/pprof/profile to this file")
	durableDemo := flag.Bool("durable-demo", false, "finish with a crash/restart durability walkthrough (in-process servers only)")
	dataDir := flag.String("data-dir", "", "data directory for -durable-demo (default: a temp dir, removed afterwards)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "client: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	base := "http://" + *addr
	if *addr == "" {
		cfg := server.Config{}
		if *obsDemo {
			// Surface the daemon's structured request log (JSON, with
			// trace IDs) on stderr so one run shows the whole pipeline.
			logger, err := obs.NewLogger(os.Stderr, "json", slog.LevelInfo)
			if err != nil {
				fmt.Fprintf(os.Stderr, "client: %v\n", err)
				os.Exit(1)
			}
			cfg.Logger = logger
		}
		srv := server.New(cfg)
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("in-process server at %s\n", base)
	}
	api := base + server.APIVersion

	params := workload.DefaultMannersParams()
	params.Guests = *guests

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		changes int // submitted + fired, per the daemon's accounting
		cycles  int
		fired   int
		failed  []error
		lat     latencies
	)
	t0 := time.Now()
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := params
			p.Seed = params.Seed + int64(i)
			st, err := replay(api, &lat, fmt.Sprintf("load-%03d", i), *matcher, *workers, p, *batch, *chunk)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failed = append(failed, fmt.Errorf("session %d: %w", i, err))
				return
			}
			changes += st.TotalChanges
			cycles += st.Cycles
			fired += st.Fired
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	for _, err := range failed {
		fmt.Fprintf(os.Stderr, "client: %v\n", err)
	}
	fmt.Printf("%d sessions, %d guests each: %d cycles, %d firings, %d wme changes in %v\n",
		*sessions-len(failed), *guests, cycles, fired, changes, elapsed.Round(time.Millisecond))
	fmt.Printf("end-to-end throughput: %.0f wme-changes/sec, %.0f firings/sec\n",
		float64(changes)/elapsed.Seconds(), float64(fired)/elapsed.Seconds())
	fmt.Printf("request latency: p50 %v  p95 %v  p99 %v (%d requests)\n",
		lat.percentile(50), lat.percentile(95), lat.percentile(99), len(lat.ds))
	steals, parks := scrapeSchedCounters(base)
	fmt.Printf("scheduler: %d steals, %d parks (parallel matchers only)\n", steals, parks)
	phaseSecs := scrapePhaseSeconds(base)
	if len(phaseSecs) > 0 {
		names := make([]string, 0, len(phaseSecs))
		for n := range phaseSecs {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("scheduler phase seconds:")
		for _, n := range names {
			fmt.Printf(" %s=%.4f", n, phaseSecs[n])
		}
		fmt.Println()
	}

	if *jsonOut != "" {
		if err := writeResults(*jsonOut, results{
			Sessions: *sessions - len(failed), Guests: *guests, Matcher: *matcher,
			Cycles: cycles, Fired: fired, WMEChanges: changes,
			ElapsedSeconds:    elapsed.Seconds(),
			WMEChangesPerSec:  float64(changes) / elapsed.Seconds(),
			FiringsPerSec:     float64(fired) / elapsed.Seconds(),
			Requests:          len(lat.ds),
			LatencyP50Seconds: lat.percentile(50).Seconds(),
			LatencyP95Seconds: lat.percentile(95).Seconds(),
			LatencyP99Seconds: lat.percentile(99).Seconds(),
			Steals:            steals,
			Parks:             parks,
			PhaseSeconds:      phaseSecs,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "client: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}

	fmt.Println("\nserver counters (/metrics):")
	printMetrics(base)

	if *obsDemo {
		if err := runObsDemo(base, api, *matcher); err != nil {
			fmt.Fprintf(os.Stderr, "client: obs demo: %v\n", err)
			os.Exit(1)
		}
	}
	if *pprofOut != "" {
		if err := capturePprof(base, *pprofOut); err != nil {
			fmt.Fprintf(os.Stderr, "client: pprof: %v\n", err)
			os.Exit(1)
		}
	}
	if *durableDemo {
		if err := runDurableDemo(*dataDir, *matcher); err != nil {
			fmt.Fprintf(os.Stderr, "client: durable demo: %v\n", err)
			os.Exit(1)
		}
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}

// results is the machine-readable run summary behind -json.
type results struct {
	Sessions          int     `json:"sessions"`
	Guests            int     `json:"guests"`
	Matcher           string  `json:"matcher,omitempty"`
	Cycles            int     `json:"cycles"`
	Fired             int     `json:"fired"`
	WMEChanges        int     `json:"wme_changes"`
	ElapsedSeconds    float64 `json:"elapsed_seconds"`
	WMEChangesPerSec  float64 `json:"wme_changes_per_sec"`
	FiringsPerSec     float64 `json:"firings_per_sec"`
	Requests          int     `json:"requests"`
	LatencyP50Seconds float64 `json:"latency_p50_seconds"`
	LatencyP95Seconds float64 `json:"latency_p95_seconds"`
	LatencyP99Seconds float64 `json:"latency_p99_seconds"`
	// Steals and Parks echo the daemon's work-stealing scheduler
	// counters (psmd_steals_total, psmd_sched_park_total); zero unless
	// sessions use the parallel matcher.
	Steals int64 `json:"steals"`
	Parks  int64 `json:"parks"`
	// PhaseSeconds echoes psmd_sched_phase_seconds_total{phase=...} —
	// the loss-factor accounting series; absent unless sessions use the
	// parallel matcher.
	PhaseSeconds map[string]float64 `json:"phase_seconds,omitempty"`
}

// writeResults writes the run summary as indented JSON.
func writeResults(path string, r results) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runObsDemo walks the observability surface with a fresh probe
// session: run a small workload under a known X-Request-Id, show its
// cycle trace and hot-node profile, then delete the session and show
// the trace still answering from the archive.
func runObsDemo(base, api, matcher string) error {
	const id = "obs-probe"
	lat := &latencies{}
	p := workload.DefaultMannersParams()
	p.Guests = 4
	wmes, err := workload.MannersWM(p)
	if err != nil {
		return err
	}
	err = post(lat, api+"/sessions", server.CreateRequest{
		ID: id, Program: workload.MissManners, Matcher: matcher,
	}, nil)
	if err != nil {
		return err
	}
	req := server.ChangesRequest{}
	for _, w := range wmes {
		req.Changes = append(req.Changes, server.WireChange{
			Op: "assert", Class: w.Class(), Attrs: wireAttrs(w),
		})
	}
	if err := post(lat, api+"/sessions/"+id+"/changes", req, nil); err != nil {
		return err
	}
	if err := post(lat, api+"/sessions/"+id+"/run", server.RunRequest{}, nil); err != nil {
		return err
	}

	fmt.Println("\nobservability walkthrough (session obs-probe):")
	var tr server.TraceResponse
	if err := get(lat, api+"/sessions/"+id+"/trace", &tr); err != nil {
		return err
	}
	fmt.Printf("  trace: %d spans retained of %d recorded\n", len(tr.Spans), tr.Total)
	for _, sp := range tail(tr.Spans, 3) {
		fmt.Printf("    cycle %3d [%s] trace=%s total %.3fms (match %.3f select %.3f act %.3f) fired=%d wm=%d\n",
			sp.Cycle, sp.Kind, sp.TraceID, sp.TotalSeconds*1e3,
			sp.MatchSeconds*1e3, sp.SelectSeconds*1e3, sp.ActSeconds*1e3,
			sp.Fired, sp.WMSize)
	}

	var prof server.ProfileResponse
	if err := get(lat, api+"/sessions/"+id+"/profile?top=5", &prof); err != nil {
		return err
	}
	fmt.Printf("  profile: matcher=%s cycles=%d total cost %.0f (top %d nodes of %d)\n",
		prof.Matcher, prof.Cycles, prof.TotalCost, len(prof.Nodes), len(prof.Nodes)+prof.Truncated)
	for _, n := range prof.Nodes {
		fmt.Printf("    %5.1f%%  cost %10.0f  acts %6d  tested %7d  emitted %6d  %s\n",
			n.CostShare*100, n.Cost, n.Activations, n.TokensTested, n.PairsEmitted, n.Label)
	}
	if !prof.NodesSupported {
		fmt.Println("    (matcher reports no per-node counters; whole-matcher stats only)")
	}

	var loss server.LossResponse
	if err := get(lat, api+"/sessions/"+id+"/loss", &loss); err != nil {
		return err
	}
	if loss.Supported && loss.Loss != nil {
		l := loss.Loss
		fmt.Printf("  loss: workers=%d apply=%.3fms true-speedup=%.2f nominal=%.2f loss-factor=%.2f\n",
			l.Workers, l.ApplySeconds*1e3, l.TrueSpeedup, l.NominalConcurrency, l.LossFactor)
		for _, c := range l.Decomposition {
			fmt.Printf("    %-18s %5.1f%%\n", c.Name, 100*c.Share)
		}
	} else {
		fmt.Printf("  loss: matcher %s keeps no loss accounting (use -matcher parallel-rete)\n", loss.Matcher)
	}

	reqDel, _ := http.NewRequest(http.MethodDelete, api+"/sessions/"+id, nil)
	if resp, err := http.DefaultClient.Do(reqDel); err == nil {
		resp.Body.Close()
	}
	if err := get(lat, api+"/sessions/"+id+"/trace", &tr); err != nil {
		return err
	}
	fmt.Printf("  after delete: trace still served, evicted=%v, %d spans archived\n",
		tr.Evicted, len(tr.Spans))
	return nil
}

// runDurableDemo walks the durability surface with two in-process
// servers sharing one data directory: the first creates a session,
// loads working memory, and runs part of the workload before being
// abandoned without shutdown (a simulated kill -9 — with fsync=always
// the WAL is already on disk); the second recovers the session from
// snapshot + WAL replay, shows that working memory and the conflict
// set survived intact, forces a checkpoint through the snapshot
// endpoint, and runs the workload to completion.
func runDurableDemo(dataDir, matcher string) error {
	const id = "crash-probe"
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "psmd-durable-demo-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}
	lat := &latencies{}
	p := workload.DefaultMannersParams()
	p.Guests = 6
	wmes, err := workload.MannersWM(p)
	if err != nil {
		return err
	}
	cfg := server.Config{DataDir: dataDir} // fsync defaults to always

	fmt.Printf("\ndurability walkthrough (session %s, data dir %s):\n", id, dataDir)

	// Life 1: create, load, run a few cycles, then "crash".
	srv1 := server.New(cfg)
	ts1 := httptest.NewServer(srv1.Handler())
	api1 := ts1.URL + server.APIVersion
	err = post(lat, api1+"/sessions", server.CreateRequest{
		ID: id, Program: workload.MissManners, Matcher: matcher,
	}, nil)
	if err != nil {
		return err
	}
	req := server.ChangesRequest{}
	for _, w := range wmes {
		req.Changes = append(req.Changes, server.WireChange{
			Op: "assert", Class: w.Class(), Attrs: wireAttrs(w),
		})
	}
	if err := post(lat, api1+"/sessions/"+id+"/changes", req, nil); err != nil {
		return err
	}
	if err := post(lat, api1+"/sessions/"+id+"/run", server.RunRequest{Cycles: 8}, nil); err != nil {
		return err
	}
	var before server.SessionResponse
	if err := get(lat, api1+"/sessions/"+id, &before); err != nil {
		return err
	}
	fmt.Printf("  before crash: cycles=%d fired=%d wm=%d conflicts=%d wal_seq=%d\n",
		before.Cycles, before.Fired, before.WMSize, before.ConflictSize, before.WALSeq)
	// Abandon srv1 without Close: no drain, no final snapshot. The
	// session now exists only as manifest + snapshot + WAL tail.
	ts1.Close()
	fmt.Println("  ... server killed without shutdown ...")

	// Life 2: a new server on the same directory recovers the session.
	srv2 := server.New(cfg)
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	api2 := ts2.URL + server.APIVersion

	var after server.SessionResponse
	if err := get(lat, api2+"/sessions/"+id, &after); err != nil {
		return err
	}
	fmt.Printf("  recovered:    cycles=%d fired=%d wm=%d conflicts=%d (replayed %d wal records)\n",
		after.Cycles, after.Fired, after.WMSize, after.ConflictSize, after.ReplayedRecords)
	if !after.Recovered {
		return fmt.Errorf("session %s did not report recovered=true", id)
	}
	if after.Cycles != before.Cycles || after.Fired != before.Fired ||
		after.WMSize != before.WMSize || after.ConflictSize != before.ConflictSize {
		return fmt.Errorf("recovered state diverged: before=%+v after=%+v", before, after)
	}

	var snap server.SnapshotResponse
	if err := post(lat, api2+"/sessions/"+id+"/snapshot", struct{}{}, &snap); err != nil {
		return err
	}
	fmt.Printf("  checkpoint:   seq=%d, %d wmes, %d bytes on disk\n", snap.Seq, snap.WMEs, snap.Bytes)

	for {
		var run server.RunResponse
		if err := post(lat, api2+"/sessions/"+id+"/run", server.RunRequest{Cycles: 64}, &run); err != nil {
			return err
		}
		if run.Halted || run.Quiesced {
			break
		}
	}
	var final server.SessionResponse
	if err := get(lat, api2+"/sessions/"+id, &final); err != nil {
		return err
	}
	fmt.Printf("  resumed to completion: cycles=%d fired=%d wm=%d halted=%v\n",
		final.Cycles, final.Fired, final.WMSize, final.Halted)
	return nil
}

// tail returns the last n elements of spans.
func tail(spans []server.WireSpan, n int) []server.WireSpan {
	if len(spans) > n {
		return spans[len(spans)-n:]
	}
	return spans
}

// capturePprof saves a short CPU profile from the daemon.
func capturePprof(base, path string) error {
	resp, err := http.Get(base + "/debug/pprof/profile?seconds=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("cpu profile (%d bytes) written to %s\n", len(data), path)
	return nil
}

// replay drives one session to completion and returns its final stats.
// base is the versioned API base; every request's round-trip time is
// recorded in lat.
func replay(base string, lat *latencies, id, matcher string, workers int, p workload.MannersParams, batch, chunk int) (server.SessionResponse, error) {
	var stats server.SessionResponse
	wmes, err := workload.MannersWM(p)
	if err != nil {
		return stats, err
	}
	err = post(lat, base+"/sessions", server.CreateRequest{
		ID: id, Program: workload.MissManners, Matcher: matcher, Workers: workers,
	}, nil)
	if err != nil {
		return stats, err
	}
	defer func() {
		req, _ := http.NewRequest(http.MethodDelete, base+"/sessions/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()

	for start := 0; start < len(wmes); start += batch {
		end := min(start+batch, len(wmes))
		req := server.ChangesRequest{}
		for _, w := range wmes[start:end] {
			req.Changes = append(req.Changes, server.WireChange{
				Op: "assert", Class: w.Class(), Attrs: wireAttrs(w),
			})
		}
		if err := post(lat, base+"/sessions/"+id+"/changes", req, nil); err != nil {
			return stats, err
		}
	}

	for {
		var run server.RunResponse
		if err := post(lat, base+"/sessions/"+id+"/run", server.RunRequest{Cycles: chunk}, &run); err != nil {
			return stats, err
		}
		if run.Halted || run.Quiesced {
			break
		}
	}
	return stats, get(lat, base+"/sessions/"+id, &stats)
}

// wireAttrs converts a WME's attributes to the JSON wire form.
func wireAttrs(w *ops5.WME) map[string]any {
	fields := w.Fields()
	attrs := make(map[string]any, len(fields))
	for _, f := range fields {
		switch f.Val.Kind {
		case ops5.SymValue:
			attrs[sym.Name(f.Attr)] = f.Val.SymName()
		case ops5.NumValue:
			attrs[sym.Name(f.Attr)] = f.Val.Num
		}
	}
	return attrs
}

// latencies collects per-request round-trip times across all sessions.
type latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

// observe records one request's round-trip time.
func (l *latencies) observe(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

// percentile returns the p-th percentile (nearest-rank) of the
// recorded latencies, rounded for display.
func (l *latencies) percentile(p float64) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(l.ds))
	copy(sorted, l.ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx].Round(10 * time.Microsecond)
}

// post sends a JSON body and decodes the response into out (if non-nil),
// retrying after the suggested backoff on 429. Each round trip —
// including 429 rejections — is recorded in lat.
func post(lat *latencies, url string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	for {
		t0 := time.Now()
		resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		lat.observe(time.Since(t0))
		if resp.StatusCode == http.StatusTooManyRequests {
			after, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			time.Sleep(time.Duration(max(after, 1)) * time.Second)
			continue
		}
		return decode(resp, out)
	}
}

// get fetches a JSON document, recording the round trip in lat.
func get(lat *latencies, url string, out any) error {
	t0 := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	lat.observe(time.Since(t0))
	return decode(resp, out)
}

// decode checks the status and unmarshals the body.
func decode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// scrapeSchedCounters reads the daemon's work-stealing scheduler
// counters from /metrics (zero when absent or unreachable).
func scrapeSchedCounters(base string) (steals, parks int64) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch fields[0] {
		case "psmd_steals_total":
			steals = int64(v)
		case "psmd_sched_park_total":
			parks = int64(v)
		}
	}
	return steals, parks
}

// scrapePhaseSeconds reads the daemon's per-phase scheduler seconds
// (psmd_sched_phase_seconds_total{phase="..."}) from /metrics; nil when
// absent (no parallel-matcher session ran) or unreachable.
func scrapePhaseSeconds(base string) map[string]float64 {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var out map[string]float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			continue
		}
		name, ok := strings.CutPrefix(fields[0], `psmd_sched_phase_seconds_total{phase="`)
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, `"}`)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		if out == nil {
			out = make(map[string]float64)
		}
		out[name] = v
	}
	return out
}

// printMetrics echoes the daemon's psmd_* counter lines.
func printMetrics(base string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "client: metrics: %v\n", err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "psmd_") && !strings.Contains(line, "_bucket{") {
			fmt.Println("  " + line)
		}
	}
}
