// Eight puzzle: the paper's Eight-Puzzle-Soar workload at laptop scale.
// A rule program slides tiles on the 3x3 board; the run is then
// re-executed under trace instrumentation and simulated on the
// Production System Machine at several processor counts.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/psm"
	"repro/internal/workload"
)

func main() {
	moves := flag.Int("moves", 40, "number of tile moves to make")
	show := flag.Bool("show", false, "print the board after the run")
	flag.Parse()

	layout := [9]int{1, 2, 3, 4, 0, 5, 6, 7, 8}
	wmes, err := workload.EightPuzzleWM(layout, *moves)
	if err != nil {
		log.Fatal(err)
	}
	rec, eng, err := workload.Capture("eight-puzzle", workload.EightPuzzle, wmes,
		workload.RunConfig{MaxCycles: 10 * *moves, Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("made %d moves in %d cycles (%d WM changes)\n",
		*moves, eng.Cycles, eng.TotalChanges)

	if *show {
		board := map[int]string{}
		for _, w := range eng.WM.Elements() {
			switch w.Class() {
			case "tile":
				board[int(w.Get("pos").Num)] = w.Get("val").String()
			case "blank":
				board[int(w.Get("pos").Num)] = "."
			}
		}
		fmt.Println("final board:")
		for r := 0; r < 3; r++ {
			fmt.Printf("  %s %s %s\n", board[r*3+1], board[r*3+2], board[r*3+3])
		}
	}

	fmt.Println("\nPSM simulation of the captured activation trace:")
	fmt.Printf("%-6s %-12s %-10s %-14s\n", "procs", "concurrency", "speed-up", "wme-changes/s")
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		r := psm.Simulate(&rec.Trace, psm.DefaultConfig(p))
		fmt.Printf("%-6d %-12.2f %-10.2f %-14.0f\n",
			p, r.Concurrency, r.TrueSpeedup, r.WMChangesPerSec)
	}
	fmt.Println("\n(A single eight-puzzle run affects few productions per change, so its")
	fmt.Println("curve flattens very early — exactly the paper's point about limited")
	fmt.Println("intrinsic parallelism in production systems.)")
}
