// Command streaming demonstrates the event-ingest path: TTL'd event
// facts streamed as NDJSON into POST /v1/sessions/{id}/stream, windowed
// joins firing as bursts land inside the TTL window, and the engine's
// logical clock expiring events (and the alerts they raised) as the
// stream moves on. It drives one of the two windowed-join packs —
// fraud-detection velocity checks or monitoring threshold breaches —
// from internal/workload, honouring the endpoint's backpressure
// contract (429 + Retry-After) when the session falls behind.
//
// Usage examples:
//
//	streaming                       # in-process server, fraud pack
//	streaming -pack monitor -events 5000
//	streaming -addr localhost:8080  # against a running psmd
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "psmd address (host:port); empty starts an in-process server")
	pack := flag.String("pack", "fraud", "rule pack: fraud or monitor")
	events := flag.Int("events", 2000, "events to stream")
	batch := flag.Int("batch", 250, "events per POST (one NDJSON body)")
	matcher := flag.String("matcher", "", "matcher (rete, parallel-rete, ...; empty = server default)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		srv := server.New(server.Config{})
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Printf("in-process server at %s\n", base)
	}
	api := base + server.APIVersion

	var program, alertClass string
	var evs []workload.Event
	switch *pack {
	case "fraud":
		program, alertClass = workload.FraudRules, "alert"
		p := workload.DefaultFraudParams()
		p.Events = *events
		evs = workload.FraudEvents(p)
		fmt.Printf("fraud pack: %d txns over %d cards, velocity window %d ticks\n",
			p.Events, p.Cards, p.Window)
	case "monitor":
		program, alertClass = workload.MonitorRules, "alert"
		p := workload.DefaultMonitorParams()
		p.Events = *events
		evs = workload.MonitorEvents(p)
		fmt.Printf("monitor pack: %d samples over %d hosts, sustain window %d ticks\n",
			p.Events, p.Hosts, p.Window)
	default:
		fmt.Fprintf(os.Stderr, "streaming: unknown pack %q\n", *pack)
		os.Exit(2)
	}

	const id = "stream-demo"
	create, err := json.Marshal(server.CreateRequest{ID: id, Program: program, Matcher: *matcher})
	if err != nil {
		fatal(err)
	}
	resp, err := http.Post(api+"/sessions", "application/json", bytes.NewReader(create))
	if err != nil {
		fatal(err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusCreated {
		fatal(fmt.Errorf("create session: %s", resp.Status))
	}

	t0 := time.Now()
	var applied, fired, expired int
	for start := 0; start < len(evs); start += *batch {
		end := min(start+*batch, len(evs))
		res := stream(api, id, workload.NDJSON(evs[start:end]))
		applied += res.Events
		fired += res.Fired
		expired += res.Expired
		fmt.Printf("batch %3d: %4d events  clock %5d  fired %4d  expired %4d  wm %5d  alerts %d\n",
			start / *batch, res.Events, res.Clock, res.Fired, res.Expired,
			res.WMSize, countClass(api, id, alertClass))
	}
	sec := time.Since(t0).Seconds()
	fmt.Printf("\n%d events in %.2fs (%.0f events/s), %d firings, %d expiries\n",
		applied, sec, float64(applied)/sec, fired, expired)
	fmt.Println("\ndaemon stream counters:")
	echoMetrics(base, "psmd_stream_", "psmd_expired_")
}

// stream posts one NDJSON batch, sleeping out 429 backpressure
// responses per their Retry-After header.
func stream(api, id string, body []byte) server.StreamResponse {
	for {
		resp, err := http.Post(api+"/sessions/"+id+"/stream", "application/x-ndjson",
			bytes.NewReader(body))
		if err != nil {
			fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := 50 * time.Millisecond
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
				wait = time.Duration(s) * time.Second
			}
			fmt.Printf("backpressure: session busy, retrying in %v\n", wait)
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("stream: %s: %s", resp.Status, data))
		}
		var res server.StreamResponse
		if err := json.Unmarshal(data, &res); err != nil {
			fatal(err)
		}
		return res
	}
}

// countClass counts live facts of one class via GET .../wm?class=.
func countClass(api, id, class string) int {
	resp, err := http.Get(api + "/sessions/" + id + "/wm?class=" + class)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	var wmes []server.WireWME
	if err := json.NewDecoder(resp.Body).Decode(&wmes); err != nil {
		fatal(err)
	}
	return len(wmes)
}

// echoMetrics prints the daemon counters whose names carry any of the
// given prefixes.
func echoMetrics(base string, prefixes ...string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, p := range prefixes {
			if strings.HasPrefix(line, p) {
				fmt.Println("  " + line)
			}
		}
	}
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "streaming: %v\n", err)
	os.Exit(1)
}
