// Blocks world: a classic production-system planning task. Rules
// unstack whatever is in the way and stack blocks until every
// (goal-on ^top ^below) goal holds.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/conflict"
	"repro/internal/workload"
)

func main() {
	// Initial towers (bottom to top) and the goal configuration.
	stacks := [][]string{
		{"a", "b", "c"},
		{"d", "e"},
		{"f"},
	}
	goals := [][2]string{
		{"a", "d"}, // a on d
		{"c", "e"}, // c on e
	}

	fmt.Println("initial stacks (bottom→top):", stacks)
	fmt.Println("goals (top on below):      ", goals)
	fmt.Println()

	wmes := workload.BlocksWorldWM(stacks, goals)
	_, eng, err := workload.Capture("blocks-world", workload.BlocksWorld, wmes,
		workload.RunConfig{Strategy: conflict.LEX, MaxCycles: 200, Out: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinished in %d cycles (%d firings), halted=%v\n",
		eng.Cycles, eng.Fired, eng.Halted)
	fmt.Println("final on-relations:")
	for _, w := range eng.WM.Elements() {
		if w.Class() == "on" {
			fmt.Printf("  %s on %s\n", w.Get("top"), w.Get("below"))
		}
	}
}
