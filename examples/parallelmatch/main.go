// Parallelmatch measures the real (goroutine) fine-grain parallel Rete
// matcher against the serial matcher on this machine, sweeping the
// worker count — the live counterpart of the paper's simulated
// Figure 6-1. A large random rule program and wide WM-change batches
// provide enough node activations per batch for the worker pool to
// exploit.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/prete"
	"repro/internal/rete"
)

func main() {
	prods := flag.Int("prods", 150, "number of random productions")
	batches := flag.Int("batches", 60, "number of WM-change batches")
	batchSize := flag.Int("batch", 40, "changes per batch")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	params := matchtest.DefaultGenParams()
	params.Productions = *prods
	params.MaxCEs = 3
	params.Classes = 6
	params.Values = 5
	program := matchtest.RandomProgram(rng, params)
	script := matchtest.RandomScript(rng, params, *batches, *batchSize)
	var nChanges int
	for _, b := range script.Batches {
		nChanges += len(b)
	}
	fmt.Printf("%d productions, %d batches, %d WM changes, GOMAXPROCS=%d\n\n",
		len(program), *batches, nChanges, runtime.GOMAXPROCS(0))

	// Serial Rete baseline.
	serial := measureSerial(program, script)
	fmt.Printf("%-16s %10s %12s %9s\n", "matcher", "time", "wme-ch/s", "speed-up")
	fmt.Printf("%-16s %10s %12.0f %9s\n", "serial rete", serial.Round(time.Millisecond),
		float64(nChanges)/serial.Seconds(), "1.00")

	workerSet := []int{1, 2, 4, 8}
	if g := runtime.GOMAXPROCS(0); g > 8 {
		workerSet = append(workerSet, g)
	}
	for _, workers := range workerSet {
		d := measureParallel(program, script, workers)
		fmt.Printf("parallel (w=%-3d) %10s %12.0f %9.2f\n", workers,
			d.Round(time.Millisecond), float64(nChanges)/d.Seconds(),
			serial.Seconds()/d.Seconds())
	}
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("\n(This host has a single CPU: the worker pool cannot run activations")
		fmt.Println("in parallel, so what you see is the pure scheduling/locking overhead of")
		fmt.Println("fine-grain tasking — the paper's §6 'lost factor' isolated. On a")
		fmt.Println("multi-core host the w>1 rows show real speed-up against the same")
		fmt.Println("overhead; the PSM simulator (cmd/psmsim) reproduces the paper's")
		fmt.Println("32-processor scaling either way.)")
	} else {
		fmt.Println("\n(The paper's point holds on real hardware too: fine-grain speed-up is")
		fmt.Println("real but bounded — the per-activation scheduling and locking overhead")
		fmt.Println("eats into the available parallelism, its §6 'lost factor'.)")
	}
}

// cloneScript re-tags fresh WME copies so each run is independent.
func cloneScript(script *matchtest.Script) [][]ops5.Change {
	clones := make(map[*ops5.WME]*ops5.WME)
	out := make([][]ops5.Change, len(script.Batches))
	for i, b := range script.Batches {
		row := make([]ops5.Change, len(b))
		for j, ch := range b {
			w, ok := clones[ch.WME]
			if !ok {
				w = ch.WME.Clone()
				clones[ch.WME] = w
			}
			row[j] = ops5.Change{Kind: ch.Kind, WME: w}
		}
		out[i] = row
	}
	return out
}

func measureSerial(prods []*ops5.Production, script *matchtest.Script) time.Duration {
	net, err := rete.Compile(prods)
	if err != nil {
		log.Fatal(err)
	}
	batches := cloneScript(script)
	start := time.Now()
	for _, b := range batches {
		net.Apply(b)
	}
	return time.Since(start)
}

func measureParallel(prods []*ops5.Production, script *matchtest.Script, workers int) time.Duration {
	m, err := prete.New(prods, workers)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	batches := cloneScript(script)
	start := time.Now()
	for _, b := range batches {
		m.Apply(b)
	}
	return time.Since(start)
}
