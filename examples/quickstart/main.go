// Quickstart: define a small rule program, run the recognize-act
// engine, and inspect the result — the paper's Figure 2-1 production
// against a tiny working memory.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/ops5"
)

const rules = `
; The paper's Figure 2-1: find an unselected block of the goal colour.
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
  -->
    (modify 2 ^selected yes)
    (write selected block <i>))

; When a block is selected, the goal is done.
(p goal-done
    (goal ^type find-blk ^color <c>)
    (block ^color <c> ^selected yes)
  -->
    (remove 1)
    (write goal satisfied)
    (halt))
`

func main() {
	sys, err := core.NewSystem(rules, core.Options{
		Matcher: core.SerialRete,
		Output:  os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Assert the initial working memory through the API (top-level
	// (make ...) forms in the source work too).
	sys.Assert(
		ops5.NewWME("goal", "type", "find-blk", "color", "red"),
		ops5.NewWME("block", "id", 1, "color", "blue", "selected", "no"),
		ops5.NewWME("block", "id", 2, "color", "red", "selected", "no"),
		ops5.NewWME("block", "id", 3, "color", "red", "selected", "no"),
	)

	cycles, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nran %d cycles, fired %d productions, halted=%v\n",
		cycles, sys.Fired, sys.Halted)
	fmt.Println("final working memory:")
	for _, w := range sys.WM.Elements() {
		fmt.Println(" ", w)
	}
}
