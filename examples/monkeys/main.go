// Monkey and bananas: the classic means-ends planning demo, run with
// the MEA conflict-resolution strategy (the time tag of the goal
// element matching the first condition element dominates selection).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	sys, err := core.NewSystem(workload.MonkeyBananas, core.Options{
		Matcher:  core.SerialRete,
		Strategy: conflict.MEA,
		Output:   os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplanned in %d cycles with %s conflict resolution\n",
		cycles, sys.CS.Strategy())
	fmt.Println("final world state:")
	for _, w := range sys.WM.Elements() {
		fmt.Println(" ", w)
	}
}
