// Waterjug runs the classic Soar water-jug task on the Soar-lite
// decision layer: parallel elaboration waves propose operators through
// preference WMEs, a tie impasse over the initial fills is resolved in
// a subgoal, and the pour-first strategy measures 4 units into the
// 5-unit jug. The captured activation trace is then simulated on the
// PSM with and without the parallel elaboration batches — the paper's
// "parallel firings" effect on a real program.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/ops5"
	"repro/internal/psm"
	"repro/internal/soar"
)

func main() {
	agent, err := soar.NewAgent(soar.WaterJug, soar.Options{
		Out:   os.Stdout,
		Trace: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	agent.Engine().OnFire = func(in *ops5.Instantiation) {
		fmt.Printf("  fire %s\n", in.Production.Name)
	}
	decisions, err := agent.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecisions=%d impasses=%d elaboration-waves=%d halted=%v\n",
		decisions, agent.Impasses, agent.Waves, agent.Halted)
	fmt.Println("final jugs:")
	for _, w := range agent.Engine().WM.OfClass("jug") {
		fmt.Printf("  jug %s: %s/%s\n", w.Get("id"), w.Get("amount"), w.Get("capacity"))
	}

	tr := &agent.Recorder.Trace
	r := psm.Simulate(tr, psm.DefaultConfig(32))
	fmt.Printf("\nPSM simulation of the run's trace (32 procs): concurrency=%.2f speed-up=%.2f\n",
		r.Concurrency, r.TrueSpeedup)
	fmt.Println("(Elaboration waves batch several rule firings into one match cycle —")
	fmt.Println("the application-level parallelism behind the paper's 'parallel")
	fmt.Println("firings' curves in Figures 6-1 and 6-2.)")
}
