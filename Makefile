GO ?= go

.PHONY: all build test race vet fmt-check check bench bench-all bench-compare bench-baseline soak serve profile clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# RACE_PKGS is the one list of race-tested packages — the concurrent
# layers: the sharded service, the parallel matcher, the engine's
# context-aware run loop, the durability layer's fsync ticker, and the
# cluster subsystem (heartbeats, WAL shipping, failover) with its
# in-process multi-node integration tests.
# Both `race` and `check` use it, so the two can never disagree.
RACE_PKGS = ./internal/server/... ./internal/prete/... ./internal/engine ./internal/durable/... ./internal/cluster/...

race:
	$(GO) test -race $(RACE_PKGS)

vet:
	$(GO) vet ./...

# fmt-check fails (listing the files) when anything needs gofmt.
fmt-check:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; fi

# check is the pre-merge gate: vet, gofmt, the full suite, and
# race-mode runs of the concurrent layers (RACE_PKGS).
check: vet fmt-check test race

# bench runs the tier-1 headline benchmarks and records each as a
# go test -json stream, for before/after comparisons across changes.
bench:
	$(GO) test -json -run '^$$' -bench BenchmarkMissManners -benchmem . > BENCH_manners.json
	$(GO) test -json -run '^$$' -bench BenchmarkServerThroughput -benchmem . > BENCH_server.json
	$(GO) test -json -run '^$$' -bench BenchmarkPreteApply -benchmem . > BENCH_prete.json
	$(GO) test -json -run '^$$' -bench BenchmarkStreamThroughput -benchmem . > BENCH_stream.json

# bench-all runs every benchmark with human-readable output.
bench-all:
	$(GO) test -bench=. -benchmem .

# bench-compare reruns the tracked benchmarks and gates them against
# the checked-in baselines in bench/baseline/ (>10% regression fails;
# see cmd/benchcmp). The single-process matcher benchmark also gates
# allocs/op — allocation counts are deterministic there, so any
# regression is a real code change, not noise. The server benchmark
# (goroutines, HTTP buffers) gates time/throughput only. The parallel
# matcher benchmark gates the paper-§6 true-speedup: a regression
# against baseline beyond the threshold fails, as does any value under
# PRETE_SPEEDUP_FLOOR. Wall-derived metrics on a single-CPU shared
# host show ~±10% run-to-run noise, so the parallel benchmark gates at
# 20% relative and leans on the absolute floor as the backstop. On
# multi-core hardware set the floor to 1.0 (the pool must beat the
# serial matcher); the default 0.65 is calibrated for a single-CPU
# host, where the pool cannot exceed serial and the floor instead pins
# its overhead (measured 0.77-0.89 quiet, dipping to ~0.70 under
# transient load, PR 9). The streaming benchmark gates events/s and
# allocs/op at 20% — ingest crosses the HTTP stack, so time-derived
# numbers are noisier than the pure matcher runs, while allocation
# counts stay deterministic. Run bench-baseline to accept current
# numbers as the new baseline.
PRETE_SPEEDUP_FLOOR ?= 0.65
bench-compare: bench
	$(GO) run ./cmd/benchcmp -gate-allocs bench/baseline/BENCH_manners.json BENCH_manners.json
	$(GO) run ./cmd/benchcmp bench/baseline/BENCH_server.json BENCH_server.json
	$(GO) run ./cmd/benchcmp -threshold 20 -gate-speedup -speedup-floor $(PRETE_SPEEDUP_FLOOR) \
		bench/baseline/BENCH_prete.json BENCH_prete.json
	$(GO) run ./cmd/benchcmp -threshold 20 -gate-allocs \
		bench/baseline/BENCH_stream.json BENCH_stream.json

bench-baseline: bench
	mkdir -p bench/baseline
	cp BENCH_manners.json BENCH_server.json BENCH_prete.json BENCH_stream.json bench/baseline/

# soak runs the kill/promote streaming soak (see
# internal/cluster/clustertest/soak_test.go) under the race detector.
# The default duration gives the nightly shape in miniature — one
# kill/promote round every quarter of the run; the nightly workflow
# sets SOAK_DURATION=10m. Failure artifacts land in SOAK_ARTIFACTS.
SOAK_DURATION ?= 5s
soak:
	SOAK_DURATION=$(SOAK_DURATION) SOAK_ARTIFACTS=$(SOAK_ARTIFACTS) \
		$(GO) test -race -v -timeout 30m -run TestClusterStreamSoak \
		./internal/cluster/clustertest

serve: build
	$(GO) run ./cmd/psmd -addr :8080

# profile grabs a CPU profile from a running psmd's /debug/pprof and
# prints the hottest functions (override PSMD_ADDR / PROFILE_SECONDS).
PSMD_ADDR ?= localhost:8080
PROFILE_SECONDS ?= 5
profile:
	$(GO) tool pprof -top -seconds $(PROFILE_SECONDS) \
		http://$(PSMD_ADDR)/debug/pprof/profile

clean:
	$(GO) clean ./...
