GO ?= go

.PHONY: all build test race vet bench serve clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the sharded service, the parallel
# matcher, and the engine's context-aware run loop.
race:
	$(GO) test -race ./internal/server/... ./internal/prete ./internal/engine

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

serve: build
	$(GO) run ./cmd/psmd -addr :8080

clean:
	$(GO) clean ./...
