GO ?= go

.PHONY: all build test race vet check bench bench-all serve clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrent layers: the sharded service, the parallel
# matcher, and the engine's context-aware run loop.
race:
	$(GO) test -race ./internal/server/... ./internal/prete ./internal/engine

vet:
	$(GO) vet ./...

# check is the pre-merge gate: vet, the full suite, and race-mode runs
# of the lock-striped parallel matcher and the sharded service.
check: vet test
	$(GO) test -race ./internal/prete/... ./internal/server/...

# bench runs the tier-1 headline benchmarks and records each as a
# go test -json stream, for before/after comparisons across changes.
bench:
	$(GO) test -json -run '^$$' -bench BenchmarkMissManners -benchmem . > BENCH_manners.json
	$(GO) test -json -run '^$$' -bench BenchmarkServerThroughput -benchmem . > BENCH_server.json

# bench-all runs every benchmark with human-readable output.
bench-all:
	$(GO) test -bench=. -benchmem .

serve: build
	$(GO) run ./cmd/psmd -addr :8080

clean:
	$(GO) clean ./...
