package cluster

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/server"
	"repro/internal/server/stats"
)

// Config wires one node into the cluster.
type Config struct {
	// Self is this node's ID (must appear in Peers).
	Self string
	// Peers maps every cluster node ID to its base URL (the -peers
	// flag, parsed). Self's entry is ignored for dialing.
	Peers map[string]string
	// Replicas is the total copies per session, owner included
	// (default 2: one owner, one follower).
	Replicas int
	// VNodes is the ring's virtual nodes per member (default 64).
	VNodes int
	// Forward proxies misrouted requests to the owner instead of
	// answering 307 (the -forward flag).
	Forward bool
	// Heartbeat is the ping/reconcile period (default 1s).
	Heartbeat time.Duration
	// SuspectAfter / DeadAfter are heartbeat-silence thresholds
	// (defaults 3x and 10x Heartbeat). Dead peers leave the ring and
	// their sessions fail over.
	SuspectAfter, DeadAfter time.Duration
	// Client performs intra-cluster HTTP (default: 5s timeout).
	Client *http.Client
	// Logger receives cluster events (default: the server's logger).
	Logger *slog.Logger
	// Version is the build version reported on /v1/cluster/status.
	Version string
}

// Node is the cluster runtime bound to one server: membership and
// heartbeats, WAL shippers for owned sessions, standby replicas for
// peers' sessions, and the reconcile loop that moves ownership. It is
// the server's Replicator and wraps its HTTP handler (see Handler).
type Node struct {
	cfg    Config
	srv    *server.Server
	mem    *membership
	client *http.Client
	logger *slog.Logger

	mu       sync.Mutex
	shippers map[string]*shipper
	standbys map[string]*durable.Standby
	started  bool

	stop     chan struct{}
	loopDone chan struct{}
	shipWG   sync.WaitGroup
	draining atomic.Bool
	// createSeq numbers the session IDs this node generates for create
	// requests that did not pick one; the node ID prefix keeps them
	// collision-free across the cluster.
	createSeq atomic.Int64

	shipRecords *stats.Counter
	shipBytes   *stats.Counter
	shipErrors  *stats.Counter
	failovers   *stats.Counter
	handoffs    *stats.Counter
	standbyG    *stats.Gauge
}

// New validates the config and builds the node. Pass the node as
// server.Config.Replicator, build the server, then call Start — the
// split exists because the server recovers sessions inside server.New
// (firing SessionUp) before the node can possibly hold a server
// reference. SessionUp before Start only records the session; shipping
// begins at Start.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: -node is required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: -peers must include this node %q", cfg.Self)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > len(cfg.Peers) {
		cfg.Replicas = len(cfg.Peers)
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.Heartbeat
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 10 * cfg.Heartbeat
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return &Node{
		cfg:      cfg,
		mem:      newMembership(cfg.Self, cfg.Peers, cfg.SuspectAfter, cfg.DeadAfter, time.Now()),
		client:   cfg.Client,
		shippers: make(map[string]*shipper),
		standbys: make(map[string]*durable.Standby),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}, nil
}

// Start binds the node to its server, registers cluster metrics,
// reopens standby replicas left on disk by an earlier run, launches
// shippers for sessions recovered before Start, and starts the
// heartbeat/reconcile loop.
func (n *Node) Start(srv *server.Server) error {
	if srv.DataDir() == "" {
		return fmt.Errorf("cluster: cluster mode requires -data-dir (WAL shipping replicates durable state)")
	}
	n.srv = srv
	if n.cfg.Logger == nil {
		n.cfg.Logger = srv.Logger()
	}
	n.logger = n.cfg.Logger
	r := srv.Registry()
	n.shipRecords = r.Counter("psmd_ship_records_total", "WAL records shipped to follower replicas")
	n.shipBytes = r.Counter("psmd_ship_bytes_total", "bytes shipped to follower replicas (records and snapshots)")
	n.shipErrors = r.Counter("psmd_ship_errors_total", "failed replica pushes")
	n.failovers = r.Counter("psmd_failovers_total", "standby replicas promoted after owner death")
	n.handoffs = r.Counter("psmd_handoffs_total", "sessions handed off to their preferred owner")
	n.standbyG = r.Gauge("psmd_standby_sessions", "standby replicas held for peers' sessions")
	r.GaugeFunc("psmd_replication_lag_records",
		"largest per-session WAL distance between owner and slowest follower",
		func() float64 { return float64(n.maxLag()) })
	for _, st := range []PeerState{StateAlive, StateSuspect, StateDead} {
		st := st
		r.GaugeFunc(fmt.Sprintf("psmd_cluster_peers{state=%q}", st.String()),
			"peers by heartbeat-derived state",
			func() float64 { return float64(n.countPeers(st)) })
	}

	if err := n.reopenStandbys(); err != nil {
		return err
	}
	n.mu.Lock()
	n.started = true
	shippers := make([]*shipper, 0, len(n.shippers))
	for _, sp := range n.shippers {
		shippers = append(shippers, sp)
	}
	n.mu.Unlock()
	for _, sp := range shippers {
		n.shipWG.Add(1)
		go func(sp *shipper) { defer n.shipWG.Done(); sp.run() }(sp)
	}
	go n.loop()
	n.logger.Info("cluster node started",
		"node", n.cfg.Self, "peers", len(n.cfg.Peers)-1,
		"replicas", n.cfg.Replicas, "heartbeat", n.cfg.Heartbeat)
	return nil
}

// Stop halts the heartbeat loop and every shipper, then closes
// standbys. It does not touch live sessions — the server's own
// Close/Abort handles those.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started {
		n.mu.Unlock()
		return
	}
	n.started = false
	for id, sp := range n.shippers {
		close(sp.stop)
		delete(n.shippers, id)
	}
	standbys := n.standbys
	n.standbys = make(map[string]*durable.Standby)
	n.mu.Unlock()
	close(n.stop)
	<-n.loopDone
	n.shipWG.Wait()
	for _, st := range standbys {
		st.Close()
	}
	n.standbyG.Set(0)
}

// replicaDir is where this node keeps its standby copy of a session.
// It lives under dataDir/replica so the server's startup recovery
// (which scans only dataDir's direct children) never resurrects a
// standby as a live session.
func (n *Node) replicaDir(id string) string {
	return filepath.Join(n.srv.DataDir(), "replica", hex.EncodeToString([]byte(id)))
}

// reopenStandbys reattaches standby directories a previous run left on
// disk, so a restarted node rejoins as a follower at its old positions.
func (n *Node) reopenStandbys() error {
	root := filepath.Join(n.srv.DataDir(), "replica")
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			n.logger.Warn("skipping unrecognised replica dir", "dir", e.Name())
			continue
		}
		id := string(raw)
		st, err := durable.OpenStandby(filepath.Join(root, e.Name()))
		if err != nil {
			n.logger.Warn("reopening standby failed", "session", id, "err", err)
			continue
		}
		n.mu.Lock()
		n.standbys[id] = st
		n.mu.Unlock()
		n.logger.Info("standby reopened", "session", id, "seq", st.Seq())
	}
	n.mu.Lock()
	n.standbyG.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	return nil
}

// SessionUp implements server.Replicator: a durable session became
// live here, so it needs a shipper. Runs on a shard goroutine (or
// single-threaded startup recovery) and never blocks.
func (n *Node) SessionUp(id string, log *durable.Log) {
	seq, _, _, _ := log.Stats()
	sp := newShipper(n, id, seq)
	log.SetOnRecord(sp.enqueue)
	n.mu.Lock()
	if old := n.shippers[id]; old != nil {
		close(old.stop)
	}
	n.shippers[id] = sp
	started := n.started
	n.mu.Unlock()
	if started {
		n.shipWG.Add(1)
		go func() { defer n.shipWG.Done(); sp.run() }()
	}
}

// SessionDown implements server.Replicator: the session stopped being
// live here. Runs on a shard goroutine — it signals the shipper and
// returns without waiting (the shipper's export dispatch may be queued
// behind this very call). On API deletion the follower replicas are
// torn down too, asynchronously.
func (n *Node) SessionDown(id string, deleted bool) {
	n.mu.Lock()
	sp := n.shippers[id]
	delete(n.shippers, id)
	n.mu.Unlock()
	if sp != nil {
		close(sp.stop)
	}
	if deleted {
		followers := n.followersFor(id)
		go func() {
			for _, p := range followers {
				if err := n.deleteReplica(p, id); err != nil {
					n.logger.Warn("replica delete failed", "session", id, "peer", p.id, "err", err)
				}
			}
		}()
	}
}

// ring builds placement from the current health view.
func (n *Node) ring(now time.Time) *Ring {
	return NewRing(n.mem.ringMembers(now), n.cfg.VNodes)
}

// followersFor returns the non-dead peers that should hold replicas of
// a session this node owns: the ring's preference list after self,
// truncated to Replicas−1 copies.
func (n *Node) followersFor(id string) []*peer {
	now := time.Now()
	pref := n.ring(now).Prefer(id, n.cfg.Replicas)
	var out []*peer
	for _, nodeID := range pref {
		if nodeID == n.cfg.Self {
			continue
		}
		if p := n.mem.peers[nodeID]; p != nil && n.mem.state(p, now) != StateDead {
			out = append(out, p)
		}
	}
	if len(out) > n.cfg.Replicas-1 {
		out = out[:n.cfg.Replicas-1]
	}
	return out
}

// maxLag is the worst per-session replication lag (the gauge).
func (n *Node) maxLag() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var max int64
	for _, sp := range n.shippers {
		if l := sp.lag(); l > max {
			max = l
		}
	}
	return max
}

// countPeers counts peers in one state (the labelled peers gauge).
func (n *Node) countPeers(st PeerState) int {
	now := time.Now()
	c := 0
	for _, p := range n.mem.peers {
		if n.mem.state(p, now) == st {
			c++
		}
	}
	return c
}

// loop is the heartbeat/reconcile driver.
func (n *Node) loop() {
	defer close(n.loopDone)
	t := time.NewTicker(n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.pingAll()
			if !n.draining.Load() {
				n.reconcile(time.Now())
			}
		}
	}
}

// pingAll heartbeats every peer concurrently and waits for the round.
func (n *Node) pingAll() {
	var wg sync.WaitGroup
	for _, p := range n.mem.peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			sessions, draining, err := n.ping(p)
			if err != nil {
				n.mem.markFailed(p.id, err)
				return
			}
			if sessions == nil {
				// An empty table is omitted on the wire; it is still
				// an authoritative report, unlike the nil that means
				// "liveness only" on the receive path.
				sessions = map[string]sessionReport{}
			}
			n.mem.markAlive(p.id, sessions, draining, time.Now())
		}(p)
	}
	wg.Wait()
}

// sessionsReport is this node's piggyback payload: every durable
// session it holds, live or standby, with its WAL position.
func (n *Node) sessionsReport() map[string]sessionReport {
	out := make(map[string]sessionReport)
	n.mu.Lock()
	for id, st := range n.standbys {
		out[id] = sessionReport{Seq: st.Seq()}
	}
	n.mu.Unlock()
	for id, seq := range n.srv.DurableSeqs() {
		out[id] = sessionReport{Seq: seq, Live: true}
	}
	return out
}

// reconcile converges local state with the ring: resolve duplicate
// owners, hand misplaced sessions to their preferred node, and promote
// standbys whose owner is gone.
func (n *Node) reconcile(now time.Time) {
	ring := n.ring(now)
	members := ring.Nodes()

	// Live sessions: am I the right owner, and the only one?
	for id, seq := range n.srv.DurableSeqs() {
		rank := ring.Prefer(id, len(members))
		if holder, hseq := n.liveClaim(id, now); holder != "" {
			// Someone else also serves this session — the split a
			// crashed owner's rejoin creates. Newest state wins; a tie
			// goes to preference order — unless the holder is draining:
			// a drained process reports its inventory one last time and
			// exits, so its claim is stale the moment it hands the
			// session here, and losing the tie to it would strand the
			// session until the dead timer clears the ghost claim.
			stale := hseq > seq || (hseq == seq && !n.mem.peerDraining(holder) &&
				indexOf(rank, holder) < indexOf(rank, n.cfg.Self))
			if stale {
				n.logger.Warn("demoting stale duplicate session",
					"session", id, "local_seq", seq, "holder", holder, "holder_seq", hseq)
				if err := n.demoteToStandby(id); err != nil {
					n.logger.Error("demote failed", "session", id, "err", err)
				}
			}
			// We hold the freshest copy; the stale holder demotes when
			// its next heartbeat shows our sequence. Handing off now
			// would bounce off its 409 with our session parked as a
			// standby, so wait for the claim to clear.
			continue
		}
		if len(rank) > 0 && rank[0] != n.cfg.Self {
			if p := n.handoffTarget(rank[0], now); p != nil {
				if err := n.handoff(id, p); err != nil {
					n.logger.Warn("handoff failed", "session", id, "target", p.id, "err", err)
				}
			}
		}
	}

	// Standbys: promote when the owner is gone and this node holds the
	// freshest reachable copy (ties broken by preference order). A peer
	// we have never completed a heartbeat with might be serving anything
	// — promoting past it would split the brain at startup — so every
	// non-dead peer must have reported its session inventory first.
	if !n.mem.allReported(now) {
		return
	}
	n.mu.Lock()
	ids := make([]string, 0, len(n.standbys))
	seqs := make(map[string]int64, len(n.standbys))
	for id, st := range n.standbys {
		ids = append(ids, id)
		seqs[id] = st.Seq()
	}
	n.mu.Unlock()
	sort.Strings(ids)
	for _, id := range ids {
		if n.srv.HasSession(id) {
			continue // already live here; the shipper covers followers
		}
		if holder, _ := n.liveClaim(id, now); holder != "" {
			continue // an owner is serving it
		}
		rank := ring.Prefer(id, len(members))
		best, bestSeq := n.cfg.Self, seqs[id]
		for _, p := range n.mem.peers {
			if n.mem.state(p, now) == StateDead {
				continue
			}
			p.mu.Lock()
			rep, ok := p.sessions[id]
			p.mu.Unlock()
			if !ok {
				continue
			}
			if rep.Seq > bestSeq || (rep.Seq == bestSeq && indexOf(rank, p.id) < indexOf(rank, best)) {
				best, bestSeq = p.id, rep.Seq
			}
		}
		if best != n.cfg.Self {
			continue // a fresher (or better-placed equal) copy exists
		}
		n.logger.Warn("owner gone; promoting standby",
			"session", id, "seq", seqs[id])
		if err := n.promoteStandby(id); err != nil {
			n.logger.Error("promotion failed", "session", id, "err", err)
			continue
		}
		n.failovers.Inc()
	}
}

// liveClaim reports a non-dead peer currently claiming the session
// live, preferring the highest sequence ("" if none). Suspect peers
// count: their claim is stale by at most DeadAfter, and honouring it
// prevents premature double-ownership.
func (n *Node) liveClaim(id string, now time.Time) (holder string, seq int64) {
	for _, p := range n.mem.peers {
		if n.mem.state(p, now) == StateDead {
			continue
		}
		p.mu.Lock()
		rep, ok := p.sessions[id]
		p.mu.Unlock()
		if ok && rep.Live && (holder == "" || rep.Seq > seq) {
			holder, seq = p.id, rep.Seq
		}
	}
	return holder, seq
}

// alivePeer returns the peer if it is currently alive. Draining peers
// count: they keep serving until they exit.
func (n *Node) alivePeer(id string, now time.Time) *peer {
	p := n.mem.peers[id]
	if p == nil || n.mem.state(p, now) != StateAlive {
		return nil
	}
	return p
}

// handoffTarget returns the peer only if it can durably accept a
// session: alive and not draining. Handing a session to a draining
// peer would orphan it when that peer exits moments later.
func (n *Node) handoffTarget(id string, now time.Time) *peer {
	p := n.alivePeer(id, now)
	if p == nil {
		return nil
	}
	p.mu.Lock()
	draining := p.draining
	p.mu.Unlock()
	if draining {
		return nil
	}
	return p
}

// demoteToStandby takes a local live session out of service and keeps
// its state as a standby replica (the stale-duplicate and handoff
// path). The live durable directory moves into the replica area.
func (n *Node) demoteToStandby(id string) (err error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir, err := n.srv.Demote(ctx, id)
	if err != nil {
		return err
	}
	dst := n.replicaDir(id)
	if err := os.MkdirAll(filepath.Dir(dst), 0o777); err != nil {
		return err
	}
	if err := os.RemoveAll(dst); err != nil {
		return err
	}
	if err := os.Rename(dir, dst); err != nil {
		return fmt.Errorf("cluster: move demoted session to replica area: %w", err)
	}
	st, err := durable.OpenStandby(dst)
	if err != nil {
		return fmt.Errorf("cluster: reopen demoted session as standby: %w", err)
	}
	n.mu.Lock()
	n.standbys[id] = st
	n.standbyG.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	return nil
}

// handoff moves ownership of a local session to its preferred node:
// demote locally (final snapshot), keep the state as a standby, push
// the full state to the target, and ask it to promote.
func (n *Node) handoff(id string, target *peer) error {
	if err := n.demoteToStandby(id); err != nil {
		return err
	}
	n.mu.Lock()
	st := n.standbys[id]
	n.mu.Unlock()
	if st == nil {
		return fmt.Errorf("cluster: handoff %q: standby vanished", id)
	}
	manifest, snap, tail, err := st.Export()
	if err != nil {
		return err
	}
	if _, err := n.pushSnapshot(target, id, manifest, snap); err != nil {
		return fmt.Errorf("cluster: handoff %q: push snapshot: %w", id, err)
	}
	if len(tail) > 0 {
		if _, gap, err := n.pushRecords(target, id, tail); err != nil || gap {
			return fmt.Errorf("cluster: handoff %q: push tail (gap=%v): %v", id, gap, err)
		}
	}
	if err := n.requestPromote(target, id); err != nil {
		return fmt.Errorf("cluster: handoff %q: promote on %s: %w", id, target.id, err)
	}
	n.handoffs.Inc()
	n.logger.Info("session handed off", "session", id, "target", target.id)
	return nil
}

// promoteStandby turns a standby replica into the live session: close
// it, move the directory into the live data area, and adopt it through
// ordinary crash recovery. On failure the directory moves back and the
// standby reopens.
func (n *Node) promoteStandby(id string) error {
	n.mu.Lock()
	st := n.standbys[id]
	delete(n.standbys, id)
	n.standbyG.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	if st == nil {
		return fmt.Errorf("cluster: no standby for session %q", id)
	}
	if err := st.Close(); err != nil {
		return err
	}
	liveDir := n.srv.SessionDir(id)
	if err := os.Rename(st.Dir(), liveDir); err != nil {
		n.restoreStandby(id, st.Dir())
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := n.srv.AdoptSession(ctx, id); err != nil {
		if rerr := os.Rename(liveDir, st.Dir()); rerr == nil {
			n.restoreStandby(id, st.Dir())
		}
		return err
	}
	return nil
}

// restoreStandby reopens a standby after a failed promotion.
func (n *Node) restoreStandby(id, dir string) {
	st, err := durable.OpenStandby(dir)
	if err != nil {
		n.logger.Error("standby reopen after failed promotion", "session", id, "err", err)
		return
	}
	n.mu.Lock()
	n.standbys[id] = st
	n.standbyG.Set(int64(len(n.standbys)))
	n.mu.Unlock()
}

// Drain prepares this node for shutdown: stop taking new placement,
// then move every live session to a successor (final snapshot push +
// promote). Call after the HTTP server stopped accepting requests and
// before Stop. Sessions whose handoff fails stay on disk and fail over
// through their shipped replicas instead.
func (n *Node) Drain(ctx context.Context) {
	n.draining.Store(true)
	now := time.Now()
	ring := n.ring(now)
	for id := range n.srv.DurableSeqs() {
		select {
		case <-ctx.Done():
			n.logger.Warn("drain cut short", "err", ctx.Err())
			return
		default:
		}
		var target *peer
		for _, nodeID := range ring.Prefer(id, len(ring.Nodes())) {
			if nodeID == n.cfg.Self {
				continue
			}
			if p := n.handoffTarget(nodeID, now); p != nil {
				target = p
				break
			}
		}
		if target == nil {
			n.logger.Warn("drain: no successor for session", "session", id)
			continue
		}
		if err := n.handoff(id, target); err != nil {
			n.logger.Warn("drain handoff failed", "session", id, "target", target.id, "err", err)
		}
	}
}

// Draining reports whether Drain has begun (for /v1/cluster/status).
func (n *Node) Draining() bool { return n.draining.Load() }

// indexOf returns s's position in list (len(list) when absent), the
// preference rank used for tie-breaks.
func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return len(list)
}

// drainBody releases an HTTP response so the connection can be reused.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// GoVersion is the runtime's version string (for build info).
func GoVersion() string { return runtime.Version() }
