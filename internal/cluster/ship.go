package cluster

import (
	"bytes"
	"context"
	"sync/atomic"
	"time"
)

// shipFrame is one framed WAL record queued for shipping.
type shipFrame struct {
	seq  int64
	data []byte
}

// shipQueueDepth bounds each session's ship queue. The tee never
// blocks the engine: a full queue drops the frame and flips overflow,
// and the shipper falls back to a snapshot resync.
const shipQueueDepth = 256

// shipper streams one owned session's WAL to its follower replicas.
// The durable log's onRecord tee enqueues frames (non-blocking, from
// the session's shard goroutine); a dedicated goroutine drains the
// queue and pushes records — or, after any loss or divergence, a full
// snapshot — to each follower, tracking per-follower positions.
type shipper struct {
	n  *Node
	id string

	ch       chan shipFrame
	overflow atomic.Bool
	lastSeq  atomic.Int64 // owner WAL position (for the lag gauge)
	minAck   atomic.Int64 // slowest follower position, -1 = no followers
	stop     chan struct{}
	done     chan struct{}

	// links is the per-follower ship state, owned by the run goroutine.
	links map[string]*shipLink
}

// shipLink is the shipper's view of one follower.
type shipLink struct {
	seq      int64 // follower's acked WAL position
	needs    bool  // follower needs a snapshot resync
	cooldown int   // ticks to skip after a failure (backoff)
}

// failCooldown is how many ship rounds a failed link sits out.
const failCooldown = 4

func newShipper(n *Node, id string, seq int64) *shipper {
	sp := &shipper{
		n:     n,
		id:    id,
		ch:    make(chan shipFrame, shipQueueDepth),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		links: make(map[string]*shipLink),
	}
	sp.lastSeq.Store(seq)
	// Nothing is confirmed on any follower yet, so lag must read as the
	// full WAL distance, not zero — a caller waiting for lag 0 before a
	// destructive action (tests kill owners; operators reboot them)
	// would otherwise race the very first ship round.
	sp.minAck.Store(0)
	return sp
}

// enqueue is the durable log's onRecord tee. It runs under the log's
// mutex on the session's shard goroutine, so it must never block: when
// the queue is full the frame is dropped and the shipper resyncs every
// follower from a snapshot instead.
func (sp *shipper) enqueue(seq int64, frame []byte) {
	sp.lastSeq.Store(seq)
	select {
	case sp.ch <- shipFrame{seq, frame}:
	default:
		sp.overflow.Store(true)
	}
}

// lag is the slowest follower's distance behind the owner. Before the
// first round completes minAck is 0, so lag reports the whole WAL as
// unconfirmed; once a round has run with no followers configured,
// minAck is -1 and lag is 0.
func (sp *shipper) lag() int64 {
	ack := sp.minAck.Load()
	if ack < 0 {
		return 0
	}
	if d := sp.lastSeq.Load() - ack; d > 0 {
		return d
	}
	return 0
}

// run drains the queue and ships. A ticker round with an empty batch
// retries failed links and attaches followers the ring added.
func (sp *shipper) run() {
	defer close(sp.done)
	t := time.NewTicker(sp.n.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-sp.stop:
			return
		case f := <-sp.ch:
			sp.ship(sp.drain([]shipFrame{f}))
		case <-t.C:
			sp.ship(sp.drain(nil))
		}
	}
}

// drain empties the queue without blocking.
func (sp *shipper) drain(batch []shipFrame) []shipFrame {
	for {
		select {
		case f := <-sp.ch:
			batch = append(batch, f)
		default:
			return batch
		}
	}
}

// ship pushes batch (and any owed catch-up) to every current follower.
func (sp *shipper) ship(batch []shipFrame) {
	followers := sp.n.followersFor(sp.id)
	// Reconcile links with the ring's current follower set.
	seen := make(map[string]bool, len(followers))
	for _, p := range followers {
		seen[p.id] = true
		if sp.links[p.id] == nil {
			sp.links[p.id] = &shipLink{needs: true}
		}
	}
	for id := range sp.links {
		if !seen[id] {
			delete(sp.links, id)
		}
	}
	if sp.overflow.Swap(false) {
		// A frame was dropped: incremental shipping has a hole for
		// every follower.
		for _, l := range sp.links {
			l.needs = true
		}
	}

	// The snapshot export is shared across followers needing a resync
	// this round; exported lazily since most rounds need none.
	var exp *exportedState
	for _, p := range followers {
		l := sp.links[p.id]
		if l.cooldown > 0 {
			l.cooldown--
			continue
		}
		if l.needs {
			if exp == nil {
				var err error
				if exp, err = sp.export(); err != nil {
					sp.n.shipErrors.Inc()
					l.cooldown = failCooldown
					continue
				}
			}
			seq, err := sp.n.pushSnapshot(p, sp.id, exp.manifest, exp.snap)
			if err != nil {
				sp.n.shipErrors.Inc()
				sp.n.logger.Warn("replica snapshot push failed",
					"session", sp.id, "peer", p.id, "err", err)
				l.cooldown = failCooldown
				continue
			}
			l.seq, l.needs = seq, false
			sp.n.shipBytes.Add(int64(len(exp.manifest) + len(exp.snap)))
		}
		// Incremental records: the batch slice past the follower's
		// position must extend it contiguously, else it resyncs.
		var body bytes.Buffer
		var first, last int64
		count := 0
		for _, f := range batch {
			if f.seq <= l.seq {
				continue
			}
			if count == 0 {
				first = f.seq
			}
			body.Write(f.data)
			last = f.seq
			count++
		}
		if count == 0 {
			continue
		}
		if first != l.seq+1 {
			l.needs = true // hole between follower position and batch
			continue
		}
		seq, gap, err := sp.n.pushRecords(p, sp.id, body.Bytes())
		switch {
		case gap:
			l.needs = true
		case err != nil:
			sp.n.shipErrors.Inc()
			sp.n.logger.Warn("replica record push failed",
				"session", sp.id, "peer", p.id, "err", err)
			l.needs = true // unknown what landed; resync
			l.cooldown = failCooldown
		default:
			l.seq = seq
			if seq < last {
				l.needs = true
			}
			sp.n.shipRecords.Add(int64(count))
			sp.n.shipBytes.Add(int64(body.Len()))
		}
	}

	// Publish the slowest follower position for the lag gauge.
	if len(sp.links) == 0 {
		sp.minAck.Store(-1)
		return
	}
	min := int64(-1)
	for _, l := range sp.links {
		if l.needs {
			min = 0 // a resyncing follower is arbitrarily far behind
			break
		}
		if min < 0 || l.seq < min {
			min = l.seq
		}
	}
	sp.minAck.Store(min)
}

// exportedState is one session snapshot export, shared by every
// follower resyncing in the same round.
type exportedState struct {
	manifest, snap []byte
	seq            int64
}

// export snapshots the session inline on its shard. The dispatch fails
// fast if the shard is busy — the shipper retries next round rather
// than ever blocking behind the engine.
func (sp *shipper) export() (*exportedState, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	manifest, snap, seq, err := sp.n.srv.ExportDurable(ctx, sp.id)
	if err != nil {
		return nil, err
	}
	return &exportedState{manifest, snap, seq}, nil
}
