package cluster

import (
	"testing"
	"time"
)

// TestMembershipReleaseClaim covers the out-of-band evidence a promote
// request carries: the sender's live claim retires and its draining
// flag sets immediately, without waiting for a heartbeat round — and a
// later authoritative heartbeat table takes over again.
func TestMembershipReleaseClaim(t *testing.T) {
	now := time.Now()
	urls := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c"}
	m := newMembership("a", urls, time.Second, 2*time.Second, now)

	m.markAlive("c", map[string]sessionReport{"s": {Seq: 7, Live: true}}, false, now)
	if m.peerDraining("c") {
		t.Fatal("peer reads as draining before any evidence")
	}

	m.releaseClaim("c", "s")
	m.setDraining("c")
	p := m.peers["c"]
	p.mu.Lock()
	rep := p.sessions["s"]
	p.mu.Unlock()
	if rep.Live {
		t.Fatalf("claim still live after release: %+v", rep)
	}
	if rep.Seq != 7 {
		t.Fatalf("release lost the sequence: %+v", rep)
	}
	if !m.peerDraining("c") {
		t.Fatal("draining evidence not recorded")
	}

	// Unknown peers and sessions are no-ops, not panics.
	m.releaseClaim("zz", "s")
	m.releaseClaim("b", "zz")
	m.setDraining("zz")
	if m.peerDraining("zz") {
		t.Fatal("unknown peer reads as draining")
	}

	// The next authoritative inventory wins: the peer reports the
	// session live again (it re-adopted) and is no longer draining.
	m.markAlive("c", map[string]sessionReport{"s": {Seq: 9, Live: true}}, false, now)
	p.mu.Lock()
	rep = p.sessions["s"]
	p.mu.Unlock()
	if !rep.Live || rep.Seq != 9 {
		t.Fatalf("fresh heartbeat table did not replace the release: %+v", rep)
	}
	if m.peerDraining("c") {
		t.Fatal("draining flag survived an authoritative heartbeat saying otherwise")
	}
}
