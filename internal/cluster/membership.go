package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// PeerState is a peer's health as judged by this node's heartbeats.
type PeerState uint8

// Peers move alive -> suspect -> dead as heartbeats go unanswered, and
// snap back to alive on the first success. Suspect peers still count as
// ring members (no failover yet); dead peers are removed from placement
// and their sessions fail over.
const (
	StateAlive PeerState = iota
	StateSuspect
	StateDead
)

// String names the state for status output.
func (s PeerState) String() string {
	switch s {
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "alive"
	}
}

// peer is one remote node in the membership table.
type peer struct {
	id  string
	url string

	mu       sync.Mutex
	lastSeen time.Time
	lastErr  string
	// sessions is every durable copy the peer reported on its last
	// heartbeat — live sessions and standby replicas with their WAL
	// sequences — the freshness evidence the reconcile loop compares
	// replicas by. reported distinguishes "answered with an empty
	// table" from "never answered at all": only the latter blocks
	// failover decisions.
	sessions map[string]sessionReport
	reported bool
	// draining mirrors the peer's own draining flag: such a peer still
	// serves and replicates, but must not be handed new sessions.
	draining bool
}

// sessionReport is one durable session copy in a heartbeat payload.
type sessionReport struct {
	Seq  int64 `json:"seq"`
	Live bool  `json:"live,omitempty"`
}

// membership is the static peer table plus the health view derived from
// heartbeat timestamps. The member set never changes at runtime (-peers
// is static); only health does.
type membership struct {
	self         string
	peers        map[string]*peer // keyed by node ID, self excluded
	suspectAfter time.Duration
	deadAfter    time.Duration
}

// newMembership builds the table. Every peer starts with lastSeen = now:
// a freshly booted node must not declare the world dead (and start
// stealing sessions) before its first heartbeat round has had time to
// complete.
func newMembership(self string, peers map[string]string, suspectAfter, deadAfter time.Duration, now time.Time) *membership {
	m := &membership{
		self:         self,
		peers:        make(map[string]*peer, len(peers)),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
	}
	for id, url := range peers {
		if id == self {
			continue
		}
		m.peers[id] = &peer{id: id, url: url, lastSeen: now}
	}
	return m
}

// markAlive records a successful heartbeat and the peer's piggybacked
// session table (nil sessions refreshes liveness without touching the
// table — e.g. receiving the peer's own ping proves it is up; draining
// is only trusted alongside an authoritative table).
func (m *membership) markAlive(id string, sessions map[string]sessionReport, draining bool, now time.Time) {
	p := m.peers[id]
	if p == nil {
		return
	}
	p.mu.Lock()
	p.lastSeen = now
	p.lastErr = ""
	if sessions != nil {
		p.sessions = sessions
		p.reported = true
		p.draining = draining
	}
	p.mu.Unlock()
}

// markFailed records a failed heartbeat. State degrades by elapsed time
// since lastSeen, not by failure count, so one slow round never flaps a
// peer.
func (m *membership) markFailed(id string, err error) {
	p := m.peers[id]
	if p == nil {
		return
	}
	p.mu.Lock()
	p.lastErr = err.Error()
	p.mu.Unlock()
}

// state derives a peer's health from its heartbeat age.
func (m *membership) state(p *peer, now time.Time) PeerState {
	p.mu.Lock()
	age := now.Sub(p.lastSeen)
	p.mu.Unlock()
	switch {
	case age >= m.deadAfter:
		return StateDead
	case age >= m.suspectAfter:
		return StateSuspect
	default:
		return StateAlive
	}
}

// allReported reports whether every non-dead peer has answered at
// least one heartbeat with its session inventory. Until then this
// node's view of who serves what is blank, not empty — acting on it
// (promoting standbys) could double-own a session a silent peer is
// still serving.
func (m *membership) allReported(now time.Time) bool {
	for _, p := range m.peers {
		if m.state(p, now) == StateDead {
			continue
		}
		p.mu.Lock()
		unknown := !p.reported
		p.mu.Unlock()
		if unknown {
			return false
		}
	}
	return true
}

// releaseClaim retires a live claim the peer reported: the promote
// request that just arrived proves the peer demoted that session (a
// handoff demotes before pushing), so its last heartbeat table is
// stale on this one entry. The durable copy it keeps as a standby
// stays visible at its sequence.
func (m *membership) releaseClaim(peerID, session string) {
	p := m.peers[peerID]
	if p == nil {
		return
	}
	p.mu.Lock()
	if rep, ok := p.sessions[session]; ok && rep.Live {
		rep.Live = false
		p.sessions[session] = rep
	}
	p.mu.Unlock()
}

// setDraining marks a peer draining on out-of-band evidence (a promote
// request that says so) ahead of any heartbeat proving it — the peer
// may exit before answering another ping.
func (m *membership) setDraining(id string) {
	p := m.peers[id]
	if p == nil {
		return
	}
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
}

// peerDraining reports whether the peer flagged itself draining on its
// last inventory report (or a promote request that said so).
func (m *membership) peerDraining(id string) bool {
	p := m.peers[id]
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.draining
}

// ringMembers returns the node IDs placement should use right now:
// self plus every peer not currently dead. Sorted, so identical health
// views yield identical rings.
func (m *membership) ringMembers(now time.Time) []string {
	out := []string{m.self}
	for id, p := range m.peers {
		if m.state(p, now) != StateDead {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// PeerStatus is one node's health on /v1/cluster/status.
type PeerStatus struct {
	ID           string  `json:"id"`
	URL          string  `json:"url,omitempty"`
	State        string  `json:"state"`
	LastSeenSecs float64 `json:"last_seen_seconds"` // age of last heartbeat
	LastError    string  `json:"last_error,omitempty"`
	Sessions     int     `json:"sessions"` // live sessions it reported
}

// snapshot renders the whole table for status output, self first.
func (m *membership) snapshot(now time.Time, selfSessions int) []PeerStatus {
	out := []PeerStatus{{
		ID: m.self, State: StateAlive.String(), Sessions: selfSessions,
	}}
	ids := make([]string, 0, len(m.peers))
	for id := range m.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p := m.peers[id]
		st := m.state(p, now)
		p.mu.Lock()
		out = append(out, PeerStatus{
			ID:           id,
			URL:          p.url,
			State:        st.String(),
			LastSeenSecs: now.Sub(p.lastSeen).Seconds(),
			LastError:    p.lastErr,
			Sessions:     len(p.sessions),
		})
		p.mu.Unlock()
	}
	return out
}

// ParsePeers parses the -peers flag: comma-separated id=url pairs,
// e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080". The list must
// include every node of the cluster, this node included — all members
// compute placement from the same set.
func ParsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad -peers entry %q (want id=url)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q in -peers", id)
		}
		out[id] = strings.TrimRight(url, "/")
	}
	return out, nil
}
