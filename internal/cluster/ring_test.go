package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	nodes := []string{"c", "a", "b"}
	r1 := NewRing(nodes, 0)
	r2 := NewRing([]string{"b", "c", "a", "a"}, 0) // order/dups must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("rings disagree on %q: %s vs %s", key, r1.Owner(key), r2.Owner(key))
		}
		pref := r1.Prefer(key, 3)
		if len(pref) != 3 {
			t.Fatalf("Prefer(%q, 3) = %v", key, pref)
		}
		if pref[0] != r1.Owner(key) {
			t.Fatalf("preference list does not start at owner: %v vs %s", pref, r1.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("duplicate node in preference list: %v", pref)
			}
			seen[n] = true
		}
	}
}

func TestRingSpread(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"}, 0)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("s-%06d", i))]++
	}
	for n, c := range counts {
		// Virtual nodes should keep placement within a loose band of
		// the 1/3 ideal; a broken ring lands everything on one node.
		if c < keys/6 || c > keys/2 {
			t.Fatalf("node %s owns %d of %d keys; spread %v", n, c, keys, counts)
		}
	}
}

func TestRingStabilityUnderMemberLoss(t *testing.T) {
	full := NewRing([]string{"a", "b", "c"}, 0)
	reduced := NewRing([]string{"a", "b"}, 0)
	moved := 0
	const keys = 1000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("s-%06d", i)
		was, is := full.Owner(key), reduced.Owner(key)
		if was != "c" && was != is {
			moved++
		}
		if was == "c" && is == "c" {
			t.Fatalf("dead node still owns %q", key)
		}
	}
	// Consistent hashing's whole point: keys not owned by the dead
	// node stay put.
	if moved != 0 {
		t.Fatalf("%d of %d keys moved between surviving nodes", moved, keys)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := empty.Prefer("x", 2); got != nil {
		t.Fatalf("empty ring prefer = %v", got)
	}
	one := NewRing([]string{"solo"}, 0)
	if got := one.Owner("x"); got != "solo" {
		t.Fatalf("single ring owner = %q", got)
	}
	if got := one.Prefer("x", 5); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single ring prefer = %v", got)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1, b=http://h2:2/,c=http://h3:3")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(peers) != 3 || peers["b"] != "http://h2:2" {
		t.Fatalf("peers = %v", peers)
	}
	for _, bad := range []string{"a", "=url", "a=", "a=u,a=v"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
	if peers, err := ParsePeers(" "); err != nil || len(peers) != 0 {
		t.Fatalf("blank: %v %v", peers, err)
	}
}
