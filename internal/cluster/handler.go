package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/durable"
)

// The intra-cluster wire protocol, all under /v1/internal (never
// routed, never proxied):
//
//	GET    /v1/internal/ping?from={node}        heartbeat; responds with this
//	                                            node's session/seq table
//	POST   /v1/internal/replicate/{id}/snapshot install a shipped snapshot
//	                                            (body: frame(manifest)+frame(snapshot))
//	POST   /v1/internal/replicate/{id}/records  append shipped WAL records
//	                                            (body: concatenated CRC frames)
//	DELETE /v1/internal/replicate/{id}          drop the standby replica
//	POST   /v1/internal/promote/{id}            promote the standby to live
//
// Replication acks are {"seq":N}; protocol conflicts answer 409 with
// the standard error envelope plus the sequence — {"seq":N,
// "code":"gap"|"stale", "message":..., "retryable":false} — and the
// sender resyncs. Plus one public endpoint:
//
//	GET    /v1/cluster/status                   membership, sessions, replication
//
// forwardedHeader marks a proxied request so a misconfigured ring can
// never bounce a request in a forwarding loop.
const forwardedHeader = "X-Psmd-Forwarded"

// pingResponse is the heartbeat payload.
type pingResponse struct {
	Node     string                   `json:"node"`
	Draining bool                     `json:"draining,omitempty"`
	Sessions map[string]sessionReport `json:"sessions,omitempty"`
}

// ackResponse acknowledges a replication push. On a 409 conflict it
// doubles as the standard {code,message,retryable} error envelope with
// the sequence alongside, so internal endpoints speak the same error
// shape as the public API.
type ackResponse struct {
	Seq       int64  `json:"seq"`
	Code      string `json:"code,omitempty"`
	Message   string `json:"message,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// ackConflict builds the 409 ack envelope for a protocol conflict.
// Conflicts are not retryable as-is: the sender must resync (gap) or
// stop shipping (stale), not repeat the identical request.
func ackConflict(seq int64, code, msg string) ackResponse {
	return ackResponse{Seq: seq, Code: code, Message: msg}
}

// SessionStatus is one live session on /v1/cluster/status.
type SessionStatus struct {
	ID             string `json:"id"`
	Seq            int64  `json:"seq"`
	ReplicationLag int64  `json:"replication_lag"`
}

// StandbyStatus is one standby replica on /v1/cluster/status.
type StandbyStatus struct {
	ID  string `json:"id"`
	Seq int64  `json:"seq"`
}

// StatusResponse is the body of GET /v1/cluster/status.
type StatusResponse struct {
	Node      string          `json:"node"`
	Version   string          `json:"version,omitempty"`
	Ready     bool            `json:"ready"`
	Draining  bool            `json:"draining"`
	Replicas  int             `json:"replicas"`
	Forward   bool            `json:"forward"`
	Members   []PeerStatus    `json:"members"`
	Sessions  []SessionStatus `json:"sessions"`
	Standbys  []StandbyStatus `json:"standbys"`
	Failovers int64           `json:"failovers"`
	Handoffs  int64           `json:"handoffs"`
	// SchedPhaseSeconds is this node's accumulated parallel-matcher
	// scheduler time by phase (the §6 loss-factor series), summed over
	// every hosted session; absent until a loss-capable matcher runs.
	SchedPhaseSeconds map[string]float64 `json:"sched_phase_seconds,omitempty"`
}

// Handler wraps the server's HTTP API with the cluster layer: the
// /v1/internal wire protocol and /v1/cluster/status are served here;
// every other request passes through session routing, which serves
// locally, proxies, or 307-redirects by consistent-hash placement.
func (n *Node) Handler(inner http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/internal/ping", n.handlePing)
	mux.HandleFunc("POST /v1/internal/replicate/{id}/snapshot", n.handleReplicateSnapshot)
	mux.HandleFunc("POST /v1/internal/replicate/{id}/records", n.handleReplicateRecords)
	mux.HandleFunc("DELETE /v1/internal/replicate/{id}", n.handleReplicateDelete)
	mux.HandleFunc("POST /v1/internal/promote/{id}", n.handlePromote)
	mux.HandleFunc("GET /v1/cluster/status", n.handleStatus)
	mux.Handle("/", n.route(inner))
	return mux
}

// route is the placement middleware in front of the sessions API.
func (n *Node) route(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// A forwarded request is served here no matter what this
		// node's ring says — the forwarding peer made the placement
		// decision, and one hop is all the protocol allows.
		if r.Header.Get(forwardedHeader) != "" {
			inner.ServeHTTP(w, r)
			return
		}
		if r.Method == http.MethodPost && isSessionsRoot(r.URL.Path) {
			n.routeCreate(w, r, inner)
			return
		}
		id := sessionIDFromPath(r.URL.Path)
		if id == "" {
			inner.ServeHTTP(w, r) // list, operational endpoints, etc.
			return
		}
		target := n.target(id)
		if target == nil {
			inner.ServeHTTP(w, r)
			return
		}
		if n.cfg.Forward {
			n.proxy(w, r, target, nil)
			return
		}
		writeRedirect(w, target, r)
	})
}

// routeCreate handles POST /sessions: the session ID decides placement,
// and when the client did not pick one, this node generates it — then
// the request must be proxied, never redirected, or the generated ID
// would be lost and re-rolled by the next node.
func (n *Node) routeCreate(w http.ResponseWriter, r *http.Request, inner http.Handler) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("read create body: %v", err))
		return
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(body, &fields); err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad create body: %v", err))
		return
	}
	var id string
	if raw, ok := fields["id"]; ok {
		json.Unmarshal(raw, &id)
	}
	generated := false
	if id == "" {
		id = fmt.Sprintf("s-%s-%06d", n.cfg.Self, n.createSeq.Add(1))
		fields["id"], _ = json.Marshal(id)
		body, _ = json.Marshal(fields)
		generated = true
	}
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	target := n.target(id)
	if target == nil {
		inner.ServeHTTP(w, r)
		return
	}
	if n.cfg.Forward || generated {
		n.proxy(w, r, target, body)
		return
	}
	writeRedirect(w, target, r)
}

// target decides where a session's request belongs: nil to serve
// locally, else the peer to forward to. Locally live sessions are
// served here unconditionally (sticky ownership); otherwise a peer
// claiming the session live wins over ring placement, so requests keep
// landing on a failed-over owner even while the ring disagrees.
func (n *Node) target(id string) *peer {
	if n.srv.HasSession(id) {
		return nil
	}
	now := time.Now()
	if holder, _ := n.liveClaim(id, now); holder != "" {
		if p := n.alivePeer(holder, now); p != nil {
			return p
		}
	}
	for _, nodeID := range n.ring(now).Prefer(id, len(n.cfg.Peers)) {
		if nodeID == n.cfg.Self {
			return nil
		}
		if p := n.alivePeer(nodeID, now); p != nil {
			return p
		}
	}
	return nil
}

// proxy forwards the request to a peer and relays the response. body
// is the already-read request body (nil to stream r.Body).
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, target *peer, body []byte) {
	url := target.url + r.URL.RequestURI()
	var reader io.Reader = r.Body
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, reader)
	if err != nil {
		writeClusterError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, n.cfg.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		writeClusterError(w, http.StatusBadGateway, "bad_gateway",
			fmt.Sprintf("forward to %s: %v", target.id, err))
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("X-Psmd-Served-By", target.id)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (n *Node) handlePing(w http.ResponseWriter, r *http.Request) {
	// The ping itself proves the sender is up; its session table
	// arrives when we ping it back.
	if from := r.URL.Query().Get("from"); from != "" {
		n.mem.markAlive(from, nil, false, time.Now())
	}
	writeJSON(w, http.StatusOK, pingResponse{
		Node:     n.cfg.Self,
		Draining: n.Draining(),
		Sessions: n.sessionsReport(),
	})
}

// standbyFor returns the session's standby, creating it when the
// sender is attaching this node as a new follower.
func (n *Node) standbyFor(id string, create bool) (*durable.Standby, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st := n.standbys[id]; st != nil {
		return st, nil
	}
	if !create {
		return nil, nil
	}
	dir := n.replicaDir(id)
	if err := os.MkdirAll(filepath.Dir(dir), 0o777); err != nil {
		return nil, err
	}
	st, err := durable.OpenStandby(dir)
	if err != nil {
		return nil, err
	}
	n.standbys[id] = st
	n.standbyG.Set(int64(len(n.standbys)))
	return st, nil
}

func (n *Node) handleReplicateSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if n.srv.HasSession(id) {
		// This node serves the session live: whoever is shipping to us
		// holds a stale copy (e.g. a rejoined crashed owner).
		seq := n.srv.DurableSeqs()[id]
		writeJSON(w, http.StatusConflict, ackConflict(seq, "stale",
			"session is live on this node; the sender's copy is stale"))
		return
	}
	manifest, err := durable.DecodeFrame(r.Body)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("manifest frame: %v", err))
		return
	}
	snap, err := durable.DecodeFrame(r.Body)
	if err != nil {
		writeClusterError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("snapshot frame: %v", err))
		return
	}
	st, err := n.standbyFor(id, true)
	if err != nil {
		writeClusterError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	seq, err := st.InstallSnapshot(manifest, snap)
	n.logger.Debug("replica snapshot installed", "session", id, "seq", seq, "err", err)
	switch {
	case errors.Is(err, durable.ErrStaleSnapshot):
		writeJSON(w, http.StatusConflict, ackConflict(seq, "stale", err.Error()))
	case err != nil:
		writeClusterError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		writeJSON(w, http.StatusOK, ackResponse{Seq: seq})
	}
}

func (n *Node) handleReplicateRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if n.srv.HasSession(id) {
		seq := n.srv.DurableSeqs()[id]
		writeJSON(w, http.StatusConflict, ackConflict(seq, "stale",
			"session is live on this node; the sender's copy is stale"))
		return
	}
	st, err := n.standbyFor(id, false)
	if err != nil {
		writeClusterError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	if st == nil {
		// No replica here yet: the sender must ship a snapshot first.
		writeJSON(w, http.StatusConflict, ackConflict(0, "gap",
			"no replica for this session; ship a snapshot first"))
		return
	}
	seq, _, err := st.AppendRecords(r.Body)
	n.logger.Debug("replica records appended", "session", id, "seq", seq, "err", err)
	switch {
	case errors.Is(err, durable.ErrSequenceGap):
		writeJSON(w, http.StatusConflict, ackConflict(seq, "gap", err.Error()))
	case err != nil:
		writeClusterError(w, http.StatusInternalServerError, "internal", err.Error())
	default:
		writeJSON(w, http.StatusOK, ackResponse{Seq: seq})
	}
}

func (n *Node) handleReplicateDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n.mu.Lock()
	st := n.standbys[id]
	delete(n.standbys, id)
	n.standbyG.Set(int64(len(n.standbys)))
	n.mu.Unlock()
	if st != nil {
		if err := st.Remove(); err != nil {
			n.logger.Warn("standby removal", "session", id, "err", err)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// The request itself is fresher evidence than any heartbeat: the
	// sender demoted its copy before asking (handoff pushes state
	// first), so its live claim is gone even if its last-reported
	// inventory still shows it — and a draining sender may exit before
	// ever answering another ping. Recording both here keeps the
	// reconcile loop from demoting to, or handing back to, a ghost.
	if from := r.URL.Query().Get("from"); from != "" {
		n.mem.releaseClaim(from, id)
		if r.URL.Query().Get("draining") == "1" {
			n.mem.setDraining(from)
		}
	}
	if n.Draining() {
		// A draining node is about to exit; adopting a session now
		// would immediately orphan it again.
		writeClusterError(w, http.StatusServiceUnavailable, "draining", "node is draining")
		return
	}
	if n.srv.HasSession(id) {
		writeJSON(w, http.StatusOK, ackResponse{Seq: n.srv.DurableSeqs()[id]})
		return
	}
	if err := n.promoteStandby(id); err != nil {
		writeClusterError(w, http.StatusConflict, "promote_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ackResponse{Seq: n.srv.DurableSeqs()[id]})
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	live := n.srv.DurableSeqs()
	out := StatusResponse{
		Node:      n.cfg.Self,
		Version:   n.cfg.Version,
		Ready:     n.srv.Ready(),
		Draining:  n.Draining(),
		Replicas:  n.cfg.Replicas,
		Forward:   n.cfg.Forward,
		Members:   n.mem.snapshot(now, len(live)),
		Sessions:  []SessionStatus{},
		Standbys:  []StandbyStatus{},
		Failovers: n.failovers.Value(),
		SchedPhaseSeconds: func() map[string]float64 {
			if m := n.srv.SchedPhaseSeconds(); len(m) > 0 {
				return m
			}
			return nil
		}(),
		Handoffs: n.handoffs.Value(),
	}
	n.mu.Lock()
	for id, seq := range live {
		st := SessionStatus{ID: id, Seq: seq}
		if sp := n.shippers[id]; sp != nil {
			st.ReplicationLag = sp.lag()
		}
		out.Sessions = append(out.Sessions, st)
	}
	for id, st := range n.standbys {
		out.Standbys = append(out.Standbys, StandbyStatus{ID: id, Seq: st.Seq()})
	}
	n.mu.Unlock()
	sortStatus(out.Sessions, out.Standbys)
	writeJSON(w, http.StatusOK, out)
}

// --- client side of the wire protocol ---

// ping heartbeats one peer and returns its session table and draining
// state.
func (n *Node) ping(p *peer) (map[string]sessionReport, bool, error) {
	resp, err := n.client.Get(p.url + "/v1/internal/ping?from=" + n.cfg.Self)
	if err != nil {
		return nil, false, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("ping %s: status %d", p.id, resp.StatusCode)
	}
	var pr pingResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&pr); err != nil {
		return nil, false, fmt.Errorf("ping %s: %w", p.id, err)
	}
	return pr.Sessions, pr.Draining, nil
}

// pushSnapshot ships a manifest+snapshot pair to a peer's standby and
// returns the standby's new sequence.
func (n *Node) pushSnapshot(p *peer, id string, manifest, snap []byte) (int64, error) {
	mf, err := durable.EncodeFrame(manifest)
	if err != nil {
		return 0, err
	}
	sf, err := durable.EncodeFrame(snap)
	if err != nil {
		return 0, err
	}
	ack, status, err := n.post(p, "/v1/internal/replicate/"+id+"/snapshot", append(mf, sf...))
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("snapshot push to %s: status %d code %q", p.id, status, ack.Code)
	}
	return ack.Seq, nil
}

// pushRecords ships framed WAL records; gap reports the follower needs
// a snapshot resync.
func (n *Node) pushRecords(p *peer, id string, frames []byte) (seq int64, gap bool, err error) {
	ack, status, err := n.post(p, "/v1/internal/replicate/"+id+"/records", frames)
	if err != nil {
		return 0, false, err
	}
	switch {
	case status == http.StatusOK:
		return ack.Seq, false, nil
	case status == http.StatusConflict && ack.Code == "gap":
		return ack.Seq, true, nil
	default:
		return 0, false, fmt.Errorf("record push to %s: status %d code %q", p.id, status, ack.Code)
	}
}

// requestPromote asks a peer to promote its standby to live. The
// sender identifies itself (and whether it is draining) so the peer
// can retire the sender's live claim without waiting for a heartbeat.
func (n *Node) requestPromote(p *peer, id string) error {
	path := "/v1/internal/promote/" + id + "?from=" + n.cfg.Self
	if n.Draining() {
		path += "&draining=1"
	}
	_, status, err := n.post(p, path, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("promote on %s: status %d", p.id, status)
	}
	return nil
}

// deleteReplica tears down a peer's standby after session deletion.
func (n *Node) deleteReplica(p *peer, id string) error {
	req, err := http.NewRequest(http.MethodDelete, p.url+"/v1/internal/replicate/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("replica delete on %s: status %d", p.id, resp.StatusCode)
	}
	return nil
}

// post sends a replication POST and decodes the ack envelope.
func (n *Node) post(p *peer, path string, body []byte) (ackResponse, int, error) {
	resp, err := n.client.Post(p.url+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return ackResponse{}, 0, err
	}
	defer drainBody(resp)
	var ack ackResponse
	json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ack)
	return ack, resp.StatusCode, nil
}

// --- small helpers ---

// isSessionsRoot matches the create-session path (versioned or the
// deprecated alias).
func isSessionsRoot(path string) bool {
	return path == "/v1/sessions" || path == "/sessions"
}

// sessionIDFromPath extracts the {id} of a sessions API path ("" for
// non-session paths).
func sessionIDFromPath(path string) string {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for i, p := range parts {
		if p == "sessions" && i+1 < len(parts) {
			return parts[i+1]
		}
	}
	return ""
}

// writeRedirect answers 307 to the owning peer with the standard error
// envelope as body — a bare redirect's empty body left non-following
// clients without the {code,message,retryable} shape every other error
// path speaks.
func writeRedirect(w http.ResponseWriter, target *peer, r *http.Request) {
	w.Header().Set("Location", target.url+r.URL.RequestURI())
	writeJSON(w, http.StatusTemporaryRedirect, errorEnvelope{
		Code:      "wrong_node",
		Message:   "session is owned by " + target.id + "; retry at the Location header",
		Retryable: true,
	})
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

// errorEnvelope is the {code,message,retryable} error shape, identical
// to the server package's ErrorResponse (duplicated to avoid an import
// cycle; the golden-surface test pins both).
type errorEnvelope struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// writeClusterError mirrors the server's error envelope.
func writeClusterError(w http.ResponseWriter, status int, code, msg string) {
	retryable := status == http.StatusBadGateway || status == http.StatusServiceUnavailable
	writeJSON(w, status, errorEnvelope{Code: code, Message: msg, Retryable: retryable})
}

// sortStatus orders status slices for deterministic output.
func sortStatus(sessions []SessionStatus, standbys []StandbyStatus) {
	sortBy(sessions, func(a, b SessionStatus) bool { return a.ID < b.ID })
	sortBy(standbys, func(a, b StandbyStatus) bool { return a.ID < b.ID })
}

func sortBy[T any](s []T, less func(a, b T) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
