// Package clustertest is an in-process multi-node harness for the
// cluster subsystem: it starts N psmd nodes on real loopback listeners
// (placement, forwarding, WAL shipping and failover all exercise the
// actual HTTP wire protocol), crashes nodes abruptly, and restarts
// them on the same address with the same data directory — the
// kill -9/rejoin scenarios the ROADMAP's client-visible bar is about.
package clustertest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/server"
)

// Timings: aggressive so a full kill/failover round trips in well
// under a second of wall clock, yet coarse enough not to flap under
// -race on a loaded CI machine.
const (
	Heartbeat    = 25 * time.Millisecond
	SuspectAfter = 100 * time.Millisecond
	DeadAfter    = 250 * time.Millisecond
)

// Node is one in-process psmd node.
type Node struct {
	ID   string
	Dir  string // durable data dir, survives Kill/Restart
	Addr string // host:port, stable across Restart

	ln   net.Listener
	node *cluster.Node
	srv  *server.Server
	http *http.Server
	up   bool
}

// URL is the node's base URL.
func (n *Node) URL() string { return "http://" + n.Addr }

// Server exposes the node's server (for direct assertions).
func (n *Node) Server() *server.Server { return n.srv }

// Cluster is a running set of nodes sharing one static peer list.
type Cluster struct {
	T     *testing.T
	Nodes []*Node

	peers   map[string]string
	forward bool
}

// Start brings up n nodes. Listeners are created first so every node
// knows every peer's URL before any node starts — the static -peers
// model. forward selects proxy-forwarding (true) or 307 redirects.
func Start(t *testing.T, n int, forward bool) *Cluster {
	t.Helper()
	c := &Cluster{T: t, forward: forward, peers: make(map[string]string, n)}
	root := t.TempDir()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		id := fmt.Sprintf("n%d", i)
		node := &Node{
			ID:   id,
			Dir:  filepath.Join(root, id),
			Addr: ln.Addr().String(),
			ln:   ln,
		}
		c.Nodes = append(c.Nodes, node)
		c.peers[id] = node.URL()
	}
	for _, node := range c.Nodes {
		c.boot(node)
	}
	t.Cleanup(c.Close)
	return c
}

// boot starts (or restarts) one node on its existing listener.
func (c *Cluster) boot(tn *Node) {
	c.T.Helper()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if os.Getenv("CLUSTERTEST_VERBOSE") != "" {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})).
			With("node", tn.ID)
	}
	node, err := cluster.New(cluster.Config{
		Self:         tn.ID,
		Peers:        c.peers,
		Replicas:     2,
		Forward:      c.forward,
		Heartbeat:    Heartbeat,
		SuspectAfter: SuspectAfter,
		DeadAfter:    DeadAfter,
		Client:       &http.Client{Timeout: 2 * time.Second},
		Logger:       logger,
		Version:      "clustertest",
	})
	if err != nil {
		c.T.Fatalf("cluster.New(%s): %v", tn.ID, err)
	}
	srv := server.New(server.Config{
		Shards:     2,
		DataDir:    tn.Dir,
		Fsync:      durable.FsyncNever,
		Logger:     logger,
		Replicator: node,
	})
	if err := node.Start(srv); err != nil {
		c.T.Fatalf("node.Start(%s): %v", tn.ID, err)
	}
	tn.node = node
	tn.srv = srv
	tn.http = &http.Server{Handler: node.Handler(srv.HandlerWith(server.HandlerConfig{DisablePprof: true}))}
	go tn.http.Serve(tn.ln)
	tn.up = true
}

// Kill crashes a node: connections drop, no final snapshots, the
// durable directory is left exactly as a kill -9 would leave it.
func (c *Cluster) Kill(i int) {
	c.T.Helper()
	tn := c.Nodes[i]
	if !tn.up {
		return
	}
	tn.up = false
	tn.http.Close() // closes the listener and in-flight connections
	tn.srv.Abort()
	tn.node.Stop()
}

// Restart brings a killed node back on its original address and data
// directory — the rejoin scenario.
func (c *Cluster) Restart(i int) {
	c.T.Helper()
	tn := c.Nodes[i]
	if tn.up {
		c.T.Fatalf("node %s is already up", tn.ID)
	}
	var (
		ln  net.Listener
		err error
	)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ln, err = net.Listen("tcp", tn.Addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			c.T.Fatalf("relisten on %s: %v", tn.Addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	tn.ln = ln
	c.boot(tn)
}

// Drain gracefully hands a node's sessions to successors (the -drain
// shutdown path): readiness flips and every live session is pushed to
// its successor. The HTTP listener stays up so the test can inspect
// /v1/cluster/status on the drained node; call Kill to finish tearing
// it down.
func (c *Cluster) Drain(i int) {
	c.T.Helper()
	tn := c.Nodes[i]
	tn.srv.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tn.node.Drain(ctx)
}

// Exit performs a real node's full SIGTERM sequence: stop accepting
// (the listener closes first, so peers can no longer learn this node's
// state from heartbeats), drain every session to a successor, stop the
// cluster loop, close the server. Closing the listener before the
// handoffs reproduces the rolling-restart race where the survivors'
// last heartbeat of this node predates the drain entirely.
func (c *Cluster) Exit(i int) {
	c.T.Helper()
	tn := c.Nodes[i]
	if !tn.up {
		return
	}
	tn.up = false
	tn.http.Close()
	tn.srv.SetDraining()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	tn.node.Drain(ctx)
	tn.node.Stop()
	tn.srv.Close()
}

// Close tears the whole cluster down.
func (c *Cluster) Close() {
	for i, tn := range c.Nodes {
		if tn.up {
			c.Kill(i)
		}
	}
}

// Client returns an HTTP client that follows redirects (307 bodies are
// re-sent automatically because requests carry GetBody).
func (c *Cluster) Client() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

// JSON drives the API through a specific node. Status is returned;
// out, when non-nil, receives the decoded 2xx body.
func (c *Cluster) JSON(node int, method, path string, body, out any) int {
	c.T.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.T.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.Nodes[node].URL()+path, rd)
	if err != nil {
		c.T.Fatal(err)
	}
	resp, err := c.Client().Do(req)
	if err != nil {
		c.T.Fatalf("%s %s via %s: %v", method, path, c.Nodes[node].ID, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.T.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.T.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// MustJSON fails the test unless the call returns want.
func (c *Cluster) MustJSON(node int, method, path string, body, out any, want int) {
	c.T.Helper()
	if got := c.JSON(node, method, path, body, out); got != want {
		c.T.Fatalf("%s %s via %s: status %d, want %d", method, path, c.Nodes[node].ID, got, want)
	}
}

// Status fetches a node's /v1/cluster/status.
func (c *Cluster) Status(node int) cluster.StatusResponse {
	c.T.Helper()
	var st cluster.StatusResponse
	c.MustJSON(node, "GET", "/v1/cluster/status", nil, &st, http.StatusOK)
	return st
}

// OwnerOf finds the node currently serving a session live (-1 if
// none).
func (c *Cluster) OwnerOf(id string) int {
	c.T.Helper()
	for i, tn := range c.Nodes {
		if tn.up && tn.srv.HasSession(id) {
			return i
		}
	}
	return -1
}

// WaitFor polls cond until it holds or the deadline passes.
func (c *Cluster) WaitFor(d time.Duration, what string, cond func() bool) {
	c.T.Helper()
	deadline := time.Now().Add(d)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			c.T.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// WaitReplicated waits until the owner of session id reports zero
// replication lag — every committed batch has reached its followers,
// so a subsequent crash loses nothing.
func (c *Cluster) WaitReplicated(owner int, id string) {
	c.T.Helper()
	c.WaitFor(5*time.Second, "replication lag 0 for "+id, func() bool {
		st := c.Status(owner)
		for _, s := range st.Sessions {
			if s.ID == id {
				return s.ReplicationLag == 0 && s.Seq > 0
			}
		}
		return false
	})
}
