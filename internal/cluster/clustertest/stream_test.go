package clustertest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// streamTo posts NDJSON to one node's stream endpoint and returns the
// status plus decoded summary (zero on non-200).
func streamTo(t *testing.T, cl *http.Client, base, id string, body []byte) (int, server.StreamResponse) {
	t.Helper()
	resp, err := cl.Post(base+"/v1/sessions/"+id+"/stream", "application/x-ndjson",
		bytes.NewReader(body))
	if err != nil {
		return 0, server.StreamResponse{}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("stream read: %v", err)
	}
	var res server.StreamResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("stream response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, res
}

// streamReference runs the fraud stream uninterrupted on a plain
// single-node server, returning the /wm and session-stats bytes after
// each half — the oracle for the failover differential.
func streamReference(t *testing.T, id string, halves [][]byte) (wm []string, clocks []int64, expired []int) {
	t.Helper()
	srv := server.New(server.Config{Shards: 2})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.HandlerWith(server.HandlerConfig{DisablePprof: true}))
	t.Cleanup(ts.Close)
	cl := ts.Client()
	buf, err := json.Marshal(server.CreateRequest{ID: id, Program: workload.FraudRules, Matcher: "rete"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("reference create: %d", resp.StatusCode)
	}
	for _, half := range halves {
		if code, _ := streamTo(t, cl, ts.URL, id, half); code != http.StatusOK {
			t.Fatalf("reference stream: %d", code)
		}
		_, w := rawGet(t, cl, ts.URL+"/v1/sessions/"+id+"/wm")
		var info server.SessionResponse
		_, st := rawGet(t, cl, ts.URL+"/v1/sessions/"+id)
		if err := json.Unmarshal(st, &info); err != nil {
			t.Fatal(err)
		}
		wm = append(wm, string(w))
		clocks = append(clocks, info.Clock)
		expired = append(expired, info.Expired)
	}
	return wm, clocks, expired
}

// TestClusterStreamFailoverExpiryParity is the replication half of the
// expiring-fact differential: a fraud session ingests half its event
// stream, the owner is killed abruptly, and the promoted follower must
// hold the same working memory, logical clock and expiry count as an
// uninterrupted single-node run — WAL shipping carries expiry batches
// and pure clock advances, so replicas re-derive nothing. The second
// half then streams into the promoted copy and must land on the same
// final state.
func TestClusterStreamFailoverExpiryParity(t *testing.T) {
	events := workload.FraudEvents(workload.FraudParams{Cards: 20, Events: 600, Window: 15, Seed: 7})
	half := len(events) / 2
	halves := [][]byte{workload.NDJSON(events[:half]), workload.NDJSON(events[half:])}
	const id = "fraud-ha"
	refWM, refClock, refExpired := streamReference(t, id, halves)

	c := Start(t, 3, true)
	c.MustJSON(0, "POST", "/v1/sessions",
		server.CreateRequest{ID: id, Program: workload.FraudRules, Matcher: "rete"},
		nil, http.StatusCreated)
	owner := c.OwnerOf(id)
	if owner < 0 {
		t.Fatal("no owner after create")
	}
	cl := c.Client()
	if code, res := streamTo(t, cl, c.Nodes[owner].URL(), id, halves[0]); code != http.StatusOK {
		t.Fatalf("stream to owner: %d", code)
	} else if res.Expired == 0 {
		t.Fatalf("first half expired nothing: %+v", res)
	}
	c.WaitReplicated(owner, id)
	c.Kill(owner)

	survivor := (owner + 1) % 3
	var wm []byte
	c.WaitFor(10*time.Second, "failover of "+id, func() bool {
		code, body := rawGet(t, cl, c.Nodes[survivor].URL()+"/v1/sessions/"+id+"/wm")
		wm = body
		return code == http.StatusOK
	})
	if string(wm) != refWM[0] {
		t.Fatalf("promoted WM diverged:\n got %s\nwant %s", wm, refWM[0])
	}
	var info server.SessionResponse
	c.MustJSON(survivor, "GET", "/v1/sessions/"+id, nil, &info, http.StatusOK)
	if info.Clock != refClock[0] || info.Expired != refExpired[0] {
		t.Fatalf("promoted clock/expired = %d/%d, reference %d/%d",
			info.Clock, info.Expired, refClock[0], refExpired[0])
	}

	// The promoted copy continues the stream to the same final state.
	if code, _ := streamTo(t, cl, c.Nodes[survivor].URL(), id, halves[1]); code != http.StatusOK {
		t.Fatalf("stream to promoted copy: %d", code)
	}
	_, wm2 := rawGet(t, cl, c.Nodes[survivor].URL()+"/v1/sessions/"+id+"/wm")
	if string(wm2) != refWM[1] {
		t.Fatalf("post-failover final WM diverged:\n got %s\nwant %s", wm2, refWM[1])
	}
	c.MustJSON(survivor, "GET", "/v1/sessions/"+id, nil, &info, http.StatusOK)
	if info.Clock != refClock[1] || info.Expired != refExpired[1] {
		t.Fatalf("final clock/expired = %d/%d, reference %d/%d",
			info.Clock, info.Expired, refClock[1], refExpired[1])
	}
}
