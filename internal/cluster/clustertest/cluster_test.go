package clustertest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// counterSrc counts up to ^limit then halts — the same deterministic
// program the server tests use, so reference runs are cheap.
const counterSrc = `
(p count
    (counter ^n <n> ^limit <l>)
  - (counter ^n <l>)
  -->
    (modify 1 ^n (compute <n> + 1)))
(p done
    (counter ^n <n> ^limit <n>)
  -->
    (make result ^n <n>)
    (halt))
`

// sessionOps is the scripted workload both the cluster and the
// single-node reference execute, so their final states can be compared
// byte for byte.
type sessionOps struct {
	id string
}

func (o sessionOps) create() server.CreateRequest {
	return server.CreateRequest{ID: o.id, Program: counterSrc, Matcher: "rete"}
}

func (o sessionOps) seed() server.ChangesRequest {
	return server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 1000.0}},
	}}
}

// rawGet fetches a URL and returns status and body bytes.
func rawGet(t *testing.T, cl *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := cl.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

// reference runs the same ops on a plain single-node server and
// returns the /wm and /conflicts bytes after each run step.
func reference(t *testing.T, ops sessionOps, runs int) (wm, conflicts [][]byte) {
	t.Helper()
	srv := server.New(server.Config{Shards: 2})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.HandlerWith(server.HandlerConfig{DisablePprof: true}))
	t.Cleanup(ts.Close)
	cl := ts.Client()
	post := func(path string, body any) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := cl.Post(ts.URL+server.APIVersion+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("reference POST %s: %d %s", path, resp.StatusCode, raw)
		}
	}
	post("/sessions", ops.create())
	post("/sessions/"+ops.id+"/changes", ops.seed())
	for i := 0; i < runs; i++ {
		post("/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 10})
		_, w := rawGet(t, cl, ts.URL+server.APIVersion+"/sessions/"+ops.id+"/wm")
		_, c := rawGet(t, cl, ts.URL+server.APIVersion+"/sessions/"+ops.id+"/conflicts")
		wm = append(wm, w)
		conflicts = append(conflicts, c)
	}
	return wm, conflicts
}

// TestClusterFailover is the acceptance scenario: three nodes, a
// session placed by consistent hash and driven through a non-owner
// node, the owner killed abruptly, and the promoted follower's working
// memory and conflict set compared byte for byte against an
// uninterrupted single-node run.
func TestClusterFailover(t *testing.T) {
	c := Start(t, 3, true)
	ops := sessionOps{id: "acct-42"}
	refWM, refConf := reference(t, ops, 2)

	c.MustJSON(0, "POST", "/v1/sessions", ops.create(), nil, http.StatusCreated)
	owner := c.OwnerOf(ops.id)
	if owner < 0 {
		t.Fatal("no node serves the session after create")
	}
	want := cluster.NewRing([]string{"n0", "n1", "n2"}, 0).Owner(ops.id)
	if got := c.Nodes[owner].ID; got != want {
		t.Fatalf("session landed on %s, consistent hash places it on %s", got, want)
	}

	// Drive the session through a node that does NOT own it: the
	// request must be forwarded to the owner transparently.
	driver := (owner + 1) % 3
	c.MustJSON(driver, "POST", "/v1/sessions/"+ops.id+"/changes", ops.seed(), nil, http.StatusOK)
	var run server.RunResponse
	c.MustJSON(driver, "POST", "/v1/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 10}, &run, http.StatusOK)
	if run.Fired != 10 {
		t.Fatalf("run fired %d, want 10", run.Fired)
	}

	// Wait until every committed record has reached the followers;
	// shipping is asynchronous, and a crash before the queue drains
	// would legitimately lose the tail.
	c.WaitReplicated(owner, ops.id)

	stBefore := c.Status(owner)
	if len(stBefore.Sessions) != 1 || stBefore.Sessions[0].ID != ops.id {
		t.Fatalf("owner status sessions = %+v", stBefore.Sessions)
	}

	// Make sure both survivors have heard the owner's live claim over
	// heartbeat before the crash — failover must then wait out the
	// full suspect→dead escalation.
	for i := range c.Nodes {
		if i == owner {
			continue
		}
		i := i
		c.WaitFor(5*time.Second, "owner claim propagated", func() bool {
			for _, m := range c.Status(i).Members {
				if m.ID == c.Nodes[owner].ID {
					return m.Sessions >= 1
				}
			}
			return false
		})
	}

	c.Kill(owner)

	// A surviving node must detect the death, promote its standby and
	// serve the session again.
	cl := c.Client()
	survivor := (owner + 1) % 3
	var wm []byte
	c.WaitFor(10*time.Second, "failover of "+ops.id, func() bool {
		code, body := rawGet(t, cl, c.Nodes[survivor].URL()+"/v1/sessions/"+ops.id+"/wm")
		if code != http.StatusOK {
			return false
		}
		wm = body
		return true
	})
	_, conf := rawGet(t, cl, c.Nodes[survivor].URL()+"/v1/sessions/"+ops.id+"/conflicts")
	if !bytes.Equal(wm, refWM[0]) {
		t.Fatalf("working memory diverged after failover:\n got %s\nwant %s", wm, refWM[0])
	}
	if !bytes.Equal(conf, refConf[0]) {
		t.Fatalf("conflict set diverged after failover:\n got %s\nwant %s", conf, refConf[0])
	}

	// The dead peer and the failover must be visible on status and
	// /metrics of whichever node promoted.
	promoted := c.OwnerOf(ops.id)
	if promoted < 0 || promoted == owner {
		t.Fatalf("promoted owner = %d", promoted)
	}
	st := c.Status(promoted)
	if st.Failovers < 1 {
		t.Fatalf("status failovers = %d, want >= 1", st.Failovers)
	}
	deadSeen := false
	for _, m := range st.Members {
		if m.ID == c.Nodes[owner].ID && m.State == "dead" {
			deadSeen = true
		}
	}
	if !deadSeen {
		t.Fatalf("dead owner not reported in members: %+v", st.Members)
	}
	if v := metricValue(t, cl, c.Nodes[promoted].URL(), "psmd_failovers_total"); v < 1 {
		t.Fatalf("psmd_failovers_total = %v, want >= 1", v)
	}
	if v := metricValue(t, cl, c.Nodes[promoted].URL(), `psmd_cluster_peers{state="dead"}`); v < 1 {
		t.Fatalf(`psmd_cluster_peers{state="dead"} = %v, want >= 1`, v)
	}

	// The promoted session must keep working — and still match the
	// reference after more cycles.
	var run2 server.RunResponse
	c.MustJSON(survivor, "POST", "/v1/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 10}, &run2, http.StatusOK)
	if run2.Fired != 10 {
		t.Fatalf("post-failover run fired %d, want 10", run2.Fired)
	}
	_, wm2 := rawGet(t, cl, c.Nodes[survivor].URL()+"/v1/sessions/"+ops.id+"/wm")
	if !bytes.Equal(wm2, refWM[1]) {
		t.Fatalf("working memory diverged after post-failover run:\n got %s\nwant %s", wm2, refWM[1])
	}
}

// TestClusterRedirect checks the -forward=false mode: a request landing
// on a non-owner answers 307 with the owner's URL, and a client that
// follows it ends up creating the session on the owner.
func TestClusterRedirect(t *testing.T) {
	c := Start(t, 3, false)
	ring := cluster.NewRing([]string{"n0", "n1", "n2"}, 0)

	// Find an ID owned by a node other than n0.
	id, ownerID := "", ""
	for i := 0; i < 100; i++ {
		cand := fmt.Sprintf("redirect-%d", i)
		if o := ring.Owner(cand); o != "n0" {
			id, ownerID = cand, o
			break
		}
	}
	if id == "" {
		t.Fatal("could not find a session ID not owned by n0")
	}

	ops := sessionOps{id: id}
	buf, err := json.Marshal(ops.create())
	if err != nil {
		t.Fatal(err)
	}
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Post(c.Nodes[0].URL()+"/v1/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	var ownerIdx int
	for i, n := range c.Nodes {
		if n.ID == ownerID {
			ownerIdx = i
		}
	}
	if !strings.HasPrefix(loc, c.Nodes[ownerIdx].URL()) {
		t.Fatalf("Location = %q, want owner %s at %s", loc, ownerID, c.Nodes[ownerIdx].URL())
	}

	// Go's client re-sends the body on 307 (GetBody is set for
	// bytes.Reader bodies), so the default client just works.
	c.MustJSON(0, "POST", "/v1/sessions", ops.create(), nil, http.StatusCreated)
	if got := c.OwnerOf(id); got != ownerIdx {
		t.Fatalf("session on node %d, want %d", got, ownerIdx)
	}

	// Reads on a non-owner redirect too.
	resp, err = noFollow.Get(c.Nodes[0].URL() + "/v1/sessions/" + id + "/wm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ownerIdx != 0 && resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("GET via non-owner = %d, want 307", resp.StatusCode)
	}
}

// TestClusterDrain checks graceful shutdown: draining a node hands its
// live sessions to ring successors with no lost state.
func TestClusterDrain(t *testing.T) {
	c := Start(t, 3, true)

	// Create sessions with server-generated IDs until the target node
	// owns at least one.
	const target = 1
	var moved []string
	for i := 0; i < 30 && len(moved) == 0; i++ {
		var out server.SessionResponse
		c.MustJSON(0, "POST", "/v1/sessions",
			server.CreateRequest{Program: counterSrc, Matcher: "rete"}, &out, http.StatusCreated)
		c.MustJSON(0, "POST", "/v1/sessions/"+out.ID+"/changes", sessionOps{id: out.ID}.seed(), nil, http.StatusOK)
		if c.OwnerOf(out.ID) == target {
			moved = append(moved, out.ID)
		}
	}
	if len(moved) == 0 {
		t.Fatal("no generated session landed on the target node")
	}
	for _, id := range moved {
		c.WaitReplicated(target, id)
	}

	c.Drain(target)

	st := c.Status(target)
	if !st.Draining {
		t.Fatal("status does not report draining")
	}
	if len(st.Sessions) != 0 {
		t.Fatalf("drained node still serves %+v", st.Sessions)
	}
	if st.Handoffs < int64(len(moved)) {
		t.Fatalf("handoffs = %d, want >= %d", st.Handoffs, len(moved))
	}
	cl := c.Client()
	if code, _ := rawGet(t, cl, c.Nodes[target].URL()+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("drained /readyz = %d, want 503", code)
	}

	// Every handed-off session must be live on another node with its
	// seeded WME intact.
	cl2 := c.Client()
	for _, id := range moved {
		c.WaitFor(10*time.Second, "relocation of "+id, func() bool {
			o := c.OwnerOf(id)
			return o >= 0 && o != target
		})
		// The new holder's live claim reaches the other nodes on the
		// next heartbeat round; poll until routing converges.
		var wm []byte
		c.WaitFor(5*time.Second, "routing to relocated "+id, func() bool {
			code, body := rawGet(t, cl2, c.Nodes[(target+1)%3].URL()+"/v1/sessions/"+id+"/wm")
			wm = body
			return code == http.StatusOK
		})
		var wmes []server.WireWME
		if err := json.Unmarshal(wm, &wmes); err != nil {
			t.Fatalf("session %s: bad wm %q: %v", id, wm, err)
		}
		if len(wmes) != 1 || wmes[0].Class != "counter" {
			t.Fatalf("session %s lost state across drain: %+v", id, wmes)
		}
	}
}

// TestClusterRejoin checks the stale-rejoin guard: a crashed owner that
// comes back after failover still holds its old live session dir; the
// reconcile loop must demote that stale copy instead of splitting the
// brain, leaving exactly one (fresher) live owner.
func TestClusterRejoin(t *testing.T) {
	c := Start(t, 3, true)
	ops := sessionOps{id: "rejoin-1"}
	c.MustJSON(0, "POST", "/v1/sessions", ops.create(), nil, http.StatusCreated)
	owner := c.OwnerOf(ops.id)
	c.MustJSON(owner, "POST", "/v1/sessions/"+ops.id+"/changes", ops.seed(), nil, http.StatusOK)
	c.MustJSON(owner, "POST", "/v1/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 5}, nil, http.StatusOK)
	c.WaitReplicated(owner, ops.id)

	c.Kill(owner)
	cl := c.Client()
	survivor := (owner + 1) % 3
	c.WaitFor(10*time.Second, "failover of "+ops.id, func() bool {
		code, _ := rawGet(t, cl, c.Nodes[survivor].URL()+"/v1/sessions/"+ops.id+"/wm")
		return code == http.StatusOK
	})
	// Advance past the crashed copy so the survivor is strictly
	// fresher when the old owner rejoins.
	c.MustJSON(survivor, "POST", "/v1/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 5}, nil, http.StatusOK)

	c.Restart(owner)

	// The restarted node recovers its stale dir as live (it cannot
	// know better at boot); reconcile must demote that stale copy when
	// it hears the fresher claim, then the session may hand back to
	// the ring owner — but the FRESH lineage must win wherever it
	// lands, with exactly one live copy.
	c.WaitFor(10*time.Second, "single fresh owner after rejoin", func() bool {
		live := 0
		for _, tn := range c.Nodes {
			if tn.up && tn.srv.HasSession(ops.id) {
				live++
			}
		}
		if live != 1 {
			return false
		}
		holder := c.OwnerOf(ops.id)
		var wm []server.WireWME
		if c.JSON(holder, "GET", "/v1/sessions/"+ops.id+"/wm", nil, &wm) != http.StatusOK {
			return false
		}
		// n == 10 is the post-failover state; the crashed copy stopped
		// at n == 5. A stale lineage winning the rejoin would show 5.
		return len(wm) == 1 && wm[0].Attrs["n"] == 10.0
	})
}

// TestClusterStatusAndReadyz covers the smaller surface: every node
// reports all members alive, and /readyz tracks the serving state.
func TestClusterStatusAndReadyz(t *testing.T) {
	c := Start(t, 2, true)
	cl := c.Client()
	for i := range c.Nodes {
		c.WaitFor(5*time.Second, "peers alive", func() bool {
			st := c.Status(i)
			if len(st.Members) != 2 {
				return false
			}
			for _, m := range st.Members {
				if m.State != "alive" {
					return false
				}
			}
			return true
		})
		if code, _ := rawGet(t, cl, c.Nodes[i].URL()+"/readyz"); code != http.StatusOK {
			t.Fatalf("node %d /readyz = %d, want 200", i, code)
		}
		if code, _ := rawGet(t, cl, c.Nodes[i].URL()+"/healthz"); code != http.StatusOK {
			t.Fatalf("node %d /healthz = %d, want 200", i, code)
		}
	}
	st := c.Status(0)
	if st.Node != "n0" || st.Replicas != 2 || !st.Forward {
		t.Fatalf("status = %+v", st)
	}
}

// metricValue scrapes one metric line from /metrics.
func metricValue(t *testing.T, cl *http.Client, base, name string) float64 {
	t.Helper()
	code, body := rawGet(t, cl, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value in %q", name, line)
		}
		return v
	}
	return -1
}

// TestClusterRollingExit is the rolling-restart step the drain flow
// exists for. The exiting owner's listener closes before its handoffs
// run (the real SIGTERM order), so the survivors' membership tables
// still show it alive and owning its session — the handoff recipient
// learns the truth only from the promote request itself. It must keep
// serving continuously through that ghost claim: demoting to it would
// strand the session until the dead timer fires.
func TestClusterRollingExit(t *testing.T) {
	c := Start(t, 3, true)
	defer c.Close()
	ops := sessionOps{id: "rolling-7"}

	c.MustJSON(0, "POST", "/v1/sessions", ops.create(), nil, http.StatusCreated)
	owner := c.OwnerOf(ops.id)
	if owner < 0 {
		t.Fatal("no node serves the session after create")
	}
	c.MustJSON(owner, "POST", "/v1/sessions/"+ops.id+"/changes", ops.seed(), nil, http.StatusOK)
	c.MustJSON(owner, "POST", "/v1/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 5}, nil, http.StatusOK)
	c.WaitReplicated(owner, ops.id)

	c.Exit(owner)

	rec := c.OwnerOf(ops.id)
	if rec < 0 || rec == owner {
		t.Fatalf("no survivor adopted the session (owner %d, got %d)", owner, rec)
	}
	// Continuous service for 2x the dead timer: long enough that the
	// old failure mode (demote to the ghost claim, re-promote only
	// once the exited node ages dead) cannot hide inside the window.
	cl := c.Client()
	deadline := time.Now().Add(2 * DeadAfter)
	for time.Now().Before(deadline) {
		code, body := rawGet(t, cl, c.Nodes[rec].URL()+"/v1/sessions/"+ops.id+"/wm")
		if code != http.StatusOK {
			t.Fatalf("serving gap on recipient %s: status %d body %s", c.Nodes[rec].ID, code, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Status(rec).Failovers; got != 0 {
		t.Fatalf("recipient recovered via failover (%d promotions), want adoption only", got)
	}
	// The adopted session still runs from exactly where it left off.
	var run server.RunResponse
	c.MustJSON(rec, "POST", "/v1/sessions/"+ops.id+"/run", server.RunRequest{Cycles: 5}, &run, http.StatusOK)
	if run.Fired != 5 {
		t.Fatalf("post-exit run fired %d cycles, want 5: %+v", run.Fired, run)
	}
	var wm []server.WireWME
	c.MustJSON(rec, "GET", "/v1/sessions/"+ops.id+"/wm", nil, &wm, http.StatusOK)
	if len(wm) != 1 || wm[0].Attrs["n"] != 10.0 {
		t.Fatalf("post-exit working memory: %+v", wm)
	}
}
