package clustertest

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
)

// TestClusterStreamSoak is the nightly soak: continuous fraud-event
// ingest against a three-node cluster with abrupt owner kills, standby
// promotion and rejoin happening mid-stream. Each batch retries through
// failover windows (connection drops, 404 while the standby promotes,
// 429 backpressure); the run fails if a batch cannot land within its
// retry budget or the cluster stops serving the session. A short run
// (3s, a single kill/promote round) executes on every `go test`; the
// nightly workflow stretches it via SOAK_DURATION=10m under -race. On
// failure, goroutine dumps plus per-node loss tables and metrics land
// in $SOAK_ARTIFACTS for upload.
func TestClusterStreamSoak(t *testing.T) {
	duration := 3 * time.Second
	if v := os.Getenv("SOAK_DURATION"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad SOAK_DURATION %q: %v", v, err)
		}
		duration = d
	}
	const id = "soak-fraud"
	c := Start(t, 3, true)
	defer dumpSoakArtifacts(t, c, id)

	c.MustJSON(0, "POST", "/v1/sessions",
		server.CreateRequest{ID: id, Program: workload.FraudRules, Matcher: "parallel-rete", Workers: 2},
		nil, http.StatusCreated)

	cl := c.Client()
	deadline := time.Now().Add(duration)
	killEvery := duration / 4
	nextKill := time.Now().Add(killEvery)
	var (
		batchNum  int64
		applied   int
		lastClock int64
		killed    = -1 // node awaiting restart
		kills     int
	)
	for time.Now().Before(deadline) {
		// Fresh deterministic batch with globally advancing timestamps
		// and event IDs, so windows keep sliding and joins stay sane.
		evs := workload.FraudEvents(workload.FraudParams{
			Cards: 30, Events: 200, Window: 20, Seed: batchNum,
		})
		for i := range evs {
			evs[i].TS += batchNum * 60
			evs[i].Attrs["id"] = evs[i].Attrs["id"].(float64) + float64(batchNum)*1000
		}
		body := workload.NDJSON(evs)
		batchNum++

		sent := false
		for try := 0; try < 500 && !sent; try++ {
			owner := c.OwnerOf(id)
			if owner < 0 { // failover in progress
				time.Sleep(10 * time.Millisecond)
				continue
			}
			code, res := streamTo(t, cl, c.Nodes[owner].URL(), id, body)
			switch code {
			case http.StatusOK:
				if res.Clock < lastClock {
					t.Fatalf("batch %d: clock went backward %d -> %d without a kill",
						batchNum, lastClock, res.Clock)
				}
				lastClock = res.Clock
				applied += res.Events
				sent = true
			case http.StatusTooManyRequests:
				time.Sleep(20 * time.Millisecond) // backpressure: retry the batch
			default: // 0 (conn dropped), 404/503 during promotion
				time.Sleep(20 * time.Millisecond)
			}
		}
		if !sent {
			t.Fatalf("batch %d never applied within its retry budget", batchNum)
		}

		if time.Now().After(nextKill) {
			nextKill = time.Now().Add(killEvery)
			if killed >= 0 { // rejoin the previous victim first
				c.Restart(killed)
				killed = -1
			}
			if owner := c.OwnerOf(id); owner >= 0 {
				c.Kill(owner)
				killed = owner
				kills++
				// An abrupt kill may lose the unreplicated tail; the
				// promoted copy is allowed to restart behind.
				lastClock = 0
				c.WaitFor(10*time.Second, "promotion after kill", func() bool {
					return c.OwnerOf(id) >= 0
				})
			}
		}
	}
	if killed >= 0 {
		c.Restart(killed)
	}
	if kills == 0 {
		t.Error("soak finished without a kill/promote round — duration too short")
	}

	owner := c.OwnerOf(id)
	if owner < 0 {
		t.Fatal("no live owner at soak end")
	}
	var info server.SessionResponse
	c.MustJSON(owner, "GET", "/v1/sessions/"+id, nil, &info, http.StatusOK)
	if info.Clock == 0 || info.Expired == 0 {
		t.Errorf("soak end state never exercised expiry: clock=%d expired=%d", info.Clock, info.Expired)
	}
	t.Logf("soak: %d batches, %d events applied, %d kills, clock %d, expired %d, wm %d",
		batchNum, applied, kills, info.Clock, info.Expired, info.WMSize)
}

// dumpSoakArtifacts writes failure diagnostics — a full goroutine dump
// plus each live node's /metrics and the soak session's loss table —
// into $SOAK_ARTIFACTS, where the nightly workflow picks them up.
func dumpSoakArtifacts(t *testing.T, c *Cluster, id string) {
	dir := os.Getenv("SOAK_ARTIFACTS")
	if !t.Failed() || dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("soak artifacts: %v", err)
		return
	}
	var buf bytes.Buffer
	pprof.Lookup("goroutine").WriteTo(&buf, 2)
	os.WriteFile(filepath.Join(dir, "goroutines.txt"), buf.Bytes(), 0o644)
	cl := c.Client()
	for i, tn := range c.Nodes {
		if !tn.up {
			continue
		}
		if code, body := rawGet(t, cl, tn.URL()+"/metrics"); code == http.StatusOK {
			os.WriteFile(filepath.Join(dir, fmt.Sprintf("metrics-n%d.txt", i)), body, 0o644)
		}
		if code, body := rawGet(t, cl, tn.URL()+"/v1/sessions/"+id+"/loss"); code == http.StatusOK {
			os.WriteFile(filepath.Join(dir, fmt.Sprintf("loss-n%d.json", i)), body, 0o644)
		}
	}
	t.Logf("soak artifacts written to %s", dir)
}
