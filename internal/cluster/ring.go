// Package cluster turns psmd into a multi-node service. The paper's
// architectures (§4–5) scale production-system match across the
// processors of one shared-memory machine; this package scales the
// hosted service across machines, with the session — not the production
// — as the unit of placement. Each session is owned by the node a
// consistent-hash ring assigns it to; the owner streams its durable WAL
// (internal/durable) to R−1 follower replicas, and on owner death the
// next-ranked follower promotes by replaying its shipped snapshot+tail,
// exactly the crash-recovery path a single node already exercises.
//
// The pieces:
//
//   - ring.go       consistent-hash placement with virtual nodes
//   - membership.go static peer table + heartbeat (alive/suspect/dead)
//   - ship.go       per-session WAL shipping to followers
//   - node.go       the reconcile loop: handoff, promotion, drain
//   - handler.go    routing middleware + the /v1/internal wire protocol
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring places session IDs onto node IDs by consistent hashing with
// virtual nodes: each node is hashed onto the circle VNodes times, a
// key's owner is the first vnode clockwise from the key's hash, and the
// preference list continues clockwise skipping vnodes of nodes already
// chosen. Placement depends only on the member set, so every node
// computes identical rings from identical membership. A Ring is
// immutable once built.
type Ring struct {
	hashes []uint64
	owners []string // owners[i] is the node owning hashes[i]
	nodes  []string
}

// DefaultVNodes balances placement within a few percent for small
// clusters without making ring construction measurable.
const DefaultVNodes = 64

// NewRing builds a ring over nodes (order-insensitive; duplicates are
// collapsed). vnodes <= 0 uses DefaultVNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		hashes: make([]uint64, 0, len(uniq)*vnodes),
		owners: make([]string, 0, len(uniq)*vnodes),
		nodes:  uniq,
	}
	type point struct {
		h     uint64
		owner string
	}
	points := make([]point, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{hash64(fmt.Sprintf("%s#%d", n, v)), n})
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].h < points[j].h })
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.owner)
	}
	return r
}

// Nodes returns the member set the ring was built over (sorted).
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node that owns key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	return r.owners[r.search(key)]
}

// Prefer returns the first n distinct nodes clockwise from key's hash —
// the session's owner followed by its replica candidates in promotion
// order. n past the member count returns every node.
func (r *Ring) Prefer(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); i < len(r.hashes) && len(out) < n; i++ {
		owner := r.owners[(start+i)%len(r.hashes)]
		if !seen[owner] {
			seen[owner] = true
			out = append(out, owner)
		}
	}
	return out
}

// search finds the first vnode clockwise from key's hash.
func (r *Ring) search(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a with a splitmix64 finalizer: cheap, stable across
// processes, and free of dependencies — placement must agree between
// nodes built from the same source. Raw FNV distributes short similar
// strings ("a#0", "a#1", ...) unevenly around the circle; the
// finalizer's avalanche fixes the spread.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
