// Package metrics renders the tables and figure series produced by the
// experiment harness: aligned ASCII tables and simple line charts, so
// cmd/experiments can print every table and figure of the paper.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Table renders an aligned ASCII table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []int
	Y    []float64
}

// SeriesTable renders curves as a table with one row per x value and
// one column per series — the exact data behind a paper figure.
func SeriesTable(xLabel string, series []Series, format string) string {
	if len(series) == 0 {
		return ""
	}
	headers := []string{xLabel}
	for _, s := range series {
		headers = append(headers, s.Name)
	}
	var rows [][]string
	for i, x := range series[0].X {
		row := []string{fmt.Sprint(x)}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf(format, s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return Table(headers, rows)
}

// Chart renders the series as an ASCII line chart (points marked with
// per-series glyphs), echoing the look of the paper's figures.
func Chart(title, xLabel, yLabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	glyphs := []byte{'o', '*', '+', 'x', '#', '@', '%', '&', '$', '~'}

	var xmax int
	var ymax float64
	for _, s := range series {
		for _, x := range s.X {
			if x > xmax {
				xmax = x
			}
		}
		for _, y := range s.Y {
			if y > ymax {
				ymax = y
			}
		}
	}
	if xmax == 0 || ymax == 0 {
		return title + ": (no data)\n"
	}
	ymax *= 1.05

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			c := int(math.Round(float64(s.X[i]) / float64(xmax) * float64(width-1)))
			r := height - 1 - int(math.Round(s.Y[i]/ymax*float64(height-1)))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s\n", yLabel)
	for r := 0; r < height; r++ {
		yVal := ymax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&b, "%8.1f |%s\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", width-len(xLabel), "0", xLabel)
	for si, s := range series {
		fmt.Fprintf(&b, "    %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}
