package metrics_test

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestTableAlignment(t *testing.T) {
	out := metrics.Table(
		[]string{"name", "value"},
		[][]string{{"a", "1"}, {"longer-name", "22"}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header, rule, 2 rows)", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header = %q", lines[0])
	}
	// All rows are padded to the same visual width per column: the
	// value column starts at the same offset everywhere.
	off := strings.Index(lines[0], "value")
	if strings.Index(lines[2]+"      ", "1") < off-1 {
		t.Errorf("misaligned rows:\n%s", out)
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
}

func TestSeriesTable(t *testing.T) {
	s := []metrics.Series{
		{Name: "a", X: []int{1, 2}, Y: []float64{1.5, 2.5}},
		{Name: "b", X: []int{1, 2}, Y: []float64{3}},
	}
	out := metrics.SeriesTable("x", s, "%.1f")
	if !strings.Contains(out, "1.5") || !strings.Contains(out, "2.5") {
		t.Errorf("missing values:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("short series should render '-':\n%s", out)
	}
	if metrics.SeriesTable("x", nil, "%f") != "" {
		t.Error("empty series should render empty string")
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	s := []metrics.Series{
		{Name: "up", X: []int{1, 10, 20}, Y: []float64{1, 5, 9}},
		{Name: "flat", X: []int{1, 10, 20}, Y: []float64{3, 3, 3}},
	}
	out := metrics.Chart("title", "x", "y", s, 40, 10)
	if !strings.Contains(out, "title") || !strings.Contains(out, "up") || !strings.Contains(out, "flat") {
		t.Errorf("chart missing parts:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Errorf("chart missing glyphs:\n%s", out)
	}
}

func TestChartEmptyData(t *testing.T) {
	out := metrics.Chart("t", "x", "y", nil, 30, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
}

func TestF(t *testing.T) {
	if metrics.F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", metrics.F(3.14159, 2))
	}
}
