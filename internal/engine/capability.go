package engine

// This file defines the optional matcher capability interfaces. The
// core Matcher contract stays the single Apply method; matchers (or
// their adapters in internal/core) may additionally implement
// StatsProvider and IndexProvider, which the engine — and tools such
// as cmd/ops5run -stats — discover by type assertion instead of
// reaching into matcher internals.

// MatchStats is a matcher-neutral summary of match work performed.
type MatchStats struct {
	// Changes is the number of WM changes processed.
	Changes int64
	// Comparisons counts element-versus-pattern or token-versus-WME
	// tests, whatever the matcher's unit of match work is.
	Comparisons int64
	// ConflictInserts and ConflictRemoves count conflict-set deltas.
	ConflictInserts int64
	ConflictRemoves int64
	// Tasks, Steals and Parks are scheduler counters, populated only by
	// matchers with a work-stealing activation scheduler (the parallel
	// Rete): activations executed, tasks moved between workers, and
	// condvar waits. They decompose the paper's §6 scheduling overhead;
	// zero for serial matchers.
	Tasks  int64
	Steals int64
	Parks  int64
	// Workers breaks the scheduler counters down per worker lane; nil
	// for matchers without a scheduler.
	Workers []WorkerStat
}

// WorkerStat is one scheduler lane's counters.
type WorkerStat struct {
	// Executed counts activations this lane ran; Stolen the tasks it
	// took from other lanes; Parked its condvar waits.
	Executed int64
	Stolen   int64
	Parked   int64
}

// IndexReport summarises a matcher's equality-join hash indexes.
type IndexReport struct {
	// IndexedNodes and FallbackNodes partition the matcher's join
	// points by whether they probe a hash bucket or scan linearly.
	IndexedNodes  int
	FallbackNodes int
	// Buckets is the number of live hash buckets; MaxBucket the
	// largest bucket's population (the worst-case probe scan).
	Buckets   int
	MaxBucket int
}

// NodeProfileEntry is one match-network node's accumulated work, for
// live hot-node profiling (the serving analogue of internal/trace's
// offline per-activation traces). Counters are cumulative since the
// matcher was built.
type NodeProfileEntry struct {
	// NodeID identifies the node within the matcher's network.
	NodeID int
	// Label describes the node (kind, join tests) for humans.
	Label string
	// SharedBy is the number of productions sharing the node — the
	// sharing that production-level parallelism loses (§4).
	SharedBy int
	// Productions names the productions reading the node (deduplicated,
	// possibly truncated for very shared nodes).
	Productions []string
	// Activations counts node activations; TokensTested the
	// opposite-memory entries examined; PairsEmitted the tokens sent
	// downstream; IndexedProbes the activations answered from a hash
	// bucket rather than a linear scan.
	Activations   int64
	TokensTested  int64
	PairsEmitted  int64
	IndexedProbes int64
	// Cost is the accumulated instruction cost under the paper's cost
	// model (internal/cost) — the ranking key for hot-node reports.
	Cost float64
}

// StatsProvider is the optional capability of reporting match work.
type StatsProvider interface {
	MatchStats() MatchStats
}

// ProfileProvider is the optional capability of reporting per-node
// activation work. Matchers without a node network (naive, full-state)
// simply do not implement it.
type ProfileProvider interface {
	NodeProfile() []NodeProfileEntry
}

// IndexProvider is the optional capability of reporting hash-index
// state; matchers without indexed memories simply do not implement it.
type IndexProvider interface {
	Indexed() IndexReport
}

// MatcherStats returns the matcher's work summary when the matcher
// implements StatsProvider; ok is false otherwise.
func (e *Engine) MatcherStats() (s MatchStats, ok bool) {
	if p, has := e.Matcher.(StatsProvider); has {
		return p.MatchStats(), true
	}
	return MatchStats{}, false
}

// MatcherIndex returns the matcher's index report when the matcher
// implements IndexProvider; ok is false otherwise.
func (e *Engine) MatcherIndex() (r IndexReport, ok bool) {
	if p, has := e.Matcher.(IndexProvider); has {
		return p.Indexed(), true
	}
	return IndexReport{}, false
}

// MatcherProfile returns the matcher's per-node work profile when the
// matcher implements ProfileProvider; ok is false otherwise.
func (e *Engine) MatcherProfile() (entries []NodeProfileEntry, ok bool) {
	if p, has := e.Matcher.(ProfileProvider); has {
		return p.NodeProfile(), true
	}
	return nil, false
}
