package engine

// This file defines the optional matcher capability interfaces. The
// core Matcher contract stays the single Apply method; matchers (or
// their adapters in internal/core) may additionally implement the
// provider interfaces below. Callers discover them through the single
// Capabilities accessor — the engine, the server and tools such as
// cmd/ops5run -stats all read capabilities from the returned Caps
// bundle instead of type-asserting matcher types themselves.

// MatchStats is a matcher-neutral summary of match work performed.
type MatchStats struct {
	// Changes is the number of WM changes processed.
	Changes int64
	// Comparisons counts element-versus-pattern or token-versus-WME
	// tests, whatever the matcher's unit of match work is.
	Comparisons int64
	// ConflictInserts and ConflictRemoves count conflict-set deltas.
	ConflictInserts int64
	ConflictRemoves int64
	// Tasks, Steals and Parks are scheduler counters, populated only by
	// matchers with a work-stealing activation scheduler (the parallel
	// Rete): activations executed, tasks moved between workers, and
	// condvar waits. They decompose the paper's §6 scheduling overhead;
	// zero for serial matchers.
	Tasks  int64
	Steals int64
	Parks  int64
	// Wakeups counts resident-pool wake broadcasts (batches run on the
	// pool); InlineBatches counts batches the scheduler's serial bypass
	// ran on the caller; ResidentWorkers is the number of live pool
	// goroutines right now. All zero for serial matchers.
	Wakeups         int64
	InlineBatches   int64
	ResidentWorkers int
	// Workers breaks the scheduler counters down per worker lane; nil
	// for matchers without a scheduler.
	Workers []WorkerStat
}

// WorkerStat is one scheduler lane's counters.
type WorkerStat struct {
	// Executed counts activations this lane ran; Stolen the tasks it
	// took from other lanes; Parked its condvar waits.
	Executed int64
	Stolen   int64
	Parked   int64
}

// IndexReport summarises a matcher's equality-join hash indexes.
type IndexReport struct {
	// IndexedNodes and FallbackNodes partition the matcher's join
	// points by whether they probe a hash bucket or scan linearly.
	IndexedNodes  int
	FallbackNodes int
	// Buckets is the number of live hash buckets; MaxBucket the
	// largest bucket's population (the worst-case probe scan).
	Buckets   int
	MaxBucket int
}

// NodeProfileEntry is one match-network node's accumulated work, for
// live hot-node profiling (the serving analogue of internal/trace's
// offline per-activation traces). Counters are cumulative since the
// matcher was built.
type NodeProfileEntry struct {
	// NodeID identifies the node within the matcher's network.
	NodeID int
	// Label describes the node (kind, join tests) for humans.
	Label string
	// SharedBy is the number of productions sharing the node — the
	// sharing that production-level parallelism loses (§4).
	SharedBy int
	// Productions names the productions reading the node (deduplicated,
	// possibly truncated for very shared nodes).
	Productions []string
	// Activations counts node activations; TokensTested the
	// opposite-memory entries examined; PairsEmitted the tokens sent
	// downstream; IndexedProbes the activations answered from a hash
	// bucket rather than a linear scan.
	Activations   int64
	TokensTested  int64
	PairsEmitted  int64
	IndexedProbes int64
	// Cost is the accumulated instruction cost under the paper's cost
	// model (internal/cost) — the ranking key for hot-node reports.
	Cost float64
}

// LossReport is a matcher-neutral loss-factor accounting in the shape
// of the paper's §6 table: where the wall time of parallel match work
// went, and how measured (true) speedup relates to nominal concurrency.
// Only matchers with a phase-instrumented scheduler (the parallel Rete)
// provide one. All numbers are cumulative since the matcher was built.
type LossReport struct {
	// Workers is the scheduler lane count; Batches the Apply batches.
	Workers int
	Batches int
	// ApplySeconds is total wall time inside Apply; SeedSeconds its
	// serial dispatch prefix, ActiveSeconds the parallel worker window,
	// MergeSeconds the serial conflict-set merge barrier.
	ApplySeconds  float64
	SeedSeconds   float64
	ActiveSeconds float64
	MergeSeconds  float64
	// Phases aggregates per-phase worker wall time over all lanes;
	// PerWorker breaks it down by lane.
	Phases    []PhaseSeconds
	PerWorker []WorkerLoss
	// TaskSizes is the activation execution-time histogram (granularity
	// below profitable task size shows up in the lowest buckets).
	TaskSizes []TaskBucket
	// SerialEstimateSeconds estimates single-processor time for the
	// same work; TrueSpeedup = estimate / ApplySeconds;
	// NominalConcurrency = mean busy workers during the active window;
	// LossFactor = nominal / true (the paper measures 1.93).
	SerialEstimateSeconds float64
	TrueSpeedup           float64
	NominalConcurrency    float64
	LossFactor            float64
	// Decomposition partitions the total processor budget
	// (Workers x ApplySeconds) into named loss components whose shares
	// sum to 1.
	Decomposition []LossComponent
}

// PhaseSeconds is one named scheduler phase's accumulated wall time.
type PhaseSeconds struct {
	Phase   string
	Seconds float64
}

// WorkerLoss is one scheduler lane's phase breakdown.
type WorkerLoss struct {
	Worker int
	Tasks  int64
	Phases []PhaseSeconds
}

// TaskBucket is one bar of the task-size histogram: tasks that executed
// in at most UpToNanos (0 marks the open top bucket).
type TaskBucket struct {
	UpToNanos int64
	Count     int64
}

// LossComponent is one term of the loss decomposition.
type LossComponent struct {
	Name    string
	Seconds float64
	Share   float64
}

// StatsProvider is the optional capability of reporting match work.
type StatsProvider interface {
	MatchStats() MatchStats
}

// Closer is the optional capability of releasing matcher-owned
// resources — for the parallel Rete, its resident worker pool. Close
// must be idempotent and must leave the matcher usable (it may fall
// back to a serial path).
type Closer interface {
	Close()
}

// LossProvider is the optional capability of reporting loss-factor
// accounting; only phase-instrumented parallel matchers implement it.
type LossProvider interface {
	LossReport() LossReport
}

// ProfileProvider is the optional capability of reporting per-node
// activation work. Matchers without a node network (naive, full-state)
// simply do not implement it.
type ProfileProvider interface {
	NodeProfile() []NodeProfileEntry
}

// IndexProvider is the optional capability of reporting hash-index
// state; matchers without indexed memories simply do not implement it.
type IndexProvider interface {
	Indexed() IndexReport
}

// Caps bundles a matcher's optional capabilities. A nil field means the
// matcher does not implement that capability; callers branch on the
// field instead of type-asserting the matcher themselves. New optional
// capabilities are added here rather than at call sites, so capability
// discovery stays in one documented place.
type Caps struct {
	// Stats reports matcher-neutral work counters (nil: not supported).
	Stats StatsProvider
	// Profile reports per-node activation work (nil: no node network).
	Profile ProfileProvider
	// Index reports equality-join hash-index state (nil: no indexes).
	Index IndexProvider
	// Loss reports loss-factor accounting (nil: no phase-instrumented
	// scheduler).
	Loss LossProvider
	// Close releases matcher resources such as resident worker pools
	// (nil: nothing to release).
	Close Closer
}

// Capabilities discovers the optional capabilities of a matcher. It is
// the single sanctioned way to get at matcher extras — servers, tools
// and experiments all go through it, never through type assertions on
// concrete matcher types.
func Capabilities(m Matcher) Caps {
	var c Caps
	c.Stats, _ = m.(StatsProvider)
	c.Profile, _ = m.(ProfileProvider)
	c.Index, _ = m.(IndexProvider)
	c.Loss, _ = m.(LossProvider)
	c.Close, _ = m.(Closer)
	return c
}

// Close releases matcher-owned resources — for the parallel matcher,
// its resident worker pool. Idempotent; the engine stays usable (the
// matcher falls back to its serial path). Every owner of an engine with
// a resident-pool matcher must call it when retiring the engine, or the
// pool goroutines leak.
func (e *Engine) Close() {
	if c := e.Capabilities().Close; c != nil {
		c.Close()
	}
}

// Capabilities returns the capability bundle of the engine's matcher.
func (e *Engine) Capabilities() Caps { return Capabilities(e.Matcher) }

// MatcherStats returns the matcher's work summary when the matcher
// implements StatsProvider; ok is false otherwise.
func (e *Engine) MatcherStats() (s MatchStats, ok bool) {
	if p := e.Capabilities().Stats; p != nil {
		return p.MatchStats(), true
	}
	return MatchStats{}, false
}

// MatcherIndex returns the matcher's index report when the matcher
// implements IndexProvider; ok is false otherwise.
func (e *Engine) MatcherIndex() (r IndexReport, ok bool) {
	if p := e.Capabilities().Index; p != nil {
		return p.Indexed(), true
	}
	return IndexReport{}, false
}

// MatcherProfile returns the matcher's per-node work profile when the
// matcher implements ProfileProvider; ok is false otherwise.
func (e *Engine) MatcherProfile() (entries []NodeProfileEntry, ok bool) {
	if p := e.Capabilities().Profile; p != nil {
		return p.NodeProfile(), true
	}
	return nil, false
}
