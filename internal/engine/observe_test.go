package engine_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/ops5"
)

const countToThree = `
(p count
    (counter ^n <n> ^limit <l>)
  - (counter ^n <l>)
  -->
    (modify 1 ^n (compute <n> + 1)))

(p done
    (counter ^n <n> ^limit <n>)
  -->
    (halt))
`

func TestOnCycleEmitsSpans(t *testing.T) {
	sys := newSys(t, countToThree, core.Options{})
	var spans []obs.CycleSpan
	sys.Engine.OnCycle = func(sp obs.CycleSpan) { spans = append(spans, sp) }

	sys.Assert(ops5.NewWME("counter", "n", 0, "limit", 3))
	if len(spans) != 1 || spans[0].Kind != obs.SpanApply {
		t.Fatalf("after load: spans = %+v, want one apply span", spans)
	}
	if spans[0].Changes != 1 || spans[0].WMSize != 1 {
		t.Errorf("apply span = %+v, want changes=1 wm_size=1", spans[0])
	}

	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// 3 count firings plus the done/halt cycle follow the apply span.
	cycleSpans := spans[1:]
	if len(cycleSpans) != 4 {
		t.Fatalf("cycle spans = %d, want 4 (got %+v)", len(cycleSpans), cycleSpans)
	}
	for i, sp := range cycleSpans {
		if sp.Kind != obs.SpanCycle {
			t.Errorf("span %d kind = %q, want cycle", i, sp.Kind)
		}
		if sp.Cycle != i+1 {
			t.Errorf("span %d cycle = %d, want %d", i, sp.Cycle, i+1)
		}
		if sp.Fired != 1 {
			t.Errorf("span %d fired = %d, want 1", i, sp.Fired)
		}
		if sp.Start.IsZero() {
			t.Errorf("span %d has zero start time", i)
		}
		if sp.Total() < sp.Match {
			t.Errorf("span %d total %v < match %v", i, sp.Total(), sp.Match)
		}
	}
	// The halt cycle commits no changes through the matcher.
	if last := cycleSpans[len(cycleSpans)-1]; last.Changes != 0 {
		t.Errorf("halt span changes = %d, want 0", last.Changes)
	}
}

func TestRunContextAttachesTraceID(t *testing.T) {
	sys := newSys(t, countToThree, core.Options{})
	var spans []obs.CycleSpan
	sys.Engine.OnCycle = func(sp obs.CycleSpan) { spans = append(spans, sp) }
	sys.Assert(ops5.NewWME("counter", "n", 0, "limit", 2))

	ctx := obs.WithTraceID(context.Background(), "trace-42")
	if _, err := sys.Engine.RunContext(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if len(spans) < 2 {
		t.Fatalf("spans = %d, want >= 2", len(spans))
	}
	// The load happened outside the traced request; every run span
	// carries the request's ID.
	if spans[0].TraceID != "" {
		t.Errorf("apply span trace = %q, want empty", spans[0].TraceID)
	}
	for _, sp := range spans[1:] {
		if sp.TraceID != "trace-42" {
			t.Errorf("cycle %d trace = %q, want trace-42", sp.Cycle, sp.TraceID)
		}
	}
}

func TestNilOnCycleRunsClean(t *testing.T) {
	sys := newSys(t, countToThree, core.Options{})
	sys.Assert(ops5.NewWME("counter", "n", 0, "limit", 3))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !sys.Halted {
		t.Error("program did not halt")
	}
}
