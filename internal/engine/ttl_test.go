package engine_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ops5"
)

// assertTTL asserts one fact carrying a ^__ttl field.
func assertTTL(sys *core.System, class string, ttl int, pairs ...any) {
	w := ops5.NewWME(class, append(pairs, "__ttl", float64(ttl))...)
	sys.ApplyChanges([]ops5.Change{{Kind: ops5.Insert, WME: w}})
}

func TestAdvanceClockExpires(t *testing.T) {
	sys := newSys(t, `(literalize ev name __ttl)`, core.Options{})
	assertTTL(sys, "ev", 5, "name", "a") // deadline 5
	sys.Engine.AdvanceClock(3)
	assertTTL(sys, "ev", 5, "name", "b") // deadline 8
	if got := sys.WM.Size(); got != 2 {
		t.Fatalf("WM size = %d, want 2", got)
	}
	if n := sys.Engine.AdvanceClock(5); n != 1 {
		t.Fatalf("AdvanceClock(5) expired %d, want 1", n)
	}
	if got := sys.WM.Size(); got != 1 {
		t.Fatalf("after first expiry WM size = %d, want 1", got)
	}
	if sys.Engine.Expired != 1 || sys.Engine.PendingExpiries() != 1 {
		t.Fatalf("Expired = %d, pending = %d, want 1, 1",
			sys.Engine.Expired, sys.Engine.PendingExpiries())
	}
	// Monotone: an older timestamp neither rewinds nor expires.
	if n := sys.Engine.AdvanceClock(2); n != 0 || sys.Engine.Clock != 5 {
		t.Fatalf("stale advance: expired %d, clock %d", n, sys.Engine.Clock)
	}
	if n := sys.Engine.AdvanceClock(100); n != 1 {
		t.Fatalf("AdvanceClock(100) expired %d, want 1", n)
	}
	if got := sys.WM.Size(); got != 0 {
		t.Fatalf("final WM size = %d, want 0", got)
	}
}

func TestStepAdvancesClockAndExpires(t *testing.T) {
	// Each firing is one cycle, so each firing moves the clock one tick.
	src := `
(literalize ev __ttl)
(literalize tick n)
(p tick
    (tick ^n <n> ^n < 5)
  -->
    (modify 1 ^n (compute <n> + 1)))
`
	sys := newSys(t, src, core.Options{MaxCycles: 20})
	assertTTL(sys, "ev", 3)
	sys.ApplyChanges([]ops5.Change{{Kind: ops5.Insert, WME: ops5.NewWME("tick", "n", 0.0)}})
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Engine.Clock != 5 {
		t.Fatalf("clock = %d, want 5 (one per cycle)", sys.Engine.Clock)
	}
	if sys.Engine.Expired != 1 || len(sys.WM.OfClass("ev")) != 0 {
		t.Fatalf("event not expired by cycling: expired=%d, ev=%d",
			sys.Engine.Expired, len(sys.WM.OfClass("ev")))
	}
}

func TestRetractCancelsExpiry(t *testing.T) {
	sys := newSys(t, `(literalize ev __ttl)`, core.Options{})
	assertTTL(sys, "ev", 5)
	wmes := sys.WM.OfClass("ev")
	if len(wmes) != 1 {
		t.Fatalf("got %d ev facts", len(wmes))
	}
	sys.ApplyChanges([]ops5.Change{{Kind: ops5.Delete, WME: wmes[0]}})
	if sys.Engine.PendingExpiries() != 0 {
		t.Fatalf("pending = %d after retract, want 0", sys.Engine.PendingExpiries())
	}
	if n := sys.Engine.AdvanceClock(100); n != 0 || sys.Engine.Expired != 0 {
		t.Fatalf("cancelled expiry still fired: n=%d expired=%d", n, sys.Engine.Expired)
	}
}

func TestTTLClampsToOneTick(t *testing.T) {
	sys := newSys(t, `(literalize ev __ttl)`, core.Options{})
	assertTTL(sys, "ev", 0) // clamps to 1: lives at least one tick
	if sys.WM.Size() != 1 {
		t.Fatal("zero-ttl event should survive its insert tick")
	}
	if n := sys.Engine.AdvanceClock(1); n != 1 {
		t.Fatalf("expired %d at tick 1, want 1", n)
	}
}

func TestExpiryRetractsDependentInstantiations(t *testing.T) {
	// An alert join over a live event leaves the conflict set when the
	// event expires — expiry flows through the normal matcher delete path.
	src := `
(literalize ev kind __ttl)
(literalize alert)
(p raise
    (ev ^kind bad)
  -->
    (make alert))
`
	sys := newSys(t, src, core.Options{})
	assertTTL(sys, "ev", 2, "kind", "bad")
	if sys.CS.Len() != 1 {
		t.Fatalf("conflict set = %d, want 1", sys.CS.Len())
	}
	sys.Engine.AdvanceClock(2)
	if sys.CS.Len() != 0 {
		t.Fatalf("conflict set = %d after expiry, want 0", sys.CS.Len())
	}
}

func TestExpiriesSnapshotRoundTrip(t *testing.T) {
	sys := newSys(t, `(literalize ev name __ttl)`, core.Options{})
	assertTTL(sys, "ev", 5, "name", "a")
	sys.Engine.AdvanceClock(2)
	assertTTL(sys, "ev", 7, "name", "b")
	tags, deadlines := sys.Engine.Expiries()
	if len(tags) != 2 || len(deadlines) != 2 {
		t.Fatalf("expiries = %v / %v", tags, deadlines)
	}
	if deadlines[0] != 5 || deadlines[1] != 9 {
		t.Fatalf("deadlines = %v, want [5 9]", deadlines)
	}

	// A fresh engine primed with the table expires the same tags at the
	// same ticks.
	sys2 := newSys(t, `(literalize ev name __ttl)`, core.Options{})
	if err := sys2.Engine.Restore(sys.WM.Elements(), sys.WM.NextTag(), nil); err != nil {
		t.Fatal(err)
	}
	sys2.Engine.Clock = sys.Engine.Clock
	sys2.Engine.RestoreExpiries(tags, deadlines)
	if n := sys2.Engine.AdvanceClock(5); n != 1 {
		t.Fatalf("restored engine expired %d at tick 5, want 1", n)
	}
	if n := sys2.Engine.AdvanceClock(9); n != 1 {
		t.Fatalf("restored engine expired %d at tick 9, want 1", n)
	}
}

func TestPureClockAdvanceReachesSink(t *testing.T) {
	sys := newSys(t, `(literalize ev __ttl)`, core.Options{})
	var sank int
	sys.Engine.Sink = func(changes []ops5.Change, firedKeys []string) { sank++ }
	sys.Engine.AdvanceClock(10) // nothing due — must still hit the sink
	if sank != 1 {
		t.Fatalf("pure clock advance reached sink %d times, want 1", sank)
	}
}
