package engine_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ops5"
)

// newSys builds a serial-Rete system for engine-semantics tests.
func newSys(t *testing.T, src string, opts core.Options) *core.System {
	t.Helper()
	sys, err := core.NewSystem(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMakeModifyRemove(t *testing.T) {
	src := `
(p step1
    (input ^v <x>)
  -->
    (make result ^from <x> ^stage one)
    (modify 1 ^v done))

(p step2
    (input ^v done)
    (result ^stage one)
  -->
    (modify 2 ^stage two)
    (remove 1))
`
	sys := newSys(t, src, core.Options{MaxCycles: 10})
	sys.Assert(ops5.NewWME("input", "v", 41))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	elems := sys.WM.Elements()
	if len(elems) != 1 {
		t.Fatalf("final WM = %v, want single result", elems)
	}
	r := elems[0]
	if r.Class() != "result" || r.Get("stage").SymName() != "two" || r.Get("from").Num != 41 {
		t.Errorf("result = %v", r)
	}
	if sys.Fired != 2 {
		t.Errorf("fired = %d, want 2", sys.Fired)
	}
}

func TestHaltStopsImmediately(t *testing.T) {
	src := `
(p loop
    (c ^n <x>)
  -->
    (make c ^n <x>)
    (halt))
`
	sys := newSys(t, src, core.Options{MaxCycles: 100})
	sys.Assert(ops5.NewWME("c", "n", 1))
	cycles, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 || !sys.Halted {
		t.Errorf("cycles = %d halted = %v, want 1/true", cycles, sys.Halted)
	}
}

func TestWriteAndBind(t *testing.T) {
	src := `
(p report
    (c ^n <x>)
  -->
    (bind <y> 99)
    (write value <x> bound <y>)
    (remove 1))
`
	var out strings.Builder
	sys := newSys(t, src, core.Options{Output: &out, MaxCycles: 5})
	sys.Assert(ops5.NewWME("c", "n", 7))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "value 7 bound 99" {
		t.Errorf("write output = %q", got)
	}
}

func TestRefraction(t *testing.T) {
	// A production whose firing does not change the WMEs it matched
	// must not fire again on the same instantiation (refraction), so
	// the run terminates.
	src := `
(p observe
    (c ^n <x>)
  -->
    (write saw <x>))
`
	var out strings.Builder
	sys := newSys(t, src, core.Options{Output: &out, MaxCycles: 50})
	sys.Assert(ops5.NewWME("c", "n", 1), ops5.NewWME("c", "n", 2))
	cycles, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 2 {
		t.Errorf("cycles = %d, want 2 (one per instantiation, then quiescence)", cycles)
	}
	if sys.Fired != 2 {
		t.Errorf("fired = %d, want 2", sys.Fired)
	}
}

func TestParallelFirings(t *testing.T) {
	// With ParallelFirings = 4, four independent instantiations fire in
	// one cycle and their changes form a single batch.
	src := `
(p consume
    (c ^n <x>)
  -->
    (remove 1))
`
	sys := newSys(t, src, core.Options{MaxCycles: 10, ParallelFirings: 4})
	sys.Assert(
		ops5.NewWME("c", "n", 1), ops5.NewWME("c", "n", 2),
		ops5.NewWME("c", "n", 3), ops5.NewWME("c", "n", 4),
	)
	cycles, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 {
		t.Errorf("cycles = %d, want 1 (all four fire together)", cycles)
	}
	if sys.WM.Size() != 0 {
		t.Errorf("WM size = %d, want 0", sys.WM.Size())
	}
}

func TestParallelFiringsSkipConsumed(t *testing.T) {
	// Two instantiations share a WME; when the first firing removes it,
	// the second must be skipped within the same cycle.
	src := `
(p a (c ^n <x>) (d ^m <y>) --> (remove 1))
(p b (c ^n <x>) (e ^m <y>) --> (remove 1))
`
	sys := newSys(t, src, core.Options{MaxCycles: 10, ParallelFirings: 4})
	sys.Assert(ops5.NewWME("c", "n", 1), ops5.NewWME("d", "m", 1), ops5.NewWME("e", "m", 1))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Fired != 1 {
		t.Errorf("fired = %d, want 1 (second instantiation uses the consumed WME)", sys.Fired)
	}
}

func TestOnFireObserves(t *testing.T) {
	src := `(p once (c ^n 1) --> (remove 1))`
	sys := newSys(t, src, core.Options{MaxCycles: 5})
	var seen []string
	sys.OnFire = func(in *ops5.Instantiation) { seen = append(seen, in.Production.Name) }
	sys.Assert(ops5.NewWME("c", "n", 1))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "once" {
		t.Errorf("OnFire saw %v", seen)
	}
}

func TestMEAOrdersByGoalRecency(t *testing.T) {
	// Under MEA the instantiation whose first CE matches the youngest
	// goal element fires first, even when another instantiation has a
	// younger non-goal element.
	src := `
(p old-goal (goal ^id g1) (data ^v <x>) --> (write old) (remove 2))
(p new-goal (goal ^id g2) (other ^v <x>) --> (write new) (remove 2))
`
	var out strings.Builder
	sys := newSys(t, src, core.Options{Strategy: conflict.MEA, Output: &out, MaxCycles: 3})
	sys.Assert(ops5.NewWME("goal", "id", "g1"))
	sys.Assert(ops5.NewWME("goal", "id", "g2"))
	sys.Assert(ops5.NewWME("other", "v", 1))
	sys.Assert(ops5.NewWME("data", "v", 2)) // youngest overall, but old goal
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(out.String())
	if len(lines) != 2 || lines[0] != "new" {
		t.Errorf("MEA firing order = %v, want [new old]", lines)
	}
}

func TestAllMatchersAgreeOnRun(t *testing.T) {
	// The same program must produce the same final WM and firing count
	// under every matcher.
	src := `
(p promote
    (item ^rank <r> ^state raw)
    (threshold ^min <m>)
   -(blocked ^rank <r>)
  -->
    (modify 1 ^state cooked))

(p finish
    (threshold ^min <m>)
   -(item ^state raw)
  -->
    (remove 1)
    (halt))
`
	assertWM := func(sys *core.System) {
		sys.Assert(
			ops5.NewWME("item", "rank", 1, "state", "raw"),
			ops5.NewWME("item", "rank", 2, "state", "raw"),
			ops5.NewWME("item", "rank", 3, "state", "raw"),
			ops5.NewWME("blocked", "rank", 9),
			ops5.NewWME("threshold", "min", 0),
		)
	}
	type outcome struct {
		fired int
		wm    string
	}
	var ref *outcome
	for _, kind := range []core.MatcherKind{core.SerialRete, core.ParallelRete, core.TREAT, core.FullState, core.Naive} {
		sys := newSys(t, src, core.Options{Matcher: kind, MaxCycles: 50})
		assertWM(sys)
		if _, err := sys.Run(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		var b strings.Builder
		for _, w := range sys.WM.Elements() {
			b.WriteString(w.String())
			b.WriteString("\n")
		}
		got := &outcome{fired: sys.Fired, wm: b.String()}
		if ref == nil {
			ref = got
			continue
		}
		if got.fired != ref.fired || got.wm != ref.wm {
			t.Errorf("%v diverges: fired %d vs %d\nwm:\n%svs:\n%s",
				kind, got.fired, ref.fired, got.wm, ref.wm)
		}
	}
}

func TestRemoveTwiceErrors(t *testing.T) {
	src := `(p dup (c ^n <x>) --> (remove 1) (remove 1))`
	sys := newSys(t, src, core.Options{MaxCycles: 5})
	sys.Assert(ops5.NewWME("c", "n", 1))
	if _, err := sys.Run(); err == nil {
		t.Fatal("expected error removing the same CE twice")
	}
}

func TestCallAction(t *testing.T) {
	src := `
(p c (a ^v <x>) --> (call record <x> 7) (remove 1))
`
	sys := newSys(t, src, core.Options{MaxCycles: 5})
	var got []float64
	sys.RegisterFunc("record", func(e *engine.Engine, args []ops5.Value) ([]ops5.Change, error) {
		for _, a := range args {
			got = append(got, a.Num)
		}
		return []ops5.Change{{Kind: ops5.Insert, WME: ops5.NewWME("result", "sum", args[0].Num+args[1].Num)}}, nil
	})
	sys.Assert(ops5.NewWME("a", "v", 35))
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 35 || got[1] != 7 {
		t.Errorf("call args = %v", got)
	}
	res := sys.WM.OfClass("result")
	if len(res) != 1 || res[0].Get("sum").Num != 42 {
		t.Errorf("call result = %v", res)
	}
}

func TestCallUnregisteredErrors(t *testing.T) {
	src := `(p c (a ^v 1) --> (call nosuch))`
	sys := newSys(t, src, core.Options{MaxCycles: 5})
	sys.Assert(ops5.NewWME("a", "v", 1))
	if _, err := sys.Run(); err == nil {
		t.Fatal("expected error for unregistered call")
	}
}

// loopSrc is a program that never quiesces: every firing makes a fresh
// WME that re-satisfies the production.
const loopSrc = `
(p loop
    (c ^n <x>)
  -->
    (make c ^n <x>))
`

func TestRunContextCycleLimit(t *testing.T) {
	sys := newSys(t, loopSrc, core.Options{})
	sys.Assert(ops5.NewWME("c", "n", 1))
	n, err := sys.RunContext(context.Background(), 10)
	if !errors.Is(err, engine.ErrCycleLimit) {
		t.Fatalf("RunContext err = %v, want ErrCycleLimit", err)
	}
	if n != 10 {
		t.Fatalf("RunContext ran %d cycles, want 10", n)
	}
	// Run keeps its historical contract: hitting MaxCycles is not an
	// error.
	sys.MaxCycles = 5
	if n, err := sys.Run(); err != nil || n != 5 {
		t.Fatalf("Run = (%d, %v), want (5, nil)", n, err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	sys := newSys(t, loopSrc, core.Options{})
	sys.Assert(ops5.NewWME("c", "n", 1))
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	sys.OnFire = func(*ops5.Instantiation) {
		fired++
		if fired == 3 {
			cancel()
		}
	}
	n, err := sys.RunContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if n != 3 {
		t.Fatalf("RunContext ran %d cycles before cancel, want 3", n)
	}
}

func TestRunContextQuiescenceIsNil(t *testing.T) {
	src := `(p once (c ^n <x>) --> (remove 1))`
	sys := newSys(t, src, core.Options{})
	sys.Assert(ops5.NewWME("c", "n", 1))
	n, err := sys.RunContext(context.Background(), 50)
	if err != nil || n != 1 {
		t.Fatalf("RunContext = (%d, %v), want (1, nil)", n, err)
	}
}
