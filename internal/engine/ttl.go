package engine

// Event facts and the logical clock. A working-memory element inserted
// with a numeric ^__ttl N field is an event: it expires — is retracted
// by the engine through the ordinary matcher delete path — once the
// engine's logical clock has advanced N ticks past the insert. The
// clock is logical, never wall time: it advances by one per
// recognize-act cycle (Step) and jumps forward to ingest timestamps
// (AdvanceClock). Determinism rule: every expiry is a function of
// (insert-time clock, N, clock advances), all of which the WAL records,
// so crash recovery and cluster replicas reproduce the exact same
// retractions at the exact same ticks without re-deciding anything —
// replay applies logged expiry deletes and never expires on its own.

import (
	"container/heap"
	"sort"

	"repro/internal/ops5"
)

// ttlEntry schedules one expiry: the element with time tag tag is due
// when the logical clock reaches deadline.
type ttlEntry struct {
	deadline int64
	tag      int
}

// ttlHeap is a min-heap of entries ordered by (deadline, tag). The
// secondary tag order makes each expiry batch deterministic, which the
// WAL and the recovery-parity tests rely on.
type ttlHeap []ttlEntry

func (h ttlHeap) Len() int { return len(h) }
func (h ttlHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].tag < h[j].tag
}
func (h ttlHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ttlHeap) Push(x any)   { *h = append(*h, x.(ttlEntry)) }
func (h *ttlHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// ttlIndex tracks pending expiries: a deadline-ordered heap for the
// "what is due" scan plus a tag -> deadline map for O(1) cancellation
// when an element is retracted (by a rule or by expiry) before its
// deadline. Cancellation is lazy — the map entry goes away immediately,
// the heap entry is discarded when it surfaces.
type ttlIndex struct {
	h         ttlHeap
	deadlines map[int]int64
}

func (x *ttlIndex) add(tag int, deadline int64) {
	if x.deadlines == nil {
		x.deadlines = make(map[int]int64)
	}
	x.deadlines[tag] = deadline
	heap.Push(&x.h, ttlEntry{deadline: deadline, tag: tag})
}

func (x *ttlIndex) remove(tag int) {
	delete(x.deadlines, tag)
}

// due pops every entry with deadline <= clock that is still live and
// returns the tags in (deadline, tag) order. Popped tags leave the map.
func (x *ttlIndex) due(clock int64) []int {
	var tags []int
	for len(x.h) > 0 && x.h[0].deadline <= clock {
		e := heap.Pop(&x.h).(ttlEntry)
		if d, ok := x.deadlines[e.tag]; ok && d == e.deadline {
			delete(x.deadlines, e.tag)
			tags = append(tags, e.tag)
		}
	}
	return tags
}

func (x *ttlIndex) pending() int { return len(x.deadlines) }

// Expiries returns the live expiry table — parallel slices of time tag
// and deadline, sorted by tag — for snapshotting. Deadlines are not
// derivable from the ^__ttl field alone (the insert-time clock is
// gone), so snapshots persist the table itself.
func (e *Engine) Expiries() (tags []int, deadlines []int64) {
	if e.ttl.pending() == 0 {
		return nil, nil
	}
	tags = make([]int, 0, e.ttl.pending())
	for tag := range e.ttl.deadlines {
		tags = append(tags, tag)
	}
	sort.Ints(tags)
	deadlines = make([]int64, len(tags))
	for i, tag := range tags {
		deadlines[i] = e.ttl.deadlines[tag]
	}
	return tags, deadlines
}

// RestoreExpiries primes the expiry index from a recovered snapshot's
// table (see Expiries). Like Restore, it must run on a freshly
// constructed engine; the caller also restores Clock and Expired.
func (e *Engine) RestoreExpiries(tags []int, deadlines []int64) {
	for i, tag := range tags {
		e.ttl.add(tag, deadlines[i])
	}
}

// PendingExpiries reports how many live elements await expiry (the
// psmd_ttl_pending gauge).
func (e *Engine) PendingExpiries() int { return e.ttl.pending() }

// trackTTL maintains the expiry index across one committed batch:
// inserts carrying a numeric ^__ttl N schedule an expiry at Clock+N
// (N < 1 clamps to 1 — an event lives at least one tick), deletes
// cancel any pending expiry for their tag. Runs after working memory
// assigned tags, on both the live apply path and WAL replay — replay
// recomputes the same deadlines because the caller restored Clock from
// the record first.
func (e *Engine) trackTTL(changes []ops5.Change) {
	for _, ch := range changes {
		switch ch.Kind {
		case ops5.Delete:
			e.ttl.remove(ch.WME.TimeTag)
		case ops5.Insert:
			if v := ch.WME.GetID(ops5.TTLAttr); v.Kind == ops5.NumValue {
				n := int64(v.Num)
				if n < 1 {
					n = 1
				}
				e.ttl.add(ch.WME.TimeTag, e.Clock+n)
			}
		}
	}
}

// ExpireDue retracts every event whose deadline the clock has reached,
// as one delete batch through the normal apply path — the matcher sees
// ordinary deletes, dependent instantiations leave the conflict set,
// and the change-log sink records the batch so recovery and replicas
// reproduce it. Returns the number of elements retracted.
func (e *Engine) ExpireDue() int {
	tags := e.ttl.due(e.Clock)
	if len(tags) == 0 {
		return 0
	}
	batch := make([]ops5.Change, 0, len(tags))
	for _, tag := range tags {
		if w, ok := e.WM.Get(tag); ok {
			batch = append(batch, ops5.Change{Kind: ops5.Delete, WME: w})
		}
	}
	e.Expired += len(batch)
	e.applyBatch(batch, nil)
	return len(batch)
}

// AdvanceClock moves the logical clock forward to at least t (it never
// goes backward) and retracts whatever came due, returning the number
// of expiries. A pure advance — clock moved, nothing due — still
// reaches the change-log sink as an empty batch: if it were not
// persisted, a crash would rewind the clock and later events would
// compute different deadlines than the uninterrupted run.
func (e *Engine) AdvanceClock(t int64) int {
	if t <= e.Clock {
		return 0
	}
	e.Clock = t
	n := e.ExpireDue()
	if n == 0 && e.Sink != nil {
		e.Sink(nil, nil)
	}
	return n
}
