// Package engine implements the OPS5 recognize-act cycle of §2.1:
// match, conflict-resolution, act. It is parameterised over the matcher
// (serial Rete, parallel Rete, TREAT, or naive), and supports the
// parallel-firing mode used by the paper's "parallel firings" curves in
// Figures 6-1 and 6-2.
package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/conflict"
	"repro/internal/obs"
	"repro/internal/ops5"
	"repro/internal/wm"
)

// ErrCycleLimit is returned by RunContext when the cycle cap is reached
// before the system quiesces or halts. It distinguishes "stopped by
// policy" from "ran to completion", so services hosting untrusted
// programs can degrade gracefully instead of running unbounded.
var ErrCycleLimit = errors.New("engine: cycle limit reached")

// Matcher is the interface every match algorithm implements. Conflict
// set deltas are delivered through callbacks configured at construction
// time, so Apply carries no return value.
type Matcher interface {
	// Apply processes a batch of working-memory changes. Insert WMEs
	// already carry their assigned time tags.
	Apply(changes []ops5.Change)
}

// ChangeLogSink receives every change batch the engine commits —
// external applies, initial loads and recognize-act act phases alike —
// after working memory has assigned time tags and the matcher has run.
// firedKeys holds the conflict-set keys Select marked fired during the
// cycle that produced the batch (nil for external applies); together
// the two streams are a complete log of the session's evolution, which
// is what internal/durable persists for crash recovery.
type ChangeLogSink func(changes []ops5.Change, firedKeys []string)

// Engine drives the recognize-act cycle.
type Engine struct {
	WM      *wm.Memory
	CS      *conflict.Set
	Matcher Matcher
	// Out receives the output of write actions; nil discards it.
	Out io.Writer
	// MaxCycles bounds Run; zero means no bound.
	MaxCycles int
	// ParallelFirings, when > 1, fires up to that many non-conflicting
	// instantiations per cycle and applies all their changes as one
	// batch (application-level parallelism, §8).
	ParallelFirings int

	// Clock is the engine-owned logical clock driving event expiry: it
	// advances by one per recognize-act cycle and jumps to ingest
	// timestamps via AdvanceClock. Mutate it only through those paths —
	// crash recovery restores it directly from the log.
	Clock int64

	// Fired counts production firings.
	Fired int
	// Cycles counts recognize-act cycles executed.
	Cycles int
	// TotalChanges counts WM changes processed.
	TotalChanges int
	// Expired counts elements retracted by TTL expiry (see ttl.go).
	Expired int
	// Halted reports whether a halt action ran.
	Halted bool
	// OnFire, when set, observes each instantiation as it fires.
	OnFire func(*ops5.Instantiation)
	// OnCycle, when set, receives one observability span per
	// recognize-act cycle and per externally applied change batch.
	// Phase timing runs only while the hook is installed, so the
	// uninstrumented hot path pays nothing.
	OnCycle func(obs.CycleSpan)
	// TraceID labels emitted spans with the request driving the engine.
	// RunContext refreshes it from the context's trace ID; services
	// hosting the engine set it directly on paths without a context.
	TraceID string
	// Sink, when set, observes every committed change batch (see
	// ChangeLogSink). The key collection in Step runs only while a sink
	// is installed, so the unlogged hot path pays nothing.
	Sink ChangeLogSink

	// funcs holds host functions invokable with (call name args...).
	funcs map[string]CallFunc

	// ttl schedules expiry of event facts inserted with ^__ttl.
	ttl ttlIndex
}

// CallFunc is a host function invokable from a production's right-hand
// side with (call name args...). It receives the resolved argument
// values and returns WM changes to append to the firing's batch.
type CallFunc func(e *Engine, args []ops5.Value) ([]ops5.Change, error)

// RegisterFunc makes fn available to (call name ...) actions.
func (e *Engine) RegisterFunc(name string, fn CallFunc) {
	if e.funcs == nil {
		e.funcs = make(map[string]CallFunc)
	}
	e.funcs[name] = fn
}

// New assembles an engine. The matcher must already have its conflict
// callbacks wired to cs (see the matcher constructors' With* helpers or
// Hook).
func New(mem *wm.Memory, cs *conflict.Set, m Matcher) *Engine {
	return &Engine{WM: mem, CS: cs, Matcher: m}
}

// Hook wires a matcher's conflict-set callbacks to a conflict set. It
// works for any matcher exposing OnInsert/OnRemove fields via the
// returned setter functions; callers that construct matchers directly
// can assign cs.Insert / cs.Remove themselves.
func Hook(cs *conflict.Set) (onInsert, onRemove func(*ops5.Instantiation)) {
	return cs.Insert, cs.Remove
}

// Load applies a set of initial WMEs as one insert batch (observable
// like any externally applied batch).
func (e *Engine) Load(wmes []*ops5.WME) {
	changes := make([]ops5.Change, len(wmes))
	for i, w := range wmes {
		changes[i] = ops5.Change{Kind: ops5.Insert, WME: w.Clone()}
	}
	e.ApplyChanges(changes)
}

// ApplyChanges commits a batch of WM changes (assigning time tags) and
// runs the matcher — one synchronization step. Custom control loops
// (e.g. the Soar layer's elaboration waves) drive the engine through
// this and EvalRHS instead of Step.
func (e *Engine) ApplyChanges(changes []ops5.Change) {
	if e.OnCycle == nil || len(changes) == 0 {
		e.applyBatch(changes, nil)
		return
	}
	start := time.Now()
	e.applyBatch(changes, nil)
	e.OnCycle(obs.CycleSpan{
		TraceID: e.TraceID, Kind: obs.SpanApply, Cycle: e.Cycles,
		Start: start, Match: time.Since(start), Changes: len(changes),
		WMSize: e.WM.Size(), ConflictSize: e.CS.Len(),
	})
}

// applyBatch commits changes to working memory (assigning tags) and then
// runs the matcher. firedKeys carries the cycle's refraction marks to
// the change-log sink.
func (e *Engine) applyBatch(changes []ops5.Change, firedKeys []string) {
	if len(changes) == 0 && len(firedKeys) == 0 {
		return
	}
	if len(changes) > 0 {
		if _, err := e.WM.Apply(changes); err != nil {
			// Working-memory errors indicate an engine bug (removing a WME
			// twice); they are surfaced loudly rather than silently skipped.
			panic(fmt.Sprintf("engine: %v", err))
		}
		e.trackTTL(changes)
		e.Matcher.Apply(changes)
		e.TotalChanges += len(changes)
	}
	if e.Sink != nil {
		e.Sink(changes, firedKeys)
	}
}

// Step runs one recognize-act cycle: select (up to ParallelFirings)
// instantiations, evaluate their actions, and apply the changes as one
// batch. It reports whether any production fired.
func (e *Engine) Step() (bool, error) {
	if e.Halted {
		return false, nil
	}
	limit := e.ParallelFirings
	if limit < 1 {
		limit = 1
	}
	observe := e.OnCycle != nil
	var spanStart, phase time.Time
	var selectDur, actDur time.Duration
	if observe {
		spanStart = time.Now()
	}
	var batch []ops5.Change
	var firedKeys []string         // refraction marks for the change-log sink
	consumed := make(map[int]bool) // time tags removed this cycle
	fired := 0
	for fired < limit {
		if observe {
			phase = time.Now()
		}
		inst := e.CS.Select()
		if observe {
			selectDur += time.Since(phase)
		}
		if inst == nil {
			break
		}
		if e.Sink != nil {
			// Select marked the instantiation fired whether or not it
			// ends up firing below (a consumed-WME skip still burns its
			// refraction), so the log must record every selection.
			firedKeys = append(firedKeys, inst.Key())
		}
		if usesConsumed(inst, consumed) {
			// Another firing this cycle removed one of its WMEs; in
			// parallel-firing mode such instantiations are skipped.
			continue
		}
		if e.OnFire != nil {
			e.OnFire(inst)
		}
		if observe {
			phase = time.Now()
		}
		changes, err := e.evalRHS(inst, consumed)
		if observe {
			actDur += time.Since(phase)
		}
		if err != nil {
			return false, err
		}
		batch = append(batch, changes...)
		fired++
		e.Fired++
		if e.Halted {
			break
		}
	}
	if fired == 0 {
		return false, nil
	}
	e.Cycles++
	// One recognize-act cycle is one tick of the logical clock; the
	// advance precedes the commit so the batch is logged at the clock it
	// was applied under (TTL deadlines derive from it).
	e.Clock++
	if observe {
		phase = time.Now()
	}
	e.applyBatch(batch, firedKeys)
	if observe {
		e.OnCycle(obs.CycleSpan{
			TraceID: e.TraceID, Kind: obs.SpanCycle, Cycle: e.Cycles,
			Start: spanStart, Match: time.Since(phase), Select: selectDur, Act: actDur,
			Fired: fired, Changes: len(batch),
			WMSize: e.WM.Size(), ConflictSize: e.CS.Len(),
		})
	}
	e.ExpireDue()
	return true, nil
}

// usesConsumed reports whether the instantiation references a WME
// already removed by an earlier firing in the same cycle.
func usesConsumed(inst *ops5.Instantiation, consumed map[int]bool) bool {
	for _, w := range inst.WMEs {
		if w != nil && consumed[w.TimeTag] {
			return true
		}
	}
	return false
}

// Run executes cycles until no production can fire, halt is executed, or
// MaxCycles is reached. It returns the number of cycles executed.
// Reaching MaxCycles is not an error at this level (batch drivers treat
// the cap as a normal stopping point); callers that need to distinguish
// the capped case use RunContext, which reports it as ErrCycleLimit.
func (e *Engine) Run() (int, error) {
	n, err := e.RunContext(context.Background(), e.MaxCycles)
	if errors.Is(err, ErrCycleLimit) {
		err = nil
	}
	return n, err
}

// RunContext executes cycles until no production can fire, halt is
// executed, ctx is done, or maxCycles is reached (zero means no bound;
// the engine's MaxCycles field is ignored). It returns the number of
// cycles executed this call, with ErrCycleLimit when the cap stopped the
// run and ctx.Err() when cancellation or a deadline did. The context is
// checked between cycles, so a single recognize-act cycle is never
// interrupted mid-flight and working memory stays consistent.
func (e *Engine) RunContext(ctx context.Context, maxCycles int) (int, error) {
	if id := obs.TraceID(ctx); id != "" {
		e.TraceID = id
	}
	start := e.Cycles
	for {
		if err := ctx.Err(); err != nil {
			return e.Cycles - start, err
		}
		if maxCycles > 0 && e.Cycles-start >= maxCycles {
			return e.Cycles - start, ErrCycleLimit
		}
		ok, err := e.Step()
		if err != nil {
			return e.Cycles - start, err
		}
		if !ok {
			return e.Cycles - start, nil
		}
	}
}

// Restore primes a freshly constructed engine (empty working memory,
// empty conflict set) with a recovered snapshot: elements re-enter
// working memory with their original time tags, the matcher processes
// them as one insert batch (rebuilding its memories and the conflict
// set), and the recorded refraction marks are re-applied. The change-log
// sink is deliberately not invoked — recovery must not re-log state the
// snapshot already holds. Counter fields (Cycles, Fired, TotalChanges,
// Halted) are the caller's to restore; they are plain exported fields.
func (e *Engine) Restore(wmes []*ops5.WME, nextTag int, firedKeys []string) error {
	if e.WM.Size() != 0 {
		return errors.New("engine: restore into non-empty working memory")
	}
	if err := e.WM.Restore(wmes, nextTag); err != nil {
		return err
	}
	if len(wmes) > 0 {
		changes := make([]ops5.Change, len(wmes))
		for i, w := range wmes {
			changes[i] = ops5.Change{Kind: ops5.Insert, WME: w}
		}
		e.Matcher.Apply(changes)
	}
	for _, k := range firedKeys {
		e.CS.MarkFired(k)
	}
	return nil
}

// Replay re-applies one logged change batch during crash recovery:
// inserts are committed through the normal apply path (working memory
// re-assigns the same tags it assigned originally — assignment is
// deterministic — and the recorded tags cross-check that), deletes are
// resolved to the live elements by tag (matchers remove by pointer
// identity), and the batch's refraction marks are re-applied after the
// matcher runs. Unlike applyBatch, corruption surfaces as an error
// rather than a panic, so recovery can stop cleanly at a bad record.
func (e *Engine) Replay(changes []ops5.Change, firedKeys []string) error {
	resolved := make([]ops5.Change, len(changes))
	nextTag := e.WM.NextTag()
	for i, ch := range changes {
		switch ch.Kind {
		case ops5.Insert:
			if ch.WME.TimeTag != nextTag {
				return fmt.Errorf("engine: replayed insert tag %d, working memory would assign %d",
					ch.WME.TimeTag, nextTag)
			}
			nextTag++
			resolved[i] = ch
		case ops5.Delete:
			live, ok := e.WM.Get(ch.WME.TimeTag)
			if !ok {
				return fmt.Errorf("engine: replayed delete of absent tag %d", ch.WME.TimeTag)
			}
			resolved[i] = ops5.Change{Kind: ops5.Delete, WME: live}
		default:
			return fmt.Errorf("engine: replayed unknown change kind %d", ch.Kind)
		}
	}
	if len(resolved) > 0 {
		if _, err := e.WM.Apply(resolved); err != nil {
			return fmt.Errorf("engine: replay: %w", err)
		}
		// Rebuild the expiry index as the log replays. The caller set
		// Clock from the record before this call, so deadlines recompute
		// to their original values; logged expiry batches replay as the
		// ordinary deletes above, so replay itself never expires.
		e.trackTTL(resolved)
		e.Matcher.Apply(resolved)
		e.TotalChanges += len(resolved)
	}
	for _, k := range firedKeys {
		e.CS.MarkFired(k)
	}
	return nil
}

// EvalRHS evaluates a production's actions against an instantiation and
// returns the resulting WM changes without applying them. Remove/modify
// targets are recorded in consumed (time tag -> removed), letting the
// caller batch several firings while detecting conflicts. The engine's
// Fired counter is incremented and OnFire invoked.
func (e *Engine) EvalRHS(inst *ops5.Instantiation, consumed map[int]bool) ([]ops5.Change, error) {
	if e.OnFire != nil {
		e.OnFire(inst)
	}
	e.Fired++
	return e.evalRHS(inst, consumed)
}

// evalRHS evaluates a production's actions against an instantiation and
// returns the resulting WM changes. Remove/modify targets are recorded
// in consumed.
func (e *Engine) evalRHS(inst *ops5.Instantiation, consumed map[int]bool) ([]ops5.Change, error) {
	var changes []ops5.Change
	// Only a bind action mutates the binding map; without one, the
	// instantiation's cached bindings are used directly, saving a map
	// clone per firing.
	b := inst.EvalBindings()
	for _, a := range inst.Production.RHS {
		if a.Kind == ops5.ActBind {
			b = b.Clone()
			break
		}
	}
	var resolve func(t ops5.RHSTerm) (ops5.Value, error)
	resolve = func(t ops5.RHSTerm) (ops5.Value, error) {
		switch {
		case t.IsVar:
			v, ok := b[t.Var]
			if !ok {
				return ops5.Value{}, fmt.Errorf("engine: production %s: unbound variable <%s> at fire time",
					inst.Production.Name, t.Var)
			}
			return v, nil
		case t.Compute != nil:
			return t.Compute.Eval(resolve)
		case t.Crlf:
			return ops5.Value{}, fmt.Errorf("engine: production %s: (crlf) is only valid in write",
				inst.Production.Name)
		default:
			return t.Val, nil
		}
	}
	ceWME := func(a *ops5.Action) (*ops5.WME, error) {
		w := inst.WMEs[a.CE-1]
		if w == nil {
			return nil, fmt.Errorf("engine: production %s: action %s references negated CE",
				inst.Production.Name, a)
		}
		if consumed[w.TimeTag] {
			return nil, fmt.Errorf("engine: production %s: CE %d element %d already removed this cycle",
				inst.Production.Name, a.CE, w.TimeTag)
		}
		return w, nil
	}
	for _, a := range inst.Production.RHS {
		switch a.Kind {
		case ops5.ActMake:
			fields := make([]ops5.Field, 0, len(a.Pairs))
			for _, p := range a.Pairs {
				v, err := resolve(p.Term)
				if err != nil {
					return nil, err
				}
				fields = append(fields, ops5.Field{Attr: p.AttrID, Val: v})
			}
			nw := ops5.NewFact(a.ClassID, fields)
			changes = append(changes, ops5.Change{Kind: ops5.Insert, WME: nw})
		case ops5.ActModify:
			old, err := ceWME(a)
			if err != nil {
				return nil, err
			}
			updates := make([]ops5.Field, 0, len(a.Pairs))
			for _, p := range a.Pairs {
				v, err := resolve(p.Term)
				if err != nil {
					return nil, err
				}
				updates = append(updates, ops5.Field{Attr: p.AttrID, Val: v})
			}
			nw := old.WithUpdates(updates)
			consumed[old.TimeTag] = true
			changes = append(changes,
				ops5.Change{Kind: ops5.Delete, WME: old},
				ops5.Change{Kind: ops5.Insert, WME: nw})
		case ops5.ActRemove:
			old, err := ceWME(a)
			if err != nil {
				return nil, err
			}
			consumed[old.TimeTag] = true
			changes = append(changes, ops5.Change{Kind: ops5.Delete, WME: old})
		case ops5.ActWrite:
			if e.Out != nil {
				var line strings.Builder
				for _, t := range a.Args {
					if t.Crlf {
						line.WriteString("\n")
						continue
					}
					v, err := resolve(t)
					if err != nil {
						return nil, err
					}
					if n := line.Len(); n > 0 && line.String()[n-1] != '\n' {
						line.WriteString(" ")
					}
					line.WriteString(v.String())
				}
				fmt.Fprintln(e.Out, line.String())
			}
		case ops5.ActHalt:
			e.Halted = true
		case ops5.ActBind:
			v, err := resolve(a.Term)
			if err != nil {
				return nil, err
			}
			b[a.Var] = v
		case ops5.ActCall:
			fn, ok := e.funcs[a.Fn]
			if !ok {
				return nil, fmt.Errorf("engine: production %s calls unregistered function %q",
					inst.Production.Name, a.Fn)
			}
			args := make([]ops5.Value, len(a.Args))
			for i, t := range a.Args {
				v, err := resolve(t)
				if err != nil {
					return nil, err
				}
				args[i] = v
			}
			extra, err := fn(e, args)
			if err != nil {
				return nil, fmt.Errorf("engine: production %s: call %s: %w",
					inst.Production.Name, a.Fn, err)
			}
			changes = append(changes, extra...)
		}
	}
	return changes, nil
}
