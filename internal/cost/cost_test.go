package cost_test

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/rete"
	"repro/internal/workload"
)

func TestTaskGranularity(t *testing.T) {
	// The paper's fine-grain tasks run 50-100 instructions (§4); a
	// typical two-input activation testing a handful of tokens must
	// land in or near that band.
	m := cost.Default()
	ev := rete.ActivationEvent{Kind: rete.KindJoinRight, TokensTested: 2, PairsEmitted: 1}
	c := m.Cost(ev)
	if c < 50 || c > 150 {
		t.Errorf("join activation cost = %.0f, want ~50-100 instructions", c)
	}
}

func TestCostMonotoneInWork(t *testing.T) {
	m := cost.Default()
	small := m.Cost(rete.ActivationEvent{Kind: rete.KindJoinLeft, TokensTested: 1})
	big := m.Cost(rete.ActivationEvent{Kind: rete.KindJoinLeft, TokensTested: 50, PairsEmitted: 10})
	if big <= small {
		t.Errorf("cost not monotone: %f <= %f", big, small)
	}
}

func TestRootCostScalesWithTests(t *testing.T) {
	m := cost.Default()
	a := m.Cost(rete.ActivationEvent{Kind: rete.KindRoot, TestsRun: 10})
	b := m.Cost(rete.ActivationEvent{Kind: rete.KindRoot, TestsRun: 20})
	if b != 2*a {
		t.Errorf("root cost not linear in tests: %f vs %f", a, b)
	}
}

func TestCalibrationAgainstC1(t *testing.T) {
	// A real program's measured serial cost per WM change should be
	// the same order of magnitude as the paper's c1 = 1800.
	wmes, err := workload.EightPuzzleWM([9]int{1, 2, 3, 4, 0, 5, 6, 7, 8}, 30)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := workload.Capture("ep", workload.EightPuzzle, wmes,
		workload.RunConfig{MaxCycles: 200})
	if err != nil {
		t.Fatal(err)
	}
	perChange := rec.Trace.CostPerChange()
	if perChange < 400 || perChange > 8000 {
		t.Errorf("cost per change = %.0f instructions, want same order as c1=1800", perChange)
	}
}
