// Package cost defines the machine-instruction cost model used to turn
// Rete node activations into simulated execution time on the PSM.
//
// The constants come from the paper and from Gupta's measurements cited
// in §3.1: a working-memory change costs on the order of c1 ≈ 1800
// machine instructions through a serial Rete matcher, the temporary
// state of a non-state-saving matcher costs c3 ≈ 1100 instructions per
// working-memory element, and individual node activations — the unit of
// parallel work — run 50-100 instructions each (§4).
package cost

import "repro/internal/rete"

// Model assigns instruction costs to node activations.
type Model struct {
	// PerConstTest is the cost of one constant test in the alpha
	// network (a load, a compare, and a branch).
	PerConstTest float64
	// AlphaUpdate is the cost of inserting into or deleting from an
	// alpha memory (hashing plus list update).
	AlphaUpdate float64
	// JoinBase is the fixed cost of a two-input node activation.
	JoinBase float64
	// PerTokenTest is the cost of testing one opposite-memory entry for
	// consistent variable bindings.
	PerTokenTest float64
	// PerPairEmit is the cost of building and forwarding one token.
	PerPairEmit float64
	// HashProbe is the fixed cost of computing a join key and probing
	// the opposite memory's hash bucket (indexed activations only; the
	// bucket's candidates are then charged at PerTokenTest each).
	HashProbe float64
	// TermOp is the cost of a conflict-set insertion or removal.
	TermOp float64

	// C1 is the paper's measured serial-Rete cost per WM change,
	// used by the §3.1 analytic model.
	C1 float64
	// C3 is the paper's measured non-state-saving cost per WM element.
	C3 float64
}

// Default returns the paper-calibrated model.
func Default() Model {
	return Model{
		PerConstTest: 4,
		AlphaUpdate:  30,
		JoinBase:     45,
		PerTokenTest: 14,
		PerPairEmit:  35,
		HashProbe:    20,
		TermOp:       60,
		C1:           1800,
		C3:           1100,
	}
}

// Cost returns the instruction cost of one activation event.
func (m Model) Cost(ev rete.ActivationEvent) float64 {
	switch ev.Kind {
	case rete.KindRoot:
		return float64(ev.TestsRun) * m.PerConstTest
	case rete.KindAlpha:
		return m.AlphaUpdate
	case rete.KindJoinLeft, rete.KindJoinRight, rete.KindNegLeft, rete.KindNegRight:
		c := m.JoinBase +
			float64(ev.TokensTested)*m.PerTokenTest +
			float64(ev.PairsEmitted)*m.PerPairEmit
		if ev.Indexed {
			c += m.HashProbe
		}
		return c
	case rete.KindTerm:
		return m.TermOp
	default:
		return m.JoinBase
	}
}
