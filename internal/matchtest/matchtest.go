// Package matchtest provides randomized program generation and a
// cross-checking harness used to verify that every matcher in this
// repository (serial Rete, parallel Rete, TREAT, naive) computes
// identical conflict sets. It is a test-support package.
package matchtest

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ops5"
)

// GenParams controls random program generation.
type GenParams struct {
	Productions int
	MaxCEs      int     // per production, >= 1
	NegProb     float64 // probability a non-first CE is negated
	Classes     int
	Attrs       int
	Values      int // numeric constants 0..Values-1
	Vars        int // variable pool size
	VarProb     float64
	DisjProb    float64
	PredProb    float64 // probability a bound-variable reuse is a predicate test
}

// DefaultGenParams returns parameters that exercise most language
// features while keeping brute-force matching tractable.
func DefaultGenParams() GenParams {
	return GenParams{
		Productions: 8,
		MaxCEs:      3,
		NegProb:     0.25,
		Classes:     4,
		Attrs:       3,
		Values:      4,
		Vars:        3,
		VarProb:     0.4,
		DisjProb:    0.1,
		PredProb:    0.3,
	}
}

// IndexStressGenParams returns parameters tuned to exercise the
// hash-indexed join memories: deep productions with many equality
// variable joins (the indexed path), frequent predicate tests on bound
// variables (residual tests the index must not skip), and enough
// negation to cover indexed not-nodes, over a small value pool so
// buckets grow multi-element.
func IndexStressGenParams() GenParams {
	p := DefaultGenParams()
	p.MaxCEs = 4
	p.NegProb = 0.3
	p.VarProb = 0.65
	p.PredProb = 0.35
	p.Vars = 4
	p.Values = 5
	return p
}

func class(i int) string { return fmt.Sprintf("c%d", i) }
func attr(i int) string  { return fmt.Sprintf("a%d", i) }
func varName(i int) string {
	return fmt.Sprintf("v%d", i)
}

// RandomProgram generates a valid random production set.
func RandomProgram(rng *rand.Rand, p GenParams) []*ops5.Production {
	prods := make([]*ops5.Production, 0, p.Productions)
	for i := 0; i < p.Productions; i++ {
		prod := randomProduction(rng, p, fmt.Sprintf("p%d", i))
		prod.Order = i
		prods = append(prods, prod)
	}
	return prods
}

func randomProduction(rng *rand.Rand, p GenParams, name string) *ops5.Production {
	nCE := 1 + rng.Intn(p.MaxCEs)
	prod := &ops5.Production{Name: name}
	bound := map[string]bool{} // vars bound by earlier positive CEs
	for ce := 0; ce < nCE; ce++ {
		negated := ce > 0 && rng.Float64() < p.NegProb
		el := &ops5.CondElement{Negated: negated, Class: class(rng.Intn(p.Classes))}
		nTests := 1 + rng.Intn(p.Attrs)
		usedAttr := map[int]bool{}
		localBound := map[string]bool{}
		for t := 0; t < nTests; t++ {
			ai := rng.Intn(p.Attrs)
			if usedAttr[ai] {
				continue
			}
			usedAttr[ai] = true
			at := ops5.AttrTest{Attr: attr(ai)}
			switch {
			case rng.Float64() < p.VarProb:
				v := varName(rng.Intn(p.Vars))
				if bound[v] || localBound[v] {
					if rng.Float64() < p.PredProb {
						preds := []ops5.Predicate{ops5.PredNe, ops5.PredLt, ops5.PredGt, ops5.PredLe, ops5.PredGe}
						at.Terms = []ops5.Term{{Kind: ops5.TermVar, Pred: preds[rng.Intn(len(preds))], Var: v}}
					} else {
						at.Terms = []ops5.Term{{Kind: ops5.TermVar, Pred: ops5.PredEq, Var: v}}
					}
				} else {
					at.Terms = []ops5.Term{{Kind: ops5.TermVar, Pred: ops5.PredEq, Var: v}}
					localBound[v] = true
				}
			case rng.Float64() < p.DisjProb:
				n := 2 + rng.Intn(2)
				var vals []ops5.Value
				for k := 0; k < n; k++ {
					vals = append(vals, ops5.Num(float64(rng.Intn(p.Values))))
				}
				at.Terms = []ops5.Term{{Kind: ops5.TermDisj, Disj: vals}}
			default:
				pred := ops5.PredEq
				if rng.Float64() < 0.3 {
					preds := []ops5.Predicate{ops5.PredNe, ops5.PredLt, ops5.PredGt}
					pred = preds[rng.Intn(len(preds))]
				}
				at.Terms = []ops5.Term{{Kind: ops5.TermConst, Pred: pred, Val: ops5.Num(float64(rng.Intn(p.Values)))}}
			}
			el.Tests = append(el.Tests, at)
		}
		if !negated {
			for v := range localBound {
				bound[v] = true
			}
		}
		prod.LHS = append(prod.LHS, el)
	}
	prod.RHS = []*ops5.Action{{
		Kind: ops5.ActMake, Class: "out",
		Pairs: []ops5.RHSPair{{Attr: "r", Term: ops5.RHSTerm{Val: ops5.Num(1)}}},
	}}
	if err := prod.Validate(); err != nil {
		panic(fmt.Sprintf("matchtest: generated invalid production: %v\n%s", err, prod))
	}
	return prod
}

// RandomWME generates a WME over the same vocabulary (no time tag).
func RandomWME(rng *rand.Rand, p GenParams) *ops5.WME {
	n := 1 + rng.Intn(p.Attrs)
	pairs := make([]any, 0, 2*n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, attr(rng.Intn(p.Attrs)), ops5.Num(float64(rng.Intn(p.Values))))
	}
	return ops5.NewWME(class(rng.Intn(p.Classes)), pairs...)
}

// Tracker is a conflict-set recorder fed by matcher callbacks. It keeps
// counted multiset semantics so out-of-order parallel deltas settle.
type Tracker struct {
	counts map[string]int
	insts  map[string]*ops5.Instantiation
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{counts: map[string]int{}, insts: map[string]*ops5.Instantiation{}}
}

// Insert records a conflict-set insertion.
func (t *Tracker) Insert(in *ops5.Instantiation) {
	k := in.Key()
	t.counts[k]++
	t.insts[k] = in
}

// Remove records a conflict-set removal.
func (t *Tracker) Remove(in *ops5.Instantiation) {
	k := in.Key()
	t.counts[k]--
	if t.counts[k] == 0 {
		delete(t.counts, k)
	}
}

// Keys returns the sorted keys of present instantiations. It panics on
// negative counts (more removals than insertions), which indicates a
// matcher bug.
func (t *Tracker) Keys() []string {
	keys := make([]string, 0, len(t.counts))
	for k, c := range t.counts {
		if c < 0 {
			panic(fmt.Sprintf("matchtest: negative count %d for %s", c, k))
		}
		if c > 1 {
			panic(fmt.Sprintf("matchtest: duplicate instantiation %s (count %d)", k, c))
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Script is a reproducible sequence of WM change batches.
type Script struct {
	Batches [][]ops5.Change
}

// RandomScript builds a change script: each batch contains 1..maxBatch
// changes; deletions pick uniformly among live elements. Time tags are
// assigned here so every matcher sees identical batches.
func RandomScript(rng *rand.Rand, p GenParams, batches, maxBatch int) *Script {
	s := &Script{}
	nextTag := 1
	live := map[int]*ops5.WME{}
	for b := 0; b < batches; b++ {
		n := 1 + rng.Intn(maxBatch)
		var batch []ops5.Change
		for i := 0; i < n; i++ {
			if len(live) > 0 && rng.Float64() < 0.35 {
				tags := make([]int, 0, len(live))
				for tag := range live {
					tags = append(tags, tag)
				}
				sort.Ints(tags)
				tag := tags[rng.Intn(len(tags))]
				batch = append(batch, ops5.Change{Kind: ops5.Delete, WME: live[tag]})
				delete(live, tag)
			} else {
				w := RandomWME(rng, p)
				w.TimeTag = nextTag
				nextTag++
				live[w.TimeTag] = w
				batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: w})
			}
		}
		s.Batches = append(s.Batches, batch)
	}
	return s
}

// ApplyMatcher is the minimal surface shared by every incremental
// matcher in this repository: apply one batch of WM changes and report
// conflict-set deltas through previously wired callbacks.
type ApplyMatcher interface {
	Apply(changes []ops5.Change)
}

// ReplayKeys drives a matcher through a script and snapshots the
// tracker's sorted conflict-set keys after every batch. The matcher's
// insert/remove callbacks must already be wired to tr. Two matchers
// replaying the same script must produce identical snapshot sequences —
// the differential property the cross-matcher tests assert.
func ReplayKeys(m ApplyMatcher, tr *Tracker, s *Script) [][]string {
	out := make([][]string, 0, len(s.Batches))
	for _, batch := range s.Batches {
		m.Apply(batch)
		out = append(out, tr.Keys())
	}
	return out
}

// BruteForceKeys computes the reference conflict set for a WM snapshot.
func BruteForceKeys(prods []*ops5.Production, wmes []*ops5.WME) []string {
	var keys []string
	for _, p := range prods {
		for _, inst := range ops5.SatisfyBruteForce(p, wmes) {
			keys = append(keys, inst.Key())
		}
	}
	sort.Strings(keys)
	return keys
}

// Diff formats the difference between two sorted key sets, for test
// failure messages.
func Diff(want, got []string) string {
	ws, gs := map[string]bool{}, map[string]bool{}
	for _, k := range want {
		ws[k] = true
	}
	for _, k := range got {
		gs[k] = true
	}
	out := ""
	for _, k := range want {
		if !gs[k] {
			out += fmt.Sprintf("  missing: %s\n", k)
		}
	}
	for _, k := range got {
		if !ws[k] {
			out += fmt.Sprintf("  extra:   %s\n", k)
		}
	}
	return out
}
