package matchtest_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/prete"
	"repro/internal/rete"
)

// replayRete runs a script through the serial Rete network and returns
// the per-batch conflict-set key snapshots.
func replayRete(t *testing.T, prods []*ops5.Production, script *matchtest.Script) [][]string {
	t.Helper()
	net, err := rete.Compile(prods)
	if err != nil {
		t.Fatalf("rete compile: %v", err)
	}
	tr := matchtest.NewTracker()
	net.OnInsert = tr.Insert
	net.OnRemove = tr.Remove
	return matchtest.ReplayKeys(net, tr, script)
}

// replayPrete runs the same script through the parallel matcher.
func replayPrete(t *testing.T, prods []*ops5.Production, script *matchtest.Script, cfg prete.Config) [][]string {
	t.Helper()
	m, err := prete.NewWithConfig(prods, cfg)
	if err != nil {
		t.Fatalf("prete new: %v", err)
	}
	t.Cleanup(m.Close)
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove
	return matchtest.ReplayKeys(m, tr, script)
}

// TestDifferentialPreteVsRete is the parallel-vs-serial property test:
// random change sequences replayed through both matchers must yield
// identical conflict sets after every batch. Unlike the brute-force
// cross-checks, the serial Rete is the oracle here, so the programs and
// scripts can be much larger (brute force is exponential in CE count).
func TestDifferentialPreteVsRete(t *testing.T) {
	cases := []struct {
		name   string
		params matchtest.GenParams
		cfg    prete.Config
	}{
		{"default-w4", matchtest.DefaultGenParams(), prete.Config{Workers: 4}},
		{"index-stress-w8", matchtest.IndexStressGenParams(), prete.Config{Workers: 8}},
		{"no-steal-w8", matchtest.IndexStressGenParams(), prete.Config{Workers: 8, NoSteal: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			params := tc.params
			params.Productions = 16
			for seed := int64(500); seed < 508; seed++ {
				rng := rand.New(rand.NewSource(seed))
				prods := matchtest.RandomProgram(rng, params)
				script := matchtest.RandomScript(rng, params, 40, 12)
				want := replayRete(t, prods, script)
				got := replayPrete(t, prods, script, tc.cfg)
				for b := range want {
					if d := matchtest.Diff(want[b], got[b]); d != "" {
						t.Fatalf("seed %d batch %d: prete diverges from rete:\n%s", seed, b, d)
					}
				}
			}
		})
	}
}

// FuzzDifferentialPreteVsRete explores the same property from fuzzed
// seeds and shape parameters: any (program, script) pair the generators
// can produce must match between the serial and parallel matchers.
func FuzzDifferentialPreteVsRete(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(2), uint8(8))
	f.Add(int64(42), uint8(4), uint8(3), uint8(1))
	f.Add(int64(7), uint8(2), uint8(4), uint8(16))
	f.Fuzz(func(t *testing.T, seed int64, maxCEs, values, workers uint8) {
		params := matchtest.DefaultGenParams()
		params.MaxCEs = 1 + int(maxCEs)%4
		params.Values = 2 + int(values)%5
		params.NegProb = 0.3
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 15, 8)
		want := replayRete(t, prods, script)
		got := replayPrete(t, prods, script, prete.Config{Workers: 1 + int(workers)%16})
		for b := range want {
			if d := matchtest.Diff(want[b], got[b]); d != "" {
				t.Fatalf("seed %d batch %d: prete diverges from rete:\n%s", seed, b, d)
			}
		}
	})
}

// skewedProgram returns a program whose activations concentrate on one
// join (a goal joined against every block), so one worker's deque fills
// while others idle — the load-imbalance shape work stealing exists to
// fix.
func skewedProgram(t testing.TB) []*ops5.Production {
	t.Helper()
	src := []string{`
(p hot-pair
    (goal ^type pick ^color <c>)
    (block ^id <i> ^color <c>)
    (block ^id <j> ^color <c>)
  -->
    (make out ^r 1))`, `
(p cold
    (marker ^id <m>)
  -->
    (make out ^r 2))`,
	}
	var prods []*ops5.Production
	for i, s := range src {
		p, err := ops5.ParseProduction(s)
		if err != nil {
			t.Fatalf("parse production %d: %v", i, err)
		}
		p.Order = i
		prods = append(prods, p)
	}
	return prods
}

// skewedBatch builds one large insert batch for skewedProgram: a goal,
// many same-colored blocks (quadratic hot-join work) and a few markers.
func skewedBatch(blocks int) []ops5.Change {
	var batch []ops5.Change
	tag := 1
	add := func(w *ops5.WME) {
		w.TimeTag = tag
		tag++
		batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: w})
	}
	add(ops5.NewWME("goal", "type", "pick", "color", "red"))
	for i := 0; i < blocks; i++ {
		add(ops5.NewWME("block", "id", i, "color", "red"))
	}
	for i := 0; i < 4; i++ {
		add(ops5.NewWME("marker", "id", i))
	}
	return batch
}

// TestStealsUnderSkewedWorkload asserts the scheduler counters surface
// real stealing: a skewed batch on many workers must record steals, and
// the per-worker executed counts must sum to the task total.
func TestStealsUnderSkewedWorkload(t *testing.T) {
	prods := skewedProgram(t)
	m, err := prete.NewWithConfig(prods, prete.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove
	m.Apply(skewedBatch(64))

	st := m.Stats()
	if st.Tasks == 0 {
		t.Fatal("no tasks executed")
	}
	if st.Steals == 0 {
		t.Errorf("skewed workload on %d workers recorded no steals (tasks=%d)", m.Workers(), st.Tasks)
	}
	if len(st.PerWorker) != 8 {
		t.Fatalf("PerWorker has %d lanes, want 8", len(st.PerWorker))
	}
	var executed, stolen, parked int64
	for _, ws := range st.PerWorker {
		executed += ws.Executed
		stolen += ws.Stolen
		parked += ws.Parked
	}
	if executed != st.Tasks {
		t.Errorf("per-worker executed sums to %d, want Tasks=%d", executed, st.Tasks)
	}
	if stolen != st.Steals {
		t.Errorf("per-worker stolen sums to %d, want Steals=%d", stolen, st.Steals)
	}
	if parked != st.Parks {
		t.Errorf("per-worker parked sums to %d, want Parks=%d", parked, st.Parks)
	}

	// The conflict set must be right regardless of who ran what:
	// hot-pair matches every ordered red (i, j) pair incl. i == j, and
	// cold matches each marker.
	if got, want := len(tr.Keys()), 64*64+4; got != want {
		t.Errorf("conflict set size = %d, want %d", got, want)
	}
}

// TestNoStealDrainsViaOverflow pins the NoSteal mode: same result, no
// steals recorded.
func TestNoStealDrainsViaOverflow(t *testing.T) {
	prods := skewedProgram(t)
	m, err := prete.NewWithConfig(prods, prete.Config{Workers: 8, NoSteal: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove
	m.Apply(skewedBatch(32))
	st := m.Stats()
	if st.Steals != 0 {
		t.Errorf("NoSteal matcher recorded %d steals", st.Steals)
	}
	if got, want := len(tr.Keys()), 32*32+4; got != want {
		t.Errorf("conflict set size = %d, want %d", got, want)
	}
}

// Example-shaped sanity check that the differential harness catches
// divergence (guards the test itself): perturbing one snapshot key must
// produce a non-empty diff.
func TestDifferentialHarnessDetectsDivergence(t *testing.T) {
	a := []string{"p0[1,2]", "p1[3]"}
	b := []string{"p0[1,2]", fmt.Sprintf("p1[%d]", 4)}
	if matchtest.Diff(a, b) == "" {
		t.Fatal("diff failed to flag divergent snapshots")
	}
}
