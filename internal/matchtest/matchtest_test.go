package matchtest_test

import (
	"math/rand"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
)

func TestGeneratedProgramsParseRoundTrip(t *testing.T) {
	// Every generated production must render to valid OPS5 source that
	// reparses to the same rendering (parser/printer round trip on a
	// wide random corpus).
	params := matchtest.DefaultGenParams()
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, p := range matchtest.RandomProgram(rng, params) {
			src := p.String()
			back, err := ops5.ParseProduction(src)
			if err != nil {
				t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, src)
			}
			if back.String() != src {
				t.Errorf("seed %d: round trip mismatch:\n%s\n---\n%s", seed, src, back.String())
			}
		}
	}
}

func TestTrackerPanicsOnDoubleInsert(t *testing.T) {
	tr := matchtest.NewTracker()
	p := &ops5.Production{Name: "p", LHS: []*ops5.CondElement{{Class: "c"}}}
	in := &ops5.Instantiation{Production: p, WMEs: []*ops5.WME{{TimeTag: 1}}}
	tr.Insert(in)
	tr.Insert(in)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate instantiation count")
		}
	}()
	tr.Keys()
}

func TestScriptDeletesOnlyLiveElements(t *testing.T) {
	params := matchtest.DefaultGenParams()
	rng := rand.New(rand.NewSource(9))
	s := matchtest.RandomScript(rng, params, 50, 5)
	live := map[int]bool{}
	for _, batch := range s.Batches {
		for _, ch := range batch {
			switch ch.Kind {
			case ops5.Insert:
				if live[ch.WME.TimeTag] {
					t.Fatalf("tag %d inserted twice", ch.WME.TimeTag)
				}
				live[ch.WME.TimeTag] = true
			case ops5.Delete:
				if !live[ch.WME.TimeTag] {
					t.Fatalf("tag %d deleted while not live", ch.WME.TimeTag)
				}
				delete(live, ch.WME.TimeTag)
			}
		}
	}
}

func TestDiffFormatting(t *testing.T) {
	d := matchtest.Diff([]string{"a", "b"}, []string{"b", "c"})
	if d == "" {
		t.Fatal("expected nonempty diff")
	}
	if matchtest.Diff([]string{"x"}, []string{"x"}) != "" {
		t.Error("identical sets should produce empty diff")
	}
}
