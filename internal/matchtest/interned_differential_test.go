package matchtest_test

// Differential tests for the interned fact representation: the Rete
// matcher compares interned symbol IDs (integer compares), while
// ops5.SatisfyBruteForce evaluates the same patterns by value — the
// string-keyed semantics that predate interning. Any program over any
// symbol vocabulary must produce identical conflict sets through both,
// especially for symbols chosen to shake out interning bugs: the empty
// string, whitespace, names that look numeric ("1" the symbol versus 1
// the number), case variants, unicode, and near-identical long names.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/rete"
)

// trickySymbols is the adversarial vocabulary. It deliberately reuses
// the generator's class/attribute names as values (a0, c0) so class,
// attribute and value namespaces share interned IDs.
var trickySymbols = []string{
	"",
	" ",
	"1",
	"1.0",
	"01",
	"-3",
	"nil",
	"goal",
	"GOAL",
	"λ→μ",
	"a b",
	"a0",
	"c0",
	"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxA",
	"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxB",
}

// tClass/tAttr mirror the generator's c%d/a%d vocabulary.
func tClass(i int) string { return fmt.Sprintf("c%d", i) }
func tAttr(i int) string  { return fmt.Sprintf("a%d", i) }

// trickyValue picks a value: usually a tricky symbol, sometimes a
// number whose rendering collides with a symbol name ("1", "1.0", "-3")
// so symbol-versus-number confusion would show up as a diff.
func trickyValue(rng *rand.Rand, pool []string) ops5.Value {
	if rng.Intn(4) == 0 {
		nums := []float64{1, 1.0, -3, 0}
		return ops5.Num(nums[rng.Intn(len(nums))])
	}
	return ops5.Sym(pool[rng.Intn(len(pool))])
}

// trickyProgram builds productions whose constant tests, disjunctions
// and variable joins range over the tricky vocabulary. Classes and
// attributes come from the generator's usual c%d/a%d names so programs
// stay small and joins actually happen; the values are the point.
func trickyProgram(rng *rand.Rand, pool []string, nProds int) []*ops5.Production {
	classes, attrs := 3, 3
	prods := make([]*ops5.Production, 0, nProds)
	for i := 0; i < nProds; i++ {
		prod := &ops5.Production{Name: "p" + string(rune('0'+i))}
		nCE := 1 + rng.Intn(3)
		bound := false
		for ce := 0; ce < nCE; ce++ {
			el := &ops5.CondElement{
				Negated: ce > 0 && rng.Intn(4) == 0,
				Class:   tClass(rng.Intn(classes)),
			}
			nTests := 1 + rng.Intn(attrs)
			for t := 0; t < nTests; t++ {
				at := ops5.AttrTest{Attr: tAttr(rng.Intn(attrs))}
				switch {
				case rng.Intn(3) == 0: // variable: binds first, joins after
					at.Terms = []ops5.Term{{Kind: ops5.TermVar, Pred: ops5.PredEq, Var: "x"}}
					if !el.Negated {
						bound = true
					}
				case rng.Intn(3) == 0: // disjunction over tricky values
					at.Terms = []ops5.Term{{Kind: ops5.TermDisj, Disj: []ops5.Value{
						trickyValue(rng, pool), trickyValue(rng, pool),
					}}}
				default: // constant eq/ne on a tricky value
					pred := ops5.PredEq
					if rng.Intn(3) == 0 {
						pred = ops5.PredNe
					}
					at.Terms = []ops5.Term{{Kind: ops5.TermConst, Pred: pred, Val: trickyValue(rng, pool)}}
				}
				el.Tests = append(el.Tests, at)
			}
			prod.LHS = append(prod.LHS, el)
		}
		_ = bound
		prod.RHS = []*ops5.Action{{
			Kind: ops5.ActMake, Class: "out",
			Pairs: []ops5.RHSPair{{Attr: "r", Term: ops5.RHSTerm{Val: ops5.Num(1)}}},
		}}
		if err := prod.Validate(); err != nil {
			continue // a shape the AST rejects (e.g. negated-only vars); skip
		}
		prod.Order = len(prods)
		prods = append(prods, prod)
	}
	return prods
}

// trickyWME builds an element over the same vocabulary.
func trickyWME(rng *rand.Rand, pool []string) *ops5.WME {
	n := 1 + rng.Intn(3)
	pairs := make([]any, 0, 2*n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, tAttr(rng.Intn(3)), trickyValue(rng, pool))
	}
	return ops5.NewWME(tClass(rng.Intn(3)), pairs...)
}

// runInternedDifferential replays an insert/delete script through the
// interned Rete and cross-checks the conflict set against the
// brute-force oracle after every batch.
func runInternedDifferential(t *testing.T, rng *rand.Rand, pool []string, batches int) {
	t.Helper()
	prods := trickyProgram(rng, pool, 4)
	if len(prods) == 0 {
		return
	}
	net, err := rete.Compile(prods)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr := matchtest.NewTracker()
	net.OnInsert = tr.Insert
	net.OnRemove = tr.Remove

	var live []*ops5.WME
	nextTag := 1
	for b := 0; b < batches; b++ {
		var batch []ops5.Change
		for i := 0; i < 1+rng.Intn(6); i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				k := rng.Intn(len(live))
				batch = append(batch, ops5.Change{Kind: ops5.Delete, WME: live[k]})
				live = append(live[:k], live[k+1:]...)
			} else {
				w := trickyWME(rng, pool)
				w.TimeTag = nextTag
				nextTag++
				live = append(live, w)
				batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: w})
			}
		}
		net.Apply(batch)
		want := matchtest.BruteForceKeys(prods, live)
		if d := matchtest.Diff(want, tr.Keys()); d != "" {
			t.Fatalf("batch %d: interned rete diverges from brute force:\n%s", b, d)
		}
	}
}

// TestDifferentialInternedVsBruteForce seeds the property directly so
// it runs on every `go test`, fuzzing or not.
func TestDifferentialInternedVsBruteForce(t *testing.T) {
	for seed := int64(900); seed < 916; seed++ {
		rng := rand.New(rand.NewSource(seed))
		runInternedDifferential(t, rng, trickySymbols, 12)
	}
}

// FuzzDifferentialInternedVsBruteForce extends the vocabulary with
// fuzzer-invented symbols: whatever strings the fuzzer interleaves must
// still match identically under integer-compare and value-compare
// semantics.
func FuzzDifferentialInternedVsBruteForce(f *testing.F) {
	f.Add(int64(1), "alpha\x00beta")
	f.Add(int64(2), "0x10|１|︎")
	f.Add(int64(3), "")
	f.Fuzz(func(t *testing.T, seed int64, extra string) {
		pool := append([]string{}, trickySymbols...)
		for len(extra) > 0 { // split the fuzz string into a few symbols
			n := 1 + len(extra)/3
			if n > len(extra) {
				n = len(extra)
			}
			pool = append(pool, extra[:n])
			extra = extra[n:]
		}
		rng := rand.New(rand.NewSource(seed))
		runInternedDifferential(t, rng, pool, 8)
	})
}
