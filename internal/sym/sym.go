// Package sym implements the global symbol interner behind the columnar
// working-memory representation: every class name, attribute name and
// symbolic atom in the system maps to a dense uint32 ID, assigned once,
// process-wide. Matchers compare and hash IDs instead of strings — an
// equality join probe costs one integer compare instead of a string
// hash — and working memory stores pointer-light rows whose symbol
// columns are plain integer slices.
//
// The table is two-way (Intern and Name) and append-only: symbols are
// never removed, so an ID is valid for the life of the process. Reads
// on both directions are lock-free — Name loads an atomically published
// slice header, Lookup hits a sync.Map — which matters because the
// parallel matcher's workers resolve symbols concurrently with an
// engine goroutine interning new ones.
//
// IDs are process-local. Anything that crosses a process boundary
// (WAL records shipped to replicas, the HTTP JSON surface) stays in
// strings; snapshot format v2 embeds the table it was written with and
// the loader re-interns through it (internal/durable).
package sym

import (
	"sync"
	"sync/atomic"
)

// ID is a dense symbol identifier. The zero ID is None — "no symbol" —
// and is never assigned to an interned string (including the empty
// string, which interns like any other).
type ID uint32

// None is the reserved null symbol ID.
const None ID = 0

// Table is an append-only two-way string↔ID map. The zero Table is not
// ready for use; construct with NewTable. Most callers use the
// package-level default table.
type Table struct {
	mu     sync.Mutex
	byName sync.Map                 // string -> ID
	names  atomic.Pointer[[]string] // index = ID; names[0] is the None placeholder
}

// NewTable returns an empty table whose first assigned ID is 1.
func NewTable() *Table {
	t := &Table{}
	initial := make([]string, 1, 64) // names[0] = "" placeholder for None
	t.names.Store(&initial)
	return t
}

// Intern returns the ID for s, assigning the next dense ID on first
// sight. Safe for concurrent use; the fast path (already-interned
// symbol) is a single lock-free map load.
func (t *Table) Intern(s string) ID {
	if v, ok := t.byName.Load(s); ok {
		return v.(ID)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Double-check under the lock: another goroutine may have won.
	if v, ok := t.byName.Load(s); ok {
		return v.(ID)
	}
	cur := *t.names.Load()
	id := ID(len(cur))
	next := append(cur, s)
	// Publishing the new header before the byName entry gives readers
	// that learn an ID from Lookup a names slice long enough to resolve
	// it: the sync.Map store is the release, names.Load the acquire.
	t.names.Store(&next)
	t.byName.Store(s, id)
	return id
}

// Lookup returns the ID for s without interning; ok is false when s has
// never been interned. Lock-free.
func (t *Table) Lookup(s string) (ID, bool) {
	if v, ok := t.byName.Load(s); ok {
		return v.(ID), true
	}
	return None, false
}

// Name returns the string for id, or "" for None or an ID the table has
// not (yet) assigned. Lock-free.
func (t *Table) Name(id ID) string {
	names := *t.names.Load()
	if int(id) < len(names) {
		return names[id]
	}
	// An ID can arrive ahead of this goroutine's view of the table only
	// through an unsynchronized channel; one locked retry makes Name
	// total without putting a lock on the hot path.
	t.mu.Lock()
	names = *t.names.Load()
	t.mu.Unlock()
	if int(id) < len(names) {
		return names[id]
	}
	return ""
}

// Len returns the number of assigned IDs plus one (the None slot):
// valid IDs are 1..Len()-1.
func (t *Table) Len() int { return len(*t.names.Load()) }

// Names returns the current table contents indexed by ID, with
// Names()[0] the None placeholder. The returned slice is a consistent
// snapshot and must be treated as read-only — it is the live published
// header, which is how snapshot serialization (durable format v2) gets
// the table without stopping interning.
func (t *Table) Names() []string { return *t.names.Load() }

// Default is the process-global table used by ops5 values and working
// memory. Everything in one process shares it, so IDs compare across
// sessions, matchers and snapshots taken in this process.
var Default = NewTable()

// Intern interns s in the default table.
func Intern(s string) ID { return Default.Intern(s) }

// Lookup looks s up in the default table without interning.
func Lookup(s string) (ID, bool) { return Default.Lookup(s) }

// Name resolves id in the default table.
func Name(id ID) string { return Default.Name(id) }

// Len returns the default table's Len.
func Len() int { return Default.Len() }

// Names returns the default table's read-only snapshot.
func Names() []string { return Default.Names() }
