package sym

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternRoundTrip pins the basic contract: interning is idempotent,
// IDs are dense starting at 1, and Name inverts Intern.
func TestInternRoundTrip(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("goal")
	b := tb.Intern("state")
	if a != 1 || b != 2 {
		t.Fatalf("IDs not dense from 1: got %d, %d", a, b)
	}
	if again := tb.Intern("goal"); again != a {
		t.Fatalf("re-intern changed ID: %d != %d", again, a)
	}
	if got := tb.Name(a); got != "goal" {
		t.Fatalf("Name(%d) = %q, want goal", a, got)
	}
	if id, ok := tb.Lookup("state"); !ok || id != b {
		t.Fatalf("Lookup(state) = %d, %v", id, ok)
	}
	if id, ok := tb.Lookup("never-seen"); ok || id != None {
		t.Fatalf("Lookup of unknown symbol = %d, %v; want None, false", id, ok)
	}
	if tb.Len() != 3 { // None slot + 2 symbols
		t.Fatalf("Len = %d, want 3", tb.Len())
	}
}

// TestInternEmptyString checks that "" interns like any other symbol —
// it gets a real (non-None) ID and round-trips. None's Name is also ""
// (the placeholder), which is fine: None is never produced by Intern,
// so the ambiguity only exists for callers who fabricate IDs.
func TestInternEmptyString(t *testing.T) {
	tb := NewTable()
	id := tb.Intern("")
	if id == None {
		t.Fatal("empty string interned as None")
	}
	if got, ok := tb.Lookup(""); !ok || got != id {
		t.Fatalf("Lookup(\"\") = %d, %v; want %d, true", got, ok, id)
	}
	if tb.Name(id) != "" {
		t.Fatalf("Name(%d) = %q, want empty", id, tb.Name(id))
	}
	if again := tb.Intern(""); again != id {
		t.Fatalf("re-intern of empty string changed ID: %d != %d", again, id)
	}
}

// TestInternManySymbols pushes the table past 65k entries: IDs must stay
// dense and resolvable well beyond any small-integer packing assumption
// (ID is uint32, not uint16).
func TestInternManySymbols(t *testing.T) {
	tb := NewTable()
	const n = 70_000
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		ids[i] = tb.Intern(fmt.Sprintf("sym-%d", i))
		if ids[i] != ID(i+1) {
			t.Fatalf("symbol %d got ID %d, want %d", i, ids[i], i+1)
		}
	}
	if tb.Len() != n+1 {
		t.Fatalf("Len = %d, want %d", tb.Len(), n+1)
	}
	// Spot-check resolution across the whole range, including past 65535.
	for _, i := range []int{0, 1, 65_534, 65_535, 65_536, n - 1} {
		if got := tb.Name(ids[i]); got != fmt.Sprintf("sym-%d", i) {
			t.Fatalf("Name(%d) = %q, want sym-%d", ids[i], got, i)
		}
	}
	names := tb.Names()
	if len(names) != n+1 || names[65_536] != "sym-65535" {
		t.Fatalf("Names snapshot wrong: len=%d names[65536]=%q", len(names), names[65_536])
	}
}

// TestConcurrentReadDuringIntern hammers the lock-free read paths (Name,
// Lookup, Names) while a writer interns new symbols — the shape the
// parallel matcher produces, where workers resolve symbols concurrently
// with the engine goroutine interning fresh atoms. Run under -race.
func TestConcurrentReadDuringIntern(t *testing.T) {
	tb := NewTable()
	const n = 5_000
	done := make(chan struct{})
	idCh := make(chan ID, n)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(done)
		for i := 0; i < n; i++ {
			idCh <- tb.Intern(fmt.Sprintf("w-%d", i))
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers: every ID learned from the writer must resolve
			defer wg.Done()
			seen := 0
			for {
				select {
				case id := <-idCh:
					seen++
					name := tb.Name(id)
					if name == "" {
						t.Errorf("Name(%d) empty for freshly interned symbol", id)
						return
					}
					if got, ok := tb.Lookup(name); !ok || got != id {
						t.Errorf("Lookup(%q) = %d, %v; want %d", name, got, ok, id)
						return
					}
				case <-done:
					// Drain what's left without blocking, then stop.
					for {
						select {
						case id := <-idCh:
							if tb.Name(id) == "" {
								t.Errorf("Name(%d) empty after writer finished", id)
								return
							}
							seen++
						default:
							_ = seen
							return
						}
					}
				}
			}
		}()
	}

	// A scanner reading consistent snapshots while interning proceeds:
	// every published prefix must be internally consistent.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			names := tb.Names()
			for i := 1; i < len(names); i++ {
				if names[i] == "" {
					t.Errorf("Names()[%d] empty in published snapshot of len %d", i, len(names))
					return
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(idCh)
	if tb.Len() != n+1 {
		t.Fatalf("Len = %d after concurrent intern, want %d", tb.Len(), n+1)
	}
}
