package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL record framing: every record is
//
//	[4 bytes little-endian payload length][4 bytes IEEE CRC32 of payload][payload]
//
// A crash can tear the tail of the file anywhere — a partial header, a
// partial payload, or a payload whose CRC no longer matches. Recovery
// treats the first such record as the end of history and truncates the
// file there; everything before it was written (and, under
// -fsync=always, synced) completely.

// headerSize is the framing overhead per record.
const headerSize = 8

// maxRecordSize bounds a single record so a corrupt length field cannot
// drive recovery into a multi-gigabyte allocation.
const maxRecordSize = 1 << 28

// errTornRecord reports a record that ends (or stops making sense)
// before its framing says it should — the expected shape of the last
// record written during a crash.
var errTornRecord = errors.New("durable: torn record")

// frameRecord returns payload wrapped in the WAL framing. The frame is
// what lands on disk and what WAL shipping sends to replicas — the CRC
// travels with the record across the network.
func frameRecord(payload []byte) ([]byte, error) {
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("durable: record of %d bytes exceeds limit %d", len(payload), maxRecordSize)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[headerSize:], payload)
	return frame, nil
}

// EncodeFrame wraps payload in the WAL framing — the unit WAL shipping
// sends over the wire (internal/cluster), identical to the on-disk
// format so the CRC travels end to end.
func EncodeFrame(payload []byte) ([]byte, error) { return frameRecord(payload) }

// DecodeFrame reads one framed payload from r: io.EOF at a clean frame
// boundary, an error for a torn or corrupt frame.
func DecodeFrame(r io.Reader) ([]byte, error) { return readFrame(r) }

// appendFrame frames payload and writes it to w, returning the number
// of bytes written.
func appendFrame(w io.Writer, payload []byte) (int, error) {
	frame, err := frameRecord(payload)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(frame); err != nil {
		return 0, err
	}
	return len(frame), nil
}

// readFrame reads one framed record from r. It returns errTornRecord
// when the stream ends mid-record or the CRC fails, and io.EOF at a
// clean record boundary.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordSize {
		return nil, errTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornRecord
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTornRecord
	}
	return payload, nil
}
