package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// WAL record framing: every record is
//
//	[4 bytes little-endian payload length][4 bytes IEEE CRC32 of payload][payload]
//
// A crash can tear the tail of the file anywhere — a partial header, a
// partial payload, or a payload whose CRC no longer matches. Recovery
// treats the first such record as the end of history and truncates the
// file there; everything before it was written (and, under
// -fsync=always, synced) completely.

// headerSize is the framing overhead per record.
const headerSize = 8

// maxRecordSize bounds a single record so a corrupt length field cannot
// drive recovery into a multi-gigabyte allocation.
const maxRecordSize = 1 << 28

// errTornRecord reports a record that ends (or stops making sense)
// before its framing says it should — the expected shape of the last
// record written during a crash.
var errTornRecord = errors.New("durable: torn record")

// appendFrame frames payload and writes it to w, returning the number
// of bytes written.
func appendFrame(w io.Writer, payload []byte) (int, error) {
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds limit %d", len(payload), maxRecordSize)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return headerSize + len(payload), nil
}

// readFrame reads one framed record from r. It returns errTornRecord
// when the stream ends mid-record or the CRC fails, and io.EOF at a
// clean record boundary.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornRecord
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxRecordSize {
		return nil, errTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornRecord
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTornRecord
	}
	return payload, nil
}
