package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/ops5"
	"repro/internal/sym"
	"repro/internal/wm"
)

// Snapshot format v2/v3: a binary, columnar encoding that embeds the
// symbol table it was written with, so loading is re-intern plus
// integer remap instead of re-parsing strings from JSON. Format v3 is
// v2 plus the event-expiry state ("PS3\x00" magic): the logical clock,
// the expired counter, and the pending expiry table — (time tag,
// deadline) pairs, which are not derivable from working memory alone
// because each deadline bakes in the clock at insert time.
//
// Layout (integers are unsigned varints unless noted):
//
//	magic   "PS2\x00" or "PS3\x00" (4 bytes)
//	header  seq, nextTag, cycles, fired, totalChanges, halted (1 byte)
//	v3 only clock, expired, expiry count, then per pending expiry:
//	        time tag, deadline
//	fired   count, then count length-prefixed conflict-set keys
//	symbols count, then count length-prefixed names; the i-th name
//	        (0-based) is local symbol ID i+1. Local ID 0 is "no symbol".
//	        Only symbols the snapshot references are written, in first-
//	        use order — the table is snapshot-local, not the process
//	        table, so IDs stay dense however interning order diverged.
//	classes count, then per class: class local ID, row count, and per
//	        row: time tag, field count, and per field: attribute local
//	        ID, value kind (1 byte), then for symbols the value's local
//	        ID, for numbers the float64 bits (8 bytes little-endian).
//	footer  CRC32 (IEEE) of everything before it, 4 bytes little-endian
//
// The loader sniffs the magic: files without it decode as format v1
// (the JSON snapshot written before this format existed), so pre-v2
// session directories recover unchanged. WAL records are deliberately
// NOT in this format — they ship to replicas across process boundaries
// where interned IDs mean nothing, so they stay symbolic JSON.

// snapMagic marks a v2 snapshot. JSON snapshots start with '{', so the
// first byte distinguishes the formats unambiguously.
var snapMagic = [4]byte{'P', 'S', '2', 0}

// snapMagic3 marks a v3 snapshot (v2 plus clock and expiry table).
var snapMagic3 = [4]byte{'P', 'S', '3', 0}

// snapState is a decoded snapshot, format-independent: the WMEs carry
// their original time tags and are ready for engine.Restore.
type snapState struct {
	Seq          int64
	NextTag      int
	Cycles       int
	Fired        int
	TotalChanges int
	Halted       bool
	FiredKeys    []string
	WMEs         []*ops5.WME

	// Event-expiry state (format v3; zero for v1/v2 snapshots, which
	// predate event facts and therefore have none pending).
	Clock        int64
	Expired      int
	ExpTags      []int
	ExpDeadlines []int64
}

// symEnc assigns dense snapshot-local IDs to process symbol IDs on
// first use and records their names in assignment order.
type symEnc struct {
	local map[sym.ID]uint64
	names []string
}

func (se *symEnc) id(id sym.ID) uint64 {
	if id == sym.None {
		return 0
	}
	if l, ok := se.local[id]; ok {
		return l
	}
	se.names = append(se.names, sym.Name(id))
	l := uint64(len(se.names)) // local IDs start at 1
	se.local[id] = l
	return l
}

// encodeSnapshotV2 serializes the snapshot state in format v2 — kept
// for the migration tests; production snapshots are v3.
func encodeSnapshotV2(seq int64, nextTag, cycles, fired, totalChanges int,
	halted bool, firedKeys []string, classes []wm.ClassRows) []byte {
	return encodeSnapshotBinary(snapMagic, seq, nextTag, cycles, fired, totalChanges,
		halted, firedKeys, classes, 0, 0, nil, nil)
}

// encodeSnapshotV3 serializes the snapshot state in format v3: v2 plus
// the logical clock, expired counter and pending expiry table.
func encodeSnapshotV3(seq int64, nextTag, cycles, fired, totalChanges int,
	halted bool, firedKeys []string, classes []wm.ClassRows,
	clock int64, expired int, expTags []int, expDeadlines []int64) []byte {
	return encodeSnapshotBinary(snapMagic3, seq, nextTag, cycles, fired, totalChanges,
		halted, firedKeys, classes, clock, expired, expTags, expDeadlines)
}

// encodeSnapshotBinary serializes the snapshot state from working
// memory's raw class rows (wm.Memory.Classes — no per-element string
// round trip). The magic selects the format; the expiry fields are
// written only under the v3 magic.
func encodeSnapshotBinary(magic [4]byte, seq int64, nextTag, cycles, fired, totalChanges int,
	halted bool, firedKeys []string, classes []wm.ClassRows,
	clock int64, expired int, expTags []int, expDeadlines []int64) []byte {
	nRows := 0
	for _, cr := range classes {
		nRows += len(cr.Rows)
	}
	buf := make([]byte, 0, 64+32*nRows)
	buf = append(buf, magic[:]...)
	buf = binary.AppendUvarint(buf, uint64(seq))
	buf = binary.AppendUvarint(buf, uint64(nextTag))
	buf = binary.AppendUvarint(buf, uint64(cycles))
	buf = binary.AppendUvarint(buf, uint64(fired))
	buf = binary.AppendUvarint(buf, uint64(totalChanges))
	if halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	if magic == snapMagic3 {
		buf = binary.AppendUvarint(buf, uint64(clock))
		buf = binary.AppendUvarint(buf, uint64(expired))
		buf = binary.AppendUvarint(buf, uint64(len(expTags)))
		for i, tag := range expTags {
			buf = binary.AppendUvarint(buf, uint64(tag))
			buf = binary.AppendUvarint(buf, uint64(expDeadlines[i]))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(firedKeys)))
	for _, k := range firedKeys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}

	// The body references symbols by local ID, so it is encoded first
	// (into its own buffer) while the local table accumulates, then the
	// table is written ahead of it.
	se := &symEnc{local: make(map[sym.ID]uint64, 64)}
	body := make([]byte, 0, 32*nRows)
	body = binary.AppendUvarint(body, uint64(len(classes)))
	for _, cr := range classes {
		body = binary.AppendUvarint(body, se.id(cr.Class))
		body = binary.AppendUvarint(body, uint64(len(cr.Rows)))
		for _, w := range cr.Rows {
			body = binary.AppendUvarint(body, uint64(w.TimeTag))
			fields := w.Fields()
			body = binary.AppendUvarint(body, uint64(len(fields)))
			for _, f := range fields {
				body = binary.AppendUvarint(body, se.id(f.Attr))
				body = append(body, byte(f.Val.Kind))
				switch f.Val.Kind {
				case ops5.SymValue:
					body = binary.AppendUvarint(body, se.id(f.Val.SymID()))
				case ops5.NumValue:
					body = binary.LittleEndian.AppendUint64(body, math.Float64bits(f.Val.Num))
				}
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(se.names)))
	for _, name := range se.names {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// snapReader decodes the v2 byte stream with bounds checking.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("durable: truncated snapshot varint at %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = fmt.Errorf("durable: truncated snapshot run at %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out
}

func (r *snapReader) byte1() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// decodeSnapshotV2 decodes a v2 or v3 snapshot, verifying the CRC
// footer and re-interning the embedded symbol table into the process
// table (the ID remap: snapshot-local ID -> current process ID).
func decodeSnapshotV2(data []byte) (snapState, error) {
	var st snapState
	if len(data) < len(snapMagic)+4 {
		return st, fmt.Errorf("durable: snapshot too short for v2 framing")
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(footer); got != want {
		return st, fmt.Errorf("durable: snapshot CRC mismatch (%08x != %08x)", got, want)
	}
	v3 := isSnapV3(data)
	r := &snapReader{b: body, off: len(snapMagic)}
	st.Seq = int64(r.uvarint())
	st.NextTag = int(r.uvarint())
	st.Cycles = int(r.uvarint())
	st.Fired = int(r.uvarint())
	st.TotalChanges = int(r.uvarint())
	st.Halted = r.byte1() != 0
	if v3 {
		st.Clock = int64(r.uvarint())
		st.Expired = int(r.uvarint())
		nExp := r.uvarint()
		if r.err == nil && nExp > uint64(len(body)) {
			return st, fmt.Errorf("durable: snapshot expiry count %d exceeds payload", nExp)
		}
		for i := uint64(0); i < nExp && r.err == nil; i++ {
			st.ExpTags = append(st.ExpTags, int(r.uvarint()))
			st.ExpDeadlines = append(st.ExpDeadlines, int64(r.uvarint()))
		}
	}
	if n := r.uvarint(); n > 0 && r.err == nil {
		st.FiredKeys = make([]string, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			st.FiredKeys = append(st.FiredKeys, string(r.bytes(r.uvarint())))
		}
	}
	// Remap: local[0] stays None; local i+1 re-interns the i-th name.
	nSyms := r.uvarint()
	if r.err != nil {
		return st, r.err
	}
	if nSyms > uint64(len(body)) {
		return st, fmt.Errorf("durable: snapshot symbol count %d exceeds payload", nSyms)
	}
	remap := make([]sym.ID, nSyms+1)
	for i := uint64(0); i < nSyms && r.err == nil; i++ {
		remap[i+1] = sym.Intern(string(r.bytes(r.uvarint())))
	}
	local := func(l uint64) (sym.ID, error) {
		if l >= uint64(len(remap)) {
			return sym.None, fmt.Errorf("durable: snapshot symbol ref %d out of table (%d)", l, len(remap))
		}
		return remap[l], nil
	}
	nClasses := r.uvarint()
	for c := uint64(0); c < nClasses && r.err == nil; c++ {
		class, err := local(r.uvarint())
		if err != nil {
			return st, err
		}
		nRows := r.uvarint()
		for i := uint64(0); i < nRows && r.err == nil; i++ {
			tag := int(r.uvarint())
			nFields := r.uvarint()
			fields := make([]ops5.Field, 0, nFields)
			for f := uint64(0); f < nFields && r.err == nil; f++ {
				attr, err := local(r.uvarint())
				if err != nil {
					return st, err
				}
				var v ops5.Value
				switch kind := ops5.ValueKind(r.byte1()); kind {
				case ops5.SymValue:
					id, err := local(r.uvarint())
					if err != nil {
						return st, err
					}
					v = ops5.SymID(id)
				case ops5.NumValue:
					bits := r.bytes(8)
					if bits != nil {
						v = ops5.Num(math.Float64frombits(binary.LittleEndian.Uint64(bits)))
					}
				case ops5.NilValue:
					// zero value
				default:
					return st, fmt.Errorf("durable: snapshot value kind %d unknown", kind)
				}
				fields = append(fields, ops5.Field{Attr: attr, Val: v})
			}
			if r.err != nil {
				break
			}
			w := ops5.NewFact(class, fields)
			w.TimeTag = tag
			st.WMEs = append(st.WMEs, w)
		}
	}
	if r.err != nil {
		return st, r.err
	}
	if r.off != len(body) {
		return st, fmt.Errorf("durable: %d trailing snapshot bytes", len(body)-r.off)
	}
	return st, nil
}

// isSnapV2 reports whether data carries either binary magic (v2 or v3;
// the two share framing and the seq-first header).
func isSnapV2(data []byte) bool {
	return len(data) >= len(snapMagic) &&
		(string(data[:len(snapMagic)]) == string(snapMagic[:]) ||
			string(data[:len(snapMagic3)]) == string(snapMagic3[:]))
}

// isSnapV3 reports whether data carries the v3 magic specifically.
func isSnapV3(data []byte) bool {
	return len(data) >= len(snapMagic3) && string(data[:len(snapMagic3)]) == string(snapMagic3[:])
}

// decodeSnapshot decodes any snapshot format into the common state:
// v2/v3 by magic sniff, anything else as the v1 JSON document.
func decodeSnapshot(data []byte) (snapState, error) {
	if isSnapV2(data) {
		return decodeSnapshotV2(data)
	}
	return decodeSnapshotV1(data)
}

// snapshotSeq extracts just the captured WAL sequence from snapshot
// bytes of either format — the standby path, which stores snapshots
// opaquely and only needs their position. It reads the header without
// decoding (or interning) the body; full validation happens when the
// standby is promoted and the snapshot actually loads.
func snapshotSeq(data []byte) (int64, error) {
	if isSnapV2(data) {
		v, n := binary.Uvarint(data[len(snapMagic):])
		if n <= 0 {
			return 0, fmt.Errorf("durable: truncated v2 snapshot header")
		}
		return int64(v), nil
	}
	var decoded struct {
		Seq int64 `json:"seq"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		return 0, fmt.Errorf("durable: snapshot: %w", err)
	}
	return decoded.Seq, nil
}
