package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Replication errors a shipper reacts to: a gap means the follower is
// missing history and needs a snapshot catch-up; a stale snapshot means
// the follower already holds newer state than the sender.
var (
	// ErrSequenceGap reports a shipped record whose sequence does not
	// extend the standby's history — records were lost in transit (or
	// the standby has no snapshot yet) and the sender must re-ship a
	// snapshot before any further records can land.
	ErrSequenceGap = errors.New("durable: replicated record out of sequence")
	// ErrStaleSnapshot reports a shipped snapshot older than the state
	// the standby already holds; installing it would lose history.
	ErrStaleSnapshot = errors.New("durable: replicated snapshot older than standby state")
)

// Standby mirrors a remote session's durable state on a follower node:
// the manifest and latest shipped snapshot, plus a WAL of shipped
// records past that snapshot. The on-disk layout is identical to a live
// session's durable directory, so promotion is exactly crash recovery —
// rename the directory into place and Recover. All methods are safe for
// concurrent use (the replicate handler and the reconcile loop both
// touch standbys).
type Standby struct {
	dir string

	mu      sync.Mutex
	wal     *os.File
	hasSnap bool
	snapSeq int64 // sequence captured by the installed snapshot
	seq     int64 // last contiguous shipped record
	records int64 // records held past the snapshot
	closed  bool
}

// OpenStandby opens (or initialises) a standby directory, scanning any
// existing shipped WAL for its last contiguous sequence and truncating
// a torn or out-of-order tail — the same tolerance Recover applies.
func OpenStandby(dir string) (*Standby, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	st := &Standby{dir: dir}
	if data, err := os.ReadFile(filepath.Join(dir, snapshotFile)); err == nil {
		seq, err := snapshotSeq(data)
		if err != nil {
			return nil, fmt.Errorf("durable: standby snapshot: %w", err)
		}
		st.hasSnap, st.snapSeq, st.seq = true, seq, seq
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	// O_APPEND keeps every write at the end of file even after a
	// truncate, so the scan below never has to reposition for appends.
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	st.wal = wal
	var offset int64
	for {
		payload, err := readFrame(wal)
		if err == io.EOF {
			break
		}
		bad := err != nil
		if !bad {
			var rec struct {
				Seq int64 `json:"seq"`
			}
			switch {
			case json.Unmarshal(payload, &rec) != nil:
				bad = true
			case rec.Seq <= st.snapSeq:
				offset += int64(headerSize + len(payload)) // covered by the snapshot
				continue
			case rec.Seq != st.seq+1:
				bad = true // gap: shipped history after this is unusable
			default:
				st.seq = rec.Seq
				st.records++
				offset += int64(headerSize + len(payload))
				continue
			}
		}
		if bad {
			if err := wal.Truncate(offset); err != nil {
				wal.Close()
				return nil, fmt.Errorf("durable: truncate torn standby WAL: %w", err)
			}
			break
		}
	}
	return st, nil
}

// Dir returns the standby's directory.
func (st *Standby) Dir() string { return st.dir }

// Seq returns the last contiguous shipped sequence (the standby's
// replication position; owner seq minus this is the replication lag).
func (st *Standby) Seq() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq
}

// Stats snapshots the standby's counters: replication position, the
// sequence captured by the installed snapshot, and records held past it.
func (st *Standby) Stats() (seq, snapSeq, records int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.seq, st.snapSeq, st.records
}

// InstallSnapshot replaces the standby's full state with a shipped
// manifest and snapshot — the catch-up path after a gap, and the
// initial attach. Shipped records the snapshot already covers are
// discarded. A snapshot older than the standby's current position is
// rejected with ErrStaleSnapshot so a lagging sender can never roll a
// replica backwards. Returns the standby's new sequence.
func (st *Standby) InstallSnapshot(manifest, snap []byte) (int64, error) {
	if !json.Valid(manifest) {
		return 0, fmt.Errorf("durable: shipped manifest is not valid JSON")
	}
	snapSeq, err := snapshotSeq(snap)
	if err != nil {
		return 0, fmt.Errorf("durable: shipped snapshot: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return st.seq, fmt.Errorf("durable: install into closed standby")
	}
	if st.hasSnap && snapSeq < st.seq {
		return st.seq, ErrStaleSnapshot
	}
	if err := writeFileAtomic(filepath.Join(st.dir, manifestFile), manifest); err != nil {
		return st.seq, err
	}
	if err := writeFileAtomic(filepath.Join(st.dir, snapshotFile), snap); err != nil {
		return st.seq, err
	}
	if err := st.wal.Truncate(0); err != nil {
		return st.seq, err
	}
	st.hasSnap, st.snapSeq, st.seq, st.records = true, snapSeq, snapSeq, 0
	return st.seq, nil
}

// AppendRecords ingests a stream of framed WAL records shipped by the
// session's owner. Records at or below the standby's position are
// duplicates and skipped; a record that does not extend the position by
// exactly one aborts with ErrSequenceGap (the sender re-ships a
// snapshot). Returns the standby's position after the stream and the
// number of records appended.
func (st *Standby) AppendRecords(stream io.Reader) (seq int64, appended int, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return st.seq, 0, fmt.Errorf("durable: append into closed standby")
	}
	if !st.hasSnap {
		return st.seq, 0, ErrSequenceGap
	}
	for {
		payload, ferr := readFrame(stream)
		if ferr == io.EOF {
			break
		}
		if ferr != nil {
			err = fmt.Errorf("durable: shipped record stream: %w", ferr)
			break
		}
		var rec struct {
			Seq int64 `json:"seq"`
		}
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			err = fmt.Errorf("durable: shipped record: %w", jerr)
			break
		}
		if rec.Seq <= st.seq {
			continue // duplicate resend
		}
		if rec.Seq != st.seq+1 {
			err = ErrSequenceGap
			break
		}
		if _, werr := appendFrame(st.wal, payload); werr != nil {
			err = werr
			break
		}
		st.seq = rec.Seq
		st.records++
		appended++
	}
	if appended > 0 {
		if serr := st.wal.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	return st.seq, appended, err
}

// Export reads the standby's current state for pushing to another node
// (the fresher-replica handoff path): manifest, snapshot, and the
// shipped WAL tail (already framed — it streams as-is).
func (st *Standby) Export() (manifest, snap, walTail []byte, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.hasSnap {
		return nil, nil, nil, fmt.Errorf("durable: standby %s holds no snapshot", st.dir)
	}
	if manifest, err = os.ReadFile(filepath.Join(st.dir, manifestFile)); err != nil {
		return nil, nil, nil, err
	}
	if snap, err = os.ReadFile(filepath.Join(st.dir, snapshotFile)); err != nil {
		return nil, nil, nil, err
	}
	if walTail, err = os.ReadFile(filepath.Join(st.dir, walFile)); err != nil {
		return nil, nil, nil, err
	}
	return manifest, snap, walTail, nil
}

// Close closes the standby's WAL. The directory stays on disk, ready to
// be promoted (renamed into the live area and recovered) or reopened.
func (st *Standby) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	return st.wal.Close()
}

// Remove deletes the standby's directory — the owner deleted the
// session, so the replica must not survive to resurrect it.
func (st *Standby) Remove() error {
	st.Close()
	return os.RemoveAll(st.dir)
}
