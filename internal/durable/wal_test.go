package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte(`{"seq":1}`),
		{},
		[]byte(strings.Repeat("x", 4096)),
		{0, 1, 2, 255},
	}
	var buf bytes.Buffer
	total := 0
	for _, p := range payloads {
		n, err := appendFrame(&buf, p)
		if err != nil {
			t.Fatalf("appendFrame: %v", err)
		}
		if n != headerSize+len(p) {
			t.Fatalf("appendFrame reported %d bytes, want %d", n, headerSize+len(p))
		}
		total += n
	}
	if buf.Len() != total {
		t.Fatalf("buffer holds %d bytes, frames reported %d", buf.Len(), total)
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("readFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("readFrame %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Fatalf("read past last frame: got %v, want io.EOF", err)
	}
}

func TestFrameOversizePayloadRejected(t *testing.T) {
	// Don't allocate 256MB: an oversize *length field* must also be
	// rejected on read, which is the recovery-facing half of the bound.
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordSize+1)
	if _, err := readFrame(bytes.NewReader(hdr[:])); !errors.Is(err, errTornRecord) {
		t.Fatalf("oversize length: got %v, want errTornRecord", err)
	}
}

func TestFrameTornAndCorrupt(t *testing.T) {
	frame := func(p []byte) []byte {
		var buf bytes.Buffer
		if _, err := appendFrame(&buf, p); err != nil {
			t.Fatalf("appendFrame: %v", err)
		}
		return buf.Bytes()
	}
	whole := frame([]byte(`{"seq":7,"changes":[]}`))
	cases := []struct {
		name string
		data []byte
	}{
		{"partial header", whole[:headerSize-3]},
		{"header only", whole[:headerSize]},
		{"partial payload", whole[:len(whole)-5]},
		{"crc mismatch", func() []byte {
			d := bytes.Clone(whole)
			d[len(d)-1] ^= 0x55
			return d
		}()},
		{"length beyond data", func() []byte {
			d := bytes.Clone(whole)
			binary.LittleEndian.PutUint32(d[0:4], uint32(len(whole))) // longer than remaining bytes
			return d
		}()},
	}
	for _, tc := range cases {
		if _, err := readFrame(bytes.NewReader(tc.data)); !errors.Is(err, errTornRecord) {
			t.Errorf("%s: got %v, want errTornRecord", tc.name, err)
		}
	}

	// A torn tail after an intact record must not hide the record.
	data := append(bytes.Clone(whole), whole[:headerSize+3]...)
	r := bytes.NewReader(data)
	if _, err := readFrame(r); err != nil {
		t.Fatalf("intact first record: %v", err)
	}
	if _, err := readFrame(r); !errors.Is(err, errTornRecord) {
		t.Fatalf("torn tail: got %v, want errTornRecord", err)
	}
}
