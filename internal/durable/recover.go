package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/ops5"
)

// RecoverStats reports what a recovery did.
type RecoverStats struct {
	// SnapshotSeq is the WAL sequence the loaded snapshot captured.
	SnapshotSeq int64
	// Replayed is the number of WAL records applied after the snapshot.
	Replayed int64
	// Truncated reports that the WAL ended in a torn or corrupt record,
	// which was cut at TruncatedAt (a byte offset). Expected after a
	// crash mid-append; the lost record was never acknowledged.
	Truncated   bool
	TruncatedAt int64
}

// Recover rebuilds a session's engine state from its durable directory:
// load the latest snapshot (restoring working memory with original time
// tags, matcher memories, conflict set and refraction marks), then
// replay the WAL tail through the engine's apply path. The WAL is
// truncated at the first torn or corrupt record — the tail of a
// crashed append — rather than failing the whole session. The engine
// must be freshly constructed with an empty working memory (use
// core.Options.NoInitialWM; the snapshot already contains the
// program's initial state).
func Recover(dir string, eng *engine.Engine, opts Options) (*Log, RecoverStats, error) {
	var stats RecoverStats
	snap, err := readSnapshot(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, stats, err
	}
	if err := eng.Restore(snap.WMEs, snap.NextTag, snap.FiredKeys); err != nil {
		return nil, stats, fmt.Errorf("durable: restore snapshot: %w", err)
	}
	eng.Cycles, eng.Fired = snap.Cycles, snap.Fired
	eng.TotalChanges, eng.Halted = snap.TotalChanges, snap.Halted
	eng.Clock, eng.Expired = snap.Clock, snap.Expired
	eng.RestoreExpiries(snap.ExpTags, snap.ExpDeadlines)
	stats.SnapshotSeq = snap.Seq

	seq, err := replayWAL(filepath.Join(dir, walFile), eng, snap.Seq, &stats)
	if err != nil {
		return nil, stats, err
	}

	l, err := newLog(dir, eng, opts)
	if err != nil {
		return nil, stats, err
	}
	l.seq, l.snapSeq = seq, snap.Seq
	l.records = seq - snap.Seq
	if fi, statErr := os.Stat(filepath.Join(dir, walFile)); statErr == nil {
		l.walBytes = fi.Size()
	}
	l.recovered, l.replayed = true, stats.Replayed
	return l, stats, nil
}

// readSnapshot loads and decodes a snapshot file of either format.
func readSnapshot(path string) (snapState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return snapState{}, fmt.Errorf("durable: read snapshot: %w", err)
	}
	return decodeSnapshot(data)
}

// decodeSnapshotV1 decodes the legacy JSON snapshot document — the
// format every pre-v2 session directory holds. It stays supported so
// existing durable state recovers through the v2 loader unchanged.
func decodeSnapshotV1(data []byte) (snapState, error) {
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return snapState{}, fmt.Errorf("durable: decode snapshot: %w", err)
	}
	st := snapState{
		Seq:          snap.Seq,
		NextTag:      snap.NextTag,
		Cycles:       snap.Cycles,
		Fired:        snap.Fired,
		TotalChanges: snap.TotalChanges,
		Halted:       snap.Halted,
		FiredKeys:    snap.FiredKeys,
		WMEs:         make([]*ops5.WME, len(snap.WMEs)),
	}
	for i, sw := range snap.WMEs {
		w := decodeWME(sw.Class, sw.Attrs)
		w.TimeTag = sw.Tag
		st.WMEs[i] = w
	}
	return st, nil
}

// replayWAL applies every decodable record after snapSeq to the engine,
// in order, and truncates the file at the first record that is torn,
// corrupt, out of sequence, or inconsistent with the rebuilt state. It
// returns the last applied sequence.
func replayWAL(path string, eng *engine.Engine, snapSeq int64, stats *RecoverStats) (int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	seq := snapSeq
	var offset int64
	for {
		payload, err := readFrame(f)
		if err == io.EOF {
			return seq, nil
		}
		recLen := int64(headerSize + len(payload))
		if err == nil {
			var rec record
			if jsonErr := json.Unmarshal(payload, &rec); jsonErr != nil {
				err = errTornRecord
			} else if rec.Seq <= snapSeq {
				// A crash between snapshot rename and WAL truncate
				// leaves records the snapshot already covers; skip.
				offset += recLen
				continue
			} else if rec.Seq != seq+1 {
				err = errTornRecord // gap: history after this is unusable
			} else if applyErr := applyRecord(eng, rec); applyErr != nil {
				err = errTornRecord
			} else {
				seq = rec.Seq
				offset += recLen
				stats.Replayed++
				continue
			}
		}
		// First undecodable or inconsistent record: everything from
		// here on was never acknowledged as durable. Cut it off so the
		// next append starts at a clean boundary.
		stats.Truncated, stats.TruncatedAt = true, offset
		if err := f.Truncate(offset); err != nil {
			return seq, fmt.Errorf("durable: truncate torn WAL: %w", err)
		}
		if err := f.Sync(); err != nil {
			return seq, err
		}
		return seq, nil
	}
}

// applyRecord replays one record: the change batch through the engine,
// then the counters (absolute values) and refraction marks. The logical
// clock is restored BEFORE the batch applies — TTL deadlines of
// replayed inserts recompute from it, and they must land on the values
// the live run computed (the expiry-determinism rule; see engine/ttl.go
// and the format comment on record.Clock).
func applyRecord(eng *engine.Engine, rec record) error {
	changes, err := decodeChanges(rec.Changes)
	if err != nil {
		return err
	}
	eng.Clock = rec.Clock
	if err := eng.Replay(changes, rec.FiredKeys); err != nil {
		return err
	}
	eng.Cycles, eng.Fired = rec.Cycles, rec.Fired
	eng.TotalChanges, eng.Halted = rec.TotalChanges, rec.Halted
	eng.Expired = rec.Expired
	return nil
}
