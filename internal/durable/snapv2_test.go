package durable

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ops5"
)

// encodeSnapshotV1 re-serializes decoded snapshot state as the legacy
// JSON document — the writer no longer exists in production code, so
// the migration tests build v1 bytes here, exactly the shape every
// pre-v2 session directory holds.
func encodeSnapshotV1(t *testing.T, st snapState) []byte {
	t.Helper()
	v1 := snapshot{
		Seq:          st.Seq,
		NextTag:      st.NextTag,
		Cycles:       st.Cycles,
		Fired:        st.Fired,
		TotalChanges: st.TotalChanges,
		Halted:       st.Halted,
		FiredKeys:    st.FiredKeys,
		WMEs:         make([]walWME, len(st.WMEs)),
	}
	for i, w := range st.WMEs {
		v1.WMEs[i] = walWME{Tag: w.TimeTag, Class: w.Class(), Attrs: encodeAttrs(w)}
	}
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatalf("marshal v1 snapshot: %v", err)
	}
	return data
}

// TestSnapshotV1RecoversThroughV2Loader is the migration guarantee: a
// session directory whose snapshot is the legacy v1 JSON document must
// recover through the format-sniffing loader to byte-identical engine
// state — working memory, time tags, conflict set, refraction marks and
// counters — as the same state snapshotted in v2. The snapshot is taken
// mid-run so the conflict set is non-trivial.
func TestSnapshotV1RecoversThroughV2Loader(t *testing.T) {
	wmes := mannersWM(t)
	dir := t.TempDir()
	sys := newManners(t, core.SerialRete, false)
	l, err := Create(dir, []byte(`{"program":"manners"}`), sys.Engine, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := l.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
	}
	sys.Engine.Load(wmes)
	for i := 0; i < 15; i++ {
		if ok, err := sys.Engine.Step(); err != nil || !ok {
			t.Fatalf("Step %d: ok=%v err=%v", i, ok, err)
		}
	}
	want := stateString(sys.Engine)
	if len(sys.Engine.CS.Instantiations()) == 0 {
		t.Fatal("conflict set empty mid-run; test would prove nothing")
	}
	if _, err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	snapPath := filepath.Join(dir, snapshotFile)
	v2bytes, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !isSnapV2(v2bytes) {
		t.Fatal("Snapshot() did not write format v2")
	}

	// Recover from the v2 snapshot (snapshot + empty WAL — Snapshot
	// truncated it).
	rv2 := newManners(t, core.SerialRete, true)
	rlog, _, err := Recover(dir, rv2.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover (v2): %v", err)
	}
	rlog.Close()
	gotV2 := stateString(rv2.Engine)
	if gotV2 != want {
		t.Fatalf("v2 recovery diverged:\n--- got ---\n%s--- want ---\n%s", gotV2, want)
	}

	// Rewrite the same state as a v1 JSON snapshot and recover again:
	// the loader must sniff the missing magic, take the legacy path,
	// and land on the identical state.
	st, err := decodeSnapshotV2(v2bytes)
	if err != nil {
		t.Fatalf("decodeSnapshotV2: %v", err)
	}
	if err := os.WriteFile(snapPath, encodeSnapshotV1(t, st), 0o666); err != nil {
		t.Fatal(err)
	}
	rv1 := newManners(t, core.SerialRete, true)
	rlog1, stats, err := Recover(dir, rv1.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover (v1): %v", err)
	}
	defer rlog1.Close()
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d records from an empty WAL", stats.Replayed)
	}
	gotV1 := stateString(rv1.Engine)
	if gotV1 != want {
		t.Fatalf("v1 recovery diverged from live state:\n--- got ---\n%s--- want ---\n%s", gotV1, want)
	}
	if gotV1 != gotV2 {
		t.Fatalf("v1 and v2 recoveries disagree:\n--- v1 ---\n%s--- v2 ---\n%s", gotV1, gotV2)
	}

	// The recovered log must keep working: resuming both runs to halt
	// must agree with resuming the original.
	stepToEnd(t, sys.Engine)
	stepToEnd(t, rv1.Engine)
	if got, wantFinal := stateString(rv1.Engine), stateString(sys.Engine); got != wantFinal {
		t.Fatalf("resumed v1 recovery diverged at halt:\n--- got ---\n%s--- want ---\n%s", got, wantFinal)
	}
}

// TestSnapshotV2CodecRoundTrip exercises the codec directly: encode
// from working memory's raw columns, decode, and compare every header
// field and element.
func TestSnapshotV2CodecRoundTrip(t *testing.T) {
	wmes := mannersWM(t)
	sys := newManners(t, core.SerialRete, false)
	sys.Engine.Load(wmes)
	for i := 0; i < 10; i++ {
		if ok, err := sys.Engine.Step(); err != nil || !ok {
			t.Fatalf("Step %d: ok=%v err=%v", i, ok, err)
		}
	}
	e := sys.Engine
	data := encodeSnapshotV2(42, e.WM.NextTag(), e.Cycles, e.Fired, e.TotalChanges,
		e.Halted, e.CS.FiredKeys(), e.WM.Classes())

	if seq, err := snapshotSeq(data); err != nil || seq != 42 {
		t.Fatalf("snapshotSeq = %d, %v; want 42", seq, err)
	}
	st, err := decodeSnapshotV2(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if st.Seq != 42 || st.NextTag != e.WM.NextTag() || st.Cycles != e.Cycles ||
		st.Fired != e.Fired || st.TotalChanges != e.TotalChanges || st.Halted != e.Halted {
		t.Fatalf("header mismatch: %+v", st)
	}
	if len(st.FiredKeys) != len(e.CS.FiredKeys()) {
		t.Fatalf("fired keys: %d != %d", len(st.FiredKeys), len(e.CS.FiredKeys()))
	}
	want := map[int]string{}
	for _, w := range e.WM.Elements() {
		want[w.TimeTag] = w.String()
	}
	if len(st.WMEs) != len(want) {
		t.Fatalf("decoded %d WMEs, want %d", len(st.WMEs), len(want))
	}
	for _, w := range st.WMEs {
		if want[w.TimeTag] != w.String() {
			t.Fatalf("tag %d: decoded %q, want %q", w.TimeTag, w.String(), want[w.TimeTag])
		}
	}
}

// TestSnapshotV2RejectsCorruption flips each region of a valid v2
// snapshot and requires the loader to fail loudly rather than decode
// garbage: CRC damage, truncation, and trailing junk are all errors.
func TestSnapshotV2RejectsCorruption(t *testing.T) {
	wmes := mannersWM(t)
	sys := newManners(t, core.SerialRete, false)
	sys.Engine.Load(wmes)
	e := sys.Engine
	data := encodeSnapshotV2(7, e.WM.NextTag(), 0, 0, e.TotalChanges, false, nil, e.WM.Classes())
	if _, err := decodeSnapshotV2(data); err != nil {
		t.Fatalf("pristine snapshot failed to decode: %v", err)
	}

	for _, off := range []int{5, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := decodeSnapshotV2(bad); err == nil {
			t.Errorf("bit flip at %d decoded without error", off)
		}
	}
	for _, cut := range []int{len(data) - 1, len(data) / 2, 6} {
		if _, err := decodeSnapshotV2(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes decoded without error", cut)
		}
	}
	if _, err := decodeSnapshotV2(append(append([]byte(nil), data...), 0xEE)); err == nil {
		t.Error("trailing junk decoded without error")
	}
}
