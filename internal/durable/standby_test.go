package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/ops5"
)

// shipRun drives a Manners session with the onRecord tee feeding frames
// into the returned slice (one framed record per committed batch),
// exactly the stream the cluster shipper sees.
func shipRun(t *testing.T, dir string) (l *Log, frames [][]byte, final string) {
	t.Helper()
	sys := newManners(t, core.SerialRete, false)
	l, err := Create(dir, []byte(`{"program":"manners"}`), sys.Engine, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	l.SetOnRecord(func(seq int64, framed []byte) {
		frames = append(frames, framed)
	})
	sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := l.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
	}
	sys.Engine.Load(mannersWM(t))
	stepToEnd(t, sys.Engine)
	return l, frames, stateString(sys.Engine)
}

// TestStandbyShipAndPromote replays the full shipping protocol — initial
// snapshot install, then every teed WAL frame — into a Standby, then
// promotes the standby directory via ordinary crash recovery and checks
// the recovered engine is byte-identical to the owner.
func TestStandbyShipAndPromote(t *testing.T) {
	ownerDir := filepath.Join(t.TempDir(), "owner")
	l, frames, final := shipRun(t, ownerDir)
	defer l.Close()
	if len(frames) == 0 {
		t.Fatal("no frames teed")
	}

	st, err := OpenStandby(filepath.Join(t.TempDir(), "standby"))
	if err != nil {
		t.Fatalf("OpenStandby: %v", err)
	}
	// Records before a snapshot is installed must be refused with a gap.
	if _, _, err := st.AppendRecords(bytes.NewReader(frames[0])); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("append before snapshot: err = %v, want ErrSequenceGap", err)
	}
	// The initial attach ships the owner's manifest + snapshot. Create
	// wrote the initial (pre-run) snapshot at seq 0; re-read it from
	// disk the way the shipper's resync path would at attach time.
	manifest, err := os.ReadFile(filepath.Join(ownerDir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(ownerDir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.InstallSnapshot(manifest, snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	// Ship every frame, batched a few at a time like the shipper does.
	for i := 0; i < len(frames); i += 3 {
		end := min(i+3, len(frames))
		var batch bytes.Buffer
		for _, f := range frames[i:end] {
			batch.Write(f)
		}
		if _, n, err := st.AppendRecords(&batch); err != nil {
			t.Fatalf("AppendRecords: %v", err)
		} else if n != end-i {
			t.Fatalf("appended %d of %d records", n, end-i)
		}
	}
	ownerSeq, _, _, _ := l.Stats()
	if got := st.Seq(); got != ownerSeq {
		t.Fatalf("standby seq = %d, owner seq = %d", got, ownerSeq)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Promotion: the standby dir is recovered exactly like a crashed
	// owner dir.
	sys := newManners(t, core.SerialRete, true)
	rl, stats, err := Recover(st.Dir(), sys.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover promoted standby: %v", err)
	}
	defer rl.Close()
	if stats.Replayed != int64(len(frames)) {
		t.Fatalf("replayed %d records, want %d", stats.Replayed, len(frames))
	}
	if got := stateString(sys.Engine); got != final {
		t.Fatalf("promoted state differs from owner:\n got:\n%s\nwant:\n%s", got, final)
	}
}

// TestStandbyGapAndResync drops frames mid-stream, checks the gap is
// detected, then recovers with a snapshot re-ship plus the tail.
func TestStandbyGapAndResync(t *testing.T) {
	ownerDir := filepath.Join(t.TempDir(), "owner")
	l, frames, final := shipRun(t, ownerDir)
	defer l.Close()
	if len(frames) < 10 {
		t.Fatalf("need >= 10 frames, got %d", len(frames))
	}

	st, err := OpenStandby(filepath.Join(t.TempDir(), "standby"))
	if err != nil {
		t.Fatalf("OpenStandby: %v", err)
	}
	// Capture the seq-0 snapshot Create wrote before ExportState
	// replaces it with a fresh one at the current sequence.
	oldSnap, err := os.ReadFile(filepath.Join(ownerDir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	manifest, snap, snapSeq, err := l.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if snapSeq != int64(len(frames)) {
		t.Fatalf("export seq = %d, want %d", snapSeq, len(frames))
	}
	if seq, n, err := st.AppendRecords(bytes.NewReader(frames[0])); err == nil || seq != 0 || n != 0 {
		t.Fatalf("no-snapshot append: seq=%d n=%d err=%v", seq, n, err)
	}
	if _, err := st.InstallSnapshot(manifest, oldSnap); err != nil {
		t.Fatalf("install seq-0 snapshot: %v", err)
	}
	// Ship frames 0..4, drop 5, try 6 — gap.
	var head bytes.Buffer
	for _, f := range frames[:5] {
		head.Write(f)
	}
	if _, _, err := st.AppendRecords(&head); err != nil {
		t.Fatalf("head: %v", err)
	}
	if _, _, err := st.AppendRecords(bytes.NewReader(frames[6])); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("gap append: err = %v, want ErrSequenceGap", err)
	}
	// Re-shipping the current snapshot (newer than position 5) resyncs.
	if seq, err := st.InstallSnapshot(manifest, snap); err != nil || seq != snapSeq {
		t.Fatalf("resync install: seq=%d err=%v", seq, err)
	}
	// A stale snapshot can no longer be installed.
	if _, err := st.InstallSnapshot(manifest, oldSnap); !errors.Is(err, ErrStaleSnapshot) {
		t.Fatalf("stale install: err = %v, want ErrStaleSnapshot", err)
	}
	// Duplicates of covered records are ignored.
	if _, n, err := st.AppendRecords(bytes.NewReader(frames[2])); err != nil || n != 0 {
		t.Fatalf("covered duplicate: n=%d err=%v", n, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	sys := newManners(t, core.SerialRete, true)
	rl, _, err := Recover(st.Dir(), sys.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rl.Close()
	if got := stateString(sys.Engine); got != final {
		t.Fatalf("resynced state differs from owner:\n got:\n%s\nwant:\n%s", got, final)
	}
}

// TestStandbyReopen crashes a standby (torn trailing bytes on its WAL)
// and reopens it: position survives, the torn tail is truncated, and
// shipping resumes where it left off.
func TestStandbyReopen(t *testing.T) {
	ownerDir := filepath.Join(t.TempDir(), "owner")
	l, frames, _ := shipRun(t, ownerDir)
	defer l.Close()

	dir := filepath.Join(t.TempDir(), "standby")
	st, err := OpenStandby(dir)
	if err != nil {
		t.Fatalf("OpenStandby: %v", err)
	}
	manifest, err := os.ReadFile(filepath.Join(ownerDir, manifestFile))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(filepath.Join(ownerDir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	// Reopen with only a snapshot is the zero-records case.
	if _, err := st.InstallSnapshot(manifest, snap); err != nil {
		t.Fatal(err)
	}
	var half bytes.Buffer
	for _, f := range frames[:len(frames)/2] {
		half.Write(f)
	}
	if _, _, err := st.AppendRecords(&half); err != nil {
		t.Fatalf("AppendRecords: %v", err)
	}
	want := st.Seq()
	st.Close()

	// Tear the WAL tail: a partial frame of the next record.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	next := frames[len(frames)/2]
	if _, err := f.Write(next[:len(next)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := OpenStandby(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if got := st2.Seq(); got != want {
		t.Fatalf("reopened seq = %d, want %d", got, want)
	}
	// Shipping resumes: the torn record arrives again, whole this time.
	var rest bytes.Buffer
	for _, fr := range frames[len(frames)/2:] {
		rest.Write(fr)
	}
	if seq, _, err := st2.AppendRecords(&rest); err != nil || seq != int64(len(frames)) {
		t.Fatalf("resume: seq=%d err=%v, want seq=%d", seq, err, len(frames))
	}
}
