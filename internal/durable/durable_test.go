package durable

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/workload"
)

// newManners builds a Miss Manners system. Recovery targets are built
// with noInitialWM (the snapshot holds the post-load state).
func newManners(t *testing.T, matcher core.MatcherKind, noInitialWM bool) *core.System {
	t.Helper()
	sys, err := core.NewSystem(workload.MissManners, core.Options{
		Matcher: matcher, NoInitialWM: noInitialWM,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// mannersWM generates the deterministic guest list every run shares.
func mannersWM(t *testing.T) []*ops5.WME {
	t.Helper()
	p := workload.DefaultMannersParams()
	p.Guests = 6
	wmes, err := workload.MannersWM(p)
	if err != nil {
		t.Fatalf("MannersWM: %v", err)
	}
	return wmes
}

// stateString renders everything recovery promises to reproduce —
// working memory with time tags, the tag counter, the conflict set in
// LEX order, refraction marks, and the engine counters — as one string,
// so differential tests can assert byte-identity.
func stateString(e *engine.Engine) string {
	var b strings.Builder
	wmes := e.WM.Elements()
	sort.Slice(wmes, func(i, j int) bool { return wmes[i].TimeTag < wmes[j].TimeTag })
	for _, w := range wmes {
		b.WriteString(w.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "next-tag %d\n", e.WM.NextTag())
	for _, in := range e.CS.Instantiations() {
		b.WriteString(in.Key())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "fired %v\n", e.CS.FiredKeys())
	fmt.Fprintf(&b, "counters %d %d %d %v\n", e.Cycles, e.Fired, e.TotalChanges, e.Halted)
	return b.String()
}

// referenceRun executes the workload uninterrupted, capturing the
// engine state after every committed batch. states[i] is the state a
// recovery must reproduce after replaying WAL record i+1; final is the
// state at halt.
func referenceRun(t *testing.T, matcher core.MatcherKind, wmes []*ops5.WME) (states []string, final string) {
	t.Helper()
	sys := newManners(t, matcher, false)
	sys.Engine.Sink = func([]ops5.Change, []string) {
		states = append(states, stateString(sys.Engine))
	}
	sys.Engine.Load(wmes)
	stepToEnd(t, sys.Engine)
	return states, stateString(sys.Engine)
}

// stepToEnd runs recognize-act cycles until quiescence or halt.
func stepToEnd(t *testing.T, e *engine.Engine) {
	t.Helper()
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("workload did not terminate")
		}
		ok, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !ok {
			return
		}
	}
}

// crashRun drives a durable session until exactly stopAfter WAL records
// are committed, then abandons the log without Close — the on-disk
// state is what a kill -9 leaves behind (fsync=always: every
// acknowledged record is synced).
func crashRun(t *testing.T, dir string, matcher core.MatcherKind, wmes []*ops5.WME, stopAfter, snapEvery int) {
	t.Helper()
	sys := newManners(t, matcher, false)
	l, err := Create(dir, []byte(`{"program":"manners"}`), sys.Engine, Options{
		Fsync: FsyncAlways, SnapshotEvery: snapEvery,
	})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	records := 0
	sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := l.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
		records++
	}
	sys.Engine.Load(wmes)
	for records < stopAfter {
		ok, err := sys.Engine.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !ok {
			break
		}
	}
	if records != stopAfter {
		t.Fatalf("run committed %d records, wanted to crash at %d", records, stopAfter)
	}
}

// TestRecoverDifferential is the core crash-consistency check: run N
// cycles, kill mid-stream at several points, recover, and require the
// working memory and conflict set to be byte-identical to an
// uninterrupted run — then resume the recovered session to completion
// and require the final states to match too.
func TestRecoverDifferential(t *testing.T) {
	wmes := mannersWM(t)
	for _, matcher := range []core.MatcherKind{core.SerialRete, core.TREAT} {
		states, final := referenceRun(t, matcher, wmes)
		if len(states) < 8 {
			t.Fatalf("reference run too short: %d records", len(states))
		}
		crashPoints := []int{1, 3, len(states) / 2, len(states)}
		for _, snapEvery := range []int{0, 1, 4} {
			for _, crashAt := range crashPoints {
				name := fmt.Sprintf("%s/snap=%d/crash=%d", matcher, snapEvery, crashAt)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					crashRun(t, dir, matcher, wmes, crashAt, snapEvery)

					rsys := newManners(t, matcher, true)
					rlog, stats, err := Recover(dir, rsys.Engine, Options{Fsync: FsyncAlways})
					if err != nil {
						t.Fatalf("Recover: %v", err)
					}
					defer rlog.Close()
					if stats.Truncated {
						t.Fatalf("clean WAL reported truncation at %d", stats.TruncatedAt)
					}
					if got, want := stateString(rsys.Engine), states[crashAt-1]; got != want {
						t.Fatalf("recovered state diverged from reference:\n--- got ---\n%s--- want ---\n%s", got, want)
					}
					seq, snapSeq, _, _ := rlog.Stats()
					if seq != int64(crashAt) {
						t.Fatalf("recovered seq %d, want %d", seq, crashAt)
					}
					if stats.Replayed != seq-snapSeq {
						t.Fatalf("replayed %d records, want %d (seq %d, snapshot %d)",
							stats.Replayed, seq-snapSeq, seq, snapSeq)
					}

					// The recovered session must be a full citizen: keep
					// logging, run to completion, and still match the
					// uninterrupted run — and still be recoverable.
					rsys.Engine.Sink = func(ch []ops5.Change, fk []string) {
						if err := rlog.Append(ch, fk); err != nil {
							t.Errorf("Append after recovery: %v", err)
						}
					}
					stepToEnd(t, rsys.Engine)
					if got := stateString(rsys.Engine); got != final {
						t.Fatalf("resumed run diverged at halt:\n--- got ---\n%s--- want ---\n%s", got, final)
					}
					r2 := newManners(t, matcher, true)
					r2log, _, err := Recover(dir, r2.Engine, Options{})
					if err != nil {
						t.Fatalf("second Recover: %v", err)
					}
					defer r2log.Close()
					if got := stateString(r2.Engine); got != final {
						t.Fatalf("second recovery diverged at halt:\n--- got ---\n%s--- want ---\n%s", got, final)
					}
				})
			}
		}
	}
}

// TestRecoverTruncatedWAL injects the faults a crash mid-append leaves
// behind — a torn tail, a corrupted record, trailing garbage — and
// checks recovery truncates to the last intact record instead of
// failing, landing exactly on a state the uninterrupted run passed
// through.
func TestRecoverTruncatedWAL(t *testing.T) {
	wmes := mannersWM(t)
	states, final := referenceRun(t, core.SerialRete, wmes)
	const crashAt = 6
	walPath := func(dir string) string { return filepath.Join(dir, walFile) }

	cases := []struct {
		name      string
		mutate    func(t *testing.T, path string)
		wantState int // index into states after recovery
	}{
		{"tail cut mid-record", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}, crashAt - 2}, // last record torn: its batch was never acknowledged
		{"last record corrupted", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0x40 // flip a payload bit: CRC mismatch
			if err := os.WriteFile(path, data, 0o666); err != nil {
				t.Fatal(err)
			}
		}, crashAt - 2},
		{"garbage tail", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
				t.Fatal(err)
			}
		}, crashAt - 1}, // all committed records intact
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			crashRun(t, dir, core.SerialRete, wmes, crashAt, 0)
			tc.mutate(t, walPath(dir))

			rsys := newManners(t, core.SerialRete, true)
			rlog, stats, err := Recover(dir, rsys.Engine, Options{})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if !stats.Truncated {
				t.Fatal("recovery did not report the torn tail")
			}
			if got, want := stateString(rsys.Engine), states[tc.wantState]; got != want {
				t.Fatalf("recovered state diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if fi, err := os.Stat(walPath(dir)); err != nil || fi.Size() != stats.TruncatedAt {
				t.Fatalf("WAL size %v (err %v), want truncated to %d", fi.Size(), err, stats.TruncatedAt)
			}
			rlog.Close()

			// The truncated WAL is now clean: a second recovery sees no
			// fault, and the session resumes to the reference final state
			// (the lost cycle re-executes deterministically).
			r2 := newManners(t, core.SerialRete, true)
			r2log, stats2, err := Recover(dir, r2.Engine, Options{Fsync: FsyncAlways})
			if err != nil {
				t.Fatalf("second Recover: %v", err)
			}
			defer r2log.Close()
			if stats2.Truncated {
				t.Fatal("second recovery still sees a torn tail")
			}
			r2.Engine.Sink = func(ch []ops5.Change, fk []string) {
				if err := r2log.Append(ch, fk); err != nil {
					t.Errorf("Append: %v", err)
				}
			}
			stepToEnd(t, r2.Engine)
			if got := stateString(r2.Engine); got != final {
				t.Fatalf("resumed run diverged at halt:\n--- got ---\n%s--- want ---\n%s", got, final)
			}
		})
	}
}

// TestRecoverSkipsSnapshotCoveredRecords simulates a crash in the
// window between the snapshot rename and the WAL truncate: the WAL
// still holds records the snapshot already covers. Replay must skip
// them by sequence number, not apply them twice.
func TestRecoverSkipsSnapshotCoveredRecords(t *testing.T) {
	wmes := mannersWM(t)
	states, final := referenceRun(t, core.SerialRete, wmes)
	const crashAt = 5

	dir := t.TempDir()
	sys := newManners(t, core.SerialRete, false)
	l, err := Create(dir, []byte(`{}`), sys.Engine, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	records := 0
	sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := l.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
		records++
	}
	sys.Engine.Load(wmes)
	for records < crashAt {
		if ok, err := sys.Engine.Step(); err != nil || !ok {
			t.Fatalf("Step: ok=%v err=%v", ok, err)
		}
	}
	walPath := filepath.Join(dir, walFile)
	preSnapshot, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Undo the truncate the snapshot performed, as if the crash hit
	// first; then kill the session.
	if err := os.WriteFile(walPath, preSnapshot, 0o666); err != nil {
		t.Fatal(err)
	}

	rsys := newManners(t, core.SerialRete, true)
	rlog, stats, err := Recover(dir, rsys.Engine, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rlog.Close()
	if stats.SnapshotSeq != crashAt || stats.Replayed != 0 {
		t.Fatalf("snapshot seq %d replayed %d, want %d and 0", stats.SnapshotSeq, stats.Replayed, crashAt)
	}
	if got, want := stateString(rsys.Engine), states[crashAt-1]; got != want {
		t.Fatalf("recovered state diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Resume: new records land after the dead ones in the same file; a
	// later recovery must skip the dead prefix and replay the live tail.
	rsys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := rlog.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
	}
	stepToEnd(t, rsys.Engine)
	r2 := newManners(t, core.SerialRete, true)
	r2log, stats2, err := Recover(dir, r2.Engine, Options{})
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	defer r2log.Close()
	if stats2.Replayed == 0 {
		t.Fatal("second recovery replayed nothing; live tail lost")
	}
	if got := stateString(r2.Engine); got != final {
		t.Fatalf("second recovery diverged at halt:\n--- got ---\n%s--- want ---\n%s", got, final)
	}
}

// TestRunContextCancelSnapshotConsistent cancels RunContext mid-run and
// checks the session lands on a batch boundary: the context is only
// checked between cycles, so a snapshot taken right after cancellation
// recovers byte-identically, and the resumed run still reaches the
// reference final state. (Exercises the engine's cancellation contract
// end to end through the durability layer.)
func TestRunContextCancelSnapshotConsistent(t *testing.T) {
	wmes := mannersWM(t)
	_, final := referenceRun(t, core.SerialRete, wmes)

	dir := t.TempDir()
	sys := newManners(t, core.SerialRete, false)
	l, err := Create(dir, []byte(`{}`), sys.Engine, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	records := 0
	sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := l.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
		if records++; records == 5 {
			cancel() // mid-run: cycles are still pending
		}
	}
	sys.Engine.Load(wmes)
	if _, err := sys.Engine.RunContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext: %v, want context.Canceled", err)
	}
	if sys.Engine.Halted {
		t.Fatal("cancellation must not halt the session")
	}
	interrupted := stateString(sys.Engine)
	if _, err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot after cancel: %v", err)
	}

	rsys := newManners(t, core.SerialRete, true)
	rlog, _, err := Recover(dir, rsys.Engine, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rlog.Close()
	if got := stateString(rsys.Engine); got != interrupted {
		t.Fatalf("recovered state differs from the cancelled session:\n--- got ---\n%s--- want ---\n%s", got, interrupted)
	}
	rsys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := rlog.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
	}
	if _, err := rsys.Engine.RunContext(context.Background(), 0); err != nil {
		t.Fatalf("resumed RunContext: %v", err)
	}
	if got := stateString(rsys.Engine); got != final {
		t.Fatalf("resumed run diverged at halt:\n--- got ---\n%s--- want ---\n%s", got, final)
	}
}

// TestAutoSnapshotBoundsWAL checks SnapshotEvery checkpoints inline and
// resets the WAL tail, so replay work at recovery stays bounded.
func TestAutoSnapshotBoundsWAL(t *testing.T) {
	wmes := mannersWM(t)
	states, _ := referenceRun(t, core.SerialRete, wmes)
	const crashAt, snapEvery = 8, 3

	dir := t.TempDir()
	crashRun(t, dir, core.SerialRete, wmes, crashAt, snapEvery)
	rsys := newManners(t, core.SerialRete, true)
	rlog, stats, err := Recover(dir, rsys.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rlog.Close()
	if stats.SnapshotSeq != 6 || stats.Replayed != 2 {
		t.Fatalf("snapshot seq %d replayed %d, want 6 and 2 (SnapshotEvery=%d)",
			stats.SnapshotSeq, stats.Replayed, snapEvery)
	}
	if got, want := stateString(rsys.Engine), states[crashAt-1]; got != want {
		t.Fatalf("recovered state diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFsyncPolicies runs a clean close/recover round trip under every
// sync policy (interval and never rely on Close syncing the tail).
func TestFsyncPolicies(t *testing.T) {
	wmes := mannersWM(t)
	states, _ := referenceRun(t, core.SerialRete, wmes)
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			sys := newManners(t, core.SerialRete, false)
			l, err := Create(dir, []byte(`{}`), sys.Engine, Options{
				Fsync: policy, FsyncInterval: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			records := 0
			sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
				if err := l.Append(ch, fk); err != nil {
					t.Errorf("Append: %v", err)
				}
				records++
			}
			sys.Engine.Load(wmes)
			for records < 4 {
				if ok, err := sys.Engine.Step(); err != nil || !ok {
					t.Fatalf("Step: ok=%v err=%v", ok, err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			rsys := newManners(t, core.SerialRete, true)
			rlog, _, err := Recover(dir, rsys.Engine, Options{Fsync: policy})
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			defer rlog.Close()
			if got, want := stateString(rsys.Engine), states[3]; got != want {
				t.Fatalf("recovered state diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		got, err := ParseFsyncPolicy(policy.String())
		if err != nil || got != policy {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", policy.String(), got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted an unknown policy")
	}
}

func TestCreateGuards(t *testing.T) {
	dir := t.TempDir()
	sys := newManners(t, core.SerialRete, false)
	if _, err := Create(dir, []byte(`{broken`), sys.Engine, Options{}); err == nil {
		t.Fatal("Create accepted an invalid manifest")
	}
	l, err := Create(dir, []byte(`{"id":"a"}`), sys.Engine, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()
	if _, err := Create(dir, []byte(`{"id":"b"}`), sys.Engine, Options{}); err == nil {
		t.Fatal("Create reused a directory that already holds a session")
	}
}

func TestSessionDirsAndManifest(t *testing.T) {
	dataDir := t.TempDir()
	if dirs, err := SessionDirs(filepath.Join(dataDir, "missing")); err != nil || dirs != nil {
		t.Fatalf("missing data dir: dirs=%v err=%v", dirs, err)
	}
	manifest := []byte(`{"id":"s-1"}`)
	sys := newManners(t, core.SerialRete, false)
	l, err := Create(filepath.Join(dataDir, "aa"), manifest, sys.Engine, Options{})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer l.Close()
	// A stray non-session directory must be ignored.
	if err := os.MkdirAll(filepath.Join(dataDir, "zz-stray"), 0o777); err != nil {
		t.Fatal(err)
	}
	dirs, err := SessionDirs(dataDir)
	if err != nil {
		t.Fatalf("SessionDirs: %v", err)
	}
	if len(dirs) != 1 || dirs[0] != filepath.Join(dataDir, "aa") {
		t.Fatalf("SessionDirs = %v", dirs)
	}
	got, err := ReadManifest(dirs[0])
	if err != nil || string(got) != string(manifest) {
		t.Fatalf("ReadManifest = %q, %v", got, err)
	}
	// Remove deletes the directory so the session cannot resurrect.
	if err := l.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if dirs, _ := SessionDirs(dataDir); len(dirs) != 0 {
		t.Fatalf("session survived Remove: %v", dirs)
	}
}

// TestRecoverSnapshotEmptyWAL covers the state a crash leaves right
// after a snapshot truncated the WAL (and the state WAL shipping
// installs on a freshly caught-up standby): a snapshot plus a
// zero-length WAL. Recovery must restore the snapshot and replay
// nothing.
func TestRecoverSnapshotEmptyWAL(t *testing.T) {
	wmes := mannersWM(t)
	dir := t.TempDir()
	sys := newManners(t, core.SerialRete, false)
	l, err := Create(dir, []byte(`{"program":"manners"}`), sys.Engine, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	sys.Engine.Sink = func(ch []ops5.Change, fk []string) {
		if err := l.Append(ch, fk); err != nil {
			t.Errorf("Append: %v", err)
		}
	}
	sys.Engine.Load(wmes)
	stepToEnd(t, sys.Engine)
	want := stateString(sys.Engine)
	if _, err := l.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Abandon without Close: the snapshot just truncated the WAL, so
	// the on-disk state is snapshot + zero-length wal.log.
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("wal.log size = %v, err = %v; want zero-length file", fi, err)
	}

	rsys := newManners(t, core.SerialRete, true)
	rlog, stats, err := Recover(dir, rsys.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	defer rlog.Close()
	if stats.Replayed != 0 || stats.Truncated {
		t.Fatalf("stats = %+v, want 0 replayed, no truncation", stats)
	}
	if got := stateString(rsys.Engine); got != want {
		t.Fatalf("recovered state diverged:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A missing WAL (deleted between snapshot and crash is impossible,
	// but an operator copying snapshot-only state is not) behaves the
	// same way.
	if err := os.Remove(filepath.Join(dir, walFile)); err != nil {
		t.Fatal(err)
	}
	r2 := newManners(t, core.SerialRete, true)
	r2log, _, err := Recover(dir, r2.Engine, Options{})
	if err != nil {
		t.Fatalf("Recover without wal.log: %v", err)
	}
	defer r2log.Close()
	if got := stateString(r2.Engine); got != want {
		t.Fatalf("recovered state diverged with missing WAL:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
