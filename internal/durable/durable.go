// Package durable makes hosted rule-engine sessions survive crashes and
// restarts. The paper's state-saving argument (§3.1) — under 0.5% of
// working memory changes per recognize-act cycle — cuts both ways: the
// same low churn that makes incremental match cheap makes a session's
// evolution cheap to checkpoint incrementally. Each session gets a
// write-ahead log of committed change batches (length-prefixed,
// CRC32-framed records appended through the engine's ChangeLogSink
// hook) plus periodic snapshots of the full engine state (working
// memory with time tags, the tag counter, engine counters and the
// conflict set's refraction marks), written atomically via
// temp-file-then-rename. Recovery loads the latest snapshot, replays
// the WAL tail through the engine's apply path, and truncates at the
// first torn or corrupt record instead of failing — exactly the state
// every acknowledged request observed is reconstructed, byte for byte.
package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/sym"
)

// FsyncPolicy says when WAL appends reach stable storage.
type FsyncPolicy uint8

// The fsync policies, trading durability for append latency.
const (
	// FsyncAlways syncs after every record: an acknowledged batch is
	// never lost, at the price of one fsync per apply.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs on a background ticker: a crash loses at most
	// the last interval's records, appends stay memory-speed.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache: fastest, loses
	// whatever the kernel had not written back.
	FsyncNever
)

// String names the policy (the -fsync flag spelling).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return "always"
	}
}

// ParseFsyncPolicy converts a -fsync flag value to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return FsyncAlways, fmt.Errorf("durable: unknown fsync policy %q (always|interval|never)", s)
	}
}

// Options tunes one session log.
type Options struct {
	// Fsync selects the WAL sync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery takes an automatic snapshot after this many WAL
	// records, bounding replay work at recovery (0 = only explicit
	// snapshots).
	SnapshotEvery int
	// ObserveAppend, when set, receives the framed size of every
	// appended record (feeds psmd_wal_bytes_total).
	ObserveAppend func(bytes int)
	// ObserveSnapshot, when set, receives the duration and size of
	// every snapshot written (feeds psmd_snapshot_seconds).
	ObserveSnapshot func(d time.Duration, bytes int)
}

// The per-session file layout.
const (
	manifestFile = "manifest.json"
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"
)

// record is one WAL entry: the committed change batch plus the engine
// counters and refraction marks after it. Counters are absolute, so
// recovery sets rather than accumulates them.
type record struct {
	Seq          int64 `json:"seq"`
	Cycles       int   `json:"cycles"`
	Fired        int   `json:"fired"`
	TotalChanges int   `json:"total_changes"`
	// Clock is the engine's logical clock after the batch — the
	// determinism anchor for event expiry: replay restores it before
	// applying the batch, so TTL deadlines recompute to their original
	// values, and expiry batches themselves are ordinary delete records.
	// A record may carry a clock advance and no changes at all (a pure
	// AdvanceClock with nothing due); losing such an advance would let
	// later events compute different deadlines than the live run did.
	Clock     int64       `json:"clock,omitempty"`
	Expired   int         `json:"expired,omitempty"`
	Halted    bool        `json:"halted,omitempty"`
	FiredKeys []string    `json:"fired_keys,omitempty"`
	Changes   []walChange `json:"changes,omitempty"`
}

// walChange is one working-memory change on disk.
type walChange struct {
	Op    string              `json:"op"` // "i" insert | "d" delete
	Tag   int                 `json:"tag"`
	Class string              `json:"class,omitempty"`
	Attrs map[string]walValue `json:"attrs,omitempty"`
}

// walValue is an ops5.Value on disk, kind-tagged so symbols, numbers
// and nil round-trip exactly.
type walValue struct {
	Kind uint8   `json:"k"`
	Sym  string  `json:"s,omitempty"`
	Num  float64 `json:"n,omitempty"`
}

// snapshot is the full engine state at one WAL sequence number.
type snapshot struct {
	Seq          int64    `json:"seq"`
	NextTag      int      `json:"next_tag"`
	Cycles       int      `json:"cycles"`
	Fired        int      `json:"fired"`
	TotalChanges int      `json:"total_changes"`
	Halted       bool     `json:"halted,omitempty"`
	FiredKeys    []string `json:"fired_keys,omitempty"`
	WMEs         []walWME `json:"wmes"`
}

// walWME is one working-memory element on disk.
type walWME struct {
	Tag   int                 `json:"tag"`
	Class string              `json:"class"`
	Attrs map[string]walValue `json:"attrs,omitempty"`
}

// SnapshotInfo reports one written snapshot.
type SnapshotInfo struct {
	// Seq is the WAL sequence the snapshot captures; records at or
	// below it are dead.
	Seq int64
	// Bytes is the serialized snapshot size.
	Bytes int
	// WMEs is the number of working-memory elements captured.
	WMEs int
}

// Log is one session's durable state: an open WAL plus the latest
// snapshot, bound to the engine whose evolution it records. Append and
// Snapshot run on the session's owning goroutine; only the interval
// fsync ticker touches the log from elsewhere, under mu.
type Log struct {
	dir  string
	eng  *engine.Engine
	opts Options

	mu        sync.Mutex
	wal       *os.File
	seq       int64 // last appended (or replayed) record
	snapSeq   int64 // sequence captured by the latest snapshot
	records   int64 // records appended since that snapshot
	walBytes  int64 // live WAL bytes (since that snapshot)
	dirty     bool  // unsynced appends pending (interval policy)
	recovered bool  // this log was opened by Recover
	replayed  int64 // records replayed at recovery
	err       error // first append/sync failure; the log wedges
	closed    bool
	stop      chan struct{} // interval ticker shutdown
	done      chan struct{}

	// onRecord, when set, observes every appended record's framed bytes
	// in append order — the WAL-shipping tee (internal/cluster). Invoked
	// under mu, so it must be quick and non-blocking.
	onRecord func(seq int64, framed []byte)
}

// Create initialises durable state for a brand-new session: the
// manifest (opaque caller JSON, typically the create spec) is written
// first, then an initial snapshot of the engine's post-load state, then
// an empty WAL. It fails if the directory already holds a manifest —
// on-disk state is owned by exactly one session lifetime.
func Create(dir string, manifest []byte, eng *engine.Engine, opts Options) (*Log, error) {
	if !json.Valid(manifest) {
		return nil, fmt.Errorf("durable: manifest is not valid JSON")
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
		return nil, fmt.Errorf("durable: %s already holds a session manifest", dir)
	}
	if err := writeFileAtomic(filepath.Join(dir, manifestFile), manifest); err != nil {
		return nil, err
	}
	l, err := newLog(dir, eng, opts)
	if err != nil {
		return nil, err
	}
	if _, err := l.Snapshot(); err != nil {
		l.Close()
		return nil, err
	}
	return l, nil
}

// ReadManifest returns the manifest bytes written by Create.
func ReadManifest(dir string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, manifestFile))
}

// SessionDirs lists the session directories under a data dir (entries
// containing a manifest), sorted for deterministic recovery order.
func SessionDirs(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(dataDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, manifestFile)); err == nil {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// newLog opens the WAL and starts the interval ticker if configured.
func newLog(dir string, eng *engine.Engine, opts Options) (*Log, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, eng: eng, opts: opts, wal: wal}
	if opts.Fsync == FsyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.fsyncLoop()
	}
	return l, nil
}

// fsyncLoop syncs pending appends every FsyncInterval.
func (l *Log) fsyncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if l.dirty && l.err == nil {
				if err := l.wal.Sync(); err != nil {
					l.err = err
				}
				l.dirty = false
			}
			l.mu.Unlock()
		}
	}
}

// Dir returns the session's durable directory.
func (l *Log) Dir() string { return l.dir }

// Err returns the first write or sync failure. A failed log stops
// appending (the session keeps serving; durability is degraded, not
// the session).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Recovered reports whether this log was opened by Recover, and how
// many WAL records the recovery replayed.
func (l *Log) Recovered() (bool, int64) { return l.recovered, l.replayed }

// Stats snapshots the log's counters: last appended sequence, the
// sequence held by the latest snapshot, and records/bytes in the live
// WAL tail.
func (l *Log) Stats() (seq, snapSeq, records, walBytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq, l.snapSeq, l.records, l.walBytes
}

// Append logs one committed change batch with the engine's counters
// after it. It is the engine.ChangeLogSink for the session and runs on
// the owning goroutine, after working memory assigned tags and the
// matcher ran. When SnapshotEvery is reached, a snapshot is taken
// inline — the engine state is batch-consistent at this point.
func (l *Log) Append(changes []ops5.Change, firedKeys []string) error {
	l.mu.Lock()
	if l.err != nil || l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	rec := record{
		Seq:          l.seq + 1,
		Cycles:       l.eng.Cycles,
		Fired:        l.eng.Fired,
		TotalChanges: l.eng.TotalChanges,
		Clock:        l.eng.Clock,
		Expired:      l.eng.Expired,
		Halted:       l.eng.Halted,
		FiredKeys:    firedKeys,
		Changes:      encodeChanges(changes),
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	frame, err := frameRecord(payload)
	if err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	if _, err := l.wal.Write(frame); err != nil {
		l.err = err
		l.mu.Unlock()
		return err
	}
	n := len(frame)
	if l.opts.Fsync == FsyncAlways {
		if err := l.wal.Sync(); err != nil {
			l.err = err
			l.mu.Unlock()
			return err
		}
	} else {
		l.dirty = true
	}
	l.seq++
	l.records++
	l.walBytes += int64(n)
	if l.onRecord != nil {
		// The frame was marshalled fresh for this append, so ownership
		// passes to the observer.
		l.onRecord(l.seq, frame)
	}
	snapshotDue := l.opts.SnapshotEvery > 0 && l.records >= int64(l.opts.SnapshotEvery)
	l.mu.Unlock()

	if l.opts.ObserveAppend != nil {
		l.opts.ObserveAppend(n)
	}
	if snapshotDue {
		if _, err := l.Snapshot(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot checkpoints the engine's current state atomically (temp file
// then rename) and resets the WAL: records at or below the snapshot's
// sequence are dead, so the file is truncated. A crash between the
// rename and the truncate is benign — recovery skips records the
// snapshot already covers by sequence number. Runs on the owning
// goroutine.
func (l *Log) Snapshot() (SnapshotInfo, error) {
	t0 := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return SnapshotInfo{}, fmt.Errorf("durable: snapshot of closed log")
	}
	classes := l.eng.WM.Classes()
	nWMEs := 0
	for _, cr := range classes {
		nWMEs += len(cr.Rows)
	}
	// Format v3: binary columnar with the symbol table embedded, straight
	// off working memory's class rows, plus the logical clock and expiry
	// table (see snapv2.go).
	expTags, expDeadlines := l.eng.Expiries()
	payload := encodeSnapshotV3(l.seq, l.eng.WM.NextTag(), l.eng.Cycles,
		l.eng.Fired, l.eng.TotalChanges, l.eng.Halted, l.eng.CS.FiredKeys(), classes,
		l.eng.Clock, l.eng.Expired, expTags, expDeadlines)
	if err := writeFileAtomic(filepath.Join(l.dir, snapshotFile), payload); err != nil {
		return SnapshotInfo{}, err
	}
	// The WAL tail is now redundant. Truncation is an optimisation, not
	// a correctness requirement (replay skips by sequence), so its
	// failure does not wedge the log. O_APPEND writes continue at the
	// new end of file.
	if err := l.wal.Truncate(0); err == nil {
		l.records, l.walBytes = 0, 0
	}
	l.snapSeq = l.seq
	info := SnapshotInfo{Seq: l.seq, Bytes: len(payload), WMEs: nWMEs}
	if l.opts.ObserveSnapshot != nil {
		l.opts.ObserveSnapshot(time.Since(t0), info.Bytes)
	}
	return info, nil
}

// SetOnRecord installs (or clears, with nil) the record observer: fn
// receives every subsequently appended record's sequence number and
// framed bytes, in append order. It is the tee point for WAL shipping —
// fn runs with the log's lock held, so it must be quick and must not
// call back into the log.
func (l *Log) SetOnRecord(fn func(seq int64, framed []byte)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onRecord = fn
}

// ExportState checkpoints the session and returns the bytes a replica
// needs to mirror it from scratch: the manifest, the fresh snapshot
// payload, and the WAL sequence the snapshot captures. Records with
// greater sequence numbers layered on top reconstruct every later
// state. Runs on the owning goroutine, like Snapshot.
func (l *Log) ExportState() (manifest, snap []byte, seq int64, err error) {
	info, err := l.Snapshot()
	if err != nil {
		return nil, nil, 0, err
	}
	if manifest, err = os.ReadFile(filepath.Join(l.dir, manifestFile)); err != nil {
		return nil, nil, 0, err
	}
	if snap, err = os.ReadFile(filepath.Join(l.dir, snapshotFile)); err != nil {
		return nil, nil, 0, err
	}
	return manifest, snap, info.Seq, nil
}

// Close syncs and closes the WAL. The caller snapshots first if it
// wants a clean-shutdown checkpoint (psmd does, on SIGTERM).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop, done := l.stop, l.done
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Fsync != FsyncNever {
		if err := l.wal.Sync(); err != nil && l.err == nil {
			l.err = err
		}
	}
	return l.wal.Close()
}

// Remove deletes the session's durable directory. Called after Close
// when the session itself is deleted — a deleted session must not
// resurrect at the next restart.
func (l *Log) Remove() error { return os.RemoveAll(l.dir) }

// encodeChanges converts a committed batch for the WAL. Deletes only
// need the tag — recovery resolves the live element from working
// memory, which also keeps pointer identity intact for the matcher.
func encodeChanges(changes []ops5.Change) []walChange {
	if len(changes) == 0 {
		return nil
	}
	out := make([]walChange, len(changes))
	for i, ch := range changes {
		wc := walChange{Tag: ch.WME.TimeTag}
		if ch.Kind == ops5.Insert {
			wc.Op = "i"
			wc.Class = ch.WME.Class()
			wc.Attrs = encodeAttrs(ch.WME)
		} else {
			wc.Op = "d"
		}
		out[i] = wc
	}
	return out
}

// decodeChanges rebuilds a batch from the WAL for engine.Replay.
func decodeChanges(in []walChange) ([]ops5.Change, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make([]ops5.Change, len(in))
	for i, wc := range in {
		switch wc.Op {
		case "i":
			w := decodeWME(wc.Class, wc.Attrs)
			w.TimeTag = wc.Tag
			out[i] = ops5.Change{Kind: ops5.Insert, WME: w}
		case "d":
			out[i] = ops5.Change{Kind: ops5.Delete, WME: &ops5.WME{TimeTag: wc.Tag}}
		default:
			return nil, fmt.Errorf("durable: unknown change op %q", wc.Op)
		}
	}
	return out, nil
}

// encodeAttrs converts an element's fields for disk. WAL records are
// symbolic (names, not interned IDs): they must replay in a process
// with a different interning order, including cluster replicas the
// frames are shipped to verbatim.
func encodeAttrs(w *ops5.WME) map[string]walValue {
	fields := w.Fields()
	if len(fields) == 0 {
		return nil
	}
	out := make(map[string]walValue, len(fields))
	for _, f := range fields {
		v := f.Val
		out[sym.Name(f.Attr)] = walValue{Kind: uint8(v.Kind), Sym: v.SymName(), Num: v.Num}
	}
	return out
}

// decodeWME rebuilds an untagged element from its disk form, interning
// names into the local symbol table.
func decodeWME(class string, attrs map[string]walValue) *ops5.WME {
	fields := make([]ops5.Field, 0, len(attrs))
	for k, v := range attrs {
		fields = append(fields, ops5.Field{Attr: sym.Intern(k), Val: decodeValue(v)})
	}
	return ops5.NewFact(sym.Intern(class), fields)
}

// decodeValue rebuilds one attribute value from its disk form.
func decodeValue(v walValue) ops5.Value {
	switch ops5.ValueKind(v.Kind) {
	case ops5.SymValue:
		return ops5.Sym(v.Sym)
	case ops5.NumValue:
		return ops5.Num(v.Num)
	default:
		return ops5.Value{}
	}
}

// writeFileAtomic writes data so a crash leaves either the old file or
// the new one, never a torn mix: temp file in the same directory,
// fsync, rename over the target, fsync the directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename is durable. Errors are
// ignored on filesystems that do not support directory sync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	d.Sync() // best effort; some platforms return EINVAL
	return nil
}
