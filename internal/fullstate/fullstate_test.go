package fullstate_test

import (
	"math/rand"
	"testing"

	"repro/internal/fullstate"
	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/treat"
)

func runScript(t *testing.T, prods []*ops5.Production, script *matchtest.Script) *fullstate.Matcher {
	t.Helper()
	m, err := fullstate.New(prods)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove

	live := map[int]*ops5.WME{}
	for bi, batch := range script.Batches {
		for _, ch := range batch {
			if ch.Kind == ops5.Insert {
				live[ch.WME.TimeTag] = ch.WME
			} else {
				delete(live, ch.WME.TimeTag)
			}
		}
		m.Apply(batch)
		wmes := make([]*ops5.WME, 0, len(live))
		for _, w := range live {
			wmes = append(wmes, w)
		}
		want := matchtest.BruteForceKeys(prods, wmes)
		got := tr.Keys()
		if d := matchtest.Diff(want, got); d != "" {
			t.Fatalf("batch %d: conflict set mismatch:\n%s", bi, d)
		}
	}
	return m
}

func TestRandomizedCrossCheck(t *testing.T) {
	params := matchtest.DefaultGenParams()
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 25, 4)
		runScript(t, prods, script)
	}
}

func TestRandomizedCrossCheckNegation(t *testing.T) {
	params := matchtest.DefaultGenParams()
	params.NegProb = 0.5
	params.MaxCEs = 4
	for seed := int64(400); seed < 410; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 20, 3)
		runScript(t, prods, script)
	}
}

func TestDeferredConsistencyCornerCase(t *testing.T) {
	// CE1 binds <x>; CE2 and CE3 test it with predicates. The tuple
	// {CE2, CE3} alone has no binder for <x>, so its consistency must
	// be deferred or the full instantiation is never built when the
	// CE1 WME arrives last.
	src := `
(p pred-chain
    (base ^a <x>)
    (probe ^b > <x>)
    (probe ^c < <x>)
  -->
    (remove 1))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := fullstate.New([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove

	probe := ops5.NewWME("probe", "b", 9, "c", 1)
	probe.TimeTag = 1
	base := ops5.NewWME("base", "a", 5)
	base.TimeTag = 2
	// The probes arrive before the binder.
	m.Apply([]ops5.Change{{Kind: ops5.Insert, WME: probe}})
	m.Apply([]ops5.Change{{Kind: ops5.Insert, WME: base}})
	if got := len(tr.Keys()); got != 1 {
		t.Fatalf("conflict set size = %d, want 1 (binder arrived last)", got)
	}
	m.Apply([]ops5.Change{{Kind: ops5.Delete, WME: base}})
	if got := len(tr.Keys()); got != 0 {
		t.Fatalf("after binder delete, size = %d, want 0", got)
	}
}

func TestStateLargerThanTREAT(t *testing.T) {
	// §3.2: the full-state scheme stores strictly more than TREAT on
	// join-heavy workloads (all CE combinations vs alpha memories only).
	src := `
(p join3
    (a ^v <x>)
    (b ^v <x>)
    (c ^v <x>)
  -->
    (remove 1))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fullstate.New([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := treat.New([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	var batch []ops5.Change
	tag := 0
	for _, class := range []string{"a", "b", "c"} {
		for v := 0; v < 4; v++ {
			tag++
			w := ops5.NewWME(class, "v", v)
			w.TimeTag = tag
			batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: w})
		}
	}
	fs.Apply(batch)
	tm.Apply(batch)
	// TREAT stores 12 alpha entries. Full state stores those plus all
	// pairwise and triple combinations: strictly more.
	if fs.StateSize() <= 12 {
		t.Errorf("full state size = %d, want > 12 (TREAT's alpha-only state)", fs.StateSize())
	}
	if fs.Stats.TuplesCreated <= 12 {
		t.Errorf("tuples created = %d, want > 12", fs.Stats.TuplesCreated)
	}
}

func TestTooManyCEsRejected(t *testing.T) {
	lhs := make([]*ops5.CondElement, 17)
	for i := range lhs {
		lhs[i] = &ops5.CondElement{Class: "c"}
	}
	p := &ops5.Production{Name: "huge", LHS: lhs,
		RHS: []*ops5.Action{{Kind: ops5.ActHalt}}}
	if _, err := fullstate.New([]*ops5.Production{p}); err == nil {
		t.Error("expected rejection of 17 positive CEs")
	}
}
