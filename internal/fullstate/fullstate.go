// Package fullstate implements the high end of the state-saving
// spectrum discussed in §3.2 of the paper: Oflazer's scheme, which
// stores the consistent working-memory tuples for *every* combination
// of a production's condition elements (Rete stores only a fixed set of
// prefix combinations; TREAT stores none).
//
// The paper's two criticisms of this scheme are that (1) the state may
// become very large, and (2) much time is spent computing and deleting
// state that never results in a production entering or leaving the
// conflict set. Both are directly measurable here through Stats and
// StateSize, and experiment E13 compares the three algorithms' stored
// state on identical runs.
//
// Negated condition elements are handled as in this repository's TREAT:
// alpha memberships are kept per negated CE and the production's
// conflict-set filter is recomputed when one changes.
package fullstate

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ops5"
)

// tuple is a partial instantiation: WMEs for the positive CE positions
// of one subset (nil elsewhere).
type tuple struct {
	wmes []*ops5.WME // indexed by positive-CE ordinal, nil if not in subset
}

// key returns the canonical identity of a tuple within its subset.
func (t *tuple) key() string {
	parts := make([]string, 0, len(t.wmes))
	for i, w := range t.wmes {
		if w != nil {
			parts = append(parts, fmt.Sprintf("%d:%d", i, w.TimeTag))
		}
	}
	return strings.Join(parts, ",")
}

// prodState holds the full combination lattice for one production.
type prodState struct {
	prod *ops5.Production
	// posCEs maps positive-CE ordinal -> LHS index.
	posCEs []int
	// negCEs lists the LHS indices of negated CEs.
	negCEs []int
	// subsets maps a bitmask over positive-CE ordinals to that
	// combination's stored tuples, keyed canonically.
	subsets map[uint32]map[string]*tuple
	// negAlpha holds the alpha membership of each negated CE (indexed
	// as in negCEs), keyed by time tag.
	negAlpha []map[int]*ops5.WME
	// inConflict tracks which full tuples currently pass negation and
	// are in the conflict set, keyed by full-tuple key.
	inConflict map[string]*ops5.Instantiation
}

// Matcher is the full-state matcher. It satisfies engine.Matcher.
type Matcher struct {
	prods []*prodState

	// OnInsert and OnRemove receive conflict-set deltas.
	OnInsert func(*ops5.Instantiation)
	OnRemove func(*ops5.Instantiation)

	// Stats accumulates the work and state counters of §3.2.
	Stats Stats
}

// Stats counts the full-state matcher's work.
type Stats struct {
	Changes int
	// TuplesCreated counts tuples ever stored (including ones that are
	// later deleted without contributing a conflict-set change — the
	// §3.2 wasted work).
	TuplesCreated int64
	// TuplesDeleted counts tuples removed by WME deletions.
	TuplesDeleted int64
	// ConsistencyChecks counts binding-consistency evaluations.
	ConsistencyChecks int64
	// ConflictInserts and ConflictRemoves count conflict-set deltas.
	ConflictInserts int64
	ConflictRemoves int64
}

// New builds a full-state matcher. Productions with more than 16
// positive condition elements are rejected (2^k subsets are stored).
func New(prods []*ops5.Production) (*Matcher, error) {
	m := &Matcher{}
	for _, p := range prods {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		ps := &prodState{
			prod:       p,
			subsets:    make(map[uint32]map[string]*tuple),
			inConflict: make(map[string]*ops5.Instantiation),
		}
		for i, ce := range p.LHS {
			if ce.Negated {
				ps.negCEs = append(ps.negCEs, i)
				ps.negAlpha = append(ps.negAlpha, make(map[int]*ops5.WME))
			} else {
				ps.posCEs = append(ps.posCEs, i)
			}
		}
		if len(ps.posCEs) > 16 {
			return nil, fmt.Errorf("fullstate: production %s has %d positive CEs; the full-state lattice caps at 16",
				p.Name, len(ps.posCEs))
		}
		m.prods = append(m.prods, ps)
	}
	return m, nil
}

// StateSize returns the number of stored tuples plus negated-CE alpha
// entries — the paper's "amount of state" measure for §3.2.
func (m *Matcher) StateSize() int {
	n := 0
	for _, ps := range m.prods {
		for _, tuples := range ps.subsets {
			n += len(tuples)
		}
		for _, na := range ps.negAlpha {
			n += len(na)
		}
	}
	return n
}

// Apply processes a batch of WM changes in order.
func (m *Matcher) Apply(changes []ops5.Change) {
	for _, ch := range changes {
		for _, ps := range m.prods {
			m.applyOne(ps, ch)
		}
		m.Stats.Changes++
	}
}

func (m *Matcher) applyOne(ps *prodState, ch ops5.Change) {
	// Negated CE alpha maintenance.
	negTouched := false
	for ni, lhsIdx := range ps.negCEs {
		ce := ps.prod.LHS[lhsIdx]
		if !ops5.AlphaPass(ce, ch.WME) {
			continue
		}
		negTouched = true
		if ch.Kind == ops5.Insert {
			ps.negAlpha[ni][ch.WME.TimeTag] = ch.WME
		} else {
			delete(ps.negAlpha[ni], ch.WME.TimeTag)
		}
	}

	// Positive-CE lattice maintenance.
	var hits []int // positive-CE ordinals the WME matches
	for ord, lhsIdx := range ps.posCEs {
		if ops5.AlphaPass(ps.prod.LHS[lhsIdx], ch.WME) {
			hits = append(hits, ord)
		}
	}
	fullTouched := false
	switch {
	case ch.Kind == ops5.Insert && len(hits) > 0:
		fullTouched = m.insertWME(ps, ch.WME, hits)
	case ch.Kind == ops5.Delete && len(hits) > 0:
		fullTouched = m.deleteWME(ps, ch.WME)
	}
	if negTouched || fullTouched {
		m.refreshConflict(ps)
	}
}

// insertWME extends every subset containing a matched position, in
// ascending subset-size order, and reports whether the full combination
// changed.
func (m *Matcher) insertWME(ps *prodState, w *ops5.WME, hits []int) bool {
	k := len(ps.posCEs)
	full := uint32(1)<<k - 1
	// Enumerate subsets in ascending popcount so that extensions build
	// on already-updated smaller combinations.
	masks := make([]uint32, 0, 1<<k)
	for mask := uint32(1); mask <= full; mask++ {
		masks = append(masks, mask)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := popcount(masks[i]), popcount(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})
	fullTouched := false
	for _, mask := range masks {
		for _, ord := range hits {
			bit := uint32(1) << ord
			if mask&bit == 0 {
				continue
			}
			rest := mask &^ bit
			if rest == 0 {
				// Singleton subset {ord}.
				if m.storeTuple(ps, mask, singleton(k, ord, w)) && mask == full {
					fullTouched = true
				}
				continue
			}
			for _, base := range ps.subsets[rest] {
				if base.wmes[ord] != nil {
					continue // defensive; rest excludes ord by construction
				}
				cand := make([]*ops5.WME, k)
				copy(cand, base.wmes)
				cand[ord] = w
				if !m.consistent(ps, cand) {
					continue
				}
				if m.storeTuple(ps, mask, &tuple{wmes: cand}) && mask == full {
					fullTouched = true
				}
			}
		}
	}
	return fullTouched
}

// singleton builds a one-position tuple.
func singleton(k, ord int, w *ops5.WME) *tuple {
	wmes := make([]*ops5.WME, k)
	wmes[ord] = w
	return &tuple{wmes: wmes}
}

// storeTuple inserts a tuple into a subset, reporting whether it was new.
func (m *Matcher) storeTuple(ps *prodState, mask uint32, t *tuple) bool {
	tuples := ps.subsets[mask]
	if tuples == nil {
		tuples = make(map[string]*tuple)
		ps.subsets[mask] = tuples
	}
	key := t.key()
	if _, ok := tuples[key]; ok {
		return false
	}
	tuples[key] = t
	m.Stats.TuplesCreated++
	return true
}

// consistent checks binding consistency of the chosen WMEs by walking
// the positive CEs in LHS order with deferred semantics: predicate
// tests whose binder lies outside the subset pass for now and are
// re-evaluated when larger combinations are built. Deferred semantics
// make consistency downward-closed, which the lattice construction
// relies on (every consistent tuple is reachable by extending the
// consistent sub-tuple missing its newest member).
func (m *Matcher) consistent(ps *prodState, wmes []*ops5.WME) bool {
	m.Stats.ConsistencyChecks++
	b := ops5.Bindings{}
	for ord, lhsIdx := range ps.posCEs {
		w := wmes[ord]
		if w == nil {
			continue
		}
		nb, ok := ops5.MatchCEDeferred(ps.prod.LHS[lhsIdx], w, b)
		if !ok {
			return false
		}
		b = nb
	}
	return true
}

// deleteWME removes every tuple containing w and reports whether the
// full combination changed.
func (m *Matcher) deleteWME(ps *prodState, w *ops5.WME) bool {
	k := len(ps.posCEs)
	full := uint32(1)<<k - 1
	fullTouched := false
	for mask, tuples := range ps.subsets {
		for key, t := range tuples {
			for _, x := range t.wmes {
				if x == w {
					delete(tuples, key)
					m.Stats.TuplesDeleted++
					if mask == full {
						fullTouched = true
					}
					break
				}
			}
		}
	}
	return fullTouched
}

// refreshConflict recomputes which full tuples pass the negated CEs and
// emits conflict-set deltas.
func (m *Matcher) refreshConflict(ps *prodState) {
	k := len(ps.posCEs)
	full := uint32(1)<<k - 1
	fresh := make(map[string]*ops5.Instantiation)
	for _, t := range ps.subsets[full] {
		if inst, ok := m.instantiate(ps, t); ok {
			fresh[inst.Key()] = inst
		}
	}
	for key, inst := range ps.inConflict {
		if _, ok := fresh[key]; !ok {
			delete(ps.inConflict, key)
			m.Stats.ConflictRemoves++
			if m.OnRemove != nil {
				m.OnRemove(inst)
			}
		}
	}
	for key, inst := range fresh {
		if _, ok := ps.inConflict[key]; !ok {
			ps.inConflict[key] = inst
			m.Stats.ConflictInserts++
			if m.OnInsert != nil {
				m.OnInsert(inst)
			}
		}
	}
}

// instantiate builds the instantiation for a full tuple, evaluating the
// production's negated CEs at their LHS positions.
func (m *Matcher) instantiate(ps *prodState, t *tuple) (*ops5.Instantiation, bool) {
	wmes := make([]*ops5.WME, len(ps.prod.LHS))
	b := ops5.Bindings{}
	ord := 0
	ni := 0
	for lhsIdx, ce := range ps.prod.LHS {
		if ce.Negated {
			for _, x := range ps.negAlpha[ni] {
				m.Stats.ConsistencyChecks++
				if _, bad := ops5.MatchCE(ce, x, b); bad {
					return nil, false
				}
			}
			ni++
			continue
		}
		w := t.wmes[ord]
		nb, ok := ops5.MatchCE(ce, w, b)
		if !ok {
			return nil, false // cannot happen for consistent tuples
		}
		b = nb
		wmes[lhsIdx] = w
		ord++
	}
	return &ops5.Instantiation{Production: ps.prod, WMEs: wmes, Bindings: b}, true
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
