// Package partition implements static Rete-node-to-processor
// partitioning for non-shared-memory machines — the problem §5 of the
// paper cites as NP-complete in general (Oflazer's thesis) and as the
// reason to prefer a shared-memory architecture, where "all processors
// are capable of processing all node activations, and it is possible
// to assign processors to node activations at run-time".
//
// The partitioner here is the classic longest-processing-time (LPT)
// greedy heuristic with a swap-based local-search refinement, fed by
// per-node aggregate costs measured from an actual activation trace —
// an *oracle* workload estimate a real compile-time partitioner could
// never have. Even so, experiment E15 shows static partitioning loses
// badly to dynamic scheduling, because aggregate balance is not
// temporal balance: the nodes active within one recognize-act cycle
// cluster on few processors.
package partition

import (
	"sort"

	"repro/internal/trace"
)

// NodeCosts sums task costs per network node over a trace — the
// per-node workload an oracle partitioner would balance.
func NodeCosts(tr *trace.Trace) map[int]float64 {
	costs := make(map[int]float64)
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		costs[t.NodeID] += t.Cost
	}
	return costs
}

// LPT assigns nodes to processors by the longest-processing-time
// heuristic: nodes in decreasing cost order, each to the currently
// least-loaded processor. Guarantees load within 4/3 of optimal for
// the aggregate (but see the temporal-imbalance caveat above).
func LPT(nodeCost map[int]float64, procs int) map[int]int {
	if procs < 1 {
		procs = 1
	}
	type node struct {
		id   int
		cost float64
	}
	nodes := make([]node, 0, len(nodeCost))
	for id, c := range nodeCost {
		nodes = append(nodes, node{id, c})
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].cost != nodes[j].cost {
			return nodes[i].cost > nodes[j].cost
		}
		return nodes[i].id < nodes[j].id
	})
	load := make([]float64, procs)
	assign := make(map[int]int, len(nodes))
	for _, n := range nodes {
		best := 0
		for p := 1; p < procs; p++ {
			if load[p] < load[best] {
				best = p
			}
		}
		assign[n.id] = best
		load[best] += n.cost
	}
	return assign
}

// Refine improves an assignment by hill-climbing single-node moves:
// repeatedly move a node from the most-loaded processor to the
// least-loaded one when that lowers the maximum load. rounds bounds
// the number of moves.
func Refine(assign map[int]int, nodeCost map[int]float64, procs, rounds int) map[int]int {
	out := make(map[int]int, len(assign))
	for k, v := range assign {
		out[k] = v
	}
	for r := 0; r < rounds; r++ {
		load := Loads(out, nodeCost, procs)
		hi, lo := 0, 0
		for p := 1; p < procs; p++ {
			if load[p] > load[hi] {
				hi = p
			}
			if load[p] < load[lo] {
				lo = p
			}
		}
		// Find the node on hi whose move best reduces the max load.
		bestNode, bestGain := -1, 0.0
		for id, p := range out {
			if p != hi {
				continue
			}
			c := nodeCost[id]
			if c <= 0 {
				continue
			}
			newHi := load[hi] - c
			newLo := load[lo] + c
			gain := load[hi] - max2(newHi, newLo)
			if gain > bestGain {
				bestGain = gain
				bestNode = id
			}
		}
		if bestNode < 0 {
			return out
		}
		out[bestNode] = lo
	}
	return out
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Loads returns per-processor aggregate load under an assignment.
func Loads(assign map[int]int, nodeCost map[int]float64, procs int) []float64 {
	load := make([]float64, procs)
	for id, p := range assign {
		if p >= 0 && p < procs {
			load[p] += nodeCost[id]
		}
	}
	return load
}

// Imbalance returns max/mean processor load (1.0 = perfectly balanced).
func Imbalance(assign map[int]int, nodeCost map[int]float64, procs int) float64 {
	load := Loads(assign, nodeCost, procs)
	var sum, maxL float64
	for _, l := range load {
		sum += l
		if l > maxL {
			maxL = l
		}
	}
	if sum == 0 {
		return 1
	}
	return maxL / (sum / float64(procs))
}
