package partition_test

import (
	"testing"
	"testing/quick"

	"repro/internal/partition"
	"repro/internal/psm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestLPTBalances(t *testing.T) {
	costs := map[int]float64{1: 10, 2: 10, 3: 10, 4: 10, 5: 20, 6: 20}
	assign := partition.LPT(costs, 4)
	if got := partition.Imbalance(assign, costs, 4); got > 1.1 {
		t.Errorf("imbalance = %.2f, want near 1 for this easy instance", got)
	}
	// All nodes assigned to valid processors.
	for id, p := range assign {
		if p < 0 || p >= 4 {
			t.Errorf("node %d on processor %d", id, p)
		}
	}
}

func TestRefineNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		costs := map[int]float64{}
		s := seed
		for i := 0; i < 20; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			c := float64((s>>33)%97) + 1
			costs[i] = c
		}
		// A deliberately bad assignment: everything on processor 0.
		bad := map[int]int{}
		for id := range costs {
			bad[id] = 0
		}
		before := partition.Imbalance(bad, costs, 4)
		after := partition.Imbalance(partition.Refine(bad, costs, 4, 100), costs, 4)
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNodeCosts(t *testing.T) {
	tr := &trace.Trace{Tasks: []trace.Task{
		{NodeID: 1, Cost: 10}, {NodeID: 1, Cost: 5}, {NodeID: 2, Cost: 7},
	}}
	costs := partition.NodeCosts(tr)
	if costs[1] != 15 || costs[2] != 7 {
		t.Errorf("costs = %v", costs)
	}
}

func TestStaticPartitionLosesToDynamic(t *testing.T) {
	// The §5 claim: even an oracle static partition (built from the
	// very trace it will run) loses to dynamic shared-memory
	// scheduling, because aggregate balance is not temporal balance.
	p, _ := workload.SystemByName("r1-soar")
	p.Cycles = 60
	tr := workload.Generate(p)

	costs := partition.NodeCosts(tr)
	assign := partition.Refine(partition.LPT(costs, 32), costs, 32, 200)
	if im := partition.Imbalance(assign, costs, 32); im > 1.3 {
		t.Fatalf("oracle aggregate imbalance = %.2f; LPT should balance aggregates well", im)
	}

	dynamic := psm.Simulate(tr, psm.DefaultConfig(32))
	static := psm.DefaultConfig(32)
	static.NodeAssignment = assign
	pinned := psm.Simulate(tr, static)

	if pinned.TrueSpeedup >= dynamic.TrueSpeedup {
		t.Errorf("static (%.2f) should lose to dynamic (%.2f)",
			pinned.TrueSpeedup, dynamic.TrueSpeedup)
	}
	if pinned.TrueSpeedup > dynamic.TrueSpeedup*0.8 {
		t.Errorf("static (%.2f) should lose clearly, dynamic %.2f",
			pinned.TrueSpeedup, dynamic.TrueSpeedup)
	}
}
