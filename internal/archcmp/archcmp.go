// Package archcmp models the §7 comparison between the paper's
// Production System Machine and the four contemporary proposals: DADO
// (with parallel Rete and with TREAT), NON-VON, Oflazer's machine, and
// PESA-1.
//
// The original machines no longer exist (several were never built), so
// each is represented by the paper's reported predicted throughput plus
// a small first-principles throughput model with the architecture's
// published parameters:
//
//	throughput = exploitedParallelism × perProcessorMIPS / instrPerChange
//
// where exploitedParallelism is bounded by the intrinsic parallelism of
// OPS5 programs (~30 affected productions per change, §4) discounted by
// an architecture efficiency factor (tree communication bottlenecks,
// weak processors, partition imbalance) and instrPerChange reflects the
// algorithm's state-storing strategy on that processor word size.
package archcmp

import "fmt"

// Machine describes one architecture in the comparison.
type Machine struct {
	// Name of the machine (and algorithm variant).
	Name string
	// Processors is the machine's processor count.
	Processors int
	// MIPSPerProc is each processor's speed in MIPS.
	MIPSPerProc float64
	// Algorithm names the match algorithm used.
	Algorithm string
	// InstrPerChange is the serial instruction cost of one WM change on
	// this machine's processors (narrow processors pay a word-size
	// penalty over the paper's 32-bit measurements).
	InstrPerChange float64
	// Efficiency discounts the intrinsic parallelism for the
	// architecture's communication and load-balance limits.
	Efficiency float64
	// ReportedWMEPerSec is the throughput the paper quotes.
	ReportedWMEPerSec float64
	// Notes summarises why the machine performs as it does (§7).
	Notes string
}

// IntrinsicParallelism is the usable fine-grain parallelism in OPS5
// programs: ~30 affected productions per change with ~1.5 activations
// each, over a few parallel WM changes, discounted by cost variance.
// (§4/§6 measure ~16-fold achievable concurrency; unbounded-processor
// simulations reach the low tens.)
const IntrinsicParallelism = 32.0

// ModelWMEPerSec computes the model throughput of the machine.
func (m Machine) ModelWMEPerSec() float64 {
	par := IntrinsicParallelism * m.Efficiency
	if p := float64(m.Processors); par > p {
		par = p
	}
	return par * m.MIPSPerProc * 1e6 / m.InstrPerChange
}

// Machines returns the §7 comparison set, excluding the PSM itself
// (whose throughput comes from the simulator, not a model).
//
// Word-size penalty: DADO's 8751s and NON-VON's SPEs are 8-bit parts,
// so the ~1800 32-bit instructions of one WM change cost ≈ 3x more
// instructions there. Oflazer's scheme stores state for all CE
// combinations, so each change touches more state (higher
// InstrPerChange) but with less variance.
func Machines() []Machine {
	return []Machine{
		{
			Name: "DADO (parallel Rete)", Processors: 16384, MIPSPerProc: 0.5,
			Algorithm: "Rete", InstrPerChange: 5400, Efficiency: 0.06,
			ReportedWMEPerSec: 175,
			Notes:             "binary tree of 8-bit 8751s; PM-level partitioning leaves most processors idle",
		},
		{
			Name: "DADO (TREAT)", Processors: 16384, MIPSPerProc: 0.5,
			Algorithm: "TREAT", InstrPerChange: 4600, Efficiency: 0.062,
			ReportedWMEPerSec: 215,
			Notes:             "recomputing joins suits the WM-subtree's associative match; slightly better than Rete on DADO",
		},
		{
			Name: "NON-VON", Processors: 16032, MIPSPerProc: 3.0,
			Algorithm: "Rete", InstrPerChange: 5400, Efficiency: 0.11,
			ReportedWMEPerSec: 2000,
			Notes:             "32 LPEs + 16K SPEs at 3 MIPS; six-times-faster processing elements than DADO",
		},
		{
			Name: "Oflazer's machine", Processors: 512, MIPSPerProc: 7.5,
			Algorithm: "full-state (all CE combinations)", InstrPerChange: 2600, Efficiency: 0.065,
			ReportedWMEPerSec: 5750, // midpoint of the paper's 4500-7000
			Notes:             "tree of 16-bit processors; extra state costs garbage collection and forbids parallel WM changes",
		},
		{
			Name: "PESA-1", Processors: 256, MIPSPerProc: 2.0,
			Algorithm: "Rete (dataflow)", InstrPerChange: 1800, Efficiency: 0.25,
			ReportedWMEPerSec: 0, // the paper had no estimate
			Notes:             "tagged dataflow mapping of the Rete graph; the paper expects performance close to the PSM",
		},
	}
}

// Row is one line of the §7 comparison table.
type Row struct {
	Machine           string
	Processors        int
	MIPSPerProc       float64
	Algorithm         string
	ReportedWMEPerSec float64
	ModelWMEPerSec    float64
}

// Compare builds the comparison table. psmWME is the simulated PSM
// throughput (from internal/psm) and psmProcs/psmMIPS its
// configuration; the PSM row's "reported" value is the paper's 9400.
func Compare(psmWME float64, psmProcs int, psmMIPS float64) []Row {
	rows := []Row{{
		Machine:           "PSM (this paper)",
		Processors:        psmProcs,
		MIPSPerProc:       psmMIPS,
		Algorithm:         "parallel Rete",
		ReportedWMEPerSec: 9400,
		ModelWMEPerSec:    psmWME,
	}}
	for _, m := range Machines() {
		rows = append(rows, Row{
			Machine:           m.Name,
			Processors:        m.Processors,
			MIPSPerProc:       m.MIPSPerProc,
			Algorithm:         m.Algorithm,
			ReportedWMEPerSec: m.ReportedWMEPerSec,
			ModelWMEPerSec:    m.ModelWMEPerSec(),
		})
	}
	return rows
}

// String renders a row for logs.
func (r Row) String() string {
	return fmt.Sprintf("%-22s procs=%-6d mips=%-4.1f reported=%-6.0f model=%-6.0f",
		r.Machine, r.Processors, r.MIPSPerProc, r.ReportedWMEPerSec, r.ModelWMEPerSec)
}
