package archcmp_test

import (
	"testing"

	"repro/internal/archcmp"
)

func TestModelsMatchReportedNumbers(t *testing.T) {
	// Each architecture's first-principles model must land within 30%
	// of the throughput the paper reports for it.
	for _, m := range archcmp.Machines() {
		if m.ReportedWMEPerSec == 0 {
			continue // PESA-1 had no published estimate
		}
		got := m.ModelWMEPerSec()
		lo, hi := m.ReportedWMEPerSec*0.7, m.ReportedWMEPerSec*1.3
		if got < lo || got > hi {
			t.Errorf("%s: model %.0f wme/s, paper %.0f (want ±30%%)",
				m.Name, got, m.ReportedWMEPerSec)
		}
	}
}

func TestPaperRankingPreserved(t *testing.T) {
	rows := archcmp.Compare(9000, 32, 2.0)
	speed := map[string]float64{}
	for _, r := range rows {
		speed[r.Machine] = r.ModelWMEPerSec
	}
	// §7: PSM > Oflazer > NON-VON > DADO(TREAT) > DADO(Rete).
	order := []string{
		"PSM (this paper)",
		"Oflazer's machine",
		"NON-VON",
		"DADO (TREAT)",
		"DADO (parallel Rete)",
	}
	for i := 1; i < len(order); i++ {
		if speed[order[i-1]] <= speed[order[i]] {
			t.Errorf("ranking violated: %s (%.0f) should beat %s (%.0f)",
				order[i-1], speed[order[i-1]], order[i], speed[order[i]])
		}
	}
}

func TestCompareIncludesPSMFirst(t *testing.T) {
	rows := archcmp.Compare(1234, 32, 2.0)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].Machine != "PSM (this paper)" || rows[0].ModelWMEPerSec != 1234 {
		t.Errorf("PSM row = %+v", rows[0])
	}
	if rows[0].ReportedWMEPerSec != 9400 {
		t.Errorf("PSM reported = %f, want the paper's 9400", rows[0].ReportedWMEPerSec)
	}
}

func TestParallelismCappedByProcessors(t *testing.T) {
	m := archcmp.Machine{
		Name: "tiny", Processors: 1, MIPSPerProc: 1,
		InstrPerChange: 1000, Efficiency: 1.0,
	}
	// With one processor the exploited parallelism caps at 1:
	// 1 proc * 1 MIPS / 1000 instr = 1000 wme/s.
	if got := m.ModelWMEPerSec(); got != 1000 {
		t.Errorf("capped throughput = %f, want 1000", got)
	}
}
