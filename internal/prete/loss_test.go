package prete

// Tests for the loss-factor accounting (loss.go). The load-bearing
// property is the accounting identity: because every worker code path
// stamps its phase clock before handing off — including the spawn gap
// before loop entry — seed + merge + (summed worker phases)/workers
// must reconstruct Apply wall time. The identity is what makes the
// decomposition trustworthy: if phases leaked time, the §6-style shares
// would be fiction.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
)

// applyScript runs a generated script through a fresh-ish matcher,
// discarding conflict-set output (correctness is cross-checked
// elsewhere; these tests only care about the timing books).
func applyScript(t *testing.T, m *Matcher, script *matchtest.Script) {
	t.Helper()
	m.OnInsert = func(*ops5.Instantiation) {}
	m.OnRemove = func(*ops5.Instantiation) {}
	for _, batch := range script.Batches {
		m.Apply(batch)
	}
}

func lossMatcher(t *testing.T, workers int, batches, maxBatch int) (*Matcher, *matchtest.Script) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	params := matchtest.IndexStressGenParams()
	prods := matchtest.RandomProgram(rng, params)
	script := matchtest.RandomScript(rng, params, batches, maxBatch)
	m, err := New(prods, workers)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	return m, script
}

// phaseSum totals the aggregated phase seconds of a report.
func phaseSum(l LossReport) float64 {
	var s float64
	for _, p := range l.Phases {
		s += p.Seconds
	}
	return s
}

// TestLossPhasesReconstructWall checks the accounting identity at the
// worker counts the acceptance criterion names: seed + merge + summed
// worker phase time divided by the lane count reconstructs Apply wall
// time within 5%. The unaccounted remainder is one-sided — each lane's
// books stop at its loop exit, slightly before wg.Wait returns — so the
// reconstruction may undershoot but never overshoot materially.
func TestLossPhasesReconstructWall(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		m, script := lossMatcher(t, workers, 60, 12)
		applyScript(t, m, script)
		l := m.Loss()
		if l.ApplySeconds <= 0 {
			t.Fatalf("workers=%d: no apply time recorded", workers)
		}
		rebuilt := l.SeedSeconds + l.MergeSeconds + phaseSum(l)/float64(l.Workers)
		relErr := math.Abs(rebuilt-l.ApplySeconds) / l.ApplySeconds
		if relErr > 0.05 {
			t.Errorf("workers=%d: phases reconstruct %.6fs of %.6fs apply wall (%.1f%% off, want <=5%%)",
				workers, rebuilt, l.ApplySeconds, 100*relErr)
		}
	}
}

// TestLossReportAccumulates checks the report is stable across repeated
// Apply: counters only grow, the decomposition shares always partition
// the budget, and the derived ratios stay finite.
func TestLossReportAccumulates(t *testing.T) {
	m, script := lossMatcher(t, 4, 20, 8)
	applyScript(t, m, script)
	first := m.Loss()
	applyScript(t, m, script)
	second := m.Loss()

	if second.Batches != 2*first.Batches {
		t.Errorf("batches: %d then %d, want doubling", first.Batches, second.Batches)
	}
	if second.ApplySeconds <= first.ApplySeconds {
		t.Errorf("apply seconds not monotone: %.6f then %.6f", first.ApplySeconds, second.ApplySeconds)
	}
	for i, p := range second.Phases {
		if p.Seconds < first.Phases[i].Seconds {
			t.Errorf("phase %s shrank: %.6f then %.6f", p.Phase, first.Phases[i].Seconds, p.Seconds)
		}
	}
	for i, b := range second.TaskSizes {
		if b.Count < first.TaskSizes[i].Count {
			t.Errorf("task bucket %d shrank: %d then %d", i, first.TaskSizes[i].Count, b.Count)
		}
	}
	for _, l := range []LossReport{first, second} {
		var shares float64
		for _, c := range l.Decomposition {
			if c.Share < 0 {
				t.Errorf("negative share %q: %g", c.Name, c.Share)
			}
			shares += c.Share
		}
		// "other" is the clamped remainder, so shares partition the
		// budget exactly unless the books overran it (clamp at zero),
		// which the reconstruct test bounds anyway.
		if shares < 0.99 || shares > 1.05 {
			t.Errorf("decomposition shares sum to %g, want ~1", shares)
		}
		for _, v := range []float64{l.TrueSpeedup, l.NominalConcurrency, l.LossFactor} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Errorf("derived ratio not finite-positive: speedup=%g nominal=%g loss=%g",
					l.TrueSpeedup, l.NominalConcurrency, l.LossFactor)
			}
		}
	}
}

// TestPhaseStampZeroAlloc pins the hot-path cost: stamping a phase
// boundary must not allocate — it runs on every activation.
func TestPhaseStampZeroAlloc(t *testing.T) {
	var c phaseClock
	c.last = nanotime()
	if n := testing.AllocsPerRun(1000, func() {
		c.stamp(phaseMatch)
		c.stamp(phaseSubmit)
	}); n != 0 {
		t.Fatalf("phaseClock.stamp allocates %v per run, want 0", n)
	}
}

// TestTaskBucketBounds pins the histogram edges: each configured bound
// maps to its own bucket and anything above the last bound lands in the
// open top bucket.
func TestTaskBucketBounds(t *testing.T) {
	for i, ub := range taskBucketNanos {
		if got := taskBucket(ub); got != i {
			t.Errorf("taskBucket(%d) = %d, want %d", ub, got, i)
		}
		if got := taskBucket(ub + 1); got != i+1 {
			t.Errorf("taskBucket(%d) = %d, want %d", ub+1, got, i+1)
		}
	}
	if got := taskBucket(1 << 40); got != numTaskBuckets-1 {
		t.Errorf("huge task bucket = %d, want %d", got, numTaskBuckets-1)
	}
}
