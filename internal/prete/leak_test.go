package prete

// Goroutine-lifecycle tests for the resident worker pool. The pool is
// lazy (no goroutines until the first batch that actually wakes it) and
// Close must be a full join: when Close returns, every resident worker
// has exited and the matcher keeps working in inline mode. These tests
// pin both halves, plus the Apply/Close race under -race.

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/matchtest"
	"repro/internal/ops5"
)

// waitGoroutines polls until the live goroutine count drops to at most
// want, or the deadline passes. Close joins the workers before
// returning, but the runtime may take a beat to deregister an exiting
// goroutine after its final deferred Done.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: have %d, want <= %d", runtime.NumGoroutine(), want)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// poolMatcher builds a matcher whose pool is guaranteed to wake:
// serial bypass is disabled, so any multi-worker batch broadcasts.
func poolMatcher(t *testing.T, workers int) (*Matcher, func()) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	params := matchtest.IndexStressGenParams()
	prods := matchtest.RandomProgram(rng, params)
	script := matchtest.RandomScript(rng, params, 6, 12)
	m, err := NewWithConfig(prods, Config{Workers: workers, SerialThreshold: -1})
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	m.OnInsert = func(*ops5.Instantiation) {}
	m.OnRemove = func(*ops5.Instantiation) {}
	apply := func() {
		for _, batch := range script.Batches {
			m.Apply(batch)
		}
	}
	return m, apply
}

func TestCloseStopsResidentWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	m, apply := poolMatcher(t, 8)

	// The pool is lazy: nothing resident before the first wake.
	if got := m.Stats().ResidentWorkers; got != 0 {
		t.Fatalf("resident workers before first Apply = %d, want 0", got)
	}
	apply()
	st := m.Stats()
	if st.ResidentWorkers != 8 {
		t.Fatalf("resident workers after Apply = %d, want 8", st.ResidentWorkers)
	}
	if st.Wakeups == 0 {
		t.Fatal("bypass disabled but no wakeups recorded")
	}
	if n := runtime.NumGoroutine(); n < base+8 {
		t.Fatalf("goroutine count %d after wake, want >= base(%d)+8", n, base)
	}

	m.Close()
	// Close joins workerWG, and each worker decrements the resident
	// gauge before Done — so this is exact, not eventual.
	if got := m.Stats().ResidentWorkers; got != 0 {
		t.Fatalf("resident workers after Close = %d, want 0", got)
	}
	waitGoroutines(t, base)

	// Close is idempotent and the matcher stays usable: later batches
	// run inline on the caller.
	m.Close()
	before := m.Stats().Tasks
	apply()
	after := m.Stats()
	if after.Tasks <= before {
		t.Fatalf("post-Close Apply executed no tasks (%d -> %d)", before, after.Tasks)
	}
	if after.ResidentWorkers != 0 {
		t.Fatalf("post-Close Apply revived %d resident workers", after.ResidentWorkers)
	}
	waitGoroutines(t, base)
}

// TestApplyCloseRace overlaps a stream of Apply calls with a Close from
// another goroutine. Run under -race (make race covers this package):
// the requirement is no panic, no deadlock, and no worker left parked —
// Apply either wakes the pool before Close lands or falls back inline.
func TestApplyCloseRace(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 8; round++ {
		m, apply := poolMatcher(t, 4)
		done := make(chan struct{})
		go func() {
			defer close(done)
			apply()
		}()
		if round%2 == 1 {
			runtime.Gosched() // vary interleaving: sometimes mid-batch
		}
		m.Close()
		<-done
		// Matcher must still answer inline after the racing Close.
		apply()
		if got := m.Stats().ResidentWorkers; got != 0 {
			t.Fatalf("round %d: %d resident workers after Close", round, got)
		}
	}
	waitGoroutines(t, base)
}
