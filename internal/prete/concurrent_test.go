package prete_test

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/prete"
)

// TestIndexInfoConcurrentWithApply hammers the introspection surface
// (IndexInfo, Stats, NodeProfile) from probe goroutines while the main
// goroutine streams change batches through Apply. The -race build of
// this test is the contract that introspection takes stripe locks
// correctly and never reads matcher state unsynchronized mid-batch.
func TestIndexInfoConcurrentWithApply(t *testing.T) {
	params := matchtest.IndexStressGenParams()
	rng := rand.New(rand.NewSource(424242))
	prods := matchtest.RandomProgram(rng, params)
	script := matchtest.RandomScript(rng, params, 40, 10)

	m, err := prete.NewWithConfig(prods, prete.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Conflict-set callbacks fire on the Apply caller's goroutine (at
	// flush), so the tracker needs no extra locking here.
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				info := m.IndexInfo()
				if info.Buckets < 0 {
					t.Error("negative bucket count")
					return
				}
				_ = m.Stats()
				_ = m.NodeProfile()
			}
		}()
	}
	for _, batch := range script.Batches {
		m.Apply(batch)
	}
	close(stop)
	wg.Wait()

	// A final probe after the run must see settled totals.
	info := m.IndexInfo()
	if info.IndexedNodes+info.FallbackNodes == 0 {
		t.Error("IndexInfo reports no two-input nodes after applying a full script")
	}
	_ = tr.Keys() // panics on negative/duplicate counts
}
