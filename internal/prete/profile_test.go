package prete_test

import (
	"testing"

	"repro/internal/ops5"
	"repro/internal/prete"
)

func TestNodeProfileCountsParallelWork(t *testing.T) {
	src := `
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
  -->
    (modify 2 ^selected yes))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prete.New([]*ops5.Production{p}, 4)
	if err != nil {
		t.Fatal(err)
	}
	inserts := 0
	m.OnInsert = func(inst *ops5.Instantiation) { inserts++ }
	m.OnRemove = func(inst *ops5.Instantiation) {}

	if prof := m.NodeProfile(); len(prof) != 0 {
		t.Fatalf("profile before any activation = %v, want empty", prof)
	}

	goal := ops5.NewWME("goal", "type", "find-blk", "color", "red")
	goal.TimeTag = 1
	b1 := ops5.NewWME("block", "id", 1, "color", "red", "selected", "no")
	b1.TimeTag = 2
	b2 := ops5.NewWME("block", "id", 2, "color", "blue", "selected", "no")
	b2.TimeTag = 3
	m.Apply([]ops5.Change{
		{Kind: ops5.Insert, WME: goal},
		{Kind: ops5.Insert, WME: b1},
		{Kind: ops5.Insert, WME: b2},
	})
	if inserts != 1 {
		t.Fatalf("conflict inserts = %d, want 1", inserts)
	}

	prof := m.NodeProfile()
	if len(prof) == 0 {
		t.Fatal("profile empty after activations")
	}
	var emitted int64
	for i, e := range prof {
		if e.Activations <= 0 {
			t.Errorf("entry %d: activations = %d, want > 0", i, e.Activations)
		}
		if e.Label == "" {
			t.Errorf("entry %d: empty label", i)
		}
		if i > 0 && prof[i-1].NodeID >= e.NodeID {
			t.Errorf("profile not in node-ID order: %d then %d", prof[i-1].NodeID, e.NodeID)
		}
		emitted += e.PairsEmitted
	}
	if emitted == 0 {
		t.Error("no pairs emitted despite a match")
	}
}
