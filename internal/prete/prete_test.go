package prete_test

import (
	"math/rand"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/prete"
)

func runScript(t *testing.T, prods []*ops5.Production, script *matchtest.Script, workers int) *prete.Matcher {
	t.Helper()
	m, err := prete.New(prods, workers)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove

	live := map[int]*ops5.WME{}
	for bi, batch := range script.Batches {
		for _, ch := range batch {
			if ch.Kind == ops5.Insert {
				live[ch.WME.TimeTag] = ch.WME
			} else {
				delete(live, ch.WME.TimeTag)
			}
		}
		m.Apply(batch)
		wmes := make([]*ops5.WME, 0, len(live))
		for _, w := range live {
			wmes = append(wmes, w)
		}
		want := matchtest.BruteForceKeys(prods, wmes)
		got := tr.Keys()
		if d := matchtest.Diff(want, got); d != "" {
			t.Fatalf("batch %d (workers=%d): conflict set mismatch:\n%s", bi, workers, d)
		}
	}
	return m
}

func TestRandomizedCrossCheck(t *testing.T) {
	params := matchtest.DefaultGenParams()
	for _, workers := range []int{1, 4, 16} {
		for seed := int64(0); seed < 12; seed++ {
			rng := rand.New(rand.NewSource(seed))
			prods := matchtest.RandomProgram(rng, params)
			script := matchtest.RandomScript(rng, params, 20, 6)
			runScript(t, prods, script, workers)
		}
	}
}

func TestRandomizedCrossCheckNegation(t *testing.T) {
	params := matchtest.DefaultGenParams()
	params.NegProb = 0.5
	params.MaxCEs = 4
	for seed := int64(200); seed < 210; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 18, 5)
		runScript(t, prods, script, 8)
	}
}

// TestRandomizedCrossCheckIndexStress covers the striped hash-bucket
// path under parallelism: equality-join-heavy programs with predicate
// and negated joins, on several worker counts, cross-checked against
// brute force after every batch.
func TestRandomizedCrossCheckIndexStress(t *testing.T) {
	params := matchtest.IndexStressGenParams()
	indexed := 0
	for _, workers := range []int{1, 8} {
		for seed := int64(300); seed < 310; seed++ {
			rng := rand.New(rand.NewSource(seed))
			prods := matchtest.RandomProgram(rng, params)
			script := matchtest.RandomScript(rng, params, 24, 5)
			m := runScript(t, prods, script, workers)
			indexed += m.IndexInfo().IndexedNodes
		}
	}
	if indexed == 0 {
		t.Error("index-stress programs produced no indexed joins; generator drifted")
	}
}

func TestLargeBatches(t *testing.T) {
	// Large batches maximise in-flight parallel activations and
	// out-of-order arrivals (the counted-cancellation path).
	params := matchtest.DefaultGenParams()
	params.Productions = 12
	for seed := int64(300); seed < 306; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 8, 25)
		runScript(t, prods, script, 8)
	}
}

func TestPaperProductionParallel(t *testing.T) {
	src := `
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
  -->
    (modify 2 ^selected yes))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := prete.New([]*ops5.Production{p}, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := matchtest.NewTracker()
	m.OnInsert = tr.Insert
	m.OnRemove = tr.Remove

	batch := []ops5.Change{}
	goal := ops5.NewWME("goal", "type", "find-blk", "color", "red")
	goal.TimeTag = 1
	batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: goal})
	for i := 0; i < 20; i++ {
		color := "blue"
		if i%2 == 0 {
			color = "red"
		}
		b := ops5.NewWME("block", "id", i, "color", color, "selected", "no")
		b.TimeTag = i + 2
		batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: b})
	}
	m.Apply(batch)
	if got := len(tr.Keys()); got != 10 {
		t.Fatalf("conflict set size = %d, want 10 (red blocks)", got)
	}
	if m.Stats().Tasks == 0 {
		t.Error("no tasks executed")
	}
}

func TestWorkerCountIndependence(t *testing.T) {
	// The final conflict set must not depend on the worker count.
	params := matchtest.DefaultGenParams()
	rng := rand.New(rand.NewSource(99))
	prods := matchtest.RandomProgram(rng, params)
	script := matchtest.RandomScript(rng, params, 15, 10)

	var ref []string
	for _, workers := range []int{1, 2, 8, 32} {
		m, err := prete.New(prods, workers)
		if err != nil {
			t.Fatal(err)
		}
		tr := matchtest.NewTracker()
		m.OnInsert = tr.Insert
		m.OnRemove = tr.Remove
		for _, batch := range script.Batches {
			m.Apply(batch)
		}
		keys := tr.Keys()
		if ref == nil {
			ref = keys
			continue
		}
		if d := matchtest.Diff(ref, keys); d != "" {
			t.Fatalf("workers=%d diverges:\n%s", workers, d)
		}
	}
}
