package prete

// Loss-factor accounting (§6 of the paper). The paper reports a true
// speedup of 8.25 on 32 processors against a nominal concurrency of
// ~15.9 — a measured loss factor of 1.93 — and decomposes the loss into
// lost node sharing, scheduling overhead and memory contention. This
// file is the software instrument for the same decomposition: every
// worker attributes its wall time to a small fixed set of phases with
// cheap monotonic-clock deltas (no allocation, no locks on the hot
// path), the matcher attributes the serial seed and merge regions of
// each Apply, and Loss() folds the accumulated numbers into a
// LossReport with paper-style nominal concurrency, true speedup and a
// loss decomposition.
//
// The stamping discipline: each worker's phaseClock carries `last`, the
// instant through which its time has been accounted. stamp(p) charges
// the interval [last, now] to phase p and advances last. Every code
// path in workerLoop/run/findWork/park stamps before it hands off, so a
// worker's phase totals sum (exactly, minus the final sub-microsecond
// loop tail) to its time inside workerLoop — which is how the report
// can promise that phases + seed + merge reconstruct Apply wall time.

import (
	"math"
	"sync/atomic"
	"time"
)

// phase is one bucket of worker wall time.
type phase uint8

const (
	// phaseMatch is useful match work: executing a node activation —
	// memory update plus opposite-memory scan — excluding lock wait.
	// This is the work a serial matcher would also perform.
	phaseMatch phase = iota
	// phaseLockWait is time acquiring memory stripe locks (the paper's
	// memory contention). Uncontended acquisitions are included; they
	// cost tens of nanoseconds and vanish against real contention.
	phaseLockWait
	// phaseSubmit is time pushing an activation's downstream tasks and
	// conflict deltas (scheduling overhead on the producing side).
	phaseSubmit
	// phaseStealHit is time spent in steal attempts that found work;
	// phaseStealMiss covers fruitless victim scans and empty overflow
	// checks — the busy-wait component of load imbalance.
	phaseStealHit
	phaseStealMiss
	// phaseOverflow is time draining the shared overflow list.
	phaseOverflow
	// phasePark is time blocked on the scheduler condvar (plus the
	// park bookkeeping around it) — idle waiting for work or batch end.
	phasePark
	// phaseSpawn is the wake latency of the resident pool: the gap
	// between Apply publishing a batch's epoch and the FIRST lane
	// entering its batch loop — the software analogue of the paper's
	// processor-allocation overhead. Before the resident pool this was
	// a per-batch goroutine startup charged to every lane and dominated
	// the budget (64-76%); now it is one condvar broadcast, plus the
	// one-off goroutine creation charged to the first woken batch. The
	// other lanes charge the same gap to park: on an oversubscribed
	// host they were queued for a CPU, which is idle time, not
	// dispatch cost.
	phaseSpawn

	numPhases
)

// phaseNames are the wire/metric spellings, indexed by phase.
var phaseNames = [numPhases]string{
	"match", "lock_wait", "submit", "steal_hit", "steal_miss", "overflow", "park", "spawn",
}

// clockBase anchors nanotime: time.Since on a monotonic base compiles
// to one clock read with no allocation.
var clockBase = time.Now()

// nanotime returns monotonic nanoseconds since package init.
func nanotime() int64 { return int64(time.Since(clockBase)) }

// phaseClock is one worker's phase accumulator. last is owner-only
// (a lane's successive batches, and Apply's own end-of-batch writes,
// are ordered by the epoch gate and the batch barrier); the totals are
// atomics so Loss and Stats may snapshot mid-batch under the race
// detector.
type phaseClock struct {
	last int64
	ns   [numPhases]atomic.Int64
}

// stamp charges the time since the previous stamp to phase p.
func (c *phaseClock) stamp(p phase) {
	now := nanotime()
	c.ns[p].Add(now - c.last)
	c.last = now
}

// Task-size histogram: activations bucketed by execution time. The
// paper's premise is ~50-100 instructions per activation; tasks in the
// lowest buckets are below the grain where stealing or even deque
// traffic pays, so the histogram shows how much of the workload is too
// fine to parallelise profitably.
var taskBucketNanos = [...]int64{256, 1024, 4096, 16384, 65536, 262144}

// numTaskBuckets adds the open top bucket (> 262144ns).
const numTaskBuckets = len(taskBucketNanos) + 1

// taskBucket maps a task duration to its histogram bucket.
func taskBucket(d int64) int {
	for i, ub := range taskBucketNanos {
		if d <= ub {
			return i
		}
	}
	return numTaskBuckets - 1
}

// PhaseSeconds is one named phase's accumulated wall time.
type PhaseSeconds struct {
	Phase   string
	Seconds float64
}

// WorkerLoss is one scheduler lane's phase breakdown.
type WorkerLoss struct {
	Worker int
	Tasks  int64
	Phases []PhaseSeconds
}

// TaskBucket is one bar of the task-size histogram: activations whose
// execution took at most UpToNanos (0 marks the open top bucket).
type TaskBucket struct {
	UpToNanos int64
	Count     int64
}

// LossComponent is one term of the loss decomposition: Seconds of the
// total processor budget (Workers x ApplySeconds) and its Share of it.
type LossComponent struct {
	Name    string
	Seconds float64
	Share   float64
}

// LossReport is the matcher's cumulative loss-factor accounting, the
// software analogue of the paper's §6 table. All counters accumulate
// since the matcher was built.
type LossReport struct {
	// Workers is the scheduler lane count; Batches the Apply calls.
	Workers int
	Batches int

	// ApplySeconds is total wall time inside Apply; SeedSeconds the
	// serial alpha-dispatch prefix, ActiveSeconds the parallel worker
	// window, MergeSeconds the serial conflict-set merge barrier.
	// Seed + Active + Merge ~= Apply.
	ApplySeconds  float64
	SeedSeconds   float64
	ActiveSeconds float64
	MergeSeconds  float64

	// Phases aggregates worker phase time over all lanes; PerWorker
	// breaks it down by lane. Summed phases ~= Workers' time inside
	// the active window.
	Phases    []PhaseSeconds
	PerWorker []WorkerLoss

	// TaskSizes is the activation execution-time histogram.
	TaskSizes []TaskBucket

	// SerialEstimateSeconds estimates one-processor time for the same
	// work: seed + merge + summed useful match time. TrueSpeedup is
	// that estimate over Apply wall time (the paper's true speedup);
	// NominalConcurrency is mean busy workers during the active window
	// (the paper's nominal speedup); LossFactor is nominal over true —
	// the paper measures 1.93 at 32 processors.
	SerialEstimateSeconds float64
	TrueSpeedup           float64
	NominalConcurrency    float64
	LossFactor            float64

	// Decomposition partitions the total processor budget
	// (Workers x ApplySeconds): useful_match, memory_contention
	// (lock wait), scheduling (submit + steal hits + overflow), idle
	// (fruitless steals + parking, including lanes a bypassed batch
	// left parked), spawn (pool wake latency), serial_seed_merge (all
	// lanes during the serial regions) and other (exit skew, loop
	// tails). Shares sum to 1.
	Decomposition []LossComponent
}

// secs converts accumulated nanoseconds for the report.
func secs(ns int64) float64 { return float64(ns) / float64(time.Second) }

// Loss folds the accumulated phase clocks and Apply timings into a
// LossReport. Safe to call concurrently with Apply; mid-batch numbers
// are then a point-in-time sample.
func (m *Matcher) Loss() LossReport {
	m.mu.Lock()
	applyNs, seedNs, activeNs, mergeNs := m.applyNs, m.seedNs, m.activeNs, m.mergeNs
	batches := m.batches
	m.mu.Unlock()

	workers := len(m.sched.workers)
	r := LossReport{
		Workers:       workers,
		Batches:       batches,
		ApplySeconds:  secs(applyNs),
		SeedSeconds:   secs(seedNs),
		ActiveSeconds: secs(activeNs),
		MergeSeconds:  secs(mergeNs),
	}

	var phaseTot [numPhases]int64
	var bucketTot [numTaskBuckets]int64
	for wi := range m.sched.workers {
		w := &m.sched.workers[wi]
		wl := WorkerLoss{
			Worker: wi,
			Tasks:  w.executed.Load(),
			Phases: make([]PhaseSeconds, numPhases),
		}
		for p := phase(0); p < numPhases; p++ {
			v := w.clock.ns[p].Load()
			phaseTot[p] += v
			wl.Phases[p] = PhaseSeconds{Phase: phaseNames[p], Seconds: secs(v)}
		}
		for b := 0; b < numTaskBuckets; b++ {
			bucketTot[b] += w.taskSizes[b].Load()
		}
		r.PerWorker = append(r.PerWorker, wl)
	}
	r.Phases = make([]PhaseSeconds, numPhases)
	for p := phase(0); p < numPhases; p++ {
		r.Phases[p] = PhaseSeconds{Phase: phaseNames[p], Seconds: secs(phaseTot[p])}
	}
	r.TaskSizes = make([]TaskBucket, numTaskBuckets)
	for b := 0; b < numTaskBuckets; b++ {
		ub := int64(0) // open top bucket
		if b < len(taskBucketNanos) {
			ub = taskBucketNanos[b]
		}
		r.TaskSizes[b] = TaskBucket{UpToNanos: ub, Count: bucketTot[b]}
	}

	matchNs := phaseTot[phaseMatch]
	lockNs := phaseTot[phaseLockWait]
	schedNs := phaseTot[phaseSubmit] + phaseTot[phaseStealHit] + phaseTot[phaseOverflow]
	idleNs := phaseTot[phaseStealMiss] + phaseTot[phasePark]
	spawnNs := phaseTot[phaseSpawn]
	busyNs := matchNs + lockNs + schedNs

	serialNs := seedNs + mergeNs + matchNs
	r.SerialEstimateSeconds = secs(serialNs)
	if applyNs > 0 {
		r.TrueSpeedup = float64(serialNs) / float64(applyNs)
	}
	if activeNs > 0 {
		r.NominalConcurrency = float64(busyNs) / float64(activeNs)
	}
	if r.TrueSpeedup > 0 {
		r.LossFactor = r.NominalConcurrency / r.TrueSpeedup
	}

	budgetNs := int64(workers) * applyNs
	serialRegionNs := int64(workers) * (seedNs + mergeNs)
	otherNs := budgetNs - matchNs - lockNs - schedNs - idleNs - spawnNs - serialRegionNs
	if otherNs < 0 {
		otherNs = 0
	}
	comps := []LossComponent{
		{Name: "useful_match", Seconds: secs(matchNs)},
		{Name: "memory_contention", Seconds: secs(lockNs)},
		{Name: "scheduling", Seconds: secs(schedNs)},
		{Name: "idle", Seconds: secs(idleNs)},
		{Name: "spawn", Seconds: secs(spawnNs)},
		{Name: "serial_seed_merge", Seconds: secs(serialRegionNs)},
		{Name: "other", Seconds: secs(otherNs)},
	}
	if budgetNs > 0 {
		for i := range comps {
			comps[i].Share = comps[i].Seconds / secs(budgetNs)
			if math.IsNaN(comps[i].Share) {
				comps[i].Share = 0
			}
		}
	}
	r.Decomposition = comps
	return r
}
