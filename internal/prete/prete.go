// Package prete implements the paper's core contribution: the parallel
// Rete algorithm of §4-5, exploiting parallelism at the granularity of
// individual node activations.
//
// Design (following Gupta's parallel Rete):
//
//   - The unit of work is one node activation: a (two-input node, token
//     or WME, side, direction) tuple, typically 50-100 machine
//     instructions of work (§4).
//   - Memory nodes are merged into the two-input nodes: each node owns
//     its own left (token) and right (WME) memory, so one lock per node
//     makes the update-memory-and-scan-opposite-memory step atomic.
//     This is exactly the structure the paper's hardware task scheduler
//     assumes ("multiple node activations assigned to be processed in
//     parallel cannot interfere with each other", §5). The cost is some
//     duplication of memory between nodes — part of the paper's "loss
//     of sharing" factor.
//   - Multiple activations of different nodes, multiple activations of
//     the same memory contents via distinct nodes, and multiple working
//     memory changes are all processed in parallel (§4, the two
//     relaxations over naive node parallelism).
//   - Within one Apply batch, activations may arrive at a node out of
//     order (a token's deletion may be processed before its insertion
//     reaches a downstream node). Memories therefore use counted
//     multiset semantics: an early delete records a pending cancel that
//     annihilates the late insert, and neither is propagated. The
//     conflict set is likewise updated with counted deltas and flushed
//     at the end of the batch — the batch boundary is the paper's
//     synchronization step between recognize-act phases.
package prete

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ops5"
	"repro/internal/rete"
)

// side distinguishes the two inputs of a two-input node.
type side uint8

const (
	leftSide side = iota
	rightSide
)

// task is one node activation.
type task struct {
	node *pnode
	side side
	dir  ops5.ChangeKind
	tok  *rete.Token // left activations
	wme  *ops5.WME   // right activations
}

// tokenEntry is a counted multiset entry for a token. For not-nodes,
// matches tracks the number of matching right WMEs.
type tokenEntry struct {
	tok     *rete.Token
	count   int
	matches int
}

// tokenSet is a counted token multiset keyed by the WME time-tag list.
type tokenSet map[string]*tokenEntry

// wmeEntry is a counted multiset entry for a right-memory WME.
type wmeEntry struct {
	wme   *ops5.WME
	count int
}

// stripes is the number of lock stripes per indexed node's memories.
const stripes = 16

// bucketShard is one lock stripe of a node's memories: the left and
// right hash buckets whose join keys hash to this stripe. Any (token,
// WME) pair that can pass the node's equality tests computes the same
// join key, hence lands in the same shard — so holding one stripe's
// lock makes the update-memory-and-scan-opposite-bucket step atomic,
// while activations with different keys proceed in parallel on other
// stripes. A node with no equality tests has a single shard with
// everything under the empty key, which degenerates to the old
// whole-node lock.
type bucketShard struct {
	mu    sync.Mutex
	left  map[string]tokenSet
	right map[string]map[int]*wmeEntry // join key -> time tag -> entry
}

// pnode mirrors one rete two-input node, owning private copies of its
// left and right memories, hash-bucketed by equality join key and
// guarded by striped locks.
type pnode struct {
	id    int
	kind  rete.JoinKind
	tests func(*rete.Token, *ops5.WME) bool
	// leftKey/rightKey compute a task's join key; nil on nodes with no
	// equality tests (every task then uses the empty key, stripe 0).
	leftKey  func(*rete.Token) string
	rightKey func(*ops5.WME) string

	shards []bucketShard

	// prof accumulates this node's activation work for live hot-node
	// profiling; atomic because workers activate one node concurrently.
	prof struct {
		activations atomic.Int64
		tested      atomic.Int64
		emitted     atomic.Int64
	}

	// downstream nodes receive this node's output tokens on their left
	// input; terminals announce conflict-set deltas.
	downstream []*pnode
	terminals  []*rete.Terminal
}

// key computes a task's join key on this node.
func (n *pnode) key(t task) string {
	if n.leftKey == nil {
		return ""
	}
	if t.side == rightSide {
		return n.rightKey(t.wme)
	}
	return n.leftKey(t.tok)
}

// shardOf maps a join key to its lock stripe.
func (n *pnode) shardOf(key string) *bucketShard {
	if len(n.shards) == 1 {
		return &n.shards[0]
	}
	h := uint32(2166136261) // FNV-1a
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &n.shards[h%uint32(len(n.shards))]
}

func tokenKey(t *rete.Token) string {
	parts := make([]string, len(t.WMEs))
	for i, w := range t.WMEs {
		parts[i] = fmt.Sprint(w.TimeTag)
	}
	return strings.Join(parts, ",")
}

// match applies the node's compiled join tests.
func (n *pnode) match(tok *rete.Token, w *ops5.WME) bool {
	return n.tests(tok, w)
}

// Stats reports work done by the parallel matcher.
type Stats struct {
	// Tasks counts node activations executed.
	Tasks int64
	// Cancellations counts out-of-order insert/delete annihilations.
	Cancellations int64
	// Batches counts Apply calls.
	Batches int
	// Changes counts WM changes processed.
	Changes int64
	// Comparisons counts (token, wme) pairs tested at nodes — bucket
	// candidates only, for nodes with an equality key.
	Comparisons int64
	// ConflictInserts and ConflictRemoves count flushed deltas.
	ConflictInserts int64
	ConflictRemoves int64
}

// Matcher is the parallel Rete matcher. It satisfies engine.Matcher.
type Matcher struct {
	net     *rete.Network
	nodes   map[*rete.JoinNode]*pnode
	roots   map[*rete.AlphaMem][]*pnode // alpha memory -> right-input nodes
	workers int

	// OnInsert and OnRemove receive conflict-set deltas at the end of
	// each Apply batch, on the calling goroutine.
	OnInsert func(*ops5.Instantiation)
	OnRemove func(*ops5.Instantiation)

	mu sync.Mutex // guards the delta buffer
	// tasks, cancellations and comparisons are atomic counters (hot path).
	tasks         atomic.Int64
	cancellations atomic.Int64
	comparisons   atomic.Int64
	batches       int
	changes       int64
	confIns       int64
	confRem       int64
	// deltas accumulates net conflict-set changes within a batch.
	deltas map[string]*delta
}

type delta struct {
	inst *ops5.Instantiation
	n    int
}

// New compiles the productions and builds the parallel node graph.
// workers <= 0 selects GOMAXPROCS workers.
func New(prods []*ops5.Production, workers int) (*Matcher, error) {
	net, err := rete.Compile(prods)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &Matcher{
		net:     net,
		nodes:   make(map[*rete.JoinNode]*pnode),
		roots:   make(map[*rete.AlphaMem][]*pnode),
		workers: workers,
		deltas:  make(map[string]*delta),
	}
	for _, j := range net.Joins() {
		pn := &pnode{
			id:    j.ID,
			kind:  j.Kind,
			tests: rete.CompileJoinTests(j.Tests),
		}
		nshards := 1
		if eq, _ := rete.SplitJoinTests(j.Tests); len(eq) > 0 {
			pn.leftKey, pn.rightKey = rete.JoinKeyFuncs(eq)
			nshards = stripes
		}
		pn.shards = make([]bucketShard, nshards)
		for i := range pn.shards {
			pn.shards[i].left = make(map[string]tokenSet)
			pn.shards[i].right = make(map[string]map[int]*wmeEntry)
		}
		m.nodes[j] = pn
	}
	for _, j := range net.Joins() {
		pn := m.nodes[j]
		for _, dj := range j.Out.Joins {
			pn.downstream = append(pn.downstream, m.nodes[dj])
		}
		pn.terminals = j.Out.Terminals
	}
	// Prime nodes fed by the dummy top with the empty token. These
	// joins have no earlier CE to bind variables, hence no equality
	// tests and a single shard.
	for _, j := range net.DummyTop().Joins {
		pn := m.nodes[j]
		empty := &rete.Token{}
		pn.shards[0].left[""] = tokenSet{tokenKey(empty): &tokenEntry{tok: empty, count: 1}}
		if j.Kind == rete.JoinNegative {
			// matches is computed lazily against an initially empty
			// right memory: zero.
		}
	}
	for _, am := range net.Alphas() {
		for _, j := range am.Succs {
			m.roots[am] = append(m.roots[am], m.nodes[j])
		}
	}
	return m, nil
}

// Network exposes the underlying compiled network (for statistics).
func (m *Matcher) Network() *rete.Network { return m.net }

// Stats returns a snapshot of the work counters.
func (m *Matcher) Stats() Stats {
	return Stats{
		Tasks:           m.tasks.Load(),
		Cancellations:   m.cancellations.Load(),
		Batches:         m.batches,
		Changes:         m.changes,
		Comparisons:     m.comparisons.Load(),
		ConflictInserts: m.confIns,
		ConflictRemoves: m.confRem,
	}
}

// IndexInfo summarises the hash-bucketed node memories.
type IndexInfo struct {
	// IndexedNodes and FallbackNodes partition the two-input nodes by
	// whether they key their memories on an equality join key.
	IndexedNodes  int
	FallbackNodes int
	// Buckets is the number of live (key, side) buckets; MaxBucket the
	// largest bucket's population.
	Buckets   int
	MaxBucket int
}

// IndexInfo reports current bucket occupancy. It briefly takes every
// stripe lock, so it should not be called from inside Apply.
func (m *Matcher) IndexInfo() IndexInfo {
	var info IndexInfo
	for _, pn := range m.nodes {
		if pn.leftKey != nil {
			info.IndexedNodes++
		} else {
			info.FallbackNodes++
		}
		for i := range pn.shards {
			sh := &pn.shards[i]
			sh.mu.Lock()
			for _, ts := range sh.left {
				info.Buckets++
				if len(ts) > info.MaxBucket {
					info.MaxBucket = len(ts)
				}
			}
			for _, wb := range sh.right {
				info.Buckets++
				if len(wb) > info.MaxBucket {
					info.MaxBucket = len(wb)
				}
			}
			sh.mu.Unlock()
		}
	}
	return info
}

// NodeProfile returns the accumulated per-node work of every activated
// two-input node, in node-ID order, in the same shape as the serial
// network's profile (rete.NodeProfEntry). Every activation of a keyed
// node probes its join-key bucket, so IndexedProbes equals Activations
// there and is zero on single-shard fallback nodes.
func (m *Matcher) NodeProfile() []rete.NodeProfEntry {
	var out []rete.NodeProfEntry
	for j, pn := range m.nodes {
		acts := pn.prof.activations.Load()
		if acts == 0 {
			continue
		}
		e := rete.NodeProfEntry{
			NodeID:      j.ID,
			Label:       j.Label(),
			SharedBy:    j.SharedBy,
			Productions: j.ProductionNames(),
			NodeProf: rete.NodeProf{
				Activations:  acts,
				TokensTested: pn.prof.tested.Load(),
				PairsEmitted: pn.prof.emitted.Load(),
			},
		}
		if pn.leftKey != nil {
			e.IndexedProbes = acts
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].NodeID < out[k].NodeID })
	return out
}

// queue is an unbounded work queue with completion tracking.
type queue struct {
	mu          sync.Mutex
	cond        *sync.Cond
	items       []task
	outstanding int
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(t task) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.outstanding++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a task is available or all work is finished.
func (q *queue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && q.outstanding > 0 {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return task{}, false
	}
	t := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return t, true
}

// done marks one popped task complete.
func (q *queue) done() {
	q.mu.Lock()
	q.outstanding--
	finished := q.outstanding == 0
	q.mu.Unlock()
	if finished {
		q.cond.Broadcast()
	}
}

// Apply processes a batch of WM changes in parallel and flushes the net
// conflict-set deltas through OnInsert/OnRemove before returning.
func (m *Matcher) Apply(changes []ops5.Change) {
	q := newQueue()
	// Dispatch every change through the (read-only) constant-test
	// network; each alpha hit becomes one right activation per
	// successor node. All changes are injected up front: the paper's
	// "multiple changes to working memory are processed in parallel".
	for _, ch := range changes {
		mems, _ := m.net.MatchAlphas(ch.WME)
		for _, am := range mems {
			for _, pn := range m.roots[am] {
				q.push(task{node: pn, side: rightSide, dir: ch.Kind, wme: ch.WME})
			}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < m.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := q.pop()
				if !ok {
					return
				}
				m.run(t, q)
				q.done()
			}
		}()
	}
	wg.Wait()
	m.flush()
	m.batches++
	m.changes += int64(len(changes))
}

// run executes one node activation, pushing downstream activations.
// Only the task's own join-key bucket (and its lock stripe) is
// touched: a matching pair always shares the key, so the opposite
// bucket under the same stripe lock is the complete candidate set.
func (m *Matcher) run(t task, q *queue) {
	m.tasks.Add(1)

	type emit struct {
		tok *rete.Token
		dir ops5.ChangeKind
	}
	var emits []emit

	n := t.node
	key := n.key(t)
	sh := n.shardOf(key)
	tested := 0
	sh.mu.Lock()
	switch {
	case t.side == rightSide && n.kind == rete.JoinPositive:
		if cancelled := sh.updateRight(key, t); cancelled {
			m.cancelled()
			break
		}
		for _, e := range sh.left[key] {
			if e.count <= 0 {
				continue
			}
			tested++
			if n.match(e.tok, t.wme) {
				emits = append(emits, emit{tok: e.tok.Extend(t.wme), dir: t.dir})
			}
		}
	case t.side == rightSide && n.kind == rete.JoinNegative:
		if cancelled := sh.updateRight(key, t); cancelled {
			m.cancelled()
			break
		}
		for _, e := range sh.left[key] {
			if e.count <= 0 {
				continue
			}
			tested++
			if !n.match(e.tok, t.wme) {
				continue
			}
			switch t.dir {
			case ops5.Insert:
				e.matches++
				if e.matches == 1 {
					emits = append(emits, emit{tok: e.tok, dir: ops5.Delete})
				}
			case ops5.Delete:
				e.matches--
				if e.matches == 0 {
					emits = append(emits, emit{tok: e.tok, dir: ops5.Insert})
				}
			}
		}
	case t.side == leftSide && n.kind == rete.JoinPositive:
		if cancelled := sh.updateLeft(key, t); cancelled {
			m.cancelled()
			break
		}
		for _, e := range sh.right[key] {
			if e.count <= 0 {
				continue
			}
			tested++
			if n.match(t.tok, e.wme) {
				emits = append(emits, emit{tok: t.tok.Extend(e.wme), dir: t.dir})
			}
		}
	case t.side == leftSide && n.kind == rete.JoinNegative:
		switch t.dir {
		case ops5.Insert:
			e := sh.leftEntry(key, t.tok)
			e.count++
			if e.count == 0 {
				sh.dropLeft(key, t.tok)
			}
			if e.count <= 0 {
				m.cancelled()
				break // annihilated by an earlier delete
			}
			matches := 0
			for _, re := range sh.right[key] {
				if re.count <= 0 {
					continue
				}
				tested++
				if n.match(t.tok, re.wme) {
					matches += re.count
				}
			}
			e.matches = matches
			if matches == 0 {
				emits = append(emits, emit{tok: t.tok, dir: ops5.Insert})
			}
		case ops5.Delete:
			e := sh.leftEntry(key, t.tok)
			hadMatches := e.matches
			present := e.count > 0
			e.count--
			if e.count == 0 {
				sh.dropLeft(key, t.tok)
			}
			if !present {
				m.cancelled()
				break // delete arrived before insert; both annihilate
			}
			if hadMatches == 0 {
				emits = append(emits, emit{tok: t.tok, dir: ops5.Delete})
			}
		}
	}
	sh.mu.Unlock()
	m.comparisons.Add(int64(tested))
	n.prof.activations.Add(1)
	if tested > 0 {
		n.prof.tested.Add(int64(tested))
	}
	if len(emits) > 0 {
		n.prof.emitted.Add(int64(len(emits)))
	}

	for _, e := range emits {
		for _, dn := range n.downstream {
			q.push(task{node: dn, side: leftSide, dir: e.dir, tok: e.tok})
		}
		for _, term := range n.terminals {
			m.conflictDelta(term, e.tok, e.dir)
		}
	}
}

// bucket returns the right bucket for a join key, creating it when
// missing. Caller holds the stripe lock.
func (sh *bucketShard) rightBucket(key string) map[int]*wmeEntry {
	b := sh.right[key]
	if b == nil {
		b = make(map[int]*wmeEntry)
		sh.right[key] = b
	}
	return b
}

// leftEntry returns the counted entry for a token in a key's bucket,
// creating bucket and entry when missing. Caller holds the stripe lock.
func (sh *bucketShard) leftEntry(key string, tok *rete.Token) *tokenEntry {
	ts := sh.left[key]
	if ts == nil {
		ts = tokenSet{}
		sh.left[key] = ts
	}
	tk := tokenKey(tok)
	e := ts[tk]
	if e == nil {
		e = &tokenEntry{tok: tok}
		ts[tk] = e
	}
	return e
}

// dropLeft removes a token's entry, reclaiming the bucket when empty.
func (sh *bucketShard) dropLeft(key string, tok *rete.Token) {
	ts := sh.left[key]
	delete(ts, tokenKey(tok))
	if len(ts) == 0 {
		delete(sh.left, key)
	}
}

// updateRight applies a counted right-memory update, reporting whether
// the operation was annihilated by an earlier opposite operation.
func (sh *bucketShard) updateRight(key string, t task) (cancelled bool) {
	b := sh.rightBucket(key)
	e := b[t.wme.TimeTag]
	if e == nil {
		e = &wmeEntry{wme: t.wme}
		b[t.wme.TimeTag] = e
	}
	switch t.dir {
	case ops5.Insert:
		e.count++
		if e.count == 0 {
			sh.dropRight(key, t.wme.TimeTag)
		}
		if e.count <= 0 {
			return true
		}
	case ops5.Delete:
		present := e.count > 0
		e.count--
		if e.count == 0 {
			sh.dropRight(key, t.wme.TimeTag)
		}
		if !present {
			return true
		}
	}
	return false
}

// dropRight removes a WME's entry, reclaiming the bucket when empty.
func (sh *bucketShard) dropRight(key string, tag int) {
	b := sh.right[key]
	delete(b, tag)
	if len(b) == 0 {
		delete(sh.right, key)
	}
}

// updateLeft applies a counted left-memory update for positive nodes.
func (sh *bucketShard) updateLeft(key string, t task) (cancelled bool) {
	e := sh.leftEntry(key, t.tok)
	switch t.dir {
	case ops5.Insert:
		e.count++
		if e.count == 0 {
			sh.dropLeft(key, t.tok)
		}
		if e.count <= 0 {
			return true
		}
	case ops5.Delete:
		present := e.count > 0
		e.count--
		if e.count == 0 {
			sh.dropLeft(key, t.tok)
		}
		if !present {
			return true
		}
	}
	return false
}

func (m *Matcher) cancelled() {
	m.cancellations.Add(1)
}

// conflictDelta accumulates a counted conflict-set change.
func (m *Matcher) conflictDelta(term *rete.Terminal, tok *rete.Token, dir ops5.ChangeKind) {
	inst := term.Instantiate(tok)
	key := inst.Key()
	m.mu.Lock()
	d := m.deltas[key]
	if d == nil {
		d = &delta{inst: inst}
		m.deltas[key] = d
	}
	if dir == ops5.Insert {
		d.n++
	} else {
		d.n--
	}
	m.mu.Unlock()
}

// flush applies the net conflict deltas in a deterministic order.
func (m *Matcher) flush() {
	m.mu.Lock()
	keys := make([]string, 0, len(m.deltas))
	for k, d := range m.deltas {
		if d.n != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	pending := make([]*delta, len(keys))
	for i, k := range keys {
		pending[i] = m.deltas[k]
	}
	m.deltas = make(map[string]*delta)
	m.mu.Unlock()

	for _, d := range pending {
		switch {
		case d.n > 0:
			m.confIns++
			if m.OnInsert != nil {
				m.OnInsert(d.inst)
			}
		case d.n < 0:
			m.confRem++
			if m.OnRemove != nil {
				m.OnRemove(d.inst)
			}
		}
	}
}
