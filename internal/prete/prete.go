// Package prete implements the paper's core contribution: the parallel
// Rete algorithm of §4-5, exploiting parallelism at the granularity of
// individual node activations.
//
// Design (following Gupta's parallel Rete):
//
//   - The unit of work is one node activation: a (two-input node, token
//     or WME, side, direction) tuple, typically 50-100 machine
//     instructions of work (§4).
//   - Memory nodes are merged into the two-input nodes: each node owns
//     its own left (token) and right (WME) memory, so one lock per node
//     makes the update-memory-and-scan-opposite-memory step atomic.
//     This is exactly the structure the paper's hardware task scheduler
//     assumes ("multiple node activations assigned to be processed in
//     parallel cannot interfere with each other", §5). The cost is some
//     duplication of memory between nodes — part of the paper's "loss
//     of sharing" factor.
//   - Multiple activations of different nodes, multiple activations of
//     the same memory contents via distinct nodes, and multiple working
//     memory changes are all processed in parallel (§4, the two
//     relaxations over naive node parallelism).
//   - Activations are dispatched by a per-worker work-stealing
//     scheduler (sched.go) standing in for the paper's hardware task
//     scheduler: a pool of resident worker goroutines parked between
//     batches on an epoch gate, woken by one broadcast per Apply. The
//     per-activation path is allocation-free: join keys and token
//     identities are uint64 hashes (shared with the serial matcher's
//     indexes), memory entries are pooled, and conflict-set deltas
//     batch per worker until the flush merge.
//   - Task granularity is adaptive. Sibling right-activations of one
//     WME (the successors of one alpha memory) seed as a single
//     multi-activation task; an activation's downstream activations run
//     inline on the producing worker when they are few and shallow
//     (below inlineFanout/maxInlineDepth) instead of paying deque
//     traffic; and a whole batch whose seeded activation count is under
//     the profitability threshold runs inline on the caller without
//     waking the pool at all — the §6 lesson that dispatch must cost
//     less than the ~50-100 instructions of work it dispatches.
//   - Within one Apply batch, activations may arrive at a node out of
//     order (a token's deletion may be processed before its insertion
//     reaches a downstream node). Memories therefore use counted
//     multiset semantics: an early delete records a pending cancel that
//     annihilates the late insert, and neither is propagated. The
//     conflict set is likewise updated with counted deltas and flushed
//     at the end of the batch — the batch boundary is the paper's
//     synchronization step between recognize-act phases.
package prete

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ops5"
	"repro/internal/rete"
)

// side distinguishes the two inputs of a two-input node.
type side uint8

const (
	leftSide side = iota
	rightSide
)

// task is one node activation — or, for a seed task, one WME's
// activations of every right-input successor of one alpha memory
// (nodes non-nil, aliasing the matcher's roots slice; no per-task
// allocation). Coarsening siblings into one task keeps the deques
// carrying profitably sized work.
type task struct {
	node  *pnode
	nodes []*pnode
	side  side
	dir   ops5.ChangeKind
	tok   *rete.Token // left activations
	wme   *ops5.WME   // right activations
}

// maxInlineDepth and inlineFanout bound depth-first inlining of
// downstream activations: when an activation's output would schedule at
// most inlineFanout downstream tasks and the recursion is shallower
// than maxInlineDepth, the producing worker runs them directly — the
// PR 8 task-size histogram put most activations under ~1µs, below the
// grain where a deque round-trip pays. Wider fan-outs still go through
// the deque so thieves can share them, and the depth bound keeps the
// recursion (and its per-depth emit scratch) small.
const (
	maxInlineDepth = 8
	inlineFanout   = 4
)

// serialBypassThreshold is the default seeded-activation count below
// which a batch runs inline on the caller instead of waking the pool.
// Calibrated from the loss report's serial estimate: a wake round-trip
// costs a few µs and each activation averages a few hundred ns, so a
// batch needs roughly fifty activations before the pool pays for its
// own dispatch. BenchmarkPreteApply's allocs/op spread between
// workers-1 and workers-16 doubles as the calibration check: the
// threshold keeps sub-profitable batches off the reordering parallel
// path, whose token churn is what separates the two columns.
const serialBypassThreshold = 48

// emit is one output of an activation: a token headed for the node's
// downstream inputs and terminals.
type emit struct {
	tok *rete.Token
	dir ops5.ChangeKind
}

// pendingDelta is one un-merged conflict-set delta, batched per worker
// during a batch and merged (and only then instantiated) at flush.
type pendingDelta struct {
	term *rete.Terminal
	tok  *rete.Token
	dir  ops5.ChangeKind
}

// tokenEntry is a counted multiset entry for a token. For not-nodes,
// matches tracks the number of matching right WMEs.
type tokenEntry struct {
	tok     *rete.Token
	count   int
	matches int
}

// tokenSet is a counted token multiset, chained under the token's
// identity hash (rete.TokenIDHash is not injective, so chains are
// re-verified with EqualTo).
type tokenSet map[uint64][]*tokenEntry

// wmeEntry is a counted multiset entry for a right-memory WME.
type wmeEntry struct {
	wme   *ops5.WME
	count int
}

// stripes is the number of lock stripes per indexed node's memories.
const stripes = 16

// bucketShard is one lock stripe of a node's memories: the left and
// right hash buckets whose join keys hash to this stripe. Any (token,
// WME) pair that can pass the node's equality tests computes the same
// join key, hence lands in the same shard — so holding one stripe's
// lock makes the update-memory-and-scan-opposite-bucket step atomic,
// while activations with different keys proceed in parallel on other
// stripes. A node with no equality tests has a single shard with
// everything under key zero, which degenerates to the old
// whole-node lock.
//
// freeTok and freeWME recycle this shard's memory entries so the
// activation hot path allocates nothing for the common
// insert-then-delete churn of the recognize-act cycle. They are owned
// by the shard and touched only under its lock, which is already held
// at every get/put site — unlike a global sync.Pool they are never
// cleared by the GC, so the entry population is exactly the shard's
// high-water mark regardless of worker count or allocation pressure.
// Entries are reset on get and stripped of references before put; an
// entry is never read after the drop that frees it (callers capture
// the counts they need first).
type bucketShard struct {
	mu    sync.Mutex
	left  map[uint64]tokenSet
	right map[uint64]map[int]*wmeEntry // join key -> time tag -> entry

	freeTok []*tokenEntry
	freeWME []*wmeEntry
}

// getTok takes a token entry from the shard freelist (or allocates).
func (sh *bucketShard) getTok() *tokenEntry {
	if n := len(sh.freeTok); n > 0 {
		e := sh.freeTok[n-1]
		sh.freeTok[n-1] = nil
		sh.freeTok = sh.freeTok[:n-1]
		return e
	}
	return new(tokenEntry)
}

// getWME takes a WME entry from the shard freelist (or allocates).
func (sh *bucketShard) getWME() *wmeEntry {
	if n := len(sh.freeWME); n > 0 {
		e := sh.freeWME[n-1]
		sh.freeWME[n-1] = nil
		sh.freeWME = sh.freeWME[:n-1]
		return e
	}
	return new(wmeEntry)
}

// pnode mirrors one rete two-input node, owning private copies of its
// left and right memories, hash-bucketed by equality join key and
// guarded by striped locks.
type pnode struct {
	id    int
	kind  rete.JoinKind
	tests func(*rete.Token, *ops5.WME) bool
	// leftHash/rightHash compute a task's join-key hash; nil on nodes
	// with no equality tests (every task then uses key zero, stripe 0).
	leftHash  func(*rete.Token) uint64
	rightHash func(*ops5.WME) uint64

	shards []bucketShard

	// prof accumulates this node's activation work for live hot-node
	// profiling; atomic because workers activate one node concurrently.
	prof struct {
		activations atomic.Int64
		tested      atomic.Int64
		emitted     atomic.Int64
	}

	// downstream nodes receive this node's output tokens on their left
	// input; terminals announce conflict-set deltas.
	downstream []*pnode
	terminals  []*rete.Terminal
}

// key computes a task's join-key hash on this node.
func (n *pnode) key(t task) uint64 {
	if n.leftHash == nil {
		return 0
	}
	if t.side == rightSide {
		return n.rightHash(t.wme)
	}
	return n.leftHash(t.tok)
}

// shardOf maps a join-key hash to its lock stripe. The key is already
// an FNV-1a hash; folding the high bits keeps the stripe choice
// sensitive to more than the low bits.
func (n *pnode) shardOf(key uint64) *bucketShard {
	if len(n.shards) == 1 {
		return &n.shards[0]
	}
	key ^= key >> 33
	return &n.shards[key%uint64(len(n.shards))]
}

// match applies the node's compiled join tests.
func (n *pnode) match(tok *rete.Token, w *ops5.WME) bool {
	return n.tests(tok, w)
}

// WorkerStat is one scheduler lane's counters: activations it executed,
// tasks it stole from other lanes, and times it parked on the condvar.
// Together they decompose the paper's §6 scheduling overhead — executed
// skew shows load imbalance, stolen shows how much the scheduler moved
// to fix it, parked counts the synchronisation stalls that remained.
type WorkerStat struct {
	Executed int64
	Stolen   int64
	Parked   int64
}

// Stats reports work done by the parallel matcher.
type Stats struct {
	// Tasks counts node activations executed.
	Tasks int64
	// Cancellations counts out-of-order insert/delete annihilations.
	Cancellations int64
	// Batches counts Apply calls.
	Batches int
	// Changes counts WM changes processed.
	Changes int64
	// Comparisons counts (token, wme) pairs tested at nodes — bucket
	// candidates only, for nodes with an equality key.
	Comparisons int64
	// ConflictInserts and ConflictRemoves count flushed deltas.
	ConflictInserts int64
	ConflictRemoves int64
	// Steals and Parks total the per-worker scheduler counters.
	Steals int64
	Parks  int64
	// Wakeups counts pool wake broadcasts (batches run on the resident
	// workers); InlineBatches counts batches the serial bypass ran on
	// the caller; ResidentWorkers is the number of live pool goroutines
	// (0 before the first woken batch and after Close).
	Wakeups         int64
	InlineBatches   int64
	ResidentWorkers int
	// PerWorker breaks the scheduler counters down by lane.
	PerWorker []WorkerStat
}

// Config configures a parallel matcher.
type Config struct {
	// Workers is the scheduler lane count; <= 0 selects GOMAXPROCS.
	Workers int
	// NoSteal disables work stealing: an idle worker then only drains
	// its own deque and the shared overflow list. Useful for measuring
	// what stealing buys (the paper's §6 load-balance decomposition).
	NoSteal bool
	// SerialThreshold overrides the seeded-activation count below which
	// a batch runs inline on the caller instead of waking the resident
	// pool: 0 selects the default (serialBypassThreshold), a negative
	// value disables the bypass so every batch wakes the pool (used by
	// scheduler tests and measurements).
	SerialThreshold int
}

// Matcher is the parallel Rete matcher. It satisfies engine.Matcher.
type Matcher struct {
	net   *rete.Network
	nodes map[*rete.JoinNode]*pnode
	roots map[*rete.AlphaMem][]*pnode // alpha memory -> right-input nodes
	sched *scheduler

	// OnInsert and OnRemove receive conflict-set deltas at the end of
	// each Apply batch, on the calling goroutine.
	OnInsert func(*ops5.Instantiation)
	OnRemove func(*ops5.Instantiation)

	// cancellations and comparisons are atomic counters (hot path).
	cancellations atomic.Int64
	comparisons   atomic.Int64

	mu      sync.Mutex // guards the batch-level counters below
	batches int
	changes int64
	confIns int64
	confRem int64
	// applyNs/seedNs/activeNs/mergeNs accumulate Apply wall time and
	// its serial-dispatch, parallel-window and merge-barrier regions
	// (loss.go).
	applyNs  int64
	seedNs   int64
	activeNs int64
	mergeNs  int64
	flushBuf []pendingDelta // flush scratch, reused across batches

	// bypassBelow is the resolved serial-bypass threshold (0 disables).
	bypassBelow int
	// seedBuf and laneLoad are Apply-only scratch: the batch's seed
	// tasks and the per-lane seed counts for the affinity load cap.
	// Reused across batches so seeding allocates nothing steady-state.
	seedBuf  []task
	laneLoad []int32
}

// New compiles the productions and builds the parallel node graph.
// workers <= 0 selects GOMAXPROCS workers.
func New(prods []*ops5.Production, workers int) (*Matcher, error) {
	return NewWithConfig(prods, Config{Workers: workers})
}

// NewWithConfig is New with full scheduler configuration.
func NewWithConfig(prods []*ops5.Production, cfg Config) (*Matcher, error) {
	net, err := rete.Compile(prods)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bypass := cfg.SerialThreshold
	switch {
	case bypass == 0:
		bypass = serialBypassThreshold
	case bypass < 0:
		bypass = 0
	}
	m := &Matcher{
		net:         net,
		nodes:       make(map[*rete.JoinNode]*pnode),
		roots:       make(map[*rete.AlphaMem][]*pnode),
		sched:       newScheduler(workers, !cfg.NoSteal),
		bypassBelow: bypass,
	}
	m.laneLoad = make([]int32, workers)
	for _, j := range net.Joins() {
		pn := &pnode{
			id:    j.ID,
			kind:  j.Kind,
			tests: rete.CompileJoinTests(j.Tests),
		}
		nshards := 1
		if eq, _ := rete.SplitJoinTests(j.Tests); len(eq) > 0 {
			pn.leftHash, pn.rightHash = rete.JoinHashFuncs(eq)
			nshards = stripes
		}
		pn.shards = make([]bucketShard, nshards)
		for i := range pn.shards {
			pn.shards[i].left = make(map[uint64]tokenSet)
			pn.shards[i].right = make(map[uint64]map[int]*wmeEntry)
		}
		m.nodes[j] = pn
	}
	for _, j := range net.Joins() {
		pn := m.nodes[j]
		for _, dj := range j.Out.Joins {
			pn.downstream = append(pn.downstream, m.nodes[dj])
		}
		pn.terminals = j.Out.Terminals
	}
	// Prime nodes fed by the dummy top with the empty token. These
	// joins have no earlier CE to bind variables, hence no equality
	// tests, a single shard, and join key zero.
	for _, j := range net.DummyTop().Joins {
		pn := m.nodes[j]
		empty := &rete.Token{}
		pn.shards[0].left[0] = tokenSet{
			rete.TokenIDHash(empty): {&tokenEntry{tok: empty, count: 1}},
		}
		if j.Kind == rete.JoinNegative {
			// matches is computed lazily against an initially empty
			// right memory: zero.
		}
	}
	for _, am := range net.Alphas() {
		for _, j := range am.Succs {
			m.roots[am] = append(m.roots[am], m.nodes[j])
		}
	}
	return m, nil
}

// Network exposes the underlying compiled network (for statistics).
func (m *Matcher) Network() *rete.Network { return m.net }

// Workers returns the scheduler lane count.
func (m *Matcher) Workers() int { return len(m.sched.workers) }

// Close retires the resident worker pool, blocking until every pool
// goroutine has exited. It is idempotent and safe to call concurrently
// with Apply: a batch already published to the pool completes first. A
// closed matcher remains fully usable — every later batch simply runs
// inline on the caller, as the serial bypass does.
func (m *Matcher) Close() { m.sched.close() }

// Stats returns a snapshot of the work counters.
func (m *Matcher) Stats() Stats {
	m.mu.Lock()
	st := Stats{
		Cancellations:   m.cancellations.Load(),
		Batches:         m.batches,
		Changes:         m.changes,
		Comparisons:     m.comparisons.Load(),
		ConflictInserts: m.confIns,
		ConflictRemoves: m.confRem,
	}
	m.mu.Unlock()
	st.Wakeups = m.sched.wakeups.Load()
	st.InlineBatches = m.sched.bypasses.Load()
	st.ResidentWorkers = int(m.sched.resident.Load())
	st.PerWorker = make([]WorkerStat, len(m.sched.workers))
	for i := range m.sched.workers {
		w := &m.sched.workers[i]
		ws := WorkerStat{
			Executed: w.executed.Load(),
			Stolen:   w.stolen.Load(),
			Parked:   w.parked.Load(),
		}
		st.PerWorker[i] = ws
		st.Tasks += ws.Executed
		st.Steals += ws.Stolen
		st.Parks += ws.Parked
	}
	return st
}

// IndexInfo summarises the hash-bucketed node memories.
type IndexInfo struct {
	// IndexedNodes and FallbackNodes partition the two-input nodes by
	// whether they key their memories on an equality join key.
	IndexedNodes  int
	FallbackNodes int
	// Buckets is the number of live (key, side) buckets; MaxBucket the
	// largest bucket's population.
	Buckets   int
	MaxBucket int
}

// IndexInfo reports current bucket occupancy. It takes each stripe lock
// in turn — never more than one at a time — so it is safe to call
// concurrently with Apply; the numbers are then a point-in-time sample
// of a moving target, not a consistent snapshot.
func (m *Matcher) IndexInfo() IndexInfo {
	var info IndexInfo
	for _, pn := range m.nodes {
		if pn.leftHash != nil {
			info.IndexedNodes++
		} else {
			info.FallbackNodes++
		}
		for i := range pn.shards {
			sh := &pn.shards[i]
			sh.mu.Lock()
			for _, ts := range sh.left {
				info.Buckets++
				n := 0
				for _, chain := range ts {
					n += len(chain)
				}
				if n > info.MaxBucket {
					info.MaxBucket = n
				}
			}
			for _, wb := range sh.right {
				info.Buckets++
				if len(wb) > info.MaxBucket {
					info.MaxBucket = len(wb)
				}
			}
			sh.mu.Unlock()
		}
	}
	return info
}

// NodeProfile returns the accumulated per-node work of every activated
// two-input node, in node-ID order, in the same shape as the serial
// network's profile (rete.NodeProfEntry). Every activation of a keyed
// node probes its join-key bucket, so IndexedProbes equals Activations
// there and is zero on single-shard fallback nodes.
func (m *Matcher) NodeProfile() []rete.NodeProfEntry {
	var out []rete.NodeProfEntry
	for j, pn := range m.nodes {
		acts := pn.prof.activations.Load()
		if acts == 0 {
			continue
		}
		e := rete.NodeProfEntry{
			NodeID:      j.ID,
			Label:       j.Label(),
			SharedBy:    j.SharedBy,
			Productions: j.ProductionNames(),
			NodeProf: rete.NodeProf{
				Activations:  acts,
				TokensTested: pn.prof.tested.Load(),
				PairsEmitted: pn.prof.emitted.Load(),
			},
		}
		if pn.leftHash != nil {
			e.IndexedProbes = acts
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].NodeID < out[k].NodeID })
	return out
}

// Apply processes a batch of WM changes in parallel and flushes the net
// conflict-set deltas through OnInsert/OnRemove before returning. A
// batch too small to amortise the pool wake runs inline on the caller.
// Apply must not be called concurrently with itself; concurrent Close
// is fine.
func (m *Matcher) Apply(changes []ops5.Change) {
	t0 := nanotime()
	s := m.sched
	lanes := len(s.workers)
	// Dispatch every change through the (read-only) constant-test
	// network. One WME's activations of one alpha memory's successors
	// coarsen into a single seed task; the activation count under the
	// seeds drives the bypass decision. All changes are injected up
	// front: the paper's "multiple changes to working memory are
	// processed in parallel".
	seeds := m.seedBuf[:0]
	activations := 0
	for _, ch := range changes {
		mems, _ := m.net.MatchAlphas(ch.WME)
		for _, am := range mems {
			roots := m.roots[am]
			if len(roots) == 0 {
				continue
			}
			seeds = append(seeds, task{nodes: roots, side: rightSide, dir: ch.Kind, wme: ch.WME})
			activations += len(roots)
		}
	}
	t1 := nanotime()
	if len(seeds) > 0 {
		bypass := lanes == 1 || (m.bypassBelow > 0 && activations < m.bypassBelow)
		if bypass {
			m.seedLane(0, seeds)
			s.bypasses.Add(1)
			m.drainInline(t1)
		} else {
			m.distribute(seeds)
			if s.wake(m, t1) {
				s.batchWG.Wait()
			} else {
				// Pool closed between seeding and wake: the caller
				// drains the spread-out seeds itself.
				s.bypasses.Add(1)
				m.drainInline(t1)
			}
		}
	}
	t2 := nanotime()
	if len(seeds) > 0 {
		// Close each lane's books to the barrier: a lane's own stamps
		// stop at its batch-loop exit, but the active window ends only
		// when the last lane is through the barrier. Charging the
		// straggler gap to park makes the phase totals cover the whole
		// window, so seed + merge + phases/workers reconstructs Apply
		// wall time. A lane the batch never woke (the bypass path, or a
		// pool that was never started) still owes its whole [t1, t2]
		// share of the processor budget — that idle time is charged to
		// park too. batchWG.Wait orders these writes after every woken
		// lane's last stamp.
		for i := range s.workers {
			w := &s.workers[i]
			if w.clock.last < t1 {
				w.clock.last = t1
			}
			w.clock.ns[phasePark].Add(t2 - w.clock.last)
			w.clock.last = t2
		}
	}
	for i := range seeds {
		seeds[i] = task{} // release WME references
	}
	m.seedBuf = seeds[:0]
	m.flush()
	t3 := nanotime()
	m.mu.Lock()
	m.batches++
	m.changes += int64(len(changes))
	m.applyNs += t3 - t0
	m.seedNs += t1 - t0
	m.activeNs += t2 - t1
	m.mergeNs += t3 - t2
	m.mu.Unlock()
}

// seedLane pushes every seed task onto one lane's deque.
func (m *Matcher) seedLane(wi int, seeds []task) {
	for _, t := range seeds {
		m.sched.submit(wi, t)
	}
}

// distribute spreads seed tasks across the worker deques by node-ID
// hash — repeated activations of the same join nodes land on the same
// lane, keeping that lane's memory stripes cache-warm — with a per-lane
// load cap so a batch dominated by one alpha memory (one hash) still
// spreads instead of serialising on a single lane. Capped overflow
// round-robins across the lanes.
func (m *Matcher) distribute(seeds []task) {
	s := m.sched
	lanes := len(s.workers)
	cap32 := int32(2*len(seeds)/lanes + 1)
	load := m.laneLoad
	for i := range load {
		load[i] = 0
	}
	next := 0
	for _, t := range seeds {
		h := uint64(t.nodes[0].id) * 0x9e3779b97f4a7c15
		wi := int((h >> 33) % uint64(lanes))
		if load[wi] >= cap32 {
			for load[next] >= cap32 {
				next++
				if next == lanes {
					next = 0
				}
			}
			wi = next
		}
		load[wi]++
		s.submit(wi, t)
	}
}

// drainInline runs an already-seeded batch on the calling goroutine as
// lane 0 — the serial bypass. With no pool woken there is no wake
// round-trip, no barrier and no cross-lane traffic to pay for; the
// caller simply retires tasks (lane 0's deque first, every deque for
// the closed-pool fallback) until the batch is empty.
func (m *Matcher) drainInline(t1 int64) {
	s := m.sched
	w := &s.workers[0]
	w.clock.last = t1
	w.clock.stamp(phaseSubmit) // the seeding pushes
	for {
		t, ok := s.popAny()
		if !ok {
			return
		}
		m.run(t, 0)
		s.outstanding.Add(-1)
	}
}

// batchLoop is one scheduler lane's run loop for a single batch: drain
// the own deque LIFO, then steal or take overflow, then park. The
// worker that retires the batch's last activation wakes every parked
// lane and all loops return to the epoch gate.
func (m *Matcher) batchLoop(wi int) {
	s := m.sched
	w := &s.workers[wi]
	for {
		t, ok := w.dq.popTail()
		if !ok {
			t, ok = s.findWork(wi)
		}
		if !ok {
			if !s.park(wi) {
				return
			}
			continue
		}
		m.run(t, wi)
		if s.outstanding.Add(-1) == 0 {
			s.wakeAll()
			return
		}
	}
}

// run executes one scheduler task: a single node activation, or a
// coarsened seed task's activation of every sibling right-input node.
func (m *Matcher) run(t task, wi int) {
	if t.nodes == nil {
		m.runNode(t.node, t, wi, 0)
		return
	}
	for _, n := range t.nodes {
		m.runNode(n, t, wi, 0)
	}
}

// runNode executes one node activation, batching conflict deltas on the
// worker and either inlining the downstream activations (small fan-out,
// shallow recursion — see inlineFanout/maxInlineDepth) or pushing them
// onto the executing worker's deque. Only the task's own join-key
// bucket (and its lock stripe) is touched: a matching pair always
// shares the key, so the opposite bucket under the same stripe lock is
// the complete candidate set.
func (m *Matcher) runNode(n *pnode, t task, wi, depth int) {
	w := &m.sched.workers[wi]
	emits := w.emits[depth][:0]
	key := n.key(t)
	sh := n.shardOf(key)
	tested := 0
	// Loss accounting: the dispatch prefix (deque pop, key hash) counts
	// as match work; the Lock() call is charged to lock_wait; the
	// guarded section and profiling updates to match; the downstream
	// submit loop to submit. start anchors the task-size histogram.
	w.clock.stamp(phaseMatch)
	start := w.clock.last
	sh.mu.Lock()
	w.clock.stamp(phaseLockWait)
	switch {
	case t.side == rightSide && n.kind == rete.JoinPositive:
		if cancelled := sh.updateRight(key, t); cancelled {
			m.cancelled()
			break
		}
		for _, chain := range sh.left[key] {
			for _, e := range chain {
				if e.count <= 0 {
					continue
				}
				tested++
				if n.match(e.tok, t.wme) {
					emits = append(emits, emit{tok: e.tok.Extend(t.wme), dir: t.dir})
				}
			}
		}
	case t.side == rightSide && n.kind == rete.JoinNegative:
		if cancelled := sh.updateRight(key, t); cancelled {
			m.cancelled()
			break
		}
		for _, chain := range sh.left[key] {
			for _, e := range chain {
				if e.count <= 0 {
					continue
				}
				tested++
				if !n.match(e.tok, t.wme) {
					continue
				}
				switch t.dir {
				case ops5.Insert:
					e.matches++
					if e.matches == 1 {
						emits = append(emits, emit{tok: e.tok, dir: ops5.Delete})
					}
				case ops5.Delete:
					e.matches--
					if e.matches == 0 {
						emits = append(emits, emit{tok: e.tok, dir: ops5.Insert})
					}
				}
			}
		}
	case t.side == leftSide && n.kind == rete.JoinPositive:
		if cancelled := sh.updateLeft(key, t); cancelled {
			m.cancelled()
			break
		}
		for _, e := range sh.right[key] {
			if e.count <= 0 {
				continue
			}
			tested++
			if n.match(t.tok, e.wme) {
				emits = append(emits, emit{tok: t.tok.Extend(e.wme), dir: t.dir})
			}
		}
	case t.side == leftSide && n.kind == rete.JoinNegative:
		switch t.dir {
		case ops5.Insert:
			e := sh.leftEntry(key, t.tok)
			e.count++
			c := e.count
			if c == 0 {
				sh.dropLeft(key, t.tok) // e is pooled; do not touch it again
			}
			if c <= 0 {
				m.cancelled()
				break // annihilated by an earlier delete
			}
			matches := 0
			for _, re := range sh.right[key] {
				if re.count <= 0 {
					continue
				}
				tested++
				if n.match(t.tok, re.wme) {
					matches += re.count
				}
			}
			e.matches = matches
			if matches == 0 {
				emits = append(emits, emit{tok: t.tok, dir: ops5.Insert})
			}
		case ops5.Delete:
			e := sh.leftEntry(key, t.tok)
			hadMatches := e.matches
			present := e.count > 0
			e.count--
			if e.count == 0 {
				sh.dropLeft(key, t.tok) // e is pooled; do not touch it again
			}
			if !present {
				m.cancelled()
				break // delete arrived before insert; both annihilate
			}
			if hadMatches == 0 {
				emits = append(emits, emit{tok: t.tok, dir: ops5.Delete})
			}
		}
	}
	sh.mu.Unlock()
	m.comparisons.Add(int64(tested))
	n.prof.activations.Add(1)
	if tested > 0 {
		n.prof.tested.Add(int64(tested))
	}
	if len(emits) > 0 {
		n.prof.emitted.Add(int64(len(emits)))
	}
	w.executed.Add(1)
	w.clock.stamp(phaseMatch)
	w.taskSizes[taskBucket(w.clock.last-start)].Add(1)

	for _, e := range emits {
		for _, term := range n.terminals {
			w.pending = append(w.pending, pendingDelta{term: term, tok: e.tok, dir: e.dir})
		}
	}
	// Small, shallow fan-outs run depth-first on this worker — the
	// activation is cheaper than its deque round-trip; inlined children
	// stamp their own phases, so the parent charges nothing here. Wider
	// fan-outs go through the deque so thieves can share them.
	downstream := len(emits) * len(n.downstream)
	if downstream > 0 && downstream <= inlineFanout && depth < maxInlineDepth {
		w.clock.stamp(phaseSubmit)
		for _, e := range emits {
			for _, dn := range n.downstream {
				m.runNode(dn, task{side: leftSide, dir: e.dir, tok: e.tok}, wi, depth+1)
			}
		}
	} else {
		for _, e := range emits {
			for _, dn := range n.downstream {
				m.sched.submit(wi, task{node: dn, side: leftSide, dir: e.dir, tok: e.tok})
			}
		}
		w.clock.stamp(phaseSubmit)
	}
	w.emits[depth] = emits[:0]
}

// rightBucket returns the right bucket for a join key, creating it when
// missing. Caller holds the stripe lock.
func (sh *bucketShard) rightBucket(key uint64) map[int]*wmeEntry {
	b := sh.right[key]
	if b == nil {
		b = make(map[int]*wmeEntry)
		sh.right[key] = b
	}
	return b
}

// leftEntry returns the counted entry for a token in a key's bucket,
// creating bucket and entry (from the pool) when missing. Caller holds
// the stripe lock.
func (sh *bucketShard) leftEntry(key uint64, tok *rete.Token) *tokenEntry {
	ts := sh.left[key]
	if ts == nil {
		ts = tokenSet{}
		sh.left[key] = ts
	}
	th := rete.TokenIDHash(tok)
	for _, e := range ts[th] {
		if e.tok.EqualTo(tok) {
			return e
		}
	}
	e := sh.getTok()
	e.tok, e.count, e.matches = tok, 0, 0
	ts[th] = append(ts[th], e)
	return e
}

// dropLeft removes a token's entry, returning it to the pool and
// reclaiming the bucket when empty. The entry must not be used after
// this call.
func (sh *bucketShard) dropLeft(key uint64, tok *rete.Token) {
	ts := sh.left[key]
	th := rete.TokenIDHash(tok)
	chain := ts[th]
	for i, e := range chain {
		if e.tok.EqualTo(tok) {
			last := len(chain) - 1
			chain[i] = chain[last]
			chain[last] = nil
			if last == 0 {
				delete(ts, th)
			} else {
				ts[th] = chain[:last]
			}
			e.tok = nil
			sh.freeTok = append(sh.freeTok, e)
			break
		}
	}
	if len(ts) == 0 {
		delete(sh.left, key)
	}
}

// updateRight applies a counted right-memory update, reporting whether
// the operation was annihilated by an earlier opposite operation.
func (sh *bucketShard) updateRight(key uint64, t task) (cancelled bool) {
	b := sh.rightBucket(key)
	e := b[t.wme.TimeTag]
	if e == nil {
		e = sh.getWME()
		e.wme, e.count = t.wme, 0
		b[t.wme.TimeTag] = e
	}
	switch t.dir {
	case ops5.Insert:
		e.count++
		c := e.count
		if c == 0 {
			sh.dropRight(key, t.wme.TimeTag)
		}
		if c <= 0 {
			return true
		}
	case ops5.Delete:
		present := e.count > 0
		e.count--
		if e.count == 0 {
			sh.dropRight(key, t.wme.TimeTag)
		}
		if !present {
			return true
		}
	}
	return false
}

// dropRight removes a WME's entry, returning it to the pool and
// reclaiming the bucket when empty.
func (sh *bucketShard) dropRight(key uint64, tag int) {
	b := sh.right[key]
	if e := b[tag]; e != nil {
		e.wme = nil
		sh.freeWME = append(sh.freeWME, e)
	}
	delete(b, tag)
	if len(b) == 0 {
		delete(sh.right, key)
	}
}

// updateLeft applies a counted left-memory update for positive nodes.
func (sh *bucketShard) updateLeft(key uint64, t task) (cancelled bool) {
	e := sh.leftEntry(key, t.tok)
	switch t.dir {
	case ops5.Insert:
		e.count++
		c := e.count
		if c == 0 {
			sh.dropLeft(key, t.tok)
		}
		if c <= 0 {
			return true
		}
	case ops5.Delete:
		present := e.count > 0
		e.count--
		if e.count == 0 {
			sh.dropLeft(key, t.tok)
		}
		if !present {
			return true
		}
	}
	return false
}

func (m *Matcher) cancelled() {
	m.cancellations.Add(1)
}

// deltaLess orders pending deltas by (terminal, token identity) so that
// the flush merge can group equal instantiations with one sorted pass.
// Equal elements (same terminal, same time-tag list) are exactly the
// deltas that merge.
func deltaLess(a, b pendingDelta) bool {
	if a.term.ID != b.term.ID {
		return a.term.ID < b.term.ID
	}
	aw, bw := a.tok.WMEs, b.tok.WMEs
	if len(aw) != len(bw) {
		return len(aw) < len(bw)
	}
	for i := range aw {
		if aw[i].TimeTag != bw[i].TimeTag {
			return aw[i].TimeTag < bw[i].TimeTag
		}
	}
	return false
}

// flush merges the workers' batched deltas and applies the net changes
// in a deterministic order. Instantiations are built only for the net
// survivors — insert/delete churn within a batch never materialises
// one.
func (m *Matcher) flush() {
	buf := m.flushBuf[:0]
	for wi := range m.sched.workers {
		w := &m.sched.workers[wi]
		buf = append(buf, w.pending...)
		w.pending = w.pending[:0]
	}
	sort.Slice(buf, func(i, j int) bool { return deltaLess(buf[i], buf[j]) })

	var ins, rem int64
	for i := 0; i < len(buf); {
		j, net := i, 0
		for ; j < len(buf) && !deltaLess(buf[i], buf[j]); j++ {
			if buf[j].dir == ops5.Insert {
				net++
			} else {
				net--
			}
		}
		switch {
		case net > 0:
			ins++
			if m.OnInsert != nil {
				m.OnInsert(buf[i].term.Instantiate(buf[i].tok))
			}
		case net < 0:
			rem++
			if m.OnRemove != nil {
				m.OnRemove(buf[i].term.Instantiate(buf[i].tok))
			}
		}
		i = j
	}
	m.mu.Lock()
	m.confIns += ins
	m.confRem += rem
	m.mu.Unlock()

	for i := range buf {
		buf[i] = pendingDelta{} // release token references
	}
	m.flushBuf = buf[:0]
}
