package prete

// This file is the software stand-in for the PSM's hardware task
// scheduler (§5). The paper attributes much of the 1.93x "lost factor"
// between nominal and true speedup (§6) to scheduling and
// synchronisation overhead, and argues parallel Rete only pays off when
// dispatching one node activation costs about one bus cycle. A single
// shared queue — the original design — serialises every push and pop on
// one mutex; per-batch goroutine spawning — the second design — charges
// a goroutine startup to every lane on every Apply, which PR 8's loss
// accounting measured at 64-76% of the processor budget. Both are
// exactly the overheads the paper warns about.
//
// The scheduler here keeps one bounded deque per worker, serviced by a
// pool of resident worker goroutines:
//
//   - Workers are long-lived: they are spawned once, on the first batch
//     big enough to parallelise, and then park between batches on an
//     epoch gate (gateMu/gateCond). Apply seeds the deques, publishes a
//     new epoch and broadcasts; the first lane to run charges the
//     broadcast-to-entry latency to the spawn phase — spawn collapses
//     from goroutine startup to wake latency — while late lanes charge
//     their CPU-queueing to park. A per-epoch WaitGroup is the
//     batch barrier. Close retires the pool; a closed matcher still
//     works, running every batch inline on the caller.
//   - A worker pushes the activations it generates onto its own deque
//     tail and pops from the tail (LIFO), so a token's downstream
//     activations run depth-first on the producing worker while their
//     inputs are cache-hot. No lock is contended in steady state.
//   - A worker whose deque runs dry steals the older half of a random
//     victim's deque from the head (steal-half, FIFO end) — the classic
//     work-stealing split that moves large, stale subtrees to idle
//     workers while the victim keeps its hot tail.
//   - Deque overflow spills to a shared overflow list; it is drained
//     after steals fail and before parking.
//   - Only when every deque and the overflow list drain does a worker
//     park on the in-batch condvar; pushers signal it only when
//     sleepers are registered, so the hot path pays one atomic load. An
//     outstanding-task count provides termination: the worker that
//     retires the last activation broadcasts batch completion, and the
//     lanes return to the epoch gate.
//
// Per-worker executed/stolen/parked counters plus the pool's
// wakeups/inline-batches/resident counters make the paper's
// scheduling-overhead decomposition a measurable series (exported via
// Stats, engine.MatchStats and psmd's /metrics).

import (
	"sync"
	"sync/atomic"
)

// deqCap bounds each worker-local deque. Tasks are small, so 256 slots
// keep a worker's window under a few KB while still letting steal-half
// move meaningful chunks of work.
const deqCap = 256

// wdeque is one worker's bounded ring deque. The owner pushes and pops
// at the tail; thieves take from the head. A mutex per deque is cheap
// here: the owner's lock is uncontended unless a thief is active, and
// activations do 50-100 instructions of work per lock acquisition.
type wdeque struct {
	mu   sync.Mutex
	buf  [deqCap]task
	head int // index of the oldest task (steal end)
	n    int // population
}

// pushTail adds a task at the tail, reporting false when full.
func (d *wdeque) pushTail(t task) bool {
	d.mu.Lock()
	if d.n == deqCap {
		d.mu.Unlock()
		return false
	}
	d.buf[(d.head+d.n)%deqCap] = t
	d.n++
	d.mu.Unlock()
	return true
}

// popTail removes the newest task (owner side, LIFO).
func (d *wdeque) popTail() (task, bool) {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return task{}, false
	}
	d.n--
	i := (d.head + d.n) % deqCap
	t := d.buf[i]
	d.buf[i] = task{} // release token/WME references
	d.mu.Unlock()
	return t, true
}

// stealHalf removes the older half of the deque (at least one task,
// from the head) into out, returning the count taken.
func (d *wdeque) stealHalf(out []task) int {
	d.mu.Lock()
	if d.n == 0 {
		d.mu.Unlock()
		return 0
	}
	k := (d.n + 1) / 2
	if k > len(out) {
		k = len(out)
	}
	for i := 0; i < k; i++ {
		out[i] = d.buf[d.head]
		d.buf[d.head] = task{}
		d.head = (d.head + 1) % deqCap
	}
	d.n -= k
	d.mu.Unlock()
	return k
}

// size reads the population under the deque lock (parking re-check).
func (d *wdeque) size() int {
	d.mu.Lock()
	n := d.n
	d.mu.Unlock()
	return n
}

// worker is one scheduler lane: its deque, its counters, and the
// owner-only scratch buffers that keep the activation hot path free of
// per-task allocations.
type worker struct {
	dq wdeque

	// executed/stolen/parked are the per-worker scheduler counters
	// (atomic: Stats may snapshot them mid-batch).
	executed atomic.Int64
	stolen   atomic.Int64
	parked   atomic.Int64

	// emits holds one owner-only scratch buffer per inline depth for an
	// activation's outputs — inlined downstream activations recurse, so
	// each depth needs its own buffer; pending batches the worker's
	// conflict-set deltas until the flush merge. Both retain capacity
	// across batches.
	emits   [maxInlineDepth + 1][]emit
	pending []pendingDelta

	// clock attributes this lane's wall time to phases and taskSizes
	// histograms activation execution times (loss.go) — the §6
	// loss-factor instrument.
	clock     phaseClock
	taskSizes [numTaskBuckets]atomic.Int64

	// rng drives victim selection (xorshift; seeded per worker).
	rng uint32
}

// nextRand steps the worker's xorshift32 generator.
func (w *worker) nextRand() uint32 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	w.rng = x
	return x
}

// scheduler owns the workers, the overflow list, the parking state and
// the resident-pool gate for one Matcher. It persists across Apply
// batches so deques, scratch buffers, counters — and now the worker
// goroutines themselves — are reused.
type scheduler struct {
	workers []worker
	steal   bool

	// outstanding counts submitted-but-unretired tasks; the worker that
	// takes it to zero ends the batch.
	outstanding atomic.Int64

	overflow struct {
		mu    sync.Mutex
		items []task
	}

	// In-batch parking: a worker that finds no work registers in
	// sleepers and waits on cond; pushers signal only when sleepers > 0,
	// so pushes pay one atomic load when everyone is busy.
	parkMu   sync.Mutex
	cond     *sync.Cond
	sleepers atomic.Int32

	// Between-batch parking: the epoch gate. Apply publishes a new epoch
	// under gateMu and broadcasts gateCond; each resident worker waits
	// for an epoch it has not seen (or closed). started flips when the
	// pool is lazily spawned on the first non-bypassed batch; closed is
	// set once by close(). wakeNs is the publish instant — the lanes'
	// books for the batch open there (spawn for the first runner, park
	// for the rest; see firstRun).
	gateMu   sync.Mutex
	gateCond *sync.Cond
	epoch    int64
	wakeNs   int64
	started  bool
	closed   bool

	// batchWG is the per-epoch barrier: Add(lanes) before the epoch is
	// published, Done per lane at batch end, Wait in Apply. workerWG
	// tracks the resident goroutines themselves, for close().
	batchWG  sync.WaitGroup
	workerWG sync.WaitGroup

	// firstRun holds the newest epoch whose wake latency has been
	// claimed: the first lane to start running an epoch charges
	// [wakeNs, entry] to spawn — that is the pool's actual wake latency
	// — while the other lanes charge the same interval to park, since
	// they were runnable but waiting for a CPU their peers were using
	// (idle time, not dispatch cost).
	firstRun atomic.Int64

	// wakeups counts epoch broadcasts; bypasses counts batches run
	// inline on the caller; resident counts live pool goroutines.
	wakeups  atomic.Int64
	bypasses atomic.Int64
	resident atomic.Int32
}

func newScheduler(workers int, steal bool) *scheduler {
	s := &scheduler{workers: make([]worker, workers), steal: steal}
	s.cond = sync.NewCond(&s.parkMu)
	s.gateCond = sync.NewCond(&s.gateMu)
	for i := range s.workers {
		s.workers[i].rng = uint32(i)*2654435761 + 1
	}
	return s
}

// wake publishes a new epoch at instant now and broadcasts the resident
// lanes awake, lazily spawning them on the first call. It returns false
// when the pool is closed — the caller then drains the already-seeded
// deques inline. On success the caller must wait on batchWG.
func (s *scheduler) wake(m *Matcher, now int64) bool {
	s.gateMu.Lock()
	if s.closed {
		s.gateMu.Unlock()
		return false
	}
	if !s.started {
		s.started = true
		for i := range s.workers {
			s.workerWG.Add(1)
			s.resident.Add(1)
			go m.residentLoop(i)
		}
	}
	s.batchWG.Add(len(s.workers))
	s.epoch++
	s.wakeNs = now
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
	s.wakeups.Add(1)
	return true
}

// close retires the resident pool: lanes finish any published epoch,
// then exit. Idempotent; blocks until every lane is gone.
func (s *scheduler) close() {
	s.gateMu.Lock()
	if s.closed {
		s.gateMu.Unlock()
		return
	}
	s.closed = true
	s.gateCond.Broadcast()
	s.gateMu.Unlock()
	s.workerWG.Wait()
}

// residentLoop is one pool goroutine: park at the epoch gate, run the
// published batch, signal the barrier, repeat until closed. A pending
// epoch is always processed before exiting, so close() cannot strand a
// batch Apply is waiting on.
func (m *Matcher) residentLoop(wi int) {
	s := m.sched
	w := &s.workers[wi]
	defer s.workerWG.Done()
	defer s.resident.Add(-1)
	var seen int64
	for {
		s.gateMu.Lock()
		for s.epoch == seen && !s.closed {
			s.gateCond.Wait()
		}
		if s.epoch == seen {
			s.gateMu.Unlock()
			return
		}
		seen = s.epoch
		wakeNs := s.wakeNs
		s.gateMu.Unlock()
		// Every lane's books start at the epoch publish instant, but only
		// the first lane to run charges the gap to spawn: that gap is the
		// pool's wake latency, the residue of what used to be a goroutine
		// startup. The remaining lanes were merely queued for a CPU while
		// their peers (or the caller) ran — on an oversubscribed host that
		// queueing can span most of the batch, and it is idle time (park),
		// not dispatch cost.
		w.clock.last = wakeNs
		if f := s.firstRun.Load(); f < seen && s.firstRun.CompareAndSwap(f, seen) {
			w.clock.stamp(phaseSpawn)
		} else {
			w.clock.stamp(phasePark)
		}
		m.batchLoop(wi)
		// The exit tail (retiring the last task's bookkeeping, or the
		// final park wake-up) is charged to park so the lane's phase
		// totals cover its whole time in the batch.
		w.clock.stamp(phasePark)
		s.batchWG.Done()
	}
}

// submit enqueues a task on worker wi's deque (spilling to overflow
// when full) and wakes an in-batch sleeper if any worker is parked.
func (s *scheduler) submit(wi int, t task) {
	s.outstanding.Add(1)
	if !s.workers[wi].dq.pushTail(t) {
		s.spill(t)
	}
	if s.sleepers.Load() > 0 {
		s.parkMu.Lock()
		if s.steal {
			// Any woken worker can reach the task by stealing.
			s.cond.Signal()
		} else {
			// Without stealing only the deque's owner can run the task,
			// and Signal might wake some other worker that would just go
			// back to sleep — wake everyone.
			s.cond.Broadcast()
		}
		s.parkMu.Unlock()
	}
}

// spill pushes a task onto the shared overflow list.
func (s *scheduler) spill(t task) {
	s.overflow.mu.Lock()
	s.overflow.items = append(s.overflow.items, t)
	s.overflow.mu.Unlock()
}

// popOverflow takes one task from the shared overflow list.
func (s *scheduler) popOverflow() (task, bool) {
	s.overflow.mu.Lock()
	n := len(s.overflow.items)
	if n == 0 {
		s.overflow.mu.Unlock()
		return task{}, false
	}
	t := s.overflow.items[n-1]
	s.overflow.items[n-1] = task{}
	s.overflow.items = s.overflow.items[:n-1]
	s.overflow.mu.Unlock()
	return t, true
}

// popAny drains in inline mode: lane 0's deque first (inline batches
// submit only there), then — for the closed-pool fallback, whose seeds
// were already spread across lanes — every other deque and the overflow
// list.
func (s *scheduler) popAny() (task, bool) {
	for i := range s.workers {
		if t, ok := s.workers[i].dq.popTail(); ok {
			return t, true
		}
	}
	return s.popOverflow()
}

// findWork is the slow path for a worker whose own deque is empty:
// steal half of a random victim's deque, else drain overflow. Its time
// is charged to steal_hit (successful scan), overflow (a task from the
// shared list) or steal_miss (nothing found; also the fruitless prefix
// of a scan that ends at the overflow list).
func (s *scheduler) findWork(wi int) (task, bool) {
	w := &s.workers[wi]
	if s.steal && len(s.workers) > 1 {
		var buf [deqCap/2 + 1]task
		off := int(w.nextRand()) % len(s.workers)
		if off < 0 {
			off = -off
		}
		for i := 0; i < len(s.workers); i++ {
			vi := off + i
			if vi >= len(s.workers) {
				vi -= len(s.workers)
			}
			if vi == wi {
				continue
			}
			k := s.workers[vi].dq.stealHalf(buf[:])
			if k == 0 {
				continue
			}
			w.stolen.Add(int64(k))
			for j := 1; j < k; j++ {
				if !w.dq.pushTail(buf[j]) {
					s.spill(buf[j])
				}
			}
			w.clock.stamp(phaseStealHit)
			return buf[0], true
		}
		w.clock.stamp(phaseStealMiss)
	}
	if t, ok := s.popOverflow(); ok {
		w.clock.stamp(phaseOverflow)
		return t, true
	}
	w.clock.stamp(phaseStealMiss)
	return task{}, false
}

// usableWork reports whether worker wi could obtain a task right now:
// its own deque, the overflow list, or (with stealing on) any victim.
func (s *scheduler) usableWork(wi int) bool {
	if s.workers[wi].dq.size() > 0 {
		return true
	}
	s.overflow.mu.Lock()
	n := len(s.overflow.items)
	s.overflow.mu.Unlock()
	if n > 0 {
		return true
	}
	if s.steal {
		for i := range s.workers {
			if i != wi && s.workers[i].dq.size() > 0 {
				return true
			}
		}
	}
	return false
}

// park blocks worker wi until work appears or the batch completes,
// returning false on completion. All time inside — registration,
// re-checks and the condvar wait — is charged to the park phase.
func (s *scheduler) park(wi int) bool {
	w := &s.workers[wi]
	s.parkMu.Lock()
	for {
		// Register as a sleeper BEFORE the final work re-check. A submit
		// that then loads sleepers == 0 is ordered before this
		// registration, so its push is visible to the usableWork scan
		// below; a submit that loads sleepers > 0 signals under parkMu
		// and cannot fire between the scan and the Wait. Either way the
		// wakeup is not lost.
		s.sleepers.Add(1)
		if s.outstanding.Load() == 0 {
			s.sleepers.Add(-1)
			s.parkMu.Unlock()
			w.clock.stamp(phasePark)
			return false
		}
		if s.usableWork(wi) {
			s.sleepers.Add(-1)
			s.parkMu.Unlock()
			w.clock.stamp(phasePark)
			return true
		}
		w.parked.Add(1)
		s.cond.Wait()
		s.sleepers.Add(-1)
	}
}

// wakeAll broadcasts batch completion to every in-batch parked worker.
func (s *scheduler) wakeAll() {
	s.parkMu.Lock()
	s.cond.Broadcast()
	s.parkMu.Unlock()
}
