package psm_test

import (
	"testing"

	"repro/internal/psm"
	"repro/internal/trace"
	"repro/internal/workload"
)

// wideTrace builds a high-parallelism workload (many parallel firings).
func wideTrace() *trace.Trace {
	p, _ := workload.SystemByName("r1-soar")
	p.FiringsPerCycle = 8
	p.Cycles = 40
	p.Name = "r1-soar (8 firings)"
	return workload.Generate(p)
}

func TestHierarchicalMatchesFlatAtOneCluster(t *testing.T) {
	// One cluster with no global traffic must behave like the flat
	// machine.
	tr := wideTrace()
	flat := psm.Simulate(tr, psm.DefaultConfig(32))
	h := psm.DefaultHierConfig(1, 32)
	h.GlobalTransferPerChange = 0
	h.GlobalTransferPerTerminal = 0
	hier := psm.SimulateHierarchical(tr, h)
	ratio := hier.Makespan / flat.Makespan
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("single-cluster hierarchy makespan %.4fms vs flat %.4fms (ratio %.3f)",
			hier.Makespan*1e3, flat.Makespan*1e3, ratio)
	}
}

func TestHierarchyScalesPastBusSaturation(t *testing.T) {
	// With a high-parallelism workload, a flat 256-processor machine is
	// limited by its single bus; 8 clusters of 32 with local buses must
	// be faster.
	tr := wideTrace()
	flat := psm.Simulate(tr, psm.DefaultConfig(256))
	hier := psm.SimulateHierarchical(tr, psm.DefaultHierConfig(8, 32))
	if hier.WMChangesPerSec <= flat.WMChangesPerSec {
		t.Errorf("hierarchical 8x32 (%.0f wme/s) should beat flat 256 on one bus (%.0f wme/s)",
			hier.WMChangesPerSec, flat.WMChangesPerSec)
	}
}

func TestHierarchyMoreClustersMoreThroughput(t *testing.T) {
	tr := wideTrace()
	h2 := psm.SimulateHierarchical(tr, psm.DefaultHierConfig(2, 32))
	h8 := psm.SimulateHierarchical(tr, psm.DefaultHierConfig(8, 32))
	if h8.WMChangesPerSec <= h2.WMChangesPerSec {
		t.Errorf("8 clusters (%.0f wme/s) should beat 2 clusters (%.0f wme/s)",
			h8.WMChangesPerSec, h2.WMChangesPerSec)
	}
}

func TestHierarchyGlobalBusVisible(t *testing.T) {
	tr := wideTrace()
	cheap := psm.DefaultHierConfig(4, 16)
	expensive := cheap
	expensive.GlobalBusCycle = 5e-6 // pathologically slow global bus
	rc := psm.SimulateHierarchical(tr, cheap)
	re := psm.SimulateHierarchical(tr, expensive)
	if re.Makespan <= rc.Makespan {
		t.Errorf("slow global bus (%.3fms) should hurt vs fast (%.3fms)",
			re.Makespan*1e3, rc.Makespan*1e3)
	}
}
