package psm

import (
	"container/heap"
	"math"

	"repro/internal/rete"
	"repro/internal/trace"
)

// HierConfig specifies the hierarchical multiprocessor of §5: when more
// than 32-64 processors are needed (100-1000), the paper proposes
// clusters of processors, each with its own bus and task scheduler,
// joined by a global bus.
//
// The model here assigns each working-memory change's activation tree
// to one cluster (round-robin), so intra-change dependencies stay on
// the cluster's local bus; conflict-set updates (terminal activations)
// and the initial change broadcast cross the global bus.
type HierConfig struct {
	// Clusters is the number of processor clusters.
	Clusters int
	// PerCluster is the number of processors in each cluster.
	PerCluster int
	// Cluster configures each cluster's processors, local bus and
	// scheduler (the Processors field is ignored; PerCluster is used).
	Cluster Config
	// GlobalBusCycle is the inter-cluster bus transaction time.
	GlobalBusCycle float64
	// GlobalTransferPerChange is the number of global transactions to
	// distribute one WM change to a cluster.
	GlobalTransferPerChange int
	// GlobalTransferPerTerminal is the number of global transactions
	// per conflict-set update (terminals are centralised for
	// conflict resolution).
	GlobalTransferPerTerminal int
}

// DefaultHierConfig returns a hierarchy of the given shape with the
// paper's per-cluster machine and a global bus twice as slow as the
// cluster buses.
func DefaultHierConfig(clusters, perCluster int) HierConfig {
	return HierConfig{
		Clusters:                  clusters,
		PerCluster:                perCluster,
		Cluster:                   DefaultConfig(perCluster),
		GlobalBusCycle:            200e-9,
		GlobalTransferPerChange:   4,
		GlobalTransferPerTerminal: 2,
	}
}

// SimulateHierarchical runs the trace on the hierarchical machine.
func SimulateHierarchical(tr *trace.Trace, cfg HierConfig) Result {
	if cfg.Clusters < 1 {
		cfg.Clusters = 1
	}
	if cfg.PerCluster < 1 {
		cfg.PerCluster = 1
	}
	var res Result
	res.Tasks = len(tr.Tasks)
	mips := cfg.Cluster.MIPS
	res.SerialSec = tr.TotalCost() / mips

	// Per-cluster machine state persists across batches.
	procFree := make([][]float64, cfg.Clusters)
	for c := range procFree {
		procFree[c] = make([]float64, cfg.PerCluster)
	}
	busFree := make([]float64, cfg.Clusters)
	schedFree := make([]float64, cfg.Clusters)
	var globalBusFree float64

	now := 0.0
	start := 0
	for start < len(tr.Tasks) {
		end := start
		batch := tr.Tasks[start].Batch
		for end < len(tr.Tasks) && tr.Tasks[end].Batch == batch {
			end++
		}
		now = simulateHierBatch(tr.Tasks[start:end], cfg, now,
			procFree, busFree, schedFree, &globalBusFree, &res)
		for c := range procFree {
			for i := range procFree[c] {
				if procFree[c][i] < now {
					procFree[c][i] = now
				}
			}
		}
		start = end
	}
	res.Makespan = now
	if res.Makespan > 0 {
		res.Concurrency = res.BusyTime / res.Makespan
		res.TrueSpeedup = res.SerialSec / res.Makespan
		res.WMChangesPerSec = float64(tr.Changes) / res.Makespan
		if tr.Firings > 0 {
			res.FiringsPerSec = float64(tr.Firings) / res.Makespan
		}
	}
	if res.TrueSpeedup > 0 {
		res.LostFactor = res.Concurrency / res.TrueSpeedup
	}
	res.Concurrency = math.Min(res.Concurrency, float64(cfg.Clusters*cfg.PerCluster))
	return res
}

// simulateHierBatch list-schedules one batch across the clusters.
func simulateHierBatch(tasks []trace.Task, cfg HierConfig, batchStart float64,
	procFree [][]float64, busFree, schedFree []float64, globalBusFree *float64,
	res *Result) float64 {

	// Assign each change to a cluster round-robin, paying the global
	// distribution cost once per (change, cluster).
	clusterOf := func(change int) int { return change % cfg.Clusters }

	byID := make(map[int64]int, len(tasks))
	sims := make([]simTask, len(tasks))
	for i := range tasks {
		sims[i] = simTask{t: &tasks[i], ready: batchStart}
		byID[tasks[i].ID] = i
	}
	distributed := map[int]bool{}
	for i := range tasks {
		if p, ok := byID[tasks[i].Parent]; ok && tasks[i].Parent != tasks[i].ID {
			sims[p].children = append(sims[p].children, i)
			sims[i].deps++
		}
		// Root tasks pay the global change-distribution transfer once.
		if tasks[i].Parent == 0 && !distributed[tasks[i].Change] {
			distributed[tasks[i].Change] = true
			svc := float64(cfg.GlobalTransferPerChange) * cfg.GlobalBusCycle
			wait := math.Max(0, *globalBusFree-batchStart)
			*globalBusFree = math.Max(*globalBusFree, batchStart) + svc
			sims[i].ready = batchStart + wait + svc
		}
	}
	h := &readyHeap{}
	for i := range sims {
		if sims[i].deps == 0 {
			heap.Push(h, &sims[i])
		}
	}
	mips := cfg.Cluster.MIPS
	finishMax := batchStart
	for h.Len() > 0 {
		st := heap.Pop(h).(*simTask)
		t := st.t
		cl := clusterOf(t.Change)

		proc := 0
		for i := 1; i < len(procFree[cl]); i++ {
			if procFree[cl][i] < procFree[cl][proc] {
				proc = i
			}
		}
		startAt := math.Max(st.ready, procFree[cl][proc])

		instr := t.Cost
		if t.Kind == rete.KindRoot {
			instr *= cfg.Cluster.SharingLossFactor
		}
		instr += cfg.Cluster.TaskOverheadInstr

		var schedWait, dispatchBus float64
		switch cfg.Cluster.Scheduler {
		case HardwareScheduler:
			dispatchBus = cfg.Cluster.BusCycle
		case SoftwareScheduler:
			svc := cfg.Cluster.SWDispatchInstr / mips
			wait := math.Max(0, schedFree[cl]-startAt)
			schedFree[cl] = math.Max(schedFree[cl], startAt) + svc
			schedWait = wait + svc
			instr += cfg.Cluster.SWDispatchInstr
		}

		cpu := instr / mips
		transactions := instr * cfg.Cluster.MemRefFraction * (1 - cfg.Cluster.CacheHitRatio)
		busSvc := dispatchBus + transactions*cfg.Cluster.BusCycle
		busWait := math.Max(0, busFree[cl]-startAt)
		busFree[cl] = math.Max(busFree[cl], startAt) + busSvc

		// Terminal activations centralise conflict-set updates over the
		// global bus.
		var globalSvc, globalWait float64
		if t.Kind == rete.KindTerm {
			globalSvc = float64(cfg.GlobalTransferPerTerminal) * cfg.GlobalBusCycle
			globalWait = math.Max(0, *globalBusFree-startAt)
			*globalBusFree = math.Max(*globalBusFree, startAt) + globalSvc
		}

		finish := startAt + schedWait + cpu + busSvc + busWait + globalSvc + globalWait
		procFree[cl][proc] = finish
		res.BusyTime += finish - startAt
		res.BusWaitSec += busWait + globalWait
		res.SchedWaitSec += schedWait
		if finish > finishMax {
			finishMax = finish
		}
		for _, c := range st.children {
			sims[c].deps--
			if sims[c].ready < finish {
				sims[c].ready = finish
			}
			if sims[c].deps == 0 {
				heap.Push(h, &sims[c])
			}
		}
	}
	return finishMax
}
