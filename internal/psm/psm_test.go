package psm_test

import (
	"math"
	"testing"

	"repro/internal/psm"
	"repro/internal/trace"
)

// flatTrace builds one batch of n independent equal-cost tasks.
func flatTrace(n int, cost float64) *trace.Trace {
	tr := &trace.Trace{Name: "flat", Batches: 1, Changes: n, Firings: 1}
	for i := 0; i < n; i++ {
		tr.Tasks = append(tr.Tasks, trace.Task{
			ID: int64(i + 1), Parent: 0, Batch: 0, Change: i, Prod: -1, Cost: cost,
		})
	}
	return tr
}

// chainTrace builds one batch that is a single dependency chain.
func chainTrace(n int, cost float64) *trace.Trace {
	tr := &trace.Trace{Name: "chain", Batches: 1, Changes: 1, Firings: 1}
	for i := 0; i < n; i++ {
		tr.Tasks = append(tr.Tasks, trace.Task{
			ID: int64(i + 1), Parent: int64(i), Batch: 0, Change: 0, Prod: -1, Cost: cost,
		})
	}
	return tr
}

// idealConfig removes every overhead so results are exactly computable.
func idealConfig(p int) psm.Config {
	return psm.Config{
		Processors:        p,
		MIPS:              1e6,
		Scheduler:         psm.HardwareScheduler,
		BusCycle:          0,
		MemRefFraction:    0,
		CacheHitRatio:     1,
		TaskOverheadInstr: 0,
		SharingLossFactor: 1,
	}
}

func TestFlatTraceScalesLinearly(t *testing.T) {
	tr := flatTrace(64, 1000)
	r1 := psm.Simulate(tr, idealConfig(1))
	r16 := psm.Simulate(tr, idealConfig(16))
	if math.Abs(r1.Makespan-64e-3) > 1e-9 {
		t.Errorf("serial makespan = %v, want 0.064", r1.Makespan)
	}
	if math.Abs(r16.Makespan-4e-3) > 1e-9 {
		t.Errorf("16-proc makespan = %v, want 0.004", r16.Makespan)
	}
	if math.Abs(r16.TrueSpeedup-16) > 1e-6 {
		t.Errorf("speedup = %v, want 16", r16.TrueSpeedup)
	}
	if math.Abs(r16.Concurrency-16) > 1e-6 {
		t.Errorf("concurrency = %v, want 16", r16.Concurrency)
	}
}

func TestChainTraceDoesNotScale(t *testing.T) {
	tr := chainTrace(50, 1000)
	r := psm.Simulate(tr, idealConfig(32))
	if math.Abs(r.TrueSpeedup-1) > 1e-6 {
		t.Errorf("chain speedup = %v, want 1 (no parallelism in a chain)", r.TrueSpeedup)
	}
	if math.Abs(r.Makespan-50e-3) > 1e-9 {
		t.Errorf("makespan = %v, want 0.05", r.Makespan)
	}
}

func TestBatchBarrier(t *testing.T) {
	// Two batches of 8 parallel tasks: with 8 processors the makespan
	// must be 2 task-times, not 1 (barrier between cycles).
	tr := &trace.Trace{Name: "b", Batches: 2, Changes: 16, Firings: 2}
	id := int64(1)
	for b := 0; b < 2; b++ {
		for i := 0; i < 8; i++ {
			tr.Tasks = append(tr.Tasks, trace.Task{ID: id, Batch: b, Change: i, Prod: -1, Cost: 1000})
			id++
		}
	}
	r := psm.Simulate(tr, idealConfig(16))
	if math.Abs(r.Makespan-2e-3) > 1e-9 {
		t.Errorf("makespan = %v, want 0.002 (two barrier-separated batches)", r.Makespan)
	}
}

func TestNodeExclusivitySerialises(t *testing.T) {
	tr := flatTrace(8, 1000)
	for i := range tr.Tasks {
		tr.Tasks[i].NodeID = 7 // all on one node
	}
	cfg := idealConfig(8)
	cfg.NodeExclusive = true
	r := psm.Simulate(tr, cfg)
	if math.Abs(r.Makespan-8e-3) > 1e-9 {
		t.Errorf("makespan = %v, want 0.008 (same-node tasks serialise)", r.Makespan)
	}
	cfg.NodeExclusive = false
	r = psm.Simulate(tr, cfg)
	if math.Abs(r.Makespan-1e-3) > 1e-9 {
		t.Errorf("makespan = %v, want 0.001 without exclusivity", r.Makespan)
	}
}

func TestProductionLevelSerialises(t *testing.T) {
	tr := flatTrace(12, 1000)
	for i := range tr.Tasks {
		tr.Tasks[i].Prod = i % 2 // two productions, 6 tasks each
	}
	cfg := idealConfig(12)
	cfg.ProductionLevel = true
	r := psm.Simulate(tr, cfg)
	if math.Abs(r.Makespan-6e-3) > 1e-9 {
		t.Errorf("makespan = %v, want 0.006 (two serial production chains)", r.Makespan)
	}
	if math.Abs(r.TrueSpeedup-2) > 1e-6 {
		t.Errorf("speedup = %v, want 2 (production parallelism caps at 2)", r.TrueSpeedup)
	}
}

func TestSoftwareSchedulerSlower(t *testing.T) {
	tr := flatTrace(200, 100)
	hw := psm.DefaultConfig(32)
	sw := hw
	sw.Scheduler = psm.SoftwareScheduler
	rh := psm.Simulate(tr, hw)
	rs := psm.Simulate(tr, sw)
	if rs.Makespan <= rh.Makespan {
		t.Errorf("software scheduler (%v) should be slower than hardware (%v)",
			rs.Makespan, rh.Makespan)
	}
}

func TestBusContentionSlowsDown(t *testing.T) {
	tr := flatTrace(320, 500)
	free := psm.DefaultConfig(32)
	free.CacheHitRatio = 1.0 // no bus traffic
	congested := psm.DefaultConfig(32)
	congested.CacheHitRatio = 0.0 // every shared reference goes to the bus
	rf := psm.Simulate(tr, free)
	rc := psm.Simulate(tr, congested)
	if rc.Makespan <= rf.Makespan {
		t.Errorf("bus-bound run (%v) should be slower than cache-perfect run (%v)",
			rc.Makespan, rf.Makespan)
	}
	if rc.BusWaitSec == 0 {
		t.Error("expected nonzero bus wait with 0%% cache hits")
	}
}

func TestSweepMonotoneUpTo(t *testing.T) {
	tr := flatTrace(256, 800)
	results := psm.Sweep(tr, psm.DefaultConfig(0), []int{1, 2, 4, 8, 16, 32})
	for i := 1; i < len(results); i++ {
		if results[i].Makespan > results[i-1].Makespan*1.0001 {
			t.Errorf("makespan increased adding processors: %v -> %v",
				results[i-1].Makespan, results[i].Makespan)
		}
	}
}

func TestMemoryModulesContention(t *testing.T) {
	// Few memory modules serialise shared references; more modules
	// relieve the contention.
	tr := flatTrace(256, 500)
	for i := range tr.Tasks {
		tr.Tasks[i].NodeID = i // spread across modules
	}
	one := psm.DefaultConfig(32)
	one.MemoryModules = 1
	many := psm.DefaultConfig(32)
	many.MemoryModules = 16
	r1 := psm.Simulate(tr, one)
	r16 := psm.Simulate(tr, many)
	if r1.Makespan <= r16.Makespan {
		t.Errorf("1 module (%v) should be slower than 16 modules (%v)",
			r1.Makespan, r16.Makespan)
	}
	off := psm.Simulate(tr, psm.DefaultConfig(32))
	if r16.Makespan < off.Makespan {
		t.Errorf("module modelling should only add delay: %v < %v",
			r16.Makespan, off.Makespan)
	}
}
