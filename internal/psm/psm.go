// Package psm simulates the Production System Machine of §5: a
// bus-based shared-memory multiprocessor with 32-64 high-performance
// processors and a hardware task scheduler, executing node-activation
// traces produced by internal/trace or internal/workload.
//
// The simulator mirrors the paper's own methodology (§6): its inputs are
// (1) a trace of node activations with dependency information, (2) a
// cost model (already folded into the trace's per-task instruction
// counts), and (3) a specification of the parallel computational model —
// processor count and speed, bus latency, scheduler type. Its outputs
// are the achieved concurrency, execution speed and the true speed-up
// over the best serial implementation.
package psm

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/rete"
	"repro/internal/trace"
)

// SchedulerKind selects the task scheduler model.
type SchedulerKind uint8

// The scheduler models of §5.
const (
	// HardwareScheduler dispatches a node activation in one bus cycle
	// (the paper's custom hardware task scheduler sitting on the bus).
	HardwareScheduler SchedulerKind = iota
	// SoftwareScheduler executes ~100 instructions per dispatch on the
	// requesting processor and serialises dispatches through the shared
	// task queue's lock.
	SoftwareScheduler
)

// String names the scheduler kind.
func (k SchedulerKind) String() string {
	if k == SoftwareScheduler {
		return "software"
	}
	return "hardware"
}

// Config specifies the simulated machine.
type Config struct {
	// Processors is the number of processors (the paper studies 1-72).
	Processors int
	// MIPS is each processor's speed in instructions per second
	// (the paper assumes 2 MIPS processors).
	MIPS float64
	// Scheduler selects hardware or software task dispatch.
	Scheduler SchedulerKind
	// BusCycle is the shared-bus transaction time in seconds.
	BusCycle float64
	// SWDispatchInstr is the instruction cost of one software dispatch.
	SWDispatchInstr float64
	// SWQueues is the number of software task queues when Scheduler is
	// SoftwareScheduler (default 1). §5 proposes "multiple software
	// task schedulers" as the alternative to the hardware scheduler;
	// tasks hash to queues by node id, so dispatch serialisation is
	// per-queue instead of global.
	SWQueues int
	// MemRefFraction is the fraction of instructions that reference
	// shared data.
	MemRefFraction float64
	// CacheHitRatio is the fraction of shared references served by the
	// per-processor cache (§5 requires "reasonable cache-hit ratios").
	CacheHitRatio float64
	// TaskOverheadInstr is the per-activation synchronisation overhead
	// (lock acquire/release, queue insertion) of the parallel runtime.
	TaskOverheadInstr float64
	// SharingLossFactor multiplies the cost of constant-test (root)
	// activations: the alpha-network sharing a serial matcher enjoys is
	// partially lost when changes are processed in parallel (§4, §6).
	SharingLossFactor float64
	// NodeExclusive serialises activations of the same network node:
	// the "simple implementation" of §4 in which each node processes
	// only one input token at a time. The paper's proposed design
	// relaxes this (multiple activations of the same node run in
	// parallel), so the default configuration leaves it false; it is
	// retained as an ablation of that design decision.
	NodeExclusive bool
	// ProductionLevel restricts parallelism to production granularity:
	// all activations for one production within a batch run serially
	// (§4's rejected coarse-grain alternative). Tasks must carry Prod.
	ProductionLevel bool
	// NodeAssignment, when non-nil, pins every network node's
	// activations to one processor — the static partitioning a
	// non-shared-memory machine requires (§5; see internal/partition).
	// Tasks whose node is not in the map (e.g. root constant-test
	// activations) run on the processor given by their change index
	// modulo the processor count. Dynamic run-time assignment (the
	// shared-memory advantage) is the nil default.
	NodeAssignment map[int]int
	// MemoryModules, when > 0, models interleaved shared-memory banks:
	// each task's shared references are served by the module its
	// network node's state lives in (NodeID modulo the module count),
	// an FCFS server with ModuleCycle service time per transaction.
	// Zero disables module modelling (bus contention only). The paper
	// lists the number of memory modules among its simulator inputs.
	MemoryModules int
	// ModuleCycle is one memory module's per-transaction service time.
	ModuleCycle float64
}

// DefaultConfig returns the paper's machine: 2 MIPS processors, a
// 100 ns shared bus, hardware scheduling, per-node locks.
func DefaultConfig(processors int) Config {
	return Config{
		Processors:        processors,
		MIPS:              2e6,
		Scheduler:         HardwareScheduler,
		BusCycle:          100e-9,
		SWDispatchInstr:   100,
		MemRefFraction:    0.35,
		CacheHitRatio:     0.90,
		TaskOverheadInstr: 44,
		SharingLossFactor: 1.7,
	}
}

// Result reports one simulation run.
type Result struct {
	// Makespan is the simulated execution time in seconds.
	Makespan float64
	// BusyTime is the total processor occupancy (work + waits).
	BusyTime float64
	// Concurrency is the average number of busy processors
	// (BusyTime / Makespan) — the paper's Figure 6-1 metric.
	Concurrency float64
	// SerialSec is the best serial implementation's time: the trace's
	// un-inflated instruction total on one processor with no overheads.
	SerialSec float64
	// TrueSpeedup is SerialSec / Makespan — the paper's §6 metric
	// (8.25-fold average on 32 processors).
	TrueSpeedup float64
	// LostFactor is Concurrency / TrueSpeedup (the paper's 1.93).
	LostFactor float64
	// WMChangesPerSec is the paper's Figure 6-2 metric.
	WMChangesPerSec float64
	// FiringsPerSec is WM throughput divided by changes per firing.
	FiringsPerSec float64
	// BusWaitSec is the total time spent waiting for the shared bus.
	BusWaitSec float64
	// SchedWaitSec is the total time spent waiting for the dispatcher.
	SchedWaitSec float64
	// SharingLossSec is processor time spent re-running constant tests
	// that the serial matcher would have shared (§6 loss component 1).
	SharingLossSec float64
	// OverheadSec is processor time spent on per-activation scheduling
	// and synchronisation overhead (§6 loss components 2 and 3).
	OverheadSec float64
	// Tasks is the number of activations executed.
	Tasks int
}

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("concurrency=%.2f speedup=%.2f lost=%.2f wme/s=%.0f firings/s=%.0f",
		r.Concurrency, r.TrueSpeedup, r.LostFactor, r.WMChangesPerSec, r.FiringsPerSec)
}

// simTask is the runtime view of a trace task.
type simTask struct {
	t        *trace.Task
	ready    float64
	children []int
	deps     int
}

// readyHeap orders tasks by ready time (earliest first).
type readyHeap []*simTask

func (h readyHeap) Len() int           { return len(h) }
func (h readyHeap) Less(i, j int) bool { return h[i].ready < h[j].ready }
func (h readyHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x any)        { *h = append(*h, x.(*simTask)) }
func (h *readyHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate runs the trace on the configured machine.
func Simulate(tr *trace.Trace, cfg Config) Result {
	if cfg.Processors < 1 {
		cfg.Processors = 1
	}
	var res Result
	res.Tasks = len(tr.Tasks)

	// Serial baseline: raw instruction total, no overheads.
	res.SerialSec = tr.TotalCost() / cfg.MIPS

	procFree := make([]float64, cfg.Processors)
	var busFree float64
	nq := cfg.SWQueues
	if nq < 1 {
		nq = 1
	}
	schedFree := make([]float64, nq)
	nodeFree := make(map[int]float64)
	prodFree := make(map[int64]float64)
	var moduleFree []float64
	if cfg.MemoryModules > 0 {
		moduleFree = make([]float64, cfg.MemoryModules)
		if cfg.ModuleCycle == 0 {
			cfg.ModuleCycle = 150e-9
		}
	}
	now := 0.0

	// Group tasks by batch (they are stored in batch order).
	start := 0
	for start < len(tr.Tasks) {
		end := start
		batch := tr.Tasks[start].Batch
		for end < len(tr.Tasks) && tr.Tasks[end].Batch == batch {
			end++
		}
		batchStart := now
		now = simulateBatch(tr.Tasks[start:end], cfg, batchStart, procFree, nodeFree, prodFree, moduleFree, &busFree, schedFree, &res)
		// Synchronisation barrier between recognize-act cycles.
		for i := range procFree {
			if procFree[i] < now {
				procFree[i] = now
			}
		}
		start = end
	}
	res.Makespan = now
	if res.Makespan > 0 {
		res.Concurrency = res.BusyTime / res.Makespan
		res.TrueSpeedup = res.SerialSec / res.Makespan
		res.WMChangesPerSec = float64(tr.Changes) / res.Makespan
		if tr.Firings > 0 {
			res.FiringsPerSec = float64(tr.Firings) / res.Makespan
		}
	}
	if res.TrueSpeedup > 0 {
		res.LostFactor = res.Concurrency / res.TrueSpeedup
	}
	// Cap concurrency at processor count (guard against floating error).
	res.Concurrency = math.Min(res.Concurrency, float64(cfg.Processors))
	return res
}

// simulateBatch list-schedules one batch's task DAG and returns its
// completion time.
func simulateBatch(tasks []trace.Task, cfg Config, batchStart float64,
	procFree []float64, nodeFree map[int]float64, prodFree map[int64]float64,
	moduleFree []float64, busFree *float64, schedFree []float64, res *Result) float64 {

	byID := make(map[int64]int, len(tasks))
	sims := make([]simTask, len(tasks))
	for i := range tasks {
		sims[i] = simTask{t: &tasks[i], ready: batchStart}
		byID[tasks[i].ID] = i
	}
	for i := range tasks {
		if p, ok := byID[tasks[i].Parent]; ok && tasks[i].Parent != tasks[i].ID {
			sims[p].children = append(sims[p].children, i)
			sims[i].deps++
		}
	}
	h := &readyHeap{}
	for i := range sims {
		if sims[i].deps == 0 {
			heap.Push(h, &sims[i])
		}
	}
	finishMax := batchStart
	for h.Len() > 0 {
		st := heap.Pop(h).(*simTask)
		t := st.t

		// The hardware scheduler ensures interfering activations are
		// not assigned to processors simultaneously (§5): an activation
		// whose node (or production group) is still busy is held in the
		// task queue rather than blocking a processor, letting other
		// ready activations run first.
		eReady := st.ready
		if cfg.NodeExclusive && t.NodeID != 0 {
			eReady = math.Max(eReady, nodeFree[t.NodeID])
		}
		if cfg.ProductionLevel && t.Prod >= 0 {
			key := int64(t.Batch)<<32 | int64(t.Prod)
			eReady = math.Max(eReady, prodFree[key])
		}
		if eReady > st.ready && h.Len() > 0 && (*h)[0].ready < eReady {
			st.ready = eReady
			heap.Push(h, st)
			continue
		}

		// Pick the processor: statically pinned when a partition is in
		// force, otherwise the earliest-free (dynamic run-time
		// assignment, the shared-memory advantage of §5).
		proc := 0
		if cfg.NodeAssignment != nil {
			if p, ok := cfg.NodeAssignment[t.NodeID]; ok {
				proc = p % len(procFree)
			} else {
				proc = t.Change % len(procFree)
			}
		} else {
			for i := 1; i < len(procFree); i++ {
				if procFree[i] < procFree[proc] {
					proc = i
				}
			}
		}
		startAt := math.Max(eReady, procFree[proc])

		// Instruction cost with parallel-runtime inflation.
		instr := t.Cost
		if t.Kind == rete.KindRoot {
			instr *= cfg.SharingLossFactor
			res.SharingLossSec += t.Cost * (cfg.SharingLossFactor - 1) / cfg.MIPS
		}
		instr += cfg.TaskOverheadInstr
		res.OverheadSec += cfg.TaskOverheadInstr / cfg.MIPS

		// Scheduler dispatch: the hardware scheduler takes one bus
		// cycle (folded into the task's bus service below); a software
		// scheduler executes ~100 instructions serialised through the
		// shared task queue's lock.
		var schedWait, dispatchBus float64
		switch cfg.Scheduler {
		case HardwareScheduler:
			dispatchBus = cfg.BusCycle
		case SoftwareScheduler:
			q := 0
			if len(schedFree) > 1 {
				// Fibonacci hash so structured node ids spread evenly.
				q = int((uint64(uint32(t.NodeID)) * 2654435761 >> 16) % uint64(len(schedFree)))
			}
			svc := cfg.SWDispatchInstr / cfg.MIPS
			wait := math.Max(0, schedFree[q]-startAt)
			schedFree[q] = math.Max(schedFree[q], startAt) + svc
			schedWait = wait + svc
			instr += cfg.SWDispatchInstr // the processor also executes it
			res.OverheadSec += cfg.SWDispatchInstr / cfg.MIPS
		}

		cpu := instr / cfg.MIPS
		// Shared-bus traffic: the dispatch cycle plus cache misses on
		// shared references, served FCFS by the single bus.
		transactions := instr * cfg.MemRefFraction * (1 - cfg.CacheHitRatio)
		busSvc := dispatchBus + transactions*cfg.BusCycle
		busWait := math.Max(0, *busFree-startAt)
		*busFree = math.Max(*busFree, startAt) + busSvc

		// Interleaved memory-module contention (optional).
		var modSvc, modWait float64
		if len(moduleFree) > 0 {
			mod := t.NodeID % len(moduleFree)
			if mod < 0 {
				mod = -mod
			}
			modSvc = transactions * cfg.ModuleCycle
			modWait = math.Max(0, moduleFree[mod]-startAt)
			moduleFree[mod] = math.Max(moduleFree[mod], startAt) + modSvc
		}

		finish := startAt + schedWait + cpu + busSvc + busWait + modSvc + modWait
		procFree[proc] = finish
		if cfg.NodeExclusive && t.NodeID != 0 {
			nodeFree[t.NodeID] = finish
		}
		if cfg.ProductionLevel && t.Prod >= 0 {
			key := int64(t.Batch)<<32 | int64(t.Prod)
			prodFree[key] = finish
		}
		res.BusyTime += finish - startAt
		res.BusWaitSec += busWait + modWait
		res.SchedWaitSec += schedWait
		if finish > finishMax {
			finishMax = finish
		}
		for _, c := range st.children {
			sims[c].deps--
			if sims[c].ready < finish {
				sims[c].ready = finish
			}
			if sims[c].deps == 0 {
				heap.Push(h, &sims[c])
			}
		}
	}
	return finishMax
}

// Sweep simulates the trace across a range of processor counts,
// returning one result per count. Used by the Figure 6-1/6-2 harness.
func Sweep(tr *trace.Trace, base Config, processors []int) []Result {
	out := make([]Result, len(processors))
	for i, p := range processors {
		cfg := base
		cfg.Processors = p
		out[i] = Simulate(tr, cfg)
	}
	return out
}
