// Package model implements the paper's analytic models: the §3.1
// state-saving vs non-state-saving cost comparison and the §4
// production-level parallelism bound.
package model

// CostModel holds the per-operation instruction costs of §3.1.
//
//   - C1: cost of processing one insertion into working memory with a
//     state-saving (Rete) algorithm (≈ 1800 machine instructions).
//   - C2: cost of processing one deletion (for Rete, C2 = C1).
//   - C3: average cost of the temporary state computed per WM element
//     by a non-state-saving algorithm (≈ 1100 instructions).
type CostModel struct {
	C1, C2, C3 float64
}

// PaperCosts returns the constants measured in the paper.
func PaperCosts() CostModel { return CostModel{C1: 1800, C2: 1800, C3: 1100} }

// StateSavingCost is the per-cycle cost of a state-saving algorithm for
// i insertions and d deletions: C = i*c1 + d*c2.
func (m CostModel) StateSavingCost(i, d float64) float64 {
	return i*m.C1 + d*m.C2
}

// NonStateSavingCost is the per-cycle cost of a non-state-saving
// algorithm over a working memory of stable size s: C = s*c3.
func (m CostModel) NonStateSavingCost(s float64) float64 {
	return s * m.C3
}

// BreakEvenRatio returns the turnover ratio (i+d)/s below which the
// state-saving algorithm is cheaper. With c1 = c2 the inequality
// i*c1 + d*c2 < s*c3 reduces to (i+d)/s < c3/c1 (§3.1: ≈ 0.61).
func (m CostModel) BreakEvenRatio() float64 {
	return m.C3 / m.C1
}

// Advantage returns the cost ratio non-state-saving / state-saving at a
// given turnover ratio r = (i+d)/s. Values above 1 favour state saving;
// at the paper's measured r ≈ 0.005 the advantage is ≈ 122, and a
// non-state-saving algorithm must recover an inefficiency factor of
// that size before breaking even. (The paper quotes "about 20" for a
// turnover of 0.5% against the practical per-cycle fixed costs; the
// pure model gives c3/(r*c1).)
func (m CostModel) Advantage(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return m.C3 / (r * m.C1)
}

// ProductionParallelismSpeedup is the ideal speed-up achievable with
// production-level parallelism and unbounded processors: the total
// processing divided by the largest single production's processing
// (all work for one production is serial, §4). The paper measures
// ≈ 5-fold despite ~30 affected productions, because of the large
// variation in per-production cost.
func ProductionParallelismSpeedup(perProduction []float64) float64 {
	var sum, max float64
	for _, c := range perProduction {
		sum += c
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return 0
	}
	return sum / max
}

// NodeParallelismSpeedup is the ideal speed-up when work can be split
// at node-activation granularity: total processing divided by the
// longest dependency chain (critical path).
func NodeParallelismSpeedup(total, criticalPath float64) float64 {
	if criticalPath == 0 {
		return 0
	}
	return total / criticalPath
}
