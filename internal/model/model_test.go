package model_test

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestBreakEvenMatchesPaper(t *testing.T) {
	m := model.PaperCosts()
	got := m.BreakEvenRatio()
	if got < 0.60 || got > 0.62 {
		t.Errorf("break-even ratio = %.3f, paper says 0.61", got)
	}
}

func TestCostsAtBreakEvenAreEqual(t *testing.T) {
	m := model.PaperCosts()
	s := 1000.0
	id := m.BreakEvenRatio() * s
	state := m.StateSavingCost(id/2, id/2)
	non := m.NonStateSavingCost(s)
	if diff := state - non; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("at break-even, costs differ: %f vs %f", state, non)
	}
}

func TestAdvantageAtMeasuredTurnover(t *testing.T) {
	m := model.PaperCosts()
	// At 0.5% turnover the advantage is c3/(0.005*c1) ≈ 122; the paper
	// conservatively quotes "about 20" against practical fixed costs.
	got := m.Advantage(0.005)
	if got < 100 || got > 140 {
		t.Errorf("advantage = %.0f, want ≈122", got)
	}
	if m.Advantage(0) != 0 {
		t.Error("advantage at 0 turnover should be 0 (guard)")
	}
}

func TestQuickAdvantageMonotone(t *testing.T) {
	m := model.PaperCosts()
	f := func(a, b float64) bool {
		ra, rb := abs(a)+1e-6, abs(b)+1e-6
		if ra > rb {
			ra, rb = rb, ra
		}
		// Lower turnover -> larger advantage for state saving.
		return m.Advantage(ra) >= m.Advantage(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func mod1000(x float64) float64 {
	v := abs(x)
	for v > 1000 {
		v /= 1000
	}
	return v
}

func TestProductionParallelismSpeedup(t *testing.T) {
	// Uniform costs: speedup equals the production count.
	uniform := []float64{10, 10, 10, 10}
	if got := model.ProductionParallelismSpeedup(uniform); got != 4 {
		t.Errorf("uniform speedup = %f, want 4", got)
	}
	// One dominant production caps the speedup (the paper's point):
	// 30 productions, one takes 20% of total work -> speedup ~5.
	costs := make([]float64, 30)
	var total float64
	for i := range costs {
		costs[i] = 10
		total += 10
	}
	costs[0] = total / 4 // heaviest = 25% of the rest
	got := model.ProductionParallelismSpeedup(costs)
	if got < 4 || got > 6 {
		t.Errorf("skewed speedup = %.2f, want ~5 despite 30 productions", got)
	}
	if model.ProductionParallelismSpeedup(nil) != 0 {
		t.Error("empty input should give 0")
	}
}

func TestNodeParallelismSpeedup(t *testing.T) {
	if got := model.NodeParallelismSpeedup(1000, 100); got != 10 {
		t.Errorf("speedup = %f, want 10", got)
	}
	if model.NodeParallelismSpeedup(1000, 0) != 0 {
		t.Error("zero critical path should give 0 (guard)")
	}
}

func TestQuickProductionBoundedByCount(t *testing.T) {
	f := func(raw []float64) bool {
		costs := make([]float64, 0, len(raw))
		for _, c := range raw {
			// Clamp into a sane cost range; enormous magnitudes are not
			// meaningful instruction counts and overflow the sum.
			costs = append(costs, mod1000(c)+1)
		}
		if len(costs) == 0 {
			return true
		}
		s := model.ProductionParallelismSpeedup(costs)
		return s >= 1 && s <= float64(len(costs))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
