// Package rete implements the Rete match algorithm of Forgy (1982) as
// described in §2.2 of the paper: a dataflow network compiled from
// production left-hand sides, with constant-test nodes, alpha (wme)
// memories, two-input and-nodes and not-nodes, beta (token) memories and
// terminal nodes. Node sharing between productions, incremental
// add/remove processing, and per-activation tracing hooks are all
// implemented; the trace is the input to the PSM multiprocessor
// simulator (internal/psm), exactly as in §6 of the paper.
//
// The exported node structures carry the mutexes used by the parallel
// runtime in internal/prete; the serial entry points in this package
// never take them.
package rete

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ops5"
	"repro/internal/sym"
)

// constKind discriminates single-WME test forms in the alpha network.
type constKind uint8

const (
	ctAlways  constKind = iota // class root: class test already applied
	ctConst                    // attr pred constant
	ctDisj                     // attr in {constants}
	ctAttrRel                  // attr pred attr2 (intra-element variable test)
)

// ConstTest is one single-WME test performed in the alpha network.
// Attributes are carried as interned symbol IDs (names kept for
// diagnostics), so evaluation never hashes a string: constant-test
// dispatch is integer field lookup plus value compare.
type ConstTest struct {
	Kind    constKind
	Attr    string
	AttrID  sym.ID
	Pred    ops5.Predicate
	Val     ops5.Value
	Disj    []ops5.Value
	Attr2   string
	Attr2ID sym.ID
}

// Eval applies the test to a WME (class already checked by the root).
func (t *ConstTest) Eval(w *ops5.WME) bool {
	switch t.Kind {
	case ctAlways:
		return true
	case ctConst:
		return t.Pred.Compare(w.GetID(t.AttrID), t.Val)
	case ctDisj:
		v := w.GetID(t.AttrID)
		for _, d := range t.Disj {
			if v.Equal(d) {
				return true
			}
		}
		return false
	case ctAttrRel:
		return t.Pred.Compare(w.GetID(t.AttrID), w.GetID(t.Attr2ID))
	default:
		return false
	}
}

// key returns a canonical identity used for node sharing.
func (t *ConstTest) key() string {
	switch t.Kind {
	case ctAlways:
		return "T"
	case ctConst:
		return "c|" + t.Attr + "|" + t.Pred.String() + "|" + t.Val.String()
	case ctDisj:
		parts := make([]string, len(t.Disj))
		for i, v := range t.Disj {
			parts[i] = v.String()
		}
		sort.Strings(parts)
		return "d|" + t.Attr + "|" + strings.Join(parts, ",")
	case ctAttrRel:
		return "r|" + t.Attr + "|" + t.Pred.String() + "|" + t.Attr2
	default:
		return "?"
	}
}

// String renders the test for diagnostics.
func (t *ConstTest) String() string { return t.key() }

// testsByKey sorts tests and their precomputed keys together.
type testsByKey struct {
	tests []ConstTest
	keys  []string
}

func (s *testsByKey) Len() int           { return len(s.tests) }
func (s *testsByKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *testsByKey) Swap(i, j int) {
	s.tests[i], s.tests[j] = s.tests[j], s.tests[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// ConstNode is a node in the alpha test chain. Passing WMEs flow to the
// children and, if present, into the output alpha memory.
type ConstNode struct {
	ID       int
	Test     ConstTest
	Children []*ConstNode
	Mem      *AlphaMem
	// testKey caches Test.key() for node sharing during compilation.
	testKey string
	// compiled, when non-nil, is the closure-specialised test (see
	// EnableCompiledDispatch).
	compiled func(*ops5.WME) bool
	// SharedBy counts the condition elements compiled onto this node;
	// >1 means the node is shared between CEs (possibly across
	// productions), the sharing the paper says is lost under production
	// parallelism (§4).
	SharedBy int
}

// AlphaMem stores the WMEs passing one condition element's constant
// tests, and feeds the two-input nodes attached to its output.
type AlphaMem struct {
	ID    int
	Items []*ops5.WME
	// Succs are the two-input nodes whose right input is this memory.
	Succs []*JoinNode
	// ProdRefs lists the (production, LHS index) pairs reading this
	// memory; used for affected-production statistics (§4, E9).
	ProdRefs []ProdRef
	// indexes are the equality-join hash indexes over Items, built at
	// prepare time and shared between joins with the same key spec.
	indexes []*alphaIndex
	// pos maps each item to its slice position for O(1) removal.
	pos map[*ops5.WME]int
	// Mu guards Items in the parallel runtime only.
	Mu sync.Mutex
}

// ProdRef identifies one condition element of one production.
type ProdRef struct {
	Production *ops5.Production
	CE         int
}

// insert appends w, recording its position once the memory is large
// enough that linear removal would cost more than map upkeep. The
// position map is built lazily at the linearProbeMin crossing and kept
// thereafter.
func (am *AlphaMem) insert(w *ops5.WME) {
	if am.pos == nil && len(am.Items) >= linearProbeMin {
		am.pos = make(map[*ops5.WME]int, len(am.Items)+1)
		for i, x := range am.Items {
			am.pos[x] = i
		}
	}
	if am.pos != nil {
		am.pos[w] = len(am.Items)
	}
	am.Items = append(am.Items, w)
}

// remove deletes one occurrence of w, reporting whether it was present.
// The last item is swapped into the hole (memory order carries no
// meaning), so removal is O(1) via the position map once it exists, and
// a short scan before then.
func (am *AlphaMem) remove(w *ops5.WME) bool {
	if am.pos == nil {
		for i, x := range am.Items {
			if x == w {
				last := len(am.Items) - 1
				am.Items[i] = am.Items[last]
				am.Items[last] = nil
				am.Items = am.Items[:last]
				return true
			}
		}
		return false
	}
	i, ok := am.pos[w]
	if !ok {
		return false
	}
	delete(am.pos, w)
	last := len(am.Items) - 1
	if i != last {
		moved := am.Items[last]
		am.Items[i] = moved
		am.pos[moved] = i
	}
	am.Items[last] = nil
	am.Items = am.Items[:last]
	return true
}

// Token is a sequence of WMEs matching the positive condition elements
// processed so far, in LHS order. Tokens are immutable; extension copies.
// Short tokens (the overwhelmingly common case) store their WMEs in the
// inline arr, so extension is a single allocation.
type Token struct {
	WMEs []*ops5.WME
	arr  [6]*ops5.WME
}

// Extend returns a new token with w appended.
func (t *Token) Extend(w *ops5.WME) *Token {
	n := len(t.WMEs) + 1
	nt := &Token{}
	if n <= len(nt.arr) {
		nt.WMEs = nt.arr[:n]
	} else {
		nt.WMEs = make([]*ops5.WME, n)
	}
	copy(nt.WMEs, t.WMEs)
	nt.WMEs[n-1] = w
	return nt
}

// EqualTo reports structural equality (same WME pointers in order).
func (t *Token) EqualTo(o *Token) bool {
	if len(t.WMEs) != len(o.WMEs) {
		return false
	}
	for i := range t.WMEs {
		if t.WMEs[i] != o.WMEs[i] {
			return false
		}
	}
	return true
}

// String renders the token's time tags.
func (t *Token) String() string {
	parts := make([]string, len(t.WMEs))
	for i, w := range t.WMEs {
		parts[i] = fmt.Sprint(w.TimeTag)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// BetaMem stores the tokens matching a prefix of a production's positive
// condition elements and feeds the two-input nodes using it as left
// input, plus any terminals.
type BetaMem struct {
	ID     int
	Tokens []*Token
	// Joins are the two-input nodes whose left input is this memory.
	Joins []*JoinNode
	// Terminals fire when tokens reach this memory.
	Terminals []*Terminal
	// indexes are the equality-join hash indexes over Tokens, built at
	// prepare time and shared between joins with the same key spec.
	indexes []*betaIndex
	// pos maps token identity hashes to slice positions for O(1)
	// removal. A bucket is a chain through posEntries (time tags make
	// chains unique, so buckets are single-entry in practice; EqualTo
	// re-verifies either way). Chained int32 entries with a free list
	// keep steady-state upkeep allocation-free.
	pos        map[uint64]int32
	posEntries []posEntry
	posFree    int32
	// Mu guards Tokens in the parallel runtime only.
	Mu sync.Mutex
}

// tokenIDHash folds a token's identity — its WMEs' time tags in
// order — into a uint64 map key for O(1) structural lookup. The hash is
// not injective, so lookups re-verify candidates with EqualTo.
func tokenIDHash(tok *Token) uint64 {
	h := ops5.HashSeed
	for _, w := range tok.WMEs {
		h = hashTag(h, w.TimeTag)
	}
	return h
}

// hashTag folds one time tag into an identity hash.
func hashTag(h uint64, tag int) uint64 {
	const prime = 1099511628211
	bits := uint64(tag)
	for i := 0; i < 4; i++ {
		h = (h ^ (bits & 0xffff)) * prime
		bits >>= 16
	}
	return h
}

// TokenIDHash is the exported token identity hash used by the parallel
// matcher to key its counted token multisets. Equal tokens (same WME
// sequence) always hash equal; collisions are possible, so callers
// re-verify candidates with EqualTo.
func TokenIDHash(tok *Token) uint64 { return tokenIDHash(tok) }

// insert appends tok, recording its position under its identity key
// once the memory is large enough that linear removal would cost more
// than key computation and map upkeep. The position map is built lazily
// at the linearProbeMin crossing and kept thereafter.
func (bm *BetaMem) insert(tok *Token) {
	if bm.pos == nil && len(bm.Tokens) >= linearProbeMin {
		bm.pos = make(map[uint64]int32, len(bm.Tokens)+1)
		bm.posEntries = make([]posEntry, 0, 2*len(bm.Tokens))
		bm.posFree = -1
		for i, t := range bm.Tokens {
			bm.posAdd(tokenIDHash(t), int32(i))
		}
	}
	if bm.pos != nil {
		bm.posAdd(tokenIDHash(tok), int32(len(bm.Tokens)))
	}
	bm.Tokens = append(bm.Tokens, tok)
}

// posEntry is one chain link of the position map: a token position and
// the entry index of the next link (-1 ends the chain; free-listed
// entries reuse next as the free link).
type posEntry struct {
	pos  int32
	next int32
}

// posAdd links position p under identity key k.
func (bm *BetaMem) posAdd(k uint64, p int32) {
	head, ok := bm.pos[k]
	if !ok {
		head = -1
	}
	var i int32
	if bm.posFree >= 0 {
		i = bm.posFree
		bm.posFree = bm.posEntries[i].next
		bm.posEntries[i] = posEntry{pos: p, next: head}
	} else {
		i = int32(len(bm.posEntries))
		bm.posEntries = append(bm.posEntries, posEntry{pos: p, next: head})
	}
	bm.pos[k] = i
}

// posDelete unlinks the entry for key k holding position p.
func (bm *BetaMem) posDelete(k uint64, p int32) {
	head, ok := bm.pos[k]
	if !ok {
		return
	}
	prev := int32(-1)
	for i := head; i >= 0; i = bm.posEntries[i].next {
		if bm.posEntries[i].pos == p {
			next := bm.posEntries[i].next
			if prev < 0 {
				if next < 0 {
					delete(bm.pos, k)
				} else {
					bm.pos[k] = next
				}
			} else {
				bm.posEntries[prev].next = next
			}
			bm.posEntries[i] = posEntry{next: bm.posFree}
			bm.posFree = i
			return
		}
		prev = i
	}
}

// remove deletes one token structurally equal to tok, reporting
// presence. Lookup goes through the identity-key position map once it
// exists (a short EqualTo scan before then) and the hole is filled by
// swapping in the last token (token order carries no meaning), so
// removal is O(1) instead of a linear EqualTo scan.
func (bm *BetaMem) remove(tok *Token) bool {
	if bm.pos == nil {
		for i, t := range bm.Tokens {
			if t.EqualTo(tok) {
				bm.swapRemove(i)
				return true
			}
		}
		return false
	}
	key := tokenIDHash(tok)
	head, ok := bm.pos[key]
	if !ok {
		return false
	}
	for e := head; e >= 0; e = bm.posEntries[e].next {
		p := bm.posEntries[e].pos
		if !bm.Tokens[p].EqualTo(tok) {
			continue
		}
		bm.posDelete(key, p)
		bm.swapRemove(int(p))
		return true
	}
	return false
}

// removeExt deletes the token formed by base's WMEs plus w without
// materialising it, returning the stored token so the caller can
// propagate the removal downstream. It is the delete-path counterpart of
// insert(base.Extend(w)) and saves one token allocation per removal.
func (bm *BetaMem) removeExt(base *Token, w *ops5.WME) (*Token, bool) {
	if bm.pos == nil {
		for i, t := range bm.Tokens {
			if extEqual(t, base, w) {
				bm.swapRemove(i)
				return t, true
			}
		}
		return nil, false
	}
	key := hashTag(tokenIDHash(base), w.TimeTag)
	head, ok := bm.pos[key]
	if !ok {
		return nil, false
	}
	for e := head; e >= 0; e = bm.posEntries[e].next {
		p := bm.posEntries[e].pos
		t := bm.Tokens[p]
		if !extEqual(t, base, w) {
			continue
		}
		bm.posDelete(key, p)
		bm.swapRemove(int(p))
		return t, true
	}
	return nil, false
}

// extEqual reports whether t equals base extended by w.
func extEqual(t, base *Token, w *ops5.WME) bool {
	n := len(base.WMEs)
	if len(t.WMEs) != n+1 || t.WMEs[n] != w {
		return false
	}
	for i := 0; i < n; i++ {
		if t.WMEs[i] != base.WMEs[i] {
			return false
		}
	}
	return true
}

// swapRemove deletes Tokens[i] by moving the last token into the hole
// and updating that token's position entry.
func (bm *BetaMem) swapRemove(i int) {
	last := len(bm.Tokens) - 1
	if i != last {
		moved := bm.Tokens[last]
		bm.Tokens[i] = moved
		if bm.pos != nil {
			for e := bm.pos[tokenIDHash(moved)]; e >= 0; e = bm.posEntries[e].next {
				if int(bm.posEntries[e].pos) == last {
					bm.posEntries[e].pos = int32(i)
					break
				}
			}
		}
	}
	bm.Tokens[last] = nil
	bm.Tokens = bm.Tokens[:last]
}

// JoinTest is one inter-element variable consistency test evaluated at a
// two-input node: rightWME[RightAttr] Pred token[LeftIdx][LeftAttr].
// Attributes carry their interned IDs so the join hot path resolves
// fields by integer compare.
type JoinTest struct {
	Pred      ops5.Predicate
	RightAttr string
	RightID   sym.ID
	LeftIdx   int
	LeftAttr  string
	LeftID    sym.ID
}

// Eval applies the test.
func (jt *JoinTest) Eval(tok *Token, w *ops5.WME) bool {
	return jt.Pred.Compare(w.GetID(jt.RightID), tok.WMEs[jt.LeftIdx].GetID(jt.LeftID))
}

// key returns a canonical identity used for node sharing.
func (jt *JoinTest) key() string {
	return jt.Pred.String() + "|" + jt.RightAttr + "|" + strconv.Itoa(jt.LeftIdx) + "|" + jt.LeftAttr
}

// JoinKind discriminates and-nodes from not-nodes.
type JoinKind uint8

// The two-input node kinds.
const (
	JoinPositive JoinKind = iota
	JoinNegative
)

// negRecord is a left token stored in a not-node with its count of
// matching right WMEs.
type negEntry struct {
	rec  negRecord
	next int32
}

// negAdd links rec under join-key hash k in the indexed not-node state.
func (j *JoinNode) negAdd(k uint64, rec negRecord) {
	head, ok := j.negIndex[k]
	if !ok {
		head = -1
	}
	var i int32
	if j.negFree >= 0 {
		i = j.negFree
		j.negFree = j.negEntries[i].next
		j.negEntries[i] = negEntry{rec: rec, next: head}
	} else {
		i = int32(len(j.negEntries))
		j.negEntries = append(j.negEntries, negEntry{rec: rec, next: head})
	}
	j.negIndex[k] = i
}

// negDelete unlinks the record for a token equal to tok under hash k,
// returning its match count.
func (j *JoinNode) negDelete(k uint64, tok *Token) (count int, found bool) {
	head, ok := j.negIndex[k]
	if !ok {
		return 0, false
	}
	prev := int32(-1)
	for i := head; i >= 0; i = j.negEntries[i].next {
		if j.negEntries[i].rec.tok.EqualTo(tok) {
			count = j.negEntries[i].rec.count
			next := j.negEntries[i].next
			if prev < 0 {
				if next < 0 {
					delete(j.negIndex, k)
				} else {
					j.negIndex[k] = next
				}
			} else {
				j.negEntries[prev].next = next
			}
			j.negEntries[i] = negEntry{next: j.negFree}
			j.negFree = i
			return count, true
		}
		prev = i
	}
	return 0, false
}

type negRecord struct {
	tok   *Token
	count int
}

// JoinNode is a two-input node: left input a beta memory (or the dummy
// top), right input an alpha memory. A positive node emits extended
// tokens into Out; a negative node passes its left token through to Out
// when no right WME matches.
type JoinNode struct {
	ID    int
	Kind  JoinKind
	Left  *BetaMem
	Right *AlphaMem
	Tests []JoinTest
	Out   *BetaMem
	// negRecords holds the left tokens with match counts (not-nodes
	// without an equality key; indexed not-nodes use negIndex instead).
	negRecords []*negRecord
	// Hash-join state, filled by Network.prepare when Tests contains at
	// least one equality test: leftHash/rightHash compute the join key
	// hash of a token/WME, and leftIdx/rightIdx are the opposite
	// memories' bucket indexes probed by activations. nil means linear
	// fallback.
	leftHash  func(*Token) uint64
	rightHash func(*ops5.WME) uint64
	leftIdx   *betaIndex
	rightIdx  *alphaIndex
	// leftScratch/rightScratch are this node's probe buffers, reused
	// across activations so bucket collection does not allocate. Safe
	// to reuse: the network is a DAG, so a node is never re-activated
	// while one of its own probes is still being iterated.
	leftScratch  []*Token
	rightScratch []*ops5.WME
	// negIndex holds an indexed not-node's left records bucketed by
	// join key hash; negCount tracks their number for StateSize.
	// Buckets are chains through negEntries storing records by value
	// (chained int32 entries with a free list), so steady-state upkeep
	// allocates nothing. Entries are only appended on this node's own
	// left activation, which never nests inside an iteration of the
	// same node's chains (propagation flows strictly downstream), so
	// pointers into negEntries taken during a walk stay valid.
	negIndex   map[uint64]int32
	negEntries []negEntry
	negFree    int32
	negCount   int
	// compiled, when non-nil, is the closure-specialised test chain.
	compiled func(*Token, *ops5.WME) bool
	// SharedBy counts the productions compiled onto this node.
	SharedBy int
	// Prof accumulates the node's activation work for live hot-node
	// profiling; only the serial runtime writes it.
	Prof NodeProf
	// Mu guards negRecords in the parallel runtime only.
	Mu sync.Mutex
}

// match reports whether every test passes for (tok, w).
func (j *JoinNode) match(tok *Token, w *ops5.WME) bool {
	for i := range j.Tests {
		if !j.Tests[i].Eval(tok, w) {
			return false
		}
	}
	return true
}

// Terminal announces conflict-set changes for one production.
type Terminal struct {
	ID         int
	Production *ops5.Production
	// posIndex maps token position -> LHS condition-element index.
	posIndex []int
	// live caches the instantiation of each token currently in the
	// conflict set, keyed by token identity hash (chains re-verified
	// with EqualTo), so removals don't rebuild variable bindings. Only
	// the serial runtime touches it; the parallel runtime calls
	// Instantiate directly, which stays pure. Chained int32 entries
	// with a free list keep steady-state upkeep allocation-free.
	live        map[uint64]int32
	liveEntries []liveInst
	liveFree    int32
}

// liveInst pairs a live token with its cached instantiation; next links
// the hash chain (-1 ends it; free-listed entries reuse it as the free
// link).
type liveInst struct {
	tok  *Token
	inst *ops5.Instantiation
	next int32
}

// liveAdd caches inst for tok in the terminal's live map.
func (t *Terminal) liveAdd(k uint64, tok *Token, inst *ops5.Instantiation) {
	head, ok := t.live[k]
	if !ok {
		head = -1
	}
	var i int32
	if t.liveFree >= 0 {
		i = t.liveFree
		t.liveFree = t.liveEntries[i].next
		t.liveEntries[i] = liveInst{tok: tok, inst: inst, next: head}
	} else {
		i = int32(len(t.liveEntries))
		t.liveEntries = append(t.liveEntries, liveInst{tok: tok, inst: inst, next: head})
	}
	t.live[k] = i
}

// liveTake removes and returns the cached instantiation for a token
// equal to tok, or nil when none is cached.
func (t *Terminal) liveTake(k uint64, tok *Token) *ops5.Instantiation {
	head, ok := t.live[k]
	if !ok {
		return nil
	}
	prev := int32(-1)
	for i := head; i >= 0; i = t.liveEntries[i].next {
		if t.liveEntries[i].tok.EqualTo(tok) {
			inst := t.liveEntries[i].inst
			next := t.liveEntries[i].next
			if prev < 0 {
				if next < 0 {
					delete(t.live, k)
				} else {
					t.live[k] = next
				}
			} else {
				t.liveEntries[prev].next = next
			}
			t.liveEntries[i] = liveInst{next: t.liveFree}
			t.liveFree = i
			return inst
		}
		prev = i
	}
	return nil
}

// Instantiate builds the instantiation for a complete token. Variable
// bindings are deferred: most instantiations enter and leave the
// conflict set without firing, so the LHS binding walk happens lazily in
// ops5.Instantiation.EvalBindings only when the RHS is evaluated.
func (t *Terminal) Instantiate(tok *Token) *ops5.Instantiation {
	inst := ops5.NewInstantiation(t.Production, len(t.Production.LHS))
	for pos, lhsIdx := range t.posIndex {
		inst.WMEs[lhsIdx] = tok.WMEs[pos]
	}
	return inst
}

// Network is a compiled Rete network over a fixed set of productions.
type Network struct {
	roots    map[sym.ID]*ConstNode
	alphas   []*AlphaMem
	betas    []*BetaMem
	joins    []*JoinNode
	terms    []*Terminal
	prods    []*ops5.Production
	dummyTop *BetaMem

	alphaByKey map[string]*AlphaMem
	joinByKey  map[string]*JoinNode

	nextID int

	// OnInsert and OnRemove receive conflict-set deltas. They must be
	// set before Apply. In the parallel runtime they may be called
	// concurrently.
	OnInsert func(*ops5.Instantiation)
	OnRemove func(*ops5.Instantiation)

	// Tracer, when non-nil, receives one event per node activation.
	Tracer TraceFunc

	// Stats accumulates match statistics across Apply calls.
	Stats Stats

	started  bool
	prepared bool
	seq      int64
}

// New returns an empty network with no productions.
func New() *Network {
	n := &Network{
		roots:      make(map[sym.ID]*ConstNode),
		alphaByKey: make(map[string]*AlphaMem),
		joinByKey:  make(map[string]*JoinNode),
	}
	n.dummyTop = n.newBetaMem()
	n.dummyTop.insert(&Token{})
	return n
}

// Compile builds a network for the given productions.
func Compile(prods []*ops5.Production) (*Network, error) {
	n := New()
	for _, p := range prods {
		if err := n.AddProduction(p); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Productions returns the productions compiled into the network.
func (n *Network) Productions() []*ops5.Production { return n.prods }

// DummyTop returns the top beta memory holding the single empty token.
func (n *Network) DummyTop() *BetaMem { return n.dummyTop }

// Alphas returns the alpha memories (for inspection and statistics).
func (n *Network) Alphas() []*AlphaMem { return n.alphas }

// Joins returns the two-input nodes.
func (n *Network) Joins() []*JoinNode { return n.joins }

// Betas returns the beta memories.
func (n *Network) Betas() []*BetaMem { return n.betas }

// Terminals returns the terminal nodes.
func (n *Network) Terminals() []*Terminal { return n.terms }

func (n *Network) id() int {
	n.nextID++
	return n.nextID
}

func (n *Network) newBetaMem() *BetaMem {
	bm := &BetaMem{ID: n.id()}
	n.betas = append(n.betas, bm)
	return bm
}

// binder records where a variable was first bound.
type binder struct {
	tokenIdx int
	attr     string
}

// AddProduction compiles a production into the network, sharing nodes
// with previously added productions where possible. It must be called
// before the first Apply.
func (n *Network) AddProduction(p *ops5.Production) error {
	if n.started {
		return fmt.Errorf("rete: cannot add production %s after matching has started", p.Name)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	binders := make(map[string]binder)
	curBeta := n.dummyTop
	tokenLen := 0
	term := &Terminal{ID: n.id(), Production: p}

	for ceIdx, ce := range p.LHS {
		am, localBinders, err := n.buildAlpha(p, ceIdx, ce, binders)
		if err != nil {
			return err
		}
		tests, err := n.buildJoinTests(p, ce, binders, localBinders)
		if err != nil {
			return err
		}
		kind := JoinPositive
		if ce.Negated {
			kind = JoinNegative
		}
		j := n.findOrAddJoin(kind, curBeta, am, tests)
		curBeta = j.Out
		if !ce.Negated {
			// Register binders established by this CE.
			for v, b := range localBinders {
				if _, exists := binders[v]; !exists {
					binders[v] = binder{tokenIdx: tokenLen, attr: b}
				}
			}
			term.posIndex = append(term.posIndex, ceIdx)
			tokenLen++
		}
	}
	curBeta.Terminals = append(curBeta.Terminals, term)
	n.terms = append(n.terms, term)
	n.prods = append(n.prods, p)
	return nil
}

// buildAlpha compiles the single-WME tests of a CE into the shared alpha
// network and returns the alpha memory plus the CE-local equality
// binders (var -> attr of first equality occurrence inside this CE).
func (n *Network) buildAlpha(p *ops5.Production, ceIdx int, ce *ops5.CondElement, outer map[string]binder) (*AlphaMem, map[string]string, error) {
	local := make(map[string]string)
	var tests []ConstTest
	for _, at := range ce.Tests {
		for _, t := range at.Terms {
			switch t.Kind {
			case ops5.TermConst:
				tests = append(tests, ConstTest{Kind: ctConst, Attr: at.Attr, AttrID: at.AttrID, Pred: t.Pred, Val: t.Val})
			case ops5.TermDisj:
				tests = append(tests, ConstTest{Kind: ctDisj, Attr: at.Attr, AttrID: at.AttrID, Disj: t.Disj})
			case ops5.TermVar:
				if a, boundHere := local[t.Var]; boundHere {
					// Intra-element test against the local binding.
					if !(t.Pred == ops5.PredEq && a == at.Attr) {
						tests = append(tests, ConstTest{Kind: ctAttrRel, Attr: at.Attr, AttrID: at.AttrID,
							Pred: t.Pred, Attr2: a, Attr2ID: sym.Intern(a)})
					}
					continue
				}
				if _, boundEarlier := outer[t.Var]; boundEarlier {
					continue // becomes a join test
				}
				if t.Pred == ops5.PredEq {
					local[t.Var] = at.Attr
					continue
				}
				return nil, nil, fmt.Errorf(
					"rete: production %s: variable <%s> used with predicate %s before being bound",
					p.Name, t.Var, t.Pred)
			}
		}
	}
	// Canonical order maximises sharing across CEs. Keys are computed
	// once up front: key() builds strings, and calling it inside the
	// sort comparator and child scans below would allocate per compare.
	keys := make([]string, len(tests))
	for i := range tests {
		keys[i] = tests[i].key()
	}
	sort.Sort(&testsByKey{tests, keys})

	root := n.roots[ce.ClassID]
	if root == nil {
		root = &ConstNode{ID: n.id(), Test: ConstTest{Kind: ctAlways}}
		n.roots[ce.ClassID] = root
	}
	root.SharedBy++
	cur := root
	key := "class:" + ce.Class
	for i := range tests {
		key += "/" + keys[i]
		var child *ConstNode
		for _, c := range cur.Children {
			if c.testKey == keys[i] {
				child = c
				break
			}
		}
		if child == nil {
			child = &ConstNode{ID: n.id(), Test: tests[i], testKey: keys[i]}
			cur.Children = append(cur.Children, child)
		}
		child.SharedBy++
		cur = child
	}
	am := n.alphaByKey[key]
	if am == nil {
		am = &AlphaMem{ID: n.id()}
		n.alphaByKey[key] = am
		n.alphas = append(n.alphas, am)
		cur.Mem = am
	}
	am.ProdRefs = append(am.ProdRefs, ProdRef{Production: p, CE: ceIdx})
	return am, local, nil
}

// buildJoinTests compiles the inter-element variable tests of a CE.
func (n *Network) buildJoinTests(p *ops5.Production, ce *ops5.CondElement, outer map[string]binder, local map[string]string) ([]JoinTest, error) {
	var tests []JoinTest
	seenEq := make(map[string]bool) // vars whose equality-vs-outer test is already emitted
	for _, at := range ce.Tests {
		for _, t := range at.Terms {
			if t.Kind != ops5.TermVar {
				continue
			}
			b, boundEarlier := outer[t.Var]
			if !boundEarlier {
				continue // local to this CE; handled in alpha
			}
			if t.Pred == ops5.PredEq {
				// The first equality occurrence tests against the outer
				// binding; repeats within the CE were already chained to
				// the local attr by buildAlpha only when the var was
				// local, so emit every equality occurrence here unless
				// it is a same-attr duplicate.
				tk := t.Var + "@" + at.Attr
				if seenEq[tk] {
					continue
				}
				seenEq[tk] = true
			}
			tests = append(tests, JoinTest{
				Pred:      t.Pred,
				RightAttr: at.Attr,
				RightID:   at.AttrID,
				LeftIdx:   b.tokenIdx,
				LeftAttr:  b.attr,
				LeftID:    sym.Intern(b.attr),
			})
		}
	}
	return tests, nil
}

// findOrAddJoin returns a shared or fresh two-input node.
func (n *Network) findOrAddJoin(kind JoinKind, left *BetaMem, right *AlphaMem, tests []JoinTest) *JoinNode {
	key := strconv.Itoa(int(kind)) + "|" + strconv.Itoa(left.ID) + "|" + strconv.Itoa(right.ID)
	tkeys := make([]string, len(tests))
	for i := range tests {
		tkeys[i] = tests[i].key()
	}
	sort.Strings(tkeys)
	key += "|" + strings.Join(tkeys, ";")
	if j := n.joinByKey[key]; j != nil {
		j.SharedBy++
		return j
	}
	j := &JoinNode{
		ID:       n.id(),
		Kind:     kind,
		Left:     left,
		Right:    right,
		Tests:    tests,
		Out:      n.newBetaMem(),
		SharedBy: 1,
	}
	left.Joins = append(left.Joins, j)
	// Prepend so that descendant joins are right-activated before their
	// ancestors: when one WME reaches both inputs of a join (a CE chain
	// where two CEs share an alpha memory), the pair must be emitted
	// exactly once — by the ancestor's token flowing down, not by the
	// descendant's right activation seeing a token that does not exist
	// yet. Activating descendants first guarantees this (Forgy's OPS5
	// ordering; see also Doorenbos 1995 §2.4.1).
	right.Succs = append([]*JoinNode{j}, right.Succs...)
	n.joins = append(n.joins, j)
	n.joinByKey[key] = j
	return j
}
