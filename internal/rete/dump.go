package rete

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sym"
)

// Dump writes a human-readable description of the compiled network:
// the constant-test chains per class, each alpha memory with its
// successors, the two-input nodes with their join tests, and the
// terminals — the topology Figure 2-2 of the paper draws.
func (n *Network) Dump(w io.Writer) {
	classes := make([]string, 0, len(n.roots))
	byName := make(map[string]sym.ID, len(n.roots))
	for c := range n.roots {
		name := sym.Name(c)
		classes = append(classes, name)
		byName[name] = c
	}
	sort.Strings(classes)
	fmt.Fprintf(w, "rete network: %d const nodes, %d alpha memories, %d two-input nodes, %d beta memories, %d terminals\n",
		n.Counts().ConstNodes, len(n.alphas), len(n.joins), len(n.betas), len(n.terms))

	for _, class := range classes {
		fmt.Fprintf(w, "class %s:\n", class)
		var visit func(c *ConstNode, depth int)
		visit = func(c *ConstNode, depth int) {
			indent := strings.Repeat("  ", depth+1)
			label := c.Test.String()
			if c.Test.Kind == ctAlways {
				label = "(root)"
			}
			fmt.Fprintf(w, "%s#%d %s", indent, c.ID, label)
			if c.SharedBy > 1 {
				fmt.Fprintf(w, " [shared x%d]", c.SharedBy)
			}
			if c.Mem != nil {
				fmt.Fprintf(w, " -> alpha#%d", c.Mem.ID)
			}
			fmt.Fprintln(w)
			for _, ch := range c.Children {
				visit(ch, depth+1)
			}
		}
		visit(n.roots[byName[class]], 0)
	}

	fmt.Fprintln(w, "two-input nodes:")
	for _, j := range n.joins {
		kind := "and"
		if j.Kind == JoinNegative {
			kind = "not"
		}
		var tests []string
		for i := range j.Tests {
			tests = append(tests, j.Tests[i].key())
		}
		testStr := "(no tests)"
		if len(tests) > 0 {
			testStr = strings.Join(tests, " & ")
		}
		left := "dummy-top"
		if j.Left != n.dummyTop {
			left = fmt.Sprintf("beta#%d", j.Left.ID)
		}
		fmt.Fprintf(w, "  %s#%d: %s + alpha#%d %s -> beta#%d", kind, j.ID, left, j.Right.ID, testStr, j.Out.ID)
		if j.SharedBy > 1 {
			fmt.Fprintf(w, " [shared x%d]", j.SharedBy)
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintln(w, "terminals:")
	for _, t := range n.terms {
		fmt.Fprintf(w, "  term#%d: %s\n", t.ID, t.Production.Name)
	}
}
