package rete

import "repro/internal/ops5"

// MatchAlphas runs the constant-test network for a WME without mutating
// any memory, returning the alpha memories whose tests all pass and the
// number of constant tests evaluated. The parallel runtime and the
// statistics tools use this to dispatch WM changes.
func (n *Network) MatchAlphas(w *ops5.WME) (mems []*AlphaMem, tests int) {
	root := n.roots[w.ClassID()]
	if root == nil {
		return nil, 0
	}
	var visit func(node *ConstNode)
	visit = func(node *ConstNode) {
		tests++
		if !node.Test.Eval(w) {
			return
		}
		if node.Mem != nil {
			mems = append(mems, node.Mem)
		}
		for _, c := range node.Children {
			visit(c)
		}
	}
	visit(root)
	return mems, tests
}

// NodeCounts summarises the compiled network's size, used by README
// examples and the sharing experiments.
type NodeCounts struct {
	ConstNodes int
	AlphaMems  int
	JoinNodes  int
	NegNodes   int
	BetaMems   int
	Terminals  int
	// SharedConstSavings counts constant-test nodes saved by sharing:
	// the sum over nodes of (SharedBy - 1).
	SharedConstSavings int
	// SharedJoinSavings counts two-input nodes saved by sharing.
	SharedJoinSavings int
}

// Counts walks the network and tallies node counts and sharing savings.
func (n *Network) Counts() NodeCounts {
	var c NodeCounts
	seen := make(map[*ConstNode]bool)
	var visit func(node *ConstNode)
	visit = func(node *ConstNode) {
		if seen[node] {
			return
		}
		seen[node] = true
		c.ConstNodes++
		if node.SharedBy > 1 {
			c.SharedConstSavings += node.SharedBy - 1
		}
		for _, ch := range node.Children {
			visit(ch)
		}
	}
	for _, r := range n.roots {
		visit(r)
	}
	c.AlphaMems = len(n.alphas)
	for _, j := range n.joins {
		if j.Kind == JoinNegative {
			c.NegNodes++
		} else {
			c.JoinNodes++
		}
		if j.SharedBy > 1 {
			c.SharedJoinSavings += j.SharedBy - 1
		}
	}
	c.BetaMems = len(n.betas)
	c.Terminals = len(n.terms)
	return c
}

// StateSize returns the amount of stored match state: alpha-memory
// entries plus beta-memory tokens plus not-node left records. This is
// the §3.2 "amount of state" measure; Rete sits between TREAT (alpha
// only) and the full-state scheme (all CE combinations).
func (n *Network) StateSize() int {
	size := 0
	for _, am := range n.alphas {
		size += len(am.Items)
	}
	for _, bm := range n.betas {
		size += len(bm.Tokens)
	}
	for _, j := range n.joins {
		if j.negIndex != nil {
			size += j.negCount
		} else {
			size += len(j.negRecords)
		}
	}
	// The dummy top's permanent empty token is not match state.
	return size - 1
}
