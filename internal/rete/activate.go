package rete

import (
	"fmt"

	"repro/internal/ops5"
)

// NodeKind classifies activations for tracing and cost modelling.
type NodeKind uint8

// The activation kinds recorded in traces.
const (
	// KindRoot is the constant-test chain evaluation for one WM change.
	KindRoot NodeKind = iota
	// KindAlpha is an alpha-memory update.
	KindAlpha
	// KindJoinRight is a right (alpha-side) activation of an and-node.
	KindJoinRight
	// KindJoinLeft is a left (beta-side) activation of an and-node.
	KindJoinLeft
	// KindNegRight is a right activation of a not-node.
	KindNegRight
	// KindNegLeft is a left activation of a not-node.
	KindNegLeft
	// KindTerm is a conflict-set insertion or removal.
	KindTerm
)

// String names the activation kind.
func (k NodeKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindAlpha:
		return "alpha"
	case KindJoinRight:
		return "join-right"
	case KindJoinLeft:
		return "join-left"
	case KindNegRight:
		return "not-right"
	case KindNegLeft:
		return "not-left"
	case KindTerm:
		return "terminal"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ActivationEvent describes one node activation. The Seq/Parent pair
// forms the dependency DAG consumed by the PSM simulator: an activation
// cannot begin before its parent completes.
type ActivationEvent struct {
	// Seq is the unique activation id (> 0).
	Seq int64
	// Parent is the activation that scheduled this one; 0 for the root
	// activation of a WM change.
	Parent int64
	// Change is the index of the WM change within the Apply batch.
	Change int
	// Kind is the node type activated.
	Kind NodeKind
	// NodeID identifies the network node (for exclusive-node modelling).
	NodeID int
	// Dir is Insert or Delete.
	Dir ops5.ChangeKind
	// TestsRun counts constant tests evaluated (root events).
	TestsRun int
	// TokensTested counts opposite-memory entries tested (join events):
	// the probed bucket's population when Indexed, the full memory
	// otherwise.
	TokensTested int
	// PairsEmitted counts tokens sent downstream.
	PairsEmitted int
	// Indexed reports whether the activation probed a hash bucket
	// rather than scanning the opposite memory.
	Indexed bool
	// OppSize is the opposite memory's total population at activation
	// time; with TokensTested it shows the work an index saved.
	OppSize int
	// SharedBy is the number of productions/CEs sharing the node; the
	// simulator uses it to model the sharing that production-level
	// parallelism loses (§4).
	SharedBy int
}

// TraceFunc receives activation events during Apply.
type TraceFunc func(ev ActivationEvent)

// Stats accumulates match statistics over all Apply calls.
type Stats struct {
	// Changes is the number of WM changes processed.
	Changes int
	// Activations counts node activations by kind.
	Activations [KindTerm + 1]int64
	// ConstTests is the total number of constant tests evaluated.
	ConstTests int64
	// TokenComparisons is the total number of (token, wme) pairs tested
	// at two-input nodes (bucket candidates only, for indexed nodes).
	TokenComparisons int64
	// IndexedProbes counts two-input activations answered from a hash
	// bucket instead of a linear scan.
	IndexedProbes int64
	// ConflictInserts and ConflictRemoves count conflict-set deltas.
	ConflictInserts int64
	// ConflictRemoves counts conflict-set removals.
	ConflictRemoves int64
	// AffectedProductions is the total over changes of the number of
	// productions with at least one alpha memory touched by the change
	// (the paper's "affected productions", ~30 per change).
	AffectedProductions int64
	// TwoInputPerProduction histograms two-input activations per
	// affected production per change (index clamped at 15).
	TwoInputPerProduction [16]int64
	// Anomalies counts removal requests for absent tokens (should be 0).
	Anomalies int64
}

// TotalActivations returns the number of node activations of all kinds.
func (s *Stats) TotalActivations() int64 {
	var t int64
	for _, v := range s.Activations {
		t += v
	}
	return t
}

// AvgAffected returns the mean number of affected productions per change.
func (s *Stats) AvgAffected() float64 {
	if s.Changes == 0 {
		return 0
	}
	return float64(s.AffectedProductions) / float64(s.Changes)
}

// linearProbeMin is the opposite-memory population below which a join
// activation scans linearly even when an index exists: computing the
// join key and probing the map costs more than testing a handful of
// candidates directly. Memories this small are also where most
// activations of well-partitioned programs land, so the cutover
// matters for constant factors while leaving the asymptotics indexed.
const linearProbeMin = 16

// applyCtx threads per-change bookkeeping through the propagation.
type applyCtx struct {
	change   int
	dir      ops5.ChangeKind
	affected map[*ops5.Production]int // production -> two-input activations
}

// Apply processes a batch of working-memory changes through the network
// serially, in order. Insert WMEs must already carry their time tags
// (working memory assigns them).
func (n *Network) Apply(changes []ops5.Change) {
	n.started = true
	n.prepare()
	for i, ch := range changes {
		ctx := &applyCtx{change: i, dir: ch.Kind, affected: make(map[*ops5.Production]int)}
		root := n.roots[ch.WME.ClassID()]
		tests := 0
		rootSeq := n.nextSeq()
		if root != nil {
			n.visitConst(root, ch.WME, ctx, rootSeq, &tests)
		}
		n.Stats.ConstTests += int64(tests)
		n.Stats.Changes++
		n.Stats.Activations[KindRoot]++
		n.Stats.AffectedProductions += int64(len(ctx.affected))
		for _, cnt := range ctx.affected {
			idx := cnt
			if idx > 15 {
				idx = 15
			}
			n.Stats.TwoInputPerProduction[idx]++
		}
		n.emit(ActivationEvent{
			Seq: rootSeq, Parent: 0, Change: i, Kind: KindRoot, NodeID: 0,
			Dir: ch.Kind, TestsRun: tests,
		})
	}
}

func (n *Network) nextSeq() int64 {
	n.seq++
	return n.seq
}

func (n *Network) emit(ev ActivationEvent) {
	if n.Tracer != nil {
		n.Tracer(ev)
	}
}

// visitConst walks the constant-test chain below node for the WME.
func (n *Network) visitConst(node *ConstNode, w *ops5.WME, ctx *applyCtx, parent int64, tests *int) {
	*tests++
	if !node.evalConst(w) {
		return
	}
	if node.Mem != nil {
		n.alphaActivate(node.Mem, w, ctx, parent)
	}
	for _, c := range node.Children {
		n.visitConst(c, w, ctx, parent, tests)
	}
}

// alphaActivate updates an alpha memory and right-activates successors.
func (n *Network) alphaActivate(am *AlphaMem, w *ops5.WME, ctx *applyCtx, parent int64) {
	seq := n.nextSeq()
	n.Stats.Activations[KindAlpha]++
	for _, ref := range am.ProdRefs {
		if _, ok := ctx.affected[ref.Production]; !ok {
			ctx.affected[ref.Production] = 0
		}
	}
	switch ctx.dir {
	case ops5.Insert:
		am.insert(w)
		for _, ix := range am.indexes {
			ix.insert(w, am.Items)
		}
	case ops5.Delete:
		if !am.remove(w) {
			n.Stats.Anomalies++
			return
		}
		for _, ix := range am.indexes {
			ix.remove(w)
		}
	}
	n.emit(ActivationEvent{
		Seq: seq, Parent: parent, Change: ctx.change, Kind: KindAlpha,
		NodeID: am.ID, Dir: ctx.dir, SharedBy: len(am.ProdRefs),
	})
	for _, j := range am.Succs {
		n.rightActivate(j, w, ctx, seq)
	}
}

// creditAffected attributes a two-input activation to the productions
// sharing the node, for the per-production variance histogram.
func (n *Network) creditAffected(ctx *applyCtx, am *AlphaMem) {
	for _, ref := range am.ProdRefs {
		ctx.affected[ref.Production]++
	}
}

// rightActivate processes a WME arriving on the right input of a
// two-input node.
func (n *Network) rightActivate(j *JoinNode, w *ops5.WME, ctx *applyCtx, parent int64) {
	seq := n.nextSeq()
	n.creditAffected(ctx, j.Right)
	switch j.Kind {
	case JoinPositive:
		n.Stats.Activations[KindJoinRight]++
		tested, emitted := 0, 0
		toks := j.Left.Tokens
		indexed := j.leftIdx != nil && j.leftIdx.buckets != nil && len(toks) >= linearProbeMin
		if indexed {
			toks = j.leftIdx.probe(j.rightHash(w), &j.leftScratch)
			n.Stats.IndexedProbes++
		}
		for _, tok := range toks {
			tested++
			if j.evalJoin(tok, w) {
				emitted++
				if ctx.dir == ops5.Insert {
					n.betaInsert(j.Out, tok.Extend(w), ctx, seq)
				} else {
					n.betaDeleteExt(j.Out, tok, w, ctx, seq)
				}
			}
		}
		n.Stats.TokenComparisons += int64(tested)
		j.Prof.add(tested, emitted, indexed)
		n.emit(ActivationEvent{
			Seq: seq, Parent: parent, Change: ctx.change, Kind: KindJoinRight,
			NodeID: j.ID, Dir: ctx.dir, TokensTested: tested, PairsEmitted: emitted,
			SharedBy: j.SharedBy, Indexed: indexed, OppSize: len(j.Left.Tokens),
		})
	case JoinNegative:
		n.Stats.Activations[KindNegRight]++
		tested, emitted := 0, 0
		indexed := j.negIndex != nil
		adjust := func(rec *negRecord) {
			tested++
			if !j.evalJoin(rec.tok, w) {
				return
			}
			switch ctx.dir {
			case ops5.Insert:
				rec.count++
				if rec.count == 1 {
					emitted++
					n.betaDelete(j.Out, rec.tok, ctx, seq)
				}
			case ops5.Delete:
				rec.count--
				if rec.count == 0 {
					emitted++
					n.betaInsert(j.Out, rec.tok, ctx, seq)
				}
			}
		}
		if indexed {
			n.Stats.IndexedProbes++
			// Propagation from j.Out flows strictly downstream, so the
			// chain is never appended to (entries never move) while we
			// hold pointers into it.
			if head, ok := j.negIndex[j.rightHash(w)]; ok {
				for e := head; e >= 0; e = j.negEntries[e].next {
					adjust(&j.negEntries[e].rec)
				}
			}
		} else {
			for _, rec := range j.negRecords {
				adjust(rec)
			}
		}
		opp := len(j.negRecords)
		if indexed {
			opp = j.negCount
		}
		n.Stats.TokenComparisons += int64(tested)
		j.Prof.add(tested, emitted, indexed)
		n.emit(ActivationEvent{
			Seq: seq, Parent: parent, Change: ctx.change, Kind: KindNegRight,
			NodeID: j.ID, Dir: ctx.dir, TokensTested: tested, PairsEmitted: emitted,
			SharedBy: j.SharedBy, Indexed: indexed, OppSize: opp,
		})
	}
}

// leftActivate processes a token arriving on the left input of a
// two-input node. dir gives whether the token is being added or removed.
func (n *Network) leftActivate(j *JoinNode, tok *Token, dir ops5.ChangeKind, ctx *applyCtx, parent int64) {
	seq := n.nextSeq()
	n.creditAffected(ctx, j.Right)
	switch j.Kind {
	case JoinPositive:
		n.Stats.Activations[KindJoinLeft]++
		tested, emitted := 0, 0
		items := j.Right.Items
		indexed := j.rightIdx != nil && j.rightIdx.buckets != nil && len(items) >= linearProbeMin
		if indexed {
			items = j.rightIdx.probe(j.leftHash(tok), &j.rightScratch)
			n.Stats.IndexedProbes++
		}
		for _, w := range items {
			tested++
			if j.evalJoin(tok, w) {
				emitted++
				if dir == ops5.Insert {
					n.betaInsert(j.Out, tok.Extend(w), ctx, seq)
				} else {
					n.betaDeleteExt(j.Out, tok, w, ctx, seq)
				}
			}
		}
		n.Stats.TokenComparisons += int64(tested)
		j.Prof.add(tested, emitted, indexed)
		n.emit(ActivationEvent{
			Seq: seq, Parent: parent, Change: ctx.change, Kind: KindJoinLeft,
			NodeID: j.ID, Dir: dir, TokensTested: tested, PairsEmitted: emitted,
			SharedBy: j.SharedBy, Indexed: indexed, OppSize: len(j.Right.Items),
		})
	case JoinNegative:
		n.Stats.Activations[KindNegLeft]++
		tested, emitted := 0, 0
		indexed := j.negIndex != nil
		switch dir {
		case ops5.Insert:
			count := 0
			items := j.Right.Items
			if j.rightIdx != nil && j.rightIdx.buckets != nil && len(items) >= linearProbeMin {
				items = j.rightIdx.probe(j.leftHash(tok), &j.rightScratch)
				n.Stats.IndexedProbes++
			}
			for _, w := range items {
				tested++
				if j.evalJoin(tok, w) {
					count++
				}
			}
			if indexed {
				j.negAdd(j.leftHash(tok), negRecord{tok: tok, count: count})
				j.negCount++
			} else {
				j.negRecords = append(j.negRecords, &negRecord{tok: tok, count: count})
			}
			if count == 0 {
				emitted++
				n.betaInsert(j.Out, tok, ctx, seq)
			}
		case ops5.Delete:
			found := false
			if indexed {
				if count, ok := j.negDelete(j.leftHash(tok), tok); ok {
					tested++
					j.negCount--
					if count == 0 {
						emitted++
						n.betaDelete(j.Out, tok, ctx, seq)
					}
					found = true
				}
			} else {
				for idx, rec := range j.negRecords {
					tested++
					if rec.tok.EqualTo(tok) {
						count := rec.count
						j.negRecords = append(j.negRecords[:idx], j.negRecords[idx+1:]...)
						if count == 0 {
							emitted++
							n.betaDelete(j.Out, tok, ctx, seq)
						}
						found = true
						break
					}
				}
			}
			if !found {
				n.Stats.Anomalies++
			}
		}
		n.Stats.TokenComparisons += int64(tested)
		j.Prof.add(tested, emitted, indexed)
		n.emit(ActivationEvent{
			Seq: seq, Parent: parent, Change: ctx.change, Kind: KindNegLeft,
			NodeID: j.ID, Dir: dir, TokensTested: tested, PairsEmitted: emitted,
			SharedBy: j.SharedBy, Indexed: indexed, OppSize: len(j.Right.Items),
		})
	}
}

// betaInsert stores a token and propagates to joins and terminals.
func (n *Network) betaInsert(bm *BetaMem, tok *Token, ctx *applyCtx, parent int64) {
	bm.insert(tok)
	for _, ix := range bm.indexes {
		ix.insert(tok, bm.Tokens)
	}
	for _, j := range bm.Joins {
		n.leftActivate(j, tok, ops5.Insert, ctx, parent)
	}
	for _, t := range bm.Terminals {
		n.terminalActivate(t, tok, ops5.Insert, ctx, parent)
	}
}

// betaDelete removes a token and propagates the removal.
func (n *Network) betaDelete(bm *BetaMem, tok *Token, ctx *applyCtx, parent int64) {
	if !bm.remove(tok) {
		n.Stats.Anomalies++
		return
	}
	for _, ix := range bm.indexes {
		ix.remove(tok)
	}
	for _, j := range bm.Joins {
		n.leftActivate(j, tok, ops5.Delete, ctx, parent)
	}
	for _, t := range bm.Terminals {
		n.terminalActivate(t, tok, ops5.Delete, ctx, parent)
	}
}

// betaDeleteExt removes the token formed by base plus w and propagates
// the removal using the stored token, so the delete path never
// materialises an extended token (see BetaMem.removeExt).
func (n *Network) betaDeleteExt(bm *BetaMem, base *Token, w *ops5.WME, ctx *applyCtx, parent int64) {
	tok, ok := bm.removeExt(base, w)
	if !ok {
		n.Stats.Anomalies++
		return
	}
	for _, ix := range bm.indexes {
		ix.remove(tok)
	}
	for _, j := range bm.Joins {
		n.leftActivate(j, tok, ops5.Delete, ctx, parent)
	}
	for _, t := range bm.Terminals {
		n.terminalActivate(t, tok, ops5.Delete, ctx, parent)
	}
}

// terminalActivate emits a conflict-set delta.
func (n *Network) terminalActivate(t *Terminal, tok *Token, dir ops5.ChangeKind, ctx *applyCtx, parent int64) {
	seq := n.nextSeq()
	n.Stats.Activations[KindTerm]++
	key := tokenIDHash(tok)
	var inst *ops5.Instantiation
	if dir == ops5.Insert {
		inst = t.Instantiate(tok)
		if t.live == nil {
			t.live = make(map[uint64]int32)
			t.liveFree = -1
		}
		t.liveAdd(key, tok, inst)
		n.Stats.ConflictInserts++
		if n.OnInsert != nil {
			n.OnInsert(inst)
		}
	} else {
		inst = t.liveTake(key, tok)
		if inst == nil {
			inst = t.Instantiate(tok)
		}
		n.Stats.ConflictRemoves++
		if n.OnRemove != nil {
			n.OnRemove(inst)
		}
	}
	n.emit(ActivationEvent{
		Seq: seq, Parent: parent, Change: ctx.change, Kind: KindTerm,
		NodeID: t.ID, Dir: dir, PairsEmitted: 1,
	})
}
