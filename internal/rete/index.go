package rete

import (
	"sort"

	"repro/internal/ops5"
	"repro/internal/sym"
)

// This file implements equality-keyed hash indexes over alpha and beta
// memories. At prepare time (the first Apply) the equality subset of
// each two-input node's tests becomes a join key; the node's opposite
// memories maintain chained hash buckets alongside their slices, and
// activations probe the matching bucket instead of scanning the whole
// memory. Both the serial matcher and the parallel matcher's
// lock-striped buckets key on the allocation-free uint64 hash
// (JoinHashFuncs over ops5.HashValue); JoinKeyFuncs keeps the readable
// string encoding for diagnostics. Both encodings are Equal-consistent
// but not injective, so every candidate drawn from a bucket is still
// re-verified with the node's full test chain: a key collision can only
// widen a bucket, never fabricate or lose a match.
//
// Buckets are singly-linked chains through one append-only entry array
// per index (int32 links, free-listed on removal), not per-key slices:
// steady-state insertion and removal touch only the entry array and the
// map's inline int32 value, so index upkeep does not allocate. This is
// safe against iteration-during-mutation because the network is a DAG:
// propagation only ever mutates memories downstream of the one being
// iterated.
//
// Nodes with no equality tests (pure predicate joins) keep the linear
// scan; indexed not-nodes keep their count semantics but store the
// left records keyed by join key.

// SplitJoinTests partitions a two-input node's tests into the equality
// tests forming the hash join key (in canonical order, so nodes with
// the same key spec can share an index) and the residual predicate
// tests. Used here at prepare time and by the parallel matcher.
func SplitJoinTests(tests []JoinTest) (eq, rest []JoinTest) {
	for _, t := range tests {
		if t.Pred == ops5.PredEq {
			eq = append(eq, t)
		} else {
			rest = append(rest, t)
		}
	}
	if len(eq) > 1 {
		// Precompute keys: key() builds a string, and the comparator
		// runs O(n log n) times.
		keys := make(map[*JoinTest]string, len(eq))
		for i := range eq {
			keys[&eq[i]] = eq[i].key()
		}
		sort.Slice(eq, func(i, j int) bool { return keys[&eq[i]] < keys[&eq[j]] })
	}
	return eq, rest
}

// JoinKeyFuncs returns the two sides' key functions for an equality
// test list (as returned by SplitJoinTests): leftKey over a token's
// bound attributes, rightKey over a WME's. A (token, WME) pair that
// passes every equality test always produces leftKey == rightKey.
func JoinKeyFuncs(eq []JoinTest) (leftKey func(*Token) string, rightKey func(*ops5.WME) string) {
	tests := append([]JoinTest(nil), eq...)
	leftKey = func(tok *Token) string {
		b := make([]byte, 0, 16*len(tests))
		for _, t := range tests {
			b = ops5.AppendValueKey(b, tok.WMEs[t.LeftIdx].GetID(t.LeftID))
		}
		return string(b)
	}
	rightKey = func(w *ops5.WME) string {
		b := make([]byte, 0, 16*len(tests))
		for _, t := range tests {
			b = ops5.AppendValueKey(b, w.GetID(t.RightID))
		}
		return string(b)
	}
	return leftKey, rightKey
}

// JoinHashFuncs is the allocation-free counterpart of JoinKeyFuncs: the
// returned functions fold the key columns into a uint64 with
// ops5.HashValue. A (token, WME) pair passing every equality test
// always produces leftHash == rightHash. The hash is Equal-consistent
// but not injective, so callers (this package's indexes and the parallel
// matcher's lock-striped buckets) re-verify bucket candidates with the
// node's full test chain.
func JoinHashFuncs(eq []JoinTest) (leftHash func(*Token) uint64, rightHash func(*ops5.WME) uint64) {
	tests := append([]JoinTest(nil), eq...)
	leftHash = func(tok *Token) uint64 {
		h := ops5.HashSeed
		for _, t := range tests {
			h = ops5.HashValue(h, tok.WMEs[t.LeftIdx].GetID(t.LeftID))
		}
		return h
	}
	rightHash = func(w *ops5.WME) uint64 {
		h := ops5.HashSeed
		for _, t := range tests {
			h = ops5.HashValue(h, w.GetID(t.RightID))
		}
		return h
	}
	return leftHash, rightHash
}

// wmeEntry is one chain link of an alphaIndex: the WME and the entry
// index of the next link (-1 ends the chain; free-listed entries reuse
// next as the free link).
type wmeEntry struct {
	w    *ops5.WME
	next int32
}

// alphaIndex is a hash index over an alpha memory's WMEs, keyed by the
// values of attrs (the RightID columns of one equality key spec).
// buckets stays nil — and insert/remove are no-ops — until the memory
// first reaches linearProbeMin items, the size below which activations
// scan linearly anyway; tiny memories then pay no key or map upkeep.
type alphaIndex struct {
	attrs   []sym.ID
	buckets map[uint64]int32
	entries []wmeEntry
	free    int32
}

func (ix *alphaIndex) key(w *ops5.WME) uint64 {
	h := ops5.HashSeed
	for _, a := range ix.attrs {
		h = ops5.HashValue(h, w.GetID(a))
	}
	return h
}

// add links w into the bucket for key k, reusing a free entry if any.
func (ix *alphaIndex) add(k uint64, w *ops5.WME) {
	head, ok := ix.buckets[k]
	if !ok {
		head = -1
	}
	var i int32
	if ix.free >= 0 {
		i = ix.free
		ix.free = ix.entries[i].next
		ix.entries[i] = wmeEntry{w: w, next: head}
	} else {
		i = int32(len(ix.entries))
		ix.entries = append(ix.entries, wmeEntry{w: w, next: head})
	}
	ix.buckets[k] = i
}

// insert adds w to its bucket. items is the owning memory's current
// population (already including w); the bucket map is built from it in
// full when the memory first reaches linearProbeMin.
func (ix *alphaIndex) insert(w *ops5.WME, items []*ops5.WME) {
	if ix.buckets == nil {
		if len(items) < linearProbeMin {
			return
		}
		ix.buckets = make(map[uint64]int32, len(items))
		ix.entries = make([]wmeEntry, 0, 2*len(items))
		ix.free = -1
		for _, x := range items {
			ix.add(ix.key(x), x)
		}
		return
	}
	ix.add(ix.key(w), w)
}

func (ix *alphaIndex) remove(w *ops5.WME) {
	if ix.buckets == nil {
		return
	}
	k := ix.key(w)
	head, ok := ix.buckets[k]
	if !ok {
		return
	}
	prev := int32(-1)
	for i := head; i >= 0; i = ix.entries[i].next {
		if ix.entries[i].w == w {
			next := ix.entries[i].next
			if prev < 0 {
				if next < 0 {
					delete(ix.buckets, k)
				} else {
					ix.buckets[k] = next
				}
			} else {
				ix.entries[prev].next = next
			}
			ix.entries[i] = wmeEntry{next: ix.free}
			ix.free = i
			return
		}
		prev = i
	}
}

// probe collects the bucket for key k into scratch's storage (grown as
// needed and retained by the caller across probes, so steady-state
// probing does not allocate) and returns the filled slice.
func (ix *alphaIndex) probe(k uint64, scratch *[]*ops5.WME) []*ops5.WME {
	out := (*scratch)[:0]
	head, ok := ix.buckets[k]
	if !ok {
		*scratch = out
		return out
	}
	for i := head; i >= 0; i = ix.entries[i].next {
		out = append(out, ix.entries[i].w)
	}
	*scratch = out
	return out
}

// bucketStats reports the live bucket count and largest chain length.
func (ix *alphaIndex) bucketStats() (buckets, maxBucket int) {
	for _, head := range ix.buckets {
		buckets++
		n := 0
		for i := head; i >= 0; i = ix.entries[i].next {
			n++
		}
		if n > maxBucket {
			maxBucket = n
		}
	}
	return buckets, maxBucket
}

// betaCol is one column of a beta index key: token position and attr.
type betaCol struct {
	idx  int
	attr sym.ID
}

// tokEntry is one chain link of a betaIndex (see wmeEntry).
type tokEntry struct {
	tok  *Token
	next int32
}

// betaIndex is a hash index over a beta memory's tokens, keyed by the
// values of cols (the LeftIdx/LeftID columns of one equality spec).
// As with alphaIndex, buckets stays nil until the memory first reaches
// linearProbeMin tokens.
type betaIndex struct {
	cols    []betaCol
	buckets map[uint64]int32
	entries []tokEntry
	free    int32
}

func (ix *betaIndex) key(tok *Token) uint64 {
	h := ops5.HashSeed
	for _, c := range ix.cols {
		h = ops5.HashValue(h, tok.WMEs[c.idx].GetID(c.attr))
	}
	return h
}

// add links tok into the bucket for key k, reusing a free entry if any.
func (ix *betaIndex) add(k uint64, tok *Token) {
	head, ok := ix.buckets[k]
	if !ok {
		head = -1
	}
	var i int32
	if ix.free >= 0 {
		i = ix.free
		ix.free = ix.entries[i].next
		ix.entries[i] = tokEntry{tok: tok, next: head}
	} else {
		i = int32(len(ix.entries))
		ix.entries = append(ix.entries, tokEntry{tok: tok, next: head})
	}
	ix.buckets[k] = i
}

// insert adds tok to its bucket. tokens is the owning memory's current
// population (already including tok); the bucket map is built from it
// in full when the memory first reaches linearProbeMin.
func (ix *betaIndex) insert(tok *Token, tokens []*Token) {
	if ix.buckets == nil {
		if len(tokens) < linearProbeMin {
			return
		}
		ix.buckets = make(map[uint64]int32, len(tokens))
		ix.entries = make([]tokEntry, 0, 2*len(tokens))
		ix.free = -1
		for _, x := range tokens {
			ix.add(ix.key(x), x)
		}
		return
	}
	ix.add(ix.key(tok), tok)
}

func (ix *betaIndex) remove(tok *Token) {
	if ix.buckets == nil {
		return
	}
	k := ix.key(tok)
	head, ok := ix.buckets[k]
	if !ok {
		return
	}
	prev := int32(-1)
	for i := head; i >= 0; i = ix.entries[i].next {
		if ix.entries[i].tok.EqualTo(tok) {
			next := ix.entries[i].next
			if prev < 0 {
				if next < 0 {
					delete(ix.buckets, k)
				} else {
					ix.buckets[k] = next
				}
			} else {
				ix.entries[prev].next = next
			}
			ix.entries[i] = tokEntry{next: ix.free}
			ix.free = i
			return
		}
		prev = i
	}
}

// probe collects the bucket for key k into scratch's storage (see
// alphaIndex.probe) and returns the filled slice.
func (ix *betaIndex) probe(k uint64, scratch *[]*Token) []*Token {
	out := (*scratch)[:0]
	head, ok := ix.buckets[k]
	if !ok {
		*scratch = out
		return out
	}
	for i := head; i >= 0; i = ix.entries[i].next {
		out = append(out, ix.entries[i].tok)
	}
	*scratch = out
	return out
}

// bucketStats reports the live bucket count and largest chain length.
func (ix *betaIndex) bucketStats() (buckets, maxBucket int) {
	for _, head := range ix.buckets {
		buckets++
		n := 0
		for i := head; i >= 0; i = ix.entries[i].next {
			n++
		}
		if n > maxBucket {
			maxBucket = n
		}
	}
	return buckets, maxBucket
}

// indexFor returns this alpha memory's index for the given equality
// spec, creating (and back-filling) it on first request. Joins with
// identical right-side key columns share one index.
func (am *AlphaMem) indexFor(eq []JoinTest) *alphaIndex {
	attrs := make([]sym.ID, len(eq))
	for i, t := range eq {
		attrs[i] = t.RightID
	}
	for _, ix := range am.indexes {
		if idsEqual(ix.attrs, attrs) {
			return ix
		}
	}
	ix := &alphaIndex{attrs: attrs, free: -1}
	if len(am.Items) >= linearProbeMin {
		ix.buckets = make(map[uint64]int32, len(am.Items))
		ix.entries = make([]wmeEntry, 0, 2*len(am.Items))
		for _, w := range am.Items {
			ix.add(ix.key(w), w)
		}
	}
	am.indexes = append(am.indexes, ix)
	return ix
}

// indexFor returns this beta memory's index for the given equality
// spec, creating (and back-filling) it on first request.
func (bm *BetaMem) indexFor(eq []JoinTest) *betaIndex {
	cols := make([]betaCol, len(eq))
	for i, t := range eq {
		cols[i] = betaCol{idx: t.LeftIdx, attr: t.LeftID}
	}
	for _, ix := range bm.indexes {
		if colsEqual(ix.cols, cols) {
			return ix
		}
	}
	ix := &betaIndex{cols: cols, free: -1}
	if len(bm.Tokens) >= linearProbeMin {
		ix.buckets = make(map[uint64]int32, len(bm.Tokens))
		ix.entries = make([]tokEntry, 0, 2*len(bm.Tokens))
		for _, tok := range bm.Tokens {
			ix.add(ix.key(tok), tok)
		}
	}
	bm.indexes = append(bm.indexes, ix)
	return ix
}

func idsEqual(a, b []sym.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func colsEqual(a, b []betaCol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prepare builds the hash indexes for every two-input node with at
// least one equality test. It runs once, at the first Apply — safe
// because AddProduction rejects further productions after matching
// starts, so the set of key specs is final.
func (n *Network) prepare() {
	if n.prepared {
		return
	}
	n.prepared = true
	for _, j := range n.joins {
		eq, _ := SplitJoinTests(j.Tests)
		if len(eq) == 0 {
			continue
		}
		j.leftHash, j.rightHash = JoinHashFuncs(eq)
		j.rightIdx = j.Right.indexFor(eq)
		j.leftIdx = j.Left.indexFor(eq)
		if j.Kind == JoinNegative {
			j.negIndex = make(map[uint64]int32)
			j.negFree = -1
		}
	}
}

// IndexInfo summarises the hash-index state of a network.
type IndexInfo struct {
	// IndexedJoins and FallbackJoins partition the two-input nodes by
	// whether activations probe a hash bucket or scan linearly.
	IndexedJoins  int
	FallbackJoins int
	// AlphaIndexes and BetaIndexes count distinct (possibly shared)
	// indexes maintained over the memories.
	AlphaIndexes int
	BetaIndexes  int
	// Buckets is the total number of live hash buckets; MaxBucket the
	// largest bucket's population (the residual scan bound).
	Buckets   int
	MaxBucket int
}

// IndexInfo reports the current index topology and occupancy. It
// prepares the network if matching has not started yet.
func (n *Network) IndexInfo() IndexInfo {
	n.prepare()
	var info IndexInfo
	for _, j := range n.joins {
		if j.leftHash != nil {
			info.IndexedJoins++
		} else {
			info.FallbackJoins++
		}
		for _, head := range j.negIndex {
			info.Buckets++
			b := 0
			for e := head; e >= 0; e = j.negEntries[e].next {
				b++
			}
			if b > info.MaxBucket {
				info.MaxBucket = b
			}
		}
	}
	for _, am := range n.alphas {
		info.AlphaIndexes += len(am.indexes)
		for _, ix := range am.indexes {
			b, mx := ix.bucketStats()
			info.Buckets += b
			if mx > info.MaxBucket {
				info.MaxBucket = mx
			}
		}
	}
	for _, bm := range n.betas {
		info.BetaIndexes += len(bm.indexes)
		for _, ix := range bm.indexes {
			b, mx := ix.bucketStats()
			info.Buckets += b
			if mx > info.MaxBucket {
				info.MaxBucket = mx
			}
		}
	}
	return info
}
