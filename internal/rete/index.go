package rete

import (
	"sort"

	"repro/internal/ops5"
)

// This file implements equality-keyed hash indexes over alpha and beta
// memories. At prepare time (the first Apply) the equality subset of
// each two-input node's tests becomes a join key; the node's opposite
// memories maintain map[key]bucket alongside their slices, and
// activations probe the matching bucket instead of scanning the whole
// memory. Both the serial matcher and the parallel matcher's
// lock-striped buckets key on the allocation-free uint64 hash
// (JoinHashFuncs over ops5.HashValue); JoinKeyFuncs keeps the readable
// string encoding for diagnostics. Both encodings are Equal-consistent
// but not injective, so every candidate drawn from a bucket is still
// re-verified with the node's full test chain: a key collision can only
// widen a bucket, never fabricate or lose a match.
// Nodes with no equality tests (pure predicate joins) keep the linear
// scan; indexed not-nodes keep their count semantics but store the
// left records keyed by join key.

// SplitJoinTests partitions a two-input node's tests into the equality
// tests forming the hash join key (in canonical order, so nodes with
// the same key spec can share an index) and the residual predicate
// tests. Used here at prepare time and by the parallel matcher.
func SplitJoinTests(tests []JoinTest) (eq, rest []JoinTest) {
	for _, t := range tests {
		if t.Pred == ops5.PredEq {
			eq = append(eq, t)
		} else {
			rest = append(rest, t)
		}
	}
	sort.Slice(eq, func(i, j int) bool { return eq[i].key() < eq[j].key() })
	return eq, rest
}

// JoinKeyFuncs returns the two sides' key functions for an equality
// test list (as returned by SplitJoinTests): leftKey over a token's
// bound attributes, rightKey over a WME's. A (token, WME) pair that
// passes every equality test always produces leftKey == rightKey.
func JoinKeyFuncs(eq []JoinTest) (leftKey func(*Token) string, rightKey func(*ops5.WME) string) {
	tests := append([]JoinTest(nil), eq...)
	leftKey = func(tok *Token) string {
		b := make([]byte, 0, 16*len(tests))
		for _, t := range tests {
			b = ops5.AppendValueKey(b, tok.WMEs[t.LeftIdx].Get(t.LeftAttr))
		}
		return string(b)
	}
	rightKey = func(w *ops5.WME) string {
		b := make([]byte, 0, 16*len(tests))
		for _, t := range tests {
			b = ops5.AppendValueKey(b, w.Get(t.RightAttr))
		}
		return string(b)
	}
	return leftKey, rightKey
}

// JoinHashFuncs is the allocation-free counterpart of JoinKeyFuncs: the
// returned functions fold the key columns into a uint64 with
// ops5.HashValue. A (token, WME) pair passing every equality test
// always produces leftHash == rightHash. The hash is Equal-consistent
// but not injective, so callers (this package's indexes and the parallel
// matcher's lock-striped buckets) re-verify bucket candidates with the
// node's full test chain.
func JoinHashFuncs(eq []JoinTest) (leftHash func(*Token) uint64, rightHash func(*ops5.WME) uint64) {
	tests := append([]JoinTest(nil), eq...)
	leftHash = func(tok *Token) uint64 {
		h := ops5.HashSeed
		for _, t := range tests {
			h = ops5.HashValue(h, tok.WMEs[t.LeftIdx].Get(t.LeftAttr))
		}
		return h
	}
	rightHash = func(w *ops5.WME) uint64 {
		h := ops5.HashSeed
		for _, t := range tests {
			h = ops5.HashValue(h, w.Get(t.RightAttr))
		}
		return h
	}
	return leftHash, rightHash
}

// alphaIndex is a hash index over an alpha memory's WMEs, keyed by the
// values of attrs (the RightAttr columns of one equality key spec).
// buckets stays nil — and insert/remove are no-ops — until the memory
// first reaches linearProbeMin items, the size below which activations
// scan linearly anyway; tiny memories then pay no key or map upkeep.
type alphaIndex struct {
	attrs   []string
	buckets map[uint64][]*ops5.WME
}

func (ix *alphaIndex) key(w *ops5.WME) uint64 {
	h := ops5.HashSeed
	for _, a := range ix.attrs {
		h = ops5.HashValue(h, w.Get(a))
	}
	return h
}

// insert adds w to its bucket. items is the owning memory's current
// population (already including w); the bucket map is built from it in
// full when the memory first reaches linearProbeMin.
func (ix *alphaIndex) insert(w *ops5.WME, items []*ops5.WME) {
	if ix.buckets == nil {
		if len(items) < linearProbeMin {
			return
		}
		ix.buckets = make(map[uint64][]*ops5.WME, len(items))
		for _, x := range items {
			k := ix.key(x)
			ix.buckets[k] = append(ix.buckets[k], x)
		}
		return
	}
	k := ix.key(w)
	ix.buckets[k] = append(ix.buckets[k], w)
}

func (ix *alphaIndex) remove(w *ops5.WME) {
	if ix.buckets == nil {
		return
	}
	k := ix.key(w)
	bucket := ix.buckets[k]
	for i, x := range bucket {
		if x == w {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(ix.buckets, k)
			} else {
				ix.buckets[k] = bucket
			}
			return
		}
	}
}

// betaCol is one column of a beta index key: token position and attr.
type betaCol struct {
	idx  int
	attr string
}

// betaIndex is a hash index over a beta memory's tokens, keyed by the
// values of cols (the LeftIdx/LeftAttr columns of one equality spec).
// As with alphaIndex, buckets stays nil until the memory first reaches
// linearProbeMin tokens.
type betaIndex struct {
	cols    []betaCol
	buckets map[uint64][]*Token
}

func (ix *betaIndex) key(tok *Token) uint64 {
	h := ops5.HashSeed
	for _, c := range ix.cols {
		h = ops5.HashValue(h, tok.WMEs[c.idx].Get(c.attr))
	}
	return h
}

// insert adds tok to its bucket. tokens is the owning memory's current
// population (already including tok); the bucket map is built from it
// in full when the memory first reaches linearProbeMin.
func (ix *betaIndex) insert(tok *Token, tokens []*Token) {
	if ix.buckets == nil {
		if len(tokens) < linearProbeMin {
			return
		}
		ix.buckets = make(map[uint64][]*Token, len(tokens))
		for _, x := range tokens {
			k := ix.key(x)
			ix.buckets[k] = append(ix.buckets[k], x)
		}
		return
	}
	k := ix.key(tok)
	ix.buckets[k] = append(ix.buckets[k], tok)
}

func (ix *betaIndex) remove(tok *Token) {
	if ix.buckets == nil {
		return
	}
	k := ix.key(tok)
	bucket := ix.buckets[k]
	for i, t := range bucket {
		if t.EqualTo(tok) {
			bucket = append(bucket[:i], bucket[i+1:]...)
			if len(bucket) == 0 {
				delete(ix.buckets, k)
			} else {
				ix.buckets[k] = bucket
			}
			return
		}
	}
}

// indexFor returns this alpha memory's index for the given equality
// spec, creating (and back-filling) it on first request. Joins with
// identical right-side key columns share one index.
func (am *AlphaMem) indexFor(eq []JoinTest) *alphaIndex {
	attrs := make([]string, len(eq))
	for i, t := range eq {
		attrs[i] = t.RightAttr
	}
	for _, ix := range am.indexes {
		if stringsEqual(ix.attrs, attrs) {
			return ix
		}
	}
	ix := &alphaIndex{attrs: attrs}
	if len(am.Items) >= linearProbeMin {
		ix.buckets = make(map[uint64][]*ops5.WME, len(am.Items))
		for _, w := range am.Items {
			k := ix.key(w)
			ix.buckets[k] = append(ix.buckets[k], w)
		}
	}
	am.indexes = append(am.indexes, ix)
	return ix
}

// indexFor returns this beta memory's index for the given equality
// spec, creating (and back-filling) it on first request.
func (bm *BetaMem) indexFor(eq []JoinTest) *betaIndex {
	cols := make([]betaCol, len(eq))
	for i, t := range eq {
		cols[i] = betaCol{idx: t.LeftIdx, attr: t.LeftAttr}
	}
	for _, ix := range bm.indexes {
		if colsEqual(ix.cols, cols) {
			return ix
		}
	}
	ix := &betaIndex{cols: cols}
	if len(bm.Tokens) >= linearProbeMin {
		ix.buckets = make(map[uint64][]*Token, len(bm.Tokens))
		for _, tok := range bm.Tokens {
			k := ix.key(tok)
			ix.buckets[k] = append(ix.buckets[k], tok)
		}
	}
	bm.indexes = append(bm.indexes, ix)
	return ix
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func colsEqual(a, b []betaCol) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prepare builds the hash indexes for every two-input node with at
// least one equality test. It runs once, at the first Apply — safe
// because AddProduction rejects further productions after matching
// starts, so the set of key specs is final.
func (n *Network) prepare() {
	if n.prepared {
		return
	}
	n.prepared = true
	for _, j := range n.joins {
		eq, _ := SplitJoinTests(j.Tests)
		if len(eq) == 0 {
			continue
		}
		j.leftHash, j.rightHash = JoinHashFuncs(eq)
		j.rightIdx = j.Right.indexFor(eq)
		j.leftIdx = j.Left.indexFor(eq)
		if j.Kind == JoinNegative {
			j.negIndex = make(map[uint64][]*negRecord)
		}
	}
}

// IndexInfo summarises the hash-index state of a network.
type IndexInfo struct {
	// IndexedJoins and FallbackJoins partition the two-input nodes by
	// whether activations probe a hash bucket or scan linearly.
	IndexedJoins  int
	FallbackJoins int
	// AlphaIndexes and BetaIndexes count distinct (possibly shared)
	// indexes maintained over the memories.
	AlphaIndexes int
	BetaIndexes  int
	// Buckets is the total number of live hash buckets; MaxBucket the
	// largest bucket's population (the residual scan bound).
	Buckets   int
	MaxBucket int
}

// IndexInfo reports the current index topology and occupancy. It
// prepares the network if matching has not started yet.
func (n *Network) IndexInfo() IndexInfo {
	n.prepare()
	var info IndexInfo
	for _, j := range n.joins {
		if j.leftHash != nil {
			info.IndexedJoins++
		} else {
			info.FallbackJoins++
		}
		for _, b := range j.negIndex {
			info.Buckets++
			if len(b) > info.MaxBucket {
				info.MaxBucket = len(b)
			}
		}
	}
	for _, am := range n.alphas {
		info.AlphaIndexes += len(am.indexes)
		for _, ix := range am.indexes {
			info.Buckets += len(ix.buckets)
			for _, b := range ix.buckets {
				if len(b) > info.MaxBucket {
					info.MaxBucket = len(b)
				}
			}
		}
	}
	for _, bm := range n.betas {
		info.BetaIndexes += len(bm.indexes)
		for _, ix := range bm.indexes {
			info.Buckets += len(ix.buckets)
			for _, b := range ix.buckets {
				if len(b) > info.MaxBucket {
					info.MaxBucket = len(b)
				}
			}
		}
	}
	return info
}
