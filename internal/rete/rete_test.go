package rete_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/rete"
)

// run builds a network, applies the script, and compares the tracked
// conflict set against brute force after every batch.
func runScript(t *testing.T, prods []*ops5.Production, script *matchtest.Script) *rete.Network {
	t.Helper()
	n, err := rete.Compile(prods)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	tr := matchtest.NewTracker()
	n.OnInsert = tr.Insert
	n.OnRemove = tr.Remove

	live := map[int]*ops5.WME{}
	for bi, batch := range script.Batches {
		for _, ch := range batch {
			if ch.Kind == ops5.Insert {
				live[ch.WME.TimeTag] = ch.WME
			} else {
				delete(live, ch.WME.TimeTag)
			}
		}
		n.Apply(batch)
		wmes := make([]*ops5.WME, 0, len(live))
		for _, w := range live {
			wmes = append(wmes, w)
		}
		want := matchtest.BruteForceKeys(prods, wmes)
		got := tr.Keys()
		if d := matchtest.Diff(want, got); d != "" {
			t.Fatalf("batch %d: conflict set mismatch:\n%s", bi, d)
		}
	}
	if n.Stats.Anomalies != 0 {
		t.Errorf("anomalies = %d, want 0", n.Stats.Anomalies)
	}
	return n
}

func TestPaperProduction(t *testing.T) {
	src := `
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
  -->
    (modify 2 ^selected yes))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	tr := matchtest.NewTracker()
	n.OnInsert = tr.Insert
	n.OnRemove = tr.Remove

	goal := ops5.NewWME("goal", "type", "find-blk", "color", "red")
	goal.TimeTag = 1
	b1 := ops5.NewWME("block", "id", 1, "color", "red", "selected", "no")
	b1.TimeTag = 2
	b2 := ops5.NewWME("block", "id", 2, "color", "blue", "selected", "no")
	b2.TimeTag = 3

	n.Apply([]ops5.Change{
		{Kind: ops5.Insert, WME: goal},
		{Kind: ops5.Insert, WME: b1},
		{Kind: ops5.Insert, WME: b2},
	})
	if got := len(tr.Keys()); got != 1 {
		t.Fatalf("conflict set size = %d, want 1 (only the red block matches)", got)
	}
	// Deleting the goal empties the conflict set.
	n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: goal}})
	if got := len(tr.Keys()); got != 0 {
		t.Fatalf("after goal delete, conflict set size = %d, want 0", got)
	}
}

func TestNegatedCE(t *testing.T) {
	src := `
(p alone
    (task ^id <i>)
   -(lock ^task <i>)
  -->
    (remove 1))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	tr := matchtest.NewTracker()
	n.OnInsert = tr.Insert
	n.OnRemove = tr.Remove

	task := ops5.NewWME("task", "id", 7)
	task.TimeTag = 1
	lock := ops5.NewWME("lock", "task", 7)
	lock.TimeTag = 2

	n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: task}})
	if len(tr.Keys()) != 1 {
		t.Fatal("task without lock should satisfy the production")
	}
	n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: lock}})
	if len(tr.Keys()) != 0 {
		t.Fatal("lock insertion should retract the instantiation")
	}
	n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: lock}})
	if len(tr.Keys()) != 1 {
		t.Fatal("lock deletion should re-derive the instantiation")
	}
	n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: task}})
	if len(tr.Keys()) != 0 {
		t.Fatal("task deletion should empty the conflict set")
	}
	if n.Stats.Anomalies != 0 {
		t.Errorf("anomalies = %d", n.Stats.Anomalies)
	}
}

func TestSameWMETwoCEs(t *testing.T) {
	// One WME can match two condition elements of the same production;
	// the pair must be emitted exactly once (descendant-first alpha
	// successor ordering).
	src := `
(p pair
    (c ^a <x>)
    (c ^a <x>)
  -->
    (remove 1))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	tr := matchtest.NewTracker()
	n.OnInsert = tr.Insert
	n.OnRemove = tr.Remove

	w := ops5.NewWME("c", "a", 1)
	w.TimeTag = 1
	n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
	want := matchtest.BruteForceKeys([]*ops5.Production{p}, []*ops5.WME{w})
	if d := matchtest.Diff(want, tr.Keys()); d != "" {
		t.Fatalf("mismatch (duplicate or missing [w w] token):\n%s", d)
	}
	n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: w}})
	if len(tr.Keys()) != 0 {
		t.Fatal("delete should empty the conflict set")
	}
	if n.Stats.Anomalies != 0 {
		t.Errorf("anomalies = %d", n.Stats.Anomalies)
	}
}

func TestNodeSharing(t *testing.T) {
	srcs := `
(p one (goal ^type find ^color red) (block ^color red) --> (remove 1))
(p two (goal ^type find ^color red) (block ^color blue) --> (remove 1))
`
	prog, err := ops5.Parse(srcs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile(prog.Productions)
	if err != nil {
		t.Fatal(err)
	}
	c := n.Counts()
	// The goal CE is identical in both productions: its constant tests
	// and alpha memory must be shared, as must the first join.
	if c.SharedConstSavings == 0 {
		t.Errorf("expected shared constant-test nodes, counts = %+v", c)
	}
	if c.SharedJoinSavings == 0 {
		t.Errorf("expected the first join to be shared, counts = %+v", c)
	}
	if len(n.Alphas()) != 3 {
		t.Errorf("alpha memories = %d, want 3 (goal, block-red, block-blue)", len(n.Alphas()))
	}
}

func TestRandomizedCrossCheck(t *testing.T) {
	params := matchtest.DefaultGenParams()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 30, 4)
		runScript(t, prods, script)
	}
}

func TestRandomizedCrossCheckHeavyNegation(t *testing.T) {
	params := matchtest.DefaultGenParams()
	params.NegProb = 0.5
	params.MaxCEs = 4
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 25, 3)
		runScript(t, prods, script)
	}
}

// TestRandomizedCrossCheckIndexStress drives the hash-indexed join
// path hard: many equality variable joins (indexed probes), predicate
// tests on bound variables (full-test re-verification of bucket
// candidates), and negated CEs (indexed not-nodes), cross-checked
// against brute force after every batch. Programs with few equality
// tests also exercise the linear-scan fallback.
func TestRandomizedCrossCheckIndexStress(t *testing.T) {
	params := matchtest.IndexStressGenParams()
	indexed := 0
	for seed := int64(300); seed < 320; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 30, 4)
		n := runScript(t, prods, script)
		indexed += n.IndexInfo().IndexedJoins
	}
	if indexed == 0 {
		t.Error("index-stress programs produced no indexed joins; generator drifted")
	}
}

func TestInsertDeleteRestoresMemories(t *testing.T) {
	// Inserting a batch and deleting it again must restore every memory
	// to its previous token/item counts.
	params := matchtest.DefaultGenParams()
	rng := rand.New(rand.NewSource(42))
	prods := matchtest.RandomProgram(rng, params)
	n, err := rete.Compile(prods)
	if err != nil {
		t.Fatal(err)
	}
	tr := matchtest.NewTracker()
	n.OnInsert = tr.Insert
	n.OnRemove = tr.Remove

	var wmes []*ops5.WME
	for i := 0; i < 30; i++ {
		w := matchtest.RandomWME(rng, params)
		w.TimeTag = i + 1
		wmes = append(wmes, w)
	}
	half := wmes[:15]
	for _, w := range half {
		n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
	}
	alphaCounts := make([]int, len(n.Alphas()))
	for i, am := range n.Alphas() {
		alphaCounts[i] = len(am.Items)
	}
	betaCounts := make([]int, len(n.Betas()))
	for i, bm := range n.Betas() {
		betaCounts[i] = len(bm.Tokens)
	}
	csBefore := tr.Keys()

	for _, w := range wmes[15:] {
		n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
	}
	for _, w := range wmes[15:] {
		n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: w}})
	}

	for i, am := range n.Alphas() {
		if len(am.Items) != alphaCounts[i] {
			t.Errorf("alpha %d: items = %d, want %d", am.ID, len(am.Items), alphaCounts[i])
		}
	}
	for i, bm := range n.Betas() {
		if len(bm.Tokens) != betaCounts[i] {
			t.Errorf("beta %d: tokens = %d, want %d", bm.ID, len(bm.Tokens), betaCounts[i])
		}
	}
	if d := matchtest.Diff(csBefore, tr.Keys()); d != "" {
		t.Errorf("conflict set not restored:\n%s", d)
	}
	if n.Stats.Anomalies != 0 {
		t.Errorf("anomalies = %d", n.Stats.Anomalies)
	}
}

func TestAddProductionAfterStartFails(t *testing.T) {
	p, err := ops5.ParseProduction(`(p x (a ^v 1) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	w := ops5.NewWME("a", "v", 1)
	w.TimeTag = 1
	n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
	if err := n.AddProduction(p); err == nil {
		t.Fatal("expected error adding a production after matching started")
	}
}

func TestPredicateBeforeBindingFails(t *testing.T) {
	p, err := ops5.ParseProduction(`(p x (a ^v > <z>) --> (halt))`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rete.Compile([]*ops5.Production{p}); err == nil {
		t.Fatal("expected compile error for predicate on unbound variable")
	}
}

func TestStatsAffectedProductions(t *testing.T) {
	srcs := `
(p a1 (goal ^color red) --> (remove 1))
(p a2 (goal ^color <c>) --> (remove 1))
(p a3 (block ^color red) --> (remove 1))
`
	prog, err := ops5.Parse(srcs)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile(prog.Productions)
	if err != nil {
		t.Fatal(err)
	}
	w := ops5.NewWME("goal", "color", "red")
	w.TimeTag = 1
	n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
	// The goal WME affects a1 and a2 but not a3.
	if got := n.Stats.AffectedProductions; got != 2 {
		t.Errorf("affected productions = %d, want 2", got)
	}
}

func TestCompiledDispatchEquivalent(t *testing.T) {
	// Compiled closures must produce exactly the serial interpreter's
	// conflict sets on randomized programs.
	params := matchtest.DefaultGenParams()
	for seed := int64(500); seed < 510; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		script := matchtest.RandomScript(rng, params, 20, 4)

		n, err := rete.Compile(prods)
		if err != nil {
			t.Fatal(err)
		}
		n.EnableCompiledDispatch()
		tr := matchtest.NewTracker()
		n.OnInsert = tr.Insert
		n.OnRemove = tr.Remove
		live := map[int]*ops5.WME{}
		for bi, batch := range script.Batches {
			for _, ch := range batch {
				if ch.Kind == ops5.Insert {
					live[ch.WME.TimeTag] = ch.WME
				} else {
					delete(live, ch.WME.TimeTag)
				}
			}
			n.Apply(batch)
			wmes := make([]*ops5.WME, 0, len(live))
			for _, w := range live {
				wmes = append(wmes, w)
			}
			want := matchtest.BruteForceKeys(prods, wmes)
			if d := matchtest.Diff(want, tr.Keys()); d != "" {
				t.Fatalf("seed %d batch %d (compiled dispatch):\n%s", seed, bi, d)
			}
		}
	}
}

func TestDump(t *testing.T) {
	prog, err := ops5.Parse(`
(p one (goal ^type find ^color <c>) (block ^color <c>) --> (remove 2))
(p two (goal ^type find ^color <c>) -(block ^color <c>) --> (remove 1))
`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile(prog.Productions)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	n.Dump(&b)
	out := b.String()
	for _, want := range []string{"class goal", "class block", "two-input nodes:", "not#", "and#", "terminals:", "one", "two", "dummy-top"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}
