package rete_test

import (
	"strings"
	"testing"

	"repro/internal/ops5"
	"repro/internal/rete"
)

func TestNodeProfileCountsJoinWork(t *testing.T) {
	src := `
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
  -->
    (modify 2 ^selected yes))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	if prof := n.NodeProfile(); len(prof) != 0 {
		t.Fatalf("profile before any activation = %v, want empty", prof)
	}

	goal := ops5.NewWME("goal", "type", "find-blk", "color", "red")
	goal.TimeTag = 1
	b1 := ops5.NewWME("block", "id", 1, "color", "red", "selected", "no")
	b1.TimeTag = 2
	b2 := ops5.NewWME("block", "id", 2, "color", "blue", "selected", "no")
	b2.TimeTag = 3
	n.Apply([]ops5.Change{
		{Kind: ops5.Insert, WME: goal},
		{Kind: ops5.Insert, WME: b1},
		{Kind: ops5.Insert, WME: b2},
	})

	prof := n.NodeProfile()
	if len(prof) == 0 {
		t.Fatal("profile empty after activations")
	}
	var acts, emitted int64
	for i, e := range prof {
		if e.Activations <= 0 {
			t.Errorf("entry %d: activations = %d, want > 0", i, e.Activations)
		}
		if e.Label == "" {
			t.Errorf("entry %d: empty label", i)
		}
		if len(e.Productions) != 1 || e.Productions[0] != "find-colored-blk" {
			t.Errorf("entry %d: productions = %v", i, e.Productions)
		}
		if i > 0 && prof[i-1].NodeID >= e.NodeID {
			t.Errorf("profile not in node-ID order: %d then %d", prof[i-1].NodeID, e.NodeID)
		}
		acts += e.Activations
		emitted += e.PairsEmitted
	}
	// One instantiation reached the conflict set, so at least one token
	// crossed the final join.
	if emitted == 0 {
		t.Error("no pairs emitted despite a match")
	}

	// Deletions activate nodes too: the profile keeps growing.
	n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: goal}})
	var acts2 int64
	for _, e := range n.NodeProfile() {
		acts2 += e.Activations
	}
	if acts2 <= acts {
		t.Errorf("activations after delete = %d, want > %d", acts2, acts)
	}
}

func TestNodeProfileLabelsNegation(t *testing.T) {
	src := `
(p alone
    (task ^id <i>)
   -(lock ^task <i>)
  -->
    (remove 1))
`
	p, err := ops5.ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	n, err := rete.Compile([]*ops5.Production{p})
	if err != nil {
		t.Fatal(err)
	}
	task := ops5.NewWME("task", "id", 7)
	task.TimeTag = 1
	lock := ops5.NewWME("lock", "task", 7)
	lock.TimeTag = 2
	n.Apply([]ops5.Change{
		{Kind: ops5.Insert, WME: task},
		{Kind: ops5.Insert, WME: lock},
	})
	found := false
	for _, e := range n.NodeProfile() {
		if strings.HasPrefix(e.Label, "not#") {
			found = true
		}
	}
	if !found {
		t.Errorf("no not# node in profile: %+v", n.NodeProfile())
	}
}
