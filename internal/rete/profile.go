package rete

import (
	"fmt"
	"sort"
	"strings"
)

// NodeProf accumulates one two-input node's activation work for live
// hot-node profiling. The serial runtime bumps the counters without
// synchronization (it owns the network); the parallel runtime
// (internal/prete) keeps its own atomic per-node counters and reports
// them in the same shape.
type NodeProf struct {
	// Activations counts node activations (left and right combined).
	Activations int64
	// TokensTested counts opposite-memory entries examined.
	TokensTested int64
	// PairsEmitted counts tokens sent downstream.
	PairsEmitted int64
	// IndexedProbes counts activations answered from a hash bucket
	// rather than a linear scan.
	IndexedProbes int64
}

// add folds an activation's counts into the profile.
func (p *NodeProf) add(tested, emitted int, indexed bool) {
	p.Activations++
	p.TokensTested += int64(tested)
	p.PairsEmitted += int64(emitted)
	if indexed {
		p.IndexedProbes++
	}
}

// NodeProfEntry is one two-input node's accumulated work plus enough
// topology to make the numbers legible.
type NodeProfEntry struct {
	NodeID      int
	Label       string
	SharedBy    int
	Productions []string
	NodeProf
}

// maxProfileProds caps the production list attached to a profile entry;
// heavily shared nodes would otherwise dominate the report's size.
const maxProfileProds = 8

// Label renders the node's kind and join tests for diagnostics and
// profiles, e.g. "and#12 c|dest|=|<r> & ..." or "not#7 (no tests)".
func (j *JoinNode) Label() string {
	kind := "and"
	if j.Kind == JoinNegative {
		kind = "not"
	}
	tests := make([]string, len(j.Tests))
	for i := range j.Tests {
		tests[i] = j.Tests[i].key()
	}
	testStr := "(no tests)"
	if len(tests) > 0 {
		testStr = strings.Join(tests, " & ")
	}
	return fmt.Sprintf("%s#%d %s", kind, j.ID, testStr)
}

// ProductionNames returns the distinct productions reading the node's
// right (alpha) memory, sorted, truncated at maxProfileProds with a
// "+N more" marker.
func (j *JoinNode) ProductionNames() []string {
	seen := make(map[string]bool, len(j.Right.ProdRefs))
	names := make([]string, 0, len(j.Right.ProdRefs))
	for _, ref := range j.Right.ProdRefs {
		if n := ref.Production.Name; !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) > maxProfileProds {
		extra := len(names) - maxProfileProds
		names = append(names[:maxProfileProds:maxProfileProds], fmt.Sprintf("+%d more", extra))
	}
	return names
}

// NodeProfile returns the accumulated per-node work of every two-input
// node activated so far, in node-ID order. Callers rank by whatever
// cost model they apply (see internal/cost and the core adapters).
func (n *Network) NodeProfile() []NodeProfEntry {
	var out []NodeProfEntry
	for _, j := range n.joins {
		if j.Prof.Activations == 0 {
			continue
		}
		out = append(out, NodeProfEntry{
			NodeID:      j.ID,
			Label:       j.Label(),
			SharedBy:    j.SharedBy,
			Productions: j.ProductionNames(),
			NodeProf:    j.Prof,
		})
	}
	return out
}
