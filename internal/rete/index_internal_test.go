package rete

// Internal regression test for the hash-indexed memories: it reaches
// into the unexported bucket maps, which the black-box suite cannot.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/matchtest"
	"repro/internal/ops5"
)

// bucketSnapshot renders every hash bucket in the network — alpha
// indexes, beta indexes, and not-node negation indexes — as
// "owner key=count" lines, sorted. Equal snapshots mean equal
// per-bucket populations everywhere. Indexes are built lazily at the
// linearProbeMin crossing, so an index may be unbuilt in one snapshot
// and built in the other; both render the same effective populations —
// actual buckets when built (cross-checked against the memory they
// index), populations derived from the memory when not.
func bucketSnapshot(t *testing.T, n *Network) string {
	t.Helper()
	var lines []string
	render := func(owner string, counts map[uint64]int) {
		for k, c := range counts {
			lines = append(lines, fmt.Sprintf("%s %#x=%d", owner, k, c))
		}
	}
	for _, am := range n.alphas {
		for ii, ix := range am.indexes {
			counts := make(map[uint64]int)
			if ix.buckets != nil {
				total := 0
				for k, head := range ix.buckets {
					n := 0
					for i := head; i >= 0; i = ix.entries[i].next {
						n++
					}
					counts[k] = n
					total += n
				}
				if total != len(am.Items) {
					t.Errorf("alpha%d.%d: %d bucketed items, memory holds %d", am.ID, ii, total, len(am.Items))
				}
			} else {
				for _, w := range am.Items {
					counts[ix.key(w)]++
				}
			}
			render(fmt.Sprintf("alpha%d.%d", am.ID, ii), counts)
		}
	}
	for _, bm := range n.betas {
		for ii, ix := range bm.indexes {
			counts := make(map[uint64]int)
			if ix.buckets != nil {
				total := 0
				for k, head := range ix.buckets {
					n := 0
					for i := head; i >= 0; i = ix.entries[i].next {
						n++
					}
					counts[k] = n
					total += n
				}
				if total != len(bm.Tokens) {
					t.Errorf("beta%d.%d: %d bucketed tokens, memory holds %d", bm.ID, ii, total, len(bm.Tokens))
				}
			} else {
				for _, tok := range bm.Tokens {
					counts[ix.key(tok)]++
				}
			}
			render(fmt.Sprintf("beta%d.%d", bm.ID, ii), counts)
		}
	}
	for _, j := range n.joins {
		if j.negIndex != nil {
			lines = append(lines, fmt.Sprintf("join%d negCount=%d", j.ID, j.negCount))
			for k, head := range j.negIndex {
				b := 0
				for e := head; e >= 0; e = j.negEntries[e].next {
					b++
				}
				lines = append(lines, fmt.Sprintf("join%d %#x=%d", j.ID, k, b))
			}
		} else {
			lines = append(lines, fmt.Sprintf("join%d negRecords=%d", j.ID, len(j.negRecords)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// countIndexes reports how many alpha/beta indexes exist, so the test
// can assert it exercised the indexed path at all.
func countIndexes(n *Network) int {
	total := 0
	for _, am := range n.alphas {
		total += len(am.indexes)
	}
	for _, bm := range n.betas {
		total += len(bm.indexes)
	}
	return total
}

// TestInsertDeleteRestoresBuckets is the hash-index counterpart of
// TestInsertDeleteRestoresMemories: inserting a batch of WMEs and
// deleting it again must restore every bucket of every index — alpha,
// beta, and negation — to exactly its previous population, leaving no
// empty-but-present buckets and no strays.
func TestInsertDeleteRestoresBuckets(t *testing.T) {
	params := matchtest.IndexStressGenParams()
	totalIndexes := 0
	for seed := int64(400); seed < 406; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prods := matchtest.RandomProgram(rng, params)
		n, err := Compile(prods)
		if err != nil {
			t.Fatal(err)
		}
		n.OnInsert = func(*ops5.Instantiation) {}
		n.OnRemove = func(*ops5.Instantiation) {}

		var wmes []*ops5.WME
		for i := 0; i < 40; i++ {
			w := matchtest.RandomWME(rng, params)
			w.TimeTag = i + 1
			wmes = append(wmes, w)
		}

		// Establish a baseline population, snapshot, then churn.
		base := wmes[:20]
		churn := wmes[20:]
		for _, w := range base {
			n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
		}
		before := bucketSnapshot(t, n)

		for _, w := range churn {
			n.Apply([]ops5.Change{{Kind: ops5.Insert, WME: w}})
		}
		during := bucketSnapshot(t, n)
		for i := len(churn) - 1; i >= 0; i-- {
			n.Apply([]ops5.Change{{Kind: ops5.Delete, WME: churn[i]}})
		}

		after := bucketSnapshot(t, n)
		if before != after {
			t.Errorf("seed %d: buckets not restored after insert+delete:\nbefore:\n%s\nafter:\n%s",
				seed, before, after)
		}
		totalIndexes += countIndexes(n)
		if during == before {
			t.Logf("seed %d: churn batch did not change any bucket (weak seed)", seed)
		}
		if n.Stats.Anomalies != 0 {
			t.Errorf("seed %d: anomalies = %d", seed, n.Stats.Anomalies)
		}
	}
	if totalIndexes == 0 {
		t.Error("no seed built any index; test exercised nothing")
	}
}
