package rete

import "repro/internal/ops5"

// This file implements compiled node dispatch: §2.2 describes how the
// OPS5 interpreters gained a large speed-up when the network stopped
// being interpreted node-by-node and was compiled into machine code
// (Lisp 8 → Bliss 40 → compiled OPS83 200 wme-changes/sec). The Go
// equivalent of that step is specialising each node's test chain into
// a closure, eliminating the per-test kind/predicate switch dispatch.
// EnableCompiledDispatch builds the closures; Apply uses them when
// present. BenchmarkDispatch in bench_test.go measures the difference.

// compilePred specialises one predicate comparison.
func compilePred(p ops5.Predicate) func(a, b ops5.Value) bool {
	switch p {
	case ops5.PredEq:
		return func(a, b ops5.Value) bool { return a.Equal(b) }
	case ops5.PredNe:
		return func(a, b ops5.Value) bool { return !a.Equal(b) }
	case ops5.PredSameType:
		return func(a, b ops5.Value) bool { return a.Kind == b.Kind }
	case ops5.PredLt:
		return func(a, b ops5.Value) bool {
			return a.Kind == ops5.NumValue && b.Kind == ops5.NumValue && a.Num < b.Num
		}
	case ops5.PredGt:
		return func(a, b ops5.Value) bool {
			return a.Kind == ops5.NumValue && b.Kind == ops5.NumValue && a.Num > b.Num
		}
	case ops5.PredLe:
		return func(a, b ops5.Value) bool {
			return a.Kind == ops5.NumValue && b.Kind == ops5.NumValue && a.Num <= b.Num
		}
	case ops5.PredGe:
		return func(a, b ops5.Value) bool {
			return a.Kind == ops5.NumValue && b.Kind == ops5.NumValue && a.Num >= b.Num
		}
	default:
		return func(a, b ops5.Value) bool { return p.Compare(a, b) }
	}
}

// compileConstTest specialises one alpha-network test.
func compileConstTest(t *ConstTest) func(*ops5.WME) bool {
	switch t.Kind {
	case ctAlways:
		return func(*ops5.WME) bool { return true }
	case ctConst:
		attr, val := t.Attr, t.Val
		cmp := compilePred(t.Pred)
		return func(w *ops5.WME) bool { return cmp(w.Get(attr), val) }
	case ctDisj:
		attr := t.Attr
		vals := t.Disj
		return func(w *ops5.WME) bool {
			v := w.Get(attr)
			for _, d := range vals {
				if v.Equal(d) {
					return true
				}
			}
			return false
		}
	case ctAttrRel:
		a1, a2 := t.Attr, t.Attr2
		cmp := compilePred(t.Pred)
		return func(w *ops5.WME) bool { return cmp(w.Get(a1), w.Get(a2)) }
	default:
		tt := *t
		return func(w *ops5.WME) bool { return tt.Eval(w) }
	}
}

// CompileJoinTests specialises a two-input node's full test chain into
// one closure (used by the parallel matcher and EnableCompiledDispatch).
func CompileJoinTests(tests []JoinTest) func(*Token, *ops5.WME) bool {
	if len(tests) == 0 {
		return func(*Token, *ops5.WME) bool { return true }
	}
	if len(tests) == 1 {
		jt := tests[0]
		cmp := compilePred(jt.Pred)
		return func(tok *Token, w *ops5.WME) bool {
			return cmp(w.Get(jt.RightAttr), tok.WMEs[jt.LeftIdx].Get(jt.LeftAttr))
		}
	}
	compiled := make([]func(*Token, *ops5.WME) bool, len(tests))
	for i := range tests {
		jt := tests[i]
		cmp := compilePred(jt.Pred)
		compiled[i] = func(tok *Token, w *ops5.WME) bool {
			return cmp(w.Get(jt.RightAttr), tok.WMEs[jt.LeftIdx].Get(jt.LeftAttr))
		}
	}
	return func(tok *Token, w *ops5.WME) bool {
		for _, f := range compiled {
			if !f(tok, w) {
				return false
			}
		}
		return true
	}
}

// EnableCompiledDispatch specialises every node's tests into closures,
// replacing interpreted per-test switch dispatch during Apply. It may
// be called once, any time before or between Apply calls.
func (n *Network) EnableCompiledDispatch() {
	var visit func(c *ConstNode)
	visit = func(c *ConstNode) {
		c.compiled = compileConstTest(&c.Test)
		for _, ch := range c.Children {
			visit(ch)
		}
	}
	for _, root := range n.roots {
		visit(root)
	}
	for _, j := range n.joins {
		j.compiled = CompileJoinTests(j.Tests)
	}
}

// evalConst applies a constant node's test, compiled when available.
func (c *ConstNode) evalConst(w *ops5.WME) bool {
	if c.compiled != nil {
		return c.compiled(w)
	}
	return c.Test.Eval(w)
}

// evalJoin applies a join node's tests, compiled when available.
func (j *JoinNode) evalJoin(tok *Token, w *ops5.WME) bool {
	if j.compiled != nil {
		return j.compiled(tok, w)
	}
	return j.match(tok, w)
}
