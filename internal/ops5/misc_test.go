package ops5

import (
	"strings"
	"testing"
)

func TestNewWMEAndToValue(t *testing.T) {
	w := NewWME("c", "s", "sym", "i", 7, "i64", int64(8), "f", 2.5, "v", Num(3), "n", nil)
	if w.Get("s").SymName() != "sym" || w.Get("i").Num != 7 || w.Get("i64").Num != 8 ||
		w.Get("f").Num != 2.5 || w.Get("v").Num != 3 || !w.Get("n").Nil() {
		t.Errorf("wme = %v", w)
	}
	// Unset attributes are nil.
	if !w.Get("missing").Nil() {
		t.Error("missing attribute should be nil")
	}
}

func TestNewWMEPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("odd args", func() { NewWME("c", "a") })
	assertPanics("non-string attr", func() { NewWME("c", 1, 2) })
	assertPanics("bad value type", func() { NewWME("c", "a", struct{}{}) })
}

func TestWMEStringAndEqual(t *testing.T) {
	w := NewWME("block", "color", "red", "id", 2)
	w.TimeTag = 9
	if got := w.String(); got != "9: (block ^color red ^id 2)" {
		t.Errorf("String = %q", got)
	}
	same := NewWME("block", "id", 2, "color", "red")
	if !w.Equal(same) {
		t.Error("attribute order should not affect equality")
	}
	if w.Equal(NewWME("block", "color", "red")) {
		t.Error("different attribute counts should differ")
	}
	if w.Equal(NewWME("brick", "color", "red", "id", 2)) {
		t.Error("different classes should differ")
	}
	if w.Equal(NewWME("block", "color", "red", "id", 3)) {
		t.Error("different values should differ")
	}
}

func TestChangeString(t *testing.T) {
	w := NewWME("c", "v", 1)
	w.TimeTag = 4
	ins := Change{Kind: Insert, WME: w}
	del := Change{Kind: Delete, WME: w}
	if !strings.HasPrefix(ins.String(), "insert 4:") {
		t.Errorf("insert = %q", ins.String())
	}
	if !strings.HasPrefix(del.String(), "delete 4:") {
		t.Errorf("delete = %q", del.String())
	}
}

func TestMatchTermVariants(t *testing.T) {
	b := Bindings{"x": Num(5)}
	// Disjunction hit and miss.
	disj := Term{Kind: TermDisj, Disj: []Value{Num(1), Sym("a")}}
	if ok, _, _ := MatchTerm(disj, Sym("a"), nil); !ok {
		t.Error("disjunction should match a")
	}
	if ok, _, _ := MatchTerm(disj, Num(9), nil); ok {
		t.Error("disjunction should not match 9")
	}
	// Bound variable equality and predicate.
	eq := Term{Kind: TermVar, Pred: PredEq, Var: "x"}
	if ok, _, _ := MatchTerm(eq, Num(5), b); !ok {
		t.Error("bound equality should match")
	}
	gt := Term{Kind: TermVar, Pred: PredGt, Var: "x"}
	if ok, _, _ := MatchTerm(gt, Num(9), b); !ok {
		t.Error("9 > bound 5 should match")
	}
	// Predicate on unbound variable fails (strict semantics).
	if ok, _, _ := MatchTerm(gt, Num(9), nil); ok {
		t.Error("predicate on unbound variable must fail in MatchTerm")
	}
	// First equality occurrence binds.
	ok, bindVar, bindVal := MatchTerm(Term{Kind: TermVar, Pred: PredEq, Var: "z"}, Sym("q"), b)
	if !ok || bindVar != "z" || bindVal.SymName() != "q" {
		t.Errorf("binding occurrence: ok=%v var=%q val=%v", ok, bindVar, bindVal)
	}
	// TermAny matches anything.
	if ok, _, _ := MatchTerm(Term{Kind: TermAny}, Value{}, nil); !ok {
		t.Error("any-term should match nil")
	}
}

func TestMatchesAloneAndTimeTags(t *testing.T) {
	ce := &CondElement{Class: "c", Tests: []AttrTest{
		{Attr: "a", Terms: []Term{{Kind: TermVar, Pred: PredEq, Var: "x"}}},
		{Attr: "b", Terms: []Term{{Kind: TermVar, Pred: PredEq, Var: "x"}}},
	}}
	same := NewWME("c", "a", 3, "b", 3)
	diff := NewWME("c", "a", 3, "b", 4)
	if !MatchesAlone(ce, same) {
		t.Error("within-CE variable consistency should hold for equal values")
	}
	if MatchesAlone(ce, diff) {
		t.Error("within-CE variable consistency should fail for unequal values")
	}

	p := &Production{Name: "p", LHS: []*CondElement{{Class: "c"}, {Class: "d", Negated: true}}}
	w := NewWME("c")
	w.TimeTag = 11
	in := &Instantiation{Production: p, WMEs: []*WME{w, nil}}
	tags := in.TimeTags()
	if len(tags) != 1 || tags[0] != 11 {
		t.Errorf("time tags = %v", tags)
	}
	if !strings.Contains(in.Key(), "|11") || !strings.Contains(in.Key(), "|-") {
		t.Errorf("key = %q", in.Key())
	}
}

func TestCondElementConstTests(t *testing.T) {
	ce := &CondElement{Class: "c", Tests: []AttrTest{
		{Attr: "a", Terms: []Term{{Kind: TermConst, Val: Num(1)}}},
		{Attr: "b", Terms: []Term{{Kind: TermVar, Pred: PredEq, Var: "x"}}},
		{Attr: "d", Terms: []Term{
			{Kind: TermDisj, Disj: []Value{Num(1), Num(2)}},
			{Kind: TermVar, Pred: PredEq, Var: "y"},
		}},
	}}
	ct := ce.ConstTests()
	if len(ct) != 2 {
		t.Fatalf("const tests = %v", ct)
	}
	if ct[0].Attr != "a" || ct[1].Attr != "d" || len(ct[1].Terms) != 1 {
		t.Errorf("const tests = %v", ct)
	}
}

func TestPredicateStringAll(t *testing.T) {
	want := map[Predicate]string{
		PredEq: "=", PredNe: "<>", PredLt: "<", PredGt: ">",
		PredLe: "<=", PredGe: ">=", PredSameType: "<=>",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if !strings.Contains(Predicate(99).String(), "pred(") {
		t.Error("unknown predicate should render diagnostically")
	}
}

func TestTermStringVariants(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{Term{Kind: TermConst, Pred: PredEq, Val: Num(3)}, "3"},
		{Term{Kind: TermConst, Pred: PredGt, Val: Num(3)}, "> 3"},
		{Term{Kind: TermVar, Pred: PredEq, Var: "x"}, "<x>"},
		{Term{Kind: TermVar, Pred: PredNe, Var: "x"}, "<> <x>"},
		{Term{Kind: TermAny}, "<any>"},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("%v = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestComputeOpStrings(t *testing.T) {
	ops := map[ComputeOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "//", OpMod: "\\\\"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d = %q, want %q", op, op.String(), want)
		}
	}
	if ComputeOp(99).String() != "?" {
		t.Error("unknown op should render ?")
	}
}

func TestValueStringQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"has sp": "|has sp|",
		"42":     "|42|",
		"<x>":    "|<x>|",
		"<>":     "|<>|",
		"a<<b":   "|a<<b|",
		"-->":    "|-->|",
		"":       "||",
	}
	for in, want := range cases {
		if got := Sym(in).String(); got != want {
			t.Errorf("Sym(%q).String() = %q, want %q", in, got, want)
		}
	}
	if Num(2.5).String() != "2.5" {
		t.Errorf("Num(2.5) = %q", Num(2.5).String())
	}
	if (Value{}).String() != "nil" {
		t.Errorf("nil value = %q", (Value{}).String())
	}
}

func TestBruteForceNegationOrdering(t *testing.T) {
	// A negated CE between positives uses only earlier bindings.
	p, err := ParseProduction(`
(p x
    (a ^v <x>)
   -(b ^v <x>)
    (c ^v <x>)
  -->
    (remove 1))
`)
	if err != nil {
		t.Fatal(err)
	}
	a := NewWME("a", "v", 1)
	a.TimeTag = 1
	c := NewWME("c", "v", 1)
	c.TimeTag = 2
	b := NewWME("b", "v", 1)
	b.TimeTag = 3
	if got := len(SatisfyBruteForce(p, []*WME{a, c})); got != 1 {
		t.Errorf("without blocker: %d instantiations, want 1", got)
	}
	if got := len(SatisfyBruteForce(p, []*WME{a, c, b})); got != 0 {
		t.Errorf("with blocker: %d instantiations, want 0", got)
	}
}
