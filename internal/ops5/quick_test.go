package ops5

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sym"
)

// randomValue draws a Value for property tests.
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(3) {
	case 0:
		return Num(float64(rng.Intn(7)))
	case 1:
		syms := []string{"a", "b", "red", "goal"}
		return Sym(syms[rng.Intn(len(syms))])
	default:
		return Value{}
	}
}

// Generate makes Value implement quick.Generator.
func (Value) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randomValue(rng))
}

func TestQuickValueEqualReflexiveSymmetric(t *testing.T) {
	f := func(a, b Value) bool {
		if !a.Equal(a) || !b.Equal(b) {
			return false
		}
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickLessIsStrictWeakOrder(t *testing.T) {
	f := func(a, b Value) bool {
		if a.Less(a) {
			return false // irreflexive
		}
		if a.Less(b) && b.Less(a) {
			return false // asymmetric
		}
		// Totality over distinct values.
		if !a.Equal(b) && !a.Less(b) && !b.Less(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickPredicateConsistency(t *testing.T) {
	f := func(a, b Value) bool {
		eq := PredEq.Compare(a, b)
		ne := PredNe.Compare(a, b)
		if eq == ne {
			return false // eq and ne are complements
		}
		if a.Kind == NumValue && b.Kind == NumValue {
			lt := PredLt.Compare(a, b)
			gt := PredGt.Compare(a, b)
			le := PredLe.Compare(a, b)
			ge := PredGe.Compare(a, b)
			if lt && gt {
				return false
			}
			if le != (lt || eq) || ge != (gt || eq) {
				return false
			}
		} else {
			// Ordering predicates are false on non-numeric pairs.
			for _, p := range []Predicate{PredLt, PredGt, PredLe, PredGe} {
				if p.Compare(a, b) {
					return false
				}
			}
		}
		return PredSameType.Compare(a, b) == (a.Kind == b.Kind)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickWMECloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := make([]any, 0, 10)
		for i := 0; i < rng.Intn(5); i++ {
			pairs = append(pairs, string(rune('a'+i)), randomValue(rng))
		}
		w := NewWME("c", pairs...)
		w.TimeTag = rng.Intn(100)
		c := w.Clone()
		if !w.Equal(c) || !c.Equal(w) {
			return false
		}
		// Extending the clone must not affect the original.
		c2 := c.WithUpdates([]Field{{Attr: sym.Intern("zz"), Val: Num(1)}})
		return !c2.Get("zz").Nil() && w.Get("zz").Nil()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchCEConsistentWithBruteForce(t *testing.T) {
	// For single-CE productions, SatisfyBruteForce must agree with
	// direct MatchCE over the working memory.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ce := &CondElement{Class: "c"}
		ce.Tests = append(ce.Tests, AttrTest{
			Attr:  "a",
			Terms: []Term{{Kind: TermConst, Pred: PredEq, Val: Num(float64(rng.Intn(3)))}},
		})
		p := &Production{
			Name: "q",
			LHS:  []*CondElement{ce},
			RHS:  []*Action{{Kind: ActHalt}},
		}
		var wm []*WME
		for i := 0; i < 8; i++ {
			w := NewWME("c", "a", Num(float64(rng.Intn(3))))
			w.TimeTag = i + 1
			wm = append(wm, w)
		}
		insts := SatisfyBruteForce(p, wm)
		count := 0
		for _, w := range wm {
			if _, ok := MatchCE(ce, w, nil); ok {
				count++
			}
		}
		return len(insts) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAlphaPassIsSupersetOfMatch(t *testing.T) {
	// Any WME matching a CE under some bindings must pass AlphaPass.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ce := &CondElement{Class: "c", Tests: []AttrTest{
			{Attr: "a", Terms: []Term{{Kind: TermVar, Pred: PredEq, Var: "x"}}},
			{Attr: "b", Terms: []Term{{Kind: TermVar, Pred: PredGt, Var: "x"}}},
		}}
		w := NewWME("c",
			"a", Num(float64(rng.Intn(4))),
			"b", Num(float64(rng.Intn(4))))
		if _, ok := MatchCE(ce, w, Bindings{}); ok && !AlphaPass(ce, w) {
			return false
		}
		// And with external bindings.
		b := Bindings{"x": Num(float64(rng.Intn(4)))}
		if _, ok := MatchCE(ce, w, b); ok && !AlphaPass(ce, w) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInstantiationKeyIdentity(t *testing.T) {
	p := &Production{Name: "p", LHS: []*CondElement{{Class: "c"}}}
	w1, w2 := NewWME("c"), NewWME("c")
	w1.TimeTag, w2.TimeTag = 4, 4
	a := &Instantiation{Production: p, WMEs: []*WME{w1}}
	b := &Instantiation{Production: p, WMEs: []*WME{w2}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for identical time tags: %q vs %q", a.Key(), b.Key())
	}
	w3 := NewWME("c")
	w3.TimeTag = 5
	c := &Instantiation{Production: p, WMEs: []*WME{w3}}
	if a.Key() == c.Key() {
		t.Error("keys collide for different time tags")
	}
}
