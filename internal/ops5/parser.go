package ops5

import (
	"fmt"

	"repro/internal/sym"
)

// Program is a parsed OPS5 source file: productions, any top-level
// (make ...) forms establishing the initial working memory, and
// (literalize ...) attribute declarations.
type Program struct {
	Productions []*Production
	// InitialWM holds WMEs created by top-level make forms, in order.
	InitialWM []*WME
	// Literalize maps declared classes to their attribute lists. When a
	// class is declared, references to undeclared attributes of that
	// class are compile errors (checked by CheckLiteralize).
	Literalize map[string][]string
}

// parser consumes the token stream produced by the lexer.
type parser struct {
	toks []token
	pos  int
}

// Parse parses a complete OPS5 source text.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokLParen {
			return nil, p.errorf("expected '(' at top level, found %s", t)
		}
		p.next()
		head := p.peek()
		if head.kind != tokAtom {
			return nil, p.errorf("expected p or make after '(', found %s", head)
		}
		switch head.text {
		case "p":
			p.next()
			prod, err := p.parseProduction()
			if err != nil {
				return nil, err
			}
			prod.Order = len(prog.Productions)
			if err := prod.Validate(); err != nil {
				return nil, err
			}
			prog.Productions = append(prog.Productions, prod)
		case "make":
			p.next()
			w, err := p.parseTopLevelMake()
			if err != nil {
				return nil, err
			}
			prog.InitialWM = append(prog.InitialWM, w)
		case "literalize":
			p.next()
			if err := p.parseLiteralize(prog); err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("unknown top-level form %q", head.text)
		}
	}
	if err := prog.CheckLiteralize(); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseProduction parses a single (p ...) form.
func ParseProduction(src string) (*Production, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Productions) != 1 {
		return nil, fmt.Errorf("ops5: expected exactly one production, found %d", len(prog.Productions))
	}
	return prog.Productions[0], nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errorfAt(t, "expected %s, found %s", what, t)
	}
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return p.errorfAt(p.peek(), format, args...)
}

func (p *parser) errorfAt(t token, format string, args ...any) error {
	return fmt.Errorf("ops5: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

// parseProduction parses the body after "(p": name, CEs, -->, actions, ")".
func (p *parser) parseProduction() (*Production, error) {
	nameTok, err := p.expect(tokAtom, "production name")
	if err != nil {
		return nil, err
	}
	prod := &Production{Name: nameTok.text}
	// Left-hand side: condition elements until -->.
	for {
		t := p.peek()
		if t.kind == tokArrow {
			p.next()
			break
		}
		negated := false
		if t.kind == tokMinus {
			p.next()
			negated = true
			t = p.peek()
		}
		switch t.kind {
		case tokLParen:
			ce, err := p.parseCondElement(negated)
			if err != nil {
				return nil, err
			}
			prod.LHS = append(prod.LHS, ce)
		case tokLBrace:
			ce, err := p.parseBoundCondElement(negated)
			if err != nil {
				return nil, err
			}
			prod.LHS = append(prod.LHS, ce)
		default:
			return nil, p.errorf("expected condition element or -->, found %s", t)
		}
	}
	// Right-hand side: actions until ')'.
	for {
		t := p.peek()
		if t.kind == tokRParen {
			p.next()
			break
		}
		if t.kind != tokLParen {
			return nil, p.errorf("expected action or ')', found %s", t)
		}
		a, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		prod.RHS = append(prod.RHS, a)
	}
	return prod, nil
}

// parseBoundCondElement parses an element-variable binding form:
// { <var> (class ...) } or { (class ...) <var> }.
func (p *parser) parseBoundCondElement(negated bool) (*CondElement, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var elemVar string
	var ce *CondElement
	for i := 0; i < 2; i++ {
		t := p.peek()
		switch {
		case t.kind == tokAtom && elemVar == "":
			name, isVar := isVarAtom(t.text)
			if !isVar {
				return nil, p.errorfAt(t, "expected <element-variable>, found %s", t.text)
			}
			p.next()
			elemVar = name
		case t.kind == tokLParen && ce == nil:
			var err error
			ce, err = p.parseCondElement(negated)
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.errorf("expected element variable and condition element inside { }, found %s", t)
		}
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	ce.ElemVar = elemVar
	return ce, nil
}

// parseCondElement parses (class ^attr term ...).
func (p *parser) parseCondElement(negated bool) (*CondElement, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	classTok, err := p.expect(tokAtom, "class name")
	if err != nil {
		return nil, err
	}
	ce := &CondElement{Negated: negated, Class: classTok.text}
	for {
		t := p.peek()
		switch t.kind {
		case tokRParen:
			p.next()
			return ce, nil
		case tokCaret:
			p.next()
			attrTok, err := p.expect(tokAtom, "attribute name")
			if err != nil {
				return nil, err
			}
			at := AttrTest{Attr: attrTok.text}
			terms, err := p.parseTerms()
			if err != nil {
				return nil, err
			}
			at.Terms = terms
			ce.Tests = append(ce.Tests, at)
		default:
			return nil, p.errorf("expected ^attribute or ')' in condition element, found %s", t)
		}
	}
}

// parseTerms parses the value position after ^attr: a single term, a
// disjunction << ... >>, or a conjunction { ... }.
func (p *parser) parseTerms() ([]Term, error) {
	t := p.peek()
	switch t.kind {
	case tokLBrace:
		p.next()
		var terms []Term
		for {
			if p.peek().kind == tokRBrace {
				p.next()
				if len(terms) == 0 {
					return nil, p.errorf("empty conjunction {}")
				}
				return terms, nil
			}
			term, err := p.parseOneTerm()
			if err != nil {
				return nil, err
			}
			terms = append(terms, term)
		}
	default:
		term, err := p.parseOneTerm()
		if err != nil {
			return nil, err
		}
		return []Term{term}, nil
	}
}

// parseOneTerm parses one primitive term: [pred] atom, <var>, or <<...>>.
func (p *parser) parseOneTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokLDisj:
		var vals []Value
		for {
			u := p.next()
			if u.kind == tokRDisj {
				if len(vals) == 0 {
					return Term{}, p.errorfAt(u, "empty disjunction << >>")
				}
				return Term{Kind: TermDisj, Disj: vals}, nil
			}
			if u.kind != tokAtom {
				return Term{}, p.errorfAt(u, "expected constant in << >>, found %s", u)
			}
			if _, isVar := isVarAtom(u.text); isVar {
				return Term{}, p.errorfAt(u, "variables are not allowed inside << >>")
			}
			vals = append(vals, parseAtom(u.text))
		}
	case tokAtom:
		if pred, ok := predFromAtom(t.text); ok {
			// Predicate followed by a constant or a variable.
			u := p.next()
			if u.kind != tokAtom {
				return Term{}, p.errorfAt(u, "expected value after predicate %s, found %s", t.text, u)
			}
			if name, isVar := isVarAtom(u.text); isVar {
				return Term{Kind: TermVar, Pred: pred, Var: name}, nil
			}
			return Term{Kind: TermConst, Pred: pred, Val: parseAtom(u.text)}, nil
		}
		if name, isVar := isVarAtom(t.text); isVar {
			return Term{Kind: TermVar, Pred: PredEq, Var: name}, nil
		}
		return Term{Kind: TermConst, Pred: PredEq, Val: parseAtom(t.text)}, nil
	default:
		return Term{}, p.errorfAt(t, "expected test term, found %s", t)
	}
}

// parseAction parses one RHS action form starting at '('.
func (p *parser) parseAction() (*Action, error) {
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	opTok, err := p.expect(tokAtom, "action name")
	if err != nil {
		return nil, err
	}
	a := &Action{}
	switch opTok.text {
	case "make":
		a.Kind = ActMake
		classTok, err := p.expect(tokAtom, "class name")
		if err != nil {
			return nil, err
		}
		a.Class = classTok.text
		if err := p.parsePairs(a); err != nil {
			return nil, err
		}
	case "modify":
		a.Kind = ActModify
		if err := p.parseCEIndex(a); err != nil {
			return nil, err
		}
		if err := p.parsePairs(a); err != nil {
			return nil, err
		}
	case "remove":
		a.Kind = ActRemove
		if err := p.parseCEIndex(a); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	case "write":
		a.Kind = ActWrite
		for {
			t := p.peek()
			if t.kind == tokRParen {
				p.next()
				break
			}
			term, err := p.parseRHSTerm()
			if err != nil {
				return nil, err
			}
			a.Args = append(a.Args, term)
		}
	case "halt":
		a.Kind = ActHalt
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	case "call":
		a.Kind = ActCall
		fnTok, err := p.expect(tokAtom, "function name")
		if err != nil {
			return nil, err
		}
		a.Fn = fnTok.text
		for {
			t := p.peek()
			if t.kind == tokRParen {
				p.next()
				break
			}
			term, err := p.parseRHSTerm()
			if err != nil {
				return nil, err
			}
			a.Args = append(a.Args, term)
		}
	case "bind":
		a.Kind = ActBind
		varTok, err := p.expect(tokAtom, "variable")
		if err != nil {
			return nil, err
		}
		name, isVar := isVarAtom(varTok.text)
		if !isVar {
			return nil, p.errorfAt(varTok, "bind requires a <variable>, found %s", varTok.text)
		}
		a.Var = name
		term, err := p.parseRHSTerm()
		if err != nil {
			return nil, err
		}
		a.Term = term
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
	default:
		return nil, p.errorfAt(opTok, "unknown action %q", opTok.text)
	}
	return a, nil
}

func (p *parser) parseCEIndex(a *Action) error {
	t, err := p.expect(tokAtom, "condition-element number or <element-variable>")
	if err != nil {
		return err
	}
	if name, isVar := isVarAtom(t.text); isVar {
		a.CEVar = name
		return nil
	}
	v := parseAtom(t.text)
	if v.Kind != NumValue || v.Num != float64(int(v.Num)) || v.Num < 1 {
		return p.errorfAt(t, "condition-element designator must be a positive integer or <variable>, found %s", t.text)
	}
	a.CE = int(v.Num)
	return nil
}

// parsePairs parses ^attr term pairs until ')'.
func (p *parser) parsePairs(a *Action) error {
	for {
		t := p.peek()
		switch t.kind {
		case tokRParen:
			p.next()
			return nil
		case tokCaret:
			p.next()
			attrTok, err := p.expect(tokAtom, "attribute name")
			if err != nil {
				return err
			}
			term, err := p.parseRHSTerm()
			if err != nil {
				return err
			}
			a.Pairs = append(a.Pairs, RHSPair{Attr: attrTok.text, Term: term})
		default:
			return p.errorf("expected ^attribute or ')' in action, found %s", t)
		}
	}
}

// parseRHSTerm parses a constant, variable, (compute ...) expression or
// (crlf) in an action argument slot.
func (p *parser) parseRHSTerm() (RHSTerm, error) {
	t := p.next()
	switch t.kind {
	case tokAtom:
		if name, isVar := isVarAtom(t.text); isVar {
			return RHSTerm{IsVar: true, Var: name}, nil
		}
		return RHSTerm{Val: parseAtom(t.text)}, nil
	case tokLParen:
		head, err := p.expect(tokAtom, "compute or crlf")
		if err != nil {
			return RHSTerm{}, err
		}
		switch head.text {
		case "crlf":
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return RHSTerm{}, err
			}
			return RHSTerm{Crlf: true}, nil
		case "compute":
			expr, err := p.parseCompute()
			if err != nil {
				return RHSTerm{}, err
			}
			return RHSTerm{Compute: expr}, nil
		default:
			return RHSTerm{}, p.errorfAt(head, "unknown RHS function %q (compute|crlf)", head.text)
		}
	default:
		return RHSTerm{}, p.errorfAt(t, "expected value, found %s", t)
	}
}

// parseCompute parses the body of (compute a op b op c ...) after the
// "compute" atom, through the closing ')'.
func (p *parser) parseCompute() (*ComputeExpr, error) {
	expr := &ComputeExpr{}
	wantOperand := true
	for {
		t := p.peek()
		if t.kind == tokRParen {
			p.next()
			if wantOperand || len(expr.Operands) == 0 {
				return nil, p.errorfAt(t, "compute expression ends with an operator or is empty")
			}
			return expr, nil
		}
		if t.kind != tokAtom {
			return nil, p.errorf("expected operand or operator in compute, found %s", t)
		}
		p.next()
		if wantOperand {
			if name, isVar := isVarAtom(t.text); isVar {
				expr.Operands = append(expr.Operands, RHSTerm{IsVar: true, Var: name})
			} else {
				v := parseAtom(t.text)
				if v.Kind != NumValue {
					return nil, p.errorfAt(t, "compute operand %q is not a number or variable", t.text)
				}
				expr.Operands = append(expr.Operands, RHSTerm{Val: v})
			}
			wantOperand = false
			continue
		}
		op, ok := computeOpFromAtom(t.text)
		if !ok {
			return nil, p.errorfAt(t, "expected compute operator, found %q", t.text)
		}
		expr.Ops = append(expr.Ops, op)
		wantOperand = true
	}
}

// parseTopLevelMake parses a top-level (make class ^attr val ...) form,
// which may contain only constants.
func (p *parser) parseTopLevelMake() (*WME, error) {
	classTok, err := p.expect(tokAtom, "class name")
	if err != nil {
		return nil, err
	}
	var fields []Field
	for {
		t := p.peek()
		switch t.kind {
		case tokRParen:
			p.next()
			return NewFact(sym.Intern(classTok.text), fields), nil
		case tokCaret:
			p.next()
			attrTok, err := p.expect(tokAtom, "attribute name")
			if err != nil {
				return nil, err
			}
			valTok, err := p.expect(tokAtom, "constant value")
			if err != nil {
				return nil, err
			}
			if _, isVar := isVarAtom(valTok.text); isVar {
				return nil, p.errorfAt(valTok, "top-level make may not contain variables")
			}
			fields = append(fields, Field{Attr: sym.Intern(attrTok.text), Val: parseAtom(valTok.text)})
		default:
			return nil, p.errorf("expected ^attribute or ')' in make, found %s", t)
		}
	}
}

// parseLiteralize parses (literalize class attr...) after the keyword.
func (p *parser) parseLiteralize(prog *Program) error {
	classTok, err := p.expect(tokAtom, "class name")
	if err != nil {
		return err
	}
	if prog.Literalize == nil {
		prog.Literalize = make(map[string][]string)
	}
	if _, dup := prog.Literalize[classTok.text]; dup {
		return p.errorfAt(classTok, "class %q literalized twice", classTok.text)
	}
	var attrs []string
	for {
		t := p.next()
		switch t.kind {
		case tokRParen:
			prog.Literalize[classTok.text] = attrs
			return nil
		case tokAtom:
			attrs = append(attrs, t.text)
		default:
			return p.errorfAt(t, "expected attribute name or ')' in literalize, found %s", t)
		}
	}
}

// CheckLiteralize verifies that every attribute referenced for a
// declared class — in condition elements, make/modify actions, and
// top-level makes — appears in the class's literalize declaration.
// Classes without declarations are unconstrained, as in OPS5 programs
// that skip literalize.
func (prog *Program) CheckLiteralize() error {
	if len(prog.Literalize) == 0 {
		return nil
	}
	declared := func(class, attr string) bool {
		attrs, ok := prog.Literalize[class]
		if !ok {
			return true
		}
		for _, a := range attrs {
			if a == attr {
				return true
			}
		}
		return false
	}
	for _, p := range prog.Productions {
		for _, ce := range p.LHS {
			for _, at := range ce.Tests {
				if !declared(ce.Class, at.Attr) {
					return fmt.Errorf("ops5: production %s: class %s has no attribute ^%s (see literalize)",
						p.Name, ce.Class, at.Attr)
				}
			}
		}
		for ai, a := range p.RHS {
			if a.Kind != ActMake && a.Kind != ActModify {
				continue
			}
			class := a.Class
			if a.Kind == ActModify {
				class = p.LHS[a.CE-1].Class
			}
			for _, pair := range a.Pairs {
				if !declared(class, pair.Attr) {
					return fmt.Errorf("ops5: production %s action %d: class %s has no attribute ^%s (see literalize)",
						p.Name, ai+1, class, pair.Attr)
				}
			}
		}
	}
	for _, w := range prog.InitialWM {
		for _, f := range w.Fields() {
			attr := sym.Name(f.Attr)
			if !declared(w.Class(), attr) {
				return fmt.Errorf("ops5: top-level make: class %s has no attribute ^%s (see literalize)",
					w.Class(), attr)
			}
		}
	}
	return nil
}
