package ops5

import (
	"fmt"
	"strings"

	"repro/internal/sym"
)

// TermKind discriminates the forms an attribute test term can take.
type TermKind uint8

// The kinds of test terms that may follow an ^attribute in a condition
// element.
const (
	// TermConst compares the attribute against a constant with Pred.
	TermConst TermKind = iota
	// TermVar binds or tests a variable, optionally through Pred
	// (e.g. "> <x>" tests the attribute against the binding of <x>).
	TermVar
	// TermDisj is a disjunction << a b c >> of constants; the attribute
	// must equal one of them.
	TermDisj
	// TermAny matches anything (an anonymous variable or bare nil test).
	TermAny
)

// Term is a single primitive test applied to one attribute's value.
type Term struct {
	Kind TermKind
	Pred Predicate // for TermConst and TermVar
	Val  Value     // for TermConst
	Var  string    // for TermVar: the variable name without <>
	Disj []Value   // for TermDisj
}

// String renders the term in OPS5 surface syntax.
func (t Term) String() string {
	switch t.Kind {
	case TermConst:
		if t.Pred == PredEq {
			return t.Val.String()
		}
		return t.Pred.String() + " " + t.Val.String()
	case TermVar:
		if t.Pred == PredEq {
			return "<" + t.Var + ">"
		}
		return t.Pred.String() + " <" + t.Var + ">"
	case TermDisj:
		parts := make([]string, len(t.Disj))
		for i, v := range t.Disj {
			parts[i] = v.String()
		}
		return "<< " + strings.Join(parts, " ") + " >>"
	default:
		return "<any>"
	}
}

// AttrTest is the conjunction of terms applied to one attribute of a
// condition element. A bare value compiles to a single term; a
// conjunction { <x> > 7 } compiles to several.
type AttrTest struct {
	Attr string
	// AttrID is the interned ID of Attr, filled in by the parser and by
	// Production.Validate. When set (non-zero), matching resolves the
	// attribute by integer compare instead of a string lookup.
	AttrID sym.ID
	Terms  []Term
}

// valueIn fetches the tested attribute's value from w, through the
// interned ID when the test has been compiled (Validate), falling back
// to a by-name lookup for hand-built, unvalidated condition elements.
func (at *AttrTest) valueIn(w *WME) Value {
	if at.AttrID != sym.None {
		return w.GetID(at.AttrID)
	}
	return w.Get(at.Attr)
}

// String renders the attribute test in OPS5 surface syntax.
func (a AttrTest) String() string {
	if len(a.Terms) == 1 {
		return "^" + atomString(a.Attr) + " " + a.Terms[0].String()
	}
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return "^" + atomString(a.Attr) + " { " + strings.Join(parts, " ") + " }"
}

// CondElement is one condition element in a production's left-hand side:
// a class name, attribute tests, a negation flag, and an optional OPS5
// element variable ({ <g> (goal ...) }) that right-hand-side modify and
// remove actions can reference instead of a positional index.
type CondElement struct {
	Negated bool
	Class   string
	// ClassID is the interned ID of Class, filled in by the parser and
	// by Production.Validate; matching then compares class symbols as
	// integers.
	ClassID sym.ID
	Tests   []AttrTest
	// ElemVar is the element variable bound to the matched WME, without
	// the angle brackets; empty when the CE is unnamed.
	ElemVar string
}

// classMatches reports whether w's class is the CE's class, by interned
// ID when available.
func (ce *CondElement) classMatches(w *WME) bool {
	if ce.ClassID != sym.None {
		return ce.ClassID == w.class
	}
	return ce.Class == w.Class()
}

// Intern fills in the interned symbol IDs (class, tested attributes)
// that let matchers run on integer compares. Validate calls it; it is
// idempotent and cheap after the first call.
func (ce *CondElement) Intern() {
	if ce.ClassID == sym.None && ce.Class != "" {
		ce.ClassID = sym.Intern(ce.Class)
	}
	for i := range ce.Tests {
		if ce.Tests[i].AttrID == sym.None {
			ce.Tests[i].AttrID = sym.Intern(ce.Tests[i].Attr)
		}
	}
}

// String renders the condition element in OPS5 surface syntax.
func (ce *CondElement) String() string {
	var b strings.Builder
	if ce.Negated {
		b.WriteString("-")
	}
	if ce.ElemVar != "" {
		b.WriteString("{ <" + ce.ElemVar + "> ")
	}
	b.WriteString("(")
	b.WriteString(atomString(ce.Class))
	for _, t := range ce.Tests {
		b.WriteString(" ")
		b.WriteString(t.String())
	}
	b.WriteString(")")
	if ce.ElemVar != "" {
		b.WriteString(" }")
	}
	return b.String()
}

// Variables returns the set of variable names that occur in the CE.
func (ce *CondElement) Variables() map[string]bool {
	vars := make(map[string]bool)
	for _, at := range ce.Tests {
		for _, t := range at.Terms {
			if t.Kind == TermVar {
				vars[t.Var] = true
			}
		}
	}
	return vars
}

// ConstTests returns the attribute tests that can be evaluated on a
// single WME without variable bindings: constant, disjunction and "any"
// terms, plus within-CE equality-variable repeats which are handled by
// the caller. The result preserves source order.
func (ce *CondElement) ConstTests() []AttrTest {
	var out []AttrTest
	for _, at := range ce.Tests {
		var terms []Term
		for _, t := range at.Terms {
			if t.Kind == TermConst || t.Kind == TermDisj {
				terms = append(terms, t)
			}
		}
		if len(terms) > 0 {
			out = append(out, AttrTest{Attr: at.Attr, Terms: terms})
		}
	}
	return out
}

// ActionKind discriminates the right-hand-side action forms.
type ActionKind uint8

// The supported RHS actions.
const (
	// ActMake creates a new working-memory element.
	ActMake ActionKind = iota
	// ActModify removes the WME matched by a CE and re-makes it with
	// some attributes changed.
	ActModify
	// ActRemove deletes the WME matched by a CE.
	ActRemove
	// ActWrite prints its arguments (captured by the engine).
	ActWrite
	// ActHalt stops the recognize-act loop.
	ActHalt
	// ActBind binds a variable to a computed value for later actions.
	ActBind
	// ActCall invokes a host function registered with the engine
	// (OPS5's external-routine escape).
	ActCall
)

// RHSTerm is an argument position in an RHS action: a constant, a
// variable reference substituted from the instantiation at fire time,
// a (compute ...) arithmetic expression, or the (crlf) write control.
type RHSTerm struct {
	IsVar   bool
	Var     string
	Val     Value
	Compute *ComputeExpr
	Crlf    bool
}

// String renders the term.
func (t RHSTerm) String() string {
	switch {
	case t.IsVar:
		return "<" + t.Var + ">"
	case t.Compute != nil:
		return t.Compute.String()
	case t.Crlf:
		return "(crlf)"
	default:
		return t.Val.String()
	}
}

// RHSPair is an ^attribute value pair in a make or modify action.
type RHSPair struct {
	Attr string
	// AttrID is the interned ID of Attr (set by Validate); the engine
	// builds result fields from it without re-hashing the name.
	AttrID sym.ID
	Term   RHSTerm
}

// Action is one right-hand-side action of a production.
type Action struct {
	Kind  ActionKind
	Class string // for make
	// ClassID is the interned ID of Class (set by Validate).
	ClassID sym.ID
	// Fn is the registered host-function name for call actions.
	Fn string
	// CE is the 1-based condition-element index for modify/remove.
	// When the source used an element variable, CEVar holds its name
	// and Validate resolves CE from it.
	CE    int
	CEVar string
	Pairs []RHSPair // attribute updates for make/modify
	Args  []RHSTerm // for write
	Var   string    // for bind
	Term  RHSTerm   // for bind
}

// String renders the action in OPS5 surface syntax.
func (a *Action) String() string {
	var b strings.Builder
	b.WriteString("(")
	switch a.Kind {
	case ActMake:
		b.WriteString("make " + atomString(a.Class))
		for _, p := range a.Pairs {
			fmt.Fprintf(&b, " ^%s %s", atomString(p.Attr), p.Term)
		}
	case ActModify:
		fmt.Fprintf(&b, "modify %s", a.ceDesignator())
		for _, p := range a.Pairs {
			fmt.Fprintf(&b, " ^%s %s", atomString(p.Attr), p.Term)
		}
	case ActRemove:
		fmt.Fprintf(&b, "remove %s", a.ceDesignator())
	case ActWrite:
		b.WriteString("write")
		for _, t := range a.Args {
			b.WriteString(" " + t.String())
		}
	case ActHalt:
		b.WriteString("halt")
	case ActBind:
		fmt.Fprintf(&b, "bind <%s> %s", a.Var, a.Term)
	case ActCall:
		b.WriteString("call " + atomString(a.Fn))
		for _, t := range a.Args {
			b.WriteString(" " + t.String())
		}
	}
	b.WriteString(")")
	return b.String()
}

// ceDesignator renders the modify/remove target as written.
func (a *Action) ceDesignator() string {
	if a.CEVar != "" {
		return "<" + a.CEVar + ">"
	}
	return fmt.Sprint(a.CE)
}

// Production is a complete OPS5 rule: a name, a left-hand side of
// condition elements, and a right-hand side of actions.
type Production struct {
	Name string
	LHS  []*CondElement
	RHS  []*Action
	// Order is the load order, used by specificity tie-breaks and for
	// deterministic iteration.
	Order int
}

// String renders the production in OPS5 surface syntax.
func (p *Production) String() string {
	var b strings.Builder
	b.WriteString("(p " + atomString(p.Name) + "\n")
	for _, ce := range p.LHS {
		b.WriteString("    " + ce.String() + "\n")
	}
	b.WriteString("  -->\n")
	for _, a := range p.RHS {
		b.WriteString("    " + a.String() + "\n")
	}
	b.WriteString(")")
	return b.String()
}

// Intern fills in the interned symbol IDs across the production — CE
// classes and tested attributes, make/modify classes and attributes —
// so matching and RHS evaluation run on integer compares. Validate
// calls it; it is idempotent.
func (p *Production) Intern() {
	for _, ce := range p.LHS {
		ce.Intern()
	}
	for _, a := range p.RHS {
		if a.ClassID == sym.None && a.Class != "" {
			a.ClassID = sym.Intern(a.Class)
		}
		for i := range a.Pairs {
			if a.Pairs[i].AttrID == sym.None {
				a.Pairs[i].AttrID = sym.Intern(a.Pairs[i].Attr)
			}
		}
	}
}

// PositiveCEs returns the indices (0-based) of non-negated condition
// elements in LHS order.
func (p *Production) PositiveCEs() []int {
	out := make([]int, 0, len(p.LHS))
	for i, ce := range p.LHS {
		if !ce.Negated {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural well-formedness: at least one positive CE,
// modify/remove indices referencing positive CEs, and RHS variables bound
// somewhere in the LHS (or by a preceding bind action).
func (p *Production) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("ops5: production has no name")
	}
	p.Intern()
	if len(p.LHS) == 0 {
		return fmt.Errorf("ops5: production %s has an empty left-hand side", p.Name)
	}
	pos := p.PositiveCEs()
	if len(pos) == 0 {
		return fmt.Errorf("ops5: production %s has no positive condition element", p.Name)
	}
	if p.LHS[0].Negated {
		return fmt.Errorf("ops5: production %s: the first condition element must be positive", p.Name)
	}
	bound := make(map[string]bool)
	for _, ce := range p.LHS {
		if ce.Negated {
			continue
		}
		for v := range ce.Variables() {
			bound[v] = true
		}
	}
	// Resolve element variables to CE indices and reject collisions
	// with ordinary variables or duplicate names.
	elemIdx := make(map[string]int)
	for i, ce := range p.LHS {
		if ce.ElemVar == "" {
			continue
		}
		if ce.Negated {
			return fmt.Errorf("ops5: production %s: element variable <%s> on a negated condition element",
				p.Name, ce.ElemVar)
		}
		if _, dup := elemIdx[ce.ElemVar]; dup {
			return fmt.Errorf("ops5: production %s: element variable <%s> bound twice", p.Name, ce.ElemVar)
		}
		if bound[ce.ElemVar] {
			return fmt.Errorf("ops5: production %s: <%s> is both an element variable and a value variable",
				p.Name, ce.ElemVar)
		}
		elemIdx[ce.ElemVar] = i + 1
	}
	for _, a := range p.RHS {
		if a.CEVar == "" {
			continue
		}
		idx, ok := elemIdx[a.CEVar]
		if !ok {
			return fmt.Errorf("ops5: production %s: action %s references unknown element variable <%s>",
				p.Name, a, a.CEVar)
		}
		a.CE = idx
	}
	var checkTerm func(t RHSTerm) error
	checkTerm = func(t RHSTerm) error {
		if t.IsVar && !bound[t.Var] {
			return fmt.Errorf("ops5: production %s uses unbound variable <%s> in RHS", p.Name, t.Var)
		}
		if t.Compute != nil {
			for _, op := range t.Compute.Operands {
				if err := checkTerm(op); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, a := range p.RHS {
		switch a.Kind {
		case ActModify, ActRemove:
			if a.CE < 1 || a.CE > len(p.LHS) {
				return fmt.Errorf("ops5: production %s action %s references CE %d of %d",
					p.Name, a, a.CE, len(p.LHS))
			}
			if p.LHS[a.CE-1].Negated {
				return fmt.Errorf("ops5: production %s action %s references negated CE %d",
					p.Name, a, a.CE)
			}
		case ActBind:
			if err := checkTerm(a.Term); err != nil {
				return err
			}
			bound[a.Var] = true
		}
		for _, pr := range a.Pairs {
			if err := checkTerm(pr.Term); err != nil {
				return err
			}
		}
		for _, t := range a.Args {
			if err := checkTerm(t); err != nil {
				return err
			}
		}
	}
	return nil
}
