package ops5

import (
	"fmt"
	"math"
	"strings"
)

// ComputeOp is one arithmetic operator usable inside (compute ...).
type ComputeOp uint8

// The OPS5 compute operators.
const (
	OpAdd ComputeOp = iota // +
	OpSub                  // -
	OpMul                  // *
	OpDiv                  // //
	OpMod                  // \\
)

// String renders the operator in OPS5 surface syntax.
func (o ComputeOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "//"
	case OpMod:
		return "\\\\"
	default:
		return "?"
	}
}

// computeOpFromAtom recognises an operator atom.
func computeOpFromAtom(text string) (ComputeOp, bool) {
	switch text {
	case "+":
		return OpAdd, true
	case "-":
		return OpSub, true
	case "*":
		return OpMul, true
	case "//":
		return OpDiv, true
	case "\\\\", "\\":
		return OpMod, true
	default:
		return 0, false
	}
}

// ComputeExpr is an OPS5 (compute ...) arithmetic expression: operands
// separated by operators with no precedence, evaluated right to left as
// in the original OPS5 (so (compute 2 * 3 + 4) is 2 * (3 + 4) = 14).
type ComputeExpr struct {
	Operands []RHSTerm   // len(Operands) == len(Ops) + 1
	Ops      []ComputeOp // operator i sits between operands i and i+1
}

// String renders the expression in OPS5 surface syntax.
func (c *ComputeExpr) String() string {
	var b strings.Builder
	b.WriteString("(compute")
	for i, op := range c.Operands {
		b.WriteString(" " + op.String())
		if i < len(c.Ops) {
			b.WriteString(" " + c.Ops[i].String())
		}
	}
	b.WriteString(")")
	return b.String()
}

// Eval evaluates the expression right to left. resolve maps each
// operand term to its value; every operand must resolve to a number.
func (c *ComputeExpr) Eval(resolve func(RHSTerm) (Value, error)) (Value, error) {
	if len(c.Operands) != len(c.Ops)+1 {
		return Value{}, fmt.Errorf("ops5: malformed compute expression %s", c)
	}
	// Right-to-left: start from the last operand and fold leftwards.
	acc, err := c.number(resolve, c.Operands[len(c.Operands)-1])
	if err != nil {
		return Value{}, err
	}
	for i := len(c.Ops) - 1; i >= 0; i-- {
		left, err := c.number(resolve, c.Operands[i])
		if err != nil {
			return Value{}, err
		}
		switch c.Ops[i] {
		case OpAdd:
			acc = left + acc
		case OpSub:
			acc = left - acc
		case OpMul:
			acc = left * acc
		case OpDiv:
			if acc == 0 {
				return Value{}, fmt.Errorf("ops5: division by zero in %s", c)
			}
			acc = left / acc
		case OpMod:
			if acc == 0 {
				return Value{}, fmt.Errorf("ops5: modulo by zero in %s", c)
			}
			acc = math.Mod(left, acc)
		}
	}
	return Num(acc), nil
}

func (c *ComputeExpr) number(resolve func(RHSTerm) (Value, error), t RHSTerm) (float64, error) {
	v, err := resolve(t)
	if err != nil {
		return 0, err
	}
	if v.Kind != NumValue {
		return 0, fmt.Errorf("ops5: compute operand %s is not a number (got %s)", t, v)
	}
	return v.Num, nil
}
