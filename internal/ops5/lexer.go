package ops5

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind discriminates lexer tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokLBrace // {
	tokRBrace // }
	tokLDisj  // <<
	tokRDisj  // >>
	tokArrow  // -->
	tokMinus  // - immediately before ( : negation
	tokCaret  // ^
	tokAtom   // symbol or number or predicate or <var>
)

// token is one lexical unit with its source line for error reporting.
type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokLBrace:
		return "{"
	case tokRBrace:
		return "}"
	case tokLDisj:
		return "<<"
	case tokRDisj:
		return ">>"
	case tokArrow:
		return "-->"
	case tokMinus:
		return "-"
	case tokCaret:
		return "^"
	default:
		return t.text
	}
}

// lexer tokenizes OPS5 source. Comments run from ';' to end of line.
type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ';':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		default:
			return
		}
	}
}

// isAtomChar reports whether c can be part of a bare atom. The quote
// character '|' is excluded so bare atoms can never contain it (quoted
// atoms have no escape syntax, so a '|' inside an atom could not be
// re-rendered).
func isAtomChar(c byte) bool {
	switch c {
	case '(', ')', '{', '}', '^', ';', '|', ' ', '\t', '\n', '\r', 0:
		return false
	}
	return true
}

func (l *lexer) next() (token, error) {
	l.skipSpace()
	line := l.line
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, line: line}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, line: line}, nil
	case '{':
		l.pos++
		return token{kind: tokLBrace, line: line}, nil
	case '}':
		l.pos++
		return token{kind: tokRBrace, line: line}, nil
	case '^':
		l.pos++
		return token{kind: tokCaret, line: line}, nil
	case '|': // |quoted atom|
		end := strings.IndexByte(l.src[l.pos+1:], '|')
		if end < 0 {
			return token{}, fmt.Errorf("ops5: line %d: unterminated |atom|", line)
		}
		text := l.src[l.pos+1 : l.pos+1+end]
		l.pos += end + 2
		return token{kind: tokAtom, text: text, line: line}, nil
	}
	// Multi-character punctuation: <<, >>, -->, - before '('.
	rest := l.src[l.pos:]
	switch {
	case strings.HasPrefix(rest, "<<"):
		l.pos += 2
		return token{kind: tokLDisj, line: line}, nil
	case strings.HasPrefix(rest, ">>"):
		l.pos += 2
		return token{kind: tokRDisj, line: line}, nil
	case strings.HasPrefix(rest, "-->") && !isAtomChar(byteAt(rest, 3)):
		l.pos += 3
		return token{kind: tokArrow, line: line}, nil
	case c == '-' && nextNonSpaceIsParen(rest[1:]):
		l.pos++
		return token{kind: tokMinus, line: line}, nil
	}
	// Bare atom: read until delimiter.
	start := l.pos
	for l.pos < len(l.src) && isAtomChar(l.src[l.pos]) {
		// Stop before << or >> embedded after an atom boundary.
		if l.pos > start && (strings.HasPrefix(l.src[l.pos:], "<<") || strings.HasPrefix(l.src[l.pos:], ">>")) {
			break
		}
		l.pos++
	}
	if l.pos == start {
		return token{}, fmt.Errorf("ops5: line %d: unexpected character %q", line, c)
	}
	return token{kind: tokAtom, text: l.src[start:l.pos], line: line}, nil
}

func byteAt(s string, i int) byte {
	if i >= len(s) {
		return 0
	}
	return s[i]
}

// nextNonSpaceIsParen reports whether, skipping blanks, the next
// character opens a condition element ('(' or an element-binding '{')
// — distinguishing the CE-negation minus from a negative number or a
// symbol containing '-'.
func nextNonSpaceIsParen(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
			continue
		case '(', '{':
			return true
		default:
			return false
		}
	}
	return false
}

// parseAtom classifies a bare atom as a number or a symbol.
func parseAtom(text string) Value {
	if looksNumeric(text) {
		if n, err := strconv.ParseFloat(text, 64); err == nil {
			return Num(n)
		}
	}
	return Sym(text)
}

// looksNumeric guards against ParseFloat accepting atoms like "Inf".
func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '+' || s[0] == '-' {
		i++
	}
	if i >= len(s) {
		return false
	}
	return unicode.IsDigit(rune(s[i])) || (s[i] == '.' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1])))
}

// isVarAtom reports whether the atom is a variable of the form <name>,
// and returns the bare name.
func isVarAtom(text string) (string, bool) {
	if len(text) >= 3 && text[0] == '<' && text[len(text)-1] == '>' {
		inner := text[1 : len(text)-1]
		// Exclude the predicates <>, <=, <=> which also start with '<'.
		if inner != "" && inner != "=" && inner != "=>" && !strings.ContainsAny(inner, "<>") {
			return inner, true
		}
	}
	return "", false
}

// predFromAtom maps a predicate atom to its Predicate, if it is one.
func predFromAtom(text string) (Predicate, bool) {
	switch text {
	case "=":
		return PredEq, true
	case "<>":
		return PredNe, true
	case "<":
		return PredLt, true
	case ">":
		return PredGt, true
	case "<=":
		return PredLe, true
	case ">=":
		return PredGe, true
	case "<=>":
		return PredSameType, true
	default:
		return PredEq, false
	}
}
