package ops5

import (
	"fmt"
	"sort"
	"strings"
)

// WME is a working-memory element: a class name plus attribute-value
// pairs, identified by a unique, monotonically increasing time tag.
// WMEs are immutable once created; "modify" is remove-then-make.
type WME struct {
	// TimeTag is the element's unique recency stamp. Higher is younger.
	TimeTag int
	// Class is the element's class symbol (the first atom of the list).
	Class string
	// Attrs maps attribute names to values. Absent attributes are nil.
	Attrs map[string]Value
}

// NewWME builds a WME from a class and attribute/value pairs. The time
// tag is zero; working memory assigns the real tag on insertion.
func NewWME(class string, pairs ...any) *WME {
	if len(pairs)%2 != 0 {
		panic("ops5.NewWME: odd number of attribute/value arguments")
	}
	w := &WME{Class: class, Attrs: make(map[string]Value, len(pairs)/2)}
	for i := 0; i < len(pairs); i += 2 {
		attr, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("ops5.NewWME: attribute %v is not a string", pairs[i]))
		}
		w.Attrs[attr] = toValue(pairs[i+1])
	}
	return w
}

// toValue converts a native Go value into an OPS5 Value.
func toValue(x any) Value {
	switch v := x.(type) {
	case Value:
		return v
	case string:
		return Sym(v)
	case int:
		return Num(float64(v))
	case int64:
		return Num(float64(v))
	case float64:
		return Num(v)
	case nil:
		return Value{}
	default:
		panic(fmt.Sprintf("ops5: cannot convert %T to Value", x))
	}
}

// Get returns the value of attribute attr, or the nil value if unset.
func (w *WME) Get(attr string) Value { return w.Attrs[attr] }

// Clone returns a deep copy of the WME (sharing no attribute map).
func (w *WME) Clone() *WME {
	c := &WME{TimeTag: w.TimeTag, Class: w.Class, Attrs: make(map[string]Value, len(w.Attrs))}
	for k, v := range w.Attrs {
		c.Attrs[k] = v
	}
	return c
}

// Equal reports whether two WMEs have the same class and attributes,
// ignoring time tags.
func (w *WME) Equal(o *WME) bool {
	if w.Class != o.Class || len(w.Attrs) != len(o.Attrs) {
		return false
	}
	for k, v := range w.Attrs {
		if !o.Attrs[k].Equal(v) {
			return false
		}
	}
	return true
}

// String renders the WME in OPS5 surface syntax with its time tag.
func (w *WME) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d: (%s", w.TimeTag, w.Class)
	attrs := make([]string, 0, len(w.Attrs))
	for k := range w.Attrs {
		attrs = append(attrs, k)
	}
	sort.Strings(attrs)
	for _, k := range attrs {
		fmt.Fprintf(&b, " ^%s %s", k, w.Attrs[k])
	}
	b.WriteString(")")
	return b.String()
}

// ChangeKind tags a working-memory change as an insertion or a deletion.
type ChangeKind uint8

// The two kinds of working-memory change.
const (
	Insert ChangeKind = iota
	Delete
)

// String renders the change kind.
func (k ChangeKind) String() string {
	if k == Insert {
		return "insert"
	}
	return "delete"
}

// Change is one working-memory change: the unit processed by every
// matcher. A "modify" action is decomposed into a Delete followed by an
// Insert of a fresh element.
type Change struct {
	Kind ChangeKind
	WME  *WME
}

// String renders the change.
func (c Change) String() string { return c.Kind.String() + " " + c.WME.String() }
