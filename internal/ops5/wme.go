package ops5

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sym"
)

// TTLAttrName is the source spelling of the reserved time-to-live
// attribute. A numeric value N on an inserted element marks it as an
// event fact: the engine retracts it automatically once its logical
// clock has advanced N ticks past the insert (see engine.AdvanceClock).
// The attribute is otherwise ordinary — rules may declare, test, and
// copy it like any other.
const TTLAttrName = "__ttl"

// TTLAttr is the interned ID of TTLAttrName.
var TTLAttr = sym.Intern(TTLAttrName)

// Field is one attribute-value pair of a working-memory element, with
// the attribute as an interned symbol ID. A WME's fields are kept
// sorted by Attr, so lookup is a short scan or binary search over a
// dense, pointer-free 24-byte-per-entry slice — the row layout of the
// columnar working memory (internal/wm).
type Field struct {
	Attr sym.ID
	Val  Value
}

// WME is a working-memory element: a class symbol plus attribute-value
// fields, identified by a unique, monotonically increasing time tag.
// WMEs are immutable once created; "modify" is remove-then-make.
type WME struct {
	// TimeTag is the element's unique recency stamp. Higher is younger.
	TimeTag int

	class  sym.ID
	fields []Field // sorted by Attr
}

// NewWME builds a WME from a class and attribute/value pairs. The time
// tag is zero; working memory assigns the real tag on insertion.
// Repeated attributes keep the last value, matching map semantics.
func NewWME(class string, pairs ...any) *WME {
	if len(pairs)%2 != 0 {
		panic("ops5.NewWME: odd number of attribute/value arguments")
	}
	fields := make([]Field, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		attr, ok := pairs[i].(string)
		if !ok {
			panic(fmt.Sprintf("ops5.NewWME: attribute %v is not a string", pairs[i]))
		}
		fields = append(fields, Field{Attr: sym.Intern(attr), Val: toValue(pairs[i+1])})
	}
	return NewFact(sym.Intern(class), fields)
}

// NewFact builds a WME from an interned class ID and fields, taking
// ownership of the slice (it may be re-sorted and compacted in place).
// Repeated attributes keep the last occurrence.
func NewFact(class sym.ID, fields []Field) *WME {
	normalizeFields(&fields)
	return &WME{class: class, fields: fields}
}

// normalizeFields sorts fields by attribute and drops all but the last
// occurrence of a repeated attribute, in place. Insertion sort: field
// lists are short and often already sorted, and unlike sort.SliceStable
// it does not allocate (this runs for every RHS make and modify).
func normalizeFields(fields *[]Field) {
	fs := *fields
	for i := 1; i < len(fs); i++ {
		f := fs[i]
		j := i - 1
		for j >= 0 && fs[j].Attr > f.Attr {
			fs[j+1] = fs[j]
			j--
		}
		fs[j+1] = f
	}
	out := fs[:0]
	for i := 0; i < len(fs); i++ {
		if len(out) > 0 && out[len(out)-1].Attr == fs[i].Attr {
			out[len(out)-1] = fs[i] // later pair wins, as with a map
			continue
		}
		out = append(out, fs[i])
	}
	*fields = out
}

// toValue converts a native Go value into an OPS5 Value.
func toValue(x any) Value {
	switch v := x.(type) {
	case Value:
		return v
	case string:
		return Sym(v)
	case int:
		return Num(float64(v))
	case int64:
		return Num(float64(v))
	case float64:
		return Num(v)
	case nil:
		return Value{}
	default:
		panic(fmt.Sprintf("ops5: cannot convert %T to Value", x))
	}
}

// Class returns the element's class name.
func (w *WME) Class() string { return sym.Name(w.class) }

// ClassID returns the element's interned class symbol.
func (w *WME) ClassID() sym.ID { return w.class }

// Fields returns the element's attribute-value fields, sorted by
// attribute ID. The slice is the element's backing storage: read-only.
func (w *WME) Fields() []Field { return w.fields }

// Get returns the value of attribute attr, or the nil value if unset.
func (w *WME) Get(attr string) Value {
	id, ok := sym.Lookup(attr)
	if !ok {
		return Value{}
	}
	return w.GetID(id)
}

// GetID returns the value of the attribute with interned ID id, or the
// nil value if unset. Fields are sorted by ID; typical WMEs have a
// handful of fields, where a linear scan beats binary search.
func (w *WME) GetID(id sym.ID) Value {
	fs := w.fields
	if len(fs) > 8 {
		i := sort.Search(len(fs), func(i int) bool { return fs[i].Attr >= id })
		if i < len(fs) && fs[i].Attr == id {
			return fs[i].Val
		}
		return Value{}
	}
	for i := range fs {
		if fs[i].Attr == id {
			return fs[i].Val
		}
		if fs[i].Attr > id {
			break
		}
	}
	return Value{}
}

// Clone returns a deep copy of the WME (sharing no field storage).
func (w *WME) Clone() *WME {
	c := &WME{TimeTag: w.TimeTag, class: w.class}
	if len(w.fields) > 0 {
		c.fields = make([]Field, len(w.fields))
		copy(c.fields, w.fields)
	}
	return c
}

// WithUpdates returns a new untagged WME of the same class with the
// given fields replacing or extending w's — the "modify" re-make.
// updates is taken over and may be reordered; w is not changed.
func (w *WME) WithUpdates(updates []Field) *WME {
	normalizeFields(&updates)
	merged := make([]Field, 0, len(w.fields)+len(updates))
	i, j := 0, 0
	for i < len(w.fields) && j < len(updates) {
		switch {
		case w.fields[i].Attr < updates[j].Attr:
			merged = append(merged, w.fields[i])
			i++
		case w.fields[i].Attr > updates[j].Attr:
			merged = append(merged, updates[j])
			j++
		default:
			merged = append(merged, updates[j])
			i++
			j++
		}
	}
	merged = append(merged, w.fields[i:]...)
	merged = append(merged, updates[j:]...)
	return &WME{class: w.class, fields: merged}
}

// Equal reports whether two WMEs have the same class and attributes,
// ignoring time tags. Both field slices are sorted by attribute ID, so
// this is one linear pass of integer compares.
func (w *WME) Equal(o *WME) bool {
	if w.class != o.class || len(w.fields) != len(o.fields) {
		return false
	}
	for i := range w.fields {
		if w.fields[i].Attr != o.fields[i].Attr || !w.fields[i].Val.Equal(o.fields[i].Val) {
			return false
		}
	}
	return true
}

// String renders the WME in OPS5 surface syntax with its time tag.
// Attributes print in lexical name order for stable output, independent
// of interning order.
func (w *WME) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d: (%s", w.TimeTag, atomString(sym.Name(w.class)))
	names := make([]string, len(w.fields))
	for i, f := range w.fields {
		names[i] = sym.Name(f.Attr)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, " ^%s %s", atomString(name), w.Get(name))
	}
	b.WriteString(")")
	return b.String()
}

// FieldArena is a slab allocator for WME field storage. Working memory
// keeps one per class, so the rows of a class pack into large
// contiguous blocks instead of one small heap object per element —
// cheaper to allocate, denser to scan, quieter for the GC (Fields are
// pointer-free). Slabs are append-only; space of deleted elements is
// reclaimed when no live element's slice pins its block.
type FieldArena struct {
	cur []Field
}

// arenaBlock is the slab granularity in fields (24 KiB blocks).
const arenaBlock = 1024

// alloc returns a zero-length slice with capacity n carved from the
// current slab, starting a new slab when the remainder is too small.
func (a *FieldArena) alloc(n int) []Field {
	if cap(a.cur)-len(a.cur) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.cur = make([]Field, 0, size)
	}
	s := a.cur[len(a.cur) : len(a.cur) : len(a.cur)+n]
	a.cur = a.cur[:len(a.cur)+n]
	return s[:0]
}

// InternInto re-homes the element's field storage into the arena. It is
// called by working memory when it adopts an inserted element, before
// any matcher sees it; afterwards the element is indistinguishable from
// one built in the arena.
func (w *WME) InternInto(a *FieldArena) {
	if len(w.fields) == 0 {
		return
	}
	dst := a.alloc(len(w.fields))
	dst = append(dst, w.fields...)
	w.fields = dst
}

// ChangeKind tags a working-memory change as an insertion or a deletion.
type ChangeKind uint8

// The two kinds of working-memory change.
const (
	Insert ChangeKind = iota
	Delete
)

// String renders the change kind.
func (k ChangeKind) String() string {
	if k == Insert {
		return "insert"
	}
	return "delete"
}

// Change is one working-memory change: the unit processed by every
// matcher. A "modify" action is decomposed into a Delete followed by an
// Insert of a fresh element.
type Change struct {
	Kind ChangeKind
	WME  *WME
}

// String renders the change.
func (c Change) String() string { return c.Kind.String() + " " + c.WME.String() }
