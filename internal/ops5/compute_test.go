package ops5

import (
	"strings"
	"testing"
)

// evalConst evaluates a compute expression with constant-only resolve.
func evalConst(t *testing.T, src string) Value {
	t.Helper()
	full := `(p c (a ^v <x>) --> (make b ^v ` + src + `))`
	p, err := ParseProduction(full)
	if err != nil {
		t.Fatalf("parse %s: %v", src, err)
	}
	term := p.RHS[0].Pairs[0].Term
	if term.Compute == nil {
		t.Fatalf("term %v is not a compute expression", term)
	}
	v, err := term.Compute.Eval(func(t RHSTerm) (Value, error) {
		if t.IsVar {
			return Num(10), nil // all variables resolve to 10
		}
		return t.Val, nil
	})
	if err != nil {
		t.Fatalf("eval %s: %v", src, err)
	}
	return v
}

func TestComputeRightToLeft(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{`(compute 1 + 2)`, 3},
		{`(compute 5 - 2)`, 3},
		{`(compute 2 * 3)`, 6},
		{`(compute 7 // 2)`, 3.5},
		{`(compute 7 \\ 2)`, 1},
		// No precedence, right-to-left: 2 * (3 + 4) = 14 (OPS5 rule).
		{`(compute 2 * 3 + 4)`, 14},
		// 10 - (2 - 1) = 9.
		{`(compute 10 - 2 - 1)`, 9},
		{`(compute <x> + 1)`, 11},
		{`(compute 100)`, 100},
	}
	for _, c := range cases {
		if got := evalConst(t, c.src); got.Num != c.want {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	bad := []string{
		`(p c (a ^v <x>) --> (make b ^v (compute)))`,
		`(p c (a ^v <x>) --> (make b ^v (compute 1 +)))`,
		`(p c (a ^v <x>) --> (make b ^v (compute + 1)))`,
		`(p c (a ^v <x>) --> (make b ^v (compute 1 2)))`,
		`(p c (a ^v <x>) --> (make b ^v (compute foo + 1)))`,
		`(p c (a ^v <x>) --> (make b ^v (frobnicate 1)))`,
	}
	for _, src := range bad {
		if _, err := ParseProduction(src); err == nil {
			t.Errorf("expected parse error for %s", src)
		}
	}
}

func TestComputeDivisionByZero(t *testing.T) {
	full := `(p c (a ^v <x>) --> (make b ^v (compute 1 // 0)))`
	p, err := ParseProduction(full)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.RHS[0].Pairs[0].Term.Compute.Eval(func(t RHSTerm) (Value, error) {
		return t.Val, nil
	})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestComputeNonNumericOperand(t *testing.T) {
	full := `(p c (a ^v <x>) --> (make b ^v (compute <x> + 1)))`
	p, err := ParseProduction(full)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.RHS[0].Pairs[0].Term.Compute.Eval(func(t RHSTerm) (Value, error) {
		return Sym("oops"), nil
	})
	if err == nil || !strings.Contains(err.Error(), "not a number") {
		t.Errorf("err = %v, want non-numeric operand error", err)
	}
}

func TestComputeRoundTrip(t *testing.T) {
	src := `(p c (a ^v <x>) --> (make b ^v (compute <x> * 2 + 1)))`
	p1, err := ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProduction(p1.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p1.String())
	}
	if p1.String() != p2.String() {
		t.Errorf("round trip:\n%s\n%s", p1, p2)
	}
}

func TestComputeUnboundVariableCaughtByValidate(t *testing.T) {
	src := `(p c (a ^v <x>) --> (make b ^v (compute <zz> + 1)))`
	if _, err := ParseProduction(src); err == nil || !strings.Contains(err.Error(), "unbound variable") {
		t.Errorf("err = %v, want unbound variable", err)
	}
}

func TestLiteralize(t *testing.T) {
	good := `
(literalize goal type color)
(literalize block id color selected)
(make goal ^type find ^color red)
(p ok (goal ^type find) (block ^id <i>) --> (modify 2 ^selected yes))
`
	prog, err := Parse(good)
	if err != nil {
		t.Fatalf("valid literalized program rejected: %v", err)
	}
	if len(prog.Literalize["block"]) != 3 {
		t.Errorf("block attrs = %v", prog.Literalize["block"])
	}

	bad := []struct{ name, src, want string }{
		{"lhs", `(literalize goal type) (p x (goal ^colour red) --> (halt))`, "no attribute ^colour"},
		{"make", `(literalize goal type) (p x (goal ^type a) --> (make goal ^oops 1))`, "no attribute ^oops"},
		{"modify", `(literalize goal type) (p x (goal ^type a) --> (modify 1 ^oops 1))`, "no attribute ^oops"},
		{"top-make", `(literalize goal type) (make goal ^oops 1)`, "no attribute ^oops"},
		{"dup", `(literalize goal type) (literalize goal color)`, "literalized twice"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}

	// Undeclared classes remain unconstrained.
	mixed := `(literalize goal type) (p x (other ^anything 1) --> (halt))`
	if _, err := Parse(mixed); err != nil {
		t.Errorf("undeclared class should be unconstrained: %v", err)
	}
}

func TestCrlfInWrite(t *testing.T) {
	src := `(p w (a ^v <x>) --> (write line1 (crlf) line2))`
	p, err := ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.RHS[0].Args) != 3 || !p.RHS[0].Args[1].Crlf {
		t.Errorf("args = %v", p.RHS[0].Args)
	}
	// Round trip.
	if _, err := ParseProduction(p.String()); err != nil {
		t.Errorf("reparse: %v\n%s", err, p.String())
	}
}
