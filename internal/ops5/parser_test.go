package ops5

import (
	"strings"
	"testing"
)

func TestParseSampleProduction(t *testing.T) {
	// The paper's Figure 2-1 production, in canonical OPS5 syntax.
	src := `
(p find-colored-blk
    (goal ^type find-blk ^color <c>)
    (block ^id <i> ^color <c> ^selected no)
  -->
    (modify 2 ^selected yes))
`
	p, err := ParseProduction(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if p.Name != "find-colored-blk" {
		t.Errorf("name = %q, want find-colored-blk", p.Name)
	}
	if len(p.LHS) != 2 {
		t.Fatalf("len(LHS) = %d, want 2", len(p.LHS))
	}
	if p.LHS[0].Class != "goal" || p.LHS[1].Class != "block" {
		t.Errorf("classes = %s, %s", p.LHS[0].Class, p.LHS[1].Class)
	}
	if len(p.LHS[1].Tests) != 3 {
		t.Fatalf("block CE has %d tests, want 3", len(p.LHS[1].Tests))
	}
	sel := p.LHS[1].Tests[2]
	if sel.Attr != "selected" || sel.Terms[0].Kind != TermConst || sel.Terms[0].Val.SymName() != "no" {
		t.Errorf("selected test = %+v", sel)
	}
	if len(p.RHS) != 1 || p.RHS[0].Kind != ActModify || p.RHS[0].CE != 2 {
		t.Errorf("RHS = %v", p.RHS)
	}
}

func TestParseNegatedAndPredicates(t *testing.T) {
	src := `
(p pp
    (c1 ^attr1 <x> ^attr2 > 12)
   -(c2 ^attr1 15 ^attr2 <> <x>)
    (c3 ^attr <x> ^size { > 2 <= 10 } ^kind << red green blue >>)
  -->
    (remove 1))
`
	p, err := ParseProduction(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if !p.LHS[1].Negated {
		t.Error("CE 2 should be negated")
	}
	if p.LHS[0].Negated || p.LHS[2].Negated {
		t.Error("CEs 1 and 3 should not be negated")
	}
	gt := p.LHS[0].Tests[1].Terms[0]
	if gt.Kind != TermConst || gt.Pred != PredGt || gt.Val.Num != 12 {
		t.Errorf("attr2 term = %+v", gt)
	}
	ne := p.LHS[1].Tests[1].Terms[0]
	if ne.Kind != TermVar || ne.Pred != PredNe || ne.Var != "x" {
		t.Errorf("negated CE attr2 term = %+v", ne)
	}
	conj := p.LHS[2].Tests[1]
	if len(conj.Terms) != 2 || conj.Terms[0].Pred != PredGt || conj.Terms[1].Pred != PredLe {
		t.Errorf("conjunction = %+v", conj)
	}
	disj := p.LHS[2].Tests[2].Terms[0]
	if disj.Kind != TermDisj || len(disj.Disj) != 3 {
		t.Errorf("disjunction = %+v", disj)
	}
}

func TestParseTopLevelMake(t *testing.T) {
	src := `
(make goal ^type find-blk ^color red)
(p noop (goal ^type find-blk) --> (halt))
(make block ^id 1 ^color red ^selected no)
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(prog.Productions) != 1 || len(prog.InitialWM) != 2 {
		t.Fatalf("got %d productions, %d initial WMEs", len(prog.Productions), len(prog.InitialWM))
	}
	if prog.InitialWM[1].Get("id").Num != 1 {
		t.Errorf("block id = %v", prog.InitialWM[1].Get("id"))
	}
}

func TestParseComments(t *testing.T) {
	src := `
; a full-line comment
(p c (a ^v 1) --> (halt)) ; trailing comment
`
	if _, err := Parse(src); err != nil {
		t.Fatalf("parse with comments: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no-positive-ce", `(p x -(a ^v 1) --> (halt))`, "no positive condition"},
		{"empty-lhs", `(p x --> (halt))`, "empty left-hand side"},
		{"bad-action", `(p x (a) --> (frobnicate))`, "unknown action"},
		{"unbound-rhs-var", `(p x (a ^v 1) --> (make b ^v <z>))`, "unbound variable"},
		{"modify-negated", `(p x (a ^v 1) -(b ^v 2) --> (modify 2 ^v 3))`, "negated CE"},
		{"modify-out-of-range", `(p x (a ^v 1) --> (remove 4))`, "references CE 4"},
		{"var-in-disj", `(p x (a ^v << <y> 2 >>) --> (halt))`, "not allowed inside"},
		{"empty-disj", `(p x (a ^v << >>) --> (halt))`, "empty disjunction"},
		{"empty-conj", `(p x (a ^v { }) --> (halt))`, "empty conjunction"},
		{"unterminated", `(p x (a ^v 1) --> (halt)`, "expected"},
		{"top-level-junk", `42`, "expected '('"},
		{"make-var", `(make a ^v <x>)`, "may not contain variables"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestProductionRoundTrip(t *testing.T) {
	src := `
(p rt
    (c1 ^a <x> ^b { > 3 <> 7 })
   -(c2 ^a <x> ^k << p q >>)
  -->
    (make c3 ^a <x>)
    (write done <x>)
    (bind <y> 9)
    (remove 1))
`
	p1, err := ParseProduction(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p2, err := ParseProduction(p1.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", p1.String(), err)
	}
	if p1.String() != p2.String() {
		t.Errorf("round trip mismatch:\n%s\n---\n%s", p1, p2)
	}
}

func TestLexQuotedAtom(t *testing.T) {
	src := `(p q (a ^v |hello world|) --> (halt))`
	p, err := ParseProduction(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := p.LHS[0].Tests[0].Terms[0].Val.SymName(); got != "hello world" {
		t.Errorf("quoted atom = %q", got)
	}
}

func TestNumbersAndSymbols(t *testing.T) {
	if v := parseAtom("-3.5"); v.Kind != NumValue || v.Num != -3.5 {
		t.Errorf("-3.5 parsed as %v", v)
	}
	if v := parseAtom("+7"); v.Kind != NumValue || v.Num != 7 {
		t.Errorf("+7 parsed as %v", v)
	}
	if v := parseAtom("Inf"); v.Kind != SymValue {
		t.Errorf("Inf should be a symbol, got %v", v)
	}
	if v := parseAtom("a-b-17"); v.Kind != SymValue || v.SymName() != "a-b-17" {
		t.Errorf("a-b-17 parsed as %v", v)
	}
}
