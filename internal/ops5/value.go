// Package ops5 implements the OPS5 production-system language substrate:
// values, working-memory elements, condition elements, productions, a
// lexer/parser for the classic parenthesized syntax, and the basic
// matching semantics shared by every matcher in this repository.
//
// The dialect implemented here follows Forgy's OPS5 as described in the
// paper (Gupta, Forgy, Newell, Wedig, ISCA 1986) and in Brownston et al.,
// "Programming Expert Systems in OPS5": productions are
//
//	(p name
//	    (class ^attr value ^attr <var> ...)
//	   -(class ^attr <> 7)            ; negated condition element
//	  -->
//	    (make class ^attr <var>)
//	    (modify 2 ^attr value)
//	    (remove 1))
//
// Attribute tests support constants, variables, the predicates
// <>, <, >, <=, >=, =, disjunctions << a b c >> and conjunctions { ... }.
package ops5

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sym"
)

// ValueKind discriminates the kinds of atomic OPS5 values.
type ValueKind uint8

// The kinds of atomic values that may appear in working memory.
const (
	// NilValue is the value of an attribute that was never set.
	NilValue ValueKind = iota
	// SymValue is a symbolic atom such as yes, goal or block-17.
	SymValue
	// NumValue is a numeric atom. OPS5 numbers are represented as
	// float64; integer literals round-trip exactly.
	NumValue
)

// Value is an atomic OPS5 value: nil, a symbol, or a number. Symbols are
// held as interned IDs (internal/sym), so a Value is 16 pointer-free
// bytes, equality is an integer compare, and hashing never touches
// string bytes. The zero Value is the nil value.
type Value struct {
	Kind ValueKind
	sym  sym.ID
	Num  float64
}

// Sym returns a symbolic value, interning s in the global symbol table.
func Sym(s string) Value { return Value{Kind: SymValue, sym: sym.Intern(s)} }

// SymID returns a symbolic value holding an already-interned ID.
func SymID(id sym.ID) Value { return Value{Kind: SymValue, sym: id} }

// Num returns a numeric value.
func Num(n float64) Value { return Value{Kind: NumValue, Num: n} }

// Nil reports whether v is the nil (unset) value.
func (v Value) Nil() bool { return v.Kind == NilValue }

// SymID returns the interned symbol ID (sym.None for non-symbols).
func (v Value) SymID() sym.ID {
	if v.Kind != SymValue {
		return sym.None
	}
	return v.sym
}

// SymName returns the symbol's string ("" for non-symbols).
func (v Value) SymName() string {
	if v.Kind != SymValue {
		return ""
	}
	return sym.Name(v.sym)
}

// Equal reports whether two values are identical atoms. Symbol equality
// is a single integer compare — the point of interning.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case SymValue:
		return v.sym == o.sym
	case NumValue:
		return v.Num == o.Num
	default:
		return true
	}
}

// Less reports whether v orders before o. Numbers order numerically;
// symbols order lexically (via the interner, so display order stays
// stable regardless of interning order); numbers order before symbols;
// nil orders first. OPS5 predicates < > <= >= are only meaningful on
// numbers, but a total order is useful for deterministic output.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case SymValue:
		if v.sym == o.sym {
			return false
		}
		return sym.Name(v.sym) < sym.Name(o.sym)
	case NumValue:
		return v.Num < o.Num
	default:
		return false
	}
}

// String renders the value in OPS5 surface syntax. Symbols that would
// not survive re-lexing as a bare atom (spaces, delimiters, digits-only
// spellings, variable or predicate look-alikes) are |quoted|.
func (v Value) String() string {
	switch v.Kind {
	case SymValue:
		s := sym.Name(v.sym)
		if symNeedsQuote(s) {
			return "|" + s + "|"
		}
		return s
	case NumValue:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	default:
		return "nil"
	}
}

// AppendValueKey appends a deterministic byte encoding of v to b and
// returns the extended slice. Equal values (per Equal) always encode
// identically, so the encoding can key hash buckets for equality joins.
// Symbols encode their fixed-width interned ID, so the encoding is
// injective within a process; like the IDs themselves it is not stable
// across processes and must never be persisted or shipped. Negative
// zero encodes as zero to stay consistent with Equal.
func AppendValueKey(b []byte, v Value) []byte {
	switch v.Kind {
	case SymValue:
		id := v.sym
		b = append(b, 's', byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	case NumValue:
		n := v.Num
		if n == 0 {
			n = 0
		}
		bits := math.Float64bits(n)
		b = append(b, 'n',
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	default:
		b = append(b, 'x')
	}
	return b
}

// HashSeed is the initial accumulator for HashValue chains (the FNV-1a
// offset basis).
const HashSeed uint64 = 14695981039346656037

// HashValue folds v into the running FNV-1a hash h and returns it.
// Like AppendValueKey it is Equal-consistent — equal values (per Equal)
// always hash identically — but not injective, so callers keying hash
// buckets by it must re-verify candidates with the full test; a
// collision only widens a bucket, never loses a match. Symbols hash
// their 4-byte interned ID, so the per-probe cost is constant — no
// string bytes are touched on the join hot path. Negative zero hashes
// as zero to stay consistent with Equal.
func HashValue(h uint64, v Value) uint64 {
	const prime = 1099511628211
	switch v.Kind {
	case SymValue:
		id := uint32(v.sym)
		h = (h ^ 's') * prime
		h = (h ^ uint64(id&0xff)) * prime
		h = (h ^ uint64((id>>8)&0xff)) * prime
		h = (h ^ uint64((id>>16)&0xff)) * prime
		h = (h ^ uint64(id>>24)) * prime
	case NumValue:
		n := v.Num
		if n == 0 {
			n = 0
		}
		bits := math.Float64bits(n)
		h = (h ^ 'n') * prime
		for i := 0; i < 8; i++ {
			h = (h ^ (bits & 0xff)) * prime
			bits >>= 8
		}
	default:
		h = (h ^ 'x') * prime
	}
	return h
}

// atomString renders any identifier that lexes as an atom (class
// names, attribute names, production names), quoting when necessary.
func atomString(s string) string {
	if symNeedsQuote(s) {
		return "|" + s + "|"
	}
	return s
}

// symNeedsQuote reports whether a symbol must be |quoted| to round-trip
// through the lexer as the same symbolic atom.
func symNeedsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '(', ')', '{', '}', '^', ';', '|', ' ', '\t', '\n', '\r':
			return true
		}
		if c < 0x20 || c == 0x7f {
			return true // control characters only survive quoted
		}
	}
	if looksNumeric(s) {
		return true // would re-lex as a number
	}
	if _, isVar := isVarAtom(s); isVar {
		return true // would re-lex as a variable
	}
	if _, isPred := predFromAtom(s); isPred {
		return true // would re-lex as a predicate
	}
	if strings.Contains(s, "<<") || strings.Contains(s, ">>") || s == "-->" {
		return true // the lexer splits bare atoms at << and >>
	}
	return false
}

// Predicate is a comparison operator usable in a condition-element test.
type Predicate uint8

// The OPS5 test predicates.
const (
	PredEq       Predicate = iota // equality (the default when no operator given)
	PredNe                        // <>
	PredLt                        // <
	PredGt                        // >
	PredLe                        // <=
	PredGe                        // >=
	PredSameType                  // <=> : same type (both numbers or both symbols)
)

// String renders the predicate in OPS5 surface syntax.
func (p Predicate) String() string {
	switch p {
	case PredEq:
		return "="
	case PredNe:
		return "<>"
	case PredLt:
		return "<"
	case PredGt:
		return ">"
	case PredLe:
		return "<="
	case PredGe:
		return ">="
	case PredSameType:
		return "<=>"
	default:
		return fmt.Sprintf("pred(%d)", uint8(p))
	}
}

// Compare applies predicate p to (a, b), i.e. evaluates "a p b".
// Ordering predicates on mixed or symbolic operands are false, matching
// OPS5's behaviour of failing ordering tests on non-numbers.
func (p Predicate) Compare(a, b Value) bool {
	switch p {
	case PredEq:
		return a.Equal(b)
	case PredNe:
		return !a.Equal(b)
	case PredSameType:
		return a.Kind == b.Kind
	}
	if a.Kind != NumValue || b.Kind != NumValue {
		return false
	}
	switch p {
	case PredLt:
		return a.Num < b.Num
	case PredGt:
		return a.Num > b.Num
	case PredLe:
		return a.Num <= b.Num
	case PredGe:
		return a.Num >= b.Num
	default:
		return false
	}
}
