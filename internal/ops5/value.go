// Package ops5 implements the OPS5 production-system language substrate:
// values, working-memory elements, condition elements, productions, a
// lexer/parser for the classic parenthesized syntax, and the basic
// matching semantics shared by every matcher in this repository.
//
// The dialect implemented here follows Forgy's OPS5 as described in the
// paper (Gupta, Forgy, Newell, Wedig, ISCA 1986) and in Brownston et al.,
// "Programming Expert Systems in OPS5": productions are
//
//	(p name
//	    (class ^attr value ^attr <var> ...)
//	   -(class ^attr <> 7)            ; negated condition element
//	  -->
//	    (make class ^attr <var>)
//	    (modify 2 ^attr value)
//	    (remove 1))
//
// Attribute tests support constants, variables, the predicates
// <>, <, >, <=, >=, =, disjunctions << a b c >> and conjunctions { ... }.
package ops5

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind discriminates the kinds of atomic OPS5 values.
type ValueKind uint8

// The kinds of atomic values that may appear in working memory.
const (
	// NilValue is the value of an attribute that was never set.
	NilValue ValueKind = iota
	// SymValue is a symbolic atom such as yes, goal or block-17.
	SymValue
	// NumValue is a numeric atom. OPS5 numbers are represented as
	// float64; integer literals round-trip exactly.
	NumValue
)

// Value is an atomic OPS5 value: nil, a symbol, or a number.
// The zero Value is the nil value.
type Value struct {
	Kind ValueKind
	Sym  string
	Num  float64
}

// Sym returns a symbolic value.
func Sym(s string) Value { return Value{Kind: SymValue, Sym: s} }

// Num returns a numeric value.
func Num(n float64) Value { return Value{Kind: NumValue, Num: n} }

// Nil reports whether v is the nil (unset) value.
func (v Value) Nil() bool { return v.Kind == NilValue }

// Equal reports whether two values are identical atoms.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case SymValue:
		return v.Sym == o.Sym
	case NumValue:
		return v.Num == o.Num
	default:
		return true
	}
}

// Less reports whether v orders before o. Numbers order numerically;
// symbols order lexically; numbers order before symbols; nil orders first.
// OPS5 predicates < > <= >= are only meaningful on numbers, but a total
// order is useful for deterministic output.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case SymValue:
		return v.Sym < o.Sym
	case NumValue:
		return v.Num < o.Num
	default:
		return false
	}
}

// String renders the value in OPS5 surface syntax. Symbols that would
// not survive re-lexing as a bare atom (spaces, delimiters, digits-only
// spellings, variable or predicate look-alikes) are |quoted|.
func (v Value) String() string {
	switch v.Kind {
	case SymValue:
		if symNeedsQuote(v.Sym) {
			return "|" + v.Sym + "|"
		}
		return v.Sym
	case NumValue:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	default:
		return "nil"
	}
}

// AppendValueKey appends a deterministic byte encoding of v to b and
// returns the extended slice. Equal values (per Equal) always encode
// identically, so the encoding can key hash buckets for equality
// joins. It is not guaranteed injective — symbols containing the
// separator byte can collide — so callers must re-verify candidates
// with the full test; a collision only widens a bucket, never loses a
// match. Negative zero encodes as zero to stay consistent with Equal.
func AppendValueKey(b []byte, v Value) []byte {
	switch v.Kind {
	case SymValue:
		b = append(b, 's')
		b = append(b, v.Sym...)
	case NumValue:
		n := v.Num
		if n == 0 {
			n = 0
		}
		b = append(b, 'n')
		b = strconv.AppendFloat(b, n, 'g', -1, 64)
	default:
		b = append(b, 'x')
	}
	return append(b, 0x1f)
}

// HashSeed is the initial accumulator for HashValue chains (the FNV-1a
// offset basis).
const HashSeed uint64 = 14695981039346656037

// HashValue folds v into the running FNV-1a hash h and returns it.
// Like AppendValueKey it is Equal-consistent — equal values (per Equal)
// always hash identically — but not injective, so callers keying hash
// buckets by it must re-verify candidates with the full test; a
// collision only widens a bucket, never loses a match. Unlike
// AppendValueKey it never allocates. Negative zero hashes as zero to
// stay consistent with Equal.
func HashValue(h uint64, v Value) uint64 {
	const prime = 1099511628211
	switch v.Kind {
	case SymValue:
		h = (h ^ 's') * prime
		for i := 0; i < len(v.Sym); i++ {
			h = (h ^ uint64(v.Sym[i])) * prime
		}
	case NumValue:
		n := v.Num
		if n == 0 {
			n = 0
		}
		bits := math.Float64bits(n)
		h = (h ^ 'n') * prime
		for i := 0; i < 8; i++ {
			h = (h ^ (bits & 0xff)) * prime
			bits >>= 8
		}
	default:
		h = (h ^ 'x') * prime
	}
	return h
}

// atomString renders any identifier that lexes as an atom (class
// names, attribute names, production names), quoting when necessary.
func atomString(s string) string {
	if symNeedsQuote(s) {
		return "|" + s + "|"
	}
	return s
}

// symNeedsQuote reports whether a symbol must be |quoted| to round-trip
// through the lexer as the same symbolic atom.
func symNeedsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch c {
		case '(', ')', '{', '}', '^', ';', '|', ' ', '\t', '\n', '\r':
			return true
		}
		if c < 0x20 || c == 0x7f {
			return true // control characters only survive quoted
		}
	}
	if looksNumeric(s) {
		return true // would re-lex as a number
	}
	if _, isVar := isVarAtom(s); isVar {
		return true // would re-lex as a variable
	}
	if _, isPred := predFromAtom(s); isPred {
		return true // would re-lex as a predicate
	}
	if strings.Contains(s, "<<") || strings.Contains(s, ">>") || s == "-->" {
		return true // the lexer splits bare atoms at << and >>
	}
	return false
}

// Predicate is a comparison operator usable in a condition-element test.
type Predicate uint8

// The OPS5 test predicates.
const (
	PredEq       Predicate = iota // equality (the default when no operator given)
	PredNe                        // <>
	PredLt                        // <
	PredGt                        // >
	PredLe                        // <=
	PredGe                        // >=
	PredSameType                  // <=> : same type (both numbers or both symbols)
)

// String renders the predicate in OPS5 surface syntax.
func (p Predicate) String() string {
	switch p {
	case PredEq:
		return "="
	case PredNe:
		return "<>"
	case PredLt:
		return "<"
	case PredGt:
		return ">"
	case PredLe:
		return "<="
	case PredGe:
		return ">="
	case PredSameType:
		return "<=>"
	default:
		return fmt.Sprintf("pred(%d)", uint8(p))
	}
}

// Compare applies predicate p to (a, b), i.e. evaluates "a p b".
// Ordering predicates on mixed or symbolic operands are false, matching
// OPS5's behaviour of failing ordering tests on non-numbers.
func (p Predicate) Compare(a, b Value) bool {
	switch p {
	case PredEq:
		return a.Equal(b)
	case PredNe:
		return !a.Equal(b)
	case PredSameType:
		return a.Kind == b.Kind
	}
	if a.Kind != NumValue || b.Kind != NumValue {
		return false
	}
	switch p {
	case PredLt:
		return a.Num < b.Num
	case PredGt:
		return a.Num > b.Num
	case PredLe:
		return a.Num <= b.Num
	case PredGe:
		return a.Num >= b.Num
	default:
		return false
	}
}
