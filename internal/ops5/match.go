package ops5

// Bindings maps variable names to their bound values during a match.
type Bindings map[string]Value

// Clone returns an independent copy of the bindings.
func (b Bindings) Clone() Bindings {
	c := make(Bindings, len(b)+2)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// MatchTerm evaluates one term against an attribute value under the given
// bindings. When the term is an equality variable that is not yet bound,
// it returns the new binding to record (bind != "").
func MatchTerm(t Term, v Value, b Bindings) (ok bool, bindVar string, bindVal Value) {
	switch t.Kind {
	case TermConst:
		return t.Pred.Compare(v, t.Val), "", Value{}
	case TermDisj:
		for _, d := range t.Disj {
			if v.Equal(d) {
				return true, "", Value{}
			}
		}
		return false, "", Value{}
	case TermVar:
		bound, have := b[t.Var]
		if !have {
			if t.Pred == PredEq {
				// First occurrence binds.
				return true, t.Var, v
			}
			// A predicate test against an unbound variable cannot be
			// evaluated; OPS5 requires the binding occurrence to come
			// first lexically. Treat as failure.
			return false, "", Value{}
		}
		return t.Pred.Compare(v, bound), "", Value{}
	default: // TermAny
		return true, "", Value{}
	}
}

// MatchCE matches a WME against a condition element under existing
// bindings. On success it returns the extended bindings (a fresh map when
// new variables were bound; the original map is never mutated).
func MatchCE(ce *CondElement, w *WME, b Bindings) (Bindings, bool) {
	if !ce.classMatches(w) {
		return nil, false
	}
	cur := b
	owned := false // whether cur is a private copy we may mutate
	for _, at := range ce.Tests {
		v := at.valueIn(w)
		for _, t := range at.Terms {
			ok, bindVar, bindVal := MatchTerm(t, v, cur)
			if !ok {
				return nil, false
			}
			if bindVar != "" {
				if !owned {
					cur = cur.Clone()
					owned = true
				}
				cur[bindVar] = bindVal
			}
		}
	}
	if !owned && cur == nil {
		cur = Bindings{}
	}
	return cur, true
}

// MatchCEDeferred matches a WME against a condition element like
// MatchCE, except that predicate tests on variables not bound in b (and
// not bound earlier within this CE) are deferred — they pass without
// binding. This is the consistency test for *partial* combinations of
// condition elements (the full-state matcher's subset lattice): within
// a subset, a test whose variable binder lies outside the subset cannot
// be evaluated yet. For complete tuples every binder is present, so the
// deferred and strict semantics coincide.
func MatchCEDeferred(ce *CondElement, w *WME, b Bindings) (Bindings, bool) {
	if !ce.classMatches(w) {
		return nil, false
	}
	cur := b
	owned := false
	for _, at := range ce.Tests {
		v := at.valueIn(w)
		for _, t := range at.Terms {
			if t.Kind == TermVar {
				if _, have := cur[t.Var]; !have && t.Pred != PredEq {
					continue // deferred: binder outside this subset
				}
			}
			ok, bindVar, bindVal := MatchTerm(t, v, cur)
			if !ok {
				return nil, false
			}
			if bindVar != "" {
				if !owned {
					cur = cur.Clone()
					owned = true
				}
				cur[bindVar] = bindVal
			}
		}
	}
	if !owned && cur == nil {
		cur = Bindings{}
	}
	return cur, true
}

// MatchesAlone reports whether the WME passes the CE's class and
// single-WME tests treating every variable as unbound: constants,
// disjunctions, and within-CE variable consistency. Predicate tests on
// unbound variables fail (OPS5 requires the binding occurrence first).
func MatchesAlone(ce *CondElement, w *WME) bool {
	_, ok := MatchCE(ce, w, nil)
	return ok
}

// AlphaPass reports whether the WME passes the CE's alpha-level tests:
// constants, disjunctions, and within-CE variable consistency. Tests
// involving variables bound in *other* condition elements are deferred
// to join time, so a predicate term whose variable is not bound inside
// this CE passes here. AlphaPass therefore accepts a superset of the
// WMEs that can match the CE under some outer bindings; it is the
// alpha-memory membership test used by Rete and TREAT.
func AlphaPass(ce *CondElement, w *WME) bool {
	if !ce.classMatches(w) {
		return false
	}
	local := Bindings{}
	for _, at := range ce.Tests {
		v := at.valueIn(w)
		for _, t := range at.Terms {
			switch t.Kind {
			case TermVar:
				bound, have := local[t.Var]
				switch {
				case !have && t.Pred == PredEq:
					local[t.Var] = v
				case !have:
					// Bound in another CE (or an OPS5 ordering error
					// caught at compile time); defer to join.
				default:
					if !t.Pred.Compare(v, bound) {
						return false
					}
				}
			default:
				ok, _, _ := MatchTerm(t, v, nil)
				if !ok {
					return false
				}
			}
		}
	}
	return true
}

// Instantiation is a satisfied production: the rule plus the WMEs matched
// by its positive condition elements, in LHS order. Negated CEs
// contribute no WME. It also carries the consistent variable bindings so
// the RHS can be evaluated; matchers may leave Bindings nil and let
// EvalBindings recompute them at fire time (most instantiations enter
// the conflict set and leave without ever firing, so deferring the
// binding walk keeps it off the match hot path).
type Instantiation struct {
	Production *Production
	// WMEs holds one element per LHS condition element; entries for
	// negated CEs are nil.
	WMEs     []*WME
	Bindings Bindings

	// key caches the canonical identity computed by Key. Instantiations
	// are immutable, and every conflict-set operation keys on it.
	key string

	// wmeArr is inline storage for WMEs (see NewInstantiation).
	wmeArr [8]*WME
}

// NewInstantiation returns an instantiation with WMEs sized for n
// condition elements, stored inline when n is small — matchers create
// one per conflict-set insertion, so this saves the slice allocation on
// the hot path.
func NewInstantiation(p *Production, n int) *Instantiation {
	in := &Instantiation{Production: p}
	if n <= len(in.wmeArr) {
		in.WMEs = in.wmeArr[:n]
	} else {
		in.WMEs = make([]*WME, n)
	}
	return in
}

// EvalBindings returns the instantiation's variable bindings, computing
// (and caching) them by walking the LHS when the matcher deferred them.
// Negated CEs bind nothing an RHS can use, so only positive CEs are
// walked — the same recomputation Rete terminals used to do eagerly.
func (in *Instantiation) EvalBindings() Bindings {
	if in.Bindings == nil {
		// The WMEs are known to match, so this only collects first
		// (binding) occurrences into one owned map — no per-CE cloning.
		b := Bindings{}
		for i, ce := range in.Production.LHS {
			if ce.Negated || in.WMEs[i] == nil {
				continue
			}
			w := in.WMEs[i]
			for _, at := range ce.Tests {
				v := at.valueIn(w)
				for _, t := range at.Terms {
					if ok, bindVar, bindVal := MatchTerm(t, v, b); ok && bindVar != "" {
						b[bindVar] = bindVal
					}
				}
			}
		}
		in.Bindings = b
	}
	return in.Bindings
}

// TimeTags returns the time tags of the matched (positive) WMEs in LHS
// order. Used by conflict resolution and for canonical identity.
func (in *Instantiation) TimeTags() []int {
	tags := make([]int, 0, len(in.WMEs))
	for _, w := range in.WMEs {
		if w != nil {
			tags = append(tags, w.TimeTag)
		}
	}
	return tags
}

// Key returns a canonical identity string: production name plus the
// positive-CE time tags in order. Two instantiations with equal keys are
// the same instantiation. The string is built once and cached — the
// conflict set keys every insert, remove and contains on it.
func (in *Instantiation) Key() string {
	if in.key != "" {
		return in.key
	}
	buf := make([]byte, 0, len(in.Production.Name)+8*len(in.WMEs))
	buf = append(buf, in.Production.Name...)
	for _, w := range in.WMEs {
		if w != nil {
			buf = append(buf, '|')
			buf = appendInt(buf, w.TimeTag)
		} else {
			buf = append(buf, '|', '-')
		}
	}
	in.key = string(buf)
	return in.key
}

// appendInt appends the decimal form of n to buf without allocating.
func appendInt(buf []byte, n int) []byte {
	if n == 0 {
		return append(buf, '0')
	}
	if n < 0 {
		buf = append(buf, '-')
		n = -n
	}
	var tmp [24]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(buf, tmp[i:]...)
}

// SatisfyBruteForce computes every instantiation of production p against
// the given working-memory elements by exhaustive search. It is the
// semantic reference implementation all matchers are tested against, and
// the inner loop of the non-state-saving matcher.
func SatisfyBruteForce(p *Production, wm []*WME) []*Instantiation {
	var out []*Instantiation
	wmes := make([]*WME, len(p.LHS))
	var rec func(ceIdx int, b Bindings)
	rec = func(ceIdx int, b Bindings) {
		if ceIdx == len(p.LHS) {
			inst := &Instantiation{
				Production: p,
				WMEs:       append([]*WME(nil), wmes...),
				Bindings:   b.Clone(),
			}
			out = append(out, inst)
			return
		}
		ce := p.LHS[ceIdx]
		if ce.Negated {
			// Negated CE: succeed only if no WME matches under b.
			for _, w := range wm {
				if _, ok := MatchCE(ce, w, b); ok {
					return
				}
			}
			wmes[ceIdx] = nil
			rec(ceIdx+1, b)
			return
		}
		for _, w := range wm {
			if nb, ok := MatchCE(ce, w, b); ok {
				wmes[ceIdx] = w
				rec(ceIdx+1, nb)
				wmes[ceIdx] = nil
			}
		}
	}
	rec(0, Bindings{})
	return out
}
