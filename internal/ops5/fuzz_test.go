package ops5

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that anything it
// accepts as a production round-trips through String and reparses to
// the same rendering. Run with `go test -fuzz=FuzzParse ./internal/ops5`
// for continuous fuzzing; the seed corpus runs as a normal test.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`(p x (a ^v 1) --> (halt))`,
		`(p find-colored-blk (goal ^type find-blk ^color <c>)
		   (block ^id <i> ^color <c> ^selected no) --> (modify 2 ^selected yes))`,
		`(p n (a ^v <x>) -(b ^v <x>) --> (remove 1))`,
		`(p c (a ^v { > 1 <= 9 <> 5 }) --> (make b ^v << red green 3 >>))`,
		`(p e { <g> (goal ^s active) } --> (modify <g> ^s done))`,
		`(p m (a ^v <x>) --> (make b ^v (compute <x> * 2 + 1)))`,
		`(literalize a v w) (make a ^v 1) (p q (a ^v 1) --> (write hi (crlf) there))`,
		`(p bad (a ^v`,
		`)))((`,
		`(p x (a ^v |quoted atom|) --> (halt))`,
		`; comment only`,
		`(make c ^attr -3.25)`,
		``,
		`(p p1 (c1 ^a1 <x> ^a2 > 12) -(c2 ^a1 15 ^a2 <> <x>) (c3 ^a <x>) --> (remove 1))`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		for _, p := range prog.Productions {
			rendered := p.String()
			back, err := ParseProduction(rendered)
			if err != nil {
				t.Fatalf("accepted production does not reparse: %v\nsource: %q\nrendered:\n%s",
					err, src, rendered)
			}
			if got := back.String(); got != rendered {
				t.Fatalf("round trip unstable:\n%s\n----\n%s", rendered, got)
			}
		}
		for _, w := range prog.InitialWM {
			_ = w.String()
		}
	})
}

// FuzzMatchCE checks the matcher primitives never panic on arbitrary
// CE/WME combinations built from fuzzed atoms.
func FuzzMatchCE(f *testing.F) {
	f.Add("goal", "type", "find", "goal", "type", "find")
	f.Add("a", "v", "1", "a", "v", "2")
	f.Fuzz(func(t *testing.T, ceClass, ceAttr, ceVal, wClass, wAttr, wVal string) {
		if strings.ContainsAny(ceClass+ceAttr+ceVal+wClass+wAttr+wVal, "(){}^;|") {
			return
		}
		ce := &CondElement{Class: ceClass, Tests: []AttrTest{{
			Attr:  ceAttr,
			Terms: []Term{{Kind: TermConst, Pred: PredEq, Val: parseAtom(ceVal)}},
		}}}
		w := NewWME(wClass, wAttr, parseAtom(wVal))
		_, _ = MatchCE(ce, w, nil)
		_ = AlphaPass(ce, w)
		_, _ = MatchCEDeferred(ce, w, Bindings{})
	})
}
