package ops5

import (
	"strings"
	"testing"
)

func TestElementVariables(t *testing.T) {
	src := `
(p ev
    { <g> (goal ^type find ^color <c>) }
    { (block ^color <c> ^selected no) <b> }
  -->
    (modify <b> ^selected yes)
    (remove <g>))
`
	p, err := ParseProduction(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.LHS[0].ElemVar != "g" || p.LHS[1].ElemVar != "b" {
		t.Errorf("element vars = %q, %q", p.LHS[0].ElemVar, p.LHS[1].ElemVar)
	}
	if p.RHS[0].CE != 2 || p.RHS[0].CEVar != "b" {
		t.Errorf("modify resolved to CE %d (var %q), want 2", p.RHS[0].CE, p.RHS[0].CEVar)
	}
	if p.RHS[1].CE != 1 {
		t.Errorf("remove resolved to CE %d, want 1", p.RHS[1].CE)
	}
	// Round trip.
	p2, err := ParseProduction(p.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, p.String())
	}
	if p.String() != p2.String() {
		t.Errorf("round trip:\n%s\n%s", p, p2)
	}
}

func TestElementVariableErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unknown", `(p x (a ^v 1) --> (remove <zz>))`, "unknown element variable"},
		{"negated", `(p x (a ^v 1) -{ <g> (b ^v 2) } --> (remove 1))`, "negated condition element"},
		{"dup", `(p x { <g> (a ^v 1) } { <g> (b ^v 2) } --> (remove 1))`, "bound twice"},
		{"clash", `(p x (a ^v <g>) { <g> (b ^v 2) } --> (remove 1))`, "both an element variable"},
		{"junk-brace", `(p x { foo (a ^v 1) } --> (remove 1))`, "expected <element-variable>"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseProduction(c.src)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
}
