package server

// Golden test for the /v1 wire surface. The JSON shapes of every
// request and response type on the versioned HTTP API are rendered —
// field names, JSON tags, types, omitempty — into a canonical text
// form and compared against testdata/v1_surface.golden. Renaming,
// removing or retyping a field fails here first: /v1 is a compatibility
// promise, and changing its shapes requires a deliberate golden update
// (run with -update-golden) plus, for breaking changes, a version bump.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/v1_surface.golden from the current types")

// v1Surface enumerates every type that crosses the /v1 wire. Adding a
// type here extends the frozen surface; removing one shrinks it — both
// show up as golden diffs.
func v1Surface() map[string]any {
	return map[string]any{
		"CreateRequest":     CreateRequest{},
		"WireChange":        WireChange{},
		"ChangesRequest":    ChangesRequest{},
		"ChangesResponse":   ChangesResponse{},
		"RunRequest":        RunRequest{},
		"RunResponse":       RunResponse{},
		"StreamEvent":       StreamEvent{},
		"StreamResponse":    StreamResponse{},
		"WireWME":           WireWME{},
		"WireInst":          WireInst{},
		"SessionResponse":   SessionResponse{},
		"SnapshotResponse":  SnapshotResponse{},
		"WireSpan":          WireSpan{},
		"TraceResponse":     TraceResponse{},
		"WireProfileNode":   WireProfileNode{},
		"WireMatchStats":    WireMatchStats{},
		"WireWorkerStat":    WireWorkerStat{},
		"WireIndex":         WireIndex{},
		"WirePhaseSeconds":  WirePhaseSeconds{},
		"WireWorkerLoss":    WireWorkerLoss{},
		"WireTaskBucket":    WireTaskBucket{},
		"WireLossComponent": WireLossComponent{},
		"WireLoss":          WireLoss{},
		"LossResponse":      LossResponse{},
		"ProfileResponse":   ProfileResponse{},
		"ErrorResponse":     ErrorResponse{},
	}
}

// shapeOf renders one type's JSON shape, one line per field:
// "Type.FieldName json-tag go-type". Struct-typed fields recurse only
// when the field type is itself in the surface map (rendered under its
// own name), so each shape line has exactly one owner.
func shapeOf(name string, v any) []string {
	t := reflect.TypeOf(v)
	var lines []string
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		if tag == "" {
			tag = "(untagged:" + f.Name + ")"
		}
		lines = append(lines, fmt.Sprintf("%s.%s\t%s\t%s", name, f.Name, tag, f.Type.String()))
	}
	return lines
}

func renderSurface() string {
	surface := v1Surface()
	names := make([]string, 0, len(surface))
	for n := range surface {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("# /v1 JSON wire surface. Regenerate with:\n")
	b.WriteString("#   go test ./internal/server -run TestV1SurfaceGolden -update-golden\n")
	b.WriteString("# A diff here means the public API shape changed — update deliberately.\n")
	for _, n := range names {
		for _, line := range shapeOf(n, surface[n]) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func TestV1SurfaceGolden(t *testing.T) {
	got := renderSurface()
	path := filepath.Join("testdata", "v1_surface.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o666); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/v1 JSON surface changed without a golden update.\n"+
			"If this change is intentional, regenerate with:\n"+
			"  go test ./internal/server -run TestV1SurfaceGolden -update-golden\n"+
			"and call out the API change in the PR.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestErrorEnvelopeShape pins the envelope contract itself: exactly
// three fields, code/message/retryable, matching what writeError and
// the cluster package emit.
func TestErrorEnvelopeShape(t *testing.T) {
	lines := shapeOf("ErrorResponse", ErrorResponse{})
	want := []string{
		"ErrorResponse.Code\tcode\tstring",
		"ErrorResponse.Message\tmessage\tstring",
		"ErrorResponse.Retryable\tretryable\tbool",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Fatalf("error envelope shape drifted:\n got %q\nwant %q", lines, want)
	}
}
