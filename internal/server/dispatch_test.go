package server

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockShard occupies the single shard of srv with a request that
// blocks until the returned release func is called.
func blockShard(t *testing.T, srv *Server) (release func()) {
	t.Helper()
	block := make(chan struct{})
	started := make(chan struct{})
	go srv.dispatch(context.Background(), "x", func(sh *shard) error {
		close(started)
		<-block
		return nil
	})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("shard never picked up the blocking request")
	}
	var once sync.Once
	return func() { once.Do(func() { close(block) }) }
}

func TestDispatchBackpressure(t *testing.T) {
	srv := New(Config{Shards: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	defer srv.Close()
	release := blockShard(t, srv)
	defer release()

	// Fill the single mailbox slot behind the blocked request.
	queued := make(chan error, 1)
	go func() {
		queued <- srv.dispatch(context.Background(), "x", func(sh *shard) error { return nil })
	}()
	waitFor(t, func() bool { return len(srv.shards[0].mailbox) == 1 })

	// The next dispatch must be rejected immediately, not queued.
	err := srv.dispatch(context.Background(), "x", func(sh *shard) error { return nil })
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("dispatch on full mailbox = %v, want BusyError", err)
	}
	if busy.Shard != 0 || busy.RetryAfter != 2*time.Second {
		t.Errorf("BusyError = %+v", busy)
	}
	if srv.rejected.Value() != 1 {
		t.Errorf("rejected counter = %d, want 1", srv.rejected.Value())
	}

	release()
	if err := <-queued; err != nil {
		t.Errorf("queued request err = %v", err)
	}
}

func TestDispatchSkipsExpiredQueuedRequests(t *testing.T) {
	srv := New(Config{Shards: 1, QueueDepth: 4})
	defer srv.Close()
	release := blockShard(t, srv)

	// Queue a request, then cancel its context while it waits.
	var ran atomic.Bool
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := srv.dispatch(ctx, "x", func(sh *shard) error {
		ran.Store(true)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("dispatch with cancelled ctx = %v, want context.Canceled", err)
	}

	// Unblock the shard and let it drain; the expired request must be
	// skipped, not executed.
	release()
	if err := srv.dispatch(context.Background(), "x", func(sh *shard) error { return nil }); err != nil {
		t.Fatalf("follow-up dispatch: %v", err)
	}
	if ran.Load() {
		t.Error("expired queued request was executed")
	}
}

func TestDispatchRecoversPanics(t *testing.T) {
	srv := New(Config{Shards: 1, QueueDepth: 4})
	defer srv.Close()
	err := srv.dispatch(context.Background(), "x", func(sh *shard) error {
		panic("session bug")
	})
	if err == nil || !strings.Contains(err.Error(), "session bug") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	if srv.panics.Value() != 1 {
		t.Errorf("panics counter = %d, want 1", srv.panics.Value())
	}
	// The shard must still be alive.
	if err := srv.dispatch(context.Background(), "x", func(sh *shard) error { return nil }); err != nil {
		t.Fatalf("shard dead after panic: %v", err)
	}
}

func TestDispatchAfterClose(t *testing.T) {
	srv := New(Config{Shards: 2, QueueDepth: 4})
	srv.Close()
	srv.Close() // idempotent
	err := srv.dispatch(context.Background(), "x", func(sh *shard) error { return nil })
	if !errors.Is(err, ErrServerClosed) {
		t.Fatalf("dispatch after close = %v, want ErrServerClosed", err)
	}
}

func TestShardAssignmentIsStable(t *testing.T) {
	srv := New(Config{Shards: 8, QueueDepth: 4})
	defer srv.Close()
	for _, id := range []string{"a", "session-42", ""} {
		if srv.shardFor(id) != srv.shardFor(id) {
			t.Errorf("shardFor(%q) not stable", id)
		}
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}
