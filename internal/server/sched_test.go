package server_test

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/server"
)

// skewedSrc concentrates match work on one join — a goal against every
// same-colored (block, block) pair — so the parallel matcher's work
// distribution is lopsided and stealing must kick in.
const skewedSrc = `
(p hot-pair
    (goal ^type pick ^color <c>)
    (block ^id <i> ^color <c>)
    (block ^id <j> ^color <c>)
  -->
    (make out ^r 1))

(p cold
    (marker ^id <m>)
  -->
    (make out ^r 2))
`

// metricValue extracts the numeric value of a psmd_* gauge/counter line
// from text exposition, or -1 when absent.
func metricValue(text, name string) float64 {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestSchedulerMetricsSurfaceSteals drives a skewed workload through a
// parallel-rete session and asserts the scheduler counters reach both
// the /metrics exposition (psmd_steals_total, psmd_sched_park_total)
// and the per-session profile (tasks, steals, per-worker lanes).
func TestSchedulerMetricsSurfaceSteals(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})

	c.must("POST", "/sessions", server.CreateRequest{
		ID: "skew", Program: skewedSrc, Matcher: "parallel-rete", Workers: 8,
	}, nil, http.StatusCreated)

	changes := []server.WireChange{
		{Op: "assert", Class: "goal", Attrs: map[string]any{"type": "pick", "color": "red"}},
	}
	for i := 0; i < 48; i++ {
		changes = append(changes, server.WireChange{
			Op: "assert", Class: "block",
			Attrs: map[string]any{"id": float64(i), "color": "red"},
		})
	}
	var ch server.ChangesResponse
	c.must("POST", "/sessions/skew/changes", server.ChangesRequest{Changes: changes}, &ch, http.StatusOK)
	if ch.ConflictSize != 48*48 {
		t.Fatalf("conflict size = %d, want %d", ch.ConflictSize, 48*48)
	}

	resp, err := http.Get(c.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)

	if v := metricValue(text, "psmd_steals_total"); v <= 0 {
		t.Errorf("psmd_steals_total = %v, want > 0 under skewed parallel workload", v)
	}
	if v := metricValue(text, "psmd_sched_park_total"); v < 0 {
		t.Errorf("psmd_sched_park_total missing from /metrics:\n%s", text)
	}

	var prof server.ProfileResponse
	c.must("GET", "/sessions/skew/profile", nil, &prof, http.StatusOK)
	if prof.MatchStats == nil {
		t.Fatal("profile has no match_stats")
	}
	if prof.MatchStats.Tasks == 0 {
		t.Error("profile match_stats.tasks = 0, want > 0")
	}
	if prof.MatchStats.Steals <= 0 {
		t.Errorf("profile match_stats.steals = %d, want > 0", prof.MatchStats.Steals)
	}
	if len(prof.MatchStats.Workers) != 8 {
		t.Fatalf("profile reports %d worker lanes, want 8", len(prof.MatchStats.Workers))
	}
	var executed int64
	for _, w := range prof.MatchStats.Workers {
		executed += w.Executed
	}
	if executed != prof.MatchStats.Tasks {
		t.Errorf("worker lanes execute %d tasks, match_stats.tasks = %d", executed, prof.MatchStats.Tasks)
	}
}

// TestNoStealConfigDisablesStealing pins the server-level kill switch:
// with Config.NoSteal every session's scheduler runs without stealing,
// so the steal counter stays flat while work still completes.
func TestNoStealConfigDisablesStealing(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1, NoSteal: true, DefaultWorkers: 8})

	c.must("POST", "/sessions", server.CreateRequest{
		ID: "nosteal", Program: skewedSrc, Matcher: "parallel-rete",
	}, nil, http.StatusCreated)

	changes := []server.WireChange{
		{Op: "assert", Class: "goal", Attrs: map[string]any{"type": "pick", "color": "red"}},
	}
	for i := 0; i < 16; i++ {
		changes = append(changes, server.WireChange{
			Op: "assert", Class: "block",
			Attrs: map[string]any{"id": float64(i), "color": "red"},
		})
	}
	var ch server.ChangesResponse
	c.must("POST", "/sessions/nosteal/changes", server.ChangesRequest{Changes: changes}, &ch, http.StatusOK)
	if want := 16 * 16; ch.ConflictSize != want {
		t.Fatalf("conflict size = %d, want %d", ch.ConflictSize, want)
	}

	resp, err := http.Get(c.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v := metricValue(string(raw), "psmd_steals_total"); v != 0 {
		t.Errorf("psmd_steals_total = %v with stealing disabled, want 0", v)
	}

	var prof server.ProfileResponse
	c.must("GET", "/sessions/nosteal/profile", nil, &prof, http.StatusOK)
	if prof.MatchStats == nil || prof.MatchStats.Tasks == 0 {
		t.Fatalf("profile match_stats = %+v, want tasks > 0", prof.MatchStats)
	}
	if got := len(prof.MatchStats.Workers); got != 8 {
		t.Errorf("DefaultWorkers not applied: %d worker lanes, want 8", got)
	}
}
