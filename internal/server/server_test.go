package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/matchtest"
	"repro/internal/ops5"
	"repro/internal/server"
	"repro/internal/sym"
)

// client is a minimal JSON client for the psmd HTTP API. Session
// paths are requested under the current API version prefix.
type client struct {
	t    *testing.T
	base string // versioned base for the sessions API
	raw  string // unversioned base for operational endpoints
	http *http.Client
}

func newClient(t *testing.T, ts *httptest.Server) *client {
	return &client{t: t, base: ts.URL + server.APIVersion, raw: ts.URL, http: ts.Client()}
}

// do sends a request and decodes the JSON response into out (ignored
// when nil). It returns the HTTP status.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// must fails the test unless the call returned the wanted status.
func (c *client) must(method, path string, body, out any, want int) {
	c.t.Helper()
	if got := c.do(method, path, body, out); got != want {
		c.t.Fatalf("%s %s: status %d, want %d", method, path, got, want)
	}
}

func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, newClient(t, ts)
}

// counterSrc counts up to ^limit then halts.
const counterSrc = `
(p count
    (counter ^n <n> ^limit <l>)
  - (counter ^n <l>)
  -->
    (modify 1 ^n (compute <n> + 1)))

(p done
    (counter ^n <n> ^limit <n>)
  -->
    (make result ^n <n>)
    (halt))
`

func TestHTTPEndToEnd(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 2})

	var sess server.SessionResponse
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "counter", Program: counterSrc, Matcher: "rete",
	}, &sess, http.StatusCreated)
	if sess.Productions != 2 || sess.ID != "counter" {
		t.Fatalf("create response = %+v", sess)
	}

	var ch server.ChangesResponse
	c.must("POST", "/sessions/counter/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 5.0}},
	}}, &ch, http.StatusOK)
	if ch.Applied != 1 || len(ch.Tags) != 1 || ch.WMSize != 1 || ch.ConflictSize != 1 {
		t.Fatalf("changes response = %+v", ch)
	}

	var run server.RunResponse
	c.must("POST", "/sessions/counter/run", server.RunRequest{Cycles: 100}, &run, http.StatusOK)
	if !run.Halted || run.Fired != 6 || run.Cycles != 6 {
		t.Fatalf("run response = %+v", run)
	}

	var wm []server.WireWME
	c.must("GET", "/sessions/counter/wm?class=result", nil, &wm, http.StatusOK)
	if len(wm) != 1 || wm[0].Attrs["n"] != 5.0 {
		t.Fatalf("result WM = %+v", wm)
	}

	var insts []server.WireInst
	c.must("GET", "/sessions/counter/conflicts", nil, &insts, http.StatusOK)

	var stats server.SessionResponse
	c.must("GET", "/sessions/counter", nil, &stats, http.StatusOK)
	if !stats.Halted || stats.Fired != 6 || stats.TotalChanges == 0 {
		t.Fatalf("stats = %+v", stats)
	}

	// Metrics must reflect the traffic.
	resp, err := http.Get(c.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{"psmd_sessions 1", "psmd_firings_total 6", "psmd_wme_changes_per_sec"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	// statusz renders a table including the session.
	resp, err = http.Get(c.raw + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "counter") {
		t.Errorf("/statusz missing session row:\n%s", raw)
	}

	c.must("DELETE", "/sessions/counter", nil, nil, http.StatusNoContent)
	c.must("GET", "/sessions/counter", nil, nil, http.StatusNotFound)
}

func TestHTTPErrors(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 2})

	// Bad program.
	if got := c.do("POST", "/sessions", server.CreateRequest{Program: "(p broken"}, nil); got != http.StatusBadRequest {
		t.Errorf("bad program: status %d, want 400", got)
	}
	// Unknown matcher.
	if got := c.do("POST", "/sessions", server.CreateRequest{Program: counterSrc, Matcher: "quantum"}, nil); got != http.StatusBadRequest {
		t.Errorf("bad matcher: status %d, want 400", got)
	}
	// Unknown session.
	if got := c.do("POST", "/sessions/nope/run", server.RunRequest{}, nil); got != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", got)
	}
	// Duplicate ID.
	c.must("POST", "/sessions", server.CreateRequest{ID: "dup", Program: counterSrc}, nil, http.StatusCreated)
	if got := c.do("POST", "/sessions", server.CreateRequest{ID: "dup", Program: counterSrc}, nil); got != http.StatusConflict {
		t.Errorf("duplicate session: status %d, want 409", got)
	}
	// Bad retract tag.
	if got := c.do("POST", "/sessions/dup/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "retract", Tag: 99},
	}}, nil); got != http.StatusBadRequest {
		t.Errorf("bad retract: status %d, want 400", got)
	}
	// WM quota: a batch that would exceed MaxWMEs is rejected whole.
	c.must("POST", "/sessions", server.CreateRequest{ID: "small", Program: counterSrc, MaxWMEs: 2}, nil, http.StatusCreated)
	big := server.ChangesRequest{}
	for i := 0; i < 3; i++ {
		big.Changes = append(big.Changes, server.WireChange{Op: "assert", Class: "c", Attrs: map[string]any{"n": float64(i)}})
	}
	if got := c.do("POST", "/sessions/small/changes", big, nil); got != http.StatusRequestEntityTooLarge {
		t.Errorf("quota: status %d, want 413", got)
	}
	var wm []server.WireWME
	c.must("GET", "/sessions/small/wm", nil, &wm, http.StatusOK)
	if len(wm) != 0 {
		t.Errorf("rejected batch partially applied: %d WMEs", len(wm))
	}
}

// TestAPIVersioningAndErrorEnvelope pins the redesigned HTTP surface:
// unversioned paths still work but are marked deprecated with a Link
// to the /v1 successor, and every error body is the uniform
// {code, message, retryable} envelope.
func TestAPIVersioningAndErrorEnvelope(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	c.must("POST", "/sessions", server.CreateRequest{ID: "v", Program: counterSrc}, nil, http.StatusCreated)

	// The deprecated unversioned alias serves the same resource and
	// advertises its successor.
	resp, err := http.Get(c.raw + "/sessions/v")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unversioned alias: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("Deprecation"); got != "true" {
		t.Errorf("alias Deprecation header = %q, want \"true\"", got)
	}
	if got := resp.Header.Get("Link"); got != `</v1/sessions/v>; rel="successor-version"` {
		t.Errorf("alias Link header = %q", got)
	}

	// The versioned route answers without deprecation marks.
	resp2, err := http.Get(c.base + "/sessions/v")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("Deprecation") != "" {
		t.Errorf("/v1 route: status %d, Deprecation %q", resp2.StatusCode, resp2.Header.Get("Deprecation"))
	}

	// Errors carry the envelope with a stable code. Exercise three
	// classes: not found, conflict, and bad request.
	envelope := func(method, path string, body any) (int, server.ErrorResponse) {
		t.Helper()
		var rd io.Reader
		if body != nil {
			buf, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(buf)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.http.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var env server.ErrorResponse
		if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
			t.Fatalf("%s %s: error body is not the envelope: %v", method, path, err)
		}
		return r.StatusCode, env
	}

	if st, env := envelope("GET", "/sessions/nope", nil); st != http.StatusNotFound ||
		env.Code != "not_found" || env.Retryable || env.Message == "" {
		t.Errorf("not found: status %d, envelope %+v", st, env)
	}
	if st, env := envelope("POST", "/sessions", server.CreateRequest{ID: "v", Program: counterSrc}); st != http.StatusConflict ||
		env.Code != "already_exists" || env.Retryable {
		t.Errorf("conflict: status %d, envelope %+v", st, env)
	}
	if st, env := envelope("POST", "/sessions", server.CreateRequest{Program: "(p broken"}); st != http.StatusBadRequest ||
		env.Code != "bad_request" || env.Retryable {
		t.Errorf("bad request: status %d, envelope %+v", st, env)
	}
}

func TestRunQuotaTruncatesGracefully(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "capped", Program: counterSrc, MaxCycles: 3,
	}, nil, http.StatusCreated)
	c.must("POST", "/sessions/capped/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 100.0}},
	}}, nil, http.StatusOK)
	var run server.RunResponse
	c.must("POST", "/sessions/capped/run", server.RunRequest{Cycles: 50}, &run, http.StatusOK)
	if run.Cycles != 3 || !run.LimitHit || run.Halted || run.Quiesced {
		t.Fatalf("quota-capped run = %+v, want 3 cycles with limit_hit", run)
	}
}

// scriptChanges converts a matchtest script batch into wire changes.
func scriptChanges(batch []ops5.Change) []server.WireChange {
	out := make([]server.WireChange, len(batch))
	for i, ch := range batch {
		if ch.Kind == ops5.Insert {
			out[i] = server.WireChange{Op: "assert", Class: ch.WME.Class(), Attrs: wmeAttrsJSON(ch.WME)}
		} else {
			out[i] = server.WireChange{Op: "retract", Tag: ch.WME.TimeTag}
		}
	}
	return out
}

// wmeAttrsJSON converts a WME's fields to the JSON wire attribute map.
func wmeAttrsJSON(w *ops5.WME) map[string]any {
	fields := w.Fields()
	attrs := make(map[string]any, len(fields))
	for _, f := range fields {
		attrs[sym.Name(f.Attr)] = valueJSON(f.Val)
	}
	return attrs
}

// valueJSON mirrors the server's value mapping for test comparisons.
func valueJSON(v ops5.Value) any {
	switch v.Kind {
	case ops5.SymValue:
		return v.SymName()
	case ops5.NumValue:
		return v.Num
	default:
		return nil
	}
}

// programSource renders productions back to OPS5 source.
func programSource(prods []*ops5.Production) string {
	var b strings.Builder
	for _, p := range prods {
		b.WriteString(p.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestConcurrentSessionsMatchSerialReplay runs M independent sessions
// concurrently over HTTP — mixed matchers, each session driven by its
// own goroutine through a random change script and a recognize-act run
// — and asserts every session's conflict set, firing count and WM size
// are identical to a serial in-process replay of the same program and
// script. This extends the repository's cross-matcher property-test
// discipline to the service layer: the sharded concurrent server must
// be semantically invisible.
func TestConcurrentSessionsMatchSerialReplay(t *testing.T) {
	const sessions = 9
	matchers := []string{"rete", "parallel-rete", "treat"}

	_, c := newTestServer(t, server.Config{Shards: 4, QueueDepth: 256})

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + i)))
			params := matchtest.DefaultGenParams()
			prods := matchtest.RandomProgram(rng, params)
			script := matchtest.RandomScript(rng, params, 30, 4)
			src := programSource(prods)
			matcher := matchers[i%len(matchers)]
			id := fmt.Sprintf("sess-%d", i)

			report := func(format string, args ...any) {
				errs <- fmt.Errorf("session %s (%s): %s", id, matcher, fmt.Sprintf(format, args...))
			}

			if got := c.do("POST", "/sessions", server.CreateRequest{ID: id, Program: src, Matcher: matcher}, nil); got != http.StatusCreated {
				report("create status %d", got)
				return
			}
			for bi, batch := range script.Batches {
				var ch server.ChangesResponse
				if got := c.do("POST", "/sessions/"+id+"/changes",
					server.ChangesRequest{Changes: scriptChanges(batch)}, &ch); got != http.StatusOK {
					report("batch %d status %d", bi, got)
					return
				}
				// The server must assign exactly the script's insert tags:
				// same arrival order, same time-tag sequence.
				want := []int{}
				for _, cch := range batch {
					if cch.Kind == ops5.Insert {
						want = append(want, cch.WME.TimeTag)
					}
				}
				if fmt.Sprint(ch.Tags) != fmt.Sprint(want) {
					report("batch %d tags = %v, want %v", bi, ch.Tags, want)
					return
				}
			}
			var run server.RunResponse
			if got := c.do("POST", "/sessions/"+id+"/run", server.RunRequest{Cycles: 500}, &run); got != http.StatusOK {
				report("run status %d", got)
				return
			}
			var insts []server.WireInst
			if got := c.do("GET", "/sessions/"+id+"/conflicts", nil, &insts); got != http.StatusOK {
				report("conflicts status %d", got)
				return
			}
			var stats server.SessionResponse
			if got := c.do("GET", "/sessions/"+id, nil, &stats); got != http.StatusOK {
				report("stats status %d", got)
				return
			}

			// Serial in-process replay: same program, same batches, same
			// run, on the single-threaded reference matcher.
			ref, err := core.NewSystemFromProgram(&ops5.Program{Productions: prods}, core.Options{})
			if err != nil {
				report("replay construction: %v", err)
				return
			}
			// Apply the original script structs: Rete identifies deleted
			// WMEs by pointer, so insert and delete of one element must
			// share the struct (the HTTP path re-resolves retract tags
			// against the session's own working memory instead).
			for _, batch := range script.Batches {
				ref.ApplyChanges(batch)
			}
			ref.MaxCycles = 500
			if _, err := ref.Run(); err != nil {
				report("replay run: %v", err)
				return
			}

			gotKeys := make([]string, len(insts))
			for j, inst := range insts {
				gotKeys[j] = inst.Key
			}
			wantKeys := []string{}
			for _, inst := range ref.CS.Instantiations() {
				wantKeys = append(wantKeys, inst.Key())
			}
			sort.Strings(gotKeys)
			sort.Strings(wantKeys)
			if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
				report("conflict set diverged:\n%s", matchtest.Diff(wantKeys, gotKeys))
				return
			}
			if stats.Fired != ref.Fired || stats.WMSize != ref.WM.Size() || run.Halted != ref.Halted {
				report("stats diverged: fired %d/%d, wm %d/%d, halted %v/%v",
					stats.Fired, ref.Fired, stats.WMSize, ref.WM.Size(), run.Halted, ref.Halted)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// contentKey identifies an instantiation by production plus the matched
// WMEs' contents (tags stripped): the time-tag-free identity that is
// invariant under insert reordering.
func contentKey(production string, wmes []string) string {
	sort.Strings(wmes)
	return production + "::" + strings.Join(wmes, "|")
}

// wireWMEContent renders a wire WME's content canonically.
func wireWMEContent(w server.WireWME) string {
	keys := make([]string, 0, len(w.Attrs))
	for k := range w.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(w.Class)
	for _, k := range keys {
		b.WriteString(" ^" + k + " " + anyString(w.Attrs[k]))
	}
	return b.String()
}

// wmeContent renders an in-process WME's content in the same form.
func wmeContent(w *ops5.WME) string {
	attrs := wmeAttrsJSON(w)
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(w.Class())
	for _, k := range keys {
		b.WriteString(" ^" + k + " " + anyString(attrs[k]))
	}
	return b.String()
}

func anyString(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return "nil"
	}
}

// TestConcurrentPostersOneSession hammers a single session with K
// concurrent posters submitting insert-only batches. Arrival order (and
// so time tags) is nondeterministic, but the multiset of instantiation
// contents must equal a serial replay's: the conflict set depends only
// on what was asserted, never on how the concurrent requests
// interleaved.
func TestConcurrentPostersOneSession(t *testing.T) {
	const posters = 4
	const batches = 20

	rng := rand.New(rand.NewSource(7))
	params := matchtest.DefaultGenParams()
	prods := matchtest.RandomProgram(rng, params)
	src := programSource(prods)

	// Pre-generate each poster's insert-only batches.
	scripts := make([][][]*ops5.WME, posters)
	for p := range scripts {
		scripts[p] = make([][]*ops5.WME, batches)
		for b := range scripts[p] {
			n := 1 + rng.Intn(3)
			for k := 0; k < n; k++ {
				scripts[p][b] = append(scripts[p][b], matchtest.RandomWME(rng, params))
			}
		}
	}

	_, c := newTestServer(t, server.Config{Shards: 2, QueueDepth: 1024})
	c.must("POST", "/sessions", server.CreateRequest{ID: "shared", Program: src}, nil, http.StatusCreated)

	var wg sync.WaitGroup
	errs := make(chan error, posters)
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b, wmes := range scripts[p] {
				changes := make([]server.WireChange, len(wmes))
				for i, w := range wmes {
					changes[i] = server.WireChange{Op: "assert", Class: w.Class(), Attrs: wmeAttrsJSON(w)}
				}
				if got := c.do("POST", "/sessions/shared/changes",
					server.ChangesRequest{Changes: changes}, nil); got != http.StatusOK {
					errs <- fmt.Errorf("poster %d batch %d: status %d", p, b, got)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var insts []server.WireInst
	c.must("GET", "/sessions/shared/conflicts", nil, &insts, http.StatusOK)
	gotKeys := make([]string, len(insts))
	for i, inst := range insts {
		wmes := make([]string, len(inst.WMEs))
		for j, w := range inst.WMEs {
			wmes[j] = wireWMEContent(w)
		}
		gotKeys[i] = contentKey(inst.Production, wmes)
	}

	// Serial replay: all posters' batches in deterministic order.
	ref, err := core.NewSystemFromProgram(&ops5.Program{Productions: prods}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := range scripts {
		for _, wmes := range scripts[p] {
			batch := make([]ops5.Change, len(wmes))
			for i, w := range wmes {
				cw := w.Clone()
				batch[i] = ops5.Change{Kind: ops5.Insert, WME: cw}
			}
			ref.ApplyChanges(batch)
		}
	}
	wantKeys := []string{}
	for _, inst := range ref.CS.Instantiations() {
		wmes := []string{}
		for _, w := range inst.WMEs {
			if w != nil {
				wmes = append(wmes, wmeContent(w))
			}
		}
		wantKeys = append(wantKeys, contentKey(inst.Production.Name, wmes))
	}
	sort.Strings(gotKeys)
	sort.Strings(wantKeys)
	if fmt.Sprint(gotKeys) != fmt.Sprint(wantKeys) {
		t.Fatalf("conflict-set contents diverged under concurrent posting:\n%s",
			matchtest.Diff(wantKeys, gotKeys))
	}
}

// TestDirectAPIRunUnboundedDeadline drives the Go-level API: a session
// with a never-quiescing program and no cycle quota must stop at the
// context deadline with 504-style semantics.
func TestDirectAPIRunDeadline(t *testing.T) {
	srv := server.New(server.Config{Shards: 1})
	defer srv.Close()
	ctx := context.Background()
	_, err := srv.CreateSession(ctx, server.CreateSpec{
		ID:      "loop",
		Program: `(p loop (c ^n <x>) --> (make c ^n <x>))`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Apply(ctx, "loop", []server.ChangeSpec{
		{Op: server.OpAssert, Class: "c", Attrs: map[string]ops5.Value{"n": ops5.Num(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 50*1000*1000) // 50ms
	defer cancel()
	_, err = srv.RunCycles(dctx, "loop", 0)
	if err != context.DeadlineExceeded {
		t.Fatalf("unbounded run err = %v, want DeadlineExceeded", err)
	}
	// The session survives and reports consistent state.
	info, err := srv.SessionStats(ctx, "loop")
	if err != nil || info.Cycles == 0 {
		t.Fatalf("post-deadline stats = %+v, %v", info, err)
	}
}
