package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/server"
	"repro/internal/workload"
)

// postStream sends raw NDJSON to the stream endpoint and returns the
// response.
func (c *client) postStream(id string, body []byte) *http.Response {
	c.t.Helper()
	resp, err := c.http.Post(c.base+"/sessions/"+id+"/stream", "application/x-ndjson",
		bytes.NewReader(body))
	if err != nil {
		c.t.Fatal(err)
	}
	return resp
}

func TestStreamIngestFraud(t *testing.T) {
	srv, c := newTestServer(t, server.Config{Shards: 2})
	var sess server.SessionResponse
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "fraud", Program: workload.FraudRules, Matcher: "rete",
	}, &sess, http.StatusCreated)

	events := workload.FraudEvents(workload.DefaultFraudParams())
	resp := c.postStream("fraud", workload.NDJSON(events))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: status %d: %s", resp.StatusCode, raw)
	}
	var res server.StreamResponse
	if err := jsonDecode(resp.Body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Events != len(events) {
		t.Fatalf("applied %d events, want %d", res.Events, len(events))
	}
	if res.Batches != (len(events)+255)/256 {
		t.Fatalf("batches = %d, want %d", res.Batches, (len(events)+255)/256)
	}
	if res.Fired == 0 {
		t.Fatal("no alerts fired — fraud pack never matched")
	}
	if res.Expired == 0 {
		t.Fatal("no events expired — TTL retraction never ran")
	}
	if res.Clock == 0 {
		t.Fatal("logical clock never advanced")
	}
	// Events plus alerts expire; by end-of-stream working memory holds
	// only the last window's worth of events, far fewer than ingested.
	if res.WMSize >= len(events) {
		t.Fatalf("WM size %d did not shrink below %d ingested events", res.WMSize, len(events))
	}

	var info server.SessionResponse
	c.must("GET", "/sessions/fraud", nil, &info, http.StatusOK)
	if info.Clock != res.Clock || info.Expired != res.Expired {
		t.Fatalf("session stats clock/expired = %d/%d, stream reported %d/%d",
			info.Clock, info.Expired, res.Clock, res.Expired)
	}

	// The stream counters made it to the registry.
	var buf bytes.Buffer
	srv.Registry().WriteText(&buf)
	for _, metric := range []string{
		"psmd_stream_events_total", "psmd_stream_batches_total", "psmd_expired_wmes_total",
	} {
		if v := metricValue(buf.String(), metric); v <= 0 {
			t.Errorf("metric %s = %v, want > 0", metric, v)
		}
	}
	if v := metricValue(buf.String(), "psmd_stream_lag_events"); v != 0 {
		t.Errorf("psmd_stream_lag_events = %v after stream closed, want 0", v)
	}

	// A stream batch span landed in the trace ring.
	var tr server.TraceResponse
	c.must("GET", "/sessions/fraud/trace", nil, &tr, http.StatusOK)
	var sawStream bool
	for _, sp := range tr.Spans {
		if sp.Kind == "stream" {
			sawStream = true
		}
	}
	if !sawStream {
		t.Error("no stream-kind span in the session trace")
	}
}

func TestStreamIngestMonitor(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	var sess server.SessionResponse
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "mon", Program: workload.MonitorRules, Matcher: "rete",
	}, &sess, http.StatusCreated)
	events := workload.MonitorEvents(workload.DefaultMonitorParams())
	resp := c.postStream("mon", workload.NDJSON(events))
	defer resp.Body.Close()
	var res server.StreamResponse
	if err := jsonDecode(resp.Body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Events != len(events) || res.Fired == 0 || res.Expired == 0 {
		t.Fatalf("monitor stream = %+v", res)
	}
}

func TestStreamBadLineReportsProgress(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "fraud", Program: workload.FraudRules, Matcher: "rete",
	}, nil, http.StatusCreated)

	// 300 good events (one full 256-batch applies) then a broken line.
	events := workload.FraudEvents(workload.FraudParams{Cards: 10, Events: 300, Window: 20, Seed: 1})
	body := append(workload.NDJSON(events), []byte("{not json}\n")...)
	resp := c.postStream("fraud", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Stream-Events-Applied"); got != "256" {
		t.Fatalf("X-Stream-Events-Applied = %q, want 256", got)
	}
}

func TestStreamUnknownFieldRejected(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "fraud", Program: workload.FraudRules, Matcher: "rete",
	}, nil, http.StatusCreated)
	resp := c.postStream("fraud", []byte(`{"class":"txn","bogus":1}`+"\n"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for unknown field", resp.StatusCode)
	}
}

func TestStreamNoSession(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	resp := c.postStream("ghost", []byte(`{"class":"txn","ttl":5}`+"\n"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if resp.Header.Get("X-Stream-Events-Applied") != "0" {
		t.Fatal("progress header missing on mid-stream failure")
	}
}

func TestStreamEmptyClassRejected(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "fraud", Program: workload.FraudRules, Matcher: "rete",
	}, nil, http.StatusCreated)
	resp := c.postStream("fraud", []byte(`{"ttl":5}`+"\n"))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 for missing class", resp.StatusCode)
	}
}

// TestStreamDeterministicAcrossMatchers streams the same fraud workload
// into a serial-Rete and a parallel-Rete session and expects identical
// end states — the windowed join is matcher-independent.
func TestStreamDeterministicAcrossMatchers(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 2})
	events := workload.NDJSON(workload.FraudEvents(workload.DefaultFraudParams()))
	results := make(map[string]server.StreamResponse)
	for _, m := range []string{"rete", "parallel-rete"} {
		c.must("POST", "/sessions", server.CreateRequest{
			ID: m, Program: workload.FraudRules, Matcher: m,
		}, nil, http.StatusCreated)
		resp := c.postStream(m, events)
		var res server.StreamResponse
		if err := jsonDecode(resp.Body, &res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		res.SessionID = ""
		results[m] = res
	}
	if results["rete"] != results["parallel-rete"] {
		t.Fatalf("matchers diverged:\n rete: %+v\n prete: %+v",
			results["rete"], results["parallel-rete"])
	}
}

// streamInto streams NDJSON into a session and fails the test on a
// non-200 response.
func streamInto(t *testing.T, c *client, id string, body []byte) server.StreamResponse {
	t.Helper()
	resp := c.postStream(id, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream into %s: status %d: %s", id, resp.StatusCode, raw)
	}
	var res server.StreamResponse
	if err := jsonDecode(resp.Body, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// streamState is the expiry-relevant slice of a session's state used by
// the recovery-parity differential.
type streamState struct {
	Clock                  int64
	Expired, Pending       int
	Cycles, Fired, Changes int
	WMSize, ConflictSize   int
}

func captureStreamState(t *testing.T, c *client, id string) (streamState, []server.WireWME) {
	t.Helper()
	var info server.SessionResponse
	var wm []server.WireWME
	c.must("GET", "/sessions/"+id, nil, &info, http.StatusOK)
	c.must("GET", "/sessions/"+id+"/wm", nil, &wm, http.StatusOK)
	return streamState{
		Clock: info.Clock, Expired: info.Expired, Pending: info.PendingExpiries,
		Cycles: info.Cycles, Fired: info.Fired, Changes: info.TotalChanges,
		WMSize: info.WMSize, ConflictSize: info.ConflictSize,
	}, wm
}

// TestStreamExpiryRecoveryParity is the expiring-fact differential: a
// durable session is killed (listener dropped, no shutdown) midway
// through an event stream, restarted, and resumed. The recovered
// session must come back with the exact mid-stream state — logical
// clock, expiry counters, pending deadlines, working memory — and,
// fed the rest of the stream, must expire the same WMEs at the same
// logical ticks as an uninterrupted control run: final states compare
// equal, field for field and WME for WME.
func TestStreamExpiryRecoveryParity(t *testing.T) {
	events := workload.FraudEvents(workload.FraudParams{Cards: 20, Events: 600, Window: 15, Seed: 7})
	half := len(events) / 2
	first, second := workload.NDJSON(events[:half]), workload.NDJSON(events[half:])
	create := server.CreateRequest{ID: "fraud", Program: workload.FraudRules, Matcher: "rete"}

	// Control: one uninterrupted run.
	_, control := newTestServer(t, server.Config{Shards: 1})
	control.must("POST", "/sessions", create, nil, http.StatusCreated)
	streamInto(t, control, "fraud", first)
	streamInto(t, control, "fraud", second)
	wantFinal, wantFinalWM := captureStreamState(t, control, "fraud")

	// Crash run: durable, killed after the first half.
	dataDir := t.TempDir()
	cfg := server.Config{Shards: 1, DataDir: dataDir}
	c1, crash := crashableServer(t, cfg)
	c1.must("POST", "/sessions", create, nil, http.StatusCreated)
	streamInto(t, c1, "fraud", first)
	wantMid, wantMidWM := captureStreamState(t, c1, "fraud")
	if wantMid.Expired == 0 || wantMid.Pending == 0 {
		t.Fatalf("mid-stream state exercises no expiries: %+v", wantMid)
	}
	crash()

	// Recovery must land on the exact mid-stream state.
	_, c2 := newTestServer(t, cfg)
	gotMid, gotMidWM := captureStreamState(t, c2, "fraud")
	if gotMid != wantMid {
		t.Fatalf("recovered state diverged:\nwant %+v\n got %+v", wantMid, gotMid)
	}
	if !reflect.DeepEqual(gotMidWM, wantMidWM) {
		t.Fatalf("recovered WM diverged:\nwant %+v\n got %+v", wantMidWM, gotMidWM)
	}

	// Resuming the stream must reproduce the control run exactly: every
	// later expiry hits the same WME at the same logical tick, so the
	// final states are indistinguishable.
	streamInto(t, c2, "fraud", second)
	gotFinal, gotFinalWM := captureStreamState(t, c2, "fraud")
	if gotFinal != wantFinal {
		t.Fatalf("resumed run diverged from control:\nwant %+v\n got %+v", wantFinal, gotFinal)
	}
	if !reflect.DeepEqual(gotFinalWM, wantFinalWM) {
		t.Fatalf("resumed WM diverged from control:\nwant %+v\n got %+v", wantFinalWM, gotFinalWM)
	}
}

// TestStreamSnapshotRecoveryParity checks the snapshot path carries the
// expiry table: checkpoint mid-stream (so recovery starts from the v3
// snapshot, not WAL replay alone), crash, recover, resume, compare.
func TestStreamSnapshotRecoveryParity(t *testing.T) {
	events := workload.MonitorEvents(workload.MonitorParams{Hosts: 10, Events: 400, Window: 12, Seed: 11})
	half := len(events) / 2
	first, second := workload.NDJSON(events[:half]), workload.NDJSON(events[half:])
	create := server.CreateRequest{ID: "mon", Program: workload.MonitorRules, Matcher: "rete"}

	_, control := newTestServer(t, server.Config{Shards: 1})
	control.must("POST", "/sessions", create, nil, http.StatusCreated)
	streamInto(t, control, "mon", first)
	streamInto(t, control, "mon", second)
	wantFinal, wantFinalWM := captureStreamState(t, control, "mon")

	dataDir := t.TempDir()
	cfg := server.Config{Shards: 1, DataDir: dataDir}
	c1, crash := crashableServer(t, cfg)
	c1.must("POST", "/sessions", create, nil, http.StatusCreated)
	streamInto(t, c1, "mon", first)
	c1.must("POST", "/sessions/mon/snapshot", nil, nil, http.StatusOK)
	wantMid, _ := captureStreamState(t, c1, "mon")
	if wantMid.Pending == 0 {
		t.Fatalf("no pending expiries at checkpoint: %+v", wantMid)
	}
	crash()

	_, c2 := newTestServer(t, cfg)
	var info server.SessionResponse
	c2.must("GET", "/sessions/mon", nil, &info, http.StatusOK)
	if info.ReplayedRecords != 0 {
		t.Fatalf("recovery replayed %d WAL records, want snapshot-only", info.ReplayedRecords)
	}
	gotMid, _ := captureStreamState(t, c2, "mon")
	if gotMid != wantMid {
		t.Fatalf("snapshot recovery diverged:\nwant %+v\n got %+v", wantMid, gotMid)
	}
	streamInto(t, c2, "mon", second)
	gotFinal, gotFinalWM := captureStreamState(t, c2, "mon")
	if gotFinal != wantFinal {
		t.Fatalf("resumed run diverged from control:\nwant %+v\n got %+v", wantFinal, gotFinal)
	}
	if !reflect.DeepEqual(gotFinalWM, wantFinalWM) {
		t.Fatalf("resumed WM diverged from control:\nwant %+v\n got %+v", wantFinalWM, gotFinalWM)
	}
}

// jsonDecode decodes one JSON body.
func jsonDecode(r io.Reader, dst any) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, dst)
}
