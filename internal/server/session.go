// Package server hosts many independent rule-engine sessions behind a
// sharded, concurrent service: the serving-side counterpart of the
// paper's Production System Machine. Each session is one compiled OPS5
// program with its own working memory, matcher and conflict set;
// sessions are distributed over a fixed pool of engine shards by
// hash(sessionID), and each shard is owned by exactly one goroutine, so
// all engine and working-memory code runs single-threaded per session
// and the paper's per-memory-lock discipline stays inside the parallel
// matcher (internal/prete).
//
// The package exposes both a direct Go API (Server methods) and an HTTP
// JSON API (Server.Handler, served by cmd/psmd) with endpoints to
// create/delete sessions, submit batched working-memory changes, run
// recognize-act cycles, and query the conflict set, working memory and
// serving metrics.
package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/conflict"
	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ops5"
	"repro/internal/sym"
)

// Quota bounds a session's resource use so one hot or runaway program
// degrades gracefully instead of starving its shard.
type Quota struct {
	// MaxWMEs caps working-memory size; change batches that would
	// exceed it are rejected whole (0 = unlimited).
	MaxWMEs int
	// MaxCyclesPerRequest caps the recognize-act cycles a single run
	// request may execute; larger asks are truncated, reported via
	// RunResult.LimitHit (0 = unlimited).
	MaxCyclesPerRequest int
}

// CreateSpec describes a session to create.
type CreateSpec struct {
	// ID names the session; empty means the server assigns one.
	ID string
	// Program is the OPS5 source text (productions plus optional
	// top-level make forms).
	Program string
	// Matcher selects the match algorithm by name (core.ParseMatcherKind
	// spelling; empty = serial rete).
	Matcher string
	// Strategy selects conflict resolution ("lex" default, or "mea").
	Strategy string
	// Workers sets the parallel matcher's goroutine count (parallel
	// rete only; 0 = the server default, else GOMAXPROCS).
	Workers int
	// NoSteal disables the parallel matcher's work stealing (parallel
	// rete only).
	NoSteal bool
	// ParallelFirings fires up to N non-conflicting instantiations per
	// cycle (default 1).
	ParallelFirings int
	// Quota overrides the server default when any field is non-zero.
	Quota Quota
}

// session is one hosted production system. It is owned by its shard's
// goroutine: no field is touched from any other goroutine after
// construction.
type session struct {
	id      string
	spec    CreateSpec
	sys     *core.System
	quota   Quota
	created time.Time

	// trace retains the session's most recent cycle spans. The ring is
	// internally locked: spans are added on the shard goroutine, but the
	// server archives a snapshot at deletion.
	trace *obs.Ring

	// requests counts every operation routed to this session.
	requests int64

	// lastSteals, lastParks and lastWakeups remember the matcher's
	// cumulative scheduler counters at the previous schedDeltas call, so
	// the server-wide counters can be advanced by per-request deltas.
	// lastResident mirrors the matcher's resident pool-goroutine count
	// into the server-wide gauge the same way — and is the amount the
	// gauge must give back when the session is torn down.
	lastSteals   int64
	lastParks    int64
	lastWakeups  int64
	lastResident int64

	// lastExpired remembers the engine's cumulative TTL-retraction count
	// at the previous expiredDelta call (same per-request delta pattern).
	// Recovery primes it to the restored absolute value so a rebuilt
	// session does not replay its history into the process counter.
	lastExpired int

	// lastPhaseSecs and lastTaskCounts do the same for the matcher's
	// cumulative loss accounting (lossDeltas); nil until the first call
	// on a loss-capable matcher.
	lastPhaseSecs  map[string]float64
	lastTaskCounts map[string]int64

	// log is the session's durable state (nil when the server runs
	// without -data-dir). walErrLogged throttles the append-failure
	// warning to once per session.
	log          *durable.Log
	walErrLogged bool
}

// ChangeOp names a working-memory change submitted over the API.
type ChangeOp string

// The two change operations.
const (
	OpAssert  ChangeOp = "assert"
	OpRetract ChangeOp = "retract"
)

// ChangeSpec is one submitted working-memory change: an assert carries
// a class and attributes, a retract the time tag to remove.
type ChangeSpec struct {
	Op    ChangeOp
	Class string
	Attrs map[string]ops5.Value
	Tag   int
}

// EventSpec is one streaming-ingest event: an assert of an event fact,
// optionally stamped with an ingest timestamp (advances the session's
// logical clock) and a TTL in logical ticks (injected as the reserved
// ^__ttl attribute; the engine retracts the fact once the clock passes
// insert + TTL).
type EventSpec struct {
	Class string
	Attrs map[string]ops5.Value
	TS    int64
	TTL   int
}

// StreamResult aggregates one applied stream batch (or a whole stream —
// the handler sums batches).
type StreamResult struct {
	// Events is the number of event facts asserted.
	Events int
	// Fired and Cycles count the recognize-act work the batch triggered.
	Fired  int
	Cycles int
	// Expired is the number of event facts the engine retracted by TTL
	// during the batch (clock advance plus triggered cycles).
	Expired int
	// Clock is the session's logical clock after the batch.
	Clock int64
	// WMSize and ConflictSize snapshot the session after the batch.
	WMSize       int
	ConflictSize int
}

// ApplyResult reports a committed change batch.
type ApplyResult struct {
	// Applied is the number of changes committed.
	Applied int
	// Tags holds the time tags assigned to asserts, in submission
	// order (retracts contribute no entry).
	Tags []int
	// WMSize and ConflictSize snapshot the session after the batch.
	WMSize       int
	ConflictSize int
}

// RunResult reports a run-cycles request.
type RunResult struct {
	// Cycles is the number of recognize-act cycles executed.
	Cycles int
	// Fired is the number of production firings during those cycles.
	Fired int
	// Halted reports whether the program executed (halt).
	Halted bool
	// Quiesced reports whether the run stopped because no production
	// could fire.
	Quiesced bool
	// LimitHit reports that the cycle cap (requested or quota) stopped
	// the run before quiescence or halt.
	LimitHit bool
	// WMSize and ConflictSize snapshot the session after the run.
	WMSize       int
	ConflictSize int
}

// SessionInfo is a session's externally visible state.
type SessionInfo struct {
	ID              string
	Shard           int
	Matcher         string
	Strategy        string
	Productions     int
	ParallelFirings int
	Quota           Quota
	WMSize          int
	ConflictSize    int
	Cycles          int
	Fired           int
	TotalChanges    int
	Halted          bool
	Requests        int64
	Age             time.Duration
	// Clock is the session's logical clock; Expired counts TTL
	// retractions over its lifetime, and PendingExpiries the live event
	// facts still awaiting their deadline.
	Clock           int64
	Expired         int
	PendingExpiries int
	// TraceSpans and TraceTotal summarise the session's trace ring
	// (buffered spans and spans ever recorded); LastCycle is the most
	// recent span's total duration.
	TraceSpans int
	TraceTotal int64
	LastCycle  time.Duration
	// Durable reports whether the session has a write-ahead log;
	// Recovered that this incarnation was rebuilt from disk, replaying
	// ReplayedRecords WAL records past its snapshot. WALSeq /
	// SnapshotSeq / WALRecords / WALBytes describe the live log, and
	// WALError carries the first append failure (durability degraded).
	Durable         bool
	Recovered       bool
	ReplayedRecords int64
	WALSeq          int64
	SnapshotSeq     int64
	WALRecords      int64
	WALBytes        int64
	WALError        string
}

// InstInfo describes one conflict-set instantiation.
type InstInfo struct {
	// Production is the satisfied production's name.
	Production string
	// Key is the canonical identity (production plus time tags).
	Key string
	// WMEs are the matched working-memory elements in LHS order
	// (negated condition elements contribute no entry).
	WMEs []WMEInfo
}

// WMEInfo describes one working-memory element.
type WMEInfo struct {
	Tag   int
	Class string
	Attrs map[string]ops5.Value
}

// Typed service errors, mapped onto HTTP statuses by the handler layer.
var (
	// ErrNoSession reports an unknown session ID.
	ErrNoSession = errors.New("server: no such session")
	// ErrSessionExists reports a create with an ID already in use.
	ErrSessionExists = errors.New("server: session already exists")
	// ErrWMQuota reports a change batch that would exceed the session's
	// working-memory quota.
	ErrWMQuota = errors.New("server: working-memory quota exceeded")
	// ErrServerClosed reports an operation on a closed server.
	ErrServerClosed = errors.New("server: closed")
)

// BusyError reports a shard whose mailbox is full — the backpressure
// signal behind HTTP 429.
type BusyError struct {
	// Shard is the full shard's index.
	Shard int
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
}

// Error describes the full shard.
func (e *BusyError) Error() string {
	return fmt.Sprintf("server: shard %d mailbox full, retry after %s", e.Shard, e.RetryAfter)
}

// BadRequestError wraps a client-input problem (unknown matcher, bad
// retract tag, program errors) so the HTTP layer can answer 400 without
// string matching.
type BadRequestError struct{ Err error }

// Error returns the wrapped message.
func (e *BadRequestError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped error.
func (e *BadRequestError) Unwrap() error { return e.Err }

// badReqf builds a BadRequestError from a format string.
func badReqf(format string, args ...any) error {
	return &BadRequestError{Err: fmt.Errorf(format, args...)}
}

// newSession compiles a CreateSpec into a live session. It runs on the
// caller's goroutine (program compilation is the expensive part and
// must not serialize a shard); ownership passes to the shard when the
// session is registered. noInitialWM builds the system with an empty
// working memory — the crash-recovery path, where the snapshot being
// restored already contains the program's initial state.
func newSession(spec CreateSpec, defaultQuota Quota, now time.Time, noInitialWM bool) (*session, error) {
	kind := core.SerialRete
	if spec.Matcher != "" {
		var err error
		if kind, err = core.ParseMatcherKind(spec.Matcher); err != nil {
			return nil, &BadRequestError{Err: err}
		}
	}
	strategy := conflict.LEX
	if spec.Strategy != "" {
		var err error
		if strategy, err = conflict.ParseStrategy(spec.Strategy); err != nil {
			return nil, &BadRequestError{Err: err}
		}
	}
	quota := spec.Quota
	if quota == (Quota{}) {
		quota = defaultQuota
	}
	sys, err := core.NewSystem(spec.Program, core.Options{
		Matcher:         kind,
		Strategy:        strategy,
		Workers:         spec.Workers,
		NoSteal:         spec.NoSteal,
		ParallelFirings: spec.ParallelFirings,
		NoInitialWM:     noInitialWM,
	})
	if err != nil {
		return nil, &BadRequestError{Err: err}
	}
	if quota.MaxWMEs > 0 && sys.WM.Size() > quota.MaxWMEs {
		sys.Engine.Close()
		return nil, badReqf("server: initial working memory (%d elements) exceeds quota %d",
			sys.WM.Size(), quota.MaxWMEs)
	}
	return &session{id: spec.ID, spec: spec, sys: sys, quota: quota, created: now}, nil
}

// apply validates and commits one change batch, owned-goroutine only.
// A retract may target an element asserted earlier in the same batch:
// working memory assigns time tags deterministically (arrival order),
// so the tag of the k-th assert is predictable and the delete resolves
// to the pending element.
func (s *session) apply(specs []ChangeSpec) (ApplyResult, error) {
	changes := make([]ops5.Change, 0, len(specs))
	asserts := 0
	retracted := make(map[int]bool, len(specs))
	pending := make(map[int]*ops5.WME) // predicted tag -> WME asserted this batch
	nextTag := s.sys.WM.NextTag()
	for i, c := range specs {
		switch c.Op {
		case OpAssert:
			if c.Class == "" {
				return ApplyResult{}, badReqf("server: change %d: assert needs a class", i)
			}
			fields := make([]ops5.Field, 0, len(c.Attrs))
			for k, v := range c.Attrs {
				fields = append(fields, ops5.Field{Attr: sym.Intern(k), Val: v})
			}
			w := ops5.NewFact(sym.Intern(c.Class), fields)
			pending[nextTag] = w
			nextTag++
			changes = append(changes, ops5.Change{Kind: ops5.Insert, WME: w})
			asserts++
		case OpRetract:
			w, ok := s.sys.WM.Get(c.Tag)
			if !ok {
				w, ok = pending[c.Tag]
			}
			if !ok || retracted[c.Tag] {
				return ApplyResult{}, badReqf("server: change %d: no working-memory element with tag %d", i, c.Tag)
			}
			retracted[c.Tag] = true
			changes = append(changes, ops5.Change{Kind: ops5.Delete, WME: w})
		default:
			return ApplyResult{}, badReqf("server: change %d: unknown op %q (assert|retract)", i, c.Op)
		}
	}
	if s.quota.MaxWMEs > 0 && s.sys.WM.Size()+asserts-len(retracted) > s.quota.MaxWMEs {
		return ApplyResult{}, fmt.Errorf("%w: %d elements + %d asserts - %d retracts > %d",
			ErrWMQuota, s.sys.WM.Size(), asserts, len(retracted), s.quota.MaxWMEs)
	}
	s.sys.ApplyChanges(changes)
	res := ApplyResult{
		Applied:      len(changes),
		WMSize:       s.sys.WM.Size(),
		ConflictSize: s.sys.CS.Len(),
	}
	for _, ch := range changes {
		if ch.Kind == ops5.Insert {
			res.Tags = append(res.Tags, ch.WME.TimeTag)
		}
	}
	return res, nil
}

// ingest commits one streaming event batch, owned-goroutine only:
// advance the logical clock to the batch's newest timestamp (expiring
// whatever comes due), assert the events with their TTLs injected, then
// run recognize-act cycles to quiescence (bounded by the session's
// per-request cycle quota and the request deadline). One batch is one
// continuous Apply wave — the traffic shape streaming adds over the
// batch API.
func (s *session) ingest(ctx context.Context, events []EventSpec) (StreamResult, error) {
	eng := s.sys.Engine
	var maxTS int64
	changes := make([]ops5.Change, 0, len(events))
	for i, ev := range events {
		if ev.Class == "" {
			return StreamResult{}, badReqf("server: event %d: missing class", i)
		}
		if ev.TS > maxTS {
			maxTS = ev.TS
		}
		fields := make([]ops5.Field, 0, len(ev.Attrs)+1)
		for k, v := range ev.Attrs {
			fields = append(fields, ops5.Field{Attr: sym.Intern(k), Val: v})
		}
		if ev.TTL > 0 {
			fields = append(fields, ops5.Field{Attr: ops5.TTLAttr, Val: ops5.Num(float64(ev.TTL))})
		}
		changes = append(changes, ops5.Change{Kind: ops5.Insert, WME: ops5.NewFact(sym.Intern(ev.Class), fields)})
	}
	if s.quota.MaxWMEs > 0 && s.sys.WM.Size()+len(changes) > s.quota.MaxWMEs {
		return StreamResult{}, fmt.Errorf("%w: %d elements + %d events > %d",
			ErrWMQuota, s.sys.WM.Size(), len(changes), s.quota.MaxWMEs)
	}
	firedBefore, cyclesBefore, expiredBefore := eng.Fired, eng.Cycles, eng.Expired
	eng.AdvanceClock(maxTS)
	s.sys.ApplyChanges(changes)
	if _, err := eng.RunContext(ctx, s.quota.MaxCyclesPerRequest); err != nil &&
		!errors.Is(err, engine.ErrCycleLimit) {
		return StreamResult{}, err
	}
	return StreamResult{
		Events:       len(changes),
		Fired:        eng.Fired - firedBefore,
		Cycles:       eng.Cycles - cyclesBefore,
		Expired:      eng.Expired - expiredBefore,
		Clock:        eng.Clock,
		WMSize:       s.sys.WM.Size(),
		ConflictSize: s.sys.CS.Len(),
	}, nil
}

// expiredDelta returns the growth of the engine's TTL-retraction
// counter since the previous call, owned-goroutine only (feeds
// psmd_expired_wmes_total).
func (s *session) expiredDelta() int64 {
	cur := s.sys.Engine.Expired
	if cur < s.lastExpired {
		s.lastExpired = 0
	}
	d := int64(cur - s.lastExpired)
	s.lastExpired = cur
	return d
}

// schedDeltas returns the growth of the session matcher's steal, park
// and pool-wakeup counters since the previous call, plus the change in
// its resident worker count, owned-goroutine only. All are zero for
// matchers without a work-stealing scheduler. A counter regression
// means the matcher was rebuilt (session restore from a snapshot): the
// baseline resyncs to zero so the server-wide monotone counters advance
// by the new matcher's full count instead of going negative. resident
// is a gauge delta and may legitimately be negative (pool closed).
func (s *session) schedDeltas() (steals, parks, wakeups, resident int64) {
	p := s.sys.Engine.Capabilities().Stats
	if p == nil {
		return 0, 0, 0, 0
	}
	ms := p.MatchStats()
	if ms.Steals < s.lastSteals || ms.Parks < s.lastParks || ms.Wakeups < s.lastWakeups {
		s.lastSteals, s.lastParks, s.lastWakeups = 0, 0, 0
	}
	steals = ms.Steals - s.lastSteals
	parks = ms.Parks - s.lastParks
	wakeups = ms.Wakeups - s.lastWakeups
	s.lastSteals, s.lastParks, s.lastWakeups = ms.Steals, ms.Parks, ms.Wakeups
	resident = int64(ms.ResidentWorkers) - s.lastResident
	s.lastResident = int64(ms.ResidentWorkers)
	return steals, parks, wakeups, resident
}

// lossDeltas returns the growth of the session matcher's cumulative
// per-phase seconds (including the serial seed/merge Apply regions) and
// task-size histogram counts since the previous call, owned-goroutine
// only. Nil maps for matchers without loss accounting. As with
// schedDeltas, a regression (matcher rebuilt on restore) resyncs the
// baseline rather than yielding negative deltas.
func (s *session) lossDeltas() (phases map[string]float64, buckets map[string]int64) {
	p := s.sys.Engine.Capabilities().Loss
	if p == nil {
		return nil, nil
	}
	lr := p.LossReport()
	if s.lastPhaseSecs == nil {
		s.lastPhaseSecs = make(map[string]float64, len(lr.Phases)+2)
		s.lastTaskCounts = make(map[string]int64, len(lr.TaskSizes))
	}
	phases = make(map[string]float64, len(lr.Phases)+2)
	add := func(name string, cum float64) {
		if cum < s.lastPhaseSecs[name] {
			s.lastPhaseSecs[name] = 0
		}
		phases[name] = cum - s.lastPhaseSecs[name]
		s.lastPhaseSecs[name] = cum
	}
	for _, ps := range lr.Phases {
		add(ps.Phase, ps.Seconds)
	}
	add("seed", lr.SeedSeconds)
	add("merge", lr.MergeSeconds)
	buckets = make(map[string]int64, len(lr.TaskSizes))
	for _, b := range lr.TaskSizes {
		le := "+Inf"
		if b.UpToNanos > 0 {
			le = strconv.FormatInt(b.UpToNanos, 10)
		}
		if b.Count < s.lastTaskCounts[le] {
			s.lastTaskCounts[le] = 0
		}
		buckets[le] = b.Count - s.lastTaskCounts[le]
		s.lastTaskCounts[le] = b.Count
	}
	return phases, buckets
}

// info snapshots the session, owned-goroutine only.
func (s *session) info(shard int, now time.Time) SessionInfo {
	info := SessionInfo{
		ID:              s.id,
		Shard:           shard,
		Matcher:         s.sys.MatcherKind().String(),
		Strategy:        s.sys.CS.Strategy().String(),
		Productions:     len(s.sys.Productions()),
		ParallelFirings: s.spec.ParallelFirings,
		Quota:           s.quota,
		WMSize:          s.sys.WM.Size(),
		ConflictSize:    s.sys.CS.Len(),
		Cycles:          s.sys.Cycles,
		Fired:           s.sys.Fired,
		TotalChanges:    s.sys.TotalChanges,
		Halted:          s.sys.Halted,
		Requests:        s.requests,
		Age:             now.Sub(s.created),
		Clock:           s.sys.Engine.Clock,
		Expired:         s.sys.Engine.Expired,
		PendingExpiries: s.sys.Engine.PendingExpiries(),
	}
	if s.trace != nil {
		info.TraceSpans = s.trace.Len()
		info.TraceTotal = s.trace.Total()
		if sp, ok := s.trace.Last(); ok {
			info.LastCycle = sp.Total()
		}
	}
	if s.log != nil {
		info.Durable = true
		info.Recovered, info.ReplayedRecords = s.log.Recovered()
		info.WALSeq, info.SnapshotSeq, info.WALRecords, info.WALBytes = s.log.Stats()
		if err := s.log.Err(); err != nil {
			info.WALError = err.Error()
		}
	}
	return info
}

// wmeInfo converts one WME for the wire.
func wmeInfo(w *ops5.WME) WMEInfo {
	fields := w.Fields()
	attrs := make(map[string]ops5.Value, len(fields))
	for _, f := range fields {
		attrs[sym.Name(f.Attr)] = f.Val
	}
	return WMEInfo{Tag: w.TimeTag, Class: w.Class(), Attrs: attrs}
}
