package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/ops5"
)

// Wire types for the JSON API. OPS5 values map onto JSON naturally:
// numbers stay numbers, symbols are strings, nil is null.

// CreateRequest is the body of POST /sessions.
type CreateRequest struct {
	ID              string `json:"id,omitempty"`
	Program         string `json:"program"`
	Matcher         string `json:"matcher,omitempty"`
	Strategy        string `json:"strategy,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	ParallelFirings int    `json:"parallel_firings,omitempty"`
	MaxWMEs         int    `json:"max_wmes,omitempty"`
	MaxCycles       int    `json:"max_cycles_per_request,omitempty"`
}

// WireChange is one change in POST /sessions/{id}/changes.
type WireChange struct {
	Op    string         `json:"op"` // "assert" | "retract"
	Class string         `json:"class,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
	Tag   int            `json:"tag,omitempty"`
}

// ChangesRequest is the body of POST /sessions/{id}/changes.
type ChangesRequest struct {
	Changes []WireChange `json:"changes"`
}

// ChangesResponse reports a committed batch.
type ChangesResponse struct {
	Applied      int   `json:"applied"`
	Tags         []int `json:"tags,omitempty"`
	WMSize       int   `json:"wm_size"`
	ConflictSize int   `json:"conflict_size"`
}

// RunRequest is the body of POST /sessions/{id}/run.
type RunRequest struct {
	Cycles int `json:"cycles,omitempty"` // 0 = until quiescence/halt/quota
}

// RunResponse reports an executed run.
type RunResponse struct {
	Cycles       int  `json:"cycles"`
	Fired        int  `json:"fired"`
	Halted       bool `json:"halted"`
	Quiesced     bool `json:"quiesced"`
	LimitHit     bool `json:"limit_hit"`
	WMSize       int  `json:"wm_size"`
	ConflictSize int  `json:"conflict_size"`
}

// WireWME is one working-memory element on the wire.
type WireWME struct {
	Tag   int            `json:"tag"`
	Class string         `json:"class"`
	Attrs map[string]any `json:"attrs"`
}

// WireInst is one conflict-set instantiation on the wire.
type WireInst struct {
	Production string    `json:"production"`
	Key        string    `json:"key"`
	WMEs       []WireWME `json:"wmes"`
}

// SessionResponse reports a session's state.
type SessionResponse struct {
	ID              string  `json:"id"`
	Shard           int     `json:"shard"`
	Matcher         string  `json:"matcher"`
	Strategy        string  `json:"strategy"`
	Productions     int     `json:"productions"`
	ParallelFirings int     `json:"parallel_firings,omitempty"`
	MaxWMEs         int     `json:"max_wmes,omitempty"`
	MaxCycles       int     `json:"max_cycles_per_request,omitempty"`
	WMSize          int     `json:"wm_size"`
	ConflictSize    int     `json:"conflict_size"`
	Cycles          int     `json:"cycles"`
	Fired           int     `json:"fired"`
	TotalChanges    int     `json:"total_changes"`
	Halted          bool    `json:"halted"`
	Requests        int64   `json:"requests"`
	AgeSeconds      float64 `json:"age_seconds"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// HandlerConfig tunes the HTTP layer.
type HandlerConfig struct {
	// RequestTimeout is the per-request deadline threaded through the
	// shard mailbox into the engine's cycle loop (default 30s; <0
	// disables).
	RequestTimeout time.Duration
}

// Handler returns the HTTP API with default settings.
func (s *Server) Handler() http.Handler { return s.HandlerWith(HandlerConfig{}) }

// HandlerWith returns the HTTP API:
//
//	POST   /sessions                create a session (program in body)
//	GET    /sessions                list sessions
//	GET    /sessions/{id}           session stats
//	DELETE /sessions/{id}           delete a session
//	POST   /sessions/{id}/changes   submit batched assert/retract changes
//	POST   /sessions/{id}/run       run N recognize-act cycles
//	GET    /sessions/{id}/conflicts conflict set (LEX order)
//	GET    /sessions/{id}/wm        working memory (?class= filters)
//	GET    /metrics                 serving metrics, text exposition
//	GET    /statusz                 human-readable session table
//	GET    /healthz                 liveness
func (s *Server) HandlerWith(cfg HandlerConfig) http.Handler {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	mux := http.NewServeMux()
	h := func(fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ctx := r.Context()
			if cfg.RequestTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, cfg.RequestTimeout)
				defer cancel()
			}
			if err := fn(w, r.WithContext(ctx)); err != nil {
				writeError(w, err)
			}
		}
	}

	mux.HandleFunc("POST /sessions", h(s.handleCreate))
	mux.HandleFunc("GET /sessions", h(s.handleList))
	mux.HandleFunc("GET /sessions/{id}", h(s.handleStats))
	mux.HandleFunc("DELETE /sessions/{id}", h(s.handleDelete))
	mux.HandleFunc("POST /sessions/{id}/changes", h(s.handleChanges))
	mux.HandleFunc("POST /sessions/{id}/run", h(s.handleRun))
	mux.HandleFunc("GET /sessions/{id}/conflicts", h(s.handleConflicts))
	mux.HandleFunc("GET /sessions/{id}/wm", h(s.handleWM))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.registry.WriteText(w)
	})
	mux.HandleFunc("GET /statusz", h(s.handleStatusz))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) error {
	var req CreateRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	info, err := s.CreateSession(r.Context(), CreateSpec{
		ID:              req.ID,
		Program:         req.Program,
		Matcher:         req.Matcher,
		Strategy:        req.Strategy,
		Workers:         req.Workers,
		ParallelFirings: req.ParallelFirings,
		Quota:           Quota{MaxWMEs: req.MaxWMEs, MaxCyclesPerRequest: req.MaxCycles},
	})
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusCreated, sessionResponse(info))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	infos, err := s.Sessions(r.Context())
	if err != nil {
		return err
	}
	out := make([]SessionResponse, len(infos))
	for i, info := range infos {
		out[i] = sessionResponse(info)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	info, err := s.SessionStats(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, sessionResponse(info))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.DeleteSession(r.Context(), r.PathValue("id")); err != nil {
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) error {
	var req ChangesRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	specs := make([]ChangeSpec, len(req.Changes))
	for i, c := range req.Changes {
		spec := ChangeSpec{Op: ChangeOp(c.Op), Class: c.Class, Tag: c.Tag}
		if len(c.Attrs) > 0 {
			spec.Attrs = make(map[string]ops5.Value, len(c.Attrs))
			for k, v := range c.Attrs {
				val, err := jsonToValue(v)
				if err != nil {
					return badReqf("change %d attribute %q: %v", i, k, err)
				}
				spec.Attrs[k] = val
			}
		}
		specs[i] = spec
	}
	res, err := s.Apply(r.Context(), r.PathValue("id"), specs)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, ChangesResponse{
		Applied: res.Applied, Tags: res.Tags,
		WMSize: res.WMSize, ConflictSize: res.ConflictSize,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) error {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	res, err := s.RunCycles(r.Context(), r.PathValue("id"), req.Cycles)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, RunResponse{
		Cycles: res.Cycles, Fired: res.Fired, Halted: res.Halted,
		Quiesced: res.Quiesced, LimitHit: res.LimitHit,
		WMSize: res.WMSize, ConflictSize: res.ConflictSize,
	})
}

func (s *Server) handleConflicts(w http.ResponseWriter, r *http.Request) error {
	insts, err := s.Conflicts(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	out := make([]WireInst, len(insts))
	for i, inst := range insts {
		wi := WireInst{Production: inst.Production, Key: inst.Key, WMEs: make([]WireWME, len(inst.WMEs))}
		for j, wme := range inst.WMEs {
			wi.WMEs[j] = wireWME(wme)
		}
		out[i] = wi
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWM(w http.ResponseWriter, r *http.Request) error {
	wmes, err := s.WM(r.Context(), r.PathValue("id"), r.URL.Query().Get("class"))
	if err != nil {
		return err
	}
	out := make([]WireWME, len(wmes))
	for i, wme := range wmes {
		out[i] = wireWME(wme)
	}
	return writeJSON(w, http.StatusOK, out)
}

// handleStatusz renders the live sessions as an aligned table, reusing
// the experiment harness's renderer (internal/metrics).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) error {
	infos, err := s.Sessions(r.Context())
	if err != nil {
		return err
	}
	rows := make([][]string, len(infos))
	for i, in := range infos {
		rows[i] = []string{
			in.ID, strconv.Itoa(in.Shard), in.Matcher, in.Strategy,
			strconv.Itoa(in.Productions), strconv.Itoa(in.WMSize),
			strconv.Itoa(in.ConflictSize), strconv.Itoa(in.Cycles),
			strconv.Itoa(in.Fired), strconv.Itoa(in.TotalChanges),
			strconv.FormatBool(in.Halted),
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d sessions, uptime %s\n\n", len(infos), time.Since(s.start).Round(time.Second))
	fmt.Fprint(w, metrics.Table(
		[]string{"session", "shard", "matcher", "strategy", "prods", "wm", "conflicts", "cycles", "fired", "changes", "halted"},
		rows))
	return nil
}

// sessionResponse converts a SessionInfo for the wire.
func sessionResponse(in SessionInfo) SessionResponse {
	return SessionResponse{
		ID: in.ID, Shard: in.Shard, Matcher: in.Matcher, Strategy: in.Strategy,
		Productions: in.Productions, ParallelFirings: in.ParallelFirings,
		MaxWMEs: in.Quota.MaxWMEs, MaxCycles: in.Quota.MaxCyclesPerRequest,
		WMSize: in.WMSize, ConflictSize: in.ConflictSize,
		Cycles: in.Cycles, Fired: in.Fired, TotalChanges: in.TotalChanges,
		Halted: in.Halted, Requests: in.Requests, AgeSeconds: in.Age.Seconds(),
	}
}

// wireWME converts a WMEInfo for the wire.
func wireWME(in WMEInfo) WireWME {
	attrs := make(map[string]any, len(in.Attrs))
	for k, v := range in.Attrs {
		attrs[k] = valueToJSON(v)
	}
	return WireWME{Tag: in.Tag, Class: in.Class, Attrs: attrs}
}

// jsonToValue maps a decoded JSON value onto an OPS5 value.
func jsonToValue(v any) (ops5.Value, error) {
	switch x := v.(type) {
	case nil:
		return ops5.Value{}, nil
	case string:
		return ops5.Sym(x), nil
	case float64:
		return ops5.Num(x), nil
	case bool:
		// OPS5 has no booleans; symbols true/false keep round-trips sane.
		return ops5.Sym(strconv.FormatBool(x)), nil
	default:
		return ops5.Value{}, fmt.Errorf("unsupported JSON value %T (want string, number, or null)", v)
	}
}

// valueToJSON maps an OPS5 value onto its JSON representation.
func valueToJSON(v ops5.Value) any {
	switch v.Kind {
	case ops5.SymValue:
		return v.Sym
	case ops5.NumValue:
		return v.Num
	default:
		return nil
	}
}

// decodeJSON strictly decodes a request body.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badReqf("bad request body: %v", err)
	}
	return nil
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, body any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(body)
}

// writeError maps service errors onto HTTP statuses:
//
//	404 unknown session          409 duplicate session
//	400 malformed input          413 working-memory quota
//	429 shard backpressure       504 request deadline
//	503 server shutting down     408 client went away
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var busy *BusyError
	var badReq *BadRequestError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(int(busy.RetryAfter.Seconds())))
		status = http.StatusTooManyRequests
	case errors.As(err, &badReq):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNoSession):
		status = http.StatusNotFound
	case errors.Is(err, ErrSessionExists):
		status = http.StatusConflict
	case errors.Is(err, ErrWMQuota):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrServerClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = http.StatusRequestTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
