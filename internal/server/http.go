package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/ops5"
)

// Wire types for the JSON API. OPS5 values map onto JSON naturally:
// numbers stay numbers, symbols are strings, nil is null.

// CreateRequest is the body of POST /sessions.
type CreateRequest struct {
	ID              string `json:"id,omitempty"`
	Program         string `json:"program"`
	Matcher         string `json:"matcher,omitempty"`
	Strategy        string `json:"strategy,omitempty"`
	Workers         int    `json:"workers,omitempty"`
	NoSteal         bool   `json:"no_steal,omitempty"`
	ParallelFirings int    `json:"parallel_firings,omitempty"`
	MaxWMEs         int    `json:"max_wmes,omitempty"`
	MaxCycles       int    `json:"max_cycles_per_request,omitempty"`
}

// WireChange is one change in POST /sessions/{id}/changes.
type WireChange struct {
	Op    string         `json:"op"` // "assert" | "retract"
	Class string         `json:"class,omitempty"`
	Attrs map[string]any `json:"attrs,omitempty"`
	Tag   int            `json:"tag,omitempty"`
}

// ChangesRequest is the body of POST /sessions/{id}/changes.
type ChangesRequest struct {
	Changes []WireChange `json:"changes"`
}

// ChangesResponse reports a committed batch.
type ChangesResponse struct {
	Applied      int   `json:"applied"`
	Tags         []int `json:"tags,omitempty"`
	WMSize       int   `json:"wm_size"`
	ConflictSize int   `json:"conflict_size"`
}

// RunRequest is the body of POST /sessions/{id}/run.
type RunRequest struct {
	Cycles int `json:"cycles,omitempty"` // 0 = until quiescence/halt/quota
}

// RunResponse reports an executed run.
type RunResponse struct {
	Cycles       int  `json:"cycles"`
	Fired        int  `json:"fired"`
	Halted       bool `json:"halted"`
	Quiesced     bool `json:"quiesced"`
	LimitHit     bool `json:"limit_hit"`
	WMSize       int  `json:"wm_size"`
	ConflictSize int  `json:"conflict_size"`
}

// StreamEvent is one NDJSON line of POST /sessions/{id}/stream: an
// event fact to assert. ts, when set, advances the session's logical
// clock to at least that value before the event lands (monotone —
// out-of-order timestamps never move the clock backward). ttl, when
// positive, makes the fact an expiring event: the engine retracts it
// once the clock has advanced ttl ticks past the insert.
type StreamEvent struct {
	Class string         `json:"class"`
	Attrs map[string]any `json:"attrs,omitempty"`
	TS    int64          `json:"ts,omitempty"`
	TTL   int            `json:"ttl,omitempty"`
}

// StreamResponse summarises one stream connection's ingest: the body of
// POST /sessions/{id}/stream on success. Clock, WMSize and ConflictSize
// reflect the session after the final batch.
type StreamResponse struct {
	SessionID    string `json:"session_id"`
	Events       int    `json:"events"`
	Batches      int    `json:"batches"`
	Fired        int    `json:"fired"`
	Cycles       int    `json:"cycles"`
	Expired      int    `json:"expired"`
	Clock        int64  `json:"clock"`
	WMSize       int    `json:"wm_size"`
	ConflictSize int    `json:"conflict_size"`
}

// WireWME is one working-memory element on the wire.
type WireWME struct {
	Tag   int            `json:"tag"`
	Class string         `json:"class"`
	Attrs map[string]any `json:"attrs"`
}

// WireInst is one conflict-set instantiation on the wire.
type WireInst struct {
	Production string    `json:"production"`
	Key        string    `json:"key"`
	WMEs       []WireWME `json:"wmes"`
}

// SessionResponse reports a session's state.
type SessionResponse struct {
	ID              string  `json:"id"`
	Shard           int     `json:"shard"`
	Matcher         string  `json:"matcher"`
	Strategy        string  `json:"strategy"`
	Productions     int     `json:"productions"`
	ParallelFirings int     `json:"parallel_firings,omitempty"`
	MaxWMEs         int     `json:"max_wmes,omitempty"`
	MaxCycles       int     `json:"max_cycles_per_request,omitempty"`
	WMSize          int     `json:"wm_size"`
	ConflictSize    int     `json:"conflict_size"`
	Cycles          int     `json:"cycles"`
	Fired           int     `json:"fired"`
	TotalChanges    int     `json:"total_changes"`
	Halted          bool    `json:"halted"`
	Requests        int64   `json:"requests"`
	AgeSeconds      float64 `json:"age_seconds"`
	TraceSpans      int     `json:"trace_spans"`
	TraceTotal      int64   `json:"trace_total"`
	LastCycleSecs   float64 `json:"last_cycle_seconds,omitempty"`
	// Streaming: the logical clock, cumulative TTL expiries, and live
	// elements still awaiting expiry.
	Clock           int64 `json:"clock,omitempty"`
	Expired         int   `json:"expired,omitempty"`
	PendingExpiries int   `json:"pending_expiries,omitempty"`
	// Durability: present when the server runs with -data-dir.
	Durable         bool   `json:"durable,omitempty"`
	Recovered       bool   `json:"recovered,omitempty"`
	ReplayedRecords int64  `json:"replayed_records,omitempty"`
	WALSeq          int64  `json:"wal_seq,omitempty"`
	SnapshotSeq     int64  `json:"snapshot_seq,omitempty"`
	WALRecords      int64  `json:"wal_records,omitempty"`
	WALBytes        int64  `json:"wal_bytes,omitempty"`
	WALError        string `json:"wal_error,omitempty"`
}

// SnapshotResponse reports a forced checkpoint
// (POST /v1/sessions/{id}/snapshot).
type SnapshotResponse struct {
	SessionID string `json:"session_id"`
	Seq       int64  `json:"seq"`
	Bytes     int    `json:"bytes"`
	WMEs      int    `json:"wmes"`
}

// WireSpan is one engine step on the wire (phase durations in seconds).
type WireSpan struct {
	TraceID       string    `json:"trace_id,omitempty"`
	Kind          string    `json:"kind"`
	Cycle         int       `json:"cycle"`
	Start         time.Time `json:"start"`
	TotalSeconds  float64   `json:"total_seconds"`
	MatchSeconds  float64   `json:"match_seconds"`
	SelectSeconds float64   `json:"select_seconds"`
	ActSeconds    float64   `json:"act_seconds"`
	Fired         int       `json:"fired"`
	Changes       int       `json:"changes"`
	WMSize        int       `json:"wm_size"`
	ConflictSize  int       `json:"conflict_size"`
}

// TraceResponse is the body of GET /v1/sessions/{id}/trace.
type TraceResponse struct {
	SessionID string     `json:"session_id"`
	Evicted   bool       `json:"evicted"`
	Total     int64      `json:"total_spans"`
	Spans     []WireSpan `json:"spans"`
}

// WireProfileNode is one match-network node in a profile, with its
// share of the profile's total cost.
type WireProfileNode struct {
	NodeID        int      `json:"node_id"`
	Label         string   `json:"label"`
	SharedBy      int      `json:"shared_by,omitempty"`
	Productions   []string `json:"productions,omitempty"`
	Activations   int64    `json:"activations"`
	TokensTested  int64    `json:"tokens_tested"`
	PairsEmitted  int64    `json:"pairs_emitted"`
	IndexedProbes int64    `json:"indexed_probes"`
	Cost          float64  `json:"cost"`
	CostShare     float64  `json:"cost_share"`
}

// WireMatchStats summarises whole-matcher work in a profile. The
// scheduler fields (tasks/steals/parks/workers) are present only for
// the parallel matcher.
type WireMatchStats struct {
	Changes         int64            `json:"changes"`
	Comparisons     int64            `json:"comparisons"`
	ConflictInserts int64            `json:"conflict_inserts"`
	ConflictRemoves int64            `json:"conflict_removes"`
	Tasks           int64            `json:"tasks,omitempty"`
	Steals          int64            `json:"steals,omitempty"`
	Parks           int64            `json:"parks,omitempty"`
	Wakeups         int64            `json:"wakeups,omitempty"`
	InlineBatches   int64            `json:"inline_batches,omitempty"`
	ResidentWorkers int              `json:"resident_workers,omitempty"`
	Workers         []WireWorkerStat `json:"workers,omitempty"`
}

// WireWorkerStat is one scheduler lane's counters on the wire.
type WireWorkerStat struct {
	Executed int64 `json:"executed"`
	Stolen   int64 `json:"stolen"`
	Parked   int64 `json:"parked"`
}

// WireIndex summarises a matcher's hash-index state in a profile.
type WireIndex struct {
	IndexedNodes  int `json:"indexed_nodes"`
	FallbackNodes int `json:"fallback_nodes"`
	Buckets       int `json:"buckets"`
	MaxBucket     int `json:"max_bucket"`
}

// WirePhaseSeconds is one scheduler phase's accumulated wall time.
type WirePhaseSeconds struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// WireWorkerLoss is one scheduler lane's phase breakdown.
type WireWorkerLoss struct {
	Worker int                `json:"worker"`
	Tasks  int64              `json:"tasks"`
	Phases []WirePhaseSeconds `json:"phases"`
}

// WireTaskBucket is one bar of the task-size histogram: activations
// that executed in at most up_to_nanos (0 marks the open top bucket).
type WireTaskBucket struct {
	UpToNanos int64 `json:"up_to_nanos"`
	Count     int64 `json:"count"`
}

// WireLossComponent is one term of the loss decomposition.
type WireLossComponent struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Share   float64 `json:"share"`
}

// WireLoss is a session's loss-factor accounting on the wire — the
// paper's §6 decomposition of where parallel speedup goes.
type WireLoss struct {
	Workers               int                 `json:"workers"`
	Batches               int                 `json:"batches"`
	ApplySeconds          float64             `json:"apply_seconds"`
	SeedSeconds           float64             `json:"seed_seconds"`
	ActiveSeconds         float64             `json:"active_seconds"`
	MergeSeconds          float64             `json:"merge_seconds"`
	Phases                []WirePhaseSeconds  `json:"phases"`
	PerWorker             []WireWorkerLoss    `json:"per_worker,omitempty"`
	TaskSizes             []WireTaskBucket    `json:"task_sizes,omitempty"`
	SerialEstimateSeconds float64             `json:"serial_estimate_seconds"`
	TrueSpeedup           float64             `json:"true_speedup"`
	NominalConcurrency    float64             `json:"nominal_concurrency"`
	LossFactor            float64             `json:"loss_factor"`
	Decomposition         []WireLossComponent `json:"decomposition"`
}

// LossResponse is the body of GET /v1/sessions/{id}/loss.
type LossResponse struct {
	SessionID string    `json:"session_id"`
	Matcher   string    `json:"matcher"`
	Supported bool      `json:"supported"`
	Loss      *WireLoss `json:"loss,omitempty"`
}

// ProfileResponse is the body of GET /v1/sessions/{id}/profile.
type ProfileResponse struct {
	SessionID      string            `json:"session_id"`
	Matcher        string            `json:"matcher"`
	Cycles         int               `json:"cycles"`
	TotalChanges   int               `json:"total_changes"`
	NodesSupported bool              `json:"nodes_supported"`
	TotalCost      float64           `json:"total_cost"`
	Nodes          []WireProfileNode `json:"nodes"`
	Truncated      int               `json:"truncated,omitempty"`
	MatchStats     *WireMatchStats   `json:"match_stats,omitempty"`
	Index          *WireIndex        `json:"index,omitempty"`
	Loss           *WireLoss         `json:"loss,omitempty"`
}

// APIVersion is the current HTTP API version prefix. Unversioned
// paths still work as deprecated aliases and answer with a
// Deprecation header pointing at the /v1 successor.
const APIVersion = "/v1"

// ErrorResponse is the single JSON error envelope returned by every
// handler: a stable machine-readable code, a human-readable message,
// and whether retrying the identical request may succeed (shard
// backpressure, shutdown, deadline — transient conditions).
type ErrorResponse struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// HandlerConfig tunes the HTTP layer.
type HandlerConfig struct {
	// RequestTimeout is the per-request deadline threaded through the
	// shard mailbox into the engine's cycle loop (default 30s; <0
	// disables).
	RequestTimeout time.Duration
	// DisablePprof leaves the /debug/pprof endpoints unmounted.
	DisablePprof bool
}

// Handler returns the HTTP API with default settings.
func (s *Server) Handler() http.Handler { return s.HandlerWith(HandlerConfig{}) }

// HandlerWith returns the HTTP API. The sessions API is versioned
// under /v1; the unversioned paths remain as deprecated aliases that
// answer with a Deprecation header and a Link to the /v1 successor.
// Every error body is the ErrorResponse envelope.
//
//	POST   /v1/sessions                create a session (program in body)
//	GET    /v1/sessions                list sessions
//	GET    /v1/sessions/{id}           session stats
//	DELETE /v1/sessions/{id}           delete a session
//	POST   /v1/sessions/{id}/changes   submit batched assert/retract changes
//	POST   /v1/sessions/{id}/run       run N recognize-act cycles
//	POST   /v1/sessions/{id}/stream    ingest NDJSON event batches (TTL'd facts)
//	GET    /v1/sessions/{id}/conflicts conflict set (LEX order)
//	GET    /v1/sessions/{id}/wm        working memory (?class= filters)
//	GET    /v1/sessions/{id}/trace     recent cycle spans (survives deletion)
//	GET    /v1/sessions/{id}/profile   hot-node profile (?top= truncates)
//	GET    /v1/sessions/{id}/loss      loss-factor accounting (§6 decomposition)
//	POST   /v1/sessions/{id}/snapshot  force a durable checkpoint
//	GET    /metrics                    serving metrics, text exposition
//	GET    /statusz                    human-readable session table
//	GET    /healthz                    liveness
//	GET    /readyz                     readiness (503 while recovering or draining)
//	GET    /debug/pprof/...            runtime profiles (unless disabled)
//
// /metrics, /statusz, /healthz and /debug/pprof are operational
// endpoints and stay unversioned.
//
// Every request is traced: the X-Request-Id header (or a generated ID)
// becomes the request's trace ID, echoed in the response header,
// threaded through the engine into cycle spans, and attached to the
// structured request log line.
func (s *Server) HandlerWith(cfg HandlerConfig) http.Handler {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	mux := http.NewServeMux()
	h := func(fn func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ctx := r.Context()
			if cfg.RequestTimeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, cfg.RequestTimeout)
				defer cancel()
			}
			if err := fn(w, r.WithContext(ctx)); err != nil {
				writeError(w, err)
			}
		}
	}
	// api registers pattern ("METHOD /path") under /v1 and keeps the
	// unversioned path as a deprecated alias.
	api := func(pattern string, fn func(w http.ResponseWriter, r *http.Request) error) {
		method, path, ok := strings.Cut(pattern, " ")
		if !ok {
			panic("server: route pattern must be \"METHOD /path\": " + pattern)
		}
		handler := h(fn)
		mux.HandleFunc(method+" "+APIVersion+path, handler)
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			s.deprecated.Add(1)
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", "<"+APIVersion+r.URL.Path+`>; rel="successor-version"`)
			handler(w, r)
		})
	}

	api("POST /sessions", s.handleCreate)
	api("GET /sessions", s.handleList)
	api("GET /sessions/{id}", s.handleStats)
	api("DELETE /sessions/{id}", s.handleDelete)
	api("POST /sessions/{id}/changes", s.handleChanges)
	api("POST /sessions/{id}/run", s.handleRun)
	api("POST /sessions/{id}/stream", s.handleStream)
	api("GET /sessions/{id}/conflicts", s.handleConflicts)
	api("GET /sessions/{id}/wm", s.handleWM)
	api("GET /sessions/{id}/trace", s.handleTrace)
	api("GET /sessions/{id}/profile", s.handleProfile)
	api("GET /sessions/{id}/loss", s.handleLoss)
	api("POST /sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.registry.WriteText(w)
	})
	mux.HandleFunc("GET /statusz", h(s.handleStatusz))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	// /readyz is liveness plus willingness: 503 while startup recovery
	// or a drain is in progress, so load balancers and cluster routing
	// skip nodes that are up but should not take new work.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	if !cfg.DisablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.observeHTTP(mux)
}

// observeHTTP wraps the API with per-request tracing and structured
// logging: the X-Request-Id header (or a fresh ID) becomes the
// request's trace ID — propagated via context into the engine and
// echoed in the response — and every request emits one log line with
// trace ID, session, shard, status and latency. Operational endpoints
// log at debug level to keep scrape noise out of info logs.
func (s *Server) observeHTTP(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traceID := r.Header.Get("X-Request-Id")
		if traceID == "" {
			traceID = obs.NewTraceID()
		}
		w.Header().Set("X-Request-Id", traceID)
		ctx := obs.WithTraceID(r.Context(), traceID)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(rec, r.WithContext(ctx))

		level := slog.LevelInfo
		if operational(r.URL.Path) {
			level = slog.LevelDebug
		}
		attrs := []slog.Attr{
			slog.String("trace_id", traceID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("latency", time.Since(t0)),
		}
		if id := sessionFromPath(r.URL.Path); id != "" {
			attrs = append(attrs,
				slog.String("session", id),
				slog.Int("shard", s.shardFor(id).id))
		}
		s.logger.LogAttrs(ctx, level, "request", attrs...)
	})
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// operational reports whether a path is a scrape/probe endpoint whose
// request logs belong at debug level.
func operational(path string) bool {
	return path == "/metrics" || path == "/healthz" || path == "/readyz" ||
		path == "/statusz" || strings.HasPrefix(path, "/debug/pprof")
}

// sessionFromPath extracts the session ID from a sessions API path
// (best-effort, for log attribution only).
func sessionFromPath(path string) string {
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for i, p := range parts {
		if p == "sessions" && i+1 < len(parts) {
			return parts[i+1]
		}
	}
	return ""
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) error {
	var req CreateRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	info, err := s.CreateSession(r.Context(), CreateSpec{
		ID:              req.ID,
		Program:         req.Program,
		Matcher:         req.Matcher,
		Strategy:        req.Strategy,
		Workers:         req.Workers,
		NoSteal:         req.NoSteal,
		ParallelFirings: req.ParallelFirings,
		Quota:           Quota{MaxWMEs: req.MaxWMEs, MaxCyclesPerRequest: req.MaxCycles},
	})
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusCreated, sessionResponse(info))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	infos, err := s.Sessions(r.Context())
	if err != nil {
		return err
	}
	out := make([]SessionResponse, len(infos))
	for i, info := range infos {
		out[i] = sessionResponse(info)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	info, err := s.SessionStats(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, sessionResponse(info))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	if err := s.DeleteSession(r.Context(), r.PathValue("id")); err != nil {
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) error {
	var req ChangesRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	specs := make([]ChangeSpec, len(req.Changes))
	for i, c := range req.Changes {
		spec := ChangeSpec{Op: ChangeOp(c.Op), Class: c.Class, Tag: c.Tag}
		if len(c.Attrs) > 0 {
			spec.Attrs = make(map[string]ops5.Value, len(c.Attrs))
			for k, v := range c.Attrs {
				val, err := jsonToValue(v)
				if err != nil {
					return badReqf("change %d attribute %q: %v", i, k, err)
				}
				spec.Attrs[k] = val
			}
		}
		specs[i] = spec
	}
	res, err := s.Apply(r.Context(), r.PathValue("id"), specs)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, ChangesResponse{
		Applied: res.Applied, Tags: res.Tags,
		WMSize: res.WMSize, ConflictSize: res.ConflictSize,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) error {
	var req RunRequest
	if err := decodeJSON(r, &req); err != nil {
		return err
	}
	res, err := s.RunCycles(r.Context(), r.PathValue("id"), req.Cycles)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, RunResponse{
		Cycles: res.Cycles, Fired: res.Fired, Halted: res.Halted,
		Quiesced: res.Quiesced, LimitHit: res.LimitHit,
		WMSize: res.WMSize, ConflictSize: res.ConflictSize,
	})
}

// streamBatchSize is how many NDJSON events one shard dispatch carries:
// large enough to amortize the mailbox round trip, small enough that a
// slow rule pack yields the shard to other tenants between batches.
const streamBatchSize = 256

// streamMaxLine bounds one NDJSON line (1 MiB).
const streamMaxLine = 1 << 20

// handleStream ingests a chunked NDJSON event stream: one JSON object
// per line (StreamEvent), applied in batches of streamBatchSize, each
// batch one shard dispatch that advances the clock, expires due events,
// asserts the new ones, and cycles to quiescence. Backpressure is
// connection-level: a full shard mailbox fails the stream with the
// standard 429 busy envelope plus Retry-After, and any mid-stream
// failure carries X-Stream-Events-Applied so the client can resume from
// the first unapplied event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	out := StreamResponse{SessionID: id}
	var batch []EventSpec
	// Events parsed but never dispatched leave the lag gauge here;
	// dispatched batches settle their own lag in StreamApply.
	defer func() { s.StreamLagAdd(-int64(len(batch))) }()
	fail := func(err error) error {
		w.Header().Set("X-Stream-Events-Applied", strconv.Itoa(out.Events))
		return err
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res, err := s.StreamApply(r.Context(), id, batch)
		batch = batch[:0]
		if err != nil {
			return err
		}
		out.Events += res.Events
		out.Batches++
		out.Fired += res.Fired
		out.Cycles += res.Cycles
		out.Expired += res.Expired
		out.Clock = res.Clock
		out.WMSize, out.ConflictSize = res.WMSize, res.ConflictSize
		return nil
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64<<10), streamMaxLine)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev StreamEvent
		if err := dec.Decode(&ev); err != nil {
			return fail(badReqf("stream line %d: %v", line, err))
		}
		spec := EventSpec{Class: ev.Class, TS: ev.TS, TTL: ev.TTL}
		if len(ev.Attrs) > 0 {
			spec.Attrs = make(map[string]ops5.Value, len(ev.Attrs))
			for k, v := range ev.Attrs {
				val, err := jsonToValue(v)
				if err != nil {
					return fail(badReqf("stream line %d attribute %q: %v", line, k, err))
				}
				spec.Attrs[k] = val
			}
		}
		batch = append(batch, spec)
		s.StreamLagAdd(1)
		if len(batch) >= streamBatchSize {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fail(badReqf("stream read: %v", err))
	}
	if err := flush(); err != nil {
		return fail(err)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	info, err := s.Snapshot(r.Context(), id)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, SnapshotResponse{
		SessionID: id, Seq: info.Seq, Bytes: info.Bytes, WMEs: info.WMEs,
	})
}

func (s *Server) handleConflicts(w http.ResponseWriter, r *http.Request) error {
	insts, err := s.Conflicts(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	out := make([]WireInst, len(insts))
	for i, inst := range insts {
		wi := WireInst{Production: inst.Production, Key: inst.Key, WMEs: make([]WireWME, len(inst.WMEs))}
		for j, wme := range inst.WMEs {
			wi.WMEs[j] = wireWME(wme)
		}
		out[i] = wi
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleWM(w http.ResponseWriter, r *http.Request) error {
	wmes, err := s.WM(r.Context(), r.PathValue("id"), r.URL.Query().Get("class"))
	if err != nil {
		return err
	}
	out := make([]WireWME, len(wmes))
	for i, wme := range wmes {
		out[i] = wireWME(wme)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) error {
	tr, err := s.Trace(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	out := TraceResponse{
		SessionID: tr.SessionID,
		Evicted:   tr.Evicted,
		Total:     tr.Total,
		Spans:     make([]WireSpan, len(tr.Spans)),
	}
	for i, sp := range tr.Spans {
		out.Spans[i] = wireSpan(sp)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) error {
	res, err := s.Profile(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	top := 0
	if v := r.URL.Query().Get("top"); v != "" {
		if top, err = strconv.Atoi(v); err != nil || top < 0 {
			return badReqf("bad top parameter %q: want a non-negative integer", v)
		}
	}
	out := ProfileResponse{
		SessionID:      res.SessionID,
		Matcher:        res.Matcher,
		Cycles:         res.Cycles,
		TotalChanges:   res.TotalChanges,
		NodesSupported: res.NodesSupported,
		TotalCost:      res.TotalCost,
	}
	nodes := res.Nodes
	if top > 0 && len(nodes) > top {
		out.Truncated = len(nodes) - top
		nodes = nodes[:top]
	}
	out.Nodes = make([]WireProfileNode, len(nodes))
	for i, n := range nodes {
		out.Nodes[i] = wireProfileNode(n, res.TotalCost)
	}
	if res.MatchStats != nil {
		ms := &WireMatchStats{
			Changes:         res.MatchStats.Changes,
			Comparisons:     res.MatchStats.Comparisons,
			ConflictInserts: res.MatchStats.ConflictInserts,
			ConflictRemoves: res.MatchStats.ConflictRemoves,
			Tasks:           res.MatchStats.Tasks,
			Steals:          res.MatchStats.Steals,
			Parks:           res.MatchStats.Parks,
			Wakeups:         res.MatchStats.Wakeups,
			InlineBatches:   res.MatchStats.InlineBatches,
			ResidentWorkers: res.MatchStats.ResidentWorkers,
		}
		for _, ws := range res.MatchStats.Workers {
			ms.Workers = append(ms.Workers, WireWorkerStat{
				Executed: ws.Executed, Stolen: ws.Stolen, Parked: ws.Parked,
			})
		}
		out.MatchStats = ms
	}
	if res.Index != nil {
		out.Index = &WireIndex{
			IndexedNodes:  res.Index.IndexedNodes,
			FallbackNodes: res.Index.FallbackNodes,
			Buckets:       res.Index.Buckets,
			MaxBucket:     res.Index.MaxBucket,
		}
	}
	if res.Loss != nil {
		out.Loss = wireLoss(res.Loss)
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLoss(w http.ResponseWriter, r *http.Request) error {
	res, err := s.Loss(r.Context(), r.PathValue("id"))
	if err != nil {
		return err
	}
	out := LossResponse{
		SessionID: res.SessionID,
		Matcher:   res.Matcher,
		Supported: res.Supported,
	}
	if res.Report != nil {
		out.Loss = wireLoss(res.Report)
	}
	return writeJSON(w, http.StatusOK, out)
}

// wireLoss converts a loss report for the wire.
func wireLoss(l *engine.LossReport) *WireLoss {
	phases := func(ps []engine.PhaseSeconds) []WirePhaseSeconds {
		out := make([]WirePhaseSeconds, len(ps))
		for i, p := range ps {
			out[i] = WirePhaseSeconds{Phase: p.Phase, Seconds: p.Seconds}
		}
		return out
	}
	out := &WireLoss{
		Workers:               l.Workers,
		Batches:               l.Batches,
		ApplySeconds:          l.ApplySeconds,
		SeedSeconds:           l.SeedSeconds,
		ActiveSeconds:         l.ActiveSeconds,
		MergeSeconds:          l.MergeSeconds,
		Phases:                phases(l.Phases),
		SerialEstimateSeconds: l.SerialEstimateSeconds,
		TrueSpeedup:           l.TrueSpeedup,
		NominalConcurrency:    l.NominalConcurrency,
		LossFactor:            l.LossFactor,
	}
	for _, wl := range l.PerWorker {
		out.PerWorker = append(out.PerWorker, WireWorkerLoss{
			Worker: wl.Worker, Tasks: wl.Tasks, Phases: phases(wl.Phases),
		})
	}
	for _, b := range l.TaskSizes {
		out.TaskSizes = append(out.TaskSizes, WireTaskBucket{UpToNanos: b.UpToNanos, Count: b.Count})
	}
	for _, c := range l.Decomposition {
		out.Decomposition = append(out.Decomposition, WireLossComponent{
			Name: c.Name, Seconds: c.Seconds, Share: c.Share,
		})
	}
	return out
}

// wireSpan converts a cycle span for the wire.
func wireSpan(sp obs.CycleSpan) WireSpan {
	return WireSpan{
		TraceID:       sp.TraceID,
		Kind:          string(sp.Kind),
		Cycle:         sp.Cycle,
		Start:         sp.Start,
		TotalSeconds:  sp.Total().Seconds(),
		MatchSeconds:  sp.Match.Seconds(),
		SelectSeconds: sp.Select.Seconds(),
		ActSeconds:    sp.Act.Seconds(),
		Fired:         sp.Fired,
		Changes:       sp.Changes,
		WMSize:        sp.WMSize,
		ConflictSize:  sp.ConflictSize,
	}
}

// wireProfileNode converts a profile entry for the wire, attaching its
// share of totalCost.
func wireProfileNode(n engine.NodeProfileEntry, totalCost float64) WireProfileNode {
	out := WireProfileNode{
		NodeID:        n.NodeID,
		Label:         n.Label,
		SharedBy:      n.SharedBy,
		Productions:   n.Productions,
		Activations:   n.Activations,
		TokensTested:  n.TokensTested,
		PairsEmitted:  n.PairsEmitted,
		IndexedProbes: n.IndexedProbes,
		Cost:          n.Cost,
	}
	if totalCost > 0 {
		out.CostShare = n.Cost / totalCost
	}
	return out
}

// handleStatusz renders the live sessions as an aligned table, reusing
// the experiment harness's renderer (internal/metrics).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) error {
	infos, err := s.Sessions(r.Context())
	if err != nil {
		return err
	}
	rows := make([][]string, len(infos))
	for i, in := range infos {
		rows[i] = []string{
			in.ID, strconv.Itoa(in.Shard), in.Matcher, in.Strategy,
			strconv.Itoa(in.Productions), strconv.Itoa(in.WMSize),
			strconv.Itoa(in.ConflictSize), strconv.Itoa(in.Cycles),
			strconv.Itoa(in.Fired), strconv.Itoa(in.TotalChanges),
			strconv.FormatBool(in.Halted),
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d sessions, uptime %s\n\n", len(infos), time.Since(s.start).Round(time.Second))
	fmt.Fprint(w, metrics.Table(
		[]string{"session", "shard", "matcher", "strategy", "prods", "wm", "conflicts", "cycles", "fired", "changes", "halted"},
		rows))
	return nil
}

// sessionResponse converts a SessionInfo for the wire.
func sessionResponse(in SessionInfo) SessionResponse {
	return SessionResponse{
		ID: in.ID, Shard: in.Shard, Matcher: in.Matcher, Strategy: in.Strategy,
		Productions: in.Productions, ParallelFirings: in.ParallelFirings,
		MaxWMEs: in.Quota.MaxWMEs, MaxCycles: in.Quota.MaxCyclesPerRequest,
		WMSize: in.WMSize, ConflictSize: in.ConflictSize,
		Cycles: in.Cycles, Fired: in.Fired, TotalChanges: in.TotalChanges,
		Halted: in.Halted, Requests: in.Requests, AgeSeconds: in.Age.Seconds(),
		TraceSpans: in.TraceSpans, TraceTotal: in.TraceTotal,
		LastCycleSecs: in.LastCycle.Seconds(),
		Clock:         in.Clock, Expired: in.Expired, PendingExpiries: in.PendingExpiries,
		Durable: in.Durable, Recovered: in.Recovered,
		ReplayedRecords: in.ReplayedRecords,
		WALSeq:          in.WALSeq, SnapshotSeq: in.SnapshotSeq,
		WALRecords: in.WALRecords, WALBytes: in.WALBytes, WALError: in.WALError,
	}
}

// wireWME converts a WMEInfo for the wire.
func wireWME(in WMEInfo) WireWME {
	attrs := make(map[string]any, len(in.Attrs))
	for k, v := range in.Attrs {
		attrs[k] = valueToJSON(v)
	}
	return WireWME{Tag: in.Tag, Class: in.Class, Attrs: attrs}
}

// jsonToValue maps a decoded JSON value onto an OPS5 value.
func jsonToValue(v any) (ops5.Value, error) {
	switch x := v.(type) {
	case nil:
		return ops5.Value{}, nil
	case string:
		return ops5.Sym(x), nil
	case float64:
		return ops5.Num(x), nil
	case bool:
		// OPS5 has no booleans; symbols true/false keep round-trips sane.
		return ops5.Sym(strconv.FormatBool(x)), nil
	default:
		return ops5.Value{}, fmt.Errorf("unsupported JSON value %T (want string, number, or null)", v)
	}
}

// valueToJSON maps an OPS5 value onto its JSON representation.
func valueToJSON(v ops5.Value) any {
	switch v.Kind {
	case ops5.SymValue:
		return v.SymName()
	case ops5.NumValue:
		return v.Num
	default:
		return nil
	}
}

// decodeJSON strictly decodes a request body.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badReqf("bad request body: %v", err)
	}
	return nil
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, body any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(body)
}

// writeError maps service errors onto HTTP statuses and the
// ErrorResponse envelope:
//
//	429 busy (retryable)         404 not_found
//	400 bad_request              409 already_exists
//	413 wm_quota                 503 unavailable (retryable)
//	504 deadline (retryable)     408 canceled
//	500 internal
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	code := "internal"
	retryable := false
	var busy *BusyError
	var badReq *BadRequestError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(int(busy.RetryAfter.Seconds())))
		status, code, retryable = http.StatusTooManyRequests, "busy", true
	case errors.As(err, &badReq):
		status, code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, ErrNoSession):
		status, code = http.StatusNotFound, "not_found"
	case errors.Is(err, ErrSessionExists):
		status, code = http.StatusConflict, "already_exists"
	case errors.Is(err, ErrWMQuota):
		status, code = http.StatusRequestEntityTooLarge, "wm_quota"
	case errors.Is(err, ErrServerClosed):
		status, code, retryable = http.StatusServiceUnavailable, "unavailable", true
	case errors.Is(err, context.DeadlineExceeded):
		status, code, retryable = http.StatusGatewayTimeout, "deadline", true
	case errors.Is(err, context.Canceled):
		status, code = http.StatusRequestTimeout, "canceled"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Code: code, Message: err.Error(), Retryable: retryable})
}
