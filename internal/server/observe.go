// Observability surface of the server: per-session cycle traces (with
// an archive so traces survive session eviction) and live hot-node
// profiles ranked by the paper's cost model.

package server

import (
	"context"
	"errors"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
)

// TraceResult is one session's retained cycle-span window.
type TraceResult struct {
	// SessionID names the traced session.
	SessionID string
	// Evicted reports that the session is gone and the spans came from
	// the post-deletion archive.
	Evicted bool
	// Total counts spans ever recorded; Total - len(Spans) spans have
	// been overwritten by the ring.
	Total int64
	// Spans is the retained window, oldest first.
	Spans []obs.CycleSpan
}

// archiveDepth bounds the trace archive: the most recently deleted
// sessions keep their final trace window available for post-mortems.
const archiveDepth = 64

// traceArchive retains the final trace of recently deleted sessions,
// FIFO-evicted at archiveDepth. It has its own lock because deletes
// happen on shard goroutines while reads come from any request.
type traceArchive struct {
	mu      sync.Mutex
	entries map[string]TraceResult
	order   []string
}

// put archives a deleted session's trace, evicting the oldest archive
// entry past archiveDepth.
func (a *traceArchive) put(tr TraceResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.entries == nil {
		a.entries = make(map[string]TraceResult)
	}
	if _, seen := a.entries[tr.SessionID]; !seen {
		a.order = append(a.order, tr.SessionID)
		if len(a.order) > archiveDepth {
			delete(a.entries, a.order[0])
			a.order = a.order[1:]
		}
	}
	a.entries[tr.SessionID] = tr
}

// get returns an archived trace, if retained.
func (a *traceArchive) get(id string) (TraceResult, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tr, ok := a.entries[id]
	return tr, ok
}

// Trace returns a session's retained cycle spans. Deleted sessions fall
// back to the archive (Evicted true), so a trace can be pulled after
// the session that produced it is gone.
func (s *Server) Trace(ctx context.Context, id string) (TraceResult, error) {
	tr, err := dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (TraceResult, error) {
		sess, err := sh.get(id)
		if err != nil {
			return TraceResult{}, err
		}
		return TraceResult{
			SessionID: id,
			Total:     sess.trace.Total(),
			Spans:     sess.trace.Snapshot(),
		}, nil
	})
	if errors.Is(err, ErrNoSession) {
		if arch, ok := s.archive.get(id); ok {
			return arch, nil
		}
	}
	return tr, err
}

// ProfileResult is one session's live match-work profile.
type ProfileResult struct {
	// SessionID and Matcher identify what was profiled; Cycles and
	// TotalChanges scale the numbers.
	SessionID    string
	Matcher      string
	Cycles       int
	TotalChanges int
	// NodesSupported reports whether the matcher exposes per-node
	// counters (the Rete variants do; naive and full-state do not).
	NodesSupported bool
	// TotalCost sums the node costs under the paper's cost model.
	TotalCost float64
	// Nodes holds the activated nodes, costliest first.
	Nodes []engine.NodeProfileEntry
	// MatchStats and Index summarise whole-matcher work when the
	// matcher reports them (nil otherwise).
	MatchStats *engine.MatchStats
	Index      *engine.IndexReport
	// Loss carries the matcher's loss-factor accounting when the
	// matcher reports one (nil otherwise).
	Loss *engine.LossReport
}

// Profile snapshots a session's live hot-node profile: per-node
// activation counters priced by the paper's cost model, ranked by
// cumulative cost.
func (s *Server) Profile(ctx context.Context, id string) (ProfileResult, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (ProfileResult, error) {
		sess, err := sh.get(id)
		if err != nil {
			return ProfileResult{}, err
		}
		eng := sess.sys.Engine
		res := ProfileResult{
			SessionID:    id,
			Matcher:      sess.sys.MatcherKind().String(),
			Cycles:       eng.Cycles,
			TotalChanges: eng.TotalChanges,
		}
		caps := eng.Capabilities()
		if p := caps.Profile; p != nil {
			nodes := p.NodeProfile()
			res.NodesSupported = true
			sort.Slice(nodes, func(i, j int) bool {
				if nodes[i].Cost != nodes[j].Cost {
					return nodes[i].Cost > nodes[j].Cost
				}
				return nodes[i].NodeID < nodes[j].NodeID
			})
			for i := range nodes {
				res.TotalCost += nodes[i].Cost
			}
			res.Nodes = nodes
		}
		if p := caps.Stats; p != nil {
			ms := p.MatchStats()
			res.MatchStats = &ms
		}
		if p := caps.Index; p != nil {
			ix := p.Indexed()
			res.Index = &ix
		}
		if p := caps.Loss; p != nil {
			lr := p.LossReport()
			res.Loss = &lr
		}
		return res, nil
	})
}

// LossResult is one session's loss-factor accounting (§6): where the
// parallel matcher's wall time went and how true speedup relates to
// nominal concurrency.
type LossResult struct {
	// SessionID and Matcher identify what was measured.
	SessionID string
	Matcher   string
	// Supported reports whether the matcher keeps phase accounting
	// (only the parallel Rete does).
	Supported bool
	// Report is the accounting; nil when unsupported.
	Report *engine.LossReport
}

// Loss snapshots a session's loss-factor accounting: the parallel
// matcher's per-worker phase times, task-size histogram, and the
// paper-§6 nominal-concurrency / true-speedup / loss-factor numbers.
func (s *Server) Loss(ctx context.Context, id string) (LossResult, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (LossResult, error) {
		sess, err := sh.get(id)
		if err != nil {
			return LossResult{}, err
		}
		res := LossResult{
			SessionID: id,
			Matcher:   sess.sys.MatcherKind().String(),
		}
		if p := sess.sys.Engine.Capabilities().Loss; p != nil {
			lr := p.LossReport()
			res.Supported = true
			res.Report = &lr
		}
		return res, nil
	})
}
