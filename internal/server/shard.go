package server

import (
	"context"
	"fmt"
	"runtime/debug"
)

// outcome carries a request's result back to its caller. Results travel
// through the channel, never through variables shared with the caller:
// a caller that abandons a request at its deadline must not race with
// the shard still finishing it.
type outcome struct {
	val any
	err error
}

// request is one unit of work routed to a shard: a closure executed on
// the shard's goroutine.
type request struct {
	ctx  context.Context
	fn   func(sh *shard) (any, error)
	done chan outcome
}

// shard owns a disjoint subset of the server's sessions. Exactly one
// goroutine (loop) executes requests, so sessions need no locking — the
// serving analogue of the paper's one-owner-per-memory discipline, with
// fine-grain parallelism living below this level inside the parallel
// matcher.
type shard struct {
	id      int
	srv     *Server
	mailbox chan *request
	// sessions is touched only by loop (and by Server.Close after loop
	// exits).
	sessions map[string]*session
}

func newShard(id int, srv *Server, queueDepth int) *shard {
	return &shard{
		id:       id,
		srv:      srv,
		mailbox:  make(chan *request, queueDepth),
		sessions: make(map[string]*session),
	}
}

// loop drains the mailbox until the server closes it. Requests whose
// context expired while queued are answered without touching any
// session — the deadline threads all the way into the shard.
func (sh *shard) loop() {
	for req := range sh.mailbox {
		sh.srv.queueDepth[sh.id].Add(-1)
		if err := req.ctx.Err(); err != nil {
			req.done <- outcome{err: err}
			continue
		}
		req.done <- sh.serve(req)
	}
}

// serve runs one request, converting panics into errors so a bug in one
// session's program cannot take down the shard (or the sessions of
// every other tenant hashed to it).
func (sh *shard) serve(req *request) (out outcome) {
	defer func() {
		if r := recover(); r != nil {
			sh.srv.panics.Inc()
			out = outcome{err: fmt.Errorf("server: internal error: %v\n%s", r, debug.Stack())}
		}
	}()
	val, err := req.fn(sh)
	return outcome{val: val, err: err}
}

// get resolves a session on the shard goroutine.
func (sh *shard) get(id string) (*session, error) {
	s, ok := sh.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	s.requests++
	return s, nil
}
