package server_test

// Endpoint and metrics coverage for the loss-factor accounting: the
// per-session /loss report, its presence on /profile, and the labelled
// psmd_sched_phase_seconds_total / psmd_task_activations series.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/server"
)

// labelledMetric extracts the value of one labelled series line
// (`name{label} value`) from text exposition, or -1 when absent.
func labelledMetric(text, name, label string) float64 {
	prefix := name + "{" + label + "} "
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, prefix)), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestLossEndpointAndMetrics drives a parallel-rete session and asserts
// the loss report is served at /loss and /profile, that its phase books
// reconstruct Apply wall time, and that the per-phase seconds and
// task-size counts reach /metrics.
func TestLossEndpointAndMetrics(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})

	c.must("POST", "/sessions", server.CreateRequest{
		ID: "loss", Program: skewedSrc, Matcher: "parallel-rete", Workers: 4,
	}, nil, http.StatusCreated)

	changes := []server.WireChange{
		{Op: "assert", Class: "goal", Attrs: map[string]any{"type": "pick", "color": "red"}},
	}
	for i := 0; i < 32; i++ {
		changes = append(changes, server.WireChange{
			Op: "assert", Class: "block",
			Attrs: map[string]any{"id": float64(i), "color": "red"},
		})
	}
	c.must("POST", "/sessions/loss/changes", server.ChangesRequest{Changes: changes}, nil, http.StatusOK)

	var lr server.LossResponse
	c.must("GET", "/sessions/loss/loss", nil, &lr, http.StatusOK)
	if !lr.Supported || lr.Loss == nil {
		t.Fatalf("loss response = %+v, want supported with a report", lr)
	}
	l := lr.Loss
	if l.Workers != 4 || l.Batches == 0 || l.ApplySeconds <= 0 {
		t.Fatalf("loss header = workers %d batches %d apply %gs, want 4/>0/>0",
			l.Workers, l.Batches, l.ApplySeconds)
	}
	var phaseSum float64
	for _, p := range l.Phases {
		phaseSum += p.Seconds
	}
	rebuilt := l.SeedSeconds + l.MergeSeconds + phaseSum/float64(l.Workers)
	if rel := (rebuilt - l.ApplySeconds) / l.ApplySeconds; rel < -0.05 || rel > 0.05 {
		t.Errorf("phases reconstruct %gs of %gs apply wall (%.1f%% off)",
			rebuilt, l.ApplySeconds, 100*rel)
	}
	var shares float64
	for _, comp := range l.Decomposition {
		shares += comp.Share
	}
	if shares < 0.99 || shares > 1.05 {
		t.Errorf("decomposition shares sum to %g, want ~1", shares)
	}
	var tasks int64
	for _, b := range l.TaskSizes {
		tasks += b.Count
	}
	if tasks == 0 {
		t.Error("task-size histogram is empty")
	}
	if len(l.PerWorker) != 4 {
		t.Errorf("per-worker breakdown has %d lanes, want 4", len(l.PerWorker))
	}

	// The same report rides the profile endpoint.
	var prof server.ProfileResponse
	c.must("GET", "/sessions/loss/profile", nil, &prof, http.StatusOK)
	if prof.Loss == nil || prof.Loss.Batches != l.Batches {
		t.Errorf("profile loss = %+v, want the /loss report", prof.Loss)
	}

	resp, err := http.Get(c.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	if v := labelledMetric(text, "psmd_sched_phase_seconds_total", `phase="match"`); v <= 0 {
		t.Errorf(`psmd_sched_phase_seconds_total{phase="match"} = %v, want > 0`, v)
	}
	if v := labelledMetric(text, "psmd_sched_phase_seconds_total", `phase="seed"`); v <= 0 {
		t.Errorf(`psmd_sched_phase_seconds_total{phase="seed"} = %v, want > 0`, v)
	}
	found := false
	for _, le := range []string{"256", "1024", "4096", "16384", "65536", "262144", "+Inf"} {
		if labelledMetric(text, "psmd_task_activations", `le="`+le+`"`) > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no psmd_task_activations bucket is positive:\n%s", text)
	}
}

// TestLossUnsupportedMatcher pins the serial-matcher answer: the
// endpoint reports supported=false with no report rather than erroring,
// so clients can probe capability with a plain GET.
func TestLossUnsupportedMatcher(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "serial", Program: skewedSrc, Matcher: "rete",
	}, nil, http.StatusCreated)

	var lr server.LossResponse
	c.must("GET", "/sessions/serial/loss", nil, &lr, http.StatusOK)
	if lr.Supported || lr.Loss != nil {
		t.Errorf("loss on serial matcher = %+v, want unsupported and empty", lr)
	}
	if lr.Matcher != "rete" {
		t.Errorf("matcher = %q, want rete", lr.Matcher)
	}
}
