package server_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
)

// crashableServer starts a durable server whose HTTP listener can be
// dropped without shutting the server down — the moral equivalent of
// kill -9 for recovery tests (fsync=always: every acknowledged record
// is already on disk).
func crashableServer(t *testing.T, cfg server.Config) (*client, func()) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	return newClient(t, ts), ts.Close
}

// TestServerCrashRecovery kills a durable server mid-workload and
// checks a fresh server on the same data directory serves the same
// sessions with identical working memory, conflict sets and counters.
func TestServerCrashRecovery(t *testing.T) {
	dataDir := t.TempDir()
	cfg := server.Config{Shards: 2, DataDir: dataDir}

	// Life 1: one named and one auto-ID session, run partway.
	c1, crash := crashableServer(t, cfg)
	var sess, auto server.SessionResponse
	c1.must("POST", "/sessions", server.CreateRequest{
		ID: "counter", Program: counterSrc, Matcher: "rete",
	}, &sess, http.StatusCreated)
	if !sess.Durable {
		t.Fatalf("session on a durable server not durable: %+v", sess)
	}
	c1.must("POST", "/sessions", server.CreateRequest{Program: counterSrc}, &auto, http.StatusCreated)
	c1.must("POST", "/sessions/counter/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 5.0}},
	}}, nil, http.StatusOK)
	c1.must("POST", "/sessions/counter/run", server.RunRequest{Cycles: 3}, nil, http.StatusOK)

	var before server.SessionResponse
	var beforeWM []server.WireWME
	var beforeCS []server.WireInst
	c1.must("GET", "/sessions/counter", nil, &before, http.StatusOK)
	c1.must("GET", "/sessions/counter/wm", nil, &beforeWM, http.StatusOK)
	c1.must("GET", "/sessions/counter/conflicts", nil, &beforeCS, http.StatusOK)
	if before.WALSeq == 0 {
		t.Fatalf("no WAL records before crash: %+v", before)
	}
	crash()

	// Life 2: recovery must reproduce both sessions exactly.
	_, c2 := newTestServer(t, cfg)
	var list []server.SessionResponse
	c2.must("GET", "/sessions", nil, &list, http.StatusOK)
	if len(list) != 2 {
		t.Fatalf("recovered %d sessions, want 2: %+v", len(list), list)
	}
	var after server.SessionResponse
	var afterWM []server.WireWME
	var afterCS []server.WireInst
	c2.must("GET", "/sessions/counter", nil, &after, http.StatusOK)
	c2.must("GET", "/sessions/counter/wm", nil, &afterWM, http.StatusOK)
	c2.must("GET", "/sessions/counter/conflicts", nil, &afterCS, http.StatusOK)
	if !after.Recovered || after.ReplayedRecords == 0 {
		t.Fatalf("session not marked recovered: %+v", after)
	}
	if after.Cycles != before.Cycles || after.Fired != before.Fired ||
		after.WMSize != before.WMSize || after.ConflictSize != before.ConflictSize ||
		after.TotalChanges != before.TotalChanges || after.Productions != before.Productions {
		t.Fatalf("recovered stats diverged:\nbefore %+v\nafter  %+v", before, after)
	}
	if !reflect.DeepEqual(afterWM, beforeWM) {
		t.Fatalf("recovered WM diverged:\nbefore %+v\nafter  %+v", beforeWM, afterWM)
	}
	if !reflect.DeepEqual(afterCS, beforeCS) {
		t.Fatalf("recovered conflict set diverged:\nbefore %+v\nafter  %+v", beforeCS, afterCS)
	}

	resp, err := http.Get(c2.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "psmd_recovered_sessions 2") {
		t.Errorf("/metrics missing psmd_recovered_sessions 2:\n%s", raw)
	}

	// Auto-assigned IDs must not collide with recovered ones.
	var auto2 server.SessionResponse
	c2.must("POST", "/sessions", server.CreateRequest{Program: counterSrc}, &auto2, http.StatusCreated)
	if auto2.ID == auto.ID {
		t.Fatalf("new auto ID %q collides with recovered session", auto2.ID)
	}

	// The forced checkpoint endpoint resets the WAL tail.
	var snap server.SnapshotResponse
	c2.must("POST", "/sessions/counter/snapshot", nil, &snap, http.StatusOK)
	if snap.SessionID != "counter" || snap.Seq != after.WALSeq || snap.WMEs != after.WMSize {
		t.Fatalf("snapshot response %+v (session stats %+v)", snap, after)
	}
	var checked server.SessionResponse
	c2.must("GET", "/sessions/counter", nil, &checked, http.StatusOK)
	if checked.SnapshotSeq != snap.Seq || checked.WALRecords != 0 {
		t.Fatalf("stats after checkpoint: %+v", checked)
	}

	// The recovered session still runs to the same halt as an
	// uninterrupted one (6 cycles total for limit 5).
	var run server.RunResponse
	c2.must("POST", "/sessions/counter/run", server.RunRequest{Cycles: 100}, &run, http.StatusOK)
	var final server.SessionResponse
	c2.must("GET", "/sessions/counter", nil, &final, http.StatusOK)
	if !final.Halted || final.Cycles != 6 || final.Fired != 6 {
		t.Fatalf("resumed session final stats: %+v", final)
	}

	// Deleting a session removes its durable state for good.
	c2.must("DELETE", "/sessions/"+auto.ID, nil, nil, http.StatusNoContent)
	dirs, err := os.ReadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 2 { // counter + auto2
		t.Fatalf("%d session dirs after delete, want 2", len(dirs))
	}
}

// TestServerGracefulShutdownSnapshots checks Close drains every session
// with a final snapshot, so the next start replays no WAL records.
func TestServerGracefulShutdownSnapshots(t *testing.T) {
	dataDir := t.TempDir()
	cfg := server.Config{Shards: 1, DataDir: dataDir}

	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	c := newClient(t, ts)
	c.must("POST", "/sessions", server.CreateRequest{ID: "counter", Program: counterSrc}, nil, http.StatusCreated)
	c.must("POST", "/sessions/counter/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 5.0}},
	}}, nil, http.StatusOK)
	c.must("POST", "/sessions/counter/run", server.RunRequest{Cycles: 2}, nil, http.StatusOK)
	var before server.SessionResponse
	c.must("GET", "/sessions/counter", nil, &before, http.StatusOK)
	ts.Close()
	srv.Close() // graceful: final snapshot per session

	_, c2 := newTestServer(t, cfg)
	var after server.SessionResponse
	c2.must("GET", "/sessions/counter", nil, &after, http.StatusOK)
	if !after.Recovered || after.ReplayedRecords != 0 {
		t.Fatalf("graceful restart should recover from snapshot alone: %+v", after)
	}
	if after.Cycles != before.Cycles || after.WMSize != before.WMSize ||
		after.ConflictSize != before.ConflictSize {
		t.Fatalf("recovered stats diverged:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestSnapshotRacesApply forces checkpoints while runs keep appending
// WAL records on the same session. The snapshot path swaps the WAL
// file under a live writer, so this is the test the -race build is
// for: every request must succeed, and a crash afterwards must recover
// exactly the final acknowledged state — a torn checkpoint would
// silently drop cycles.
func TestSnapshotRacesApply(t *testing.T) {
	dataDir := t.TempDir()
	cfg := server.Config{Shards: 2, DataDir: dataDir}
	c, crash := crashableServer(t, cfg)
	c.must("POST", "/sessions", server.CreateRequest{ID: "counter", Program: counterSrc}, nil, http.StatusCreated)
	c.must("POST", "/sessions/counter/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 1000000.0}},
	}}, nil, http.StatusOK)

	const rounds = 30
	errs := make(chan string, 2*rounds)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // runner: five WAL records per request
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Post(c.base+"/sessions/counter/run", "application/json",
				strings.NewReader(`{"cycles":5}`))
			if err != nil {
				errs <- err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("run %d: status %d", i, resp.StatusCode)
			}
		}
	}()
	go func() { // checkpointer: truncates the WAL tail under the runner
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			resp, err := http.Post(c.base+"/sessions/counter/snapshot", "application/json", nil)
			if err != nil {
				errs <- err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("snapshot %d: status %d", i, resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if t.Failed() {
		t.FailNow()
	}

	var before server.SessionResponse
	var beforeWM []server.WireWME
	c.must("GET", "/sessions/counter", nil, &before, http.StatusOK)
	c.must("GET", "/sessions/counter/wm", nil, &beforeWM, http.StatusOK)
	if before.Cycles != 5*rounds {
		t.Fatalf("cycles = %d, want %d: %+v", before.Cycles, 5*rounds, before)
	}
	crash()

	_, c2 := newTestServer(t, cfg)
	var after server.SessionResponse
	var afterWM []server.WireWME
	c2.must("GET", "/sessions/counter", nil, &after, http.StatusOK)
	c2.must("GET", "/sessions/counter/wm", nil, &afterWM, http.StatusOK)
	if after.Cycles != before.Cycles || after.WMSize != before.WMSize ||
		after.ConflictSize != before.ConflictSize {
		t.Fatalf("recovery after snapshot/apply race diverged:\nbefore %+v\nafter  %+v", before, after)
	}
	if !reflect.DeepEqual(afterWM, beforeWM) {
		t.Fatalf("recovered WM diverged:\nbefore %+v\nafter  %+v", beforeWM, afterWM)
	}
}

// TestReadyzFlipsWhileDraining checks the /healthz vs /readyz split:
// a draining server is still alive (healthz 200) but no longer willing
// (readyz 503), which is what load balancers key off during rollouts.
func TestReadyzFlipsWhileDraining(t *testing.T) {
	srv, c := newTestServer(t, server.Config{Shards: 1})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(c.raw + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d before drain", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz = %d before drain", got)
	}
	if !srv.Ready() {
		t.Fatal("Ready() = false on a serving server")
	}
	srv.SetDraining()
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d while draining, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d while draining, want 200 (still alive)", got)
	}
	if srv.Ready() {
		t.Fatal("Ready() = true while draining")
	}
}

// TestServerRecoversTornWAL cuts the WAL mid-record before restart; the
// session must come back at the last intact batch, not fail.
func TestServerRecoversTornWAL(t *testing.T) {
	dataDir := t.TempDir()
	cfg := server.Config{Shards: 1, DataDir: dataDir}

	c1, crash := crashableServer(t, cfg)
	c1.must("POST", "/sessions", server.CreateRequest{ID: "counter", Program: counterSrc}, nil, http.StatusCreated)
	c1.must("POST", "/sessions/counter/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 5.0}},
	}}, nil, http.StatusOK)
	var beforeCut server.SessionResponse
	c1.must("GET", "/sessions/counter", nil, &beforeCut, http.StatusOK)
	c1.must("POST", "/sessions/counter/run", server.RunRequest{Cycles: 1}, nil, http.StatusOK)
	crash()

	// Tear the tail of the single session's WAL: the run's record is cut
	// mid-frame, as if the crash hit during that write.
	dirs, err := os.ReadDir(dataDir)
	if err != nil || len(dirs) != 1 {
		t.Fatalf("session dirs: %v err=%v", dirs, err)
	}
	walPath := filepath.Join(dataDir, dirs[0].Name(), "wal.log")
	fi, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	_, c2 := newTestServer(t, cfg)
	var after server.SessionResponse
	c2.must("GET", "/sessions/counter", nil, &after, http.StatusOK)
	if !after.Recovered {
		t.Fatalf("session not recovered: %+v", after)
	}
	if after.Cycles != beforeCut.Cycles || after.WMSize != beforeCut.WMSize {
		t.Fatalf("torn-WAL recovery should land on the pre-run state:\nwant %+v\ngot  %+v", beforeCut, after)
	}
	// The lost cycle simply re-executes.
	var run server.RunResponse
	c2.must("POST", "/sessions/counter/run", server.RunRequest{Cycles: 100}, &run, http.StatusOK)
	if !run.Halted {
		t.Fatalf("resumed run did not halt: %+v", run)
	}
}
