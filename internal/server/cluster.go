package server

import (
	"context"
	"fmt"
	"log/slog"
	"time"
)

// Cluster-facing surface: the hooks internal/cluster uses to route
// requests (HasSession), ship WAL state (ExportDurable, DurableSeqs),
// and move session ownership between nodes (AdoptSession, Demote).

// DataDir returns the configured durable data directory ("" when the
// server is not durable).
func (s *Server) DataDir() string { return s.cfg.DataDir }

// SessionDir returns the durable directory a session id maps to (the
// promotion path renames a replica directory to exactly this).
func (s *Server) SessionDir(id string) string { return s.sessionDir(id) }

// HasSession reports whether the session is live on this server. It is
// lock-free — the routing middleware calls it on every request.
func (s *Server) HasSession(id string) bool {
	_, ok := s.index.Load(id)
	return ok
}

// DurableSeqs returns the last WAL sequence of every live durable
// session — the owner-side positions piggybacked on cluster heartbeats
// so peers can compare replica freshness.
func (s *Server) DurableSeqs() map[string]int64 {
	out := make(map[string]int64)
	s.index.Range(func(k, v any) bool {
		if log := v.(*session).log; log != nil {
			seq, _, _, _ := log.Stats()
			out[k.(string)] = seq
		}
		return true
	})
	return out
}

// ExportDurable snapshots one session inline and returns its manifest,
// snapshot and WAL sequence — the shipper's catch-up payload for a
// follower that is missing history. Runs on the session's shard, so the
// exported state is batch-consistent.
func (s *Server) ExportDurable(ctx context.Context, id string) (manifest, snap []byte, seq int64, err error) {
	type export struct {
		manifest, snap []byte
		seq            int64
	}
	out, err := dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (export, error) {
		sess, err := sh.get(id)
		if err != nil {
			return export{}, err
		}
		if sess.log == nil {
			return export{}, badReqf("server: session %q is not durable", id)
		}
		m, sn, sq, err := sess.log.ExportState()
		return export{m, sn, sq}, err
	})
	return out.manifest, out.snap, out.seq, err
}

// AdoptSession brings a session to life from its durable directory —
// the promotion path after a replica directory has been renamed into
// the live data area. The recovery is ordinary crash recovery; the
// replicator hook fires exactly as it does for created sessions, so the
// new owner immediately starts shipping to its own followers.
func (s *Server) AdoptSession(ctx context.Context, id string) error {
	if s.cfg.DataDir == "" {
		return badReqf("server: adopt %q: server is not durable", id)
	}
	return s.dispatch(ctx, id, func(sh *shard) error {
		if _, dup := sh.sessions[id]; dup {
			return fmt.Errorf("%w: %q", ErrSessionExists, id)
		}
		sess, rstats, err := s.recoverSession(s.sessionDir(id))
		if err != nil {
			return fmt.Errorf("server: adopt %q: %w", id, err)
		}
		if sess.id != id {
			sess.sys.Engine.Close()
			return fmt.Errorf("server: adopt %q: directory holds session %q", id, sess.id)
		}
		sh.sessions[id] = sess
		s.index.Store(id, sess)
		s.sessions.Add(1)
		s.logger.Info("session adopted",
			"session", id, "shard", sh.id,
			"snapshot_seq", rstats.SnapshotSeq, "replayed", rstats.Replayed,
			"wm_size", sess.sys.WM.Size(), "conflicts", sess.sys.CS.Len())
		return nil
	})
}

// Demote takes a session out of service on this node: a final snapshot
// captures its full state, the log closes, and the session unregisters
// — but unlike DeleteSession the durable directory survives, returned
// to the caller, which renames it into the replica area and continues
// as a follower. The ownership-handoff path when the ring says another
// node should serve the session.
func (s *Server) Demote(ctx context.Context, id string) (string, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (string, error) {
		sess, err := sh.get(id)
		if err != nil {
			return "", err
		}
		if sess.log == nil {
			return "", badReqf("server: session %q is not durable", id)
		}
		sess.sys.Engine.Sink = nil
		if s.cfg.Replicator != nil {
			s.cfg.Replicator.SessionDown(id, false)
		}
		if _, err := sess.log.Snapshot(); err != nil {
			return "", fmt.Errorf("server: demote %q: final snapshot: %w", id, err)
		}
		if err := sess.log.Close(); err != nil {
			s.logger.Warn("wal close on demote", "session", id, "err", err)
		}
		s.archive.put(TraceResult{
			SessionID: id,
			Evicted:   true,
			Total:     sess.trace.Total(),
			Spans:     sess.trace.Snapshot(),
		})
		delete(sh.sessions, id)
		s.index.Delete(id)
		s.sessions.Add(-1)
		s.closeSession(sess)
		return sess.log.Dir(), nil
	})
}

// SetDraining flips /readyz to 503 ahead of shutdown, so load balancers
// and cluster routing stop sending new work while in-flight requests
// and the final snapshot push complete.
func (s *Server) SetDraining() { s.state.Store(stateDraining) }

// Ready reports whether the server is past startup recovery and not
// draining (the /readyz contract).
func (s *Server) Ready() bool { return s.state.Load() == stateServing }

// Uptime reports time since the server started (for cluster status).
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// Logger exposes the server's structured logger so the cluster layer
// shares one log stream.
func (s *Server) Logger() *slog.Logger { return s.logger }
