package stats

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// parseHistogram extracts one histogram family from an exposition dump:
// the ordered (le, cumulative count) bucket pairs plus sum and count.
func parseHistogram(t *testing.T, out, base, labels string) (les []string, cums []int64, sum float64, count int64) {
	t.Helper()
	bucketPrefix := base + "_bucket{"
	if labels != "" {
		bucketPrefix = base + "_bucket{" + labels + ","
	}
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.HasPrefix(line, bucketPrefix):
			rest := strings.TrimPrefix(line, bucketPrefix)
			le, tail, ok := strings.Cut(strings.TrimPrefix(rest, `le="`), `"} `)
			if !ok {
				t.Fatalf("malformed bucket line %q", line)
			}
			n, err := strconv.ParseInt(tail, 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			les = append(les, le)
			cums = append(cums, n)
		case strings.HasPrefix(line, base+"_sum"):
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("sum line %q: %v", line, err)
			}
			sum = v
		case strings.HasPrefix(line, base+"_count"):
			fields := strings.Fields(line)
			n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			count = n
		}
	}
	return les, cums, sum, count
}

// TestHistogramExpositionIsCumulative checks the invariants a Prometheus
// scraper relies on: every bucket carries an le label, bucket counts are
// monotone non-decreasing, the +Inf bucket equals _count, and labelled
// histograms merge le into the existing label set.
func TestHistogramExpositionIsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", "request latency", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()

	les, cums, sum, count := parseHistogram(t, out, "req_seconds", "")
	if want := []string{"0.001", "0.01", "0.1", "1", "+Inf"}; fmt.Sprint(les) != fmt.Sprint(want) {
		t.Fatalf("le labels = %v, want %v", les, want)
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Errorf("bucket counts not cumulative: %v", cums)
		}
	}
	if wantCums := []int64{1, 3, 4, 5, 7}; fmt.Sprint(cums) != fmt.Sprint(wantCums) {
		t.Errorf("cumulative counts = %v, want %v", cums, wantCums)
	}
	if count != 7 || cums[len(cums)-1] != count {
		t.Errorf("+Inf bucket %d vs count %d, want both 7", cums[len(cums)-1], count)
	}
	if sum != h.Sum() {
		t.Errorf("exposed sum %g != %g", sum, h.Sum())
	}
}

func TestLabelledHistogramMergesLeLabel(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`req_seconds{shard="3"}`, "request latency", []float64{0.01})
	h.Observe(0.005)
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`req_seconds_bucket{shard="3",le="0.01"} 1`,
		`req_seconds_bucket{shard="3",le="+Inf"} 1`,
		`req_seconds_count{shard="3"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	les, cums, _, count := parseHistogram(t, out, "req_seconds", `shard="3"`)
	if len(les) != 2 || cums[len(cums)-1] != count {
		t.Errorf("labelled parse: les=%v cums=%v count=%d", les, cums, count)
	}
}

// TestWriteTextDuringWrites races every mutation path against the
// renderer; run under -race this verifies scrapes never tear registry
// state, and the final exposition still parses.
func TestWriteTextDuringWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "queue depth")
	h := r.Histogram("lat_seconds", "latency", nil)
	r.GaugeFunc("rate", "rate", func() float64 { return float64(c.Value()) })

	var writers sync.WaitGroup
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < 2000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j%10) / 1000)
			}
		}()
	}
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				r.WriteText(&b)
				if !strings.Contains(b.String(), "# TYPE lat_seconds histogram") {
					t.Error("scrape missing histogram family")
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-scraped
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	var b strings.Builder
	r.WriteText(&b)
	_, cums, _, count := parseHistogram(t, b.String(), "lat_seconds", "")
	if count != 8000 || cums[len(cums)-1] != 8000 {
		t.Errorf("final histogram count = %d, +Inf bucket = %d, want 8000", count, cums[len(cums)-1])
	}
}
