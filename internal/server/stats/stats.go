// Package stats is the serving-side measurement layer: lock-free
// counters, gauges and histograms registered in a Registry that renders
// them in the Prometheus text exposition format. It records the service
// analogues of the paper's §6 throughput numbers — wme-changes/sec,
// firings/sec, match-latency distributions, queue depths — for the
// rule-engine daemon (cmd/psmd), whose /metrics endpoint is backed by
// this package.
//
// All mutation paths (Inc/Add/Set/Observe) are safe for concurrent use
// and allocation-free, so they can sit on the per-change hot path of
// every engine shard.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters never decrease).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float-valued metric
// (accumulated seconds, e.g. scheduler phase time). The value is kept
// as float64 bits updated by CAS, so Add is lock-free and safe for
// concurrent use.
type FloatCounter struct {
	name, help string
	bits       atomic.Uint64
}

// Add adds v (v must be >= 0; counters never decrease).
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer-valued metric that can go up and down (queue
// depths, live session counts).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates float64 observations into cumulative buckets,
// Prometheus-style: counts[i] holds observations <= bounds[i], with one
// extra bucket for +Inf. The sum is kept as float64 bits updated by CAS.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// DefBuckets spans 1µs .. 5s; suits request and match latencies in
// seconds.
var DefBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Buckets are cumulative, so only the first bound >= v is bumped at
	// observe time; Render accumulates.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (0..1)
// from the bucket boundaries: the smallest bound whose cumulative count
// covers q. It returns +Inf when the sample lands past the last bound,
// and 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= target {
			return h.bounds[i]
		}
	}
	return math.Inf(1)
}

// metric is anything the registry can render.
type metric interface {
	metricName() string
	render(w io.Writer)
}

func (c *Counter) metricName() string { return c.name }
func (c *Counter) render(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

func (c *FloatCounter) metricName() string { return c.name }
func (c *FloatCounter) render(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", c.name, fmtFloat(c.Value()))
}

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) render(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) render(w io.Writer) {
	base, labels := splitLabels(h.name)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabel(labels, fmt.Sprintf("le=%q", fmtFloat(b))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", base, mergeLabel(labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, fmtFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.count.Load())
}

// gaugeFunc is a gauge whose value is computed at render time (rates,
// uptime).
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (g *gaugeFunc) metricName() string { return g.name }
func (g *gaugeFunc) render(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, fmtFloat(g.fn()))
}

// Registry holds a set of named metrics. Metric names may carry a
// Prometheus label suffix (`name{shard="3"}`); names must be unique
// including labels. Registration is synchronized; registered metrics
// are updated lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	help    map[string]string // base name -> help
	types   map[string]string // base name -> exposition type
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]metric),
		help:    make(map[string]string),
		types:   make(map[string]string),
	}
}

// Counter registers and returns a counter. Registering a name twice
// panics: metric identity bugs should fail loudly at startup.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c, help, "counter")
	return c
}

// FloatCounter registers and returns a float-valued counter.
func (r *Registry) FloatCounter(name, help string) *FloatCounter {
	c := &FloatCounter{name: name, help: help}
	r.register(c, help, "counter")
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g, help, "gauge")
	return g
}

// GaugeFunc registers a gauge computed by fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&gaugeFunc{name: name, help: help, fn: fn}, help, "gauge")
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (nil means DefBuckets). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("stats: histogram %s bounds not sorted", name))
	}
	h := &Histogram{name: name, help: help, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
	r.register(h, help, "histogram")
	return h
}

func (r *Registry) register(m metric, help, typ string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := m.metricName()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("stats: duplicate metric %s", name))
	}
	r.metrics[name] = m
	base, _ := splitLabels(name)
	r.help[base] = help
	r.types[base] = typ
}

// WriteText renders every metric in the Prometheus text exposition
// format, sorted by name, with one HELP/TYPE header per metric family
// (labelled variants of one base name share a family).
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	metrics := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		metrics = append(metrics, r.metrics[n])
	}
	help, types := r.help, r.types
	r.mu.Unlock()

	lastBase := ""
	for _, m := range metrics {
		base, _ := splitLabels(m.metricName())
		if base != lastBase {
			if h := help[base]; h != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", base, h)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", base, types[base])
			lastBase = base
		}
		m.render(w)
	}
}

// splitLabels separates `name{labels}` into base name and the `{...}`
// suffix (empty when unlabelled).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabel appends one `k="v"` pair to an existing `{...}` suffix.
func mergeLabel(labels, pair string) string {
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// fmtFloat renders a float the way Prometheus clients do: shortest
// round-trip form, with +Inf spelled explicitly.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
