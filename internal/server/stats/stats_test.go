package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("psmd_requests_total", "requests served")
	g := r.Gauge("psmd_sessions", "live sessions")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.02, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-2.545) > 1e-9 {
		t.Errorf("sum = %g, want 2.545", h.Sum())
	}
	if q := h.Quantile(0.5); q != 0.1 {
		t.Errorf("p50 = %g, want 0.1", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Errorf("p99 = %g, want +Inf", q)
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{le="0.01"} 1`,
		`lat_bucket{le="0.1"} 3`,
		`lat_bucket{le="1"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextGroupsLabelledFamilies(t *testing.T) {
	r := NewRegistry()
	r.Gauge(`depth{shard="0"}`, "queue depth").Set(3)
	r.Gauge(`depth{shard="1"}`, "queue depth").Set(9)
	r.GaugeFunc("rate", "per-second rate", func() float64 { return 42.5 })
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	if strings.Count(out, "# TYPE depth gauge") != 1 {
		t.Errorf("want one TYPE header for depth family:\n%s", out)
	}
	for _, want := range []string{`depth{shard="0"} 3`, `depth{shard="1"} 9`, "rate 42.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("x", "")
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-6 {
		t.Errorf("histogram sum = %g, want 8", h.Sum())
	}
}
