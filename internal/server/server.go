package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/ops5"
	"repro/internal/server/stats"
)

// Config sizes the server.
type Config struct {
	// Shards is the engine-shard count; sessions are distributed by
	// hash(sessionID) (default GOMAXPROCS).
	Shards int
	// QueueDepth bounds each shard's mailbox; a full mailbox rejects
	// requests with BusyError — backpressure instead of unbounded
	// queueing (default 128).
	QueueDepth int
	// RetryAfter is the backoff suggested with BusyError (default 1s).
	RetryAfter time.Duration
	// DefaultQuota applies to sessions that do not set their own.
	DefaultQuota Quota
	// DefaultWorkers is the parallel-matcher worker count for sessions
	// that do not set their own (0 = GOMAXPROCS).
	DefaultWorkers int
	// NoSteal disables work stealing in every session's parallel
	// matcher (sessions cannot override; for overhead experiments).
	NoSteal bool
	// Logger receives structured request and slow-cycle logs (default:
	// discard).
	Logger *slog.Logger
	// TraceDepth bounds each session's cycle-span ring (default
	// obs.DefaultRingDepth).
	TraceDepth int
	// SlowCycle logs any recognize-act cycle whose phases sum past this
	// threshold, dumping the offending span (0 = disabled).
	SlowCycle time.Duration
	// DataDir, when set, makes sessions durable: each gets a
	// write-ahead log and periodic snapshots under this directory
	// (internal/durable), and the server recovers every session found
	// there at startup.
	DataDir string
	// Fsync selects the WAL sync policy for durable sessions (default
	// always).
	Fsync durable.FsyncPolicy
	// FsyncInterval is the background sync period under the interval
	// policy (default 100ms).
	FsyncInterval time.Duration
	// SnapshotEvery checkpoints a durable session after this many WAL
	// records, bounding replay work at recovery (default 1024; <0
	// disables automatic snapshots).
	SnapshotEvery int
	// Replicator, when set, observes session lifecycle for WAL shipping
	// (internal/cluster): SessionUp as each durable session becomes
	// live, SessionDown as it is deleted or demoted.
	Replicator Replicator
}

// Replicator is the cluster layer's view of session lifecycle. SessionUp
// fires when a durable session becomes live on this server (created,
// recovered at startup, or adopted after promotion) — before it serves
// its first request — handing over the log so the replicator can tee
// WAL records. SessionDown fires when the session stops being live
// here; deleted distinguishes API deletion (replicas must be removed)
// from demotion (replicas live on). Both are called from shard
// goroutines and must not block.
type Replicator interface {
	SessionUp(id string, log *durable.Log)
	SessionDown(id string, deleted bool)
}

// Server readiness states for /readyz: recovery in progress, serving,
// or draining ahead of shutdown.
const (
	stateStarting = iota
	stateServing
	stateDraining
)

// Server hosts sessions across a fixed pool of engine shards.
type Server struct {
	cfg     Config
	shards  []*shard
	start   time.Time
	nextID  atomic.Int64
	logger  *slog.Logger
	archive traceArchive

	mu     sync.RWMutex // guards closed vs in-flight dispatches
	closed bool
	wg     sync.WaitGroup

	// index mirrors shard session registration (id -> *session) for
	// lock-free liveness checks from the routing middleware; state is
	// the /readyz lifecycle (starting -> serving -> draining).
	index sync.Map
	state atomic.Int32

	// Serving metrics (the §6 throughput numbers, measured at the
	// service boundary).
	registry     *stats.Registry
	sessions     *stats.Gauge
	requests     *stats.Counter
	rejected     *stats.Counter
	deprecated   *stats.Counter
	panics       *stats.Counter
	wmeChanges   *stats.Counter
	firings      *stats.Counter
	cycles       *stats.Counter
	steals       *stats.Counter
	parks        *stats.Counter
	wakeups      *stats.Counter
	residents    *stats.Gauge
	matchSeconds *stats.Histogram
	runSeconds   *stats.Histogram
	queueDepth   []*stats.Gauge

	// Streaming-ingest metrics (the /v1/sessions/{id}/stream endpoint).
	streamEvents  *stats.Counter
	streamBatches *stats.Counter
	streamLag     *stats.Gauge
	expiredWMEs   *stats.Counter

	// Loss-accounting metrics: labelled series are created on first
	// observation (the phase set comes from the matcher's loss report),
	// guarded by lossMu; the counters themselves are lock-free.
	lossMu     sync.Mutex
	phaseSecs  map[string]*stats.FloatCounter
	taskCounts map[string]*stats.Counter

	// Durability metrics (zero-valued but present even when -data-dir
	// is unset, so dashboards never miss the series).
	walBytes        *stats.Counter
	snapshotSeconds *stats.Histogram
	recovered       *stats.Counter
}

// New starts a server: one goroutine per shard, draining its mailbox.
// Close releases them.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 128
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.TraceDepth <= 0 {
		cfg.TraceDepth = obs.DefaultRingDepth
	}
	r := stats.NewRegistry()
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		logger:   cfg.Logger,
		registry: r,
		sessions: r.Gauge("psmd_sessions", "live sessions"),
		requests: r.Counter("psmd_requests_total", "session operations dispatched to shards"),
		rejected: r.Counter("psmd_rejected_total", "operations rejected by shard backpressure"),
		deprecated: r.Counter("psmd_deprecated_requests_total",
			"requests served via deprecated unversioned path aliases"),
		panics: r.Counter("psmd_panics_total", "session operations recovered from panic"),
		wmeChanges: r.Counter("psmd_wme_changes_total",
			"working-memory changes processed (submitted and fired)"),
		firings: r.Counter("psmd_firings_total", "production firings"),
		cycles:  r.Counter("psmd_cycles_total", "recognize-act cycles executed"),
		steals: r.Counter("psmd_steals_total",
			"parallel-matcher activations moved between workers by stealing"),
		parks: r.Counter("psmd_sched_park_total",
			"parallel-matcher worker parks (condvar waits for work)"),
		wakeups: r.Counter("psmd_sched_wakeups_total",
			"parallel-matcher resident-pool wake broadcasts (batches not run inline)"),
		residents: r.Gauge("psmd_sched_resident_workers",
			"live resident pool-worker goroutines across all sessions"),
		matchSeconds: r.Histogram("psmd_match_seconds",
			"latency of one change batch through the matcher", nil),
		runSeconds: r.Histogram("psmd_run_seconds",
			"latency of one run-cycles request", nil),
		streamEvents: r.Counter("psmd_stream_events_total",
			"events applied through streaming ingest"),
		streamBatches: r.Counter("psmd_stream_batches_total",
			"event batches applied through streaming ingest"),
		streamLag: r.Gauge("psmd_stream_lag_events",
			"events read off stream connections but not yet applied"),
		expiredWMEs: r.Counter("psmd_expired_wmes_total",
			"event facts retracted by TTL expiry"),
		walBytes: r.Counter("psmd_wal_bytes_total",
			"bytes appended to session write-ahead logs"),
		snapshotSeconds: r.Histogram("psmd_snapshot_seconds",
			"latency of one durable-session snapshot", nil),
		recovered: r.Counter("psmd_recovered_sessions",
			"sessions recovered from durable state at startup"),
		phaseSecs:  make(map[string]*stats.FloatCounter),
		taskCounts: make(map[string]*stats.Counter),
	}
	r.GaugeFunc("psmd_uptime_seconds", "seconds since server start", func() float64 {
		return time.Since(s.start).Seconds()
	})
	r.GaugeFunc("psmd_wme_changes_per_sec", "working-memory changes per second of uptime", func() float64 {
		return float64(s.wmeChanges.Value()) / time.Since(s.start).Seconds()
	})
	r.GaugeFunc("psmd_firings_per_sec", "production firings per second of uptime", func() float64 {
		return float64(s.firings.Value()) / time.Since(s.start).Seconds()
	})
	r.GaugeFunc("psmd_goroutines", "live goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("psmd_heap_alloc_bytes", "heap bytes allocated and still in use", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	s.shards = make([]*shard, cfg.Shards)
	s.queueDepth = make([]*stats.Gauge, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(i, s, cfg.QueueDepth)
		s.queueDepth[i] = r.Gauge(fmt.Sprintf("psmd_shard_queue_depth{shard=%q}", fmt.Sprint(i)),
			"requests queued per shard mailbox")
	}
	// Recover durable sessions before any shard goroutine starts: the
	// session maps are still single-threaded here, so recovered
	// sessions register without dispatching.
	if cfg.DataDir != "" {
		s.recoverSessions()
	}
	for i := range s.shards {
		s.wg.Add(1)
		go func(sh *shard) {
			defer s.wg.Done()
			sh.loop()
		}(s.shards[i])
	}
	// Recovery ran synchronously above, so the server is ready the
	// moment New returns.
	s.state.Store(stateServing)
	return s
}

// durableOpts builds the per-session durable options, routing append
// and snapshot observations into the serving metrics.
func (s *Server) durableOpts() durable.Options {
	every := s.cfg.SnapshotEvery
	if every == 0 {
		every = 1024
	} else if every < 0 {
		every = 0
	}
	return durable.Options{
		Fsync:         s.cfg.Fsync,
		FsyncInterval: s.cfg.FsyncInterval,
		SnapshotEvery: every,
		ObserveAppend: func(bytes int) { s.walBytes.Add(int64(bytes)) },
		ObserveSnapshot: func(d time.Duration, bytes int) {
			s.snapshotSeconds.Observe(d.Seconds())
		},
	}
}

// sessionDir maps a session ID onto its durable directory. IDs are
// arbitrary API strings, so the path component is hex-encoded.
func (s *Server) sessionDir(id string) string {
	return filepath.Join(s.cfg.DataDir, hex.EncodeToString([]byte(id)))
}

// attachDurable installs the session's change-log sink: every batch the
// engine commits lands in the WAL. Append failures degrade durability,
// not service — the first one is logged, the session keeps running.
func (s *Server) attachDurable(sess *session, log *durable.Log) {
	sess.log = log
	sess.sys.Engine.Sink = func(changes []ops5.Change, firedKeys []string) {
		if err := log.Append(changes, firedKeys); err != nil && !sess.walErrLogged {
			sess.walErrLogged = true
			s.logger.Warn("wal append failed; session no longer durable",
				"session", sess.id, "err", err)
		}
	}
	if s.cfg.Replicator != nil {
		s.cfg.Replicator.SessionUp(sess.id, log)
	}
}

// recoverSessions rebuilds every session found under DataDir: manifest
// → compile (without the program's initial working memory) → snapshot
// restore → WAL replay. A directory that fails to recover is logged
// and skipped; it never takes the server down.
func (s *Server) recoverSessions() {
	dirs, err := durable.SessionDirs(s.cfg.DataDir)
	if err != nil {
		s.logger.Error("durable recovery: list sessions", "data_dir", s.cfg.DataDir, "err", err)
		return
	}
	var maxAuto int64
	for _, dir := range dirs {
		sess, rstats, err := s.recoverSession(dir)
		if err != nil {
			s.logger.Error("durable recovery failed; skipping session", "dir", dir, "err", err)
			continue
		}
		sh := s.shardFor(sess.id)
		sh.sessions[sess.id] = sess
		s.index.Store(sess.id, sess)
		s.sessions.Add(1)
		s.recovered.Inc()
		// Keep server-assigned IDs from colliding with recovered ones.
		var n int64
		if _, err := fmt.Sscanf(sess.id, "s-%06d", &n); err == nil && n > maxAuto {
			maxAuto = n
		}
		s.logger.Info("session recovered",
			"session", sess.id, "shard", sh.id,
			"snapshot_seq", rstats.SnapshotSeq, "replayed", rstats.Replayed,
			"wal_truncated", rstats.Truncated,
			"wm_size", sess.sys.WM.Size(), "conflicts", sess.sys.CS.Len())
	}
	for {
		cur := s.nextID.Load()
		if cur >= maxAuto || s.nextID.CompareAndSwap(cur, maxAuto) {
			return
		}
	}
}

// recoverSession rebuilds one session from its durable directory.
func (s *Server) recoverSession(dir string) (*session, durable.RecoverStats, error) {
	manifest, err := durable.ReadManifest(dir)
	if err != nil {
		return nil, durable.RecoverStats{}, err
	}
	var spec CreateSpec
	if err := json.Unmarshal(manifest, &spec); err != nil {
		return nil, durable.RecoverStats{}, fmt.Errorf("decode manifest: %w", err)
	}
	sess, err := newSession(spec, s.cfg.DefaultQuota, time.Now(), true)
	if err != nil {
		return nil, durable.RecoverStats{}, fmt.Errorf("recompile program: %w", err)
	}
	log, rstats, err := durable.Recover(dir, sess.sys.Engine, s.durableOpts())
	if err != nil {
		sess.sys.Engine.Close()
		return nil, rstats, err
	}
	sess.trace = obs.NewRing(s.cfg.TraceDepth)
	sess.sys.Engine.OnCycle = s.observeCycle(sess)
	// Recovery restored the engine's absolute expiry counter; prime the
	// delta baseline so the recovered total is not re-counted into
	// psmd_expired_wmes_total on the next request.
	sess.lastExpired = sess.sys.Engine.Expired
	s.attachDurable(sess, log)
	return sess, rstats, nil
}

// Registry exposes the serving metrics (for /metrics and tests).
func (s *Server) Registry() *stats.Registry { return s.registry }

// Close stops every shard goroutine and waits for in-flight requests to
// drain. Queued requests still execute; new dispatches fail with
// ErrServerClosed. Durable sessions then take a final snapshot and
// close their logs — the graceful-shutdown path behind psmd's SIGTERM
// handling, so a clean restart replays no WAL at all.
func (s *Server) Close() { s.close(true) }

// Abort stops the server without final snapshots or WAL closes: the
// on-disk durable state is exactly what a kill -9 would leave behind.
// The cluster test harness uses it to crash one in-process node while
// the rest of the cluster keeps running.
func (s *Server) Abort() { s.close(false) }

func (s *Server) close(snapshot bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.mailbox)
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Shard goroutines have exited; session maps are single-threaded
	// again (same license Close has always used). Matcher pools stop on
	// both paths — Abort simulates a crash of the durable state, not a
	// goroutine leak in the surviving process (the in-process cluster
	// test harness keeps running after aborting a node).
	for _, sh := range s.shards {
		for _, sess := range sh.sessions {
			s.closeSession(sess)
			if sess.log == nil || !snapshot {
				continue
			}
			if _, err := sess.log.Snapshot(); err != nil {
				s.logger.Error("final snapshot failed", "session", sess.id, "err", err)
			}
			if err := sess.log.Close(); err != nil {
				s.logger.Error("wal close failed", "session", sess.id, "err", err)
			}
		}
	}
}

// shardFor maps a session ID onto its owning shard.
func (s *Server) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[int(h.Sum32())%len(s.shards)]
}

// dispatchShard routes fn to sh and waits for completion or context
// expiry. A full mailbox fails fast with BusyError; the caller never
// blocks behind another tenant's queue. The result travels back through
// the request's done channel — never through a variable shared with the
// caller — so a caller that gives up at its deadline cannot race with
// the shard still finishing the work.
func dispatchShard[T any](s *Server, ctx context.Context, sh *shard, fn func(sh *shard) (T, error)) (T, error) {
	var zero T
	req := &request{ctx: ctx, done: make(chan outcome, 1)}
	req.fn = func(sh *shard) (any, error) { return fn(sh) }

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return zero, ErrServerClosed
	}
	select {
	case sh.mailbox <- req:
		s.mu.RUnlock()
		s.requests.Inc()
		s.queueDepth[sh.id].Add(1)
	default:
		s.mu.RUnlock()
		s.rejected.Inc()
		return zero, &BusyError{Shard: sh.id, RetryAfter: s.cfg.RetryAfter}
	}

	select {
	case out := <-req.done:
		if out.err != nil {
			return zero, out.err
		}
		return out.val.(T), nil
	case <-ctx.Done():
		// The shard will skip or finish the request on its own; the
		// buffered done channel keeps that send from blocking.
		return zero, ctx.Err()
	}
}

// dispatch routes a result-less fn to the session's shard (see
// dispatchShard).
func (s *Server) dispatch(ctx context.Context, sessionID string, fn func(sh *shard) error) error {
	_, err := dispatchShard(s, ctx, s.shardFor(sessionID), func(sh *shard) (struct{}, error) {
		return struct{}{}, fn(sh)
	})
	return err
}

// CreateSession compiles spec (on the calling goroutine, so compilation
// never serializes a shard) and registers the session with its shard.
func (s *Server) CreateSession(ctx context.Context, spec CreateSpec) (SessionInfo, error) {
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("s-%06d", s.nextID.Add(1))
	}
	if spec.Workers == 0 {
		spec.Workers = s.cfg.DefaultWorkers
	}
	if s.cfg.NoSteal {
		spec.NoSteal = true
	}
	sess, err := newSession(spec, s.cfg.DefaultQuota, time.Now(), false)
	if err != nil {
		return SessionInfo{}, err
	}
	sess.trace = obs.NewRing(s.cfg.TraceDepth)
	sess.sys.Engine.OnCycle = s.observeCycle(sess)
	return dispatchShard(s, ctx, s.shardFor(spec.ID), func(sh *shard) (SessionInfo, error) {
		if _, dup := sh.sessions[spec.ID]; dup {
			sess.sys.Engine.Close()
			return SessionInfo{}, fmt.Errorf("%w: %q", ErrSessionExists, spec.ID)
		}
		if s.cfg.DataDir != "" {
			// The manifest records the fully defaulted spec, so a
			// restart under different server flags reproduces the
			// session exactly as created.
			manifest, err := json.Marshal(spec)
			if err != nil {
				sess.sys.Engine.Close()
				return SessionInfo{}, err
			}
			log, err := durable.Create(s.sessionDir(spec.ID), manifest, sess.sys.Engine, s.durableOpts())
			if err != nil {
				sess.sys.Engine.Close()
				return SessionInfo{}, fmt.Errorf("server: create durable log: %w", err)
			}
			s.attachDurable(sess, log)
		}
		sh.sessions[spec.ID] = sess
		s.index.Store(spec.ID, sess)
		s.sessions.Add(1)
		s.wmeChanges.Add(int64(sess.sys.TotalChanges)) // initial (make ...) forms
		return sess.info(sh.id, time.Now()), nil
	})
}

// Snapshot forces a durable checkpoint of one session: the WAL resets
// and recovery restarts from the state at this moment.
func (s *Server) Snapshot(ctx context.Context, id string) (durable.SnapshotInfo, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (durable.SnapshotInfo, error) {
		sess, err := sh.get(id)
		if err != nil {
			return durable.SnapshotInfo{}, err
		}
		if sess.log == nil {
			return durable.SnapshotInfo{}, badReqf("server: session %q is not durable (start psmd with -data-dir)", id)
		}
		return sess.log.Snapshot()
	})
}

// observeCycle builds a session's span hook: every engine step lands in
// the session's trace ring, and steps past the slow-cycle threshold are
// logged with their full span.
func (s *Server) observeCycle(sess *session) func(obs.CycleSpan) {
	return func(sp obs.CycleSpan) {
		sess.trace.Add(sp)
		if s.cfg.SlowCycle > 0 && sp.Total() >= s.cfg.SlowCycle {
			attrs := append([]slog.Attr{slog.String("session", sess.id)}, sp.LogAttrs()...)
			s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow cycle", attrs...)
		}
	}
}

// DeleteSession removes a session. Its trace window moves to the
// archive so /trace keeps answering for recently evicted sessions, and
// its durable state is deleted — a deleted session must not resurrect
// at the next restart.
func (s *Server) DeleteSession(ctx context.Context, id string) error {
	return s.dispatch(ctx, id, func(sh *shard) error {
		sess, ok := sh.sessions[id]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoSession, id)
		}
		s.archive.put(TraceResult{
			SessionID: id,
			Evicted:   true,
			Total:     sess.trace.Total(),
			Spans:     sess.trace.Snapshot(),
		})
		if sess.log != nil {
			sess.sys.Engine.Sink = nil
			if s.cfg.Replicator != nil {
				s.cfg.Replicator.SessionDown(id, true)
			}
			if err := sess.log.Close(); err != nil {
				s.logger.Warn("wal close on delete", "session", id, "err", err)
			}
			if err := sess.log.Remove(); err != nil {
				s.logger.Warn("durable state removal", "session", id, "err", err)
			}
		}
		delete(sh.sessions, id)
		s.index.Delete(id)
		s.sessions.Add(-1)
		s.closeSession(sess)
		return nil
	})
}

// Apply commits a batch of working-memory changes to a session and runs
// its matcher once (one synchronization step).
func (s *Server) Apply(ctx context.Context, id string, specs []ChangeSpec) (ApplyResult, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (ApplyResult, error) {
		sess, err := sh.get(id)
		if err != nil {
			return ApplyResult{}, err
		}
		sess.sys.Engine.TraceID = obs.TraceID(ctx)
		t0 := time.Now()
		res, err := sess.apply(specs)
		if err != nil {
			return ApplyResult{}, err
		}
		s.matchSeconds.Observe(time.Since(t0).Seconds())
		s.wmeChanges.Add(int64(res.Applied))
		s.expiredWMEs.Add(sess.expiredDelta())
		s.recordSched(sess)
		s.recordLoss(sess)
		return res, nil
	})
}

// StreamApply commits one streaming event batch to a session: clock
// advance, TTL expiries, asserts, then recognize-act cycles to
// quiescence (see session.ingest). It is one shard dispatch — a full
// mailbox surfaces BusyError, the stream handler's connection-level
// backpressure signal. The caller moved the batch onto the
// psmd_stream_lag_events gauge when it was read; the gauge is given
// back here whether the batch applies or fails.
func (s *Server) StreamApply(ctx context.Context, id string, events []EventSpec) (StreamResult, error) {
	defer s.streamLag.Add(-int64(len(events)))
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (StreamResult, error) {
		sess, err := sh.get(id)
		if err != nil {
			return StreamResult{}, err
		}
		sess.sys.Engine.TraceID = obs.TraceID(ctx)
		t0 := time.Now()
		res, err := sess.ingest(ctx, events)
		if err != nil {
			return StreamResult{}, err
		}
		s.matchSeconds.Observe(time.Since(t0).Seconds())
		s.streamEvents.Add(int64(res.Events))
		s.streamBatches.Inc()
		s.cycles.Add(int64(res.Cycles))
		s.firings.Add(int64(res.Fired))
		s.wmeChanges.Add(int64(res.Events + res.Expired))
		s.expiredWMEs.Add(sess.expiredDelta())
		s.recordSched(sess)
		s.recordLoss(sess)
		sess.trace.Add(obs.CycleSpan{
			TraceID: obs.TraceID(ctx), Kind: obs.SpanStream, Cycle: sess.sys.Cycles,
			Start: t0, Match: time.Since(t0),
			Fired: res.Fired, Changes: res.Events,
			WMSize: res.WMSize, ConflictSize: res.ConflictSize,
		})
		return res, nil
	})
}

// StreamLagAdd moves n events onto (or off, negative) the
// psmd_stream_lag_events gauge — the handler calls it as events come
// off the wire, before their batch reaches a shard.
func (s *Server) StreamLagAdd(n int64) { s.streamLag.Add(n) }

// recordSched advances the server-wide scheduler metrics by the session
// matcher's deltas since the previous request, including the resident
// worker gauge.
func (s *Server) recordSched(sess *session) {
	st, pk, wk, rd := sess.schedDeltas()
	s.steals.Add(st)
	s.parks.Add(pk)
	s.wakeups.Add(wk)
	s.residents.Add(rd)
}

// closeSession releases a session's matcher resources on teardown: the
// engine's resident worker pool stops, and the pool's contribution to
// the resident-workers gauge is returned. Owned-goroutine only (or
// post-shutdown, when the session maps are single-threaded again).
func (s *Server) closeSession(sess *session) {
	sess.sys.Engine.Close()
	s.residents.Add(-sess.lastResident)
	sess.lastResident = 0
}

// recordLoss advances the server-wide loss metrics by the session
// matcher's per-phase seconds and task-size counts accumulated since
// the previous request (session.lossDeltas). Labelled series appear on
// first observation — the phase vocabulary belongs to the matcher, not
// the server.
func (s *Server) recordLoss(sess *session) {
	phases, buckets := sess.lossDeltas()
	for name, secs := range phases {
		if secs > 0 {
			s.phaseCounter(name).Add(secs)
		}
	}
	for le, n := range buckets {
		if n > 0 {
			s.taskCounter(le).Add(n)
		}
	}
}

// phaseCounter returns (creating on first use) the phase-seconds series
// for one scheduler phase.
func (s *Server) phaseCounter(phase string) *stats.FloatCounter {
	s.lossMu.Lock()
	defer s.lossMu.Unlock()
	c := s.phaseSecs[phase]
	if c == nil {
		c = s.registry.FloatCounter(fmt.Sprintf("psmd_sched_phase_seconds_total{phase=%q}", phase),
			"parallel-matcher wall time by scheduler phase (plus the serial seed/merge regions)")
		s.phaseSecs[phase] = c
	}
	return c
}

// taskCounter returns (creating on first use) the activation-count
// series for one task-size bucket (le = inclusive nanosecond bound).
func (s *Server) taskCounter(le string) *stats.Counter {
	s.lossMu.Lock()
	defer s.lossMu.Unlock()
	c := s.taskCounts[le]
	if c == nil {
		c = s.registry.Counter(fmt.Sprintf("psmd_task_activations{le=%q}", le),
			"parallel-matcher activations by execution-time bucket (nanoseconds)")
		s.taskCounts[le] = c
	}
	return c
}

// SchedPhaseSeconds snapshots the node's accumulated scheduler phase
// seconds across all sessions — the cluster status endpoint uses it for
// node-level loss visibility.
func (s *Server) SchedPhaseSeconds() map[string]float64 {
	s.lossMu.Lock()
	defer s.lossMu.Unlock()
	out := make(map[string]float64, len(s.phaseSecs))
	for name, c := range s.phaseSecs {
		out[name] = c.Value()
	}
	return out
}

// RunCycles executes up to maxCycles recognize-act cycles (0 = until
// quiescence, halt, quota, or the request deadline). The session's
// MaxCyclesPerRequest quota truncates larger asks — graceful
// degradation, reported through RunResult.LimitHit rather than an
// error.
func (s *Server) RunCycles(ctx context.Context, id string, maxCycles int) (RunResult, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (RunResult, error) {
		sess, err := sh.get(id)
		if err != nil {
			return RunResult{}, err
		}
		limit := maxCycles
		if q := sess.quota.MaxCyclesPerRequest; q > 0 && (limit <= 0 || limit > q) {
			limit = q
		}
		eng := sess.sys.Engine
		// Stamp (or clear) the span label here rather than relying on
		// RunContext's pickup, so an earlier request's ID never
		// lingers on later spans.
		eng.TraceID = obs.TraceID(ctx)
		changesBefore, firedBefore := eng.TotalChanges, eng.Fired
		t0 := time.Now()
		n, err := eng.RunContext(ctx, limit)
		s.runSeconds.Observe(time.Since(t0).Seconds())
		s.cycles.Add(int64(n))
		s.firings.Add(int64(eng.Fired - firedBefore))
		s.wmeChanges.Add(int64(eng.TotalChanges - changesBefore))
		s.expiredWMEs.Add(sess.expiredDelta())
		s.recordSched(sess)
		s.recordLoss(sess)
		if err != nil && !errors.Is(err, engine.ErrCycleLimit) {
			return RunResult{}, err
		}
		res := RunResult{
			Cycles:       n,
			Fired:        eng.Fired - firedBefore,
			Halted:       eng.Halted,
			LimitHit:     errors.Is(err, engine.ErrCycleLimit),
			WMSize:       sess.sys.WM.Size(),
			ConflictSize: sess.sys.CS.Len(),
		}
		res.Quiesced = !res.Halted && !res.LimitHit
		return res, nil
	})
}

// Conflicts returns the session's conflict set in deterministic (LEX)
// order.
func (s *Server) Conflicts(ctx context.Context, id string) ([]InstInfo, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) ([]InstInfo, error) {
		sess, err := sh.get(id)
		if err != nil {
			return nil, err
		}
		var out []InstInfo
		for _, inst := range sess.sys.CS.Instantiations() {
			info := InstInfo{Production: inst.Production.Name, Key: inst.Key()}
			for _, w := range inst.WMEs {
				if w != nil {
					info.WMEs = append(info.WMEs, wmeInfo(w))
				}
			}
			out = append(out, info)
		}
		return out, nil
	})
}

// WM returns the session's working memory, optionally filtered by
// class, ordered by time tag.
func (s *Server) WM(ctx context.Context, id, class string) ([]WMEInfo, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) ([]WMEInfo, error) {
		sess, err := sh.get(id)
		if err != nil {
			return nil, err
		}
		wmes := sess.sys.WM.Elements()
		if class != "" {
			wmes = sess.sys.WM.OfClass(class)
		}
		out := make([]WMEInfo, len(wmes))
		for i, w := range wmes {
			out[i] = wmeInfo(w)
		}
		return out, nil
	})
}

// SessionStats snapshots one session.
func (s *Server) SessionStats(ctx context.Context, id string) (SessionInfo, error) {
	return dispatchShard(s, ctx, s.shardFor(id), func(sh *shard) (SessionInfo, error) {
		sess, err := sh.get(id)
		if err != nil {
			return SessionInfo{}, err
		}
		return sess.info(sh.id, time.Now()), nil
	})
}

// Sessions snapshots every live session, shard by shard.
func (s *Server) Sessions(ctx context.Context) ([]SessionInfo, error) {
	var out []SessionInfo
	for _, sh := range s.shards {
		infos, err := dispatchShard(s, ctx, sh, func(sh *shard) ([]SessionInfo, error) {
			now := time.Now()
			infos := make([]SessionInfo, 0, len(sh.sessions))
			for _, sess := range sh.sessions {
				infos = append(infos, sess.info(sh.id, now))
			}
			return infos, nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, infos...)
	}
	return out, nil
}
