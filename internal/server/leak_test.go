package server_test

// Goroutine-lifecycle coverage for the server's ownership of resident
// matcher pools: evicting a session (DELETE) and demoting it for
// cluster handoff must both close the matcher, return the
// psmd_sched_resident_workers gauge contribution, and leave no parked
// worker goroutine behind.

import (
	"context"
	"io"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/server"
)

// skewedChanges builds the goal+blocks batch whose ~2n+1 seeded
// activations exceed the serial-bypass threshold, so the session's
// resident pool actually wakes.
func skewedChanges(blocks int) server.ChangesRequest {
	changes := []server.WireChange{
		{Op: "assert", Class: "goal", Attrs: map[string]any{"type": "pick", "color": "red"}},
	}
	for i := 0; i < blocks; i++ {
		changes = append(changes, server.WireChange{
			Op: "assert", Class: "block",
			Attrs: map[string]any{"id": float64(i), "color": "red"},
		})
	}
	return server.ChangesRequest{Changes: changes}
}

// scrapeMetric fetches /metrics and extracts one unlabelled series.
func scrapeMetric(t *testing.T, c *client, name string) float64 {
	t.Helper()
	// c.http, not http.Get: the default transport's keep-alive conns
	// would hold server-side goroutines the settle checks can't close.
	resp, err := c.http.Get(c.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return metricValue(string(raw), name)
}

// quiesce closes idle HTTP conns and waits for the goroutine count to
// stop shrinking, returning the settled count. Both the client
// transport and the httptest server keep per-connection goroutines
// alive between requests; those are noise the leak assertion must not
// count.
func quiesce(c *client) int {
	c.http.CloseIdleConnections()
	last := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(2 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n >= last {
			return n
		}
		last = n
	}
	return last
}

// waitSettled polls until the quiesced goroutine count is at most want.
func waitSettled(t *testing.T, c *client, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := quiesce(c)
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: have %d, want <= %d", n, want)
		}
	}
}

// TestSessionEvictionStopsResidentWorkers pins the DELETE path: the
// session's pool workers show up on the resident-workers gauge while
// live and are fully reclaimed — gauge and goroutines — on eviction.
func TestSessionEvictionStopsResidentWorkers(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 1})

	base := quiesce(c)
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "evict", Program: skewedSrc, Matcher: "parallel-rete", Workers: 4,
	}, nil, http.StatusCreated)
	c.must("POST", "/sessions/evict/changes", skewedChanges(32), nil, http.StatusOK)

	if v := scrapeMetric(t, c, "psmd_sched_resident_workers"); v != 4 {
		t.Fatalf("psmd_sched_resident_workers = %v after wake, want 4", v)
	}
	if v := scrapeMetric(t, c, "psmd_sched_wakeups_total"); v <= 0 {
		t.Fatalf("psmd_sched_wakeups_total = %v after over-threshold batch, want > 0", v)
	}
	if n := quiesce(c); n < base+4 {
		t.Fatalf("goroutine count %d after wake, want >= base(%d)+4", n, base)
	}

	c.must("DELETE", "/sessions/evict", nil, nil, http.StatusNoContent)
	if v := scrapeMetric(t, c, "psmd_sched_resident_workers"); v != 0 {
		t.Fatalf("psmd_sched_resident_workers = %v after eviction, want 0", v)
	}
	waitSettled(t, c, base)
}

// TestDemoteStopsResidentWorkers pins the cluster-handoff path: Demote
// keeps the durable directory but must tear down the live matcher like
// an eviction — the failover demotion named in the scheduler rebuild's
// lifecycle contract.
func TestDemoteStopsResidentWorkers(t *testing.T) {
	srv, c := newTestServer(t, server.Config{Shards: 1, DataDir: t.TempDir()})

	base := quiesce(c)
	c.must("POST", "/sessions", server.CreateRequest{
		ID: "demote", Program: skewedSrc, Matcher: "parallel-rete", Workers: 4,
	}, nil, http.StatusCreated)
	c.must("POST", "/sessions/demote/changes", skewedChanges(32), nil, http.StatusOK)

	if v := scrapeMetric(t, c, "psmd_sched_resident_workers"); v != 4 {
		t.Fatalf("psmd_sched_resident_workers = %v after wake, want 4", v)
	}
	if n := quiesce(c); n < base+4 {
		t.Fatalf("goroutine count %d after wake, want >= base(%d)+4", n, base)
	}

	dir, err := srv.Demote(context.Background(), "demote")
	if err != nil {
		t.Fatalf("demote: %v", err)
	}
	if dir == "" {
		t.Fatal("demote returned no durable directory")
	}
	if v := scrapeMetric(t, c, "psmd_sched_resident_workers"); v != 0 {
		t.Fatalf("psmd_sched_resident_workers = %v after demote, want 0", v)
	}
	c.must("GET", "/sessions/demote", nil, nil, http.StatusNotFound)
	waitSettled(t, c, base)
}
