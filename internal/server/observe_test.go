package server_test

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// syncBuffer is a goroutine-safe log sink: shard goroutines write log
// lines while the test reads them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes every JSON log line currently in the buffer.
func (b *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

// waitFor polls until cond passes or the deadline expires; request log
// lines are written after the response, so tests must tolerate a beat
// of asynchrony.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// startCounter creates a counter session and runs it to halt.
func startCounter(t *testing.T, c *client, id, matcher string, limit int) {
	t.Helper()
	c.must("POST", "/sessions", server.CreateRequest{
		ID: id, Program: counterSrc, Matcher: matcher,
	}, nil, http.StatusCreated)
	c.must("POST", "/sessions/"+id+"/changes", server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": float64(limit)}},
	}}, nil, http.StatusOK)
	var run server.RunResponse
	c.must("POST", "/sessions/"+id+"/run", server.RunRequest{}, &run, http.StatusOK)
	if !run.Halted {
		t.Fatalf("counter did not halt: %+v", run)
	}
}

func TestTraceEndpointAndEvictionArchive(t *testing.T) {
	_, c := newTestServer(t, server.Config{Shards: 2})
	startCounter(t, c, "traced", "rete", 5)

	var tr server.TraceResponse
	c.must("GET", "/sessions/traced/trace", nil, &tr, http.StatusOK)
	if tr.SessionID != "traced" || tr.Evicted {
		t.Fatalf("trace = %+v, want live session traced", tr)
	}
	// One apply span for the change batch, then one span per cycle
	// (limit+1 cycles: limit counts plus the done/halt firing).
	if tr.Total != int64(len(tr.Spans)) || len(tr.Spans) != 7 {
		t.Fatalf("spans = %d (total %d), want 7", len(tr.Spans), tr.Total)
	}
	if tr.Spans[0].Kind != "apply" || tr.Spans[0].Changes != 1 {
		t.Errorf("first span = %+v, want the change batch's apply span", tr.Spans[0])
	}
	for i, sp := range tr.Spans[1:] {
		if sp.Kind != "cycle" || sp.Cycle != i+1 || sp.Fired != 1 {
			t.Errorf("span %d = %+v, want cycle %d fired 1", i+1, sp, i+1)
		}
		if sp.TraceID == "" {
			t.Errorf("span %d has no trace ID", i+1)
		}
	}

	// The session summary carries the trace's shape.
	var sess server.SessionResponse
	c.must("GET", "/sessions/traced", nil, &sess, http.StatusOK)
	if sess.TraceSpans != 7 || sess.TraceTotal != 7 {
		t.Errorf("session trace summary = %d/%d, want 7/7", sess.TraceSpans, sess.TraceTotal)
	}

	// Deleting the session moves the trace to the archive.
	c.must("DELETE", "/sessions/traced", nil, nil, http.StatusNoContent)
	c.must("GET", "/sessions/traced/trace", nil, &tr, http.StatusOK)
	if !tr.Evicted || len(tr.Spans) != 7 {
		t.Fatalf("archived trace = evicted=%v spans=%d, want evicted with 7 spans", tr.Evicted, len(tr.Spans))
	}
	// Other endpoints still 404 for the deleted session.
	if got := c.do("GET", "/sessions/traced", nil, nil); got != http.StatusNotFound {
		t.Errorf("stats after delete = %d, want 404", got)
	}
	// A never-created session has no trace anywhere.
	if got := c.do("GET", "/sessions/ghost/trace", nil, nil); got != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", got)
	}
}

func TestTraceRingBoundsSpans(t *testing.T) {
	_, c := newTestServer(t, server.Config{TraceDepth: 4})
	startCounter(t, c, "bounded", "rete", 10)
	var tr server.TraceResponse
	c.must("GET", "/sessions/bounded/trace", nil, &tr, http.StatusOK)
	if len(tr.Spans) != 4 {
		t.Fatalf("retained spans = %d, want ring depth 4", len(tr.Spans))
	}
	if tr.Total != 12 { // 1 apply + 11 cycles
		t.Errorf("total = %d, want 12", tr.Total)
	}
	// The ring keeps the most recent window: the halt cycle is last.
	last := tr.Spans[len(tr.Spans)-1]
	if last.Cycle != 11 {
		t.Errorf("last span cycle = %d, want 11", last.Cycle)
	}
}

func TestProfileEndpoint(t *testing.T) {
	_, c := newTestServer(t, server.Config{})
	for _, matcher := range []string{"rete", "parallel-rete"} {
		id := "prof-" + matcher
		startCounter(t, c, id, matcher, 6)
		var prof server.ProfileResponse
		c.must("GET", "/sessions/"+id+"/profile", nil, &prof, http.StatusOK)
		if !prof.NodesSupported || len(prof.Nodes) == 0 {
			t.Fatalf("%s: profile = %+v, want node entries", matcher, prof)
		}
		var sum float64
		for i, n := range prof.Nodes {
			if i > 0 && prof.Nodes[i-1].Cost < n.Cost {
				t.Errorf("%s: nodes not sorted by cost: %g then %g", matcher, prof.Nodes[i-1].Cost, n.Cost)
			}
			if n.Activations <= 0 || n.Label == "" {
				t.Errorf("%s: bad node entry %+v", matcher, n)
			}
			sum += n.Cost
		}
		if prof.TotalCost <= 0 || sum != prof.TotalCost {
			t.Errorf("%s: total cost %g, node sum %g", matcher, prof.TotalCost, sum)
		}
		if prof.MatchStats == nil || prof.MatchStats.Changes == 0 {
			t.Errorf("%s: missing match stats: %+v", matcher, prof.MatchStats)
		}

		// ?top= truncates and reports how much was dropped.
		var top server.ProfileResponse
		c.must("GET", "/sessions/"+id+"/profile?top=1", nil, &top, http.StatusOK)
		if len(top.Nodes) != 1 || top.Truncated != len(prof.Nodes)-1 {
			t.Errorf("%s: top=1 gave %d nodes, truncated %d", matcher, len(top.Nodes), top.Truncated)
		}
		if got := c.do("GET", "/sessions/"+id+"/profile?top=x", nil, nil); got != http.StatusBadRequest {
			t.Errorf("%s: bad top param = %d, want 400", matcher, got)
		}
	}

	// Matchers without a node network degrade to whole-matcher stats.
	startCounter(t, c, "prof-naive", "naive", 3)
	var prof server.ProfileResponse
	c.must("GET", "/sessions/prof-naive/profile", nil, &prof, http.StatusOK)
	if prof.NodesSupported || len(prof.Nodes) != 0 {
		t.Errorf("naive: profile claims nodes: %+v", prof)
	}
	if prof.MatchStats == nil {
		t.Error("naive: missing match stats")
	}
}

func TestRequestIDPropagatesToSpans(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	c := newClient(t, ts)

	c.must("POST", "/sessions", server.CreateRequest{
		ID: "rid", Program: counterSrc,
	}, nil, http.StatusCreated)
	// Apply the seed batch under its own caller-chosen request ID: the
	// apply span must be attributed to the request that committed it.
	chBody, _ := json.Marshal(server.ChangesRequest{Changes: []server.WireChange{
		{Op: "assert", Class: "counter", Attrs: map[string]any{"n": 0.0, "limit": 3.0}},
	}})
	chReq, err := http.NewRequest("POST", ts.URL+server.APIVersion+"/sessions/rid/changes", bytes.NewReader(chBody))
	if err != nil {
		t.Fatal(err)
	}
	chReq.Header.Set("X-Request-Id", "req-cafe")
	chResp, err := ts.Client().Do(chReq)
	if err != nil {
		t.Fatal(err)
	}
	chResp.Body.Close()
	if chResp.StatusCode != http.StatusOK {
		t.Fatalf("changes status = %d", chResp.StatusCode)
	}

	// Run with a caller-chosen request ID.
	body, _ := json.Marshal(server.RunRequest{})
	req, err := http.NewRequest("POST", ts.URL+server.APIVersion+"/sessions/rid/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "req-deadbeef")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-deadbeef" {
		t.Errorf("echoed request ID = %q, want req-deadbeef", got)
	}

	var tr server.TraceResponse
	c.must("GET", "/sessions/rid/trace", nil, &tr, http.StatusOK)
	cycles, applies := 0, 0
	for _, sp := range tr.Spans {
		switch sp.Kind {
		case "cycle":
			cycles++
			if sp.TraceID != "req-deadbeef" {
				t.Errorf("cycle %d trace = %q, want req-deadbeef", sp.Cycle, sp.TraceID)
			}
		case "apply":
			applies++
			if sp.TraceID != "req-cafe" {
				t.Errorf("apply span trace = %q, want req-cafe", sp.TraceID)
			}
		}
	}
	if cycles == 0 || applies == 0 {
		t.Fatalf("spans recorded: %d cycle, %d apply; want both > 0", cycles, applies)
	}

	// Requests without the header get a generated ID.
	resp2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Error("no generated request ID on response")
	}
}

func TestRequestLogging(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	_, c := newTestServer(t, server.Config{Logger: logger})
	startCounter(t, c, "logged", "rete", 3)

	var runLine map[string]any
	waitFor(t, func() bool {
		for _, line := range buf.logLines(t) {
			if line["msg"] == "request" && line["path"] == "/v1/sessions/logged/run" {
				runLine = line
				return true
			}
		}
		return false
	})
	if runLine["trace_id"] == "" || runLine["trace_id"] == nil {
		t.Errorf("run log line missing trace_id: %v", runLine)
	}
	if runLine["session"] != "logged" {
		t.Errorf("run log line session = %v, want logged", runLine["session"])
	}
	if _, ok := runLine["shard"].(float64); !ok {
		t.Errorf("run log line missing shard: %v", runLine)
	}
	if runLine["status"] != float64(http.StatusOK) {
		t.Errorf("run log line status = %v, want 200", runLine["status"])
	}
	if _, ok := runLine["latency"]; !ok {
		t.Errorf("run log line missing latency: %v", runLine)
	}

	// Scrape endpoints stay out of info-level logs.
	resp, err := http.Get(c.raw + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, line := range buf.logLines(t) {
		if line["path"] == "/metrics" {
			t.Errorf("scrape logged at info level: %v", line)
		}
	}
}

func TestSlowCycleLogDumpsSpan(t *testing.T) {
	buf := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(buf, nil))
	// Any cycle beats a 1ns threshold, so every cycle logs.
	_, c := newTestServer(t, server.Config{Logger: logger, SlowCycle: time.Nanosecond})
	startCounter(t, c, "slow", "rete", 2)

	waitFor(t, func() bool {
		for _, line := range buf.logLines(t) {
			if line["msg"] == "slow cycle" {
				return true
			}
		}
		return false
	})
	for _, line := range buf.logLines(t) {
		if line["msg"] != "slow cycle" {
			continue
		}
		if line["session"] != "slow" {
			t.Errorf("slow-cycle line session = %v", line["session"])
		}
		for _, key := range []string{"trace_id", "kind", "cycle", "total", "match", "select", "act", "fired", "wm_size", "conflict_size"} {
			if _, ok := line[key]; !ok {
				t.Errorf("slow-cycle line missing %q: %v", key, line)
			}
		}
		return
	}
}

func TestPprofMountedByDefault(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	resp, err := http.Get(ts.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof heap = %d, want 200", resp.StatusCode)
	}

	srv2 := server.New(server.Config{})
	ts2 := httptest.NewServer(srv2.HandlerWith(server.HandlerConfig{DisablePprof: true}))
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	resp2, err := http.Get(ts2.URL + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled pprof = %d, want 404", resp2.StatusCode)
	}
}

func TestRuntimeGaugesExposed(t *testing.T) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := readAll(t, resp)
	for _, want := range []string{"psmd_goroutines", "psmd_heap_alloc_bytes"} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s:\n%s", want, out)
		}
	}
}

// readAll drains a response body as a string.
func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
