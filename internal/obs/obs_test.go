package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func TestTraceIDContextRoundTrip(t *testing.T) {
	if got := TraceID(context.Background()); got != "" {
		t.Errorf("TraceID(empty ctx) = %q, want \"\"", got)
	}
	ctx := WithTraceID(context.Background(), "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Errorf("TraceID = %q, want abc123", got)
	}
}

func TestNewTraceIDShapeAndSpread(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q: len %d, want 16", id, len(id))
		}
		seen[id] = true
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct IDs out of 100", len(seen))
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Add(CycleSpan{Cycle: i})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Snapshot()
	for i, want := range []int{7, 8, 9, 10} {
		if got[i].Cycle != want {
			t.Errorf("span %d cycle = %d, want %d", i, got[i].Cycle, want)
		}
	}
	if last, ok := r.Last(); !ok || last.Cycle != 10 {
		t.Errorf("Last = %+v/%v, want cycle 10", last, ok)
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Add(CycleSpan{Cycle: 1})
	r.Add(CycleSpan{Cycle: 2})
	got := r.Snapshot()
	if len(got) != 2 || got[0].Cycle != 1 || got[1].Cycle != 2 {
		t.Errorf("Snapshot = %+v, want cycles [1 2]", got)
	}
}

func TestRingConcurrentAddSnapshot(t *testing.T) {
	r := NewRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Add(CycleSpan{Cycle: i})
				if i%50 == 0 {
					r.Snapshot()
					r.Last()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Errorf("Total = %d, want 2000", r.Total())
	}
}

func TestSpanTotalAndAttrs(t *testing.T) {
	s := CycleSpan{
		TraceID: "t1", Kind: SpanCycle, Cycle: 3,
		Match: 2 * time.Millisecond, Select: time.Millisecond, Act: 3 * time.Millisecond,
	}
	if s.Total() != 6*time.Millisecond {
		t.Errorf("Total = %v, want 6ms", s.Total())
	}
	attrs := s.LogAttrs()
	if len(attrs) == 0 || attrs[0].Key != "trace_id" {
		t.Errorf("LogAttrs = %v, want trace_id first", attrs)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hidden")
	lg.Info("hello", "k", "v")
	line := buf.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Errorf("log record = %v", rec)
	}
	if _, err := NewLogger(&buf, "yaml", slog.LevelInfo); err == nil {
		t.Error("NewLogger(yaml) did not error")
	}
	if _, err := ParseLevel("warn"); err != nil {
		t.Errorf("ParseLevel(warn): %v", err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not error")
	}
}
