package obs

import (
	"log/slog"
	"time"
)

// SpanKind distinguishes the shapes of engine work a span records.
type SpanKind string

// The span kinds.
const (
	// SpanCycle is one recognize-act cycle: conflict-resolve, act, then
	// match over the firings' change batch.
	SpanCycle SpanKind = "cycle"
	// SpanApply is one externally submitted change batch pushed through
	// the matcher (no firings of its own).
	SpanApply SpanKind = "apply"
	// SpanStream is one NDJSON event batch through streaming ingest:
	// clock advance, expiries, asserts, then cycles to quiescence.
	// Match covers the whole batch wall time; Fired and Changes count
	// the work it triggered.
	SpanStream SpanKind = "stream"
)

// CycleSpan is one engine synchronization step, attributed to the
// request that drove it. Durations split the step into the three phases
// of §2.1: Match (the change batch through the matcher), Select
// (conflict resolution), and Act (RHS evaluation).
type CycleSpan struct {
	// TraceID is the driving request's trace ID ("" when the span was
	// produced outside a traced request).
	TraceID string
	// Kind is SpanCycle or SpanApply.
	Kind SpanKind
	// Cycle is the engine's cumulative cycle count when the span ended
	// (unchanged across SpanApply spans).
	Cycle int
	// Start is when the step began.
	Start time.Time
	// Match, Select and Act are the phase durations.
	Match  time.Duration
	Select time.Duration
	Act    time.Duration
	// Fired is the number of production firings in the step.
	Fired int
	// Changes is the number of WM changes the step pushed through the
	// matcher.
	Changes int
	// WMSize and ConflictSize snapshot the session after the step.
	WMSize       int
	ConflictSize int
}

// Total returns the step's summed phase durations.
func (s CycleSpan) Total() time.Duration { return s.Match + s.Select + s.Act }

// LogAttrs renders the span as structured-log attributes, used by the
// server's slow-cycle log to dump the offending cycle.
func (s CycleSpan) LogAttrs() []slog.Attr {
	return []slog.Attr{
		slog.String("trace_id", s.TraceID),
		slog.String("kind", string(s.Kind)),
		slog.Int("cycle", s.Cycle),
		slog.Duration("total", s.Total()),
		slog.Duration("match", s.Match),
		slog.Duration("select", s.Select),
		slog.Duration("act", s.Act),
		slog.Int("fired", s.Fired),
		slog.Int("changes", s.Changes),
		slog.Int("wm_size", s.WMSize),
		slog.Int("conflict_size", s.ConflictSize),
	}
}
