// Package obs is the request-scoped observability layer threaded
// through the serving stack (cmd/psmd -> internal/server ->
// internal/engine): trace IDs propagated via context.Context, per-cycle
// span records collected in bounded ring buffers, and structured-log
// construction for the daemon.
//
// The paper's §6 results hinge on measuring where cycles go — node
// activations, concurrency, the 1.93x scheduling-and-synchronization
// "lost factor". internal/trace captures that offline from instrumented
// runs; this package is the live counterpart: every /v1 request carries
// a trace ID, every recognize-act cycle it drives becomes a CycleSpan
// (match / conflict-resolve / act durations, WME deltas, firings,
// conflict-set size), and the spans are queryable per session while the
// service runs.
//
// The package is a leaf: it imports only the standard library, so both
// the engine and the server can depend on it without cycles.
package obs

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"strings"
)

// ctxKey is the private context key type for trace IDs.
type ctxKey struct{}

// NewTraceID returns a fresh 16-hex-digit trace ID. IDs only need to be
// unique enough to correlate log lines and spans within a deployment,
// so a fast non-cryptographic source is deliberate.
func NewTraceID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// NewLogger builds a slog.Logger writing to w in the given format
// ("text" or "json") at the given minimum level.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text|json)", format)
	}
}

// ParseLevel converts a level name (debug, info, warn, error) to a
// slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
	}
}
