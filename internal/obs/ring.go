package obs

import "sync"

// DefaultRingDepth is the span capacity used when a Ring is sized <= 0.
const DefaultRingDepth = 256

// Ring is a bounded buffer of the most recent CycleSpans. Writers
// overwrite the oldest span once the buffer is full, so a long-lived
// session's trace stays a fixed-size window over its latest activity.
// All methods are safe for concurrent use: spans are added on the
// session's shard goroutine while snapshots may be taken from archive
// or test code.
type Ring struct {
	mu    sync.Mutex
	spans []CycleSpan
	next  int   // index the next span is written at
	total int64 // spans ever added (total - len = overwritten)
}

// NewRing returns a ring holding up to depth spans (<= 0 selects
// DefaultRingDepth).
func NewRing(depth int) *Ring {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	return &Ring{spans: make([]CycleSpan, 0, depth)}
}

// Add records one span, overwriting the oldest when full.
func (r *Ring) Add(s CycleSpan) {
	r.mu.Lock()
	if len(r.spans) < cap(r.spans) {
		r.spans = append(r.spans, s)
	} else {
		r.spans[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.spans)
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the buffered spans, oldest first.
func (r *Ring) Snapshot() []CycleSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CycleSpan, 0, len(r.spans))
	if len(r.spans) == cap(r.spans) {
		out = append(out, r.spans[r.next:]...)
	}
	out = append(out, r.spans[:r.next]...)
	return out
}

// Last returns the most recent span, if any.
func (r *Ring) Last() (CycleSpan, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) == 0 {
		return CycleSpan{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.spans) - 1
	}
	return r.spans[i], true
}

// Len returns the number of buffered spans.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Total returns the number of spans ever added; Total() - Len() spans
// have been overwritten.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
