package soar

import (
	"fmt"

	"repro/internal/ops5"
)

// EightPuzzleSoar is the eight puzzle as a Soar task — the laptop-scale
// counterpart of the paper's Eight-Puzzle-Soar workload. Move operators
// are proposed for every tile adjacent to the blank; precomputed
// (gooddir ^tile ^from ^to) facts mark moves that reduce a tile's
// Manhattan distance to its home square, and such moves receive best
// preferences. The previously moved tile is not re-proposed (no
// immediate undo), and remaining ties are resolved in a subgoal that
// prefers the smallest tile value.
const EightPuzzleSoar = `
(literalize goal id status type for task)
(literalize preference goal op arg arg2 value)
(literalize operator goal op arg arg2)
(literalize tile val pos)
(literalize blank pos)
(literalize adjacent from to)
(literalize gooddir tile from to)
(literalize last-moved tile)

; --- proposals --------------------------------------------------------

(p propose*move
    (goal ^id <g> ^task eight-puzzle ^status active)
    (blank ^pos <b>)
    (adjacent ^from <t> ^to <b>)
    (tile ^val <v> ^pos <t>)
   -(last-moved ^tile <v>)
  -->
    (make preference ^goal <g> ^op move ^arg <v> ^value acceptable))

; --- strategy: prefer distance-reducing moves -------------------------

(p elaborate*prefer-good-move
    (goal ^id <g> ^task eight-puzzle ^status active)
    (preference ^goal <g> ^op move ^arg <v> ^value acceptable)
    (tile ^val <v> ^pos <t>)
    (blank ^pos <b>)
    (gooddir ^tile <v> ^from <t> ^to <b>)
  -->
    (make preference ^goal <g> ^op move ^arg <v> ^value best))

; Tie impasse: prefer the smallest candidate tile.
(p elaborate*tie-smallest
    (goal ^id <sg> ^type tie ^for <g> ^status active)
    (preference ^goal <g> ^op move ^arg <v> ^value acceptable)
   -(preference ^goal <g> ^op move ^arg < <v> ^value acceptable)
  -->
    (make preference ^goal <g> ^op move ^arg <v> ^value best))

; --- success test ------------------------------------------------------

(p elaborate*success
    (goal ^id <g> ^task eight-puzzle ^status active)
    (tile ^val 1 ^pos 1) (tile ^val 2 ^pos 2) (tile ^val 3 ^pos 3)
    (tile ^val 4 ^pos 4) (tile ^val 5 ^pos 5) (tile ^val 6 ^pos 6)
    (tile ^val 7 ^pos 7) (tile ^val 8 ^pos 8)
  -->
    (write puzzle solved)
    (halt))

; --- operator application ---------------------------------------------

(p apply*move
    (operator ^goal <g> ^op move ^arg <v>)
    (tile ^val <v> ^pos <t>)
    (blank ^pos <b>)
    (adjacent ^from <t> ^to <b>)
  -->
    (modify 2 ^pos <b>)
    (modify 3 ^pos <t>)
    (make last-moved ^tile <v>)
    (remove 1))

; Forget the no-undo marker one operator later.
(p apply*forget-last
    (operator ^goal <g> ^op move ^arg <v>)
    (last-moved ^tile <> <v>)
  -->
    (remove 2))

(make goal ^id g1 ^task eight-puzzle ^status active)
`

// EightPuzzleSoarWM builds the domain facts for EightPuzzleSoar: the
// tile layout (0 = blank, row-major positions 1-9), the adjacency
// graph, and the gooddir table marking distance-reducing moves toward
// the standard goal (1 2 3 / 4 5 6 / 7 8 _).
func EightPuzzleSoarWM(layout [9]int) ([]*ops5.WME, error) {
	var wmes []*ops5.WME
	row := func(p int) int { return (p - 1) / 3 }
	col := func(p int) int { return (p - 1) % 3 }
	dist := func(p, q int) int {
		dr := row(p) - row(q)
		if dr < 0 {
			dr = -dr
		}
		dc := col(p) - col(q)
		if dc < 0 {
			dc = -dc
		}
		return dr + dc
	}
	adjacent := func(p, q int) bool { return dist(p, q) == 1 }

	for p := 1; p <= 9; p++ {
		for q := 1; q <= 9; q++ {
			if adjacent(p, q) {
				wmes = append(wmes, ops5.NewWME("adjacent", "from", p, "to", q))
			}
		}
	}
	// gooddir: tile v moving from p to adjacent q gets closer to its
	// home square (tile v's home is position v).
	for v := 1; v <= 8; v++ {
		for p := 1; p <= 9; p++ {
			for q := 1; q <= 9; q++ {
				if adjacent(p, q) && dist(q, v) < dist(p, v) {
					wmes = append(wmes, ops5.NewWME("gooddir", "tile", v, "from", p, "to", q))
				}
			}
		}
	}
	blanks := 0
	for i, v := range layout {
		switch {
		case v == 0:
			wmes = append(wmes, ops5.NewWME("blank", "pos", i+1))
			blanks++
		case v >= 1 && v <= 8:
			wmes = append(wmes, ops5.NewWME("tile", "val", v, "pos", i+1))
		default:
			return nil, fmt.Errorf("soar: invalid tile value %d", v)
		}
	}
	if blanks != 1 {
		return nil, fmt.Errorf("soar: layout needs exactly one blank, found %d", blanks)
	}
	return wmes, nil
}
