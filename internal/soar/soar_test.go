package soar_test

import (
	"strings"
	"testing"

	"repro/internal/ops5"
	"repro/internal/soar"
)

func TestWaterJugSolves(t *testing.T) {
	var out strings.Builder
	a, err := soar.NewAgent(soar.WaterJug, soar.Options{Out: &out, MaxDecisions: 30})
	if err != nil {
		t.Fatal(err)
	}
	decisions, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Halted {
		t.Fatalf("agent did not reach the goal; decisions=%d impasses=%d output:\n%s\nWM:\n%s",
			decisions, a.Impasses, out.String(), dumpWM(a))
	}
	if !strings.Contains(out.String(), "solved") {
		t.Errorf("missing success message:\n%s", out.String())
	}
	// The pour-first strategy solves 5/3 -> 4 in 6 operators, with tie
	// impasses whenever only fills are available.
	if decisions < 6 || decisions > 12 {
		t.Errorf("decisions = %d, want 6-12", decisions)
	}
	if a.Impasses < 1 {
		t.Errorf("impasses = %d, want >= 1 (initial fill tie)", a.Impasses)
	}
	// Final state: the large jug holds 4.
	for _, w := range a.Engine().WM.OfClass("jug") {
		if w.Get("id").SymName() == "a" && w.Get("amount").Num != 4 {
			t.Errorf("jug a = %v, want 4", w.Get("amount"))
		}
	}
	// Subgoals popped after their ties resolved.
	if got := len(a.GoalStack()); got != 1 {
		t.Errorf("goal stack depth = %d, want 1 (subgoals popped)", got)
	}
}

func dumpWM(a *soar.Agent) string {
	var b strings.Builder
	for _, w := range a.Engine().WM.Elements() {
		b.WriteString(w.String() + "\n")
	}
	return b.String()
}

func TestElaborationWavesAreParallel(t *testing.T) {
	// With both jugs holding water, the three proposal rules produce
	// several preferences in ONE wave: the trace must contain batches
	// with multiple WM changes (the paper's parallel firings).
	a, err := soar.NewAgent(soar.WaterJug, soar.Options{Trace: true, MaxDecisions: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	tr := a.Recorder.Trace
	// Count changes per batch; elaboration waves must produce batches
	// with >= 3 changes (multiple preferences at once).
	perBatch := map[int]int{}
	for _, task := range tr.Tasks {
		if task.Parent == 0 {
			perBatch[task.Batch]++
		}
	}
	maxBatch := 0
	for _, n := range perBatch {
		if n > maxBatch {
			maxBatch = n
		}
	}
	if maxBatch < 3 {
		t.Errorf("largest batch = %d changes, want >= 3 (parallel elaboration wave)", maxBatch)
	}
}

func TestAgentRequiresRootGoal(t *testing.T) {
	src := `
(p noop (x ^v 1) --> (halt))
`
	if _, err := soar.NewAgent(src, soar.Options{}); err == nil {
		t.Error("expected error for missing root goal")
	}
	two := `
(p noop (x ^v 1) --> (halt))
(make goal ^id g1 ^status active)
(make goal ^id g2 ^status active)
`
	if _, err := soar.NewAgent(two, soar.Options{}); err == nil {
		t.Error("expected error for two root goals")
	}
}

func TestNoCandidatesStops(t *testing.T) {
	// A task whose rules never create preferences quiesces immediately.
	src := `
(p elaborate*nothing (goal ^id <g> ^status active) (never ^v 1) --> (make x ^v 1))
(make goal ^id g1 ^status active)
`
	a, err := soar.NewAgent(src, soar.Options{MaxDecisions: 5})
	if err != nil {
		t.Fatal(err)
	}
	decisions, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if decisions != 0 || a.Halted {
		t.Errorf("decisions=%d halted=%v, want 0/false (state no-change)", decisions, a.Halted)
	}
}

func TestOperatorWMEInstalled(t *testing.T) {
	// Drive one Step and check the operator WME appears and preferences
	// are consumed.
	a, err := soar.NewAgent(soar.WaterJug, soar.Options{MaxDecisions: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: initial fill tie -> impasse.
	if ok, err := a.Step(); err != nil || !ok {
		t.Fatalf("step 1: ok=%v err=%v", ok, err)
	}
	if a.Impasses != 1 || len(a.GoalStack()) != 2 {
		t.Fatalf("expected a tie impasse, impasses=%d stack=%v", a.Impasses, a.GoalStack())
	}
	// Step 2: subgoal knowledge resolves the tie; fill a installs.
	if ok, err := a.Step(); err != nil || !ok {
		t.Fatalf("step 2: ok=%v err=%v", ok, err)
	}
	if len(a.GoalStack()) != 1 {
		t.Errorf("subgoal not popped: %v", a.GoalStack())
	}
	var jugA *ops5.WME
	for _, w := range a.Engine().WM.OfClass("jug") {
		if w.Get("id").SymName() == "a" {
			jugA = w
		}
	}
	if jugA == nil || jugA.Get("amount").Num != 5 {
		t.Errorf("after fill a, jug a = %v", jugA)
	}
	if prefs := a.Engine().WM.OfClass("preference"); len(prefs) != 0 {
		t.Errorf("preferences not consumed at decision: %d remain", len(prefs))
	}
}

func TestEightPuzzleSoarSolvesShallowScramble(t *testing.T) {
	// Two moves from the goal: greedy Manhattan descent with no-undo
	// must solve it (see eightpuzzle.go for the strategy rules).
	layout := [9]int{1, 2, 3, 4, 0, 6, 7, 5, 8}
	wmes, err := soar.EightPuzzleSoarWM(layout)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	a, err := soar.NewAgent(soar.EightPuzzleSoar, soar.Options{
		Out: &out, MaxDecisions: 40, ExtraWM: wmes,
	})
	if err != nil {
		t.Fatal(err)
	}
	decisions, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Halted || !strings.Contains(out.String(), "puzzle solved") {
		t.Fatalf("not solved after %d decisions; output=%q WM:\n%s",
			decisions, out.String(), dumpWM(a))
	}
	if decisions > 8 {
		t.Errorf("decisions = %d, want <= 8 for a 2-move scramble", decisions)
	}
}

func TestEightPuzzleSoarFourMoveScramble(t *testing.T) {
	// Four moves from the goal along distinct tiles.
	layout := [9]int{1, 2, 3, 7, 4, 6, 0, 5, 8}
	wmes, err := soar.EightPuzzleSoarWM(layout)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	a, err := soar.NewAgent(soar.EightPuzzleSoar, soar.Options{
		Out: &out, MaxDecisions: 60, ExtraWM: wmes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if !a.Halted {
		t.Fatalf("not solved; WM:\n%s", dumpWM(a))
	}
}

func TestEightPuzzleSoarWMErrors(t *testing.T) {
	if _, err := soar.EightPuzzleSoarWM([9]int{1, 2, 3, 4, 5, 6, 7, 8, 9}); err == nil {
		t.Error("expected error for invalid tile value")
	}
	if _, err := soar.EightPuzzleSoarWM([9]int{1, 2, 3, 4, 5, 6, 7, 8, 0}); err != nil {
		t.Errorf("goal layout should be valid: %v", err)
	}
}
