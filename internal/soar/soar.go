// Package soar implements a Soar-flavoured decision layer on top of
// the OPS5 engine: elaboration waves in which *every* newly matched
// elaboration rule fires simultaneously, a decision procedure driven by
// preference working-memory elements, operator application, and
// tie-impasse subgoaling.
//
// Two of the paper's six workloads (R1-Soar and Eight-Puzzle-Soar) are
// Soar systems, and the "parallel firings" curves of Figures 6-1/6-2
// exist precisely because Soar's elaboration phase fires all satisfied
// productions in parallel — the application-level parallelism §8 calls
// the one real lever on working-memory changes per cycle. This package
// provides that execution model so elaboration-wave traces can be
// captured from real programs (experiment E14).
//
// Conventions (a simplified subset of Soar 4-era semantics):
//
//   - Rule kinds by name prefix: "apply*" rules are operator
//     applications; everything else ("propose*", "elaborate*", ...) is
//     an elaboration rule fired in waves.
//   - Preferences are WMEs of class "preference":
//     (preference ^goal <g> ^op <name> ^arg <a> ^arg2 <b> ^value
//     acceptable|best|reject). ^arg/^arg2 are optional.
//   - The decision procedure, per goal from the root down: candidates
//     are (op, arg, arg2) triples with an acceptable or best
//     preference and no reject; a unique best wins, else a unique
//     acceptable; multiple candidates raise a tie impasse; zero
//     candidates at the deepest goal ends the run (state no-change).
//   - Selecting an operator installs (operator ^goal <g> ^op ^arg
//     ^arg2), removes the goal's preferences, and pops any subgoals
//     below the deciding goal.
//   - A tie impasse pushes (goal ^id <sg> ^type tie ^for <g> ^status
//     active); subgoal rules typically add best/reject preferences for
//     the supergoal, letting the next decision succeed.
package soar

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/conflict"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/trace"
	"repro/internal/wm"
)

// Options configures an Agent.
type Options struct {
	// Out receives write-action output.
	Out io.Writer
	// MaxDecisions bounds the run (default 100).
	MaxDecisions int
	// MaxWaves bounds elaboration waves per phase (default 50).
	MaxWaves int
	// Trace, when true, instruments the matcher and exposes the
	// activation trace through Agent.Recorder.
	Trace bool
	// ExtraWM is loaded after the program's top-level make forms
	// (domain facts built programmatically, e.g. adjacency tables).
	ExtraWM []*ops5.WME
}

// Agent is a running Soar-lite agent.
type Agent struct {
	eng   *engine.Engine
	cs    *conflict.Set
	prods []*ops5.Production

	// Recorder is non-nil when Options.Trace was set.
	Recorder *trace.Recorder

	// goals is the goal stack, root first. Each entry is the goal id.
	goals []string

	// fired tracks instantiations that have already fired (Soar's
	// instantiation memory: an instantiation fires exactly once).
	fired map[string]bool

	opts Options

	// Decisions counts decision cycles executed.
	Decisions int
	// Impasses counts tie impasses raised.
	Impasses int
	// Waves counts elaboration waves executed.
	Waves int
	// Halted reports whether a rule executed halt.
	Halted bool

	subgoalSeq int
}

// NewAgent parses the program and builds the agent. The program's
// top-level (make ...) forms must include exactly one root goal:
// (make goal ^id <sym> ^status active ...).
func NewAgent(src string, opts Options) (*Agent, error) {
	prog, err := ops5.Parse(src)
	if err != nil {
		return nil, err
	}
	net, err := rete.Compile(prog.Productions)
	if err != nil {
		return nil, err
	}
	cs := conflict.NewSet(conflict.LEX)
	net.OnInsert = cs.Insert
	net.OnRemove = cs.Remove

	if opts.MaxDecisions == 0 {
		opts.MaxDecisions = 100
	}
	if opts.MaxWaves == 0 {
		opts.MaxWaves = 50
	}
	a := &Agent{
		cs:    cs,
		prods: prog.Productions,
		fired: make(map[string]bool),
		opts:  opts,
	}
	var matcher engine.Matcher = netMatcher{net}
	if opts.Trace {
		a.Recorder = trace.NewRecorder("soar", net, cost.Default())
		matcher = a.Recorder
	}
	a.eng = engine.New(wm.New(), cs, matcher)
	a.eng.Out = opts.Out
	a.eng.Load(prog.InitialWM)
	a.eng.Load(opts.ExtraWM)

	for _, w := range prog.InitialWM {
		if w.Class() == "goal" && w.Get("status").SymName() == "active" {
			if id := w.Get("id"); id.Kind == ops5.SymValue {
				a.goals = append(a.goals, id.SymName())
			}
		}
	}
	if len(a.goals) != 1 {
		return nil, fmt.Errorf("soar: program must make exactly one active root goal, found %d", len(a.goals))
	}
	return a, nil
}

// netMatcher adapts *rete.Network to engine.Matcher.
type netMatcher struct{ net *rete.Network }

// Apply forwards the batch to the network.
func (m netMatcher) Apply(changes []ops5.Change) { m.net.Apply(changes) }

// Engine exposes the underlying engine (WM access, counters).
func (a *Agent) Engine() *engine.Engine { return a.eng }

// GoalStack returns the current goal ids, root first.
func (a *Agent) GoalStack() []string { return append([]string(nil), a.goals...) }

// isApplyRule reports whether a production is an operator application.
func isApplyRule(p *ops5.Production) bool {
	return strings.HasPrefix(p.Name, "apply")
}

// wave fires every unfired instantiation of the selected rule kind as
// one parallel batch; it reports how many fired.
func (a *Agent) wave(apply bool) (int, error) {
	var batch []ops5.Change
	consumed := make(map[int]bool)
	fired := 0
	for _, inst := range a.cs.Instantiations() {
		if isApplyRule(inst.Production) != apply {
			continue
		}
		key := inst.Key()
		if a.fired[key] {
			continue
		}
		skip := false
		for _, w := range inst.WMEs {
			if w != nil && consumed[w.TimeTag] {
				skip = true // another firing in this wave consumed it
				break
			}
		}
		if skip {
			continue
		}
		a.fired[key] = true
		changes, err := a.eng.EvalRHS(inst, consumed)
		if err != nil {
			return fired, err
		}
		batch = append(batch, changes...)
		fired++
		if a.eng.Halted {
			a.Halted = true
			break
		}
	}
	if len(batch) > 0 {
		a.eng.ApplyChanges(batch)
	}
	return fired, nil
}

// elaborate runs elaboration waves to quiescence.
func (a *Agent) elaborate() error {
	for i := 0; i < a.opts.MaxWaves; i++ {
		n, err := a.wave(false)
		if err != nil {
			return err
		}
		if n > 0 {
			a.Waves++
		}
		if n == 0 || a.Halted {
			return nil
		}
	}
	return fmt.Errorf("soar: elaboration did not reach quiescence in %d waves", a.opts.MaxWaves)
}

// candidate is one (op, arg, arg2) the decision procedure considers.
type candidate struct {
	op, arg, arg2 ops5.Value
	best, reject  bool
}

func candKey(op, arg, arg2 ops5.Value) string {
	return op.String() + "|" + arg.String() + "|" + arg2.String()
}

// decide attempts a decision for goal g. It returns the selected
// candidate, whether a decision was made, and whether a tie impasse
// should be raised.
func (a *Agent) decide(g string) (sel *candidate, decided, tie bool) {
	cands := map[string]*candidate{}
	for _, w := range a.eng.WM.OfClass("preference") {
		if w.Get("goal").SymName() != g {
			continue
		}
		op, arg, arg2 := w.Get("op"), w.Get("arg"), w.Get("arg2")
		key := candKey(op, arg, arg2)
		c := cands[key]
		if c == nil {
			c = &candidate{op: op, arg: arg, arg2: arg2}
			cands[key] = c
		}
		switch w.Get("value").SymName() {
		case "best":
			c.best = true
		case "reject":
			c.reject = true
		}
	}
	var bests, acceptables []*candidate
	for _, c := range cands {
		if c.reject {
			continue
		}
		if c.best {
			bests = append(bests, c)
		}
		acceptables = append(acceptables, c)
	}
	switch {
	case len(bests) == 1:
		return bests[0], true, false
	case len(bests) > 1:
		return nil, false, true
	case len(acceptables) == 1:
		return acceptables[0], true, false
	case len(acceptables) > 1:
		return nil, false, true
	default:
		return nil, false, false
	}
}

// install commits a decision at goal level (stack index), removing
// preferences, replacing the operator WME, and popping subgoals.
func (a *Agent) install(level int, sel *candidate) {
	g := a.goals[level]
	var batch []ops5.Change
	// Remove every preference for this goal.
	for _, w := range a.eng.WM.OfClass("preference") {
		if w.Get("goal").SymName() == g {
			batch = append(batch, ops5.Change{Kind: ops5.Delete, WME: w})
		}
	}
	// Replace the goal's operator.
	for _, w := range a.eng.WM.OfClass("operator") {
		if w.Get("goal").SymName() == g {
			batch = append(batch, ops5.Change{Kind: ops5.Delete, WME: w})
		}
	}
	opPairs := []any{"goal", ops5.Sym(g), "op", sel.op}
	if !sel.arg.Nil() {
		opPairs = append(opPairs, "arg", sel.arg)
	}
	if !sel.arg2.Nil() {
		opPairs = append(opPairs, "arg2", sel.arg2)
	}
	opWME := ops5.NewWME("operator", opPairs...)
	batch = append(batch, ops5.Change{Kind: ops5.Insert, WME: opWME})
	// Pop subgoals below the deciding level: their goal WMEs, their
	// preferences/operators, and every WME tagged ^goal <subgoal-id>.
	for _, sub := range a.goals[level+1:] {
		for _, w := range a.eng.WM.Elements() {
			switch {
			case w.Class() == "goal" && w.Get("id").SymName() == sub,
				w.Get("goal").SymName() == sub:
				batch = append(batch, ops5.Change{Kind: ops5.Delete, WME: w})
			}
		}
	}
	a.goals = a.goals[:level+1]
	a.eng.ApplyChanges(batch)
}

// impasse pushes a tie subgoal below goal g.
func (a *Agent) impasse(g string) {
	a.Impasses++
	a.subgoalSeq++
	id := fmt.Sprintf("sg%d", a.subgoalSeq)
	sub := ops5.NewWME("goal",
		"id", ops5.Sym(id),
		"type", ops5.Sym("tie"),
		"for", ops5.Sym(g),
		"status", ops5.Sym("active"))
	a.goals = append(a.goals, id)
	a.eng.ApplyChanges([]ops5.Change{{Kind: ops5.Insert, WME: sub}})
}

// Step runs one decision cycle: elaborate to quiescence, decide (top
// goal first), apply. It reports whether the agent can continue.
func (a *Agent) Step() (bool, error) {
	if a.Halted {
		return false, nil
	}
	if err := a.elaborate(); err != nil {
		return false, err
	}
	if a.Halted {
		return false, nil
	}
	// Decide from the root down; the highest decidable goal wins.
	for level := 0; level < len(a.goals); level++ {
		sel, decided, tie := a.decide(a.goals[level])
		switch {
		case decided:
			a.install(level, sel)
			a.Decisions++
			// Apply phase: operator-application waves to quiescence.
			for i := 0; i < a.opts.MaxWaves; i++ {
				n, err := a.wave(true)
				if err != nil {
					return false, err
				}
				if n == 0 || a.Halted {
					break
				}
			}
			return !a.Halted, nil
		case tie && level == len(a.goals)-1:
			// Tie at the deepest goal: raise a subgoal and elaborate
			// again next Step.
			a.impasse(a.goals[level])
			a.Decisions++
			return true, nil
		case tie:
			// A deeper subgoal is already working on this tie.
			continue
		}
	}
	// No goal can decide and no new tie: state no-change; stop.
	return false, nil
}

// Run executes decision cycles until halt, quiescence, or the decision
// bound. It returns the number of decisions executed.
func (a *Agent) Run() (int, error) {
	start := a.Decisions
	for a.Decisions-start < a.opts.MaxDecisions {
		ok, err := a.Step()
		if err != nil {
			return a.Decisions - start, err
		}
		if !ok {
			break
		}
	}
	return a.Decisions - start, nil
}
