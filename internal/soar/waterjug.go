package soar

// WaterJug is the classic Soar tutorial task: two jugs of capacity 5
// and 3, and the goal of measuring exactly 4 units into the large jug.
// It exercises every Soar-lite mechanism: parallel proposal
// elaborations, best preferences encoding the pour-first strategy, a
// tie impasse whenever only fills are available (resolved in a subgoal
// that prefers filling the larger jug), and compute arithmetic in the
// operator applications.
const WaterJug = `
(literalize jug id capacity amount free)
(literalize goal id status type for task)
(literalize preference goal op arg arg2 value)
(literalize operator goal op arg arg2)

; --- proposals (elaboration phase; all fire in parallel) ------------

(p propose*fill
    (goal ^id <g> ^task water-jug ^status active)
    (jug ^id <j> ^free > 0)
  -->
    (make preference ^goal <g> ^op fill ^arg <j> ^value acceptable))

(p propose*empty
    (goal ^id <g> ^task water-jug ^status active)
    (jug ^id <j> ^amount > 0)
  -->
    (make preference ^goal <g> ^op empty ^arg <j> ^value acceptable))

(p propose*pour
    (goal ^id <g> ^task water-jug ^status active)
    (jug ^id <i> ^amount > 0)
    (jug ^id { <j> <> <i> } ^free > 0)
  -->
    (make preference ^goal <g> ^op pour ^arg <i> ^arg2 <j> ^value acceptable))

; --- strategy knowledge ---------------------------------------------

; Pouring the large jug into the small one is always the best move.
(p elaborate*prefer-pour
    (goal ^id <g> ^task water-jug ^status active)
    (preference ^goal <g> ^op pour ^arg a ^arg2 b ^value acceptable)
  -->
    (make preference ^goal <g> ^op pour ^arg a ^arg2 b ^value best))

; When the small jug is full, emptying it is the best move.
(p elaborate*empty-small-when-full
    (goal ^id <g> ^task water-jug ^status active)
    (preference ^goal <g> ^op empty ^arg b ^value acceptable)
    (jug ^id b ^amount <m> ^capacity <m>)
   -(preference ^goal <g> ^op pour ^arg a ^arg2 b ^value acceptable)
  -->
    (make preference ^goal <g> ^op empty ^arg b ^value best))

; Tie impasse: in the subgoal, prefer filling the larger jug.
(p elaborate*tie-fill-largest
    (goal ^id <sg> ^type tie ^for <g> ^status active)
    (preference ^goal <g> ^op fill ^arg <i> ^value acceptable)
    (jug ^id <i> ^capacity <ci>)
    (preference ^goal <g> ^op fill ^arg { <j> <> <i> } ^value acceptable)
    (jug ^id <j> ^capacity < <ci>)
  -->
    (make preference ^goal <g> ^op fill ^arg <i> ^value best))

; --- success test ----------------------------------------------------

(p elaborate*success
    (goal ^id <g> ^task water-jug ^status active)
    (jug ^id a ^amount 4)
  -->
    (write solved: the large jug holds 4)
    (halt))

; --- operator applications ------------------------------------------

(p apply*fill
    (operator ^goal <g> ^op fill ^arg <j>)
    (jug ^id <j> ^capacity <c>)
  -->
    (modify 2 ^amount <c> ^free 0)
    (remove 1))

(p apply*empty
    (operator ^goal <g> ^op empty ^arg <j>)
    (jug ^id <j> ^capacity <c>)
  -->
    (modify 2 ^amount 0 ^free <c>)
    (remove 1))

; Pour, case 1: everything fits in the target.
(p apply*pour-all
    (operator ^goal <g> ^op pour ^arg <i> ^arg2 <j>)
    (jug ^id <i> ^amount { <m> > 0 } ^capacity <ci>)
    (jug ^id <j> ^amount <n> ^free { <f> >= <m> })
  -->
    (modify 2 ^amount 0 ^free <ci>)
    (modify 3 ^amount (compute <n> + <m>) ^free (compute <f> - <m>))
    (remove 1))

; Pour, case 2: the target fills and the source keeps the remainder.
(p apply*pour-some
    (operator ^goal <g> ^op pour ^arg <i> ^arg2 <j>)
    (jug ^id <i> ^amount { <m> > 0 } ^free <fi>)
    (jug ^id <j> ^capacity <c> ^amount <n> ^free { <f> > 0 < <m> })
  -->
    (modify 2 ^amount (compute <m> - <f>) ^free (compute <fi> + <f>))
    (modify 3 ^amount <c> ^free 0)
    (remove 1))

; --- initial state ----------------------------------------------------

(make goal ^id g1 ^task water-jug ^status active)
(make jug ^id a ^capacity 5 ^amount 0 ^free 5)
(make jug ^id b ^capacity 3 ^amount 0 ^free 3)
`
